file(REMOVE_RECURSE
  "../bench/abl_runtime_lock"
  "../bench/abl_runtime_lock.pdb"
  "CMakeFiles/abl_runtime_lock.dir/abl_runtime_lock.cpp.o"
  "CMakeFiles/abl_runtime_lock.dir/abl_runtime_lock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_runtime_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
