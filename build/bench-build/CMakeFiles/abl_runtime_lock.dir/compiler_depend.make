# Empty compiler generated dependencies file for abl_runtime_lock.
# This may be replaced when dependencies are built.
