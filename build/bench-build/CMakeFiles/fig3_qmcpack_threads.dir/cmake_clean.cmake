file(REMOVE_RECURSE
  "../bench/fig3_qmcpack_threads"
  "../bench/fig3_qmcpack_threads.pdb"
  "CMakeFiles/fig3_qmcpack_threads.dir/fig3_qmcpack_threads.cpp.o"
  "CMakeFiles/fig3_qmcpack_threads.dir/fig3_qmcpack_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_qmcpack_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
