# Empty dependencies file for fig3_qmcpack_threads.
# This may be replaced when dependencies are built.
