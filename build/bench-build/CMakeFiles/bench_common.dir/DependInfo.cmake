
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cpp" "bench-build/CMakeFiles/bench_common.dir/common.cpp.o" "gcc" "bench-build/CMakeFiles/bench_common.dir/common.cpp.o.d"
  "/root/repo/bench/qmcpack_experiment.cpp" "bench-build/CMakeFiles/bench_common.dir/qmcpack_experiment.cpp.o" "gcc" "bench-build/CMakeFiles/bench_common.dir/qmcpack_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/zc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/zc_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/zc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/apu/CMakeFiles/zc_apu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/zc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
