file(REMOVE_RECURSE
  "../bench/fig4_qmcpack_sizes"
  "../bench/fig4_qmcpack_sizes.pdb"
  "CMakeFiles/fig4_qmcpack_sizes.dir/fig4_qmcpack_sizes.cpp.o"
  "CMakeFiles/fig4_qmcpack_sizes.dir/fig4_qmcpack_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_qmcpack_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
