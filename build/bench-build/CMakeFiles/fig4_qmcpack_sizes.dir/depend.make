# Empty dependencies file for fig4_qmcpack_sizes.
# This may be replaced when dependencies are built.
