# Empty compiler generated dependencies file for abl_fault_cost.
# This may be replaced when dependencies are built.
