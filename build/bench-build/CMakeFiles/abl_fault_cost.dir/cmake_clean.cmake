file(REMOVE_RECURSE
  "../bench/abl_fault_cost"
  "../bench/abl_fault_cost.pdb"
  "CMakeFiles/abl_fault_cost.dir/abl_fault_cost.cpp.o"
  "CMakeFiles/abl_fault_cost.dir/abl_fault_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fault_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
