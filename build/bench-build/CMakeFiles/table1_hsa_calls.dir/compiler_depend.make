# Empty compiler generated dependencies file for table1_hsa_calls.
# This may be replaced when dependencies are built.
