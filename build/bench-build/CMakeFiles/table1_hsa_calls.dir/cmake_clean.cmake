file(REMOVE_RECURSE
  "../bench/table1_hsa_calls"
  "../bench/table1_hsa_calls.pdb"
  "CMakeFiles/table1_hsa_calls.dir/table1_hsa_calls.cpp.o"
  "CMakeFiles/table1_hsa_calls.dir/table1_hsa_calls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_hsa_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
