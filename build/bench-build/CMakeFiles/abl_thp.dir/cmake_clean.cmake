file(REMOVE_RECURSE
  "../bench/abl_thp"
  "../bench/abl_thp.pdb"
  "CMakeFiles/abl_thp.dir/abl_thp.cpp.o"
  "CMakeFiles/abl_thp.dir/abl_thp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
