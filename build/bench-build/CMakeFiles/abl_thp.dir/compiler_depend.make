# Empty compiler generated dependencies file for abl_thp.
# This may be replaced when dependencies are built.
