file(REMOVE_RECURSE
  "../bench/abl_tlb"
  "../bench/abl_tlb.pdb"
  "CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o"
  "CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
