# Empty dependencies file for table2_specaccel.
# This may be replaced when dependencies are built.
