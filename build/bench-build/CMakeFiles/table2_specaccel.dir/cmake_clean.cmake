file(REMOVE_RECURSE
  "../bench/table2_specaccel"
  "../bench/table2_specaccel.pdb"
  "CMakeFiles/table2_specaccel.dir/table2_specaccel.cpp.o"
  "CMakeFiles/table2_specaccel.dir/table2_specaccel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_specaccel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
