# Empty compiler generated dependencies file for abl_sdma.
# This may be replaced when dependencies are built.
