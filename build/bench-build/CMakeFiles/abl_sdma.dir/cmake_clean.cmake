file(REMOVE_RECURSE
  "../bench/abl_sdma"
  "../bench/abl_sdma.pdb"
  "CMakeFiles/abl_sdma.dir/abl_sdma.cpp.o"
  "CMakeFiles/abl_sdma.dir/abl_sdma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
