# Empty dependencies file for eager_vs_zerocopy.
# This may be replaced when dependencies are built.
