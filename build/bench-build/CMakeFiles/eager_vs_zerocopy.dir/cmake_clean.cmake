file(REMOVE_RECURSE
  "../bench/eager_vs_zerocopy"
  "../bench/eager_vs_zerocopy.pdb"
  "CMakeFiles/eager_vs_zerocopy.dir/eager_vs_zerocopy.cpp.o"
  "CMakeFiles/eager_vs_zerocopy.dir/eager_vs_zerocopy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_vs_zerocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
