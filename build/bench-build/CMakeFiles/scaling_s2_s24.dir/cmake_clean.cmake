file(REMOVE_RECURSE
  "../bench/scaling_s2_s24"
  "../bench/scaling_s2_s24.pdb"
  "CMakeFiles/scaling_s2_s24.dir/scaling_s2_s24.cpp.o"
  "CMakeFiles/scaling_s2_s24.dir/scaling_s2_s24.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_s2_s24.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
