# Empty dependencies file for scaling_s2_s24.
# This may be replaced when dependencies are built.
