file(REMOVE_RECURSE
  "../bench/table3_overheads"
  "../bench/table3_overheads.pdb"
  "CMakeFiles/table3_overheads.dir/table3_overheads.cpp.o"
  "CMakeFiles/table3_overheads.dir/table3_overheads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
