# Empty dependencies file for qmcpack_nio.
# This may be replaced when dependencies are built.
