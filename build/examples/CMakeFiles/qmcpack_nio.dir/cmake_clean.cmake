file(REMOVE_RECURSE
  "CMakeFiles/qmcpack_nio.dir/qmcpack_nio.cpp.o"
  "CMakeFiles/qmcpack_nio.dir/qmcpack_nio.cpp.o.d"
  "qmcpack_nio"
  "qmcpack_nio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmcpack_nio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
