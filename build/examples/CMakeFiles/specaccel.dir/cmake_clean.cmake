file(REMOVE_RECURSE
  "CMakeFiles/specaccel.dir/specaccel.cpp.o"
  "CMakeFiles/specaccel.dir/specaccel.cpp.o.d"
  "specaccel"
  "specaccel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specaccel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
