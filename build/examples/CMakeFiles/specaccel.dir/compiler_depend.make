# Empty compiler generated dependencies file for specaccel.
# This may be replaced when dependencies are built.
