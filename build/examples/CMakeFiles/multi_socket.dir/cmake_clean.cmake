file(REMOVE_RECURSE
  "CMakeFiles/multi_socket.dir/multi_socket.cpp.o"
  "CMakeFiles/multi_socket.dir/multi_socket.cpp.o.d"
  "multi_socket"
  "multi_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
