# Empty compiler generated dependencies file for multi_socket.
# This may be replaced when dependencies are built.
