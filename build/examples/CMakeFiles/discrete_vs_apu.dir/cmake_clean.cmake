file(REMOVE_RECURSE
  "CMakeFiles/discrete_vs_apu.dir/discrete_vs_apu.cpp.o"
  "CMakeFiles/discrete_vs_apu.dir/discrete_vs_apu.cpp.o.d"
  "discrete_vs_apu"
  "discrete_vs_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrete_vs_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
