# Empty compiler generated dependencies file for discrete_vs_apu.
# This may be replaced when dependencies are built.
