# Empty compiler generated dependencies file for zc_hsa.
# This may be replaced when dependencies are built.
