file(REMOVE_RECURSE
  "CMakeFiles/zc_hsa.dir/runtime.cpp.o"
  "CMakeFiles/zc_hsa.dir/runtime.cpp.o.d"
  "libzc_hsa.a"
  "libzc_hsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_hsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
