file(REMOVE_RECURSE
  "libzc_hsa.a"
)
