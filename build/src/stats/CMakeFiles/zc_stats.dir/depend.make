# Empty dependencies file for zc_stats.
# This may be replaced when dependencies are built.
