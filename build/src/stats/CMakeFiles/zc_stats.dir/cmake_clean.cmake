file(REMOVE_RECURSE
  "CMakeFiles/zc_stats.dir/ascii_chart.cpp.o"
  "CMakeFiles/zc_stats.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/zc_stats.dir/repetition.cpp.o"
  "CMakeFiles/zc_stats.dir/repetition.cpp.o.d"
  "CMakeFiles/zc_stats.dir/summary.cpp.o"
  "CMakeFiles/zc_stats.dir/summary.cpp.o.d"
  "CMakeFiles/zc_stats.dir/table.cpp.o"
  "CMakeFiles/zc_stats.dir/table.cpp.o.d"
  "libzc_stats.a"
  "libzc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
