file(REMOVE_RECURSE
  "libzc_stats.a"
)
