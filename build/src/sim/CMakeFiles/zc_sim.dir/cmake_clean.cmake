file(REMOVE_RECURSE
  "CMakeFiles/zc_sim.dir/event_log.cpp.o"
  "CMakeFiles/zc_sim.dir/event_log.cpp.o.d"
  "CMakeFiles/zc_sim.dir/fiber.cpp.o"
  "CMakeFiles/zc_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/zc_sim.dir/jitter.cpp.o"
  "CMakeFiles/zc_sim.dir/jitter.cpp.o.d"
  "CMakeFiles/zc_sim.dir/rng.cpp.o"
  "CMakeFiles/zc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/zc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/zc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/zc_sim.dir/time.cpp.o"
  "CMakeFiles/zc_sim.dir/time.cpp.o.d"
  "CMakeFiles/zc_sim.dir/timeline.cpp.o"
  "CMakeFiles/zc_sim.dir/timeline.cpp.o.d"
  "libzc_sim.a"
  "libzc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
