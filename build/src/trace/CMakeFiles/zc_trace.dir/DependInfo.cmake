
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/call_stats.cpp" "src/trace/CMakeFiles/zc_trace.dir/call_stats.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/call_stats.cpp.o.d"
  "/root/repo/src/trace/call_trace.cpp" "src/trace/CMakeFiles/zc_trace.dir/call_trace.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/call_trace.cpp.o.d"
  "/root/repo/src/trace/chrome_trace.cpp" "src/trace/CMakeFiles/zc_trace.dir/chrome_trace.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/trace/compare.cpp" "src/trace/CMakeFiles/zc_trace.dir/compare.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/compare.cpp.o.d"
  "/root/repo/src/trace/kernel_trace.cpp" "src/trace/CMakeFiles/zc_trace.dir/kernel_trace.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/kernel_trace.cpp.o.d"
  "/root/repo/src/trace/overhead_ledger.cpp" "src/trace/CMakeFiles/zc_trace.dir/overhead_ledger.cpp.o" "gcc" "src/trace/CMakeFiles/zc_trace.dir/overhead_ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
