file(REMOVE_RECURSE
  "libzc_trace.a"
)
