file(REMOVE_RECURSE
  "CMakeFiles/zc_trace.dir/call_stats.cpp.o"
  "CMakeFiles/zc_trace.dir/call_stats.cpp.o.d"
  "CMakeFiles/zc_trace.dir/call_trace.cpp.o"
  "CMakeFiles/zc_trace.dir/call_trace.cpp.o.d"
  "CMakeFiles/zc_trace.dir/chrome_trace.cpp.o"
  "CMakeFiles/zc_trace.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/zc_trace.dir/compare.cpp.o"
  "CMakeFiles/zc_trace.dir/compare.cpp.o.d"
  "CMakeFiles/zc_trace.dir/kernel_trace.cpp.o"
  "CMakeFiles/zc_trace.dir/kernel_trace.cpp.o.d"
  "CMakeFiles/zc_trace.dir/overhead_ledger.cpp.o"
  "CMakeFiles/zc_trace.dir/overhead_ledger.cpp.o.d"
  "libzc_trace.a"
  "libzc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
