# Empty dependencies file for zc_trace.
# This may be replaced when dependencies are built.
