file(REMOVE_RECURSE
  "CMakeFiles/zc_apu.dir/env.cpp.o"
  "CMakeFiles/zc_apu.dir/env.cpp.o.d"
  "CMakeFiles/zc_apu.dir/machine.cpp.o"
  "CMakeFiles/zc_apu.dir/machine.cpp.o.d"
  "libzc_apu.a"
  "libzc_apu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
