# Empty compiler generated dependencies file for zc_apu.
# This may be replaced when dependencies are built.
