file(REMOVE_RECURSE
  "libzc_apu.a"
)
