file(REMOVE_RECURSE
  "libzc_mem.a"
)
