# Empty dependencies file for zc_mem.
# This may be replaced when dependencies are built.
