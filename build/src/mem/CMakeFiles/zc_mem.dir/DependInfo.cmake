
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/zc_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/zc_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/memory_system.cpp" "src/mem/CMakeFiles/zc_mem.dir/memory_system.cpp.o" "gcc" "src/mem/CMakeFiles/zc_mem.dir/memory_system.cpp.o.d"
  "/root/repo/src/mem/page_table.cpp" "src/mem/CMakeFiles/zc_mem.dir/page_table.cpp.o" "gcc" "src/mem/CMakeFiles/zc_mem.dir/page_table.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/mem/CMakeFiles/zc_mem.dir/tlb.cpp.o" "gcc" "src/mem/CMakeFiles/zc_mem.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apu/CMakeFiles/zc_apu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
