file(REMOVE_RECURSE
  "CMakeFiles/zc_mem.dir/address_space.cpp.o"
  "CMakeFiles/zc_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/zc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/zc_mem.dir/memory_system.cpp.o.d"
  "CMakeFiles/zc_mem.dir/page_table.cpp.o"
  "CMakeFiles/zc_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/zc_mem.dir/tlb.cpp.o"
  "CMakeFiles/zc_mem.dir/tlb.cpp.o.d"
  "libzc_mem.a"
  "libzc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
