file(REMOVE_RECURSE
  "CMakeFiles/zc_workloads.dir/openfoam.cpp.o"
  "CMakeFiles/zc_workloads.dir/openfoam.cpp.o.d"
  "CMakeFiles/zc_workloads.dir/qmcpack.cpp.o"
  "CMakeFiles/zc_workloads.dir/qmcpack.cpp.o.d"
  "CMakeFiles/zc_workloads.dir/runner.cpp.o"
  "CMakeFiles/zc_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/zc_workloads.dir/spec.cpp.o"
  "CMakeFiles/zc_workloads.dir/spec.cpp.o.d"
  "libzc_workloads.a"
  "libzc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
