# Empty dependencies file for zc_workloads.
# This may be replaced when dependencies are built.
