file(REMOVE_RECURSE
  "libzc_workloads.a"
)
