
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/zc_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/config.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/zc_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/offload_runtime.cpp" "src/core/CMakeFiles/zc_core.dir/offload_runtime.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/offload_runtime.cpp.o.d"
  "/root/repo/src/core/offload_stack.cpp" "src/core/CMakeFiles/zc_core.dir/offload_stack.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/offload_stack.cpp.o.d"
  "/root/repo/src/core/target_region.cpp" "src/core/CMakeFiles/zc_core.dir/target_region.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/target_region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apu/CMakeFiles/zc_apu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/zc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/zc_hsa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
