file(REMOVE_RECURSE
  "CMakeFiles/zc_core.dir/config.cpp.o"
  "CMakeFiles/zc_core.dir/config.cpp.o.d"
  "CMakeFiles/zc_core.dir/mapping.cpp.o"
  "CMakeFiles/zc_core.dir/mapping.cpp.o.d"
  "CMakeFiles/zc_core.dir/offload_runtime.cpp.o"
  "CMakeFiles/zc_core.dir/offload_runtime.cpp.o.d"
  "CMakeFiles/zc_core.dir/offload_stack.cpp.o"
  "CMakeFiles/zc_core.dir/offload_stack.cpp.o.d"
  "CMakeFiles/zc_core.dir/target_region.cpp.o"
  "CMakeFiles/zc_core.dir/target_region.cpp.o.d"
  "libzc_core.a"
  "libzc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
