# Empty dependencies file for test_hsa.
# This may be replaced when dependencies are built.
