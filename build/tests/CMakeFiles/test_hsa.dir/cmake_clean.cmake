file(REMOVE_RECURSE
  "CMakeFiles/test_hsa.dir/hsa/runtime_test.cpp.o"
  "CMakeFiles/test_hsa.dir/hsa/runtime_test.cpp.o.d"
  "CMakeFiles/test_hsa.dir/hsa/signal_test.cpp.o"
  "CMakeFiles/test_hsa.dir/hsa/signal_test.cpp.o.d"
  "test_hsa"
  "test_hsa.pdb"
  "test_hsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
