file(REMOVE_RECURSE
  "CMakeFiles/test_apu.dir/apu/env_test.cpp.o"
  "CMakeFiles/test_apu.dir/apu/env_test.cpp.o.d"
  "CMakeFiles/test_apu.dir/apu/machine_test.cpp.o"
  "CMakeFiles/test_apu.dir/apu/machine_test.cpp.o.d"
  "test_apu"
  "test_apu.pdb"
  "test_apu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
