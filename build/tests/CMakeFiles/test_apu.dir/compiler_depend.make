# Empty compiler generated dependencies file for test_apu.
# This may be replaced when dependencies are built.
