file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/address_space_stress_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/address_space_stress_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/address_space_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/address_space_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/memory_system_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/memory_system_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/page_size_matrix_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/page_size_matrix_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/page_table_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/page_table_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/property_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/property_test.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/tlb_test.cpp.o"
  "CMakeFiles/test_mem.dir/mem/tlb_test.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
