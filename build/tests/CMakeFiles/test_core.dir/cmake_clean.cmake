file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/async_target_test.cpp.o"
  "CMakeFiles/test_core.dir/core/async_target_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_matrix_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_matrix_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/discrete_gpu_test.cpp.o"
  "CMakeFiles/test_core.dir/core/discrete_gpu_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mapping_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mapping_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/multi_device_test.cpp.o"
  "CMakeFiles/test_core.dir/core/multi_device_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/offload_runtime_test.cpp.o"
  "CMakeFiles/test_core.dir/core/offload_runtime_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/offload_stack_test.cpp.o"
  "CMakeFiles/test_core.dir/core/offload_stack_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sanitizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sanitizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/translator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/translator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/unstructured_data_test.cpp.o"
  "CMakeFiles/test_core.dir/core/unstructured_data_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
