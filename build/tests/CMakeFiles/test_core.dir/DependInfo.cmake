
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/async_target_test.cpp" "tests/CMakeFiles/test_core.dir/core/async_target_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/async_target_test.cpp.o.d"
  "/root/repo/tests/core/config_matrix_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_matrix_test.cpp.o.d"
  "/root/repo/tests/core/config_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "/root/repo/tests/core/discrete_gpu_test.cpp" "tests/CMakeFiles/test_core.dir/core/discrete_gpu_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/discrete_gpu_test.cpp.o.d"
  "/root/repo/tests/core/mapping_test.cpp" "tests/CMakeFiles/test_core.dir/core/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/mapping_test.cpp.o.d"
  "/root/repo/tests/core/multi_device_test.cpp" "tests/CMakeFiles/test_core.dir/core/multi_device_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/multi_device_test.cpp.o.d"
  "/root/repo/tests/core/offload_runtime_test.cpp" "tests/CMakeFiles/test_core.dir/core/offload_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/offload_runtime_test.cpp.o.d"
  "/root/repo/tests/core/offload_stack_test.cpp" "tests/CMakeFiles/test_core.dir/core/offload_stack_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/offload_stack_test.cpp.o.d"
  "/root/repo/tests/core/sanitizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/sanitizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sanitizer_test.cpp.o.d"
  "/root/repo/tests/core/translator_test.cpp" "tests/CMakeFiles/test_core.dir/core/translator_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/translator_test.cpp.o.d"
  "/root/repo/tests/core/unstructured_data_test.cpp" "tests/CMakeFiles/test_core.dir/core/unstructured_data_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/unstructured_data_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/zc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/zc_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/zc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/apu/CMakeFiles/zc_apu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/zc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
