file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/call_stats_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/call_stats_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/call_trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/call_trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/chrome_trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/chrome_trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/compare_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/compare_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/kernel_trace_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/kernel_trace_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/overhead_ledger_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/overhead_ledger_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
