file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/barrier_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/barrier_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/fiber_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/fiber_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/jitter_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/jitter_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/rng_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/rng_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/scheduler_property_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/scheduler_property_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/time_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/time_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/timeline_property_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/timeline_property_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/timeline_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/timeline_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
