
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/barrier_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/barrier_test.cpp.o.d"
  "/root/repo/tests/sim/event_log_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/event_log_test.cpp.o.d"
  "/root/repo/tests/sim/fiber_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/fiber_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/fiber_test.cpp.o.d"
  "/root/repo/tests/sim/jitter_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/jitter_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/jitter_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_property_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/scheduler_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/scheduler_property_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/time_test.cpp.o.d"
  "/root/repo/tests/sim/timeline_property_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/timeline_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/timeline_property_test.cpp.o.d"
  "/root/repo/tests/sim/timeline_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/zc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsa/CMakeFiles/zc_hsa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/zc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/apu/CMakeFiles/zc_apu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/zc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/zc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
