// Fault-injection ablation: the cost of surviving faults, per runtime
// configuration. Each cell runs the QMCPack NiO proxy under one fault
// schedule and reports the wall-time overhead relative to the same
// configuration's fault-free run.
//
// Schedules (all deterministic, OMPX_APU_FAULTS grammar):
//   * oom-cap      512 MB HBM socket: runtime init (~278 MB) plus the
//                  host-touched spline (192 MB) leave the ROCr pool unable
//                  to serve the spline's device copy — an organic capacity
//                  OOM on the run's first Copy-managed map;
//   * eintr-burst  eintr@call=1..3 — the first prefault syscall EINTRs
//                  three times and recovers through the backoff ladder;
//   * sdma-err     sdma@call=5 — one errored async copy mid-batch,
//                  recovered by resubmission;
//   * combined     all of the above in one run;
//   * kernel-hang  kernel_hang@call=3 — a kernel's completion signal never
//                  fires; the watchdog (OMPX_APU_WATCHDOG=500us:recover)
//                  tears the queue down and the runtime replays it;
//   * sdma-stall   sdma_stall@call=2 — a stalled async copy, aborted by
//                  the watchdog and resubmitted;
//   * pf-hang      prefault_hang@call=1 — a hung prefault syscall,
//                  recovered through the retry ladder after the abort;
//   * xnack-lock   xnack_livelock@call=1 — fault servicing never
//                  converges; the kernel is aborted and replayed.
//
// The hang rows measure the watchdog-recovery overhead per configuration:
// budget wait + queue teardown/rebuild + replay, relative to fault-free.
//
// Acceptance bars (the binary exits 1 if any is violated):
//   * every faulted run computes the exact checksum of its configuration's
//     fault-free run (degradation changes timing, never data);
//   * no schedule provokes a RegionFailed — all four are survivable;
//   * the degraded paths actually run: under oom-cap Legacy Copy records
//     an OOM fallback to zero-copy, under eintr-burst Eager Maps records a
//     successful backoff retry, under sdma-err Legacy Copy records a
//     successful copy resubmission.
//
// Runs are deterministic (no measurement jitter): the bars compare
// degraded-mode control flow, not noise.

#include <array>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace {

using namespace zc;
using omp::RuntimeConfig;
using trace::FaultEvent;

constexpr std::array<RuntimeConfig, 5> kAllConfigs{
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

struct Schedule {
  std::string name;
  std::string spec;
  bool capped = false;
  /// Degraded-mode event that must appear, and in which configuration.
  std::optional<std::pair<RuntimeConfig, FaultEvent>> must_record;
  /// OMPX_APU_WATCHDOG value (hang schedules need one to be survivable).
  std::string watchdog;
};

apu::Topology capped_topology() {
  apu::Topology t;
  t.hbm_bytes = 512ULL << 20;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Fault injection — overhead of degraded-mode survival",
      "robustness extension of Bertolli et al., SC'24", args);

  workloads::QmcpackParams params;
  params.size = 2;
  params.threads = 1;
  params.walkers_per_thread = 2;
  params.steps = args.steps_or(60, 20, 300);
  if (args.fidelity_min) {
    params.steps = 10;
  }
  const workloads::Program program = workloads::make_qmcpack(params);
  std::cout << "qmcpack S2, 1 thread, " << params.walkers_per_thread
            << " walkers, " << params.steps << " steps, seed " << args.seed
            << "\n\n";

  const std::vector<Schedule> schedules{
      {"oom-cap", "", /*capped=*/true,
       {{RuntimeConfig::LegacyCopy, FaultEvent::OomFallbackZeroCopy}}},
      {"eintr-burst", "eintr@call=1..3", /*capped=*/false,
       {{RuntimeConfig::EagerMaps, FaultEvent::PrefaultRetrySucceeded}}},
      {"sdma-err", "sdma@call=5", /*capped=*/false,
       {{RuntimeConfig::LegacyCopy, FaultEvent::CopyRetrySucceeded}}},
      {"combined", "eintr@call=1..3;sdma@call=5", /*capped=*/true,
       std::nullopt},
      {"kernel-hang", "kernel_hang@call=3", /*capped=*/false,
       {{RuntimeConfig::LegacyCopy, FaultEvent::WatchdogRecovered}},
       "500us:recover"},
      {"sdma-stall", "sdma_stall@call=2", /*capped=*/false,
       {{RuntimeConfig::LegacyCopy, FaultEvent::WatchdogRecovered}},
       "500us:recover"},
      {"pf-hang", "prefault_hang@call=1", /*capped=*/false,
       {{RuntimeConfig::EagerMaps, FaultEvent::WatchdogRecovered}},
       "500us:recover"},
      {"xnack-lock", "xnack_livelock@call=1", /*capped=*/false,
       {{RuntimeConfig::ImplicitZeroCopy, FaultEvent::WatchdogRecovered}},
       "500us:recover"},
  };

  std::vector<std::string> header{"Configuration", "fault-free (ms)"};
  for (const Schedule& s : schedules) {
    header.push_back(s.name + " Δ%");
  }
  stats::TextTable table{header};
  std::vector<std::string> violations;

  for (const RuntimeConfig config : kAllConfigs) {
    workloads::RunOptions clean_opts;
    clean_opts.config = config;
    clean_opts.seed = args.seed;
    const workloads::RunResult clean =
        workloads::run_program(program, clean_opts);
    if (!clean.faults.empty()) {
      violations.push_back(std::string{to_string(config)} +
                           ": fault-free run recorded fault events");
    }

    std::vector<std::string> row{std::string{to_string(config)},
                                 stats::TextTable::num(
                                     clean.wall_time.us() / 1000.0, 2)};
    for (const Schedule& s : schedules) {
      workloads::RunOptions opts;
      opts.config = config;
      opts.seed = args.seed;
      opts.fault_spec = s.spec;
      opts.watchdog_spec = s.watchdog;
      if (s.capped) {
        opts.topology = capped_topology();
      }
      try {
        const workloads::RunResult r = workloads::run_program(program, opts);
        const double overhead =
            (r.wall_time.us() / clean.wall_time.us() - 1.0) * 100.0;
        row.push_back(stats::TextTable::num(overhead, 2));
        if (r.checksum != clean.checksum) {
          violations.push_back(std::string{to_string(config)} + " / " +
                               s.name +
                               ": checksum diverged from the fault-free run");
        }
        if (r.faults.any(FaultEvent::RegionFailed)) {
          violations.push_back(std::string{to_string(config)} + " / " +
                               s.name +
                               ": survivable schedule raised RegionFailed");
        }
        if (s.must_record && s.must_record->first == config &&
            !r.faults.any(s.must_record->second)) {
          violations.push_back(std::string{to_string(config)} + " / " +
                               s.name + ": expected degraded-mode event '" +
                               trace::to_string(s.must_record->second) +
                               "' was never recorded");
        }
      } catch (const omp::OffloadError& e) {
        row.push_back("FAIL");
        violations.push_back(std::string{to_string(config)} + " / " + s.name +
                             ": unexpected OffloadError: " + e.what());
      }
      std::cout << "." << std::flush;
    }
    table.add_row(row);
  }

  std::cout << "\n\nwall-time overhead of surviving each fault schedule, "
               "relative to the\nfault-free run of the same configuration "
               "(checksums must be identical)\n\n";
  table.print(std::cout);
  args.maybe_write_csv("abl_fault_inject", table);

  if (violations.empty()) {
    std::cout << "\nAll acceptance bars hold: every faulted run matched its "
                 "fault-free checksum,\nno survivable schedule failed a "
                 "region, and each degraded path was exercised.\n";
    return 0;
  }
  std::cout << "\nACCEPTANCE VIOLATIONS:\n";
  for (const std::string& v : violations) {
    std::cout << "  * " << v << '\n';
  }
  return 1;
}
