// google-benchmark microbenchmarks of the simulator's hot data structures:
// real wall-clock performance of the pieces every simulated operation
// touches. These guard the harness's own scalability (full-fidelity Table I
// runs execute millions of simulated HSA calls).

#include <benchmark/benchmark.h>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/sim/rng.hpp"

namespace {

using namespace zc;
constexpr std::uint64_t kPage = 2ULL << 20;

void BM_Rng_NextU64(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng_NextU64);

void BM_Jitter_Apply(benchmark::State& state) {
  sim::JitterModel jitter{{.sigma = 0.02}, 7};
  const sim::Duration d = sim::Duration::from_us(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jitter.apply(d));
  }
}
BENCHMARK(BM_Jitter_Apply);

void BM_Timeline_Reserve(benchmark::State& state) {
  sim::ResourceTimeline tl{"gpu", 4};
  sim::TimePoint ready;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tl.reserve(ready, sim::Duration::microseconds(3)));
    ready += sim::Duration::microseconds(1);
  }
}
BENCHMARK(BM_Timeline_Reserve);

void BM_PageTable_InsertRange(benchmark::State& state) {
  const std::uint64_t pages = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t base = 0;
  mem::PageTable pt{kPage};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pt.insert_range(mem::AddrRange{mem::VirtAddr{base}, pages * kPage}));
    base += pages * kPage;
    if (pt.size() > 1'000'000) {
      state.PauseTiming();
      pt.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_PageTable_InsertRange)->Arg(16)->Arg(1024);

void BM_PageTable_CountAbsent(benchmark::State& state) {
  mem::PageTable pt{kPage};
  const mem::AddrRange range{mem::VirtAddr{0}, 4096 * kPage};
  (void)pt.insert_range(mem::AddrRange{mem::VirtAddr{0}, 2048 * kPage});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.count_absent(range));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PageTable_CountAbsent);

void BM_Tlb_AccessRange_Warm(benchmark::State& state) {
  mem::Tlb tlb{4096, kPage};
  const mem::AddrRange range{mem::VirtAddr{0}, 1024 * kPage};
  (void)tlb.access_range(range);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access_range(range));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Tlb_AccessRange_Warm);

void BM_Tlb_AccessRange_Thrash(benchmark::State& state) {
  mem::Tlb tlb{512, kPage};
  const mem::AddrRange range{mem::VirtAddr{0}, 4096 * kPage};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access_range(range));  // fast-path thrash
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Tlb_AccessRange_Thrash);

void BM_PresentTable_Lookup(benchmark::State& state) {
  omp::PresentTable table;
  for (std::uint64_t i = 0; i < 512; ++i) {
    table.insert(mem::AddrRange{mem::VirtAddr{(2 * i + 1) * kPage}, kPage},
                 mem::VirtAddr{(1 << 30) + i * kPage});
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup(mem::VirtAddr{(2 * (i % 512) + 1) * kPage + 64}));
    ++i;
  }
}
BENCHMARK(BM_PresentTable_Lookup);

void BM_Fiber_SwitchPair(benchmark::State& state) {
  // Round-trip cost of suspending to the resumer and back.
  sim::Fiber fiber{[] {
    while (true) {
      sim::Fiber::yield();
    }
  }};
  for (auto _ : state) {
    fiber.resume();
  }
}
BENCHMARK(BM_Fiber_SwitchPair);

void BM_Scheduler_AdvanceInterleaved(benchmark::State& state) {
  // Two threads leapfrogging: every advance forces a context switch.
  const std::int64_t per_run = 4096;
  for (auto _ : state) {
    sim::Scheduler sched;
    for (int t = 0; t < 2; ++t) {
      sched.spawn("t" + std::to_string(t), [&sched] {
        for (std::int64_t i = 0; i < per_run; ++i) {
          sched.advance(sim::Duration::microseconds(2));
        }
      });
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * per_run * 2);
}
BENCHMARK(BM_Scheduler_AdvanceInterleaved);

void BM_OffloadRuntime_ZeroCopyTarget(benchmark::State& state) {
  // End-to-end simulated cost of one zero-copy `omp target` (map
  // bookkeeping, dispatch, fault scan, TLB, wait) in real microseconds.
  const std::int64_t per_run = 2048;
  for (auto _ : state) {
    omp::OffloadStack stack{
        omp::OffloadStack::machine_config_for(
            omp::RuntimeConfig::ImplicitZeroCopy),
        omp::OffloadStack::program_for(omp::RuntimeConfig::ImplicitZeroCopy,
                                       {})};
    stack.sched().run_single([&stack] {
      omp::OffloadRuntime& rt = stack.omp();
      omp::HostArray<double> x{rt, 4096, "x"};
      omp::TargetRegion region{.name = "bench",
                               .maps = {x.tofrom()},
                               .compute = sim::Duration::from_us(5),
                               .body = {}};
      for (std::int64_t i = 0; i < per_run; ++i) {
        rt.target(region);
      }
      x.release();
    });
  }
  state.SetItemsProcessed(state.iterations() * per_run);
}
BENCHMARK(BM_OffloadRuntime_ZeroCopyTarget);

}  // namespace

BENCHMARK_MAIN();
