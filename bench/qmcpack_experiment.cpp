#include "qmcpack_experiment.hpp"

namespace zc::bench {

const stats::RepeatedRuns& QmcSweep::measure(int size, int threads,
                                             omp::RuntimeConfig config) {
  const Key key{size, threads, config};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second;
  }
  workloads::QmcpackParams params;
  params.size = size;
  params.threads = threads;
  params.steps = steps_;
  const workloads::Program program = workloads::make_qmcpack(params);
  workloads::RunOptions options;
  options.config = config;
  options.jitter = jitter_;
  // Decorrelate the seed streams of different cells.
  options.seed = seed_ + 7919ULL * static_cast<std::uint64_t>(size) +
                 104729ULL * static_cast<std::uint64_t>(threads) +
                 1299709ULL * static_cast<std::uint64_t>(config);
  auto [pos, inserted] =
      cache_.emplace(key, workloads::repeat_program(program, options, reps_));
  (void)inserted;
  return pos->second;
}

double QmcSweep::ratio(int size, int threads, omp::RuntimeConfig config) {
  const auto& copy = measure(size, threads, omp::RuntimeConfig::LegacyCopy);
  const auto& other = measure(size, threads, config);
  return stats::ratio_of_medians(copy, other);
}

double QmcSweep::cov(int size, int threads, omp::RuntimeConfig config) {
  return measure(size, threads, config).cov();
}

double QmcSweep::max_cov(omp::RuntimeConfig config) const {
  double worst = 0.0;
  for (const auto& [key, runs] : cache_) {
    if (std::get<2>(key) == config) {
      worst = std::max(worst, runs.summary().cov());
    }
  }
  return worst;
}

}  // namespace zc::bench
