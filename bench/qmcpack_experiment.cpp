#include "qmcpack_experiment.hpp"

namespace zc::bench {

const QmcSweep::Cell& QmcSweep::cell(int size, int threads,
                                     omp::RuntimeConfig config) {
  const Key key{size, threads, config};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second;
  }
  workloads::QmcpackParams params;
  params.size = size;
  params.threads = threads;
  params.steps = steps_;
  const workloads::Program program = workloads::make_qmcpack(params);
  workloads::RunOptions options;
  options.config = config;
  options.jitter = jitter_;
  // Decorrelate the seed streams of different cells.
  options.seed = seed_ + 7919ULL * static_cast<std::uint64_t>(size) +
                 104729ULL * static_cast<std::uint64_t>(threads) +
                 1299709ULL * static_cast<std::uint64_t>(config);
  stats::RepeatedRuns runs =
      workloads::repeat_program(program, options, reps_);
  stats::Summary summary = runs.summary();  // the one selection pass
  auto [pos, inserted] =
      cache_.emplace(key, Cell{std::move(runs), summary});
  (void)inserted;
  return pos->second;
}

const stats::RepeatedRuns& QmcSweep::measure(int size, int threads,
                                             omp::RuntimeConfig config) {
  return cell(size, threads, config).runs;
}

double QmcSweep::ratio(int size, int threads, omp::RuntimeConfig config) {
  const double copy =
      cell(size, threads, omp::RuntimeConfig::LegacyCopy).summary.median;
  return copy / cell(size, threads, config).summary.median;
}

double QmcSweep::cov(int size, int threads, omp::RuntimeConfig config) {
  return cell(size, threads, config).summary.cov();
}

double QmcSweep::max_cov(omp::RuntimeConfig config) const {
  double worst = 0.0;
  for (const auto& [key, c] : cache_) {
    if (std::get<2>(key) == config) {
      worst = std::max(worst, c.summary.cov());
    }
  }
  return worst;
}

}  // namespace zc::bench
