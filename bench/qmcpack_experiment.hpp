#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::bench {

/// Cached sweep over the QMCPack NiO proxy: (size, threads, config) ->
/// repeated wall-time measurements. Shared by the Fig. 3 and Fig. 4
/// harnesses and the supporting analyses.
class QmcSweep {
 public:
  QmcSweep(int steps, int reps, sim::JitterParams jitter, std::uint64_t seed)
      : steps_{steps}, reps_{reps}, jitter_{jitter}, seed_{seed} {}

  /// Median wall times over `reps` runs, computed on demand and cached.
  const stats::RepeatedRuns& measure(int size, int threads,
                                     omp::RuntimeConfig config);

  /// The paper's ratio: median(Copy) / median(config).
  double ratio(int size, int threads, omp::RuntimeConfig config);

  /// Coefficient of variation for one cell.
  double cov(int size, int threads, omp::RuntimeConfig config);

  /// Worst CoV for a config across all cells measured so far.
  double max_cov(omp::RuntimeConfig config) const;

  [[nodiscard]] int steps() const { return steps_; }
  [[nodiscard]] int reps() const { return reps_; }

 private:
  using Key = std::tuple<int, int, omp::RuntimeConfig>;

  /// Measurements plus their summary, computed once at measure time. The
  /// summary (one selection pass) is what `ratio` / `cov` / `max_cov`
  /// read: Fig. 3 asks for the Copy median once per zero-copy column, and
  /// re-selecting over the same cached samples each call is exactly the
  /// repeated-percentile pattern `stats::percentile`'s doc comment warns
  /// about.
  struct Cell {
    stats::RepeatedRuns runs;
    stats::Summary summary;
  };

  const Cell& cell(int size, int threads, omp::RuntimeConfig config);

  int steps_;
  int reps_;
  sim::JitterParams jitter_;
  std::uint64_t seed_;
  std::map<Key, Cell> cache_;
};

}  // namespace zc::bench
