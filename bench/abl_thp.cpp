// Ablation: transparent huge pages (2 MB) vs base 4 KB pages.
//
// The paper runs all experiments with THP enabled "so that both
// configurations work with 2MB page sizes". This ablation shows why: with
// 4 KB pages the unified-memory protocols execute per-page work 512x more
// often. Per-page costs are rescaled for the smaller page (less data moved
// per fault), but the fixed per-page protocol overheads remain — and they
// dominate, wrecking the zero-copy configurations on first-touch-heavy
// workloads like 452.ep.

#include "common.hpp"
#include "zc/workloads/spec.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner("Ablation — THP (2 MB pages) vs 4 KB pages on 452.ep",
                      "Bertolli et al., SC'24, §V methodology", args);

  workloads::EpParams ep;
  ep.arena_bytes /= args.quick ? 64 : 16;  // keep 4 KB page counts tractable
  ep.batches /= args.quick ? 16 : 4;
  const workloads::Program program = workloads::make_ep(ep);

  // 4 KB costs: the data-dependent part of each per-page cost shrinks with
  // the page (512x less to zero/copy), the protocol part does not.
  apu::CostParams small_pages = apu::mi300a_costs();
  small_pages.page_materialize = sim::Duration::from_us(3.0);
  small_pages.xnack_fault_resident = sim::Duration::from_us(3.0);
  small_pages.bulk_page_populate = sim::Duration::from_us(0.8);
  small_pages.prefault_insert_per_page = sim::Duration::from_us(0.3);
  small_pages.prefault_populate_per_page = sim::Duration::from_us(0.5);
  small_pages.pool_free_per_page = sim::Duration::from_us(0.1);
  small_pages.host_touch_per_page_2mb = sim::Duration::from_us(5.0);

  stats::TextTable table{{"pages", "config", "wall", "MM", "MI", "faults",
                          "ratio vs Copy"}};
  for (const bool thp : {true, false}) {
    sim::Duration copy_wall;
    for (const RuntimeConfig cfg :
         {RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy,
          RuntimeConfig::EagerMaps}) {
      workloads::RunOptions opts{.config = cfg, .seed = args.seed};
      opts.transparent_huge_pages = thp;
      if (!thp) {
        opts.costs = small_pages;
      }
      const workloads::RunResult r = workloads::run_program(program, opts);
      if (cfg == RuntimeConfig::LegacyCopy) {
        copy_wall = r.wall_time;
      }
      table.add_row({thp ? "2 MB (THP)" : "4 KB", to_string(cfg),
                     r.wall_time.to_string(), r.ledger.mm().to_string(),
                     r.ledger.mi().to_string(),
                     stats::TextTable::count(r.kernels.total_page_faults),
                     stats::TextTable::num(copy_wall / r.wall_time, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: with 4 KB pages the zero-copy MI explodes "
               "(512x the faults,\neach with a fixed protocol overhead) and "
               "the Copy/zero-copy ratio collapses.\n";
  return 0;
}
