// Fig. 4 reproduction: Copy / zero-copy ratios for the QMCPack NiO proxy
// with 8 OpenMP host threads, varying the problem size. Shows the advantage
// shrinking as kernel time starts dominating, and Eager Maps trailing the
// other zero-copy configurations until the largest size.

#include "qmcpack_experiment.hpp"
#include "zc/stats/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Fig. 4 — QMCPack NiO: Copy/zero-copy ratio vs problem size (8 threads)",
      "Bertolli et al., SC'24, Fig. 4", args);

  const std::vector<int> sizes = workloads::qmcpack_paper_sizes();
  const int threads = 8;
  const int steps = args.steps_or(100, 30, 3000);
  const int reps = args.reps_or(4, 2);
  std::cout << "MC steps per run: " << steps << ", repetitions: " << reps
            << "\n\n";

  bench::QmcSweep sweep{steps, reps, bench::measurement_jitter(), args.seed};

  stats::TextTable table{
      {"size", "Implicit Z-C", "Unified Shared Memory", "Eager Maps"}};
  std::vector<std::string> labels;
  std::vector<double> zc_series;
  std::vector<double> usm_series;
  std::vector<double> eager_series;
  for (const int size : sizes) {
    const double zc = sweep.ratio(size, threads, RuntimeConfig::ImplicitZeroCopy);
    const double usm =
        sweep.ratio(size, threads, RuntimeConfig::UnifiedSharedMemory);
    const double eager = sweep.ratio(size, threads, RuntimeConfig::EagerMaps);
    table.add_row({"S" + std::to_string(size), stats::TextTable::num(zc),
                   stats::TextTable::num(usm), stats::TextTable::num(eager)});
    labels.push_back("S" + std::to_string(size));
    zc_series.push_back(zc);
    usm_series.push_back(usm);
    eager_series.push_back(eager);
  }
  table.print(std::cout);
  args.maybe_write_csv("fig4_qmcpack_sizes", table);
  std::cout << '\n';

  stats::AsciiChart chart{
      "Copy/zero-copy ratio with 8 host threads (higher = zero-copy wins)",
      labels};
  chart.add_series("Implicit Zero-Copy", zc_series);
  chart.add_series("Unified Shared Memory", usm_series);
  chart.add_series("Eager Maps", eager_series);
  chart.print(std::cout);

  std::cout << "\nExpected shape (paper): all ratios > 1; advantage shrinks "
               "with size;\nEager Maps scales at a lower rate than the other "
               "two until the largest size.\n";
  return 0;
}
