// §V-A.3 supporting analysis: how kernel execution time and HSA call time
// scale from S2 to S24. The paper reports kernel time growing ~10x for both
// configurations while HSA call time grows ~5x for Copy and ~10x for
// Implicit Zero-Copy (from a much smaller base) — the reason memory
// overheads stop mattering at production problem sizes.

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner("S2 -> S24 scaling of kernel time vs HSA call time",
                      "Bertolli et al., SC'24, §V-A.3", args);
  const int steps = args.steps_or(300, 60, 3000);
  std::cout << "MC steps per run: " << steps << ", 1 OpenMP thread\n\n";

  struct Cell {
    sim::Duration kernel_time;
    sim::Duration hsa_time;
    sim::Duration wall;
  };
  auto measure = [&](int size, RuntimeConfig cfg) -> Cell {
    workloads::QmcpackParams params;
    params.size = size;
    params.threads = 1;
    params.steps = steps;
    const workloads::RunResult r = workloads::run_program(
        workloads::make_qmcpack(params), {.config = cfg, .seed = args.seed});
    return Cell{r.kernels.total_time, r.stats.total_time(), r.wall_time};
  };

  stats::TextTable table{{"config", "metric", "S2", "S24", "S24/S2"}};
  for (const RuntimeConfig cfg :
       {RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy}) {
    const Cell s2 = measure(2, cfg);
    const Cell s24 = measure(24, cfg);
    table.add_row({to_string(cfg), "total kernel time", s2.kernel_time.to_string(),
                   s24.kernel_time.to_string(),
                   stats::TextTable::num(s24.kernel_time / s2.kernel_time, 1)});
    table.add_row({to_string(cfg), "total HSA call time", s2.hsa_time.to_string(),
                   s24.hsa_time.to_string(),
                   stats::TextTable::num(s24.hsa_time / s2.hsa_time, 1)});
    table.add_row({to_string(cfg), "wall time", s2.wall.to_string(),
                   s24.wall.to_string(),
                   stats::TextTable::num(s24.wall / s2.wall, 1)});
  }
  table.print(std::cout);
  args.maybe_write_csv("scaling_s2_s24", table);

  std::cout << "\nExpected shape (paper): kernel time grows ~10x for both; "
               "HSA call time grows\nslower for Copy (copy sizes grow, copy "
               "counts do not) and from a tiny base for\nImplicit Z-C — so "
               "kernel time dominates at large sizes.\n";
  return 0;
}
