// Table II reproduction: ratios between Copy and each zero-copy
// configuration for the SPECaccel 2023 C/C++ proxies. Ratio > 1 means the
// zero-copy configuration performs better than Copy.

#include "common.hpp"
#include "zc/workloads/spec.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Table II — SPECaccel 2023 proxies: Copy / zero-copy ratios",
      "Bertolli et al., SC'24, Table II", args);

  const int reps = args.reps_or(8, 2);  // the paper runs SPECaccel 8 times
  std::cout << "repetitions per cell: " << reps << " (median reported)\n\n";

  auto scale = [&args](auto params) {
    if (args.quick) {
      params.array_bytes = params.array_bytes / 8;
      params.cycles = std::max(2, params.cycles / 4);
    }
    return params;
  };

  std::vector<workloads::SpecBenchmark> suite;
  {
    workloads::StencilParams p;
    if (args.quick) {
      p.grid_bytes /= 8;
      p.iterations /= 8;
    }
    suite.push_back({"stencil", workloads::make_stencil(p)});
  }
  {
    workloads::LbmParams p;
    if (args.quick) {
      p.lattice_bytes /= 8;
      p.iterations /= 8;
    }
    suite.push_back({"lbm", workloads::make_lbm(p)});
  }
  {
    workloads::EpParams p;
    if (args.quick) {
      p.arena_bytes /= 8;
      p.batches /= 8;
    }
    suite.push_back({"ep", workloads::make_ep(p)});
  }
  suite.push_back({"spC", workloads::make_spc(scale(workloads::SpcParams{}))});
  suite.push_back({"bt", workloads::make_bt(scale(workloads::BtParams{}))});

  stats::TextTable table{{"Benchmark", "Implicit Z-C", "Unified Shared Memory",
                          "Eager Maps", "max CoV"}};
  const sim::JitterParams jitter{.sigma = 0.01};
  for (auto& bm : suite) {
    workloads::RunOptions copy_opts{.config = RuntimeConfig::LegacyCopy,
                                    .jitter = jitter,
                                    .seed = args.seed};
    const stats::RepeatedRuns copy =
        workloads::repeat_program(bm.program, copy_opts, reps);
    // One selection pass over the Copy samples per benchmark; the three
    // zero-copy columns reuse its median instead of re-selecting it via
    // ratio_of_medians (see the SortedSamples note in zc/stats/summary.hpp).
    const stats::Summary copy_summary = copy.summary();
    double max_cov = copy_summary.cov();
    std::vector<std::string> row{bm.name};
    for (const RuntimeConfig cfg : bench::kZeroCopyConfigs) {
      workloads::RunOptions opts{.config = cfg,
                                 .jitter = jitter,
                                 .seed = args.seed + 100 * static_cast<std::uint64_t>(cfg)};
      const stats::RepeatedRuns runs =
          workloads::repeat_program(bm.program, opts, reps);
      const stats::Summary s = runs.summary();
      max_cov = std::max(max_cov, s.cov());
      row.push_back(stats::TextTable::num(copy_summary.median / s.median, 2));
    }
    row.push_back(stats::TextTable::num(max_cov, 3));
    table.add_row(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  args.maybe_write_csv("table2_specaccel", table);

  std::cout << "\nPaper values      | stencil 0.99/0.99/0.98 | lbm "
               "1.05/1.043/1.025 | ep 0.89/0.89/0.99\n                  | "
               "spC 7.80/7.61/8.10 | bt 4.88/4.77/5.10 | CoV <= 0.03\n";
  return 0;
}
