// Ablation: the shared runtime-stack lock vs Fig. 3's thread scaling.
//
// The paper explains the growing Copy/zero-copy gap at higher thread counts
// by all threads sharing "the same runtime stack, including components such
// as the OpenMP host and offloading runtimes, ROCr, and the driver"
// (§V-A.2). In the model that is the CPU-side runtime lock serializing
// packet and copy submission. This ablation shrinks those CPU-side costs
// toward zero: the 8-thread ratio should collapse toward the 1-thread
// ratio, demonstrating the mechanism carries the effect.

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Ablation — runtime-lock contention vs Fig. 3 thread scaling",
      "Bertolli et al., SC'24, §V-A.2 mechanism", args);
  const int steps = args.steps_or(100, 30, 600);

  auto ratio = [&](int threads, double lock_cost_scale) {
    workloads::QmcpackParams params;
    params.size = 2;
    params.threads = threads;
    params.steps = steps;
    const workloads::Program program = workloads::make_qmcpack(params);
    apu::CostParams costs = apu::mi300a_costs();
    costs.kernel_dispatch_cpu = costs.kernel_dispatch_cpu * lock_cost_scale;
    costs.copy_setup = costs.copy_setup * lock_cost_scale;
    workloads::RunOptions copy_opts{.config = RuntimeConfig::LegacyCopy,
                                    .seed = args.seed};
    copy_opts.costs = costs;
    workloads::RunOptions zc_opts{.config = RuntimeConfig::ImplicitZeroCopy,
                                  .seed = args.seed};
    zc_opts.costs = costs;
    const auto copy = workloads::run_program(program, copy_opts).wall_time;
    const auto zc = workloads::run_program(program, zc_opts).wall_time;
    return copy / zc;
  };

  stats::TextTable table{{"CPU-side submit cost", "ratio @1 thread",
                          "ratio @8 threads", "8T/1T growth"}};
  for (const double scale : {1.0, 0.5, 0.1, 0.01}) {
    const double r1 = ratio(1, scale);
    const double r8 = ratio(8, scale);
    table.add_row({stats::TextTable::num(100.0 * scale, 0) + "%",
                   stats::TextTable::num(r1), stats::TextTable::num(r8),
                   stats::TextTable::num(r8 / r1)});
  }
  table.print(std::cout);
  args.maybe_write_csv("abl_runtime_lock", table);

  // Correctness cross-check for the lock-discipline work: the same workload,
  // all four configurations, with and without interleaving stress mode, must
  // produce bit-identical checksums — the contention being measured above
  // must come from the runtime lock, never from divergent results.
  {
    workloads::QmcpackParams params;
    params.size = 2;
    params.threads = 8;
    params.steps = std::min(steps, 60);
    const workloads::Program program = workloads::make_qmcpack(params);
    constexpr RuntimeConfig kConfigs[] = {
        RuntimeConfig::LegacyCopy,
        RuntimeConfig::UnifiedSharedMemory,
        RuntimeConfig::ImplicitZeroCopy,
        RuntimeConfig::EagerMaps,
    };
    bool ok = true;
    double reference = 0.0;
    bool have_reference = false;
    for (const RuntimeConfig config : kConfigs) {
      workloads::RunOptions opts{.config = config, .seed = args.seed};
      const double plain = workloads::run_program(program, opts).checksum;
      opts.stress_seed = args.seed;
      const double stressed = workloads::run_program(program, opts).checksum;
      if (!have_reference) {
        reference = plain;
        have_reference = true;
      }
      if (plain != reference || stressed != reference) {
        ok = false;
        std::cout << "checksum mismatch under " << omp::to_string(config)
                  << ": plain=" << plain << " stressed=" << stressed
                  << " reference=" << reference << "\n";
      }
    }
    std::cout << "\nChecksum verification (4 configs x {plain, stress seed "
              << args.seed << "}): " << (ok ? "bit-identical" : "MISMATCH")
              << "\n";
    if (!ok) {
      return 1;
    }
  }

  std::cout << "\nExpected shape: at 100% the 8-thread ratio clearly exceeds "
               "the 1-thread ratio\n(Fig. 3); as the serialized CPU-side "
               "submission costs shrink, the growth factor\ncollapses toward "
               "1 — the contention on the shared runtime stack carries the\n"
               "thread-scaling effect, exactly as §V-A.2 argues.\n";
  return 0;
}
