// Multi-APU fabric placement figure: wall time of the five runtime
// configurations on a bandwidth-bound streaming workload under the four
// NUMA placements (local, remote, interleaved, 4-way partitioned) plus an
// explicit inter-device DMA staging variant, on a 4-socket MI300A node
// joined by modeled xGMI links — the local-vs-remote bandwidth asymmetry
// of the Inter-APU study, reproduced qualitatively.
//
// Acceptance bars (the binary exits 1 if any is violated):
//   * local zero-copy beats remote zero-copy on every zero-copy
//     configuration (the Inter-APU bandwidth ordering);
//   * interleaved sits between local and remote under Implicit Zero-Copy
//     (3/4 of the pages are remote, but striped over wide links);
//   * explicit inter-device DMA staging beats streaming remote zero-copy
//     under Implicit Zero-Copy (pay the link once, then read locally)
//     [skipped at --fidelity-min scale, where the copy cannot amortize];
//   * 4-way partitioning beats the single-device local run by >= 2x on
//     every zero-copy configuration [>= 1.5x at --fidelity-min, where the
//     short stream leaves runtime overhead visible];
//   * partitioned QMCPack S128 t8 (sockets=4), under a big-kernel
//     occupancy topology of two concurrent kernels per socket, achieves
//     >= 3x the aggregate throughput of the same machine driving every
//     thread to device 0, with identical checksums [S32 and >= 2x at
//     reduced scales];
//   * Adaptive Maps stays within 5% of the best static configuration on
//     every placement;
//   * all five configurations compute identical checksums on every
//     placement, including under the survivable fault/hang schedule with
//     seeds 1/7/42.
//
// Runs are deterministic (no measurement jitter): the bars compare cost
// models, not noise.

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "zc/apu/params.hpp"
#include "zc/core/host_array.hpp"
#include "zc/mem/address_space.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace {

using namespace zc;
using mem::AddrRange;
using mem::VirtAddr;
using omp::BufferUse;
using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::RuntimeConfig;
using omp::TargetRegion;

constexpr int kSockets = 4;

constexpr std::array<RuntimeConfig, 4> kStaticConfigs{
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::EagerMaps,
};

constexpr std::array<RuntimeConfig, 3> kZeroCopy{
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::EagerMaps,
};

/// Where the streamed buffer lives relative to the executing device(s).
enum class Layout {
  Local,        ///< homed on socket 0, kernels on device 0
  Remote,       ///< homed on socket 1, kernels on device 0 (wide link)
  Interleaved,  ///< striped across all sockets, kernels on device 0
  Staged,       ///< homed on socket 1, DMA-copied to 0, then read locally
  Partitioned,  ///< one shard per socket, kernels on the owning device
};

const char* to_string(Layout l) {
  switch (l) {
    case Layout::Local: return "local";
    case Layout::Remote: return "remote";
    case Layout::Interleaved: return "interleaved";
    case Layout::Staged: return "remote+dma";
    case Layout::Partitioned: return "partitioned";
  }
  return "?";
}

struct StreamScale {
  std::uint64_t bytes = 768ULL << 20;
  int iters = 60;
  sim::Duration per_iter = sim::Duration::from_us(3000);
};

/// One host thread streaming `bytes` through `iters` read kernels on
/// `exec_device`; the buffer's NUMA home is the experiment variable. The
/// checksum (one accumulator increment per kernel) is placement- and
/// configuration-invariant.
double stream_shard(OffloadStack& stack, const StreamScale& s, Layout layout,
                    int exec_device) {
  OffloadRuntime& rt = stack.omp();
  VirtAddr buf;
  switch (layout) {
    case Layout::Local:
    case Layout::Partitioned:
      buf = rt.host_alloc_placed(s.bytes, "stream", mem::Placement::FixedHome,
                                 exec_device);
      break;
    case Layout::Remote:
    case Layout::Staged:
      buf = rt.host_alloc_placed(s.bytes, "stream", mem::Placement::FixedHome,
                                 1);
      break;
    case Layout::Interleaved:
      buf = rt.host_alloc_placed(s.bytes, "stream",
                                 mem::Placement::Interleaved);
      break;
  }
  rt.host_first_touch(AddrRange{buf, s.bytes});

  VirtAddr data = buf;
  VirtAddr staging{};
  if (layout == Layout::Staged) {
    // omp_target_memcpy into a device-local buffer: pay the link once.
    staging = rt.host_alloc_placed(s.bytes, "stream-staging",
                                   mem::Placement::FixedHome, exec_device);
    rt.host_first_touch(AddrRange{staging, s.bytes});
    rt.target_memcpy(staging, buf, s.bytes);
    data = staging;
  }

  HostArray<double> acc{rt, 8, "stream-acc", exec_device};
  acc.first_touch();

  const std::vector<MapEntry> region_maps{
      MapEntry::to(data, s.bytes),
      MapEntry::alloc(acc.addr(), acc.bytes())};
  rt.target_data_begin(region_maps, exec_device);

  const VirtAddr av = acc.addr();
  for (int i = 0; i < s.iters; ++i) {
    rt.target(TargetRegion{
        .name = "stream_read",
        .maps = {MapEntry::always_tofrom(av, acc.bytes())},
        .uses = {BufferUse{data, s.bytes, hsa::Access::Read}},
        .compute = s.per_iter,
        .body =
            [av](hsa::KernelContext& ctx, const omp::ArgTranslator& tr) {
              ctx.ptr<double>(tr.device(av))[0] += 1.0;
            },
        .device = exec_device,
    });
  }
  rt.target_data_end(region_maps, exec_device);

  const double result = acc[0];
  acc.release();
  rt.host_free(buf);
  if (!staging.is_null()) {
    rt.host_free(staging);
  }
  return result;
}

/// The streaming workload under one placement. Partitioned splits the
/// buffer (and per-kernel compute) four ways, so total work is constant
/// across layouts.
workloads::Program make_stream(const StreamScale& scale, Layout layout) {
  const int shards = layout == Layout::Partitioned ? kSockets : 1;
  StreamScale s = scale;
  if (shards > 1) {
    s.bytes /= static_cast<std::uint64_t>(shards);
    s.per_iter = s.per_iter * (1.0 / shards);
  }
  auto checksums =
      std::make_shared<std::vector<double>>(static_cast<std::size_t>(shards));
  workloads::Program program;
  program.binary.name = std::string("fabric-stream-") + to_string(layout);
  program.setup_threads = [s, layout, shards, checksums](OffloadStack& stack) {
    for (int d = 0; d < shards; ++d) {
      stack.sched().spawn("omp-host-" + std::to_string(d),
                          [&stack, s, layout, checksums, d] {
                            (*checksums)[static_cast<std::size_t>(d)] =
                                stream_shard(stack, s, layout, d);
                          });
    }
  };
  program.finalize = [checksums](OffloadStack&) {
    double sum = 0.0;
    for (const double c : *checksums) {
      sum += c;
    }
    return sum;
  };
  return program;
}

workloads::RunOptions fabric_options(RuntimeConfig config,
                                     std::uint64_t seed) {
  workloads::RunOptions options;
  options.config = config;
  options.seed = seed;
  options.sockets = kSockets;
  options.fabric_spec = "xgmi";
  return options;
}

struct Violation {
  std::string text;
};

std::string ms(double us) { return stats::TextTable::num(us / 1000.0, 1); }

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Fabric placement — local/remote/interleaved/partitioned x five "
      "configurations",
      "extends Bertolli et al., SC'24 with the Inter-APU xGMI asymmetry",
      args);

  StreamScale scale;
  if (args.fidelity_min) {
    scale.bytes = 128ULL << 20;
    scale.iters = 8;
  } else if (args.quick) {
    scale.bytes = 256ULL << 20;
    scale.iters = 20;
  } else if (args.full) {
    scale.bytes = 2ULL << 30;
    scale.iters = 120;
  }

  constexpr std::array<Layout, 5> kLayouts{
      Layout::Local, Layout::Remote, Layout::Interleaved, Layout::Staged,
      Layout::Partitioned};

  std::vector<Violation> violations;
  auto require = [&violations](bool ok, const std::string& text) {
    if (!ok) {
      violations.push_back({text});
    }
  };

  // ---- placement x configuration sweep ---------------------------------
  std::map<Layout, std::map<RuntimeConfig, double>> wall_us;
  stats::TextTable table{{"Placement", "Copy", "Implicit Z-C",
                          "Unified Shared Memory", "Eager Maps", "Adaptive",
                          "Adaptive/best-static"}};
  for (const Layout layout : kLayouts) {
    const workloads::Program program = make_stream(scale, layout);
    std::vector<std::string> row{to_string(layout)};
    double checksum = std::numeric_limits<double>::quiet_NaN();
    double best_static = std::numeric_limits<double>::infinity();
    for (const RuntimeConfig config : kStaticConfigs) {
      const workloads::RunResult r =
          workloads::run_program(program, fabric_options(config, args.seed));
      wall_us[layout][config] = r.wall_time.us();
      best_static = std::min(best_static, r.wall_time.us());
      row.push_back(ms(r.wall_time.us()));
      if (checksum != checksum) {
        checksum = r.checksum;
      } else {
        require(r.checksum == checksum,
                std::string("checksum mismatch on ") + to_string(layout) +
                    " under " + to_string(config));
      }
      std::cout << "." << std::flush;
    }
    const workloads::RunResult adaptive = workloads::run_program(
        program, fabric_options(RuntimeConfig::AdaptiveMaps, args.seed));
    wall_us[layout][RuntimeConfig::AdaptiveMaps] = adaptive.wall_time.us();
    require(adaptive.checksum == checksum,
            std::string("checksum mismatch on ") + to_string(layout) +
                " under AdaptiveMaps");
    const double vs_best = adaptive.wall_time.us() / best_static;
    row.push_back(ms(adaptive.wall_time.us()));
    row.push_back(stats::TextTable::num(vs_best, 3));
    table.add_row(row);
    require(vs_best <= 1.05,
            std::string("Adaptive is ") +
                stats::TextTable::num((vs_best - 1.0) * 100.0, 1) +
                "% off the best static configuration on " +
                to_string(layout) + " (bar: 5%)");
    std::cout << "." << std::flush;
  }

  // ---- the Inter-APU bandwidth ordering --------------------------------
  // At --fidelity-min the stream is short enough that per-kernel runtime
  // overhead (serialized on the shared runtime lock, unchanged by the
  // partitioning) is a visible fraction of the run, so the scale-out bar
  // drops to 1.5x there; every larger fidelity holds the full 2x.
  const double stream_bar = args.fidelity_min ? 1.5 : 2.0;
  for (const RuntimeConfig zc : kZeroCopy) {
    require(wall_us[Layout::Local][zc] < wall_us[Layout::Remote][zc],
            std::string("local zero-copy not faster than remote under ") +
                to_string(zc));
    require(wall_us[Layout::Partitioned][zc] * stream_bar <
                wall_us[Layout::Local][zc],
            std::string("4-way partitioning below ") +
                stats::TextTable::num(stream_bar, 1) +
                "x over single-device under " + to_string(zc));
  }
  {
    const double local = wall_us[Layout::Local][RuntimeConfig::ImplicitZeroCopy];
    const double inter =
        wall_us[Layout::Interleaved][RuntimeConfig::ImplicitZeroCopy];
    const double remote =
        wall_us[Layout::Remote][RuntimeConfig::ImplicitZeroCopy];
    require(local < inter && inter < remote,
            "interleaved not between local and remote under Implicit Z-C");
    if (!args.fidelity_min) {
      const double staged =
          wall_us[Layout::Staged][RuntimeConfig::ImplicitZeroCopy];
      require(staged < remote,
              "explicit DMA staging not faster than streaming remote "
              "zero-copy under Implicit Z-C");
    }
  }

  std::cout << "\n\nstreaming wall time per placement (ms); "
               "Adaptive/best-static <= 1.05 required\n\n";
  table.print(std::cout);
  args.maybe_write_csv("fig_fabric", table);

  // ---- partitioned QMCPack aggregate throughput ------------------------
  {
    workloads::QmcpackParams p;
    p.size = args.fidelity_min || args.quick ? 32 : 128;
    p.threads = 8;
    p.steps = args.steps_or(24, 8, 40);
    const double min_speedup = args.fidelity_min || args.quick ? 2.0 : 3.0;

    // Big-kernel occupancy: at these problem sizes one walker kernel's
    // launch grid covers about half a socket's XCDs, so a single GPU
    // sustains only two such kernels concurrently. With the default
    // 16-slot small-kernel topology, 8 threads never queue and the
    // single-device run is latency-bound per thread — partitioning would
    // measure nothing. Two slots per socket is what makes the aggregate
    // throughput comparison about device capacity, the quantity the
    // scale-out claim is about.
    apu::Topology big_kernel_topology;
    big_kernel_topology.gpu_kernel_slots = 2;

    workloads::QmcpackParams single = p;  // every thread drives device 0
    single.sockets = 1;
    workloads::QmcpackParams parted = p;
    parted.sockets = kSockets;

    stats::TextTable qtable{
        {"QMCPack S" + std::to_string(p.size) + " t8", "single-device",
         "4-way partitioned", "speedup"}};
    for (const RuntimeConfig config :
         {RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::AdaptiveMaps}) {
      workloads::RunOptions qopts = fabric_options(config, args.seed);
      qopts.topology = big_kernel_topology;
      const workloads::RunResult base =
          workloads::run_program(workloads::make_qmcpack(single), qopts);
      const workloads::RunResult part =
          workloads::run_program(workloads::make_qmcpack(parted), qopts);
      const double speedup = base.wall_time.us() / part.wall_time.us();
      qtable.add_row({to_string(config), ms(base.wall_time.us()),
                      ms(part.wall_time.us()),
                      stats::TextTable::num(speedup, 2)});
      require(base.checksum == part.checksum,
              std::string("partitioned QMCPack checksum differs from "
                          "single-device under ") +
                  to_string(config));
      require(speedup >= min_speedup,
              std::string("partitioned QMCPack speedup ") +
                  stats::TextTable::num(speedup, 2) + " below " +
                  stats::TextTable::num(min_speedup, 1) + "x under " +
                  to_string(config));
      std::cout << "." << std::flush;
    }
    std::cout << "\n\naggregate throughput: partitioned vs single-device "
                 "(>= "
              << min_speedup << "x required)\n\n";
    qtable.print(std::cout);
  }

  // ---- five-config checksum identity under faults ----------------------
  if (!args.fidelity_min) {
    StreamScale tiny;
    tiny.bytes = 64ULL << 20;
    tiny.iters = 6;
    for (const Layout layout : {Layout::Remote, Layout::Partitioned}) {
      const workloads::Program program = make_stream(tiny, layout);
      for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        double checksum = std::numeric_limits<double>::quiet_NaN();
        for (const RuntimeConfig config :
             {RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy,
              RuntimeConfig::UnifiedSharedMemory, RuntimeConfig::EagerMaps,
              RuntimeConfig::AdaptiveMaps}) {
          workloads::RunOptions options = fabric_options(config, seed);
          options.stress_seed = seed;
          options.fault_spec =
              "eintr@call=1..3;sdma@call=5;kernel_hang@call=3";
          options.watchdog_spec = "50ms:recover";
          const workloads::RunResult r =
              workloads::run_program(program, options);
          if (checksum != checksum) {
            checksum = r.checksum;
          } else {
            require(r.checksum == checksum,
                    std::string("fault-seed checksum mismatch on ") +
                        to_string(layout) + " seed " + std::to_string(seed) +
                        " under " + to_string(config));
          }
        }
        std::cout << "." << std::flush;
      }
    }
    std::cout << "\nfault/hang seeds 1/7/42: five-config checksum identity "
                 "checked on remote and partitioned placements\n";
  }

  {
    std::vector<std::string> texts;
    texts.reserve(violations.size());
    for (const Violation& v : violations) {
      texts.push_back(v.text);
    }
    std::vector<std::pair<std::string, double>> metrics;
    for (const Layout layout : kLayouts) {
      metrics.emplace_back(
          std::string("wall_ms_implicit_") + to_string(layout),
          wall_us[layout][RuntimeConfig::ImplicitZeroCopy] / 1000.0);
    }
    args.maybe_write_json("fig_fabric", texts, metrics);
  }

  if (violations.empty()) {
    std::cout << "\nAll acceptance bars hold: local > remote zero-copy "
                 "bandwidth, staging beats remote streaming, partitioning "
                 "scales, Adaptive within 5% of best-static per placement, "
                 "checksums identical everywhere.\n";
    return 0;
  }
  std::cout << "\nACCEPTANCE VIOLATIONS:\n";
  for (const Violation& v : violations) {
    std::cout << "  * " << v.text << '\n';
  }
  return 1;
}
