// Ablation: host-side cost of OMPX_APU_RACE_CHECK=report vs off.
//
// The detector rides the scheduler's concurrency hooks: with the mode off
// the hook pointer is null and every instrumented site is a single branch;
// in report mode each sync edge joins vector clocks and each access runs a
// FastTrack epoch check. Neither adds *simulated* time — the gate below
// asserts that wall_time and checksums are bit-identical between modes —
// so the interesting number is real host time per run, reported here for
// QMCPack (multi-threaded, table-heavy) and 457.spC (map/unmap churn,
// page-heavy).

#include <chrono>
#include <string>

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/spec.hpp"

namespace {

struct Timed {
  zc::workloads::RunResult result;
  double host_ms = 0.0;
};

Timed run_timed(const zc::workloads::Program& program,
                zc::workloads::RunOptions options) {
  const auto start = std::chrono::steady_clock::now();
  Timed t{zc::workloads::run_program(program, options), 0.0};
  t.host_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner("Ablation — race-detector overhead (off vs report)",
                      "zc::race instrumentation cost; correctness-gated",
                      args);

  struct Workload {
    std::string name;
    workloads::Program program;
  };
  workloads::QmcpackParams qp;
  qp.size = 2;
  qp.threads = args.fidelity_min ? 2 : 4;
  qp.steps = args.steps_or(60, 20, 300);
  workloads::SpcParams sp;
  sp.cycles = args.fidelity_min ? 3 : args.level(10, 4, 40);
  const Workload kWorkloads[] = {
      {"qmcpack", workloads::make_qmcpack(qp)},
      {"457.spC", workloads::make_spc(sp)},
  };
  constexpr RuntimeConfig kConfigs[] = {
      RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
      RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
      RuntimeConfig::AdaptiveMaps,
  };

  stats::TextTable table{{"workload", "config", "off (host ms)",
                          "report (host ms)", "overhead", "reports"}};
  bool ok = true;
  for (const Workload& w : kWorkloads) {
    for (const RuntimeConfig config : kConfigs) {
      workloads::RunOptions opts{.config = config, .seed = args.seed};
      const Timed off = run_timed(w.program, opts);
      opts.race_check_spec = "report";
      const Timed report = run_timed(w.program, opts);
      // Gate: the detector must be a pure observer. Any checksum or
      // simulated-makespan drift (or any report on these fault-free,
      // correctly synchronized runs) voids the measurement.
      if (report.result.checksum != off.result.checksum ||
          report.result.wall_time != off.result.wall_time ||
          !report.result.races.empty()) {
        ok = false;
        std::cout << "GATE FAILURE " << w.name << "/" << omp::to_string(config)
                  << ": checksum " << off.result.checksum << " -> "
                  << report.result.checksum << ", reports="
                  << report.result.races.size() << "\n";
        if (!report.result.races.empty()) {
          std::cout << "  first: "
                    << report.result.races.records().front().message << "\n";
        }
      }
      table.add_row({w.name, omp::to_string(config),
                     stats::TextTable::num(off.host_ms),
                     stats::TextTable::num(report.host_ms),
                     stats::TextTable::num(report.host_ms / off.host_ms) + "x",
                     std::to_string(report.result.races.size())});
    }
  }
  table.print(std::cout);
  args.maybe_write_csv("abl_race_check", table);

  std::cout << "\nCorrectness gate (bit-identical checksums + makespans, "
               "zero reports): "
            << (ok ? "passed" : "FAILED") << "\n"
            << "Expected shape: report mode costs a modest constant factor "
               "of host time\n(vector-clock joins on every sync edge, epoch "
               "checks per instrumented access)\nand exactly zero simulated "
               "time in every configuration.\n";
  return ok ? 0 : 1;
}
