// Ablation: host-side cost of OMPX_APU_RACE_CHECK=report vs off, plus the
// statically pruned mode (report:pruned).
//
// The detector rides the scheduler's concurrency hooks: with the mode off
// the hook pointer is null and every instrumented site is a single branch;
// in report mode each sync edge joins vector clocks and each access runs a
// FastTrack epoch check. `report:pruned` prepends a record-only run whose
// op stream feeds the zc::check static may-race pass; pages the analysis
// PROVES free of unordered concurrent access skip their shadow-state
// stamps in the measured run. Neither mode adds *simulated* time — the
// gate below asserts that wall_time and checksums are bit-identical across
// modes — so the interesting numbers are real host milliseconds per run:
// the total pruned cost (record phase + measured phase) and the
// measured-phase-only ratio, which is the steady-state cost once a
// long-running program has amortized its one analysis pass.
//
// Headline acceptance bar: the qmcpack measured-phase ratio under
// report:pruned stays <= 2.0x the uninstrumented run, with zero dynamic
// race reports lost (these workloads are race-free, so "lost" means any
// mode reporting where another does not).

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/spec.hpp"

namespace {

constexpr double kPrunedMeasuredRatioBar = 2.0;

struct Timed {
  zc::workloads::RunResult result;
  double host_ms = 0.0;
};

Timed run_timed(const zc::workloads::Program& program,
                const zc::workloads::RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Timed t{zc::workloads::run_program(program, options), 0.0};
  t.host_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Ablation — race-detector overhead (off vs report vs report:pruned)",
      "zc::race instrumentation cost; correctness-gated", args);

  struct Workload {
    std::string name;
    workloads::Program program;
  };
  // The headline bar is defined at the paper's largest qmcpack point,
  // S128 x 8 threads: page stamps (the prunable cost) dominate there,
  // while at toy sizes the unprunable sync-edge floor drowns them out.
  // Fidelity knobs scale the step count, never the size/thread shape.
  workloads::QmcpackParams qp;
  qp.size = 128;
  qp.threads = 8;
  qp.steps = args.fidelity_min ? 20 : args.steps_or(60, 30, 120);
  workloads::SpcParams sp;
  sp.cycles = args.fidelity_min ? 3 : args.level(10, 4, 40);
  const Workload kWorkloads[] = {
      {"qmcpack", workloads::make_qmcpack(qp)},
      {"457.spC", workloads::make_spc(sp)},
  };
  constexpr RuntimeConfig kConfigs[] = {
      RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
      RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
      RuntimeConfig::AdaptiveMaps,
  };

  stats::TextTable table{{"workload", "config", "off (ms)", "report (ms)",
                          "report ovh", "pruned (ms)", "pruned ovh",
                          "measured ovh", "pruned %", "reports"}};
  std::vector<std::string> violations;
  std::vector<std::pair<std::string, double>> metrics;
  double qmcpack_worst_measured = 0.0;
  // Host milliseconds on a shared machine carry additive noise spikes that
  // dwarf the effect under test at these run lengths; min-of-N is the
  // standard estimator for the true cost. Correctness gates still check
  // every repetition.
  const int reps = args.fidelity_min ? 3 : args.reps_or(3, 2);
  for (const Workload& w : kWorkloads) {
    for (const RuntimeConfig config : kConfigs) {
      workloads::RunOptions opts{.config = config, .seed = args.seed};
      const std::string id = w.name + "/" + omp::to_string(config);
      Timed off, report, pruned;
      double measured_ms = 0.0;
      for (int r = 0; r < reps; ++r) {
        opts.race_check_spec = "";
        Timed o = run_timed(w.program, opts);
        opts.race_check_spec = "report";
        Timed rep = run_timed(w.program, opts);
        opts.race_check_spec = "report:pruned";
        Timed pr = run_timed(w.program, opts);
        // Gate: the detector must be a pure observer in every mode. Any
        // checksum or simulated-makespan drift (or any report on these
        // fault-free, correctly synchronized runs) voids the measurement.
        for (const Timed* t : {&rep, &pr}) {
          if (t->result.checksum != o.result.checksum ||
              t->result.wall_time != o.result.wall_time) {
            violations.push_back(id + ": checksum/makespan drift");
          }
          if (!t->result.races.empty()) {
            violations.push_back(id + ": spurious race report: " +
                                 t->result.races.records().front().message);
          }
        }
        // "Zero reports lost" on race-free inputs: modes must agree.
        if (pr.result.races.size() != rep.result.races.size()) {
          violations.push_back(id + ": pruning changed the report count");
        }
        const double m = pr.host_ms - pr.result.check_phase_ms;
        if (r == 0 || o.host_ms < off.host_ms) {
          off = std::move(o);
        }
        if (r == 0 || rep.host_ms < report.host_ms) {
          report = std::move(rep);
        }
        if (r == 0 || pr.host_ms < pruned.host_ms) {
          pruned = std::move(pr);
        }
        if (r == 0 || m < measured_ms) {
          measured_ms = m;
        }
      }
      const double measured_ratio = measured_ms / off.host_ms;
      const std::uint64_t stamps = pruned.result.race_pruned_stamps +
                                   pruned.result.race_checked_stamps;
      const double pruned_share =
          stamps == 0 ? 0.0
                      : 100.0 * static_cast<double>(
                                    pruned.result.race_pruned_stamps) /
                            static_cast<double>(stamps);
      if (w.name == "qmcpack") {
        qmcpack_worst_measured = std::max(qmcpack_worst_measured,
                                          measured_ratio);
        if (measured_ratio > kPrunedMeasuredRatioBar) {
          violations.push_back(id + ": pruned measured-phase ratio " +
                               stats::TextTable::num(measured_ratio) +
                               "x exceeds the 2.0x bar");
        }
      }
      table.add_row({w.name, omp::to_string(config),
                     stats::TextTable::num(off.host_ms),
                     stats::TextTable::num(report.host_ms),
                     stats::TextTable::num(report.host_ms / off.host_ms) + "x",
                     stats::TextTable::num(pruned.host_ms),
                     stats::TextTable::num(pruned.host_ms / off.host_ms) + "x",
                     stats::TextTable::num(measured_ratio) + "x",
                     stats::TextTable::num(pruned_share) + "%",
                     std::to_string(report.result.races.size())});
    }
  }
  table.print(std::cout);
  args.maybe_write_csv("abl_race_check", table);
  metrics.emplace_back("qmcpack_pruned_measured_ratio_worst",
                       qmcpack_worst_measured);
  metrics.emplace_back("pruned_measured_ratio_bar", kPrunedMeasuredRatioBar);
  args.maybe_write_json("abl_race_check", violations, metrics);

  const bool ok = violations.empty();
  if (!ok) {
    for (const std::string& v : violations) {
      std::cout << "GATE FAILURE " << v << "\n";
    }
  }
  std::cout << "\nCorrectness gate (bit-identical checksums + makespans, "
               "zero reports, qmcpack pruned measured phase <= 2.0x): "
            << (ok ? "passed" : "FAILED") << "\n"
            << "Expected shape: report mode costs a modest constant factor "
               "of host time\n(vector-clock joins on every sync edge, epoch "
               "checks per instrumented access);\nreport:pruned pays one "
               "record-only pass up front, then skips the stamps the\nstatic "
               "partition proved safe — its measured phase sits between off "
               "and report.\n";
  return ok ? 0 : 1;
}
