// Adaptive Maps evaluation figure: wall time of all five runtime
// configurations — the paper's four static ones plus the adaptive policy
// engine — on the QMCPack NiO proxy ({S2, S8, S32} x {1, 8} host threads)
// and the five SPECaccel proxies.
//
// Acceptance bars (the binary exits 1 if any is violated):
//   * Adaptive within 5% of the best static configuration on every case;
//   * Adaptive strictly beats Implicit Zero-Copy on ep (the GPU-first-touch
//     trap the static zero-copy configurations fall into);
//   * Adaptive strictly beats Legacy Copy on spC and bt (the per-cycle
//     allocation + transfer trap Copy falls into).
//
// Runs are deterministic (no measurement jitter): the bars compare cost
// models, not noise.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/spec.hpp"

namespace {

using namespace zc;
using omp::RuntimeConfig;

constexpr std::array<RuntimeConfig, 4> kStaticConfigs{
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::EagerMaps,
};

struct Case {
  std::string name;
  workloads::Program program;
  /// Static configuration Adaptive must strictly beat (nullopt = none).
  std::optional<RuntimeConfig> must_beat;
};

struct Violation {
  std::string text;
};

double median_wall_us(const workloads::Program& program, RuntimeConfig config,
                      std::uint64_t seed, int reps) {
  workloads::RunOptions options;
  options.config = config;
  options.seed = seed;
  return workloads::repeat_program(program, options, reps).median_time().us();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Adaptive Maps — five configurations across QMCPack and SPECaccel",
      "extends Bertolli et al., SC'24 (Figs. 3-4, Table II)", args);

  const int reps = args.fidelity_min ? 1 : args.reps_or(4, 2);
  std::cout << "repetitions per cell: " << reps << " (median reported)\n\n";

  std::vector<Case> cases;

  // -- QMCPack NiO: sizes x host threads ---------------------------------
  const std::vector<int> sizes =
      args.fidelity_min ? std::vector<int>{2} : std::vector<int>{2, 8, 32};
  const std::vector<int> threads =
      args.fidelity_min ? std::vector<int>{1} : std::vector<int>{1, 8};
  const int steps = args.steps_or(100, 60, 300);
  for (const int size : sizes) {
    for (const int t : threads) {
      workloads::QmcpackParams p;
      p.size = size;
      p.threads = t;
      p.steps = steps;
      cases.push_back({"qmcpack S" + std::to_string(size) + " t" +
                           std::to_string(t),
                       workloads::make_qmcpack(p), std::nullopt});
    }
  }

  // -- SPECaccel proxies --------------------------------------------------
  // fidelity-min keeps the three bar-carrying proxies at the smallest scale
  // where the cost asymmetries they encode still dominate startup noise.
  {
    if (!args.fidelity_min) {
      workloads::StencilParams p;
      if (args.quick) {
        p.grid_bytes /= 8;
        p.iterations /= 8;
      }
      cases.push_back({"stencil", workloads::make_stencil(p), std::nullopt});

      workloads::LbmParams p2;
      if (args.quick) {
        p2.lattice_bytes /= 8;
        p2.iterations /= 8;
      }
      cases.push_back({"lbm", workloads::make_lbm(p2), std::nullopt});
    }
    {
      workloads::EpParams p;
      if (args.fidelity_min) {
        p.arena_bytes = 1ULL << 30;
        p.batches = 4;
        p.per_batch_compute = sim::Duration::from_us(50000);
      } else if (args.quick) {
        p.arena_bytes /= 8;
        p.batches /= 8;
      }
      cases.push_back(
          {"ep", workloads::make_ep(p), RuntimeConfig::ImplicitZeroCopy});
    }
    {
      workloads::SpcParams p;
      if (args.fidelity_min) {
        p.array_bytes = 256ULL << 20;
        p.cycles = 4;
      } else if (args.quick) {
        p.array_bytes /= 8;
        p.cycles = std::max(2, p.cycles / 4);
      }
      cases.push_back(
          {"spC", workloads::make_spc(p), RuntimeConfig::LegacyCopy});
    }
    {
      workloads::BtParams p;
      if (args.fidelity_min) {
        p.array_bytes = 256ULL << 20;
        p.cycles = 3;
      } else if (args.quick) {
        p.array_bytes /= 8;
        p.cycles = std::max(2, p.cycles / 4);
      }
      cases.push_back({"bt", workloads::make_bt(p), RuntimeConfig::LegacyCopy});
    }
  }

  stats::TextTable table{{"Case", "Copy", "Implicit Z-C",
                          "Unified Shared Memory", "Eager Maps", "Adaptive",
                          "Adaptive/best-static"}};
  std::vector<Violation> violations;

  for (const Case& c : cases) {
    std::vector<double> static_us;
    static_us.reserve(kStaticConfigs.size());
    for (const RuntimeConfig config : kStaticConfigs) {
      static_us.push_back(median_wall_us(c.program, config, args.seed, reps));
    }
    const double adaptive_us = median_wall_us(
        c.program, RuntimeConfig::AdaptiveMaps, args.seed, reps);
    const double best_static =
        *std::min_element(static_us.begin(), static_us.end());
    const double vs_best = adaptive_us / best_static;

    std::vector<std::string> row{c.name};
    for (const double us : static_us) {
      row.push_back(stats::TextTable::num(us / 1000.0, 1));
    }
    row.push_back(stats::TextTable::num(adaptive_us / 1000.0, 1));
    row.push_back(stats::TextTable::num(vs_best, 3));
    table.add_row(row);
    std::cout << "." << std::flush;

    if (vs_best > 1.05) {
      violations.push_back({c.name + ": Adaptive is " +
                            stats::TextTable::num((vs_best - 1.0) * 100.0, 1) +
                            "% slower than the best static configuration "
                            "(bar: 5%)"});
    }
    if (c.must_beat) {
      const auto idx = static_cast<std::size_t>(std::distance(
          kStaticConfigs.begin(), std::find(kStaticConfigs.begin(),
                                            kStaticConfigs.end(),
                                            *c.must_beat)));
      if (adaptive_us >= static_us[idx]) {
        violations.push_back({c.name + ": Adaptive (" +
                              stats::TextTable::num(adaptive_us / 1000.0, 1) +
                              " ms) does not beat " + to_string(*c.must_beat) +
                              " (" +
                              stats::TextTable::num(static_us[idx] / 1000.0, 1) +
                              " ms)"});
      }
    }
  }

  std::cout << "\n\nmedian wall time per configuration (ms); "
               "Adaptive/best-static <= 1.05 required\n\n";
  table.print(std::cout);
  args.maybe_write_csv("fig_adaptive", table);

  if (violations.empty()) {
    std::cout << "\nAll acceptance bars hold: Adaptive within 5% of the best "
                 "static configuration\non every case, beats Implicit "
                 "Zero-Copy on ep, and beats Legacy Copy on spC/bt.\n";
    return 0;
  }
  std::cout << "\nACCEPTANCE VIOLATIONS:\n";
  for (const Violation& v : violations) {
    std::cout << "  * " << v.text << '\n';
  }
  return 1;
}
