// UPM memory-pressure figure: wall time and spill-tier telemetry of the
// five runtime configurations as the zero-copy working set oversubscribes
// a socket's HBM (1x baseline, then 1.25x / 2x / 4x), with
// OMPX_APU_PRESSURE=watermarks driving access-counter eviction to the DDR
// tier — the graded-slowdown story that replaces the hard pool-OOM of the
// capacity-limited runs.
//
// Acceptance bars (the binary exits 1 if any is violated):
//   * no pool-OOM hard fail under watermarks: Legacy Copy completes every
//     oversubscription ratio with zero HbmExhausted events and at least
//     one PoolReclaimed event per oversubscribed ratio;
//   * with pressure off, Legacy Copy at 4x shows the historical behavior
//     (HbmExhausted + OOM fallback to zero-copy) — the contrast the figure
//     is about;
//   * graded degradation: at every oversubscribed ratio the Implicit
//     Zero-Copy run pays a visible but bounded pressure tax over an
//     uncapped-HBM floor run of identical geometry (1.02x..10x — a
//     gradient, not a cliff), and total wall time grows monotonically in
//     the ratio instead of falling off a failure edge;
//   * the spill tier actually cycles at 4x: eviction and promotion events
//     both occur under every zero-copy configuration;
//   * all five configurations compute identical checksums at every ratio,
//     including under the injected pressure-fault schedule with seeds
//     1/7/42.
//
// Runs are deterministic (no measurement jitter): the bars compare cost
// models, not noise.

#include <array>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "zc/workloads/oversubscribe.hpp"

namespace {

using namespace zc;
using omp::RuntimeConfig;

constexpr std::array<RuntimeConfig, 5> kAllConfigs{
    RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

const char kPressureFaults[] =
    "evict_storm@p=0.25:x4;migration_stall@p=0.5:x6;"
    "thp_split_storm@call=5;counter_loss@p=0.2";

workloads::OversubscribeParams params_for(double ratio, int sweeps) {
  workloads::OversubscribeParams p;
  p.working_set_ratio = ratio;
  p.sweeps = sweeps;
  return p;
}

workloads::RunOptions pressured_options(
    RuntimeConfig config, const workloads::OversubscribeParams& p,
    std::uint64_t seed) {
  workloads::RunOptions o;
  o.config = config;
  o.seed = seed;
  o.topology = workloads::oversubscribed_topology(p);
  o.pressure_spec = "watermarks";
  o.automigrate_spec = "4";
  o.thp_spec = "dynamic";
  return o;
}

std::string ms(double us) { return stats::TextTable::num(us / 1000.0, 1); }

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Memory pressure — HBM oversubscription x five configurations",
      "extends Bertolli et al., SC'24 with watermark reclaim to a DDR tier",
      args);

  const int sweeps = args.level(2, 1, 3);
  constexpr std::array<double, 4> kRatios{0.25, 1.25, 2.0, 4.0};

  std::vector<std::string> violations;
  auto require = [&violations](bool ok, const std::string& text) {
    if (!ok) {
      violations.push_back(text);
    }
  };

  // ---- oversubscription ladder x configuration sweep -------------------
  // ratio 0.25 is the in-capacity baseline: the working set itself fits,
  // though the pinned runtime image still crowds the dispatch watermark a
  // little. The degradation bars normalize against the uncapped floor run
  // below, not against this row.
  std::map<double, std::map<RuntimeConfig, double>> wall_us;
  std::map<double, double> pressure_tax;
  std::map<double, double> checksum_at;
  stats::TextTable table{{"Working set / HBM", "Copy", "Implicit Z-C",
                          "Unified Shared Memory", "Eager Maps", "Adaptive",
                          "pressure tax", "evicted/promoted pages"}};
  for (const double ratio : kRatios) {
    const workloads::OversubscribeParams p = params_for(ratio, sweeps);
    const workloads::Program program = workloads::make_oversubscribe(p);
    // The floor: the same program and geometry on an uncapped socket —
    // identical phases and maps, zero reclaim. The ratio of the two
    // Implicit Z-C runs isolates what pressure handling itself costs.
    workloads::RunOptions floor_opts;
    floor_opts.config = RuntimeConfig::ImplicitZeroCopy;
    floor_opts.seed = args.seed;
    floor_opts.pressure_spec = "watermarks";
    floor_opts.automigrate_spec = "4";
    floor_opts.thp_spec = "dynamic";
    const workloads::RunResult floor =
        workloads::run_program(program, floor_opts);
    std::vector<std::string> row{stats::TextTable::num(ratio, 2) + "x"};
    double checksum = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t evicted = 0;
    std::uint64_t promoted = 0;
    for (const RuntimeConfig config : kAllConfigs) {
      const workloads::RunResult r = workloads::run_program(
          program, pressured_options(config, p, args.seed));
      wall_us[ratio][config] = r.wall_time.us();
      row.push_back(ms(r.wall_time.us()));
      if (checksum != checksum) {
        checksum = r.checksum;
      } else {
        require(r.checksum == checksum,
                "checksum mismatch at " + stats::TextTable::num(ratio, 2) +
                    "x under " + to_string(config));
      }
      require(!r.faults.any(trace::FaultEvent::RegionFailed),
              std::string("region failure at ") +
                  stats::TextTable::num(ratio, 2) + "x under " +
                  to_string(config));
      if (config == RuntimeConfig::LegacyCopy) {
        require(r.faults.count(trace::FaultEvent::HbmExhausted) == 0,
                "pool-OOM hard fail under watermarks at " +
                    stats::TextTable::num(ratio, 2) + "x");
        if (ratio > 1.0) {
          require(r.faults.count(trace::FaultEvent::PoolReclaimed) > 0,
                  "no pool reclaim at " + stats::TextTable::num(ratio, 2) +
                      "x under Copy");
        }
      }
      if (config == RuntimeConfig::ImplicitZeroCopy && !r.devices.empty()) {
        evicted = r.devices[0].counters.evicted_pages;
        promoted = r.devices[0].counters.promoted_pages;
        if (ratio >= 4.0) {
          require(evicted > 0 && promoted > 0,
                  "spill tier idle at 4x under Implicit Z-C");
        }
      }
      std::cout << "." << std::flush;
    }
    checksum_at[ratio] = checksum;
    require(floor.checksum == checksum,
            "uncapped floor checksum differs at " +
                stats::TextTable::num(ratio, 2) + "x");
    pressure_tax[ratio] =
        wall_us[ratio][RuntimeConfig::ImplicitZeroCopy] / floor.wall_time.us();
    row.push_back(stats::TextTable::num(pressure_tax[ratio], 3));
    row.push_back(std::to_string(evicted) + "/" + std::to_string(promoted));
    table.add_row(row);
  }

  // ---- graded degradation ----------------------------------------------
  {
    const auto wall = [&wall_us](double ratio) {
      return wall_us[ratio][RuntimeConfig::ImplicitZeroCopy];
    };
    require(wall(0.25) < wall(1.25) && wall(1.25) < wall(2.0) &&
                wall(2.0) < wall(4.0),
            "wall time not monotone in the oversubscription ratio under "
            "Implicit Z-C");
    for (const double ratio : {1.25, 2.0, 4.0}) {
      require(pressure_tax[ratio] > 1.02,
              "pressure tax invisible at " + stats::TextTable::num(ratio, 2) +
                  "x (reclaim churn unpriced?)");
      require(pressure_tax[ratio] < 10.0,
              "pressure tax above 10x at " + stats::TextTable::num(ratio, 2) +
                  "x (cliff, not gradient)");
    }
  }

  // ---- the historical contrast: pressure off at 4x ---------------------
  {
    const workloads::OversubscribeParams p = params_for(4.0, sweeps);
    const workloads::Program program = workloads::make_oversubscribe(p);
    workloads::RunOptions off;
    off.config = RuntimeConfig::LegacyCopy;
    off.seed = args.seed;
    off.topology = workloads::oversubscribed_topology(p);
    const workloads::RunResult hard = workloads::run_program(program, off);
    require(hard.faults.count(trace::FaultEvent::HbmExhausted) > 0,
            "pressure-off 4x Copy run shows no capacity OOM — the contrast "
            "baseline is broken");
    require(hard.faults.count(trace::FaultEvent::OomFallbackZeroCopy) > 0,
            "pressure-off 4x Copy run never rode the OOM fallback ladder");
    require(hard.checksum == checksum_at[4.0],
            "pressure-off checksum differs from watermark runs at 4x");
    std::cout << "." << std::flush;
  }

  std::cout << "\n\noversubscription wall time per configuration (ms); "
               "telemetry from the Implicit Z-C runs\n\n";
  table.print(std::cout);
  args.maybe_write_csv("fig_pressure", table);

  // ---- five-config checksum identity under pressure faults -------------
  if (!args.fidelity_min) {
    const workloads::OversubscribeParams p = params_for(2.0, sweeps);
    const workloads::Program program = workloads::make_oversubscribe(p);
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      double checksum = std::numeric_limits<double>::quiet_NaN();
      for (const RuntimeConfig config : kAllConfigs) {
        workloads::RunOptions options = pressured_options(config, p, seed);
        options.fault_spec = kPressureFaults;
        options.stress_seed = seed;
        const workloads::RunResult r =
            workloads::run_program(program, options);
        if (checksum != checksum) {
          checksum = r.checksum;
        } else {
          require(r.checksum == checksum,
                  "pressure-fault checksum mismatch at seed " +
                      std::to_string(seed) + " under " + to_string(config));
        }
      }
      std::cout << "." << std::flush;
    }
    std::cout << "\npressure-fault seeds 1/7/42: five-config checksum "
                 "identity holds at 2x oversubscription\n";
  }

  std::vector<std::pair<std::string, double>> metrics;
  for (const double ratio : kRatios) {
    const std::string tag = stats::TextTable::num(ratio, 2) + "x";
    metrics.emplace_back("wall_ms_implicit_" + tag,
                         wall_us[ratio][RuntimeConfig::ImplicitZeroCopy] /
                             1000.0);
    if (ratio > 1.0) {
      metrics.emplace_back("pressure_tax_" + tag, pressure_tax[ratio]);
    }
  }
  args.maybe_write_json("fig_pressure", violations, metrics);

  if (violations.empty()) {
    std::cout << "\nAll acceptance bars hold: watermark reclaim turns "
                 "pool-OOM into graded slowdown, the spill tier cycles, "
                 "degradation is monotone, checksums identical at every "
                 "ratio.\n";
    return 0;
  }
  std::cout << "\nACCEPTANCE VIOLATIONS:\n";
  for (const std::string& v : violations) {
    std::cout << "  * " << v << '\n';
  }
  return 1;
}
