// The DES perf trajectory: host-side events/sec and wall-clock of the
// simulator core, committed as BENCH_DES.json so later PRs have a baseline
// to defend (ROADMAP: "Simulator raw speed").
//
// Cases:
//   sched_churn        pure scheduler micro: many threads, mutex churn,
//                      reschedule ties, sleepers — the pick_next/timer path.
//   qmcpack_s128_8t    the paper's big QMCPack cell (S128, 8 host threads).
//   qmcpack_s128_8t_4apu
//                      the same cell partitioned over a 4-socket xGMI
//                      fabric (per-link timelines + NUMA placement path).
//   spec_suite         all five SPECaccel proxies, one pass each.
//   service_mix        the multi-tenant service at ~2x overload, full
//                      policy (admission + DRR + breakers + watermarks).
//   qmcpack_race_off / qmcpack_race_report
//                      race-check overhead pair on a mid-size QMCPack run.
//
// Metrics: `events` is the scheduler's discrete-event count (context
// switches + timer fires; deterministic per scenario), `events_per_sec`
// divides it by measured host wall-clock (median of --reps runs).
//
//   --json=PATH    write results (the committed BENCH_DES.json)
//   --check=PATH   compare against a committed baseline; exit 1 when any
//                  case regresses events/sec by more than --tolerance
//                  (default 0.20) — the CI perf-smoke gate
//   --quick        ~10x smaller scenario scale
//   --reps=N       host-time repetitions per case (default 3)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "zc/service/service.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/stats/summary.hpp"
#include "zc/workloads/oversubscribe.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/runner.hpp"
#include "zc/workloads/spec.hpp"

namespace {

using namespace zc;
using namespace zc::sim::literals;
using Clock = std::chrono::steady_clock;

struct Options {
  bool quick = false;
  int reps = 3;
  double tolerance = 0.20;
  std::string json_path;
  std::string check_path;
  std::string only;  ///< run just the case whose name contains this
};

struct CaseResult {
  std::string name;
  std::uint64_t events = 0;   ///< deterministic DES event count
  double host_seconds = 0.0;  ///< median host wall-clock over reps
  double events_per_sec = 0.0;
  double sim_wall_ms = 0.0;  ///< simulated makespan (0 for the pure micro)
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      o.quick = true;
    } else if (a.rfind("--reps=", 0) == 0) {
      o.reps = std::atoi(a.c_str() + 7);
    } else if (a.rfind("--tolerance=", 0) == 0) {
      o.tolerance = std::atof(a.c_str() + 12);
    } else if (a.rfind("--json=", 0) == 0) {
      o.json_path = a.substr(7);
    } else if (a.rfind("--check=", 0) == 0) {
      o.check_path = a.substr(8);
    } else if (a.rfind("--only=", 0) == 0) {
      o.only = a.substr(7);
    } else if (a == "--help" || a == "-h") {
      std::cout << "options: --quick | --reps=N | --tolerance=F | "
                   "--json=PATH | --check=PATH | --only=SUBSTR\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      std::exit(2);
    }
  }
  if (o.reps < 1) {
    o.reps = 1;
  }
  return o;
}

/// Run `body` (which returns a DES event count) `reps` times; report the
/// median host time so one noisy run cannot fail the CI gate.
template <typename Body>
CaseResult measure(const std::string& name, int reps, Body&& body) {
  CaseResult r;
  r.name = name;
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point t0 = Clock::now();
    const std::pair<std::uint64_t, double> out = body();
    const Clock::time_point t1 = Clock::now();
    secs.push_back(std::chrono::duration<double>(t1 - t0).count());
    r.events = out.first;
    r.sim_wall_ms = out.second;
  }
  // One sorted copy answers every quantile query (stats::SortedSamples).
  const stats::SortedSamples sorted{std::move(secs)};
  r.host_seconds = sorted.quantile(0.5);
  r.events_per_sec =
      r.host_seconds > 0.0 ? static_cast<double>(r.events) / r.host_seconds
                           : 0.0;
  return r;
}

/// Pure scheduler churn: `threads` equal-priority workers advancing in
/// small unequal steps (constant tie pressure on pick_next), contending on
/// a small set of mutexes (wake-one handoff path), periodically calling
/// reschedule() (the deprioritized tie bucket) and sleeping (timer path).
std::uint64_t sched_churn(int threads, int iters) {
  sim::Scheduler s;
  std::vector<sim::Mutex> locks(8);
  for (int t = 0; t < threads; ++t) {
    s.spawn("w" + std::to_string(t), [&s, &locks, t, iters] {
      for (int k = 0; k < iters; ++k) {
        s.advance(sim::Duration::nanoseconds(100 + (t * 7 + k) % 3));
        if (k % 4 == 0) {
          sim::Mutex& m = locks[static_cast<std::size_t>((t + k) % 8)];
          m.lock(s);
          s.advance(10_ns);
          m.unlock(s);
        }
        if (k % 16 == 5) {
          s.reschedule();
        }
        if (k % 64 == 9) {
          s.sleep_for(sim::Duration::nanoseconds(50 + k % 7));
        }
      }
    });
  }
  s.run();
  return s.events();
}

workloads::RunOptions qmc_options(const std::string& race_spec = {}) {
  workloads::RunOptions opt;
  opt.config = omp::RuntimeConfig::ImplicitZeroCopy;
  opt.seed = 1;
  opt.race_check_spec = race_spec;
  return opt;
}

std::pair<std::uint64_t, double> run_qmcpack(int size, int threads, int steps,
                                             const std::string& race_spec,
                                             int sockets = 0) {
  workloads::QmcpackParams p;
  p.size = size;
  p.threads = threads;
  p.steps = steps;
  workloads::RunOptions opt = qmc_options(race_spec);
  if (sockets > 1) {
    p.sockets = sockets;
    opt.sockets = sockets;
    opt.fabric_spec = "xgmi";
  }
  const workloads::RunResult r =
      workloads::run_program(workloads::make_qmcpack(p), opt);
  return {r.sim_events, r.wall_time.ms()};
}

/// A 2x-oversubscribed sweep under watermark reclaim: the pressure hot
/// path (access-counter sampling, watermark checks, eviction batches, DDR
/// promotion faults) layered on the dispatch loop.
std::pair<std::uint64_t, double> run_oversub_pressure() {
  workloads::OversubscribeParams p;
  p.working_set_ratio = 2.0;
  p.sweeps = 1;
  workloads::RunOptions opt;
  opt.config = omp::RuntimeConfig::ImplicitZeroCopy;
  opt.seed = 1;
  opt.topology = workloads::oversubscribed_topology(p);
  opt.pressure_spec = "watermarks";
  opt.automigrate_spec = "4";
  opt.thp_spec = "dynamic";
  const workloads::RunResult r =
      workloads::run_program(workloads::make_oversubscribe(p), opt);
  return {r.sim_events, r.wall_time.ms()};
}

/// The multi-tenant service at ~2x overload under the full policy: the
/// admission / DRR / breaker / watermark hot path (many fibers contending
/// on the service lock) layered over a 2-socket capped node.
std::pair<std::uint64_t, double> run_service_mix(bool quick) {
  service::ServiceParams p;
  p.config.tenants = 4;
  p.config.policy = apu::ServicePolicy::Full;
  p.workers = 4;
  p.arrival.tenants = 4;
  p.arrival.sockets = 2;
  p.arrival.jobs = quick ? 60 : 180;
  p.arrival.base_interarrival = sim::Duration::microseconds(1000);
  p.arrival.kernel_compute = sim::Duration::microseconds(50);
  p.queue_limit = 6;
  p.base.config = omp::RuntimeConfig::LegacyCopy;
  apu::Topology capped;
  capped.sockets = 2;
  capped.hbm_bytes = 512ULL << 20;
  p.base.topology = capped;
  p.base.seed = 1;
  const service::ServiceResult r = service::run_service(p);
  return {r.run.sim_events, r.run.wall_time.ms()};
}

std::pair<std::uint64_t, double> run_spec_suite(bool quick) {
  const double scale = quick ? 0.1 : 1.0;
  auto scaled = [scale](int v) {
    return std::max(1, static_cast<int>(v * scale));
  };
  std::uint64_t events = 0;
  double sim_ms = 0.0;
  auto add = [&](const workloads::Program& prog) {
    const workloads::RunResult r = workloads::run_program(prog, qmc_options());
    events += r.sim_events;
    sim_ms += r.wall_time.ms();
  };
  workloads::StencilParams st;
  st.iterations = scaled(st.iterations);
  add(workloads::make_stencil(st));
  workloads::LbmParams lbm;
  lbm.iterations = scaled(lbm.iterations);
  add(workloads::make_lbm(lbm));
  workloads::EpParams ep;
  ep.batches = scaled(ep.batches);
  add(workloads::make_ep(ep));
  workloads::SpcParams spc;
  spc.cycles = scaled(spc.cycles);
  add(workloads::make_spc(spc));
  workloads::BtParams bt;
  bt.cycles = scaled(bt.cycles);
  add(workloads::make_bt(bt));
  return {events, sim_ms};
}

void write_json(const std::string& path, const std::vector<CaseResult>& cases,
                double race_overhead_x) {
  std::ofstream out{path};
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    std::exit(1);
  }
  out << "{\n";
  out << "  \"schema\": \"bench_des/v1\",\n";
  out << "  \"generated_by\": \"bench/micro_des\",\n";
  out << "  \"race_report_overhead_x\": " << race_overhead_x << ",\n";
  out << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    out << "    {\"name\": \"" << c.name << "\", \"events\": " << c.events
        << ", \"host_seconds\": " << c.host_seconds
        << ", \"events_per_sec\": " << c.events_per_sec
        << ", \"sim_wall_ms\": " << c.sim_wall_ms << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "[json] wrote " << path << '\n';
}

/// Minimal reader for the JSON this binary writes: pulls the
/// (name, events_per_sec) pairs out of the "cases" array.
std::map<std::string, double> read_baseline(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "cannot read baseline " << path << '\n';
    std::exit(1);
  }
  std::map<std::string, double> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t n = line.find("\"name\": \"");
    if (n == std::string::npos) {
      continue;
    }
    const std::size_t n0 = n + std::strlen("\"name\": \"");
    const std::size_t n1 = line.find('"', n0);
    const std::size_t e = line.find("\"events_per_sec\": ");
    if (n1 == std::string::npos || e == std::string::npos) {
      continue;
    }
    out[line.substr(n0, n1 - n0)] =
        std::atof(line.c_str() + e + std::strlen("\"events_per_sec\": "));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const int churn_threads = opt.quick ? 64 : 256;
  const int churn_iters = opt.quick ? 400 : 2000;
  const int qmc_steps = opt.quick ? 8 : 40;
  const int race_steps = opt.quick ? 4 : 12;

  std::cout << "== micro_des: DES core events/sec ==\n";
  std::vector<CaseResult> cases;
  const auto wanted = [&](const std::string& name) {
    return opt.only.empty() || name.find(opt.only) != std::string::npos;
  };

  if (wanted("sched_churn")) {
    cases.push_back(measure("sched_churn", opt.reps, [&] {
      return std::pair<std::uint64_t, double>{
          sched_churn(churn_threads, churn_iters), 0.0};
    }));
  }
  if (wanted("qmcpack_s128_8t")) {
    cases.push_back(measure("qmcpack_s128_8t", opt.reps, [&] {
      return run_qmcpack(128, 8, qmc_steps, "");
    }));
  }
  if (wanted("qmcpack_s128_8t_4apu")) {
    // The same cell statically partitioned over a 4-socket xGMI fabric:
    // exercises per-link timelines, NUMA placement, and the per-device
    // counters on the hot path.
    cases.push_back(measure("qmcpack_s128_8t_4apu", opt.reps, [&] {
      return run_qmcpack(128, 8, qmc_steps, "", /*sockets=*/4);
    }));
  }
  if (wanted("oversub_pressure")) {
    cases.push_back(measure("oversub_pressure", opt.reps,
                            [&] { return run_oversub_pressure(); }));
  }
  if (wanted("spec_suite")) {
    cases.push_back(measure("spec_suite", opt.reps,
                            [&] { return run_spec_suite(opt.quick); }));
  }
  if (wanted("service_mix")) {
    cases.push_back(measure("service_mix", opt.reps,
                            [&] { return run_service_mix(opt.quick); }));
  }
  double race_overhead_x = 0.0;
  if (wanted("qmcpack_race_off") && wanted("qmcpack_race_report")) {
    cases.push_back(measure("qmcpack_race_off", opt.reps, [&] {
      return run_qmcpack(16, 8, race_steps, "off");
    }));
    cases.push_back(measure("qmcpack_race_report", opt.reps, [&] {
      return run_qmcpack(16, 8, race_steps, "report");
    }));
    race_overhead_x = cases[cases.size() - 1].host_seconds /
                      std::max(1e-12, cases[cases.size() - 2].host_seconds);
  }

  for (const CaseResult& c : cases) {
    std::cout << "  " << c.name << ": " << c.events << " events in "
              << c.host_seconds << " s  ->  "
              << static_cast<std::uint64_t>(c.events_per_sec)
              << " events/sec";
    if (c.sim_wall_ms > 0.0) {
      std::cout << "  (sim " << c.sim_wall_ms << " ms)";
    }
    std::cout << '\n';
  }
  std::cout << "  race report overhead: " << race_overhead_x << "x\n";

  if (!opt.json_path.empty()) {
    write_json(opt.json_path, cases, race_overhead_x);
  }
  if (!opt.check_path.empty()) {
    const std::map<std::string, double> base = read_baseline(opt.check_path);
    bool ok = true;
    for (const CaseResult& c : cases) {
      const auto it = base.find(c.name);
      if (it == base.end()) {
        std::cout << "[check] " << c.name << ": no baseline, skipped\n";
        continue;
      }
      const double floor = it->second * (1.0 - opt.tolerance);
      const bool pass = c.events_per_sec >= floor;
      std::cout << "[check] " << c.name << ": "
                << static_cast<std::uint64_t>(c.events_per_sec)
                << " vs baseline " << static_cast<std::uint64_t>(it->second)
                << " (floor " << static_cast<std::uint64_t>(floor) << ") "
                << (pass ? "ok" : "REGRESSION") << '\n';
      ok = ok && pass;
    }
    if (!ok) {
      std::cerr << "perf-smoke: events/sec regressed more than "
                << opt.tolerance * 100 << "% against " << opt.check_path
                << '\n';
      return 1;
    }
  }
  return 0;
}
