// Ablation: sweep the XNACK demand-materialization cost and watch the
// 452.ep verdict flip. The paper's ep result (zero-copy 0.89x of Copy)
// hinges on GPU-side first touch being much more expensive per page than
// bulk population; if fault service were cheap, Implicit Zero-Copy would
// tie or win.

#include "common.hpp"
#include "zc/workloads/spec.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Ablation — XNACK page-materialization cost vs 452.ep ratio",
      "Bertolli et al., SC'24, Table II/III mechanism", args);

  workloads::EpParams ep;
  if (args.quick) {
    ep.arena_bytes /= 8;
    ep.batches /= 8;
  }
  const workloads::Program program = workloads::make_ep(ep);

  stats::TextTable table{
      {"page_materialize (us)", "Copy wall", "Implicit Z-C wall", "ratio"}};
  for (const double cost_us : {50.0, 150.0, 450.0, 900.0, 1800.0}) {
    apu::CostParams costs = apu::mi300a_costs();
    costs.page_materialize = sim::Duration::from_us(cost_us);
    workloads::RunOptions copy_opts{.config = RuntimeConfig::LegacyCopy,
                                    .seed = args.seed};
    copy_opts.costs = costs;
    workloads::RunOptions zc_opts{.config = RuntimeConfig::ImplicitZeroCopy,
                                  .seed = args.seed};
    zc_opts.costs = costs;
    const workloads::RunResult copy = workloads::run_program(program, copy_opts);
    const workloads::RunResult zc = workloads::run_program(program, zc_opts);
    table.add_row({stats::TextTable::num(cost_us, 0),
                   copy.wall_time.to_string(), zc.wall_time.to_string(),
                   stats::TextTable::num(copy.wall_time / zc.wall_time, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe default (900us) lands at the paper's 0.89; cheap fault "
               "service would make\nzero-copy competitive even on ep, "
               "removing the need for Eager Maps there.\n";
  return 0;
}
