// Ablation: SDMA copy-engine count vs Legacy Copy's multi-thread latency
// hiding on the QMCPack proxy. The paper observes that QMCPack's data-
// streaming optimization hides copies behind other threads' kernels; that
// hiding needs engine capacity. With one engine Copy degrades; beyond two
// the returns flatten (the runtime lock and driver become the bottleneck).

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Ablation — SDMA engine count vs Copy-config latency hiding",
      "Bertolli et al., SC'24, §V-A.3 mechanism", args);
  const int steps = args.steps_or(150, 40, 1000);

  workloads::QmcpackParams params;
  params.size = 8;
  params.threads = 8;
  params.steps = steps;
  // A copy-heavy variant (large per-walker states, e.g. many determinants):
  // this is the regime where streaming actually leans on the engines.
  params.walker_buf_base = 128 << 10;
  const workloads::Program program = workloads::make_qmcpack(params);

  // Zero-copy baseline does not use the engines in steady state.
  const workloads::RunResult zc = workloads::run_program(
      program, {.config = RuntimeConfig::ImplicitZeroCopy, .seed = args.seed});

  stats::TextTable table{
      {"SDMA engines", "Copy wall", "ratio Copy/zero-copy"}};
  for (const int engines : {1, 2, 4, 8}) {
    apu::Topology topo{};
    topo.sdma_engines = engines;
    workloads::RunOptions opts{.config = RuntimeConfig::LegacyCopy,
                               .seed = args.seed};
    opts.topology = topo;
    const workloads::RunResult copy = workloads::run_program(program, opts);
    table.add_row({std::to_string(engines), copy.wall_time.to_string(),
                   stats::TextTable::num(copy.wall_time / zc.wall_time, 2)});
  }
  table.print(std::cout);
  std::cout << "\nzero-copy wall (engine-independent): " << zc.wall_time.to_string()
            << "\nExpected shape: the Copy penalty shrinks as engines are "
               "added, then flattens —\ncopies stop being the bottleneck but "
               "the runtime calls themselves remain.\n";
  return 0;
}
