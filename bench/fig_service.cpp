// Multi-tenant service robustness matrix: offered load {0.5x benign, 2x
// overload} x policy {off, full} for four tenants spread over a 2-socket
// capped-HBM node under LegacyCopy (pool allocations make capacity real).
// The overload cells run with hang + pressure + service faults injected —
// the PR's headline claim is that overload with faults is a survivable,
// deterministic condition, not a crash.
//
// Acceptance bars (the binary exits 1 if any is violated):
//   * full policy at 2x overload: zero HbmExhausted events (admission
//     control, not luck), zero checksum divergences on completed jobs,
//     every tenant still completes work, and every shed job carries a
//     typed JobShed error with a positive retry-after hint;
//   * off policy at 2x overload sheds nothing — the unbounded-FIFO
//     collapse baseline the robustness bars are measured against;
//   * worst-tenant admitted p99 under full at 2x stays below the off
//     baseline's p99 (bounded degradation vs collapse);
//   * at 0.5x benign load both policies complete everything they were
//     offered with zero sheds, and per-tenant checksums are identical
//     across policies (the policy ladder changes scheduling, never
//     answers);
//   * the full-policy overload cell reproduces its entire per-tenant
//     stats block (counts, p50/p99/p999, goodput, checksum) bit-for-bit
//     on a same-seed rerun.
//
// Runs are deterministic (virtual time, seeded arrivals and faults).

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "zc/service/service.hpp"

namespace {

using namespace zc;
using apu::ServicePolicy;
using service::ServiceParams;
using service::ServiceResult;
using workloads::TenantServiceStats;

/// 512 MB per socket: small enough that un-gated Copy-config tenants
/// would collide with capacity, which is what admission control prevents.
apu::Topology capped_topology() {
  apu::Topology t;
  t.sockets = 2;
  t.hbm_bytes = 512ULL << 20;
  return t;
}

/// Hang (recovered by the watchdog), service, and pressure fault sites —
/// the chaos mix of the acceptance criterion, identical for both policies
/// so the p99 comparison is apples-to-apples.
const char kChaosFaults[] =
    "sdma_stall@p=0.03:x40;tenant_burst@p=0.05:x6;"
    "admission_flap@p=0.1;evict_storm@p=0.2:x4";

ServiceParams cell_params(ServicePolicy policy, bool overload,
                          std::uint64_t jobs, std::uint64_t seed) {
  ServiceParams p;
  p.config.tenants = 4;
  p.config.policy = policy;
  p.workers = 4;
  p.arrival.tenants = 4;
  p.arrival.sockets = 2;
  p.arrival.jobs = jobs;
  // Measured service capacity of this cell geometry (4 workers, 2
  // sockets, Copy-managed maps re-copied per kernel) is ~500 jobs/s, i.e.
  // ~2 ms mean interarrival at 1x: 4 ms offers half the capacity, 1 ms
  // twice it.
  p.arrival.base_interarrival =
      sim::Duration::microseconds(overload ? 1000 : 4000);
  p.arrival.kernel_compute = sim::Duration::microseconds(50);
  p.arrival.seed = seed;
  p.base.config = omp::RuntimeConfig::LegacyCopy;
  p.base.topology = capped_topology();
  p.base.seed = seed;
  if (overload) {
    // Tight queues are the degradation mechanism: admitted sojourn is
    // bounded by a small backlog, the excess sheds with retry hints.
    p.queue_limit = 6;
    p.base.fault_spec = kChaosFaults;
    p.base.watchdog_spec = "500us:recover";
    p.base.pressure_spec = "watermarks";
  }
  return p;
}

std::uint64_t total(const std::vector<TenantServiceStats>& tenants,
                    std::uint64_t TenantServiceStats::*field) {
  std::uint64_t n = 0;
  for (const auto& t : tenants) {
    n += t.*field;
  }
  return n;
}

double worst_p99(const std::vector<TenantServiceStats>& tenants) {
  double worst = 0.0;
  for (const auto& t : tenants) {
    worst = std::max(worst, t.p99_us);
  }
  return worst;
}

double aggregate_goodput(const std::vector<TenantServiceStats>& tenants) {
  double g = 0.0;
  for (const auto& t : tenants) {
    g += t.goodput_jps;
  }
  return g;
}

std::string ms(double us) { return stats::TextTable::num(us / 1000.0, 1); }

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Service robustness — offered load x admission/fairness policy",
      "production-traffic extension of Bertolli et al., SC'24 (multi-tenant "
      "zero-copy runtime)",
      args);

  const auto jobs = static_cast<std::uint64_t>(args.level(240, 96, 480));

  std::vector<std::string> violations;
  auto require = [&violations](bool ok, const std::string& text) {
    if (!ok) {
      violations.push_back(text);
    }
  };

  struct Cell {
    const char* load;
    bool overload;
    ServicePolicy policy;
  };
  constexpr std::array<Cell, 4> kCells{{
      {"0.5x", false, ServicePolicy::Off},
      {"0.5x", false, ServicePolicy::Full},
      {"2x", true, ServicePolicy::Off},
      {"2x", true, ServicePolicy::Full},
  }};

  stats::TextTable table{{"Load", "Policy", "offered", "completed", "shed",
                          "failed", "worst p99 (ms)", "goodput (jobs/s)",
                          "makespan (ms)"}};
  std::vector<ServiceResult> results;
  results.reserve(kCells.size());
  for (const Cell& cell : kCells) {
    const ServiceParams p =
        cell_params(cell.policy, cell.overload, jobs, args.seed);
    ServiceResult r = service::run_service(p);
    const auto& tenants = r.run.service_tenants;
    const std::string tag =
        std::string(cell.load) + "/" + apu::to_string(cell.policy);
    // Conservation and typed-shed invariants hold in every cell.
    for (const auto& t : tenants) {
      require(t.offered == t.completed + t.failed + t.shed,
              "offered != completed+failed+shed for tenant " +
                  std::to_string(t.tenant) + " at " + tag);
    }
    require(r.sheds.size() == total(tenants, &TenantServiceStats::shed),
            "shed ledger disagrees with tenant stats at " + tag);
    for (const auto& shed : r.sheds) {
      require(shed.error.code() == omp::ErrorCode::JobShed,
              "untyped shed at " + tag);
      require(shed.retry_after.ns() > 0, "shed without retry hint at " + tag);
    }
    require(r.checksum_divergences == 0,
            "checksum divergence on completed jobs at " + tag);
    require(r.run.faults.count(trace::FaultEvent::HbmExhausted) == 0,
            "HBM exhausted at " + tag);
    table.add_row({cell.load, apu::to_string(cell.policy),
                   std::to_string(total(tenants, &TenantServiceStats::offered)),
                   std::to_string(total(tenants,
                                        &TenantServiceStats::completed)),
                   std::to_string(total(tenants, &TenantServiceStats::shed)),
                   std::to_string(total(tenants, &TenantServiceStats::failed)),
                   ms(worst_p99(tenants)),
                   stats::TextTable::num(aggregate_goodput(tenants), 0),
                   ms(r.run.wall_time.us())});
    results.push_back(std::move(r));
    std::cout << "." << std::flush;
  }
  const ServiceResult& benign_off = results[0];
  const ServiceResult& benign_full = results[1];
  const ServiceResult& over_off = results[2];
  const ServiceResult& over_full = results[3];

  // ---- benign load: both policies complete everything, same answers ----
  for (const ServiceResult* r : {&benign_off, &benign_full}) {
    require(total(r->run.service_tenants, &TenantServiceStats::completed) ==
                total(r->run.service_tenants, &TenantServiceStats::offered),
            "benign-load cell failed to complete everything");
    require(r->sheds.empty(), "benign-load cell shed jobs");
  }
  for (std::size_t t = 0; t < benign_off.run.service_tenants.size(); ++t) {
    require(benign_off.run.service_tenants[t].checksum ==
                benign_full.run.service_tenants[t].checksum,
            "benign-load checksum differs across policies for tenant " +
                std::to_string(t));
  }

  // ---- overload: graceful degradation vs collapse ----------------------
  require(over_off.sheds.empty(),
          "off policy shed jobs at 2x — the collapse baseline is broken");
  require(!over_full.sheds.empty(),
          "full policy shed nothing at 2x overload — bounded queues idle?");
  for (const auto& t : over_full.run.service_tenants) {
    require(t.completed > 0, "tenant " + std::to_string(t.tenant) +
                                 " starved out at 2x under full");
  }
  const double p99_off = worst_p99(over_off.run.service_tenants);
  const double p99_full = worst_p99(over_full.run.service_tenants);
  require(p99_off > 0.0 && p99_full > 0.0, "missing p99 at 2x");
  require(p99_full < p99_off,
          "admitted p99 under full (" + ms(p99_full) +
              " ms) not below the off baseline (" + ms(p99_off) + " ms)");

  // ---- same-seed rerun: the stats pipeline is bit-identical ------------
  {
    const ServiceParams p =
        cell_params(ServicePolicy::Full, /*overload=*/true, jobs, args.seed);
    const ServiceResult again = service::run_service(p);
    const auto& a = over_full.run.service_tenants;
    const auto& b = again.run.service_tenants;
    require(a.size() == b.size(), "rerun tenant count differs");
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const bool same =
          a[i].offered == b[i].offered && a[i].completed == b[i].completed &&
          a[i].shed == b[i].shed && a[i].failed == b[i].failed &&
          a[i].p50_us == b[i].p50_us && a[i].p99_us == b[i].p99_us &&
          a[i].p999_us == b[i].p999_us &&
          a[i].goodput_jps == b[i].goodput_jps &&
          a[i].checksum == b[i].checksum;
      require(same, "same-seed rerun stats differ for tenant " +
                        std::to_string(i));
    }
    require(over_full.run.wall_time.ns() == again.run.wall_time.ns(),
            "same-seed rerun makespan differs");
    std::cout << "." << std::flush;
  }

  std::cout << "\n\noffered load x policy; overload cells run the chaos "
               "fault mix (hang + burst + flap + evict)\n\n";
  table.print(std::cout);
  args.maybe_write_csv("fig_service", table);
  args.maybe_write_json(
      "fig_service", violations,
      {{"p99_us_off_2x", p99_off},
       {"p99_us_full_2x", p99_full},
       {"sheds_full_2x", static_cast<double>(over_full.sheds.size())},
       {"goodput_jps_full_2x",
        aggregate_goodput(over_full.run.service_tenants)}});

  if (violations.empty()) {
    std::cout << "\nAll acceptance bars hold: admission control keeps HBM "
                 "inside capacity, overload sheds typed retry-after errors "
                 "instead of collapsing, admitted p99 stays below the "
                 "policy-off baseline, and the stats pipeline reproduces "
                 "bit-for-bit.\n";
    return 0;
  }
  std::cout << "\nACCEPTANCE VIOLATIONS:\n";
  for (const std::string& v : violations) {
    std::cout << "  * " << v << '\n';
  }
  return 1;
}
