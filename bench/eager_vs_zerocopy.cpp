// §V-A.4 supporting analysis: where Eager Maps wins and loses against
// Implicit Zero-Copy on QMCPack S2 with one host thread. The paper finds:
//  * Eager Maps is ahead during the first ~hundred kernel launches (no
//    first-touch faults), by tens of milliseconds;
//  * a small persistent advantage remains (host-allocated reduction arrays);
//  * but the per-map `svm_attributes_set` syscalls sum to more than the
//    fault time saved, so Eager Maps loses overall.

#include "common.hpp"
#include "zc/workloads/qmcpack.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner("Eager Maps vs Implicit Zero-Copy decomposition (S2, 1 thread)",
                      "Bertolli et al., SC'24, §V-A.4", args);
  const int steps = args.steps_or(1500, 150, 3000);
  std::cout << "MC steps per run: " << steps << "\n\n";

  workloads::QmcpackParams params;
  params.size = 2;
  params.threads = 1;
  params.steps = steps;
  const workloads::Program program = workloads::make_qmcpack(params);

  const workloads::RunResult zc = workloads::run_program(
      program, {.config = RuntimeConfig::ImplicitZeroCopy,
                .seed = args.seed,
                .keep_kernel_records = true});
  const workloads::RunResult eager = workloads::run_program(
      program, {.config = RuntimeConfig::EagerMaps,
                .seed = args.seed,
                .keep_kernel_records = true});

  stats::TextTable table{{"metric", "Implicit Z-C", "Eager Maps"}};
  table.add_row({"wall time", zc.wall_time.to_string(), eager.wall_time.to_string()});
  table.add_row({"GPU page faults", stats::TextTable::count(zc.kernels.total_page_faults),
                 stats::TextTable::count(eager.kernels.total_page_faults)});
  table.add_row({"fault stall (MI)", zc.ledger.mi().to_string(),
                 eager.ledger.mi().to_string()});
  table.add_row({"svm_attributes_set calls",
                 stats::TextTable::count(
                     zc.stats.count(trace::HsaCall::SvmAttributesSet)),
                 stats::TextTable::count(
                     eager.stats.count(trace::HsaCall::SvmAttributesSet))});
  table.add_row({"svm_attributes_set total",
                 zc.stats.total_latency(trace::HsaCall::SvmAttributesSet).to_string(),
                 eager.stats.total_latency(trace::HsaCall::SvmAttributesSet)
                     .to_string()});
  table.print(std::cout);

  std::cout << "\nEager Maps' fault savings vs prefault cost:\n";
  const sim::Duration saved = zc.ledger.mi() - eager.ledger.mi();
  const sim::Duration paid = eager.ledger.mm_prefault();
  std::cout << "  fault time saved:   " << saved.to_string() << '\n';
  std::cout << "  prefault time paid: " << paid.to_string() << '\n';
  std::cout << "  net for Eager Maps: "
            << (saved - paid).to_string()
            << (saved < paid ? "  (loses: prefaulting costs more than faults saved)"
                             : "  (wins)")
            << '\n';

  // The paper's "first hundred kernel launches" analysis: faults make the
  // Implicit Z-C warm-up window noticeably slower; afterwards only the
  // host-reduction pattern keeps a small Eager Maps advantage alive.
  auto window_time = [](const workloads::RunResult& r, std::size_t first) {
    sim::Duration total;
    const std::size_t n = std::min(first, r.kernel_records.size());
    for (std::size_t i = 0; i < n; ++i) {
      total += r.kernel_records[i].duration();
    }
    return total;
  };
  std::cout << "\nKernel-time windows (launch order):\n";
  stats::TextTable windows{{"window", "Implicit Z-C", "Eager Maps", "Z-C excess"}};
  for (const std::size_t first : {std::size_t{100}, std::size_t{1000}}) {
    const sim::Duration z = window_time(zc, first);
    const sim::Duration e = window_time(eager, first);
    windows.add_row({"first " + std::to_string(first), z.to_string(),
                     e.to_string(), (z - e).to_string()});
  }
  windows.add_row({"whole run", zc.kernels.total_time.to_string(),
                   eager.kernels.total_time.to_string(),
                   (zc.kernels.total_time - eager.kernels.total_time).to_string()});
  windows.print(std::cout);
  return 0;
}
