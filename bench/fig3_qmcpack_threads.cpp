// Fig. 3 reproduction: Copy / zero-copy execution-time ratios for the
// QMCPack NiO proxy, one panel per problem size, varying the number of
// OpenMP host threads (1, 2, 4, 8).

#include "qmcpack_experiment.hpp"
#include "zc/stats/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Fig. 3 — QMCPack NiO: Copy/zero-copy ratio vs host threads",
      "Bertolli et al., SC'24, Fig. 3", args);

  const std::vector<int> sizes = workloads::qmcpack_paper_sizes();
  const std::vector<int> threads{1, 2, 4, 8};
  const int steps = args.steps_or(100, 30, 3000);
  const int reps = args.reps_or(4, 2);  // the paper runs QMCPack 4 times
  std::cout << "MC steps per run: " << steps << ", repetitions: " << reps
            << " (median reported)\n\n";

  bench::QmcSweep sweep{steps, reps, bench::measurement_jitter(), args.seed};

  for (const int size : sizes) {
    stats::TextTable table{{"threads", "Implicit Z-C", "Unified Shared Memory",
                            "Eager Maps"}};
    stats::AsciiChart chart{
        "S" + std::to_string(size) +
            ": ratio of Copy time to zero-copy time (higher = zero-copy wins)",
        {"1", "2", "4", "8"}};
    std::vector<double> zc_series;
    std::vector<double> usm_series;
    std::vector<double> eager_series;
    for (const int t : threads) {
      const double zc = sweep.ratio(size, t, RuntimeConfig::ImplicitZeroCopy);
      const double usm =
          sweep.ratio(size, t, RuntimeConfig::UnifiedSharedMemory);
      const double eager = sweep.ratio(size, t, RuntimeConfig::EagerMaps);
      table.add_row({std::to_string(t), stats::TextTable::num(zc),
                     stats::TextTable::num(usm), stats::TextTable::num(eager)});
      zc_series.push_back(zc);
      usm_series.push_back(usm);
      eager_series.push_back(eager);
    }
    chart.add_series("Implicit Zero-Copy", zc_series);
    chart.add_series("Unified Shared Memory", usm_series);
    chart.add_series("Eager Maps", eager_series);
    table.print(std::cout);
    args.maybe_write_csv("fig3_S" + std::to_string(size), table);
    std::cout << '\n';
    chart.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Coefficient of variation (max over all cells):\n";
  for (const RuntimeConfig cfg :
       {RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy,
        RuntimeConfig::UnifiedSharedMemory, RuntimeConfig::EagerMaps}) {
    std::cout << "  " << to_string(cfg) << ": "
              << stats::TextTable::num(sweep.max_cov(cfg), 3) << '\n';
  }
  std::cout << "(paper: Copy 0.03, Implicit Z-C 0.10, USM 0.08; Eager Maps "
               "shows rare large outliers)\n";
  return 0;
}
