// Table III reproduction: memory-management (MM) vs memory-initialization
// (MI) overhead decomposition for 403.stencil and 452.ep, in orders of
// magnitude of microseconds, per configuration.

#include "common.hpp"
#include "zc/trace/overhead_ledger.hpp"
#include "zc/workloads/spec.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Table III — MM vs MI overheads for 403.stencil and 452.ep",
      "Bertolli et al., SC'24, Table III", args);
  std::cout << "MM = GPU-specific allocation + CPU-GPU copies (+ Eager Maps "
               "prefaults);\nMI = kernel stalls on GPU first-touch "
               "(XNACK page-by-page fault handling).\n\n";

  workloads::StencilParams sp;
  workloads::EpParams ep;
  if (args.quick) {
    sp.grid_bytes /= 8;
    sp.iterations /= 8;
    ep.arena_bytes /= 8;
    ep.batches /= 8;
  }

  struct Cell {
    std::string mm;
    std::string mi;
  };
  auto measure = [&](const workloads::Program& program,
                     RuntimeConfig cfg) -> Cell {
    const workloads::RunResult r =
        workloads::run_program(program, {.config = cfg, .seed = args.seed});
    return Cell{trace::order_of_magnitude_us(r.ledger.mm()),
                trace::order_of_magnitude_us(r.ledger.mi())};
  };

  const workloads::Program stencil = workloads::make_stencil(sp);
  const workloads::Program ep_prog = workloads::make_ep(ep);

  stats::TextTable table{{"Base unit: microsec.", "stencil MM", "stencil MI",
                          "ep MM", "ep MI"}};
  struct ConfigRow {
    const char* label;
    RuntimeConfig config;
  };
  const ConfigRow rows[] = {
      {"Copy", RuntimeConfig::LegacyCopy},
      {"Implicit Z-C or USM", RuntimeConfig::ImplicitZeroCopy},
      {"Eager Maps", RuntimeConfig::EagerMaps},
  };
  for (const ConfigRow& row : rows) {
    const Cell s = measure(stencil, row.config);
    const Cell e = measure(ep_prog, row.config);
    table.add_row({row.label, s.mm, s.mi, e.mm, e.mi});
  }
  table.print(std::cout);
  args.maybe_write_csv("table3_overheads", table);

  std::cout << "\nPaper values:\n"
               "| Copy                | O(10^5) | O(0)    | O(10^5) | O(0)    |\n"
               "| Implicit Z-C or USM | O(0)    | O(10^6) | O(0)    | O(10^6) |\n"
               "| Eager Maps          | O(10^4) | O(0)    | O(10^5) | O(0)    |\n";
  return 0;
}
