// Table I reproduction: HSA API call statistics for Legacy Copy and
// Implicit Zero-Copy on the QMCPack NiO proxy, problem size S2, with 1 and
// 8 OpenMP host threads. Reports call counts and the Copy/Implicit-Z-C
// latency ratio for the calls the paper lists.

#include "common.hpp"
#include "zc/trace/compare.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace {

using zc::trace::HsaCall;

const char* paper_use(HsaCall c) {
  switch (c) {
    case HsaCall::SignalWaitScacquire:
      return "Kernel Completion";
    case HsaCall::MemoryPoolAllocate:
      return "Allocate device memory";
    case HsaCall::MemoryAsyncCopy:
      return "Memory copy";
    case HsaCall::SignalAsyncHandler:
      return "Memory copy";
    default:
      return "";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner(
      "Table I — HSA call statistics, QMCPack NiO S2, 1 and 8 threads",
      "Bertolli et al., SC'24, Table I", args);

  // Full fidelity by default: the table reports absolute call counts.
  const int steps = args.steps_or(3000, 300, 3000);
  std::cout << "MC steps per run: " << steps << '\n';

  for (const int threads : {1, 8}) {
    workloads::QmcpackParams params;
    params.size = 2;
    params.threads = threads;
    params.steps = steps;
    const workloads::Program program = workloads::make_qmcpack(params);

    const workloads::RunResult copy = workloads::run_program(
        program, {.config = RuntimeConfig::LegacyCopy, .seed = args.seed});
    const workloads::RunResult zc = workloads::run_program(
        program, {.config = RuntimeConfig::ImplicitZeroCopy, .seed = args.seed});

    std::cout << "\n--- " << threads << " OpenMP thread"
              << (threads > 1 ? "s" : "") << " ---\n";
    stats::TextTable table{{"ROCr/HSA Call", "Used for", "Copy #Calls",
                            "Implicit Z-C #Calls", "Copy/* Latency Ratio"}};
    for (const trace::CallComparison& row : trace::compare_calls(
             copy.stats, zc.stats, trace::table_one_calls())) {
      std::string ratio = "N/A";
      if (row.ratio_defined()) {
        const double r = row.latency_ratio();
        ratio = r >= 10000.0 ? stats::TextTable::num(r, 0)
                             : stats::TextTable::num(r, 2);
      }
      table.add_row({to_string(row.call), paper_use(row.call),
                     stats::TextTable::count(row.baseline_calls),
                     stats::TextTable::count(row.other_calls), ratio});
    }
    table.print(std::cout);
    args.maybe_write_csv("table1_" + std::to_string(threads) + "threads", table);
    std::cout << "total wall time: Copy " << copy.wall_time.to_string()
              << ", Implicit Z-C " << zc.wall_time.to_string() << " (ratio "
              << stats::TextTable::num(copy.wall_time / zc.wall_time) << ")\n";
  }

  std::cout << "\nExpected shape (paper, S2): Copy performs ~3x the waits, "
               "~1000x the pool\nallocations, and ~100,000x the async copies "
               "of Implicit Zero-Copy;\nzero-copy's few allocations/copies "
               "all come from image load and per-thread init.\n";
  return 0;
}
