// Ablation: GPU TLB reach vs kernel-side translation stalls on the stencil
// proxy. With 2 MB translations and a 4096-entry TLB, a 3 GB working set
// fits; shrink the TLB and every sweep thrashes — the mechanism the paper
// suspects behind the Eager Maps S128 variability.

#include "common.hpp"
#include "zc/workloads/spec.hpp"

int main(int argc, char** argv) {
  using namespace zc;
  using omp::RuntimeConfig;

  const bench::Args args = bench::Args::parse(argc, argv);
  bench::print_banner("Ablation — GPU TLB entries vs stencil translation stalls",
                      "Bertolli et al., SC'24, §V-A.1 (TLB thrashing)", args);

  workloads::StencilParams sp;
  sp.grid_bytes = 2ULL << 30;  // 2 x 1024 pages working set
  sp.iterations = args.quick ? 100 : 600;
  sp.per_iter_compute = sim::Duration::from_us(5000);
  const workloads::Program program = workloads::make_stencil(sp);

  stats::TextTable table{{"TLB entries", "TLB misses", "TLB stall",
                          "wall", "stall share"}};
  for (const std::uint32_t entries : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    apu::CostParams costs = apu::mi300a_costs();
    costs.tlb_entries = entries;
    workloads::RunOptions opts{.config = RuntimeConfig::ImplicitZeroCopy,
                               .seed = args.seed};
    opts.costs = costs;
    const workloads::RunResult r = workloads::run_program(program, opts);
    const double share = r.kernels.total_tlb_stall / r.wall_time;
    table.add_row({std::to_string(entries),
                   stats::TextTable::count(r.kernels.launches > 0
                                               ? r.kernels.total_tlb_stall.ns() /
                                                     costs.tlb_walk.ns()
                                               : 0),
                   r.kernels.total_tlb_stall.to_string(), r.wall_time.to_string(),
                   stats::TextTable::num(100.0 * share, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: once the working set exceeds the TLB reach "
               "(2048 entries for\n2x1024 pages), every sweep misses on every "
               "page and the stall share jumps.\n";
  return 0;
}
