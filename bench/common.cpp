#include "common.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace zc::bench {

Args Args::parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      args.quick = true;
    } else if (a == "--full") {
      args.full = true;
    } else if (a == "--fidelity-min") {
      args.fidelity_min = true;
      args.quick = true;  // minimum scale implies the quick scaling too
    } else if (a.rfind("--reps=", 0) == 0) {
      args.reps = std::atoi(a.c_str() + 7);
    } else if (a.rfind("--steps=", 0) == 0) {
      args.steps = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(a.c_str() + 7));
    } else if (a.rfind("--csv=", 0) == 0) {
      args.csv = a.substr(6);
    } else if (a.rfind("--json=", 0) == 0) {
      args.json = a.substr(7);
    } else if (a == "--help" || a == "-h") {
      std::cout << "options: --quick | --full | --fidelity-min | --reps=N | "
                   "--steps=N | --seed=N | --csv=PREFIX | --json=PATH\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option '" << a << "' (try --help)\n";
      std::exit(2);
    }
  }
  return args;
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  const Args& args) {
  std::cout << "== " << title << " ==\n";
  std::cout << "reproduces: " << paper_ref << '\n';
  std::cout << "fidelity: "
            << (args.fidelity_min
                    ? "min"
                    : (args.full ? "full" : (args.quick ? "quick" : "default")))
            << " (seed " << args.seed << ")\n\n";
}

void Args::maybe_write_csv(const std::string& name,
                           const stats::TextTable& table) const {
  if (csv.empty()) {
    return;
  }
  const std::string path = csv + name + ".csv";
  std::ofstream out{path};
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  table.print_csv(out);
  std::cout << "[csv] wrote " << path << '\n';
}

namespace {

/// Minimal JSON string escape: the violation texts are ASCII prose, only
/// quotes and backslashes need care.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Args::maybe_write_json(
    const std::string& name, const std::vector<std::string>& violations,
    const std::vector<std::pair<std::string, double>>& metrics) const {
  if (json.empty()) {
    return;
  }
  std::ofstream out{json};
  if (!out) {
    std::cerr << "cannot write " << json << '\n';
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"bench_accept/v1\",\n";
  out << "  \"bench\": \"" << json_escape(name) << "\",\n";
  out << "  \"ok\": " << (violations.empty() ? "true" : "false") << ",\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(violations[i])
        << "\"";
  }
  out << (violations.empty() ? "" : "\n  ") << "],\n";
  out << "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(metrics[i].first)
        << "\": " << metrics[i].second;
  }
  out << (metrics.empty() ? "" : "\n  ") << "}\n";
  out << "}\n";
  std::cout << "[json] wrote " << json << '\n';
}

sim::JitterParams measurement_jitter() {
  return sim::JitterParams{
      .sigma = 0.015, .outlier_prob = 2e-7, .outlier_factor = 2000.0};
}

}  // namespace zc::bench
