#pragma once

#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "zc/core/config.hpp"
#include "zc/stats/repetition.hpp"
#include "zc/stats/table.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::bench {

/// Shared command-line knobs for the reproduction harness binaries.
///
///   --quick        scale workloads down (~10x faster, coarser ratios)
///   --full         paper fidelity (full step counts / repetitions)
///   --fidelity-min minimal CI smoke scale: smallest workloads that still
///                  exercise every acceptance bar, single repetition
///   --reps=N       override repetition count
///   --steps=N      override QMCPack MC step count
///   --seed=N       base RNG seed
///   --csv=PREFIX   additionally write results as PREFIX<name>.csv
///   --json=PATH    write the acceptance-bar outcome as structured JSON
///                  (CI greps `"ok": true` instead of human prose)
struct Args {
  bool quick = false;
  bool full = false;
  bool fidelity_min = false;
  int reps = -1;
  int steps = -1;
  std::uint64_t seed = 1;
  std::string csv;
  std::string json;

  static Args parse(int argc, char** argv);

  /// Write `table` to "<csv><name>.csv" when --csv was given.
  void maybe_write_csv(const std::string& name,
                       const stats::TextTable& table) const;

  /// Write the acceptance-bar outcome to `json` when --json was given:
  /// {"schema": "bench_accept/v1", "bench": <name>, "ok": <bool>,
  ///  "violations": [...], "metrics": {...}}. Passing benches write
  ///  "ok": true and an empty violations array.
  void maybe_write_json(
      const std::string& name, const std::vector<std::string>& violations,
      const std::vector<std::pair<std::string, double>>& metrics) const;

  [[nodiscard]] int reps_or(int normal, int quick_value) const {
    if (reps > 0) {
      return reps;
    }
    return quick ? quick_value : normal;
  }
  [[nodiscard]] int steps_or(int normal, int quick_value,
                             int full_value) const {
    if (steps > 0) {
      return steps;
    }
    if (full) {
      return full_value;
    }
    return quick ? quick_value : normal;
  }
  /// Generic three-level scale helper.
  [[nodiscard]] int level(int normal, int quick_value, int full_value) const {
    if (full) {
      return full_value;
    }
    return quick ? quick_value : normal;
  }
};

/// The three zero-copy configurations in the paper's reporting order.
inline constexpr std::array<omp::RuntimeConfig, 3> kZeroCopyConfigs{
    omp::RuntimeConfig::ImplicitZeroCopy,
    omp::RuntimeConfig::UnifiedSharedMemory,
    omp::RuntimeConfig::EagerMaps,
};

/// Print the standard experiment banner.
void print_banner(const std::string& title, const std::string& paper_ref,
                  const Args& args);

/// Jitter defaults matching the paper's measurement methodology: a small
/// log-normal term plus rare large outliers (OS interference on syscalls).
[[nodiscard]] sim::JitterParams measurement_jitter();

}  // namespace zc::bench
