// google-benchmark microbenchmarks of the Adaptive Maps policy engine's
// real wall-clock cost. The decision cache sits on `begin_one`'s hot path
// inside the present-table critical section, so its lookup must stay in
// the same cost class as the PresentTable lookup it rides along with.

#include <benchmark/benchmark.h>

#include "zc/adapt/policy.hpp"

namespace {

using namespace zc;
constexpr std::uint64_t kPage = 2ULL << 20;

adapt::RegionFeatures features(std::uint64_t base, std::uint64_t pages) {
  adapt::RegionFeatures f;
  f.range = mem::AddrRange{mem::VirtAddr{base}, pages * kPage};
  f.pages = pages;
  f.cpu_resident_pages = pages;
  f.gpu_absent_pages = pages;
  f.copies_in = true;
  f.copies_out = true;
  return f;
}

adapt::PolicyEngine make_engine() {
  return adapt::PolicyEngine{apu::mi300a_costs(), apu::AdaptParams{},
                             /*devices=*/1, kPage, /*xnack_enabled=*/true};
}

void BM_Decide_CacheHit(benchmark::State& state) {
  // Steady state of a looped data region: the entry is cached and pinned
  // by an outer active mapping, so every decide is a pure containment hit.
  adapt::PolicyEngine engine = make_engine();
  const adapt::RegionFeatures f = features(1ULL << 30, 64);
  benchmark::DoNotOptimize(engine.decide(0, f));  // pin via active map
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(0, f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide_CacheHit);

void BM_Decide_CacheHit_LargeCache(benchmark::State& state) {
  // Containment lookup cost with a populated cache (std::map walk depth).
  adapt::PolicyEngine engine = make_engine();
  const std::int64_t entries = state.range(0);
  for (std::int64_t i = 0; i < entries; ++i) {
    const auto f =
        features((1ULL << 30) + static_cast<std::uint64_t>(i) * 128 * kPage, 64);
    benchmark::DoNotOptimize(engine.decide(0, f));
  }
  const adapt::RegionFeatures probe =
      features((1ULL << 30) + static_cast<std::uint64_t>(entries / 2) * 128 * kPage, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(0, probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide_CacheHit_LargeCache)->Arg(256)->Arg(16384);

void BM_Decide_SubRangeHit(benchmark::State& state) {
  // Nested sub-range maps resolve by containment, not exact match.
  adapt::PolicyEngine engine = make_engine();
  benchmark::DoNotOptimize(engine.decide(0, features(1ULL << 30, 1024)));
  const adapt::RegionFeatures sub = features((1ULL << 30) + 17 * kPage, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(0, sub));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide_SubRangeHit);

void BM_Decide_FreshEvaluation(benchmark::State& state) {
  // Cache-miss path on a never-before-seen range: cost-model evaluation +
  // insertion. Once the cache reaches its capacity (the benchmark argument)
  // every further miss also pays the linear LRU eviction scan — the arg
  // sweep makes that cliff visible. Real programs sit far below the 65536
  // default; a program mapping more distinct ranges than that should raise
  // `AdaptParams::max_cache_entries` instead of paying the scan.
  apu::AdaptParams params;
  params.max_cache_entries = static_cast<std::size_t>(state.range(0));
  adapt::PolicyEngine engine{apu::mi300a_costs(), params, /*devices=*/1,
                             kPage, /*xnack_enabled=*/true};
  std::uint64_t base = 1ULL << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(0, features(base, 16)));
    engine.release(0, mem::AddrRange{mem::VirtAddr{base}, 16 * kPage});
    base += 32 * kPage;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide_FreshEvaluation)->Arg(256)->Arg(65536);

void BM_Decide_SteadyStateLifecycle(benchmark::State& state) {
  // The full per-map protocol a looped target region pays: decide +
  // release, with hysteresis re-evaluations at their natural cadence.
  adapt::PolicyEngine engine = make_engine();
  const adapt::RegionFeatures f = features(1ULL << 30, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.decide(0, f));
    engine.release(0, f.range);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decide_SteadyStateLifecycle);

void BM_Predict(benchmark::State& state) {
  // The cost model alone (no cache): three closed-form predictions.
  const adapt::PolicyEngine engine = make_engine();
  const adapt::RegionFeatures f = features(1ULL << 30, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.predict(f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Predict);

}  // namespace

BENCHMARK_MAIN();
