// The simulator doubles as a mapping sanitizer: misuse that silently
// corrupts real systems is caught loudly here.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg) {
  return std::make_unique<OffloadStack>(OffloadStack::machine_config_for(cfg),
                                        OffloadStack::program_for(cfg, {}));
}

TEST(MapSanitizer, FreeingMappedMemoryThrows) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 const mem::VirtAddr buf = rt.host_alloc(1 << 20, "buf");
                 const MapEntry entry = MapEntry::tofrom(buf, 1 << 20);
                 rt.target_data_begin({&entry, 1});
                 rt.host_free(buf);  // still mapped!
               }),
               MappingError);
}

TEST(MapSanitizer, FreeAfterUnmapIsFine) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr buf = rt.host_alloc(1 << 20, "buf");
    const MapEntry entry = MapEntry::tofrom(buf, 1 << 20);
    rt.target_data_begin({&entry, 1});
    rt.target_data_end({&entry, 1});
    EXPECT_NO_THROW(rt.host_free(buf));
  });
}

TEST(MapSanitizer, ChecksEveryDevice) {
  apu::Machine::Config mc =
      OffloadStack::machine_config_for(RuntimeConfig::LegacyCopy);
  mc.topology.sockets = 2;
  OffloadStack stack{std::move(mc), ProgramBinary{}};
  EXPECT_THROW(stack.sched().run_single([&] {
                 OffloadRuntime& rt = stack.omp();
                 const mem::VirtAddr buf = rt.host_alloc(1 << 20, "buf");
                 const MapEntry entry = MapEntry::tofrom(buf, 1 << 20);
                 rt.target_data_begin({&entry, 1}, /*device=*/1);
                 rt.host_free(buf);  // mapped on device 1
               }),
               MappingError);
}

TEST(KernelTraceCsv, EmitsOneRowPerLaunch) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 64, "x"};
    rt.target(TargetRegion{.name = "csvk",
                           .maps = {x.tofrom()},
                           .compute = 5_us,
                           .body = {}});
    x.release();
  });
  std::ostringstream os;
  stack->hsa().kernel_trace().write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name,thread,start_us"), std::string::npos);
  EXPECT_NE(out.find("csvk,0,"), std::string::npos);
}

TEST(BlockSync, BarrierAlignsThreadsAtBlockBoundaries) {
  // With block synchronization on, per-thread finish times bunch together;
  // the run still completes and computes the same checksum.
  workloads::QmcpackParams p;
  p.size = 2;
  p.threads = 4;
  p.walkers_per_thread = 2;
  p.steps = 12;

  workloads::QmcpackParams synced = p;
  synced.block_sync_period = 3;

  const workloads::RunResult free_run = workloads::run_program(
      workloads::make_qmcpack(p),
      {.config = RuntimeConfig::ImplicitZeroCopy});
  const workloads::RunResult synced_run = workloads::run_program(
      workloads::make_qmcpack(synced),
      {.config = RuntimeConfig::ImplicitZeroCopy});
  EXPECT_DOUBLE_EQ(free_run.checksum, synced_run.checksum);
  // Barriers can only slow the makespan down (threads wait for stragglers).
  EXPECT_GE(synced_run.wall_time, free_run.wall_time);
}

}  // namespace
}  // namespace zc::omp
