#include "zc/core/config.hpp"

#include <gtest/gtest.h>

namespace zc::omp {
namespace {

using apu::ApuMapsMode;
using apu::MachineKind;
using apu::RunEnvironment;

RunEnvironment env(bool xnack, bool apu_maps = false, bool eager = false) {
  RunEnvironment e;
  e.hsa_xnack = xnack;
  e.ompx_apu_maps = apu_maps ? ApuMapsMode::On : ApuMapsMode::Off;
  e.ompx_eager_maps = eager;
  return e;
}

RunEnvironment adaptive_env(bool xnack, bool eager = false) {
  RunEnvironment e;
  e.hsa_xnack = xnack;
  e.ompx_apu_maps = ApuMapsMode::Adaptive;
  e.ompx_eager_maps = eager;
  return e;
}

TEST(ResolveConfig, ApuWithXnackAutoSelectsImplicitZeroCopy) {
  EXPECT_EQ(resolve_config(MachineKind::ApuMi300a, env(true), false),
            RuntimeConfig::ImplicitZeroCopy);
}

TEST(ResolveConfig, ApuWithoutXnackFallsBackToCopy) {
  EXPECT_EQ(resolve_config(MachineKind::ApuMi300a, env(false), false),
            RuntimeConfig::LegacyCopy);
}

TEST(ResolveConfig, DiscreteDefaultsToCopyEvenWithXnack) {
  EXPECT_EQ(resolve_config(MachineKind::DiscreteGpu, env(true), false),
            RuntimeConfig::LegacyCopy);
}

TEST(ResolveConfig, DiscreteOptInViaOmpxApuMapsRequiresXnack) {
  // Footnote 1: OMPX_APU_MAPS=1 in an XNACK-enabled environment.
  EXPECT_EQ(resolve_config(MachineKind::DiscreteGpu, env(true, true), false),
            RuntimeConfig::ImplicitZeroCopy);
  EXPECT_EQ(resolve_config(MachineKind::DiscreteGpu, env(false, true), false),
            RuntimeConfig::LegacyCopy);
}

TEST(ResolveConfig, EagerMapsSelectedOnApu) {
  EXPECT_EQ(
      resolve_config(MachineKind::ApuMi300a, env(true, false, true), false),
      RuntimeConfig::EagerMaps);
  // Eager Maps does not require XNACK (§IV-D).
  EXPECT_EQ(
      resolve_config(MachineKind::ApuMi300a, env(false, false, true), false),
      RuntimeConfig::EagerMaps);
}

TEST(ResolveConfig, EagerMapsIgnoredOnDiscrete) {
  EXPECT_EQ(
      resolve_config(MachineKind::DiscreteGpu, env(true, false, true), false),
      RuntimeConfig::LegacyCopy);
}

TEST(ResolveConfig, AdaptiveSelectedOnApuWithOrWithoutXnack) {
  EXPECT_EQ(resolve_config(MachineKind::ApuMi300a, adaptive_env(true), false),
            RuntimeConfig::AdaptiveMaps);
  // Like Eager Maps, the adaptive policy works without XNACK: it simply
  // never classifies a region zero-copy in that environment.
  EXPECT_EQ(resolve_config(MachineKind::ApuMi300a, adaptive_env(false), false),
            RuntimeConfig::AdaptiveMaps);
}

TEST(ResolveConfig, AdaptiveBeatsEagerWhenBothRequested) {
  EXPECT_EQ(
      resolve_config(MachineKind::ApuMi300a, adaptive_env(true, true), false),
      RuntimeConfig::AdaptiveMaps);
}

TEST(ResolveConfig, AdaptiveOnDiscreteCountsAsFootnote1OptIn) {
  // No adaptive engine on discrete nodes; with XNACK the non-off value
  // still opts into zero-copy, without it the node stays on Copy.
  EXPECT_EQ(resolve_config(MachineKind::DiscreteGpu, adaptive_env(true), false),
            RuntimeConfig::ImplicitZeroCopy);
  EXPECT_EQ(
      resolve_config(MachineKind::DiscreteGpu, adaptive_env(false), false),
      RuntimeConfig::LegacyCopy);
}

TEST(ResolveConfig, UsmBinaryAlwaysRunsUsm) {
  EXPECT_EQ(resolve_config(MachineKind::ApuMi300a, env(true), true),
            RuntimeConfig::UnifiedSharedMemory);
  // Even when eager maps is requested: the binary requirement wins.
  EXPECT_EQ(
      resolve_config(MachineKind::ApuMi300a, env(true, false, true), true),
      RuntimeConfig::UnifiedSharedMemory);
  EXPECT_EQ(resolve_config(MachineKind::DiscreteGpu, env(true), true),
            RuntimeConfig::UnifiedSharedMemory);
}

TEST(ResolveConfig, UsmBinaryWithoutXnackIsAnError) {
  // USM binaries cannot fall back to Copy: less portable by construction.
  EXPECT_THROW((void)resolve_config(MachineKind::ApuMi300a, env(false), true),
               ConfigError);
  EXPECT_THROW(
      (void)resolve_config(MachineKind::DiscreteGpu, env(false), true),
      ConfigError);
}

TEST(ConfigPredicates, ZeroCopyAndGlobalsHandling) {
  EXPECT_FALSE(is_zero_copy(RuntimeConfig::LegacyCopy));
  EXPECT_TRUE(is_zero_copy(RuntimeConfig::UnifiedSharedMemory));
  EXPECT_TRUE(is_zero_copy(RuntimeConfig::ImplicitZeroCopy));
  EXPECT_TRUE(is_zero_copy(RuntimeConfig::EagerMaps));
  EXPECT_TRUE(is_zero_copy(RuntimeConfig::AdaptiveMaps));

  EXPECT_TRUE(globals_use_device_copy(RuntimeConfig::LegacyCopy));
  EXPECT_FALSE(globals_use_device_copy(RuntimeConfig::UnifiedSharedMemory));
  EXPECT_TRUE(globals_use_device_copy(RuntimeConfig::ImplicitZeroCopy));
  EXPECT_TRUE(globals_use_device_copy(RuntimeConfig::EagerMaps));
  EXPECT_TRUE(globals_use_device_copy(RuntimeConfig::AdaptiveMaps));
}

TEST(ConfigNames, MatchPaperTerminology) {
  EXPECT_STREQ(to_string(RuntimeConfig::LegacyCopy), "Legacy Copy");
  EXPECT_STREQ(to_string(RuntimeConfig::UnifiedSharedMemory),
               "Unified Shared Memory");
  EXPECT_STREQ(to_string(RuntimeConfig::ImplicitZeroCopy),
               "Implicit Zero-Copy");
  EXPECT_STREQ(to_string(RuntimeConfig::EagerMaps), "Eager Maps");
  EXPECT_STREQ(to_string(RuntimeConfig::AdaptiveMaps), "Adaptive Maps");
}

}  // namespace
}  // namespace zc::omp
