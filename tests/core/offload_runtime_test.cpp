#include "zc/core/offload_runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using trace::HsaCall;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg,
                                         ProgramBinary prog = {}) {
  return std::make_unique<OffloadStack>(OffloadStack::machine_config_for(cfg),
                                        OffloadStack::program_for(cfg, std::move(prog)));
}

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

/// The Fig. 2 program of the paper: a[i] += b[i] * alpha, with alpha a
/// declare-target global. Returns the final contents of a.
std::vector<double> run_fig2(RuntimeConfig cfg, std::size_t n) {
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"alpha", sizeof(double)});
  auto stack = make_stack(cfg, prog);
  std::vector<double> result(n);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, n, "a"};
    HostArray<double> b{rt, n, "b"};
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(i);
      b[i] = 2.0 * static_cast<double>(i) + 1.0;
    }
    rt.host_first_touch(a.range());
    rt.host_first_touch(b.range());
    const mem::VirtAddr alpha = rt.global_host_addr("alpha");
    *stack->memory().space().translate_as<double>(alpha) = 0.5;

    const mem::VirtAddr av = a.addr();
    const mem::VirtAddr bv = b.addr();
    TargetRegion region{
        .name = "saxpy",
        .maps = {a.tofrom(), b.to(),
                 MapEntry::always_to(alpha, sizeof(double))},
        .compute = stream_kernel_cost(stack->machine(), 3 * n * sizeof(double)),
        .body =
            [av, bv, alpha, n](hsa::KernelContext& ctx, const ArgTranslator& tr) {
              double* ad = ctx.ptr<double>(tr.device(av));
              const double* bd = ctx.ptr<double>(tr.device(bv));
              const double al = *ctx.ptr<double>(tr.device(alpha));
              for (std::size_t i = 0; i < n; ++i) {
                ad[i] += bd[i] * al;
              }
            },
    };
    rt.target(region);
    for (std::size_t i = 0; i < n; ++i) {
      result[i] = a[i];
    }
  });
  return result;
}

TEST(OffloadRuntime, Fig2ResultsIdenticalAcrossAllConfigurations) {
  const std::size_t n = 1024;
  const std::vector<double> reference = run_fig2(RuntimeConfig::LegacyCopy, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(reference[i],
                     static_cast<double>(i) + (2.0 * i + 1.0) * 0.5);
  }
  for (RuntimeConfig cfg : kAllConfigs) {
    EXPECT_EQ(run_fig2(cfg, n), reference) << to_string(cfg);
  }
}

TEST(OffloadRuntime, ConfigResolvedFromEnvironmentAtConstruction) {
  for (RuntimeConfig cfg : kAllConfigs) {
    auto stack = make_stack(cfg);
    EXPECT_EQ(stack->omp().config(), cfg);
  }
}

class PerConfig : public ::testing::TestWithParam<RuntimeConfig> {};

INSTANTIATE_TEST_SUITE_P(AllConfigs, PerConfig,
                         ::testing::ValuesIn(kAllConfigs),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RuntimeConfig::LegacyCopy:
                               return "LegacyCopy";
                             case RuntimeConfig::UnifiedSharedMemory:
                               return "UnifiedSharedMemory";
                             case RuntimeConfig::ImplicitZeroCopy:
                               return "ImplicitZeroCopy";
                             case RuntimeConfig::EagerMaps:
                               return "EagerMaps";
                             case RuntimeConfig::AdaptiveMaps:
                               return "AdaptiveMaps";
                           }
                           return "Unknown";
                         });

TEST_P(PerConfig, NestedDataRegionsCopyOutOnlyAtLastRelease) {
  auto stack = make_stack(GetParam());
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    for (int i = 0; i < 16; ++i) {
      x[i] = 1.0;
    }
    const mem::VirtAddr xv = x.addr();
    const MapEntry outer = x.tofrom();
    rt.target_data_begin({&outer, 1});
    TargetRegion region{
        .name = "incr",
        .maps = {x.tofrom()},
        .compute = 1_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* xd = ctx.ptr<double>(tr.device(xv));
          for (int i = 0; i < 16; ++i) {
            xd[i] += 1.0;
          }
        },
    };
    rt.target(region);
    if (!rt.zero_copy()) {
      // Inner tofrom must NOT have copied back (refcount still held).
      EXPECT_DOUBLE_EQ(x[0], 1.0);
    }
    rt.target_data_end({&outer, 1});
    EXPECT_DOUBLE_EQ(x[0], 2.0);  // visible after last release everywhere
  });
}

TEST_P(PerConfig, AlwaysModifierForcesRefresh) {
  auto stack = make_stack(GetParam());
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    x[0] = 1.0;
    const mem::VirtAddr xv = x.addr();
    const MapEntry outer = x.to();
    rt.target_data_begin({&outer, 1});
    x[0] = 42.0;  // host update after the initial transfer
    double seen = 0.0;
    TargetRegion region{
        .name = "read",
        .maps = {MapEntry::always_to(x.addr(), x.bytes())},
        .compute = 1_us,
        .body = [xv, &seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          seen = *ctx.ptr<double>(tr.device(xv));
        },
    };
    rt.target(region);
    EXPECT_DOUBLE_EQ(seen, 42.0);  // always,to refreshed the device view
    rt.target_data_end({&outer, 1});
  });
}

TEST_P(PerConfig, WithoutAlwaysCopyConfigSeesStaleDeviceCopy) {
  auto stack = make_stack(GetParam());
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    x[0] = 1.0;
    const mem::VirtAddr xv = x.addr();
    const MapEntry outer = x.to();
    rt.target_data_begin({&outer, 1});
    x[0] = 42.0;
    double seen = 0.0;
    TargetRegion region{
        .name = "read",
        .maps = {x.to()},
        .compute = 1_us,
        .body = [xv, &seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          seen = *ctx.ptr<double>(tr.device(xv));
        },
    };
    rt.target(region);
    if (rt.zero_copy()) {
      EXPECT_DOUBLE_EQ(seen, 42.0);  // one storage: host update visible
    } else {
      EXPECT_DOUBLE_EQ(seen, 1.0);  // separate device copy is stale
    }
    rt.target_data_end({&outer, 1});
  });
}

TEST(OffloadRuntimeCopy, UnmappedKernelArgumentThrows) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(
      stack->sched().run_single([&] {
        OffloadRuntime& rt = stack->omp();
        HostArray<double> x{rt, 8, "x"};
        HostArray<double> y{rt, 8, "y"};
        const mem::VirtAddr yv = y.addr();
        TargetRegion region{
            .name = "oops",
            .maps = {x.tofrom()},  // y is never mapped
            .compute = 1_us,
            .body = [yv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
              (void)ctx.ptr<double>(tr.device(yv));
            },
        };
        rt.target(region);
      }),
      std::invalid_argument);
}

TEST(OffloadRuntimeCopy, DataEndOfUnmappedRangeThrows) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 const MapEntry entry = x.from();
                 rt.target_data_end({&entry, 1});
               }),
               MappingError);
}

TEST(OffloadRuntimeCopy, MapsAllocateCopyAndFree) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 1 << 16, "x"};
    rt.target_data_begin({});  // trigger lazy image-load/thread init
    const auto allocs_before =
        stack->hsa().stats().count(HsaCall::MemoryPoolAllocate);
    TargetRegion region{.name = "k",
                        .maps = {x.tofrom()},
                        .compute = 5_us,
                        .body = {}};
    rt.target(region);
    const auto& stats = stack->hsa().stats();
    EXPECT_EQ(stats.count(HsaCall::MemoryPoolAllocate), allocs_before + 1);
    EXPECT_EQ(stats.count(HsaCall::MemoryPoolFree), 1u);
    // tofrom: one h2d and one d2h copy.
    EXPECT_EQ(stats.count(HsaCall::MemoryAsyncCopy),
              static_cast<std::uint64_t>(OffloadRuntime::kImageLoadCopies) + 2);
    // The d2h copy registered an async handler.
    EXPECT_EQ(stats.count(HsaCall::SignalAsyncHandler), 1u);
    EXPECT_GT(stack->hsa().ledger().mm_copy(), sim::Duration::zero());
  });
}

TEST(OffloadRuntimeZeroCopy, MapsPerformNoStorageOperations) {
  for (RuntimeConfig cfg : {RuntimeConfig::UnifiedSharedMemory,
                            RuntimeConfig::ImplicitZeroCopy}) {
    auto stack = make_stack(cfg);
    stack->sched().run_single([&] {
      OffloadRuntime& rt = stack->omp();
      HostArray<double> x{rt, 1 << 16, "x"};
      rt.target_data_begin({});  // trigger lazy image-load/thread init
      const auto allocs_init =
          stack->hsa().stats().count(HsaCall::MemoryPoolAllocate);
      const auto copies_init =
          stack->hsa().stats().count(HsaCall::MemoryAsyncCopy);
      TargetRegion region{.name = "k",
                          .maps = {x.tofrom()},
                          .compute = 5_us,
                          .body = {}};
      rt.target(region);
      EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryPoolAllocate),
                allocs_init)
          << to_string(cfg);
      EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryAsyncCopy),
                copies_init)
          << to_string(cfg);
      EXPECT_EQ(stack->hsa().ledger().mm(), sim::Duration::zero());
    });
  }
}

TEST(OffloadRuntimeZeroCopy, FirstKernelFaultsSecondDoesNot) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t page = stack->machine().page_bytes();
    HostArray<std::byte> x{rt, static_cast<std::size_t>(8 * page), "x"};
    TargetRegion region{.name = "k",
                        .maps = {x.tofrom()},
                        .compute = 5_us,
                        .body = {}};
    rt.target(region);
    rt.target(region);
  });
  const auto& recs = stack->hsa().kernel_trace().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].page_faults, 8u);
  EXPECT_EQ(recs[1].page_faults, 0u);
  EXPECT_GT(stack->hsa().ledger().mi(), sim::Duration::zero());
  EXPECT_EQ(stack->hsa().ledger().mm(), sim::Duration::zero());
}

TEST(OffloadRuntimeEager, PrefaultsOnEveryMapAndKernelsNeverFault) {
  auto stack = make_stack(RuntimeConfig::EagerMaps);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t page = stack->machine().page_bytes();
    HostArray<std::byte> x{rt, static_cast<std::size_t>(8 * page), "x"};
    TargetRegion region{.name = "k",
                        .maps = {x.tofrom()},
                        .compute = 5_us,
                        .body = {}};
    rt.target(region);
    rt.target(region);
    rt.target(region);
  });
  const auto& stats = stack->hsa().stats();
  EXPECT_EQ(stats.count(HsaCall::SvmAttributesSet), 3u);  // one per map begin
  EXPECT_EQ(stack->hsa().kernel_trace().summary().total_page_faults, 0u);
  EXPECT_GT(stack->hsa().ledger().mm_prefault(), sim::Duration::zero());
  EXPECT_EQ(stack->hsa().ledger().mi(), sim::Duration::zero());
}

TEST(OffloadRuntimeEager, WorksWithXnackDisabled) {
  apu::Machine::Config mc =
      OffloadStack::machine_config_for(RuntimeConfig::EagerMaps);
  mc.env.hsa_xnack = false;
  OffloadStack stack{mc, {}};
  ASSERT_EQ(stack.omp().config(), RuntimeConfig::EagerMaps);
  stack.sched().run_single([&] {
    OffloadRuntime& rt = stack.omp();
    HostArray<double> x{rt, 4096, "x"};
    TargetRegion region{.name = "k",
                        .maps = {x.tofrom()},
                        .compute = 5_us,
                        .body = {}};
    rt.target(region);  // prefault makes XNACK unnecessary
  });
  EXPECT_EQ(stack.hsa().kernel_trace().summary().total_page_faults, 0u);
}

TEST(OffloadRuntimeGlobals, UsmIndirectionSeesHostUpdatesWithoutMapping) {
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"g", sizeof(double)});
  auto stack = make_stack(RuntimeConfig::UnifiedSharedMemory, prog);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr g = rt.global_host_addr("g");
    double* gh = stack->memory().space().translate_as<double>(g);
    *gh = 7.0;
    double seen = 0.0;
    TargetRegion region{
        .name = "readg",
        .maps = {MapEntry::to(g, sizeof(double))},
        .compute = 1_us,
        .body = [g, &seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          seen = *ctx.ptr<double>(tr.device(g));
        },
    };
    rt.target(region);
    EXPECT_DOUBLE_EQ(seen, 7.0);
    *gh = 9.0;
    rt.target(region);  // no always needed: double indirection to host
    EXPECT_DOUBLE_EQ(seen, 9.0);
  });
}

TEST(OffloadRuntimeGlobals, ImplicitZeroCopyKeepsDeviceCopyOfGlobals) {
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"g", sizeof(double)});
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy, prog);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr g = rt.global_host_addr("g");
    double* gh = stack->memory().space().translate_as<double>(g);
    *gh = 7.0;
    double seen = 0.0;
    TargetRegion plain{
        .name = "readg",
        .maps = {MapEntry::to(g, sizeof(double))},
        .compute = 1_us,
        .body = [g, &seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          seen = *ctx.ptr<double>(tr.device(g));
        },
    };
    TargetRegion always{plain};
    always.maps = {MapEntry::always_to(g, sizeof(double))};

    rt.target(always);  // sync the device copy
    EXPECT_DOUBLE_EQ(seen, 7.0);
    *gh = 9.0;
    rt.target(plain);  // no always: device copy is stale (Copy semantics)
    EXPECT_DOUBLE_EQ(seen, 7.0);
    rt.target(always);  // always,to: system-to-system transfer issued
    EXPECT_DOUBLE_EQ(seen, 9.0);
  });
  // Mapping the global issued real DMA copies even under zero-copy.
  EXPECT_GT(stack->hsa().ledger().mm_copy(), sim::Duration::zero());
}

TEST(OffloadRuntimeGlobals, UnknownGlobalNameThrows) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  EXPECT_THROW(stack->sched().run_single(
                   [&] { (void)stack->omp().global_host_addr("nope"); }),
               OffloadError);
}

TEST(OffloadRuntimeInit, ImageLoadAndThreadInitAllocCounts) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  auto& sched = stack->sched();
  constexpr int kThreads = 4;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn("omp-" + std::to_string(t), [&] {
      OffloadRuntime& rt = stack->omp();
      HostArray<double> x{rt, 64, "x"};
      TargetRegion region{.name = "k",
                          .maps = {x.tofrom()},
                          .compute = 1_us,
                          .body = {}};
      rt.target(region);
      x.release();
    });
  }
  sched.run();
  const auto& stats = stack->hsa().stats();
  // Zero-copy: the only pool allocations are image load + per-thread init.
  EXPECT_EQ(stats.count(HsaCall::MemoryPoolAllocate),
            static_cast<std::uint64_t>(OffloadRuntime::kImageLoadAllocs +
                                       kThreads * OffloadRuntime::kThreadInitAllocs));
  EXPECT_EQ(stats.count(HsaCall::MemoryAsyncCopy),
            static_cast<std::uint64_t>(OffloadRuntime::kImageLoadCopies));
  // Init work is excluded from the steady-state overhead ledger.
  EXPECT_EQ(stack->hsa().ledger().mm(), sim::Duration::zero());
}

TEST(OffloadRuntimeUpdate, TargetUpdateMovesDataUnderCopy) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    x[0] = 1.0;
    const mem::VirtAddr xv = x.addr();
    const MapEntry outer = x.to();
    rt.target_data_begin({&outer, 1});
    x[0] = 5.0;
    rt.target_update_to(MapEntry::to(x.addr(), x.bytes()));
    double seen = 0.0;
    TargetRegion region{
        .name = "read",
        .maps = {x.to()},
        .compute = 1_us,
        .body = [xv, &seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          seen = *ctx.ptr<double>(tr.device(xv));
        },
    };
    rt.target(region);
    EXPECT_DOUBLE_EQ(seen, 5.0);

    // Device-side write then update from.
    TargetRegion write{
        .name = "write",
        .maps = {x.to()},
        .compute = 1_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          *ctx.ptr<double>(tr.device(xv)) = 11.0;
        },
    };
    rt.target(write);
    EXPECT_DOUBLE_EQ(x[0], 5.0);  // not yet visible
    rt.target_update_from(MapEntry::from(x.addr(), x.bytes()));
    EXPECT_DOUBLE_EQ(x[0], 11.0);
    rt.target_data_end({&outer, 1});
  });
}

TEST(OffloadRuntimeUpdate, UpdateOfUnmappedRangeThrowsUnderCopy) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 rt.target_update_to(MapEntry::to(x.addr(), x.bytes()));
               }),
               MappingError);
}

TEST(OffloadRuntime, ZeroSizeMapRejected) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 const MapEntry bad{x.addr(), 0, MapType::To, false};
                 rt.target_data_begin({&bad, 1});
               }),
               OffloadError);
}

TEST(OffloadRuntime, HostArrayMoveAndRelease) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<int> a{rt, 16, "a"};
    a[3] = 42;
    HostArray<int> b{std::move(a)};
    EXPECT_EQ(b[3], 42);
    EXPECT_TRUE(a.addr().is_null());  // NOLINT(bugprone-use-after-move)
    const std::size_t live = stack->memory().space().live_allocations();
    b.release();
    EXPECT_EQ(stack->memory().space().live_allocations(), live - 1);
  });
}

TEST(OffloadRuntime, CopyConfigRoundTripsThroughSeparateDeviceStorage) {
  // End-to-end Legacy Copy dataflow check: host -> device copy -> kernel
  // mutation -> device -> host, with the device address differing from the
  // host address.
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 4, "x"};
    x[0] = 1.5;
    const mem::VirtAddr xv = x.addr();
    mem::VirtAddr dev_seen;
    TargetRegion region{
        .name = "probe",
        .maps = {x.tofrom()},
        .compute = 1_us,
        .body =
            [xv, &dev_seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
              dev_seen = tr.device(xv);
              ctx.ptr<double>(dev_seen)[0] *= 2.0;
            },
    };
    rt.target(region);
    EXPECT_NE(dev_seen, xv);
    EXPECT_DOUBLE_EQ(x[0], 3.0);
  });
}

TEST(OffloadRuntime, ZeroCopyKernelArgsAreHostPointers) {
  for (RuntimeConfig cfg : {RuntimeConfig::UnifiedSharedMemory,
                            RuntimeConfig::ImplicitZeroCopy,
                            RuntimeConfig::EagerMaps}) {
    auto stack = make_stack(cfg);
    stack->sched().run_single([&] {
      OffloadRuntime& rt = stack->omp();
      HostArray<double> x{rt, 4, "x"};
      const mem::VirtAddr xv = x.addr();
      mem::VirtAddr dev_seen;
      TargetRegion region{
          .name = "probe",
          .maps = {x.tofrom()},
          .compute = 1_us,
          .body =
              [xv, &dev_seen](hsa::KernelContext& ctx, const ArgTranslator& tr) {
                dev_seen = tr.device(xv);
                (void)ctx;
              },
      };
      rt.target(region);
      EXPECT_EQ(dev_seen, xv) << to_string(cfg);
    });
  }
}

TEST(OffloadRuntime, DuplicateMapEntriesOnOneConstructRejected) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 const std::vector<MapEntry> dup{x.tofrom(), x.tofrom()};
                 rt.target_data_begin(dup);
               }),
               MappingError);
}

TEST(OffloadRuntime, PartiallyOverlappingMapEntriesRejected) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  EXPECT_THROW(
      stack->sched().run_single([&] {
        OffloadRuntime& rt = stack->omp();
        HostArray<double> x{rt, 64, "x"};
        const std::vector<MapEntry> overlap{
            MapEntry::to(x.addr(), 32 * sizeof(double)),
            MapEntry::to(x.addr() + 16 * sizeof(double), 32 * sizeof(double))};
        rt.target_data_begin(overlap);
      }),
      MappingError);
}

TEST(OffloadRuntimeInit, ConcurrentFirstCallsSeeFullyLoadedImage) {
  // Regression: two threads racing into their first runtime call must both
  // observe a complete image (globals registered, device copies pinned) —
  // the image load yields mid-way and a plain flag would expose a
  // half-loaded state to the second thread.
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"g", sizeof(double)});
  auto stack = make_stack(RuntimeConfig::LegacyCopy, prog);
  auto& sched = stack->sched();
  int ok = 0;
  for (int t = 0; t < 4; ++t) {
    sched.spawn("t" + std::to_string(t), [&stack, &ok] {
      OffloadRuntime& rt = stack->omp();
      const mem::VirtAddr g = rt.global_host_addr("g");
      TargetRegion region{
          .name = "useg",
          .maps = {MapEntry::always_to(g, sizeof(double))},
          .compute = 1_us,
          .body = {}};
      rt.target(region);
      ++ok;
    });
  }
  sched.run();
  EXPECT_EQ(ok, 4);
  // Exactly one pinned entry for the global on the device table.
  EXPECT_EQ(stack->omp().present_table().size(), 1u);
}

TEST(OffloadRuntimeConcurrency, ConcurrentDataEndsOnSharedMapping) {
  // Regression for the unsynchronized PresentTable access in end_copy_one:
  // one thread releases a mapping while another decides copy-back on the
  // same range. The lookup, refcount read, and copy-back decision must be
  // one transaction under the mapping lock; without it the lock-discipline
  // checker (GuardedBy on the tables) fails this test deterministically —
  // on any interleaving, not just an unlucky one.
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  auto& sched = stack->sched();
  OffloadRuntime& rt = stack->omp();
  constexpr std::size_t n = 64;
  std::optional<HostArray<double>> x;

  // Phase 1: map the range twice (refcount 2); the device copy captures the
  // original values, then the host view is clobbered so that only a
  // copy-back can restore it.
  sched.spawn("setup", [&] {
    x.emplace(rt, n, "x");
    for (std::size_t i = 0; i < n; ++i) {
      (*x)[i] = static_cast<double>(i);
    }
    const MapEntry enter = MapEntry::to(x->addr(), x->bytes());
    rt.target_data_begin({&enter, 1});
    rt.target_data_begin({&enter, 1});
    for (std::size_t i = 0; i < n; ++i) {
      (*x)[i] = -1.0;
    }
  });
  sched.run();
  const auto frees_before =
      stack->hsa().stats().count(HsaCall::MemoryPoolFree);

  // Phase 2: two threads race their target_data_end on the same range.
  // `always,from` forces each end through the copy-back decision path while
  // the other may be mid-release.
  for (int t = 0; t < 2; ++t) {
    sched.spawn("end-" + std::to_string(t), [&] {
      MapEntry leave = MapEntry::from(x->addr(), x->bytes());
      leave.always = true;
      rt.target_data_end({&leave, 1});
    });
  }
  sched.run();

  // Both references released: exactly one device-storage free, empty table,
  // and the copy-back restored the original values.
  EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryPoolFree),
            frees_before + 1);
  EXPECT_EQ(rt.present_table().size(), 0u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ((*x)[i], static_cast<double>(i));
  }

  sched.spawn("cleanup", [&] { x->release(); });
  sched.run();
}

TEST(OffloadRuntimeConcurrency, ConcurrentDataEndsUnderStressSeeds) {
  // The same race surface as above, swept across stress seeds: the checker
  // plus the seeded scheduler must agree that every perturbed interleaving
  // of concurrent data-ends is correctly locked and converges to the same
  // final state.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto stack = make_stack(RuntimeConfig::LegacyCopy);
    auto& sched = stack->sched();
    sched.enable_stress(seed);
    OffloadRuntime& rt = stack->omp();
    constexpr std::size_t n = 32;
    std::optional<HostArray<double>> x;
    sim::Latch mapped;  // ends must not start before setup has mapped
    sched.spawn("setup", [&] {
      x.emplace(rt, n, "x");
      for (std::size_t i = 0; i < n; ++i) {
        (*x)[i] = static_cast<double>(i);
      }
      const MapEntry enter = MapEntry::to(x->addr(), x->bytes());
      rt.target_data_begin({&enter, 1});
      rt.target_data_begin({&enter, 1});
      for (std::size_t i = 0; i < n; ++i) {
        (*x)[i] = -1.0;
      }
      mapped.set(sched);
    });
    for (int t = 0; t < 2; ++t) {
      sched.spawn("end-" + std::to_string(t), [&] {
        mapped.wait(sched);
        MapEntry leave = MapEntry::from(x->addr(), x->bytes());
        leave.always = true;
        rt.target_data_end({&leave, 1});
      });
    }
    sched.run();
    EXPECT_EQ(rt.present_table().size(), 0u) << "seed=" << seed;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_DOUBLE_EQ((*x)[i], static_cast<double>(i)) << "seed=" << seed;
    }
    sched.spawn("cleanup", [&] { x->release(); });
    sched.run();
  }
}

}  // namespace
}  // namespace zc::omp
