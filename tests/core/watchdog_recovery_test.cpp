// The core layer's recovery ladders above the watchdog: hung kernels,
// stalled copies, and hung prefaults are replayed transparently in recover
// mode, raise exactly one structured OffloadError in abort mode (or when
// the replay budget drains), and repeated trips open the device's circuit
// breaker, which pins new mappings to eager zero-copy until a quiet
// period closes it again.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using trace::FaultEvent;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg,
                                         const std::string& fault_spec,
                                         const std::string& watchdog) {
  apu::Machine::Config config = OffloadStack::machine_config_for(cfg);
  config.env.ompx_apu_faults = fault_spec;
  if (!watchdog.empty()) {
    config.env.watchdog = apu::parse_watchdog(watchdog);
  }
  return std::make_unique<OffloadStack>(std::move(config),
                                        OffloadStack::program_for(cfg, {}));
}

/// x[i] += 1 over an n-double array mapped tofrom; returns final contents.
std::vector<double> run_increment(OffloadStack& stack, std::size_t n,
                                  int rounds = 1) {
  std::vector<double> result(n);
  stack.sched().run_single([&] {
    OffloadRuntime& rt = stack.omp();
    HostArray<double> x{rt, n, "x"};
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(i);
    }
    const mem::VirtAddr xv = x.addr();
    TargetRegion region{
        .name = "incr",
        .maps = {x.tofrom()},
        .compute = 5_us,
        .body = [xv, n](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* xd = ctx.ptr<double>(tr.device(xv));
          for (std::size_t i = 0; i < n; ++i) {
            xd[i] += 1.0;
          }
        },
    };
    for (int r = 0; r < rounds; ++r) {
      rt.target(region);
    }
    for (std::size_t i = 0; i < n; ++i) {
      result[i] = x[i];
    }
  });
  return result;
}

void expect_incremented(const std::vector<double>& result, int rounds) {
  for (std::size_t i = 0; i < result.size(); ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + rounds);
  }
}

TEST(WatchdogRecovery, HungKernelIsReplayedTransparently) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy,
                          "kernel_hang@call=1", "200us:recover");
  expect_incremented(run_increment(*stack, 1024), 1);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::KernelHangInjected), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogReplay), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogRecovered), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
  EXPECT_EQ(stack->hsa().watchdog().trips(), 1u);
}

TEST(WatchdogRecovery, AbortModeRaisesOneStructuredError) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy,
                          "kernel_hang@call=1", "200us:abort");
  try {
    (void)run_increment(*stack, 1024);
    FAIL() << "expected OffloadError(OperationHung)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::OperationHung);
    EXPECT_EQ(e.device(), 0);
    EXPECT_NE(std::string{e.what()}.find("incr"), std::string::npos)
        << e.what();
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::WatchdogReplay));
  EXPECT_EQ(faults.count(FaultEvent::RegionFailed), 1u);
}

TEST(WatchdogRecovery, ReplayBudgetExhaustionFailsTheRegion) {
  // The original dispatch and both replays hang (calls 1..3); with
  // watchdog_max_replays=2 the ladder then raises OperationHung even in
  // recover mode.
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy,
                          "kernel_hang@call=1..3", "200us:recover");
  try {
    (void)run_increment(*stack, 1024);
    FAIL() << "expected OffloadError(OperationHung)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::OperationHung);
    EXPECT_NE(std::string{e.what()}.find("replays were exhausted"),
              std::string::npos)
        << e.what();
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 3u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogReplay), 2u);
  EXPECT_FALSE(faults.any(FaultEvent::WatchdogRecovered));
  EXPECT_EQ(faults.count(FaultEvent::RegionFailed), 1u);
}

TEST(WatchdogRecovery, StalledCopyIsResubmitted) {
  // AsyncCopy site calls 1..3 are the image upload; call 4 is the region's
  // h2d transfer, which stalls and is replayed after the watchdog abort.
  auto stack = make_stack(RuntimeConfig::LegacyCopy, "sdma_stall@call=4",
                          "150us:recover");
  expect_incremented(run_increment(*stack, 1024), 1);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::SdmaStallInjected), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogReplay), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogRecovered), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
}

TEST(WatchdogRecovery, HungPrefaultIsRetriedAfterTheAbort) {
  auto stack = make_stack(RuntimeConfig::EagerMaps, "prefault_hang@call=1",
                          "150us:recover");
  expect_incremented(run_increment(*stack, 1024), 1);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::PrefaultHangInjected), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogReplay), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogRecovered), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
}

TEST(WatchdogRecovery, XnackLivelockIsReplayedLikeAHungKernel) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy,
                          "xnack_livelock@call=1", "300us:recover");
  expect_incremented(run_increment(*stack, 1024), 1);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::XnackLivelockInjected), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 1u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogRecovered), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
}

TEST(WatchdogRecovery, RepeatedTripsOpenTheBreakerAndPinNewMaps) {
  // Three regions each hang their first dispatch (the replay in between is
  // healthy), crossing breaker_trip_threshold=3 inside the 50 ms window;
  // the fourth region's fresh Copy-managed map must then be pinned to
  // eager zero-copy instead of touching the unhealthy device queue.
  auto stack = make_stack(
      RuntimeConfig::LegacyCopy,
      "kernel_hang@call=1;kernel_hang@call=3;kernel_hang@call=5",
      "100us:recover");
  expect_incremented(run_increment(*stack, 1024, /*rounds=*/4), 4);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::WatchdogTrip), 3u);
  EXPECT_EQ(faults.count(FaultEvent::WatchdogRecovered), 3u);
  EXPECT_EQ(faults.count(FaultEvent::BreakerOpened), 1u);
  EXPECT_GE(faults.count(FaultEvent::BreakerPinnedMap), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
  const CircuitBreaker& b = stack->omp().breaker(0);
  EXPECT_TRUE(b.open());
  EXPECT_EQ(b.total_trips(), 3u);
  EXPECT_EQ(b.times_opened(), 1u);
}

TEST(WatchdogRecovery, BreakerClosesAfterAQuietPeriod) {
  auto stack = make_stack(
      RuntimeConfig::LegacyCopy,
      "kernel_hang@call=1;kernel_hang@call=3;kernel_hang@call=5",
      "100us:recover");
  std::vector<double> result(256);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 256, "x"};
    for (std::size_t i = 0; i < 256; ++i) {
      x[i] = static_cast<double>(i);
    }
    const mem::VirtAddr xv = x.addr();
    TargetRegion region{
        .name = "incr",
        .maps = {x.tofrom()},
        .compute = 5_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* xd = ctx.ptr<double>(tr.device(xv));
          for (std::size_t i = 0; i < 256; ++i) {
            xd[i] += 1.0;
          }
        },
    };
    for (int r = 0; r < 3; ++r) {
      rt.target(region);  // three trips: the breaker opens
    }
    EXPECT_TRUE(rt.breaker(0).open());
    // A quiet period longer than 2x breaker_cooldown (20 ms) lets the
    // breaker probe half-open and then close; the next map runs the
    // normal Copy path again.
    stack->sched().advance(100_ms);
    rt.target(region);
    EXPECT_FALSE(rt.breaker(0).open());
    for (std::size_t i = 0; i < 256; ++i) {
      result[i] = x[i];
    }
  });
  expect_incremented(result, 4);
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::BreakerOpened), 1u);
  EXPECT_EQ(faults.count(FaultEvent::BreakerHalfOpened), 1u);
  EXPECT_EQ(faults.count(FaultEvent::BreakerClosed), 1u);
  // The post-recovery map went back to the healthy Copy path.
  EXPECT_FALSE(faults.any(FaultEvent::BreakerPinnedMap));
}

TEST(WatchdogRecovery, AdaptiveMapsConsumesBreakerState) {
  // Once the breaker opens, the adaptive policy must see breaker_open on
  // fresh evaluations and pick eager prefault (both the copy and the
  // demand-faulting paths are priced out).
  auto stack = make_stack(
      RuntimeConfig::AdaptiveMaps,
      "kernel_hang@call=1;kernel_hang@call=3;kernel_hang@call=5",
      "100us:recover");
  // Adaptive entries stay resident once mapped, so each round maps a fresh
  // array to force a fresh policy evaluation.
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    for (int r = 0; r < 4; ++r) {
      HostArray<double> x{rt, 1024, "x" + std::to_string(r)};
      for (std::size_t i = 0; i < 1024; ++i) {
        x[i] = static_cast<double>(i);
      }
      const mem::VirtAddr xv = x.addr();
      TargetRegion region{
          .name = "incr",
          .maps = {x.tofrom()},
          .compute = 5_us,
          .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
            double* xd = ctx.ptr<double>(tr.device(xv));
            for (std::size_t i = 0; i < 1024; ++i) {
              xd[i] += 1.0;
            }
          },
      };
      rt.target(region);
      for (std::size_t i = 0; i < 1024; ++i) {
        ASSERT_DOUBLE_EQ(x[i], static_cast<double>(i) + 1.0);
      }
    }
  });
  const auto& decisions = stack->omp().decision_trace().records();
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_FALSE(decisions[0].breaker_open);
  EXPECT_TRUE(decisions[3].breaker_open);
  EXPECT_EQ(decisions[3].decision, adapt::Decision::EagerPrefault);
}

}  // namespace
}  // namespace zc::omp
