// End-to-end behaviour of the Adaptive Maps configuration: the runtime
// gathers region features inside its present-table transaction, the policy
// engine classifies each mapping, all three handlings execute their full
// protocol (prefault syscalls, demand faults, or pool-alloc + DMA), the
// decision trace explains every verdict, and results stay correct.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using adapt::Decision;

constexpr std::size_t kDoublesPerPage = (2ULL << 20) / sizeof(double);

std::unique_ptr<OffloadStack> adaptive_stack(
    std::optional<apu::CostParams> costs = std::nullopt) {
  apu::Machine::Config mc =
      OffloadStack::machine_config_for(RuntimeConfig::AdaptiveMaps);
  if (costs) {
    mc.costs = *costs;
  }
  return std::make_unique<OffloadStack>(
      std::move(mc), OffloadStack::program_for(RuntimeConfig::AdaptiveMaps, {}));
}

TEST(AdaptiveMaps, StackSelectsTheAdaptiveConfiguration) {
  auto stack = adaptive_stack();
  EXPECT_EQ(stack->omp().config(), RuntimeConfig::AdaptiveMaps);
  // Shared-storage semantics: arguments translate to host addresses unless
  // the engine put a region behind a device copy.
  EXPECT_TRUE(stack->omp().zero_copy());
}

TEST(AdaptiveMaps, UntouchedRegionIsPrefaultedAndComputesCorrectly) {
  auto stack = adaptive_stack();
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 4 * kDoublesPerPage, "ep-like"};
    const mem::VirtAddr xv = x.addr();
    rt.target(TargetRegion{
        .name = "gpu_first_touch",
        .maps = {x.tofrom()},
        .compute = 10_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* w = ctx.ptr<double>(tr.device(xv));
          for (int i = 0; i < 8; ++i) {
            w[i] = 3.0 * i;
          }
        }});
    // Shared storage: kernel writes are host-visible with no copy-back.
    EXPECT_DOUBLE_EQ(x[7], 21.0);
    x.release();
  });
  const auto& records = stack->omp().decision_trace().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].decision, Decision::EagerPrefault);
  EXPECT_EQ(records[0].pages, 4u);
  EXPECT_EQ(records[0].cpu_resident_pages, 0u);
  EXPECT_EQ(records[0].gpu_absent_pages, 4u);
  EXPECT_LT(records[0].predicted_eager_us, records[0].predicted_zero_copy_us);
  // The prefault protocol really ran.
  EXPECT_GT(stack->hsa().ledger().prefault_calls(), 0u);
  // No device copy was created; the table is clean.
  EXPECT_EQ(stack->omp().present_table().size(), 0u);
}

TEST(AdaptiveMaps, HostTouchedSinglePageGoesZeroCopy) {
  auto stack = adaptive_stack();
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 4096, "small"};  // well inside one 2 MB page
    x.first_touch();
    rt.target(TargetRegion{
        .name = "k", .maps = {x.tofrom()}, .compute = 5_us, .body = {}});
    x.release();
  });
  const auto& records = stack->omp().decision_trace().records();
  ASSERT_EQ(records.size(), 1u);
  // One resident page: a single XNACK fault (10us) undercuts the prefault
  // syscall + insert (10.2us) — the cheapest handling per the cost model.
  EXPECT_EQ(records[0].decision, Decision::ZeroCopy);
  EXPECT_EQ(records[0].pages, 1u);
  // The kernel paid for that choice with a real demand fault.
  EXPECT_GT(stack->hsa().ledger().page_faults(), 0u);
}

TEST(AdaptiveMaps, SteadyStateHitsTheCacheThenRevisesOnce) {
  auto stack = adaptive_stack();
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 4 * kDoublesPerPage, "steady"};
    x.first_touch();
    for (int step = 0; step < 10; ++step) {
      rt.target(TargetRegion{
          .name = "step", .maps = {x.tofrom()}, .compute = 5_us, .body = {}});
    }
    x.release();
  });
  const trace::DecisionTrace& trace = stack->omp().decision_trace();
  // Map 1 evaluates fresh (CPU-resident, GPU-absent -> eager prefault);
  // maps 2-5 ride the hysteresis window as cache hits; map 6 re-evaluates
  // against the now-GPU-resident pages and revises to zero-copy (cost 0);
  // maps 7-10 hit the cache again. Exactly two evaluations, eight hits.
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.cache_hits(), 8u);
  EXPECT_EQ(trace.records()[0].decision, Decision::EagerPrefault);
  EXPECT_FALSE(trace.records()[0].revised);
  EXPECT_EQ(trace.records()[1].decision, Decision::ZeroCopy);
  EXPECT_TRUE(trace.records()[1].revised);
  EXPECT_EQ(trace.records()[1].gpu_absent_pages, 0u);
}

TEST(AdaptiveMaps, DmaCopyDecisionRunsTheFullCopyProtocol) {
  // A cost model where both unified-memory paths are pathological: the
  // engine must fall back to the classic pool-alloc + DMA handling, and
  // the data must still round-trip correctly through the device copy.
  apu::CostParams costs = apu::mi300a_costs();
  costs.xnack_fault_resident = sim::Duration::from_us(5000.0);
  costs.page_materialize = sim::Duration::from_us(50000.0);
  costs.prefault_insert_per_page = sim::Duration::from_us(5000.0);
  costs.prefault_populate_per_page = sim::Duration::from_us(5000.0);
  auto stack = adaptive_stack(costs);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 2 * kDoublesPerPage, "copied"};
    x.first_touch();
    for (std::size_t i = 0; i < 16; ++i) {
      x[i] = static_cast<double>(i);
    }
    const mem::VirtAddr xv = x.addr();
    rt.target(TargetRegion{
        .name = "double_it",
        .maps = {x.tofrom()},
        .compute = 5_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* w = ctx.ptr<double>(tr.device(xv));
          for (int i = 0; i < 16; ++i) {
            w[i] *= 2.0;
          }
        }});
    // tofrom copied the device results back over the host values.
    EXPECT_DOUBLE_EQ(x[0], 0.0);
    EXPECT_DOUBLE_EQ(x[15], 30.0);
    // The copy's present-table entry was reclaimed at region end.
    EXPECT_EQ(rt.present_table().size(), 0u);
    x.release();
  });
  const auto& records = stack->omp().decision_trace().records();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0].decision, Decision::DmaCopy);
  EXPECT_LT(records[0].predicted_copy_us, records[0].predicted_eager_us);
  EXPECT_LT(records[0].predicted_copy_us, records[0].predicted_zero_copy_us);
}

TEST(AdaptiveMaps, BeatsPlainZeroCopyOnGpuFirstTouch) {
  // The paper's 452.ep lesson: demand-faulting untouched memory one page at
  // a time is the worst case for implicit zero-copy. The adaptive runtime
  // must recognize the pattern and prefault instead.
  auto run = [](RuntimeConfig config) {
    OffloadStack stack{OffloadStack::machine_config_for(config),
                       OffloadStack::program_for(config, {})};
    stack.sched().run_single([&] {
      OffloadRuntime& rt = stack.omp();
      HostArray<double> x{rt, 8 * kDoublesPerPage, "ep"};
      rt.target(TargetRegion{
          .name = "ep", .maps = {x.tofrom()}, .compute = 50_us, .body = {}});
      x.release();
    });
    return stack.sched().horizon().since_start();
  };
  EXPECT_LT(run(RuntimeConfig::AdaptiveMaps),
            run(RuntimeConfig::ImplicitZeroCopy));
}

TEST(AdaptiveMaps, ConcurrentThreadsUnderStressStayConsistent) {
  // Several host threads mapping the same ranges concurrently, under the
  // seeded stress scheduler: decisions ride the present-table transaction,
  // so this must neither trip the lock-discipline checker nor leak
  // mappings or active-map pins.
  for (std::uint64_t stress_seed = 1; stress_seed <= 4; ++stress_seed) {
    auto stack = adaptive_stack();
    stack->sched().enable_stress(stress_seed);
    auto& sched = stack->sched();
    std::optional<HostArray<double>> shared;
    sched.spawn("setup", [&] {
      shared.emplace(stack->omp(), 4 * kDoublesPerPage, "shared");
      shared->first_touch();
    });
    sched.run();
    for (int t = 0; t < 4; ++t) {
      sched.spawn("omp-" + std::to_string(t), [&] {
        OffloadRuntime& rt = stack->omp();
        for (int step = 0; step < 5; ++step) {
          rt.target(TargetRegion{.name = "k",
                                 .maps = {shared->tofrom()},
                                 .compute = 2_us,
                                 .body = {}});
        }
      });
    }
    sched.run();
    sched.spawn("cleanup", [&] { shared->release(); });
    sched.run();
    EXPECT_EQ(stack->omp().present_table().size(), 0u)
        << "stress_seed=" << stress_seed;
    // 20 maps of one range: exactly the fresh evaluations the hysteresis
    // schedule allows, everything else cache hits.
    const trace::DecisionTrace& trace = stack->omp().decision_trace();
    EXPECT_GE(trace.cache_hits(), 15u) << "stress_seed=" << stress_seed;
  }
}

}  // namespace
}  // namespace zc::omp
