#include <gtest/gtest.h>

#include <memory>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using trace::HsaCall;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg) {
  return std::make_unique<OffloadStack>(OffloadStack::machine_config_for(cfg),
                                        OffloadStack::program_for(cfg, {}));
}

TEST(UnstructuredData, EnterExitMoveDataLikeStructuredRegions) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    x[0] = 3.0;
    const mem::VirtAddr xv = x.addr();
    const MapEntry enter = x.to();
    rt.target_enter_data({&enter, 1});
    TargetRegion region{
        .name = "mul",
        .maps = {x.alloc()},
        .compute = 1_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          ctx.ptr<double>(tr.device(xv))[0] *= 7.0;
        },
    };
    rt.target(region);
    EXPECT_DOUBLE_EQ(x[0], 3.0);  // not yet copied back
    const MapEntry exit = x.from();
    rt.target_exit_data({&exit, 1});
    EXPECT_DOUBLE_EQ(x[0], 21.0);
    EXPECT_EQ(rt.present_table().size(), 0u);  // mapping released
  });
}

TEST(UnstructuredData, ReleaseDecrementsWithoutTransfer) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    x[0] = 1.0;
    const mem::VirtAddr xv = x.addr();
    const MapEntry enter = x.tofrom();
    rt.target_enter_data({&enter, 1});
    TargetRegion region{
        .name = "set",
        .maps = {x.alloc()},
        .compute = 1_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          ctx.ptr<double>(tr.device(xv))[0] = 99.0;
        },
    };
    rt.target(region);
    const MapEntry release = MapEntry::release(x.addr(), x.bytes());
    rt.target_exit_data({&release, 1});
    // Release performed NO device-to-host transfer despite the tofrom map.
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_EQ(rt.present_table().size(), 0u);
  });
}

TEST(UnstructuredData, DeleteDropsNestedMappingImmediately) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    const MapEntry enter = x.to();
    rt.target_enter_data({&enter, 1});
    rt.target_enter_data({&enter, 1});  // refcount = 2
    const MapEntry del = MapEntry::del(x.addr(), x.bytes());
    rt.target_exit_data({&del, 1});
    EXPECT_EQ(rt.present_table().size(), 0u);  // gone despite refcount 2
  });
}

TEST(UnstructuredData, ReleaseOfAbsentDataIsNoop) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    const MapEntry release = MapEntry::release(x.addr(), x.bytes());
    EXPECT_NO_THROW(rt.target_exit_data({&release, 1}));
    const MapEntry del = MapEntry::del(x.addr(), x.bytes());
    EXPECT_NO_THROW(rt.target_exit_data({&del, 1}));
  });
}

TEST(UnstructuredData, ExitOnlyTypesRejectedOnEnter) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 16, "x"};
                 const MapEntry bad = MapEntry::release(x.addr(), x.bytes());
                 rt.target_enter_data({&bad, 1});
               }),
               MappingError);
  auto stack2 = make_stack(RuntimeConfig::LegacyCopy);
  EXPECT_THROW(stack2->sched().run_single([&] {
                 OffloadRuntime& rt = stack2->omp();
                 HostArray<double> x{rt, 16, "x"};
                 const MapEntry bad = MapEntry::del(x.addr(), x.bytes());
                 TargetRegion region{.name = "k",
                                     .maps = {bad},
                                     .compute = 1_us,
                                     .body = {}};
                 rt.target(region);
               }),
               MappingError);
}

TEST(UnstructuredData, ZeroCopyConfigsTreatAllOfItAsNoop) {
  for (RuntimeConfig cfg : {RuntimeConfig::UnifiedSharedMemory,
                            RuntimeConfig::ImplicitZeroCopy}) {
    auto stack = make_stack(cfg);
    stack->sched().run_single([&] {
      OffloadRuntime& rt = stack->omp();
      HostArray<double> x{rt, 16, "x"};
      rt.target_data_begin({});  // trigger init
      const auto allocs =
          stack->hsa().stats().count(HsaCall::MemoryPoolAllocate);
      const MapEntry enter = x.tofrom();
      rt.target_enter_data({&enter, 1});
      const MapEntry del = MapEntry::del(x.addr(), x.bytes());
      rt.target_exit_data({&del, 1});
      EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryPoolAllocate),
                allocs)
          << to_string(cfg);
    });
  }
}

TEST(UnstructuredData, MapEntryBuilders) {
  const mem::VirtAddr p{64};
  EXPECT_EQ(MapEntry::release(p, 8).type, MapType::Release);
  EXPECT_EQ(MapEntry::del(p, 8).type, MapType::Delete);
  EXPECT_TRUE(exit_only(MapType::Release));
  EXPECT_TRUE(exit_only(MapType::Delete));
  EXPECT_FALSE(exit_only(MapType::ToFrom));
  EXPECT_FALSE(copies_to_device(MapType::Release));
  EXPECT_FALSE(copies_to_host(MapType::Delete));
  EXPECT_STREQ(to_string(MapType::Release), "release");
  EXPECT_STREQ(to_string(MapType::Delete), "delete");
}

}  // namespace
}  // namespace zc::omp
