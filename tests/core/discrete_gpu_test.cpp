// End-to-end behaviour on the discrete-GPU machine model: the same OpenMP
// program that auto-selects zero-copy on the APU runs as Legacy Copy on a
// discrete node, pays PCIe-rate transfers, and can opt into zero-copy with
// OMPX_APU_MAPS=1 when XNACK is available (paper footnote 1).

#include <gtest/gtest.h>

#include <memory>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> discrete(bool xnack, bool apu_maps) {
  apu::Machine::Config mc;
  mc.kind = apu::MachineKind::DiscreteGpu;
  mc.costs = apu::discrete_gpu_costs();
  mc.env.hsa_xnack = xnack;
  mc.env.ompx_apu_maps = apu_maps ? apu::ApuMapsMode::On : apu::ApuMapsMode::Off;
  return std::make_unique<OffloadStack>(std::move(mc), ProgramBinary{});
}

sim::Duration run_app(OffloadStack& stack) {
  stack.sched().run_single([&] {
    OffloadRuntime& rt = stack.omp();
    HostArray<double> x{rt, 4u << 20, "x"};
    x.first_touch();
    for (int i = 0; i < 10; ++i) {
      rt.target(TargetRegion{.name = "k",
                             .maps = {x.always_tofrom()},
                             .compute = 100_us,
                             .body = {}});
    }
    x.release();
  });
  return stack.sched().horizon().since_start();
}

TEST(DiscreteGpu, DefaultsToLegacyCopy) {
  auto stack = discrete(false, false);
  EXPECT_EQ(stack->omp().config(), RuntimeConfig::LegacyCopy);
}

TEST(DiscreteGpu, XnackAloneDoesNotEnableZeroCopy) {
  auto stack = discrete(true, false);
  EXPECT_EQ(stack->omp().config(), RuntimeConfig::LegacyCopy);
}

TEST(DiscreteGpu, OmpxApuMapsOptsIntoZeroCopy) {
  auto stack = discrete(true, true);
  EXPECT_EQ(stack->omp().config(), RuntimeConfig::ImplicitZeroCopy);
}

TEST(DiscreteGpu, TransfersCrossTheLinkAtPcieRate) {
  auto stack = discrete(false, false);
  const std::uint64_t bytes = 1ULL << 30;
  sim::Duration elapsed;
  stack->sched().run_single([&] {
    hsa::Runtime& hsa = stack->hsa();
    mem::MemorySystem& mm = stack->memory();
    mem::Allocation& src = mm.os_alloc(bytes, "h");
    const mem::VirtAddr dev = hsa.memory_pool_allocate(bytes, "d");
    const sim::TimePoint t0 = stack->sched().now();
    hsa.signal_wait_scacquire(hsa.memory_async_copy(dev, src.base(), bytes));
    elapsed = stack->sched().now() - t0;
  });
  const double achieved = static_cast<double>(bytes) / elapsed.sec();
  EXPECT_NEAR(achieved / stack->machine().costs().pcie_bandwidth_bytes_per_s,
              1.0, 0.02);
}

TEST(DiscreteGpu, OptInZeroCopyBeatsCopyOnTransferHeavyApp) {
  auto copy_stack = discrete(false, false);
  auto zc_stack = discrete(true, true);
  const sim::Duration copy_time = run_app(*copy_stack);
  const sim::Duration zc_time = run_app(*zc_stack);
  EXPECT_GT(copy_time, zc_time);
  // And the APU runs the same program even faster than discrete zero-copy
  // is NOT claimed — what matters is the pattern held without code changes.
  EXPECT_EQ(copy_stack->omp().config(), RuntimeConfig::LegacyCopy);
  EXPECT_EQ(zc_stack->omp().config(), RuntimeConfig::ImplicitZeroCopy);
}

TEST(DiscreteGpu, PoolMemoryIsNotHostResident) {
  auto stack = discrete(false, false);
  stack->sched().run_single([&] {
    const mem::VirtAddr dev =
        stack->hsa().memory_pool_allocate(4 << 20, "vram");
    // Device memory exists in the GPU page table but not the CPU's.
    const mem::AddrRange r{dev, 4 << 20};
    EXPECT_EQ(stack->memory().gpu_pt().count_absent(r), 0u);
    EXPECT_EQ(stack->memory().cpu_pt().count_present(r), 0u);
  });
}

}  // namespace
}  // namespace zc::omp
