#include "zc/core/offload_stack.hpp"

#include <gtest/gtest.h>

#include "zc/core/host_array.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

TEST(OffloadStackConfig, EnvironmentsMatchTheConfigTheyName) {
  {
    const auto cfg =
        OffloadStack::machine_config_for(RuntimeConfig::LegacyCopy);
    EXPECT_FALSE(cfg.env.hsa_xnack);
    EXPECT_FALSE(cfg.env.ompx_eager_maps);
  }
  {
    const auto cfg =
        OffloadStack::machine_config_for(RuntimeConfig::ImplicitZeroCopy);
    EXPECT_TRUE(cfg.env.hsa_xnack);
    EXPECT_FALSE(cfg.env.ompx_eager_maps);
  }
  {
    const auto cfg = OffloadStack::machine_config_for(RuntimeConfig::EagerMaps);
    EXPECT_TRUE(cfg.env.ompx_eager_maps);
  }
  EXPECT_EQ(OffloadStack::machine_config_for(RuntimeConfig::LegacyCopy).kind,
            apu::MachineKind::ApuMi300a);
}

TEST(OffloadStackConfig, ProgramForSetsButNeverClearsUsmRequirement) {
  ProgramBinary usm_binary;
  usm_binary.requires_unified_shared_memory = true;
  EXPECT_TRUE(OffloadStack::program_for(RuntimeConfig::ImplicitZeroCopy,
                                        usm_binary)
                  .requires_unified_shared_memory);
  EXPECT_TRUE(OffloadStack::program_for(RuntimeConfig::UnifiedSharedMemory, {})
                  .requires_unified_shared_memory);
  EXPECT_FALSE(OffloadStack::program_for(RuntimeConfig::LegacyCopy, {})
                   .requires_unified_shared_memory);
}

TEST(OffloadStackConfig, SeedFlowsIntoJitter) {
  auto wall = [](std::uint64_t seed) {
    OffloadStack stack{OffloadStack::machine_config_for(
                           RuntimeConfig::ImplicitZeroCopy,
                           {.sigma = 0.05}, seed),
                       {}};
    stack.sched().run_single([&] {
      OffloadRuntime& rt = stack.omp();
      HostArray<double> x{rt, 1024, "x"};
      for (int i = 0; i < 16; ++i) {
        rt.target(TargetRegion{.name = "k",
                               .maps = {x.tofrom()},
                               .compute = 50_us,
                               .body = {}});
      }
      x.release();
    });
    return stack.sched().horizon();
  };
  EXPECT_EQ(wall(11), wall(11));
  EXPECT_NE(wall(11), wall(12));
}

TEST(HostArrayTiming, FirstTouchIsIdempotentInTimeAndState) {
  OffloadStack stack{
      OffloadStack::machine_config_for(RuntimeConfig::ImplicitZeroCopy), {}};
  stack.sched().run_single([&] {
    OffloadRuntime& rt = stack.omp();
    HostArray<std::byte> x{
        rt, static_cast<std::size_t>(8 * stack.machine().page_bytes()), "x"};
    const sim::TimePoint t0 = stack.sched().now();
    x.first_touch();
    const sim::Duration first = stack.sched().now() - t0;
    EXPECT_GT(first, sim::Duration::zero());
    const sim::TimePoint t1 = stack.sched().now();
    x.first_touch();  // pages already resident: free
    EXPECT_EQ(stack.sched().now() - t1, sim::Duration::zero());
    x.release();
  });
}

TEST(WorkloadJitter, ChecksumsAreJitterInvariant) {
  // Jitter perturbs timing only; functional results must not move.
  workloads::QmcpackParams p;
  p.size = 2;
  p.threads = 2;
  p.walkers_per_thread = 2;
  p.steps = 4;
  const workloads::Program program = workloads::make_qmcpack(p);
  const double quiet =
      workloads::run_program(program, {.config = RuntimeConfig::LegacyCopy})
          .checksum;
  const double noisy =
      workloads::run_program(program, {.config = RuntimeConfig::LegacyCopy,
                                       .jitter = {.sigma = 0.2},
                                       .seed = 99})
          .checksum;
  EXPECT_DOUBLE_EQ(quiet, noisy);
}

}  // namespace
}  // namespace zc::omp
