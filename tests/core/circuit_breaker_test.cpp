// The per-device circuit breaker's state machine, isolated from the
// runtime: trips within a sliding virtual-time window open it, a quiet
// cooldown half-opens it, a further quiet cooldown closes it, and a trip
// while probing snaps it back open.
#include "zc/core/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "zc/sim/time.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::TimePoint;
using State = CircuitBreaker::State;
using Transition = CircuitBreaker::Transition;

constexpr Duration kWindow = 100_us;
constexpr Duration kCooldown = 40_us;

TimePoint at(std::int64_t us) {
  return TimePoint::zero() + Duration::from_us(static_cast<double>(us));
}

TEST(CircuitBreaker, StartsClosedAndStaysClosedBelowThreshold) {
  CircuitBreaker b{3, kWindow, kCooldown};
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_TRUE(b.record_trip(at(10)).empty());
  EXPECT_TRUE(b.record_trip(at(20)).empty());
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_FALSE(b.open());
  EXPECT_EQ(b.total_trips(), 2u);
  EXPECT_EQ(b.times_opened(), 0u);
}

TEST(CircuitBreaker, ThresholdTripsWithinTheWindowOpenIt) {
  CircuitBreaker b{3, kWindow, kCooldown};
  (void)b.record_trip(at(10));
  (void)b.record_trip(at(20));
  const std::vector<Transition> t = b.record_trip(at(30));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, State::Open);
  EXPECT_EQ(t[0].at, at(30));
  EXPECT_TRUE(b.open());
  EXPECT_EQ(b.times_opened(), 1u);
}

TEST(CircuitBreaker, WindowSlidesOldTripsExpire) {
  CircuitBreaker b{3, kWindow, kCooldown};
  (void)b.record_trip(at(10));
  (void)b.record_trip(at(20));
  // The third trip lands after the first fell out of the 100us window:
  // only two trips are recent, the breaker stays closed.
  EXPECT_TRUE(b.record_trip(at(150)).empty());
  EXPECT_EQ(b.state(), State::Closed);
  // But two more within the window of the surviving ones open it.
  EXPECT_TRUE(b.record_trip(at(160)).empty());
  EXPECT_FALSE(b.record_trip(at(170)).empty());
  EXPECT_TRUE(b.open());
}

TEST(CircuitBreaker, QuietCooldownHalfOpensThenCloses) {
  CircuitBreaker b{2, kWindow, kCooldown};
  (void)b.record_trip(at(0));
  (void)b.record_trip(at(1));  // opens at t=1us
  ASSERT_TRUE(b.open());

  // Before the cooldown elapses nothing changes.
  EXPECT_TRUE(b.advance_to(at(40)).empty());
  EXPECT_EQ(b.state(), State::Open);

  // At opened_at + cooldown the breaker half-opens; at opened_at +
  // 2*cooldown it closes. A single late advance reports both, in order,
  // stamped with the virtual times they logically happened.
  const std::vector<Transition> t = b.advance_to(at(200));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].to, State::HalfOpen);
  EXPECT_EQ(t[0].at, at(41));
  EXPECT_EQ(t[1].to, State::Closed);
  EXPECT_EQ(t[1].at, at(81));
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_FALSE(b.open());
}

TEST(CircuitBreaker, TripWhileHalfOpenReopens) {
  CircuitBreaker b{2, kWindow, kCooldown};
  (void)b.record_trip(at(0));
  (void)b.record_trip(at(1));  // opens
  // Half-open at 41us; a trip at 50us reopens immediately.
  const std::vector<Transition> t = b.record_trip(at(50));
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].to, State::HalfOpen);
  EXPECT_EQ(t[1].to, State::Open);
  EXPECT_EQ(t[1].at, at(50));
  EXPECT_EQ(b.times_opened(), 2u);
  // The cooldown restarts from the reopening.
  EXPECT_TRUE(b.advance_to(at(89)).empty());
  EXPECT_EQ(b.advance_to(at(90)).size(), 1u);  // 50 + 40
  EXPECT_EQ(b.state(), State::HalfOpen);
}

TEST(CircuitBreaker, TripWhileOpenExtendsTheOutage) {
  CircuitBreaker b{2, kWindow, kCooldown};
  (void)b.record_trip(at(0));
  (void)b.record_trip(at(1));  // opens at 1us
  // A trip at 30us while already open produces no transition but pushes
  // the half-open point to 70us.
  EXPECT_TRUE(b.record_trip(at(30)).empty());
  EXPECT_EQ(b.state(), State::Open);
  EXPECT_TRUE(b.advance_to(at(69)).empty());
  const std::vector<Transition> t = b.advance_to(at(70));
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, State::HalfOpen);
}

TEST(CircuitBreaker, ClosingClearsTheTripHistory) {
  CircuitBreaker b{2, kWindow, kCooldown};
  (void)b.record_trip(at(0));
  (void)b.record_trip(at(1));            // opens
  (void)b.advance_to(at(1000));          // closes again
  ASSERT_EQ(b.state(), State::Closed);
  // One fresh trip must not reopen it — the pre-outage history is gone.
  EXPECT_TRUE(b.record_trip(at(1001)).empty());
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_FALSE(b.record_trip(at(1002)).empty());  // threshold again
}

TEST(CircuitBreaker, CountersAccumulateAcrossTheWholeRun) {
  CircuitBreaker b{1, kWindow, kCooldown};
  (void)b.record_trip(at(0));      // opens (1st)
  (void)b.advance_to(at(1000));    // closes
  (void)b.record_trip(at(1001));   // opens (2nd)
  EXPECT_EQ(b.total_trips(), 2u);
  EXPECT_EQ(b.times_opened(), 2u);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(to_string(State::Closed), "closed");
  EXPECT_STREQ(to_string(State::Open), "open");
  EXPECT_STREQ(to_string(State::HalfOpen), "half-open");
}

}  // namespace
}  // namespace zc::omp
