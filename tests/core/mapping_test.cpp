#include "zc/core/mapping.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc::omp {
namespace {

mem::AddrRange range(std::uint64_t base, std::uint64_t bytes) {
  return mem::AddrRange{mem::VirtAddr{base}, bytes};
}

TEST(MapEntryBuilders, SetTypeAndModifiers) {
  const mem::VirtAddr p{100};
  EXPECT_EQ(MapEntry::to(p, 8).type, MapType::To);
  EXPECT_EQ(MapEntry::from(p, 8).type, MapType::From);
  EXPECT_EQ(MapEntry::tofrom(p, 8).type, MapType::ToFrom);
  EXPECT_EQ(MapEntry::alloc(p, 8).type, MapType::Alloc);
  EXPECT_FALSE(MapEntry::to(p, 8).always);
  EXPECT_TRUE(MapEntry::always_to(p, 8).always);
  EXPECT_TRUE(MapEntry::always_tofrom(p, 8).always);
}

TEST(MapTypePredicates, TransferDirections) {
  EXPECT_TRUE(copies_to_device(MapType::To));
  EXPECT_TRUE(copies_to_device(MapType::ToFrom));
  EXPECT_FALSE(copies_to_device(MapType::From));
  EXPECT_FALSE(copies_to_device(MapType::Alloc));
  EXPECT_TRUE(copies_to_host(MapType::From));
  EXPECT_TRUE(copies_to_host(MapType::ToFrom));
  EXPECT_FALSE(copies_to_host(MapType::To));
  EXPECT_FALSE(copies_to_host(MapType::Alloc));
}

TEST(PresentTable, InsertAndLookupByContainment) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000});
  EXPECT_NE(t.lookup(mem::VirtAddr{1000}), nullptr);
  EXPECT_NE(t.lookup(mem::VirtAddr{1099}), nullptr);
  EXPECT_EQ(t.lookup(mem::VirtAddr{1100}), nullptr);
  EXPECT_EQ(t.lookup(mem::VirtAddr{999}), nullptr);
}

TEST(PresentTable, DeviceAddressPreservesOffset) {
  PresentTable t;
  PresentEntry& e = t.insert(range(1000, 100), mem::VirtAddr{5000});
  EXPECT_EQ(e.device_addr(mem::VirtAddr{1040}).value, 5040u);
}

TEST(PresentTable, RejectsPartialOverlap) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000});
  EXPECT_THROW(t.insert(range(1050, 100), mem::VirtAddr{6000}),
               std::invalid_argument);
  EXPECT_THROW(t.insert(range(950, 100), mem::VirtAddr{6000}),
               std::invalid_argument);
  EXPECT_THROW(t.insert(range(1000, 100), mem::VirtAddr{6000}),
               std::invalid_argument);
  // Adjacent, non-overlapping is fine.
  t.insert(range(1100, 50), mem::VirtAddr{7000});
  EXPECT_EQ(t.size(), 2u);
}

TEST(PresentTable, RejectsEmptyRange) {
  PresentTable t;
  EXPECT_THROW(t.insert(range(1000, 0), mem::VirtAddr{1}),
               std::invalid_argument);
}

TEST(PresentTable, LookupRangeRejectsStraddle) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000});
  EXPECT_NE(t.lookup_range(range(1000, 100)), nullptr);
  EXPECT_NE(t.lookup_range(range(1050, 50)), nullptr);
  EXPECT_THROW((void)t.lookup_range(range(1050, 100)), std::invalid_argument);
  EXPECT_EQ(t.lookup_range(range(2000, 10)), nullptr);
}

TEST(PresentTable, EraseRemovesEntry) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000});
  t.erase(mem::VirtAddr{1000});
  EXPECT_EQ(t.lookup(mem::VirtAddr{1000}), nullptr);
  EXPECT_THROW(t.erase(mem::VirtAddr{1000}), std::invalid_argument);
}

TEST(PresentTable, MultipleDisjointEntries) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000});
  t.insert(range(3000, 100), mem::VirtAddr{6000});
  t.insert(range(2000, 100), mem::VirtAddr{7000});
  EXPECT_EQ(t.lookup(mem::VirtAddr{2050})->device_base.value, 7000u);
  EXPECT_EQ(t.lookup(mem::VirtAddr{3000})->device_base.value, 6000u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(PresentTable, PinnedFlagStored) {
  PresentTable t;
  PresentEntry& e = t.insert(range(1000, 8), mem::VirtAddr{5000}, true);
  EXPECT_TRUE(e.pinned);
}

TEST(PresentTable, PinnedEntriesCoexistWithDynamicOnes) {
  PresentTable t;
  t.insert(range(1000, 100), mem::VirtAddr{5000}, true);
  PresentEntry& dyn = t.insert(range(2000, 100), mem::VirtAddr{6000});
  dyn.refcount = 1;
  EXPECT_TRUE(t.lookup(mem::VirtAddr{1000})->pinned);
  EXPECT_FALSE(t.lookup(mem::VirtAddr{2000})->pinned);
}

}  // namespace
}  // namespace zc::omp
