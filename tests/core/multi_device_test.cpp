// Multi-socket APU support (§III-A of the paper): each socket's GPU is one
// OpenMP device with its own page table, driver, and engines; memory homed
// on the other socket is reachable at a fabric penalty.

#include <gtest/gtest.h>

#include <memory>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> make_card(RuntimeConfig cfg, int sockets,
                                        ProgramBinary prog = {}) {
  apu::Machine::Config mc = OffloadStack::machine_config_for(cfg);
  mc.topology.sockets = sockets;
  return std::make_unique<OffloadStack>(std::move(mc),
                                        OffloadStack::program_for(cfg, std::move(prog)));
}

TEST(MultiDevice, SocketResourcesAreIndependent) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  apu::Machine& m = stack->machine();
  EXPECT_EQ(m.sockets(), 2);
  (void)m.gpu(0).reserve(sim::TimePoint::zero(), 10_ms);
  EXPECT_GT(m.gpu(0).drained_at(), sim::TimePoint::zero());
  EXPECT_EQ(m.gpu(1).drained_at(), sim::TimePoint::zero());
  EXPECT_THROW((void)m.gpu(2), std::out_of_range);
  EXPECT_THROW((void)m.driver(-1), std::out_of_range);
}

TEST(MultiDevice, PageTablesPerSocket) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  mem::MemorySystem& mm = stack->memory();
  mem::Allocation& a = mm.os_alloc(4 * stack->machine().page_bytes(), "buf");
  (void)mm.gpu_fault_in(a.range(), 0);
  EXPECT_EQ(mm.gpu_absent_pages(a.range(), 0), 0u);
  EXPECT_EQ(mm.gpu_absent_pages(a.range(), 1), 4u);  // socket 1 never faulted
}

TEST(MultiDevice, KernelsFaultPerDevice) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t page = stack->machine().page_bytes();
    HostArray<std::byte> x{rt, static_cast<std::size_t>(4 * page), "x"};
    TargetRegion on0{.name = "k0",
                     .maps = {x.tofrom()},
                     .compute = 10_us,
                     .body = {},
                     .device = 0};
    TargetRegion on1{on0};
    on1.name = "k1";
    on1.device = 1;
    rt.target(on0);
    rt.target(on1);  // same host range faults again on the other socket
  });
  EXPECT_EQ(stack->hsa().kernel_trace().summary().total_page_faults, 8u);
}

TEST(MultiDevice, RemoteMemoryPenalizesKernelCompute) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  sim::Duration local;
  sim::Duration remote;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr near =
        rt.host_alloc(1 << 20, "near", /*home_socket=*/0);
    const mem::VirtAddr far = rt.host_alloc(1 << 20, "far", /*home_socket=*/1);
    rt.host_first_touch(mem::AddrRange{near, 1 << 20});
    rt.host_first_touch(mem::AddrRange{far, 1 << 20});
    auto run_on0 = [&](mem::VirtAddr buf) {
      const auto before = stack->hsa().kernel_trace().summary().total_compute;
      rt.target(TargetRegion{
          .name = "probe",
          .maps = {MapEntry::tofrom(buf, 1 << 20)},
          .compute = 1000_us,
          .body = {},
          .device = 0,
      });
      return stack->hsa().kernel_trace().summary().total_compute - before;
    };
    local = run_on0(near);
    remote = run_on0(far);
  });
  const double penalty = stack->machine().costs().remote_memory_penalty;
  EXPECT_NEAR(remote / local, penalty, 0.01);
}

TEST(MultiDevice, CrossSocketCopiesAreSlower) {
  auto stack = make_card(RuntimeConfig::LegacyCopy, 2);
  sim::Duration same;
  sim::Duration cross;
  stack->sched().run_single([&] {
    hsa::Runtime& hsa = stack->hsa();
    mem::MemorySystem& mm = stack->memory();
    const std::uint64_t bytes = 256ULL << 20;
    mem::Allocation& a0 = mm.os_alloc(bytes, "a0", 0);
    mem::Allocation& b0 = mm.os_alloc(bytes, "b0", 0);
    mem::Allocation& c1 = mm.os_alloc(bytes, "c1", 1);
    {
      hsa::Signal s = hsa.memory_async_copy(b0.base(), a0.base(), bytes);
      same = s.complete_at().since_start();
    }
    const sim::TimePoint before = stack->sched().now();
    {
      hsa::Signal s = hsa.memory_async_copy(c1.base(), a0.base(), bytes);
      cross = s.complete_at() - before;
    }
  });
  EXPECT_GT(cross, same);
}

TEST(MultiDevice, GlobalsGetOneDeviceCopyPerSocket) {
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"g", sizeof(double)});
  auto two = make_card(RuntimeConfig::ImplicitZeroCopy, 2, prog);
  auto one = make_card(RuntimeConfig::ImplicitZeroCopy, 1, prog);
  auto count_global_allocs = [](OffloadStack& stack) {
    stack.sched().run_single(
        [&] { (void)stack.omp().global_host_addr("g"); });
    return stack.hsa().stats().count(trace::HsaCall::MemoryPoolAllocate);
  };
  // Image-load allocations are identical; the two-socket card adds one
  // extra device copy of the global.
  EXPECT_EQ(count_global_allocs(*two), count_global_allocs(*one) + 1);
}

TEST(MultiDevice, PresentTablesIndependentAcrossDevices) {
  auto stack = make_card(RuntimeConfig::LegacyCopy, 2);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 64, "x"};
    const MapEntry entry = x.tofrom();
    rt.target_data_begin({&entry, 1}, 0);
    EXPECT_EQ(rt.present_table(0).size(), 1u);
    EXPECT_EQ(rt.present_table(1).size(), 0u);
    rt.target_data_begin({&entry, 1}, 1);  // independent second mapping
    EXPECT_EQ(rt.present_table(1).size(), 1u);
    rt.target_data_end({&entry, 1}, 1);
    rt.target_data_end({&entry, 1}, 0);
    EXPECT_EQ(rt.present_table(0).size(), 0u);
    EXPECT_EQ(rt.present_table(1).size(), 0u);
  });
}

TEST(MultiDevice, OutOfRangeDeviceRejected) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 TargetRegion region{.name = "k",
                                     .maps = {x.tofrom()},
                                     .compute = 1_us,
                                     .body = {},
                                     .device = 2};
                 rt.target(region);
               }),
               MappingError);
}

TEST(MultiDevice, AutoDeviceFollowsTheData) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t page = stack->machine().page_bytes();
    const mem::VirtAddr far =
        rt.host_alloc(4 * page, "far", /*home_socket=*/1);
    rt.host_first_touch(mem::AddrRange{far, 4 * page});
    rt.target(TargetRegion{
        .name = "auto",
        .maps = {MapEntry::tofrom(far, 4 * page)},
        .compute = 10_us,
        .body = {},
        .device = OffloadRuntime::kDeviceAuto,
    });
    // The kernel ran where the data lives: socket 1's page table filled,
    // socket 0's never did.
    mem::MemorySystem& mm = stack->memory();
    EXPECT_EQ(mm.gpu_absent_pages(mem::AddrRange{far, 4 * page}, 1), 0u);
    EXPECT_EQ(mm.gpu_absent_pages(mem::AddrRange{far, 4 * page}, 0), 4u);
  });
  EXPECT_EQ(stack->hsa().device_counters()[1].kernels, 1u);
  EXPECT_EQ(stack->hsa().device_counters()[0].kernels, 0u);
}

TEST(MultiDevice, AutoDeviceWeighsBytesAndBreaksTiesLow) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t page = stack->machine().page_bytes();
    const mem::VirtAddr big = rt.host_alloc(3 * page, "big", 1);
    const mem::VirtAddr small = rt.host_alloc(1 * page, "small", 0);
    rt.host_first_touch(mem::AddrRange{big, 3 * page});
    rt.host_first_touch(mem::AddrRange{small, 1 * page});
    rt.target(TargetRegion{
        .name = "weighted",
        .maps = {MapEntry::tofrom(big, 3 * page),
                 MapEntry::tofrom(small, 1 * page)},
        .compute = 10_us,
        .body = {},
        .device = OffloadRuntime::kDeviceAuto,
    });
    // Equal bytes on both sockets: the tie breaks to the lower device.
    const mem::VirtAddr even0 = rt.host_alloc(2 * page, "even0", 0);
    const mem::VirtAddr even1 = rt.host_alloc(2 * page, "even1", 1);
    rt.host_first_touch(mem::AddrRange{even0, 2 * page});
    rt.host_first_touch(mem::AddrRange{even1, 2 * page});
    rt.target(TargetRegion{
        .name = "tied",
        .maps = {MapEntry::tofrom(even0, 2 * page),
                 MapEntry::tofrom(even1, 2 * page)},
        .compute = 10_us,
        .body = {},
        .device = OffloadRuntime::kDeviceAuto,
    });
  });
  EXPECT_EQ(stack->hsa().device_counters()[1].kernels, 1u);  // "weighted"
  EXPECT_EQ(stack->hsa().device_counters()[0].kernels, 1u);  // "tied"
}

TEST(MultiDevice, TargetMemcpyRunsOnTheDestinationSocketsEngine) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  // Image-load copies land on device 0's engine at first use; compare
  // against that baseline so only the memcpy itself is attributed.
  sim::Duration sdma0_before;
  hsa::DeviceCounters dev0_before;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t bytes = 8 << 20;
    const mem::VirtAddr src = rt.host_alloc(bytes, "src", 0);
    const mem::VirtAddr dst = rt.host_alloc(bytes, "dst", 1);
    rt.host_first_touch(mem::AddrRange{src, bytes});
    // Trigger the lazy image load (its copies ride device 0's engine).
    const MapEntry warm = MapEntry::to(src, bytes);
    rt.target_data_begin({&warm, 1}, 0);
    rt.target_data_end({&warm, 1}, 0);
    sdma0_before = stack->machine().sdma(0).busy_time();
    dev0_before = stack->hsa().device_counters()[0];
    rt.target_memcpy(dst, src, bytes);
  });
  apu::Machine& m = stack->machine();
  EXPECT_GT(m.sdma(1).busy_time(), sim::Duration{});
  EXPECT_EQ(m.sdma(0).busy_time(), sdma0_before);  // engine 0 untouched
  const std::vector<hsa::DeviceCounters>& dc = stack->hsa().device_counters();
  EXPECT_EQ(dc[1].copies, 1u);
  EXPECT_EQ(dc[1].cross_socket_copies, 1u);
  EXPECT_EQ(dc[0].copies, dev0_before.copies);
}

TEST(MultiDevice, MigrationMakesRemoteMemoryLocal) {
  auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
  sim::Duration remote;
  sim::Duration after_migrate;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const std::uint64_t bytes = 4 * stack->machine().page_bytes();
    const mem::VirtAddr buf = rt.host_alloc(bytes, "buf", /*home_socket=*/0);
    rt.host_first_touch(mem::AddrRange{buf, bytes});
    auto run_on1 = [&] {
      const auto before = stack->hsa().kernel_trace().summary().total_compute;
      rt.target(TargetRegion{
          .name = "probe",
          .maps = {MapEntry::tofrom(buf, bytes)},
          .compute = 1000_us,
          .body = {},
          .device = 1,
      });
      return stack->hsa().kernel_trace().summary().total_compute - before;
    };
    remote = run_on1();
    const std::uint64_t moved =
        rt.migrate_to_device(mem::AddrRange{buf, bytes}, 1);
    EXPECT_EQ(moved, 4u);
    after_migrate = run_on1();
  });
  // Before: full remote penalty. After: the data is local to device 1.
  const double penalty = stack->machine().costs().remote_memory_penalty;
  EXPECT_NEAR(remote / after_migrate, penalty, 0.01);
  EXPECT_EQ(stack->hsa().device_counters()[1].migrated_pages, 4u);
}

TEST(MultiDevice, AffinityMattersForThroughput) {
  // Eight threads on a two-socket card: offloading with thread affinity
  // (half the threads to each socket, data homed locally) beats pinning
  // every thread to socket 0 — the §III-A programming guidance.
  auto run_card = [](bool good_affinity) {
    auto stack = make_card(RuntimeConfig::ImplicitZeroCopy, 2);
    auto& sched = stack->sched();
    for (int t = 0; t < 8; ++t) {
      const int device = good_affinity ? (t / 4) : 0;
      sched.spawn("omp-" + std::to_string(t), [&stack, t, device] {
        OffloadRuntime& rt = stack->omp();
        const mem::VirtAddr buf = rt.host_alloc(
            8 << 20, "buf-" + std::to_string(t), /*home=*/device);
        rt.host_first_touch(mem::AddrRange{buf, 8 << 20});
        for (int i = 0; i < 50; ++i) {
          rt.target(TargetRegion{
              .name = "work",
              .maps = {MapEntry::tofrom(buf, 8 << 20)},
              .compute = 200_us,
              .body = {},
              .device = device,
          });
        }
        rt.host_free(buf);
      });
    }
    sched.run();
    return stack->sched().horizon().since_start();
  };
  EXPECT_LT(run_card(true), run_card(false));
}

}  // namespace
}  // namespace zc::omp
