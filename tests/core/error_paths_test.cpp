// Coverage for every structured error path of the offload runtime: the
// unified ErrorCode taxonomy must identify what failed, implicate the right
// device and host range, and leave the runtime's tables consistent enough
// to keep issuing work.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg,
                                         ProgramBinary prog = {}) {
  return std::make_unique<OffloadStack>(
      OffloadStack::machine_config_for(cfg),
      OffloadStack::program_for(cfg, std::move(prog)));
}

template <typename Err, typename Body>
Err capture(OffloadStack& stack, Body body) {
  try {
    stack.sched().run_single(std::move(body));
  } catch (const Err& e) {
    return e;
  }
  ADD_FAILURE() << "expected exception was not thrown";
  return Err{ErrorCode::InvalidArgument, "unreached"};
}

template <typename Body>
MappingError capture_mapping(OffloadStack& stack, Body body) {
  try {
    stack.sched().run_single(std::move(body));
  } catch (const MappingError& e) {
    return e;
  }
  ADD_FAILURE() << "expected MappingError was not thrown";
  return MappingError{"unreached"};
}

TEST(ErrorTaxonomy, WhatStringCarriesTheCode) {
  const OffloadError e{ErrorCode::CopyFailed, "boom", 2,
                       mem::AddrRange{mem::VirtAddr{0x1000}, 64}};
  EXPECT_EQ(std::string{e.what()}, "[copy-failed] boom");
  EXPECT_EQ(e.code(), ErrorCode::CopyFailed);
  EXPECT_EQ(e.device(), 2);
  EXPECT_EQ(e.host_range().base.value, 0x1000u);
  EXPECT_EQ(e.host_range().bytes, 64u);
}

TEST(ErrorTaxonomy, MappingErrorIsPartOfTheTaxonomy) {
  const MappingError e{"bad map"};
  const OffloadError& base = e;  // catchable as OffloadError
  EXPECT_EQ(base.code(), ErrorCode::MappingViolation);
  EXPECT_EQ(base.device(), -1);
  EXPECT_TRUE(base.host_range().empty());
}

TEST(ErrorPaths, DeviceOutOfRangeNamesTheDevice) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  const MappingError e = capture_mapping(
      *stack, [&] { stack->omp().target_data_begin({}, /*device=*/7); });
  EXPECT_EQ(e.code(), ErrorCode::DeviceOutOfRange);
  EXPECT_EQ(e.device(), 7);
}

TEST(ErrorPaths, ZeroSizeGlobalIsInvalidArgument) {
  ProgramBinary prog;
  prog.globals.push_back(GlobalVar{"empty", 0});
  auto stack = make_stack(RuntimeConfig::LegacyCopy, prog);
  const OffloadError e = capture<OffloadError>(
      *stack, [&] { stack->omp().target_data_begin({}); });
  EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
}

TEST(ErrorPaths, UnknownGlobalCarriesItsCode) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  const OffloadError e = capture<OffloadError>(
      *stack, [&] { (void)stack->omp().global_host_addr("nope"); });
  EXPECT_EQ(e.code(), ErrorCode::UnknownGlobal);
  EXPECT_NE(std::string{e.what()}.find("nope"), std::string::npos);
}

TEST(ErrorPaths, ZeroSizeMapEntryImplicatesDeviceAndRange) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  const OffloadError e = capture<OffloadError>(*stack, [&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    const MapEntry empty = MapEntry::to(x.addr(), 0);
    rt.target_data_begin({&empty, 1});
  });
  EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(e.device(), 0);
}

TEST(ErrorPaths, DataEndOfUnmappedRangeCarriesTheRange) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  mem::VirtAddr expected;
  const MappingError e = capture_mapping(*stack, [&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    expected = x.addr();
    const MapEntry entry = x.from();
    rt.target_data_end({&entry, 1});
  });
  EXPECT_EQ(e.code(), ErrorCode::MappingViolation);
  EXPECT_EQ(e.device(), 0);
  EXPECT_EQ(e.host_range().base, expected);
  EXPECT_EQ(e.host_range().bytes, 8 * sizeof(double));
}

TEST(ErrorPaths, OverlappingMapEntriesOnOneConstructRejected) {
  for (RuntimeConfig cfg :
       {RuntimeConfig::LegacyCopy, RuntimeConfig::ImplicitZeroCopy}) {
    auto stack = make_stack(cfg);
    const MappingError e = capture_mapping(*stack, [&] {
      OffloadRuntime& rt = stack->omp();
      HostArray<double> x{rt, 16, "x"};
      const MapEntry whole = x.tofrom();
      const MapEntry tail = MapEntry::to(x.addr() + 8, 32);
      const MapEntry maps[] = {whole, tail};
      rt.target_data_begin({maps, 2});
    });
    EXPECT_EQ(e.code(), ErrorCode::MappingViolation) << to_string(cfg);
  }
}

TEST(ErrorPaths, ExitOnlyMapTypeRejectedOnEntryConstructs) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  const MappingError e = capture_mapping(*stack, [&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    const MapEntry rel = MapEntry::release(x.addr(), x.bytes());
    rt.target_enter_data({&rel, 1});
  });
  EXPECT_EQ(e.code(), ErrorCode::MappingViolation);
}

TEST(ErrorPaths, TargetUpdateOfUnmappedRangeThrowsBothDirections) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    try {
      rt.target_update_to(x.to());
      ADD_FAILURE() << "update to() of unmapped range must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::MappingViolation);
      EXPECT_EQ(e.host_range().base, x.addr());
    }
    try {
      rt.target_update_from(x.from());
      ADD_FAILURE() << "update from() of unmapped range must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::MappingViolation);
    }
  });
}

TEST(ErrorPaths, InvalidNowaitDependenceIsTaskMisuse) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    TargetRegion region{
        .name = "k", .maps = {x.tofrom()}, .compute = 1_us, .body = {}};
    const TargetTask never_started;  // invalid: no kernel in flight
    const TargetTask* deps[] = {&never_started};
    try {
      (void)rt.target_nowait(region, {deps, 1});
      ADD_FAILURE() << "invalid dependence must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::TaskMisuse);
    }
  });
}

TEST(ErrorPaths, DoubleTargetWaitIsTaskMisuse) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    TargetRegion region{
        .name = "k", .maps = {x.tofrom()}, .compute = 1_us, .body = {}};
    TargetTask task = rt.target_nowait(region);
    rt.target_wait(task);
    try {
      rt.target_wait(task);
      ADD_FAILURE() << "second wait must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::TaskMisuse);
    }
    // An empty (default) task was never started at all.
    TargetTask empty;
    try {
      rt.target_wait(empty);
      ADD_FAILURE() << "waiting an empty task must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::TaskMisuse);
    }
  });
}

TEST(ErrorPaths, HostFreeOfMappedMemoryIsRefused) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    const MapEntry entry = x.to();
    rt.target_data_begin({&entry, 1});
    try {
      rt.host_free(x.addr());
      ADD_FAILURE() << "freeing mapped memory must throw";
    } catch (const MappingError& e) {
      EXPECT_EQ(e.code(), ErrorCode::MappingViolation);
      EXPECT_EQ(e.device(), 0);
      EXPECT_EQ(e.host_range().base, x.addr());
    }
    // The refused free must not have disturbed the mapping.
    rt.target_data_end({&entry, 1});
  });
}

TEST(ErrorPaths, RejectedHostFreeLeavesAdaptiveCacheIntact) {
  // Regression: host_free used to forget the Adaptive Maps decision before
  // validating the free itself, so a free os_free would reject (interior
  // pointer) dropped cached state for memory that remained live.
  auto stack = make_stack(RuntimeConfig::AdaptiveMaps);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 1024, "x"};
    x.first_touch();
    const MapEntry entry = x.tofrom();
    rt.target_data_begin({&entry, 1});
    rt.target_data_end({&entry, 1});
    const std::size_t cached = rt.policy_engine().cache_size(0);
    ASSERT_GE(cached, 1u);
    EXPECT_THROW(rt.host_free(x.addr() + sizeof(double)),
                 std::invalid_argument);
    EXPECT_EQ(rt.policy_engine().cache_size(0), cached);
    // A proper free of the exact base still works and forgets the decision.
    x.release();
    EXPECT_EQ(rt.policy_engine().cache_size(0), cached - 1);
  });
}

TEST(ErrorPaths, FailedConstructDoesNotPoisonTheRuntime) {
  // After a structured mapping failure the same runtime must keep serving
  // well-formed constructs (tables stayed consistent).
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 16, "x"};
    const MapEntry bogus = x.from();
    EXPECT_THROW(rt.target_data_end({&bogus, 1}), MappingError);
    for (int i = 0; i < 16; ++i) {
      x[i] = 1.0;
    }
    const mem::VirtAddr xv = x.addr();
    TargetRegion region{
        .name = "incr",
        .maps = {x.tofrom()},
        .compute = 1_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* xd = ctx.ptr<double>(tr.device(xv));
          for (int i = 0; i < 16; ++i) {
            xd[i] += 1.0;
          }
        },
    };
    rt.target(region);
    EXPECT_DOUBLE_EQ(x[0], 2.0);
    EXPECT_EQ(rt.present_table(0).size(), 0u);
  });
}

}  // namespace
}  // namespace zc::omp
