// Exhaustive configuration-selection matrix: every combination of machine
// kind, XNACK, OMPX_APU_MAPS (off / on / adaptive), OMPX_EAGER_ZERO_COPY_MAPS
// and binary USM requirement resolves to exactly the configuration the
// paper's rules (plus the Adaptive Maps extension) dictate — or fails loudly.

#include <gtest/gtest.h>

#include <tuple>

#include "zc/core/config.hpp"

namespace zc::omp {
namespace {

using apu::ApuMapsMode;
using apu::MachineKind;
using apu::RunEnvironment;

using Case = std::tuple<bool /*apu*/, bool /*xnack*/, ApuMapsMode /*apu_maps*/,
                        bool /*eager*/, bool /*usm binary*/>;

class ConfigMatrix : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(ApuMapsMode::Off, ApuMapsMode::On,
                                         ApuMapsMode::Adaptive),
                       ::testing::Bool(), ::testing::Bool()));

TEST_P(ConfigMatrix, ResolvesPerPaperRules) {
  const auto [apu, xnack, apu_maps, eager, usm] = GetParam();
  const MachineKind kind =
      apu ? MachineKind::ApuMi300a : MachineKind::DiscreteGpu;
  RunEnvironment env;
  env.hsa_xnack = xnack;
  env.ompx_apu_maps = apu_maps;
  env.ompx_eager_maps = eager;

  if (usm && !xnack) {
    // USM binaries demand unified memory; no fallback exists.
    EXPECT_THROW((void)resolve_config(kind, env, usm), ConfigError);
    return;
  }
  const RuntimeConfig got = resolve_config(kind, env, usm);
  RuntimeConfig expect;
  if (usm) {
    expect = RuntimeConfig::UnifiedSharedMemory;  // binary requirement wins
  } else if (apu_maps == ApuMapsMode::Adaptive && apu) {
    expect = RuntimeConfig::AdaptiveMaps;  // policy engine (XNACK optional)
  } else if (eager && apu) {
    expect = RuntimeConfig::EagerMaps;  // §IV-D (works with XNACK off)
  } else if (xnack && (apu || apu_maps != ApuMapsMode::Off)) {
    expect = RuntimeConfig::ImplicitZeroCopy;  // §IV-C + footnote 1
  } else {
    expect = RuntimeConfig::LegacyCopy;  // discrete-GPU behaviour
  }
  EXPECT_EQ(got, expect) << "apu=" << apu << " xnack=" << xnack
                         << " apu_maps=" << to_string(apu_maps)
                         << " eager=" << eager << " usm=" << usm;
}

}  // namespace
}  // namespace zc::omp
