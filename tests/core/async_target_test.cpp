#include <gtest/gtest.h>

#include <memory>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg) {
  return std::make_unique<OffloadStack>(OffloadStack::machine_config_for(cfg),
                                        OffloadStack::program_for(cfg, {}));
}

TEST(AsyncTarget, NowaitReturnsBeforeKernelCompletes) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 64, "x"};
    rt.target_data_begin({});  // image load / thread init up front
    TargetRegion region{.name = "long",
                        .maps = {x.tofrom()},
                        .compute = sim::Duration::milliseconds(50),
                        .body = {}};
    const sim::TimePoint before = stack->sched().now();
    TargetTask task = rt.target_nowait(region);
    const sim::Duration elapsed = stack->sched().now() - before;
    EXPECT_LT(elapsed, sim::Duration::milliseconds(5));  // did not wait
    rt.target_wait(task);
    EXPECT_GE(stack->sched().now() - before, sim::Duration::milliseconds(50));
    EXPECT_TRUE(task.completed());
  });
}

TEST(AsyncTarget, ResultsVisibleAfterWaitUnderCopy) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 8, "x"};
    x[0] = 2.0;
    const mem::VirtAddr xv = x.addr();
    TargetRegion region{
        .name = "sq",
        .maps = {x.tofrom()},
        .compute = 10_us,
        .body = [xv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* d = ctx.ptr<double>(tr.device(xv));
          d[0] = d[0] * d[0];
        },
    };
    TargetTask task = rt.target_nowait(region);
    rt.target_wait(task);
    EXPECT_DOUBLE_EQ(x[0], 4.0);  // d2h performed by the deferred data-end
  });
}

TEST(AsyncTarget, TwoNowaitKernelsOverlapOnOneThread) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, 64, "a"};
    HostArray<double> b{rt, 64, "b"};
    rt.target_data_begin({});  // image load / thread init up front
    auto region = [](HostArray<double>& arr, const char* name) {
      return TargetRegion{.name = name,
                          .maps = {arr.tofrom()},
                          .compute = sim::Duration::milliseconds(20),
                          .body = {}};
    };
    const sim::TimePoint before = stack->sched().now();
    TargetTask t1 = rt.target_nowait(region(a, "k1"));
    TargetTask t2 = rt.target_nowait(region(b, "k2"));
    rt.target_wait(t1);
    rt.target_wait(t2);
    const sim::Duration elapsed = stack->sched().now() - before;
    // Overlapped on the GPU slots: well under 2x20ms.
    EXPECT_LT(elapsed, sim::Duration::milliseconds(30));
  });
}

TEST(AsyncTarget, DoubleWaitThrows) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 TargetRegion region{.name = "k",
                                     .maps = {x.tofrom()},
                                     .compute = 1_us,
                                     .body = {}};
                 TargetTask task = rt.target_nowait(region);
                 rt.target_wait(task);
                 rt.target_wait(task);
               }),
               MappingError);
}

TEST(AsyncTarget, EmptyTaskRejected) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 TargetTask task;
                 stack->omp().target_wait(task);
               }),
               MappingError);
}

TEST(DevicePtrApi, AllocWorksInEveryConfigButAlwaysAllocates) {
  for (RuntimeConfig cfg :
       {RuntimeConfig::LegacyCopy, RuntimeConfig::UnifiedSharedMemory,
        RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps}) {
    auto stack = make_stack(cfg);
    stack->sched().run_single([&] {
      OffloadRuntime& rt = stack->omp();
      rt.target_data_begin({});  // init
      const auto allocs_before =
          stack->hsa().stats().count(trace::HsaCall::MemoryPoolAllocate);
      const mem::VirtAddr dev = rt.device_alloc(1 << 20, "devbuf");
      // The pitfall: the pool allocation happens regardless of zero-copy.
      EXPECT_EQ(stack->hsa().stats().count(trace::HsaCall::MemoryPoolAllocate),
                allocs_before + 1)
          << to_string(cfg);
      rt.device_free(dev);
    });
  }
}

TEST(DevicePtrApi, MemcpyAndIsDevicePtrKernelRoundTrip) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> host{rt, 8, "host"};
    host[0] = 5.0;
    const mem::VirtAddr dev = rt.device_alloc(8 * sizeof(double), "dev");

    // omp_target_memcpy h2d, kernel via is_device_ptr, memcpy d2h.
    rt.target_memcpy(dev, host.addr(), host.bytes());
    TargetRegion region{
        .name = "devptr_kernel",
        .maps = {},
        .uses = {BufferUse{dev, 8 * sizeof(double), hsa::Access::ReadWrite}},
        .compute = 1_us,
        .body = [dev](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          // is_device_ptr: translation is identity even under Legacy Copy.
          ctx.ptr<double>(tr.device(dev))[0] += 1.5;
        },
    };
    rt.target(region);
    rt.target_memcpy(host.addr(), dev, host.bytes());
    EXPECT_DOUBLE_EQ(host[0], 6.5);
    rt.device_free(dev);
  });
}

TEST(DevicePtrApi, NullifiesZeroCopyBenefit) {
  // The paper's QMCPack build note: code that allocates through the device
  // runtime keeps paying allocation + transfer costs even under Implicit
  // Zero-Copy.
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> host{rt, 1 << 16, "host"};
    rt.target_data_begin({});
    const auto copies_before = stack->hsa().ledger().mm_copy();
    const mem::VirtAddr dev = rt.device_alloc(host.bytes(), "dev");
    rt.target_memcpy(dev, host.addr(), host.bytes());
    rt.target_memcpy(host.addr(), dev, host.bytes());
    rt.device_free(dev);
    EXPECT_GT(stack->hsa().ledger().mm_copy(), copies_before);
    EXPECT_GT(stack->hsa().ledger().mm_alloc(), sim::Duration::zero());
  });
}

TEST(AsyncTarget, DependentTasksSerializeOnTheGpu) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, 64, "a"};
    HostArray<double> b{rt, 64, "b"};
    rt.target_data_begin({});
    auto region = [](HostArray<double>& arr, const char* name) {
      return TargetRegion{.name = name,
                          .maps = {arr.tofrom()},
                          .compute = sim::Duration::milliseconds(20),
                          .body = {}};
    };
    TargetTask t1 = rt.target_nowait(region(a, "producer"));
    const TargetTask* deps[] = {&t1};
    TargetTask t2 = rt.target_nowait(region(b, "consumer"), deps);
    rt.target_wait(t1);
    rt.target_wait(t2);
  });
  const auto& recs = stack->hsa().kernel_trace().records();
  // Find the two steady-state kernels (skip none: only two launched).
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_GE(recs[1].start, recs[0].end);  // dependence respected
}

TEST(AsyncTarget, IndependentTasksStillOverlap) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, 64, "a"};
    HostArray<double> b{rt, 64, "b"};
    rt.target_data_begin({});
    auto region = [](HostArray<double>& arr, const char* name) {
      return TargetRegion{.name = name,
                          .maps = {arr.tofrom()},
                          .compute = sim::Duration::milliseconds(20),
                          .body = {}};
    };
    TargetTask t1 = rt.target_nowait(region(a, "k1"));
    TargetTask t2 = rt.target_nowait(region(b, "k2"));
    rt.target_wait(t1);
    rt.target_wait(t2);
  });
  const auto& recs = stack->hsa().kernel_trace().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_LT(recs[1].start, recs[0].end);  // concurrent on the slots
}

TEST(AsyncTarget, DependenceChainAccumulates) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, 64, "a"};
    rt.target_data_begin({});
    TargetRegion region{.name = "link",
                        .maps = {a.tofrom()},
                        .compute = sim::Duration::milliseconds(10),
                        .body = {}};
    TargetTask t1 = rt.target_nowait(region);
    const TargetTask* d1[] = {&t1};
    TargetTask t2 = rt.target_nowait(region, d1);
    const TargetTask* d2[] = {&t2};
    TargetTask t3 = rt.target_nowait(region, d2);
    rt.target_wait(t1);
    rt.target_wait(t2);
    rt.target_wait(t3);
    // Three links of >= 10ms each, serialized.
    EXPECT_GE(stack->sched().now().since_start(),
              sim::Duration::milliseconds(30));
  });
}

TEST(AsyncTarget, NullDependenceRejected) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  EXPECT_THROW(stack->sched().run_single([&] {
                 OffloadRuntime& rt = stack->omp();
                 HostArray<double> x{rt, 8, "x"};
                 TargetRegion region{.name = "k",
                                     .maps = {x.tofrom()},
                                     .compute = 1_us,
                                     .body = {}};
                 const TargetTask* deps[] = {nullptr};
                 (void)rt.target_nowait(region, deps);
               }),
               MappingError);
}

}  // namespace
}  // namespace zc::omp
