#include "zc/core/target_region.hpp"

#include <gtest/gtest.h>

#include "zc/mem/address_space.hpp"

namespace zc::omp {
namespace {

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(ArgTranslator, MappedAddressesUsePresentTable) {
  PresentTable table;
  table.insert(mem::AddrRange{mem::VirtAddr{1000}, 100}, mem::VirtAddr{9000});
  const ArgTranslator tr{table, /*zero_copy=*/false};
  EXPECT_EQ(tr.device(mem::VirtAddr{1000}).value, 9000u);
  EXPECT_EQ(tr.device(mem::VirtAddr{1042}).value, 9042u);
  EXPECT_EQ(tr.device(mem::VirtAddr{1000}, 17).value, 9017u);
}

TEST(ArgTranslator, ZeroCopyFallsBackToIdentity) {
  PresentTable table;
  const ArgTranslator tr{table, /*zero_copy=*/true};
  EXPECT_EQ(tr.device(mem::VirtAddr{123456}).value, 123456u);
}

TEST(ArgTranslator, ZeroCopyStillPrefersTableForGlobals) {
  // Implicit Z-C: globals have pinned device copies; everything else is
  // identity.
  PresentTable table;
  table.insert(mem::AddrRange{mem::VirtAddr{1000}, 8}, mem::VirtAddr{7000},
               /*pinned=*/true);
  const ArgTranslator tr{table, /*zero_copy=*/true};
  EXPECT_EQ(tr.device(mem::VirtAddr{1004}).value, 7004u);
  EXPECT_EQ(tr.device(mem::VirtAddr{2000}).value, 2000u);
}

TEST(ArgTranslator, CopyModeRejectsUnmappedHostAddress) {
  PresentTable table;
  const ArgTranslator tr{table, /*zero_copy=*/false};
  EXPECT_THROW((void)tr.device(mem::VirtAddr{555}), std::invalid_argument);
}

TEST(ArgTranslator, DevicePoolPointersAreIdentityEvenUnderCopy) {
  mem::AddressSpace space{kPage};
  mem::Allocation& dev = space.allocate(256, mem::MemKind::DevicePool, "d");
  mem::Allocation& host = space.allocate(256, mem::MemKind::HostOs, "h");
  PresentTable table;
  const ArgTranslator tr{table, /*zero_copy=*/false, &space};
  EXPECT_EQ(tr.device(dev.base()), dev.base());
  EXPECT_EQ(tr.device(dev.base() + 100), dev.base() + 100);
  // Host memory without a mapping still fails under Copy.
  EXPECT_THROW((void)tr.device(host.base()), std::invalid_argument);
}

TEST(ArgTranslator, TableTakesPrecedenceOverDevicePoolScan) {
  mem::AddressSpace space{kPage};
  mem::Allocation& host = space.allocate(256, mem::MemKind::HostOs, "h");
  PresentTable table;
  table.insert(host.range(), mem::VirtAddr{42 * kPage});
  const ArgTranslator tr{table, /*zero_copy=*/false, &space};
  EXPECT_EQ(tr.device(host.base()).value, 42 * kPage);
}

}  // namespace
}  // namespace zc::omp
