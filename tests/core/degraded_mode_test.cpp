// Degraded-mode behaviour of the offload runtime under injected and
// organic faults: pool OOM degrades Copy-managed maps to zero-copy,
// transient prefault errors are retried with backoff, errored async copies
// are resubmitted — and when no degradation survives, exactly one region
// fails with a structured OffloadError while the runtime stays usable.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;
using trace::FaultEvent;
using trace::HsaCall;

// Image load (128 MB + 8x16 MB) plus one thread's init allocations
// (4 MB + 9 page-rounded slabs) occupy ~278 MB of pool storage before any
// map runs; this cap leaves ~22 MB of headroom so initialization succeeds
// while a 32 MB mapped array cannot be allocated.
constexpr std::uint64_t kTightHbm = 300ULL << 20;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg,
                                         const std::string& fault_spec,
                                         std::uint64_t hbm_bytes = 128ULL
                                                                   << 30) {
  apu::Machine::Config config = OffloadStack::machine_config_for(cfg);
  config.env.ompx_apu_faults = fault_spec;
  config.topology.hbm_bytes = hbm_bytes;
  return std::make_unique<OffloadStack>(std::move(config),
                                        OffloadStack::program_for(cfg, {}));
}

/// x[i] += 1 over an n-double array mapped tofrom; returns final contents.
std::vector<double> run_increment(OffloadStack& stack, std::size_t n,
                                  int rounds = 1) {
  std::vector<double> result(n);
  stack.sched().run_single([&] {
    OffloadRuntime& rt = stack.omp();
    HostArray<double> x{rt, n, "x"};
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(i);
    }
    const mem::VirtAddr xv = x.addr();
    TargetRegion region{
        .name = "incr",
        .maps = {x.tofrom()},
        .compute = 5_us,
        .body = [xv, n](hsa::KernelContext& ctx, const ArgTranslator& tr) {
          double* xd = ctx.ptr<double>(tr.device(xv));
          for (std::size_t i = 0; i < n; ++i) {
            xd[i] += 1.0;
          }
        },
    };
    for (int r = 0; r < rounds; ++r) {
      rt.target(region);
    }
    for (std::size_t i = 0; i < n; ++i) {
      result[i] = x[i];
    }
  });
  return result;
}

TEST(DegradedMode, LegacyCopyFallsBackToZeroCopyOnPoolOom) {
  const std::size_t n = (32ULL << 20) / sizeof(double);  // 32 MB > headroom
  auto stack = make_stack(RuntimeConfig::LegacyCopy, "", kTightHbm);
  const std::vector<double> result = run_increment(*stack, n, /*rounds=*/2);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + 2.0);
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  // Each of the two regions hit the capacity wall and degraded.
  EXPECT_EQ(faults.count(FaultEvent::HbmExhausted), 2u);
  EXPECT_EQ(faults.count(FaultEvent::OomFallbackZeroCopy), 2u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
  // The sticky pressure flag is up, the degraded entries were released
  // cleanly (no pool storage was ever attached to them), and no transfer
  // was issued for the degraded region.
  EXPECT_TRUE(stack->omp().memory_pressure(0));
  EXPECT_EQ(stack->omp().present_table(0).size(), 0u);
  EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryPoolFree), 0u);
  EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryAsyncCopy),
            static_cast<std::uint64_t>(OffloadRuntime::kImageLoadCopies));
}

TEST(DegradedMode, UncappedLegacyCopyStaysOnThePoolPath) {
  const std::size_t n = (32ULL << 20) / sizeof(double);
  auto stack = make_stack(RuntimeConfig::LegacyCopy, "");
  const std::vector<double> result = run_increment(*stack, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + 1.0);
  }
  EXPECT_TRUE(stack->hsa().fault_trace().empty());
  EXPECT_FALSE(stack->omp().memory_pressure(0));
  EXPECT_EQ(stack->hsa().stats().count(HsaCall::MemoryPoolFree), 1u);
}

TEST(DegradedMode, EagerMapsRetriesTransientPrefaultWithBackoff) {
  auto stack = make_stack(RuntimeConfig::EagerMaps, "eintr@call=1..3");
  const std::vector<double> result = run_increment(*stack, 1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + 1.0);
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::EintrInjected), 3u);
  EXPECT_EQ(faults.count(FaultEvent::PrefaultRetry), 3u);
  EXPECT_EQ(faults.count(FaultEvent::PrefaultRetrySucceeded), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::PrefaultFallbackXnack));
  // The retry ladder's attempt ordinal on the success record counts the
  // successful call (attempt 4 after three failures).
  for (const trace::FaultRecord& r : faults.records()) {
    if (r.event == FaultEvent::PrefaultRetrySucceeded) {
      EXPECT_EQ(r.attempt, 4);
    }
  }
}

TEST(DegradedMode, ExponentialBackoffAdvancesVirtualTime) {
  // Four failed attempts back off 50+100+200+400 us before the fifth call;
  // with a persistent EINTR under XNACK the runtime then falls back, so
  // total added virtual time is at least the backoff sum.
  auto fast = make_stack(RuntimeConfig::EagerMaps, "");
  auto slow = make_stack(RuntimeConfig::EagerMaps, "eintr@p=1.0");
  (void)run_increment(*fast, 64);
  (void)run_increment(*slow, 64);
  const sim::Duration fast_t = fast->sched().horizon().since_start();
  const sim::Duration slow_t = slow->sched().horizon().since_start();
  EXPECT_GT(slow_t, fast_t + 750_us);
}

TEST(DegradedMode, EagerMapsFallsBackToXnackWhenRetriesExhaust) {
  auto stack = make_stack(RuntimeConfig::EagerMaps, "eintr@p=1.0");
  const std::vector<double> result = run_increment(*stack, 1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + 1.0);
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_GE(faults.count(FaultEvent::PrefaultFallbackXnack), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::PrefaultRetrySucceeded));
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
}

TEST(DegradedMode, ErroredAsyncCopyIsResubmittedOnce) {
  // AsyncCopy site calls 1..3 are the image upload; call 4 is the region's
  // h2d transfer. Its resubmission (call 5) is outside the schedule.
  auto stack = make_stack(RuntimeConfig::LegacyCopy, "sdma@call=4");
  const std::vector<double> result = run_increment(*stack, 1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_DOUBLE_EQ(result[i], static_cast<double>(i) + 1.0);
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_EQ(faults.count(FaultEvent::SdmaErrorInjected), 1u);
  EXPECT_EQ(faults.count(FaultEvent::CopyRetry), 1u);
  EXPECT_EQ(faults.count(FaultEvent::CopyRetrySucceeded), 1u);
  EXPECT_FALSE(faults.any(FaultEvent::RegionFailed));
}

TEST(DegradedMode, PersistentSdmaFailureRaisesStructuredCopyError) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy, "sdma@p=1.0");
  try {
    (void)run_increment(*stack, 1024);
    FAIL() << "expected OffloadError(CopyFailed)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::CopyFailed);
    EXPECT_EQ(e.device(), 0);
  }
  EXPECT_GE(stack->hsa().fault_trace().count(FaultEvent::RegionFailed), 1u);
}

TEST(DegradedMode, OomWithXnackOffAndPersistentEintrIsUnsurvivable) {
  // Legacy Copy under memory pressure must prefault its zero-copy fallback
  // (XNACK off); when every prefault attempt fails, the region — and only
  // the region — fails with a structured error, not an abort.
  const std::size_t n = (32ULL << 20) / sizeof(double);
  auto stack =
      make_stack(RuntimeConfig::LegacyCopy, "eintr@p=1.0", kTightHbm);
  try {
    (void)run_increment(*stack, n);
    FAIL() << "expected OffloadError(PrefaultFailed)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::PrefaultFailed);
    EXPECT_EQ(e.device(), 0);
    EXPECT_EQ(e.host_range().bytes, n * sizeof(double));
  }
  const trace::FaultTrace& faults = stack->hsa().fault_trace();
  EXPECT_TRUE(faults.any(FaultEvent::OomFallbackZeroCopy));
  EXPECT_GE(faults.count(FaultEvent::RegionFailed), 1u);
}

TEST(DegradedMode, AdaptiveMapsPricesDmaCopyOutUnderPressure) {
  // Make the prefault path pathological so the policy's argmin for an
  // untouched region is DmaCopy; under the tight cap that allocation
  // fails, degrades to zero-copy, and sets the sticky pressure flag — the
  // next fresh evaluation must price DmaCopy out and pick a non-copy
  // handling (recorded with memory_pressure=true).
  apu::Machine::Config config =
      OffloadStack::machine_config_for(RuntimeConfig::AdaptiveMaps);
  config.topology.hbm_bytes = kTightHbm;
  config.costs.prefault_insert_per_page = sim::Duration::from_us(5000.0);
  config.costs.prefault_populate_per_page = sim::Duration::from_us(5000.0);
  auto stack = std::make_unique<OffloadStack>(
      std::move(config),
      OffloadStack::program_for(RuntimeConfig::AdaptiveMaps, {}));
  const std::size_t n = (32ULL << 20) / sizeof(double);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, n, "x"};
    HostArray<double> y{rt, n, "y"};
    const MapEntry mx = x.tofrom();
    rt.target_data_begin({&mx, 1});
    rt.target_data_end({&mx, 1});
    EXPECT_TRUE(rt.memory_pressure(0));
    const MapEntry my = y.tofrom();
    rt.target_data_begin({&my, 1});
    rt.target_data_end({&my, 1});
  });
  const auto& decisions = stack->omp().decision_trace().records();
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].decision, adapt::Decision::DmaCopy);
  EXPECT_FALSE(decisions[0].memory_pressure);
  EXPECT_NE(decisions[1].decision, adapt::Decision::DmaCopy);
  EXPECT_TRUE(decisions[1].memory_pressure);
  EXPECT_TRUE(
      stack->hsa().fault_trace().any(FaultEvent::OomFallbackZeroCopy));
}

TEST(DegradedMode, AllConfigsProduceIdenticalResultsUnderSurvivableFaults) {
  // The headline invariant: under a survivable schedule every
  // configuration completes through its degraded paths and computes
  // bit-identical results to its own fault-free run.
  constexpr RuntimeConfig kAll[] = {
      RuntimeConfig::LegacyCopy,      RuntimeConfig::UnifiedSharedMemory,
      RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
      RuntimeConfig::AdaptiveMaps,
  };
  const std::size_t n = 4096;
  for (RuntimeConfig cfg : kAll) {
    auto clean = make_stack(cfg, "");
    auto faulty = make_stack(cfg, "eintr@call=1..3;sdma@call=4;xnack@call=1");
    const std::vector<double> expect = run_increment(*clean, n);
    const std::vector<double> actual = run_increment(*faulty, n);
    EXPECT_EQ(actual, expect) << to_string(cfg);
  }
}

}  // namespace
}  // namespace zc::omp
