// Memory-pressure mechanics at the state layer: watermark reclaim into the
// DDR spill tier, GPU-fault/prefault promotion back to HBM, access-counter
// sampling and migration candidates, the THP split/collapse state machine,
// and the accounting invariant that per-allocation residency attribution
// can never drift from the per-socket capacity counters.

#include <gtest/gtest.h>

#include <stdexcept>

#include "zc/mem/memory_system.hpp"

namespace zc::mem {
namespace {

apu::Machine::Config pressured(int sockets = 2) {
  apu::Machine::Config c;
  c.topology.sockets = sockets;
  c.env.ompx_apu_pressure = apu::PressureMode::Watermarks;
  c.env.ompx_apu_automigrate.enabled = true;  // turns counter sampling on
  return c;
}

class PressureTest : public ::testing::Test {
 protected:
  apu::Machine machine_{pressured()};
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(PressureTest, ReclaimSpillsPagesToDdrAndCreditsHbm) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf", /*home_socket=*/0);
  mem_.host_touch(a.range());
  (void)mem_.prefault(a.range(), 0);
  ASSERT_EQ(mem_.hbm_used(0), 8 * page_);
  ASSERT_EQ(mem_.gpu_absent_pages(a.range(), 0), 0u);

  const ReclaimOutcome out = mem_.reclaim(0, 4 * page_, /*max_pages=*/100);
  EXPECT_EQ(out.evicted, 4u);
  EXPECT_EQ(mem_.hbm_used(0), 4 * page_);
  EXPECT_EQ(mem_.ddr_used(), 4 * page_);
  EXPECT_EQ(mem_.ddr_pages(a.range()), 4u);
  // Evicted pages lose their GPU translations but keep the CPU entry —
  // the data is untouched, only slower to reach.
  EXPECT_EQ(mem_.gpu_absent_pages(a.range(), 0), 4u);
  EXPECT_EQ(mem_.cpu_resident_pages(a.range()), 8u);
}

TEST_F(PressureTest, ReclaimIsBatchBounded) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf", 0);
  mem_.host_touch(a.range());
  const ReclaimOutcome out = mem_.reclaim(0, 0, /*max_pages=*/2);
  EXPECT_EQ(out.evicted, 2u);
  EXPECT_EQ(mem_.ddr_used(), 2 * page_);
}

TEST_F(PressureTest, ReclaimAtOrBelowTargetIsANoOp) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  const ReclaimOutcome out = mem_.reclaim(0, 4 * page_, 100);
  EXPECT_EQ(out.evicted, 0u);
  EXPECT_EQ(mem_.ddr_used(), 0u);
}

TEST_F(PressureTest, PoolPagesArePinnedAgainstReclaim) {
  (void)mem_.pool_alloc(4 * page_, "dev", /*socket=*/0);
  ASSERT_EQ(mem_.hbm_used(0), 4 * page_);
  const ReclaimOutcome out = mem_.reclaim(0, 0, 100);
  EXPECT_EQ(out.evicted, 0u);
  EXPECT_EQ(mem_.hbm_used(0), 4 * page_);
}

TEST_F(PressureTest, GpuFaultPromotesSpilledPagesBack) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf", 0);
  mem_.host_touch(a.range());
  (void)mem_.prefault(a.range(), 0);
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 8u);
  ASSERT_EQ(mem_.ddr_used(), 8 * page_);

  const FaultOutcome fo = mem_.gpu_fault_in(a.range(), 0);
  EXPECT_EQ(fo.faulted, 8u);
  EXPECT_EQ(fo.non_resident, 0u);  // CPU entries survived the spill
  EXPECT_EQ(fo.promoted, 8u);
  EXPECT_EQ(mem_.ddr_used(), 0u);
  EXPECT_EQ(mem_.hbm_used(0), 8 * page_);
}

TEST_F(PressureTest, PrefaultPromotesSpilledPagesBack) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  (void)mem_.prefault(a.range(), 0);
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);

  const PrefaultOutcome out = mem_.prefault(a.range(), 0);
  EXPECT_EQ(out.promoted, 4u);
  EXPECT_EQ(mem_.ddr_used(), 0u);
  EXPECT_EQ(mem_.hbm_used(0), 4 * page_);
}

TEST_F(PressureTest, EvictionPrefersColdPagesOverHotOnes) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  // Heat the first two pages with a remote-touch streak; the cold tail
  // must be the first to go.
  const AddrRange hot{a.base(), 2 * page_};
  for (int i = 0; i < 3; ++i) {
    mem_.host_touch(hot, /*toucher_socket=*/1);
  }
  const ReclaimOutcome out = mem_.reclaim(0, 2 * page_, 100);
  ASSERT_EQ(out.evicted, 2u);
  EXPECT_EQ(mem_.ddr_pages(hot), 0u);
  EXPECT_EQ(mem_.ddr_pages(a.range()), 2u);
}

TEST_F(PressureTest, RemoteTouchStreakYieldsAMigrationCandidate) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf", /*home_socket=*/0);
  mem_.host_touch(a.range());
  for (int i = 0; i < 4; ++i) {
    mem_.host_touch(a.range(), /*toucher_socket=*/1);
  }
  const MigrationCandidate cand = mem_.take_migration_candidate(4);
  ASSERT_TRUE(cand.valid);
  EXPECT_EQ(cand.to_socket, 1);
  EXPECT_GE(cand.page, a.range().first_page(page_));
  EXPECT_LT(cand.page, a.range().end_page(page_));
}

TEST_F(PressureTest, LocalTouchCoolsTheStreak) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf", 0);
  mem_.host_touch(a.range());
  for (int i = 0; i < 3; ++i) {
    mem_.host_touch(a.range(), /*toucher_socket=*/1);
  }
  mem_.host_touch(a.range(), /*toucher_socket=*/0);  // home reclaims it
  mem_.host_touch(a.range(), /*toucher_socket=*/1);  // streak restarts at 1
  EXPECT_FALSE(mem_.take_migration_candidate(3).valid);
}

TEST_F(PressureTest, CounterLossForgetsEveryStreak) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf", 0);
  mem_.host_touch(a.range());
  for (int i = 0; i < 5; ++i) {
    mem_.host_touch(a.range(), /*toucher_socket=*/1);
  }
  mem_.counter_loss();
  EXPECT_FALSE(mem_.take_migration_candidate(2).valid);
}

TEST_F(PressureTest, ConsumedCandidateIsNotOfferedTwice) {
  Allocation& a = mem_.os_alloc(page_, "buf", 0);
  mem_.host_touch(a.range());
  for (int i = 0; i < 4; ++i) {
    mem_.host_touch(a.range(), /*toucher_socket=*/1);
  }
  ASSERT_TRUE(mem_.take_migration_candidate(4).valid);
  EXPECT_FALSE(mem_.take_migration_candidate(4).valid);
}

TEST_F(PressureTest, PartialMigrateRehomesOnlyTheCoveredPages) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf", /*home_socket=*/0);
  mem_.host_touch(a.range());
  (void)mem_.prefault(a.range(), 0);
  const AddrRange head{a.base(), 2 * page_};
  EXPECT_EQ(mem_.migrate_pages(head, /*to_socket=*/1), 2u);
  EXPECT_EQ(mem_.hbm_used(1), 2 * page_);
  EXPECT_EQ(mem_.hbm_used(0), 6 * page_);
  // Only the covered range's GPU translations were torn down.
  EXPECT_EQ(mem_.gpu_absent_pages(head, 0), 2u);
  EXPECT_EQ(mem_.gpu_absent_pages(a.range(), 0), 2u);
  // The device on socket 1 now sees 6 remote pages, not 8.
  EXPECT_EQ(mem_.remote_pages(a.range(), 1), 6u);
  EXPECT_EQ(mem_.remote_pages(a.range(), 0), 2u);
}

TEST_F(PressureTest, PartialMigrateIsIdempotent) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf", 0);
  mem_.host_touch(a.range());
  const AddrRange head{a.base(), 2 * page_};
  ASSERT_EQ(mem_.migrate_pages(head, 1), 2u);
  const std::uint64_t used0 = mem_.hbm_used(0);
  const std::uint64_t used1 = mem_.hbm_used(1);
  // Re-migrating an already-home subrange moves nothing and changes no
  // accounting.
  EXPECT_EQ(mem_.migrate_pages(head, 1), 0u);
  EXPECT_EQ(mem_.hbm_used(0), used0);
  EXPECT_EQ(mem_.hbm_used(1), used1);
}

TEST_F(PressureTest, PartialMigratePromotesSpilledPagesIntoTheNewHome) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);
  const AddrRange head{a.base(), 2 * page_};
  EXPECT_EQ(mem_.migrate_pages(head, 1), 2u);
  EXPECT_EQ(mem_.ddr_pages(head), 0u);
  EXPECT_EQ(mem_.ddr_pages(a.range()), 2u);
  EXPECT_EQ(mem_.hbm_used(1), 2 * page_);
}

TEST_F(PressureTest, WholeRangeMigrateClearsTheSpillState) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);
  // A whole-allocation migration rebuilds fresh mappings on the new home:
  // every resident page (DDR-spilled ones included) lands in socket 1 HBM.
  EXPECT_EQ(mem_.migrate_pages(a.range(), 1), 4u);
  EXPECT_EQ(mem_.ddr_used(), 0u);
  EXPECT_EQ(mem_.hbm_used(1), 4 * page_);
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

TEST_F(PressureTest, ReleaseReturnsSpilledPagesToTheDdrAccounting) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  const VirtAddr base = a.base();
  mem_.host_touch(a.range());
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);
  mem_.os_free(base);
  EXPECT_EQ(mem_.ddr_used(), 0u);
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

// --- THP split/collapse state machine (THP=dynamic) ------------------------

apu::Machine::Config dynamic_thp() {
  apu::Machine::Config c = pressured();
  c.env.thp = apu::ThpMode::Dynamic;
  return c;
}

class ThpDynamicTest : public ::testing::Test {
 protected:
  apu::Machine machine_{dynamic_thp()};
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(ThpDynamicTest, EvictionSplitsTheSpilledSpans) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  const ReclaimOutcome out = mem_.reclaim(0, 2 * page_, 100);
  EXPECT_EQ(out.evicted, 2u);
  EXPECT_EQ(out.split, 2u);
  EXPECT_EQ(mem_.split_spans(a.range()), 2u);
}

TEST_F(ThpDynamicTest, PartialMigrateSplitsTheMovedSpans) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  const AddrRange head{a.base(), 2 * page_};
  ASSERT_EQ(mem_.migrate_pages(head, 1), 2u);
  EXPECT_EQ(mem_.split_spans(a.range()), 2u);
}

TEST_F(ThpDynamicTest, PrefaultCollapsesRehomogenizedSpans) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);
  ASSERT_EQ(mem_.split_spans(a.range()), 4u);
  // The prefault promotes the spans back to HBM and, once each is again
  // CPU-resident in the fast tier, collapses it to a huge mapping.
  const PrefaultOutcome out = mem_.prefault(a.range(), 0);
  EXPECT_EQ(out.promoted, 4u);
  EXPECT_EQ(out.collapsed, 4u);
  EXPECT_EQ(mem_.split_spans(a.range()), 0u);
}

TEST_F(ThpDynamicTest, SplitFaultsAreCountedPerFault) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  ASSERT_EQ(mem_.reclaim(0, 0, 100).evicted, 4u);
  const FaultOutcome fo = mem_.gpu_fault_in(a.range(), 0);
  EXPECT_EQ(fo.faulted, 4u);
  EXPECT_EQ(fo.split_faulted, 4u);  // every fault landed in a split span
}

TEST_F(ThpDynamicTest, ThpSplitRangeIsAnIdempotentInjection) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  mem_.host_touch(a.range());
  EXPECT_EQ(mem_.thp_split_range(a.range()), 4u);
  EXPECT_EQ(mem_.thp_split_range(a.range()), 0u);  // already split
  EXPECT_EQ(mem_.split_spans(a.range()), 4u);
}

TEST_F(ThpDynamicTest, SplitRangeSkipsUntouchedSpans) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf", 0);
  // Nothing materialized: there is no mapping to split.
  EXPECT_EQ(mem_.thp_split_range(a.range()), 0u);
}

TEST_F(ThpDynamicTest, StaticThpModesNeverSplit) {
  apu::Machine::Config c = pressured();
  c.env.thp = apu::ThpMode::On;
  apu::Machine on_machine{c};
  MemorySystem on_mem{on_machine};
  Allocation& a = on_mem.os_alloc(4 * page_, "buf", 0);
  on_mem.host_touch(a.range());
  EXPECT_EQ(on_mem.thp_split_range(a.range()), 0u);
  const ReclaimOutcome out = on_mem.reclaim(0, 0, 100);
  EXPECT_EQ(out.evicted, 4u);
  EXPECT_EQ(out.split, 0u);
}

// --- accounting drift regression (debug invariants) ------------------------

class AccountingTest : public ::testing::Test {
 protected:
  AccountingTest() { mem_.set_debug_invariants(true); }
  apu::Machine machine_{pressured(/*sockets=*/4)};
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(AccountingTest, ResidencyAttributionNeverDriftsUnderPressureChurn) {
  // A torture sequence over every accounting path: interleaved striping,
  // partial and whole migration, eviction, fault-in promotion, release.
  // With debug invariants on, every step cross-checks the per-allocation
  // residency vectors against the per-socket capacity counters and the
  // DDR tier; any drift throws std::logic_error out of the operation.
  Allocation& inter =
      mem_.os_alloc_placed(8 * page_, "striped", Placement::Interleaved);
  mem_.host_touch(inter.range());
  Allocation& fixed = mem_.os_alloc(6 * page_, "fixed", /*home_socket=*/1);
  mem_.host_touch(fixed.range());
  (void)mem_.prefault(fixed.range(), 1);

  // Partial migrations create per-page overrides on both allocations.
  const AddrRange inter_head{inter.base(), 2 * page_};
  (void)mem_.migrate_pages(inter_head, 3);
  const AddrRange fixed_tail{fixed.base() + 4 * page_, 2 * page_};
  (void)mem_.migrate_pages(fixed_tail, 2);

  // Evict from several sockets, then promote some of it back.
  (void)mem_.reclaim(1, 0, 3);
  (void)mem_.reclaim(3, 0, 100);
  (void)mem_.gpu_fault_in(fixed.range(), 1);

  // Collapse one allocation onto a single home, then free both.
  (void)mem_.migrate_pages(inter.range(), 0);
  const VirtAddr fixed_base = fixed.base();
  const VirtAddr inter_base = inter.base();
  mem_.os_free(fixed_base);
  mem_.os_free(inter_base);

  EXPECT_EQ(mem_.ddr_used(), 0u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(mem_.hbm_used(s), 0u) << "socket " << s;
  }
  EXPECT_NO_THROW(mem_.check_accounting());
}

TEST_F(AccountingTest, CheckAccountingPassesOnAFreshSystem) {
  EXPECT_NO_THROW(mem_.check_accounting());
}

TEST_F(AccountingTest, PoolChurnKeepsTheBooksBalanced) {
  Allocation& p = mem_.pool_alloc(4 * page_, "dev", /*socket=*/2);
  EXPECT_NO_THROW(mem_.check_accounting());
  mem_.pool_free(p.base());
  EXPECT_NO_THROW(mem_.check_accounting());
  EXPECT_EQ(mem_.hbm_used(2), 0u);
}

}  // namespace
}  // namespace zc::mem
