#include "zc/mem/page_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc::mem {
namespace {

constexpr std::uint64_t kPage = 2ULL << 20;

AddrRange range_at(std::uint64_t page_index, std::uint64_t pages) {
  return AddrRange{VirtAddr{page_index * kPage}, pages * kPage};
}

TEST(PageTable, StartsEmpty) {
  PageTable pt{kPage};
  EXPECT_EQ(pt.size(), 0u);
  EXPECT_FALSE(pt.present(0));
}

TEST(PageTable, InsertRangeCountsNewPagesOnly) {
  PageTable pt{kPage};
  EXPECT_EQ(pt.insert_range(range_at(10, 4)), 4u);
  EXPECT_EQ(pt.insert_range(range_at(12, 4)), 2u);  // 12,13 already present
  EXPECT_EQ(pt.size(), 6u);
}

TEST(PageTable, PresenceQueries) {
  PageTable pt{kPage};
  (void)pt.insert_range(range_at(5, 2));
  EXPECT_TRUE(pt.present(5));
  EXPECT_TRUE(pt.present(6));
  EXPECT_FALSE(pt.present(7));
  EXPECT_TRUE(pt.present_addr(VirtAddr{5 * kPage + 17}));
}

TEST(PageTable, PartialPageRangeCoversWholePage) {
  PageTable pt{kPage};
  // A one-byte range in the middle of page 3 still maps page 3.
  EXPECT_EQ(pt.insert_range(AddrRange{VirtAddr{3 * kPage + 100}, 1}), 1u);
  EXPECT_TRUE(pt.present(3));
}

TEST(PageTable, UnalignedRangeSpansBoundary) {
  PageTable pt{kPage};
  // [page1 + P/2, page1 + P/2 + P) touches pages 1 and 2.
  EXPECT_EQ(pt.insert_range(AddrRange{VirtAddr{kPage + kPage / 2}, kPage}), 2u);
  EXPECT_TRUE(pt.present(1));
  EXPECT_TRUE(pt.present(2));
}

TEST(PageTable, CountAbsentAndPresent) {
  PageTable pt{kPage};
  (void)pt.insert_range(range_at(0, 3));
  EXPECT_EQ(pt.count_absent(range_at(0, 5)), 2u);
  EXPECT_EQ(pt.count_present(range_at(0, 5)), 3u);
  EXPECT_EQ(pt.count_absent(range_at(10, 2)), 2u);
}

TEST(PageTable, RemoveRangeCountsRemoved) {
  PageTable pt{kPage};
  (void)pt.insert_range(range_at(0, 4));
  EXPECT_EQ(pt.remove_range(range_at(1, 2)), 2u);
  EXPECT_EQ(pt.remove_range(range_at(1, 2)), 0u);
  EXPECT_TRUE(pt.present(0));
  EXPECT_FALSE(pt.present(1));
  EXPECT_TRUE(pt.present(3));
}

TEST(PageTable, EmptyRangeIsNoop) {
  PageTable pt{kPage};
  EXPECT_EQ(pt.insert_range(AddrRange{VirtAddr{kPage}, 0}), 0u);
  EXPECT_EQ(pt.count_absent(AddrRange{VirtAddr{kPage}, 0}), 0u);
}

TEST(PageTable, ClearEmptiesTable) {
  PageTable pt{kPage};
  (void)pt.insert_range(range_at(0, 8));
  pt.clear();
  EXPECT_EQ(pt.size(), 0u);
}

TEST(PageTable, SmallPagesProduceMoreEntries) {
  PageTable small{4096};
  PageTable big{kPage};
  const AddrRange r{VirtAddr{0}, kPage};  // 2 MB
  EXPECT_EQ(big.insert_range(r), 1u);
  EXPECT_EQ(small.insert_range(r), 512u);
}

TEST(PageTable, RejectsBadPageSize) {
  EXPECT_THROW(PageTable{0}, std::invalid_argument);
  EXPECT_THROW(PageTable{12345}, std::invalid_argument);
}

}  // namespace
}  // namespace zc::mem
