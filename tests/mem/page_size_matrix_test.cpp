// The unified-memory protocols must behave identically in *counts* for any
// power-of-two page size — only the number of pages changes. Parameterized
// over page sizes (THP off = 4 KB, THP on = 2 MB, plus hypothetical sizes).

#include <gtest/gtest.h>

#include "zc/mem/memory_system.hpp"

namespace zc::mem {
namespace {

class PageSizeMatrix : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  apu::Machine make_machine() const {
    apu::Machine::Config cfg;
    cfg.kind = apu::MachineKind::ApuMi300a;
    // page_bytes is derived from THP in RunEnvironment; pick the closest
    // real setting and override capacity-independent checks by page count.
    cfg.env.transparent_huge_pages = GetParam() == (2ULL << 20);
    return apu::Machine{std::move(cfg)};
  }
};

INSTANTIATE_TEST_SUITE_P(Thp, PageSizeMatrix,
                         ::testing::Values(4096ULL, 2ULL << 20));

TEST_P(PageSizeMatrix, ProtocolCountsScaleWithPageSize) {
  apu::Machine machine = make_machine();
  ASSERT_EQ(machine.page_bytes(), GetParam());
  MemorySystem mem{machine};
  const std::uint64_t bytes = 8ULL << 20;  // 8 MB
  const std::uint64_t pages = bytes / GetParam();

  Allocation& a = mem.os_alloc(bytes, "buf");
  EXPECT_EQ(mem.gpu_absent_pages(a.range()), pages);

  const FaultOutcome faults = mem.gpu_fault_in(a.range());
  EXPECT_EQ(faults.faulted, pages);
  EXPECT_EQ(faults.non_resident, pages);
  EXPECT_EQ(mem.gpu_absent_pages(a.range()), 0u);

  Allocation& b = mem.os_alloc(bytes, "buf2");
  (void)mem.host_touch(b.range());
  const PrefaultOutcome pf = mem.prefault(b.range());
  EXPECT_EQ(pf.inserted, pages);
  EXPECT_EQ(pf.materialized, 0u);  // host-resident

  const PrefaultOutcome again = mem.prefault(b.range());
  EXPECT_EQ(again.inserted, 0u);
  EXPECT_EQ(again.present, pages);
}

TEST_P(PageSizeMatrix, FreeInvalidatesForAnyPageSize) {
  apu::Machine machine = make_machine();
  MemorySystem mem{machine};
  Allocation& a = mem.os_alloc(4ULL << 20, "buf");
  const AddrRange r = a.range();
  (void)mem.gpu_fault_in(r);
  (void)mem.tlb_access(r);
  mem.os_free(a.base());
  EXPECT_EQ(mem.gpu_pt().count_present(r), 0u);
  EXPECT_EQ(mem.cpu_pt().count_present(r), 0u);
}

TEST_P(PageSizeMatrix, PartialPageRangesRoundOutward) {
  apu::Machine machine = make_machine();
  MemorySystem mem{machine};
  const std::uint64_t page = machine.page_bytes();
  Allocation& a = mem.os_alloc(3 * page, "buf");
  // One byte in the middle page faults exactly that page.
  const AddrRange middle{a.base() + page + page / 2, 1};
  const FaultOutcome out = mem.gpu_fault_in(middle);
  EXPECT_EQ(out.faulted, 1u);
  EXPECT_EQ(mem.gpu_absent_pages(a.range()), 2u);
}

}  // namespace
}  // namespace zc::mem
