// NUMA placement policies on a 4-socket node: fixed homes, first-touch
// resolution by every materializing path, interleaved striping, and page
// migration (residency attribution, placement collapse, translation
// teardown).

#include <gtest/gtest.h>

#include <stdexcept>

#include "zc/mem/memory_system.hpp"

namespace zc::mem {
namespace {

apu::Machine::Config four_sockets() {
  apu::Machine::Config c;
  c.topology.sockets = 4;
  return c;
}

class PlacementTest : public ::testing::Test {
 protected:
  apu::Machine machine_{four_sockets()};
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(PlacementTest, FixedHomeBehavesLikePlainOsAlloc) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FixedHome, 2);
  EXPECT_EQ(a.placement(), Placement::FixedHome);
  EXPECT_FALSE(a.home_pending());
  EXPECT_EQ(a.home_socket(), 2);
  EXPECT_EQ(mem_.remote_pages(a.range(), 2), 0u);
  EXPECT_EQ(mem_.remote_pages(a.range(), 0), 4u);
}

TEST_F(PlacementTest, FirstTouchPendingCountsLocalEverywhere) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FirstTouch);
  EXPECT_TRUE(a.home_pending());
  // Nobody owns it yet: no device sees it as remote.
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(mem_.remote_pages(a.range(), d), 0u);
  }
}

TEST_F(PlacementTest, HostTouchResolvesFirstTouchToTheTouchingSocket) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FirstTouch);
  EXPECT_EQ(mem_.host_touch(a.range(), /*toucher_socket=*/3), 4u);
  EXPECT_FALSE(a.home_pending());
  EXPECT_EQ(a.home_socket(), 3);
  EXPECT_EQ(mem_.remote_pages(a.range(), 3), 0u);
  EXPECT_EQ(mem_.remote_pages(a.range(), 0), 4u);
  // The materialized pages are attributed to the resolved home's HBM.
  EXPECT_EQ(mem_.hbm_used(3), 4 * page_);
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

TEST_F(PlacementTest, GpuFaultResolvesFirstTouchToTheFaultingSocket) {
  Allocation& a =
      mem_.os_alloc_placed(2 * page_, "buf", Placement::FirstTouch);
  (void)mem_.gpu_fault_in(a.range(), /*socket=*/1);
  EXPECT_EQ(a.home_socket(), 1);
  EXPECT_EQ(mem_.hbm_used(1), 2 * page_);
}

TEST_F(PlacementTest, PrefaultResolvesFirstTouchToTheTargetSocket) {
  Allocation& a =
      mem_.os_alloc_placed(2 * page_, "buf", Placement::FirstTouch);
  (void)mem_.prefault(a.range(), /*socket=*/2);
  EXPECT_EQ(a.home_socket(), 2);
}

TEST_F(PlacementTest, InterleavedStripesPageHomesRoundRobin) {
  Allocation& a =
      mem_.os_alloc_placed(8 * page_, "buf", Placement::Interleaved);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.page_home(a.base() + static_cast<std::uint64_t>(i) * page_,
                          page_),
              i % 4);
  }
  // Every device sees 3/4 of the pages as remote.
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(mem_.remote_pages(a.range(), d), 6u);
  }
  // A sub-range stripes relative to the allocation origin.
  EXPECT_EQ(mem_.remote_pages(AddrRange{a.base() + 4 * page_, 2 * page_}, 0),
            1u);
}

TEST_F(PlacementTest, InterleavedTouchSplitsHbmAttributionEvenly) {
  Allocation& a =
      mem_.os_alloc_placed(8 * page_, "buf", Placement::Interleaved);
  EXPECT_EQ(mem_.host_touch(a.range()), 8u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(mem_.hbm_used(s), 2 * page_);
  }
}

TEST_F(PlacementTest, MigrateMovesResidencyAndCollapsesPlacement) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FixedHome, 0);
  (void)mem_.host_touch(a.range());
  (void)mem_.gpu_fault_in(a.range(), 0);
  ASSERT_EQ(mem_.gpu_absent_pages(a.range(), 0), 0u);

  EXPECT_EQ(mem_.migrate_pages(a.range(), 2), 4u);
  EXPECT_EQ(a.placement(), Placement::FixedHome);
  EXPECT_EQ(a.home_socket(), 2);
  EXPECT_EQ(mem_.migrated_pages(2), 4u);
  // HBM attribution followed the pages.
  EXPECT_EQ(mem_.hbm_used(0), 0u);
  EXPECT_EQ(mem_.hbm_used(2), 4 * page_);
  // Remapping physical pages tears down every GPU translation.
  EXPECT_EQ(mem_.gpu_absent_pages(a.range(), 0), 4u);
}

TEST_F(PlacementTest, MigrateInterleavedCollapsesOntoOneHome) {
  Allocation& a =
      mem_.os_alloc_placed(8 * page_, "buf", Placement::Interleaved);
  (void)mem_.host_touch(a.range());
  EXPECT_EQ(mem_.migrate_pages(a.range(), 1), 8u);
  EXPECT_EQ(a.placement(), Placement::FixedHome);
  EXPECT_EQ(mem_.remote_pages(a.range(), 1), 0u);
  EXPECT_EQ(mem_.hbm_used(1), 8 * page_);
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

TEST_F(PlacementTest, MigrateToCurrentHomeMovesNothing) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FixedHome, 1);
  (void)mem_.host_touch(a.range());
  EXPECT_EQ(mem_.migrate_pages(a.range(), 1), 0u);
  EXPECT_EQ(mem_.migrated_pages(1), 0u);
}

TEST_F(PlacementTest, MigratePendingFirstTouchJustDecidesTheHome) {
  Allocation& a =
      mem_.os_alloc_placed(4 * page_, "buf", Placement::FirstTouch);
  EXPECT_EQ(mem_.migrate_pages(a.range(), 3), 0u);
  EXPECT_FALSE(a.home_pending());
  EXPECT_EQ(a.home_socket(), 3);
}

TEST_F(PlacementTest, PoolAllocationsRefuseMigration) {
  Allocation& a = mem_.pool_alloc(2 * page_, "dev", 0);
  EXPECT_THROW((void)mem_.migrate_pages(a.range(), 1), std::invalid_argument);
}

TEST_F(PlacementTest, UnknownRangeRefusesMigration) {
  EXPECT_THROW((void)mem_.migrate_pages(AddrRange{VirtAddr{0x1000}, page_}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace zc::mem
