#include "zc/mem/tlb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc::mem {
namespace {

constexpr std::uint64_t kPage = 2ULL << 20;

AddrRange range_at(std::uint64_t page_index, std::uint64_t pages) {
  return AddrRange{VirtAddr{page_index * kPage}, pages * kPage};
}

TEST(Tlb, MissThenHit) {
  Tlb tlb{4, kPage};
  EXPECT_FALSE(tlb.access(7));
  EXPECT_TRUE(tlb.access(7));
  EXPECT_EQ(tlb.total_misses(), 1u);
  EXPECT_EQ(tlb.total_hits(), 1u);
}

TEST(Tlb, EvictsLeastRecentlyUsed) {
  Tlb tlb{2, kPage};
  (void)tlb.access(1);
  (void)tlb.access(2);
  (void)tlb.access(1);      // 1 is now most recent
  (void)tlb.access(3);      // evicts 2
  EXPECT_TRUE(tlb.access(1));
  EXPECT_TRUE(tlb.access(3));
  EXPECT_FALSE(tlb.access(2));  // was evicted
}

TEST(Tlb, CapacityBoundsResidency) {
  Tlb tlb{8, kPage};
  for (std::uint64_t p = 0; p < 100; ++p) {
    (void)tlb.access(p);
  }
  EXPECT_EQ(tlb.size(), 8u);
}

TEST(Tlb, AccessRangeCountsHitsAndMisses) {
  Tlb tlb{16, kPage};
  const auto first = tlb.access_range(range_at(0, 8));
  EXPECT_EQ(first.misses, 8u);
  EXPECT_EQ(first.hits, 0u);
  const auto second = tlb.access_range(range_at(4, 8));
  EXPECT_EQ(second.hits, 4u);
  EXPECT_EQ(second.misses, 4u);
}

TEST(Tlb, ThrashingWhenWorkingSetExceedsCapacity) {
  Tlb tlb{4, kPage};
  // Stream 8 pages repeatedly: with LRU and sequential access, every access
  // misses (classic thrash).
  for (int iter = 0; iter < 3; ++iter) {
    const auto r = tlb.access_range(range_at(0, 8));
    EXPECT_EQ(r.misses, 8u);
  }
}

TEST(Tlb, InvalidateRangeDropsTranslations) {
  Tlb tlb{16, kPage};
  (void)tlb.access_range(range_at(0, 4));
  tlb.invalidate_range(range_at(1, 2));
  EXPECT_EQ(tlb.size(), 2u);
  EXPECT_TRUE(tlb.access(0));
  EXPECT_FALSE(tlb.access(1));
}

TEST(Tlb, InvalidateAll) {
  Tlb tlb{16, kPage};
  (void)tlb.access_range(range_at(0, 10));
  tlb.invalidate_all();
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, RejectsBadArguments) {
  EXPECT_THROW(Tlb(0, kPage), std::invalid_argument);
  EXPECT_THROW(Tlb(4, 3000), std::invalid_argument);
}

}  // namespace
}  // namespace zc::mem
