// Reference-model property tests: the PageTable and Tlb must agree with
// straightforward reference implementations (std::set presence; exact-LRU
// list) on randomized operation streams.

#include <gtest/gtest.h>

#include <list>
#include <set>
#include <unordered_map>

#include "zc/mem/page_table.hpp"
#include "zc/mem/tlb.hpp"
#include "zc/sim/rng.hpp"

namespace zc::mem {
namespace {

constexpr std::uint64_t kPage = 4096;

AddrRange random_range(sim::Rng& rng) {
  const std::uint64_t base = rng.uniform_index(256) * kPage / 2;  // unaligned
  const std::uint64_t bytes = 1 + rng.uniform_index(16 * kPage);
  return AddrRange{VirtAddr{base}, bytes};
}

class PageTableProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(PageTableProperty, AgreesWithSetReference) {
  sim::Rng rng{GetParam()};
  PageTable pt{kPage};
  std::set<std::uint64_t> ref;

  for (int op = 0; op < 600; ++op) {
    const AddrRange r = random_range(rng);
    const std::uint64_t first = r.first_page(kPage);
    const std::uint64_t end = r.end_page(kPage);
    switch (rng.uniform_index(3)) {
      case 0: {  // insert
        std::uint64_t expect_new = 0;
        for (std::uint64_t p = first; p < end; ++p) {
          expect_new += ref.insert(p).second ? 1 : 0;
        }
        ASSERT_EQ(pt.insert_range(r), expect_new);
        break;
      }
      case 1: {  // remove
        std::uint64_t expect_removed = 0;
        for (std::uint64_t p = first; p < end; ++p) {
          expect_removed += ref.erase(p);
        }
        ASSERT_EQ(pt.remove_range(r), expect_removed);
        break;
      }
      case 2: {  // query
        std::uint64_t expect_absent = 0;
        for (std::uint64_t p = first; p < end; ++p) {
          expect_absent += ref.contains(p) ? 0 : 1;
        }
        ASSERT_EQ(pt.count_absent(r), expect_absent);
        break;
      }
    }
    ASSERT_EQ(pt.size(), ref.size());
  }
}

/// Exact reference LRU with the same interface subset as Tlb.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_{capacity} {}

  bool access(std::uint64_t page) {
    auto it = pos_.find(page);
    if (it != pos_.end()) {
      order_.erase(it->second);
      order_.push_front(page);
      pos_[page] = order_.begin();
      return true;
    }
    if (pos_.size() >= capacity_) {
      pos_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(page);
    pos_[page] = order_.begin();
    return false;
  }

  void invalidate(std::uint64_t page) {
    auto it = pos_.find(page);
    if (it != pos_.end()) {
      order_.erase(it->second);
      pos_.erase(it);
    }
  }

  [[nodiscard]] std::size_t size() const { return pos_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos_;
};

class TlbProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, TlbProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(TlbProperty, SingleAccessAgreesWithReferenceLru) {
  sim::Rng rng{GetParam()};
  Tlb tlb{32, kPage};
  ReferenceLru ref{32};
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t page = rng.uniform_index(64);
    if (rng.bernoulli(0.1)) {
      tlb.invalidate_range(AddrRange{VirtAddr{page * kPage}, kPage});
      ref.invalidate(page);
    } else {
      ASSERT_EQ(tlb.access(page), ref.access(page)) << "op " << op;
    }
    ASSERT_EQ(tlb.size(), ref.size());
  }
}

TEST_P(TlbProperty, RangeAccessMatchesPagewiseReferenceWhenUnderCapacity) {
  // The bulk access_range fast path only fires for ranges larger than the
  // capacity; for sub-capacity ranges it must match page-by-page LRU.
  sim::Rng rng{GetParam()};
  Tlb tlb{64, kPage};
  ReferenceLru ref{64};
  for (int op = 0; op < 300; ++op) {
    const std::uint64_t first = rng.uniform_index(128);
    const std::uint64_t pages = 1 + rng.uniform_index(32);  // <= capacity/2
    const AddrRange r{VirtAddr{first * kPage}, pages * kPage};
    TlbAccessResult expect;
    for (std::uint64_t p = first; p < first + pages; ++p) {
      if (ref.access(p)) {
        ++expect.hits;
      } else {
        ++expect.misses;
      }
    }
    const TlbAccessResult got = tlb.access_range(r);
    ASSERT_EQ(got.hits, expect.hits) << "op " << op;
    ASSERT_EQ(got.misses, expect.misses) << "op " << op;
  }
}

TEST(TlbFastPath, ThrashLeavesLastPagesResident) {
  Tlb tlb{8, kPage};
  const AddrRange big{VirtAddr{0}, 64 * kPage};
  const TlbAccessResult r = tlb.access_range(big);
  EXPECT_EQ(r.misses, 64u);
  EXPECT_EQ(tlb.size(), 8u);
  // The last `capacity` pages of the stream are resident afterwards.
  for (std::uint64_t p = 56; p < 64; ++p) {
    EXPECT_TRUE(tlb.access(p)) << p;
  }
}

}  // namespace
}  // namespace zc::mem
