// NUMA edge interactions of the pressure subsystem: a first-touch home
// resolving while another thread's watermark reclaim is running, an
// interleaved allocation migrated across a THP span boundary, and a page
// migration overlapping an in-flight cross-APU SDMA copy.

#include <gtest/gtest.h>

#include <cstring>

#include "zc/hsa/runtime.hpp"
#include "zc/mem/memory_system.hpp"

namespace zc::mem {
namespace {

using namespace zc::sim::literals;

apu::Machine::Config two_sockets(apu::ThpMode thp = apu::ThpMode::On) {
  apu::Machine::Config c;
  c.topology.sockets = 2;
  c.env.thp = thp;
  c.env.ompx_apu_pressure = apu::PressureMode::Watermarks;
  c.env.ompx_apu_automigrate.enabled = true;
  return c;
}

TEST(NumaEdge, FirstTouchRacingConcurrentEvictionKeepsBooksBalanced) {
  apu::Machine machine{two_sockets()};
  MemorySystem mem{machine};
  mem.set_debug_invariants(true);
  const std::uint64_t page = machine.page_bytes();

  Allocation& ft =
      mem.os_alloc_placed(8 * page, "first-touch", Placement::FirstTouch);
  Allocation& filler = mem.os_alloc(8 * page, "filler", /*home_socket=*/0);

  machine.sched().spawn("toucher", [&] {
    // Half the buffer materializes (resolving the pending home to socket
    // 0), the rest arrives after the evictor has already run once.
    mem.host_touch(AddrRange{ft.base(), 4 * page}, /*toucher_socket=*/0);
    machine.sched().advance(10_us);
    mem.host_touch(AddrRange{ft.base() + 4 * page, 4 * page}, 0);
  });
  machine.sched().spawn("evictor", [&] {
    mem.host_touch(filler.range(), 0);
    // First pass: the first-touch buffer is only half resident — reclaim
    // may take any mix of filler and resolved first-touch pages, but a
    // still-pending allocation must never be a victim (enforced by the
    // accounting invariant re-checked inside every reclaim).
    machine.sched().advance(5_us);
    (void)mem.reclaim(0, 0, /*max_pages=*/6);
    machine.sched().advance(20_us);
    (void)mem.reclaim(0, 0, /*max_pages=*/100);
  });
  machine.sched().run();

  // Every page is spilled or resident, never lost: 16 pages of backing
  // split exactly between HBM and the DDR tier, CPU entries intact.
  EXPECT_EQ(mem.cpu_resident_pages(ft.range()), 8u);
  EXPECT_EQ(mem.cpu_resident_pages(filler.range()), 8u);
  EXPECT_EQ(mem.hbm_used(0) + mem.hbm_used(1) + mem.ddr_used(), 16 * page);
  EXPECT_NO_THROW(mem.check_accounting());
}

TEST(NumaEdge, InterleavedMigrationStraddlingAThpSpanBoundary) {
  apu::Machine machine{two_sockets(apu::ThpMode::Dynamic)};
  MemorySystem mem{machine};
  mem.set_debug_invariants(true);
  const std::uint64_t page = machine.page_bytes();

  // Stripe homes: rel 0 -> 0, rel 1 -> 1, rel 2 -> 0, rel 3 -> 1.
  Allocation& a =
      mem.os_alloc_placed(4 * page, "striped", Placement::Interleaved);
  mem.host_touch(a.range());
  ASSERT_EQ(mem.hbm_used(0), 2 * page);
  ASSERT_EQ(mem.hbm_used(1), 2 * page);

  // A byte range starting mid-span 1 and ending mid-span 2: it covers two
  // huge spans with *different* stripe homes. Span 1 is already homed on
  // the target (skipped idempotently); span 2 re-homes.
  const AddrRange straddle{a.base() + page + page / 2, page};
  EXPECT_EQ(mem.migrate_pages(straddle, /*to_socket=*/1), 1u);
  EXPECT_EQ(mem.hbm_used(0), page);
  EXPECT_EQ(mem.hbm_used(1), 3 * page);
  // Only the moved span splits (the skipped one keeps its huge mapping).
  EXPECT_EQ(mem.split_spans(a.range()), 1u);
  // Device 1 now reaches only stripe-rel-0 remotely; device 0 lost rel 2.
  EXPECT_EQ(mem.remote_pages(a.range(), 1), 1u);
  EXPECT_EQ(mem.remote_pages(a.range(), 0), 3u);

  // Re-issuing the same straddling migration is fully idempotent.
  EXPECT_EQ(mem.migrate_pages(straddle, 1), 0u);
  EXPECT_EQ(mem.hbm_used(0), page);
  EXPECT_EQ(mem.hbm_used(1), 3 * page);
  EXPECT_NO_THROW(mem.check_accounting());
}

TEST(NumaEdge, MigrationDuringInFlightCrossApuCopyPreservesTheData) {
  apu::Machine machine{two_sockets()};
  MemorySystem mem{machine};
  mem.set_debug_invariants(true);
  hsa::Runtime rt{machine, mem};
  const std::uint64_t page = machine.page_bytes();

  Allocation& src = mem.os_alloc(2 * page, "src", /*home_socket=*/0);
  Allocation& dst = mem.os_alloc(2 * page, "dst", /*home_socket=*/1);

  hsa::Signal copy_sig;
  machine.sched().spawn("copier", [&] {
    mem.host_touch(src.range(), 0);
    mem.host_touch(dst.range(), 1);
    std::memset(mem.space().translate(src.base()), 0x5a, 2 * page);
    // Cross-socket D2D copy: the SDMA engine holds the transfer in flight
    // well past the migrator's wake-up below.
    copy_sig = rt.memory_async_copy(dst.base(), src.base(), 2 * page,
                                    /*with_handler=*/false,
                                    /*count_in_ledger=*/true, /*device=*/1);
    rt.signal_wait_scacquire(copy_sig);
  });
  machine.sched().spawn("migrator", [&] {
    machine.sched().advance(1_us);
    // The source allocation migrates under the in-flight copy. Data is
    // unaffected (the functional transfer is attributed to submit time, in
    // program order on the copier), and the teardown/remap must leave the
    // books balanced.
    EXPECT_EQ(rt.migrate_pages(src.range(), /*device=*/1), 2u);
  });
  machine.sched().run();

  EXPECT_FALSE(copy_sig.errored());
  const std::byte* const out = mem.space().translate(dst.base());
  for (std::uint64_t i = 0; i < 2 * page; i += page / 4) {
    EXPECT_EQ(std::to_integer<int>(out[i]), 0x5a) << "offset " << i;
  }
  EXPECT_EQ(src.home_socket(), 1);
  EXPECT_EQ(mem.hbm_used(1), 4 * page);
  EXPECT_NO_THROW(mem.check_accounting());
}

}  // namespace
}  // namespace zc::mem
