#include "zc/mem/memory_system.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc::mem {
namespace {

class MemorySystemTest : public ::testing::Test {
 protected:
  apu::Machine machine_ = apu::Machine::mi300a();
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(MemorySystemTest, OsAllocCreatesNoPageTableEntries) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf");
  EXPECT_EQ(mem_.cpu_pt().count_present(a.range()), 0u);
  EXPECT_EQ(mem_.gpu_pt().count_present(a.range()), 0u);
  EXPECT_EQ(mem_.gpu_absent_pages(a.range()), 4u);
}

TEST_F(MemorySystemTest, PoolAllocBulkMapsBothTablesOnApu) {
  Allocation& a = mem_.pool_alloc(4 * page_, "dev");
  EXPECT_EQ(mem_.gpu_pt().count_present(a.range()), 4u);
  EXPECT_EQ(mem_.cpu_pt().count_present(a.range()), 4u);
  EXPECT_EQ(mem_.gpu_absent_pages(a.range()), 0u);
}

TEST(MemorySystemDiscrete, PoolAllocIsDeviceOnlyOnDiscreteGpu) {
  apu::Machine machine = apu::Machine::discrete_gpu();
  MemorySystem mem{machine};
  Allocation& a = mem.pool_alloc(4 * machine.page_bytes(), "dev");
  EXPECT_EQ(mem.gpu_pt().count_present(a.range()), 4u);
  EXPECT_EQ(mem.cpu_pt().count_present(a.range()), 0u);
}

TEST_F(MemorySystemTest, HostTouchMaterializesCpuPagesOnce) {
  Allocation& a = mem_.os_alloc(3 * page_, "buf");
  EXPECT_EQ(mem_.host_touch(a.range()), 3u);
  EXPECT_EQ(mem_.host_touch(a.range()), 0u);
  EXPECT_EQ(mem_.cpu_pt().count_present(a.range()), 3u);
  // Host touch does not populate the GPU page table.
  EXPECT_EQ(mem_.gpu_absent_pages(a.range()), 3u);
}

TEST_F(MemorySystemTest, GpuFaultInIsOneOffPerPage) {
  Allocation& a = mem_.os_alloc(5 * page_, "buf");
  const FaultOutcome first = mem_.gpu_fault_in(a.range());
  EXPECT_EQ(first.faulted, 5u);
  EXPECT_EQ(first.non_resident, 5u);  // never CPU-touched
  const FaultOutcome second = mem_.gpu_fault_in(a.range());
  EXPECT_EQ(second.faulted, 0u);  // subsequent touches are free
  EXPECT_EQ(mem_.gpu_absent_pages(a.range()), 0u);
  // Fault-in also materialized host pages (the XNACK walk).
  EXPECT_EQ(mem_.cpu_pt().count_present(a.range()), 5u);
}

TEST_F(MemorySystemTest, FaultsOnHostResidentPagesReportResident) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf");
  (void)mem_.host_touch(AddrRange{a.base(), 2 * page_});  // CPU touched half
  const FaultOutcome out = mem_.gpu_fault_in(a.range());
  EXPECT_EQ(out.faulted, 4u);
  EXPECT_EQ(out.non_resident, 2u);
  EXPECT_EQ(out.resident(), 2u);
}

TEST_F(MemorySystemTest, PrefaultReportsInsertedVsPresent) {
  Allocation& a = mem_.os_alloc(6 * page_, "buf");
  const PrefaultOutcome first = mem_.prefault(a.range());
  EXPECT_EQ(first.inserted, 6u);
  EXPECT_EQ(first.present, 0u);
  const PrefaultOutcome second = mem_.prefault(a.range());
  EXPECT_EQ(second.inserted, 0u);
  EXPECT_EQ(second.present, 6u);
}

TEST_F(MemorySystemTest, PrefaultThenGpuTouchNeedsNoFault) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf");
  (void)mem_.prefault(a.range());
  EXPECT_EQ(mem_.gpu_absent_pages(a.range()), 0u);
}

TEST_F(MemorySystemTest, PartialFaultThenPrefaultCountsRemainder) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf");
  (void)mem_.gpu_fault_in(AddrRange{a.base(), page_});  // first page only
  const PrefaultOutcome out = mem_.prefault(a.range());
  EXPECT_EQ(out.inserted, 3u);
  EXPECT_EQ(out.present, 1u);
}

TEST_F(MemorySystemTest, FreeDropsTranslationsSoReuseWouldFault) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf");
  (void)mem_.gpu_fault_in(a.range());
  const AddrRange r = a.range();
  mem_.os_free(a.base());
  EXPECT_EQ(mem_.gpu_pt().count_present(r), 0u);
  EXPECT_EQ(mem_.cpu_pt().count_present(r), 0u);
}

TEST_F(MemorySystemTest, PoolFreeDropsGpuEntries) {
  Allocation& a = mem_.pool_alloc(2 * page_, "dev");
  const AddrRange r = a.range();
  mem_.pool_free(a.base());
  EXPECT_EQ(mem_.gpu_pt().count_present(r), 0u);
}

TEST_F(MemorySystemTest, KindMismatchOnFreeThrows) {
  Allocation& os = mem_.os_alloc(page_, "os");
  Allocation& dev = mem_.pool_alloc(page_, "dev");
  EXPECT_THROW(mem_.pool_free(os.base()), std::invalid_argument);
  EXPECT_THROW(mem_.os_free(dev.base()), std::invalid_argument);
}

TEST_F(MemorySystemTest, FreeOfInteriorAddressThrows) {
  Allocation& a = mem_.os_alloc(2 * page_, "buf");
  EXPECT_THROW(mem_.os_free(a.base() + 1), std::invalid_argument);
}

TEST_F(MemorySystemTest, TlbAccessGoesThroughSharedTlb) {
  Allocation& a = mem_.pool_alloc(3 * page_, "dev");
  const TlbAccessResult first = mem_.tlb_access(a.range());
  EXPECT_EQ(first.misses, 3u);
  const TlbAccessResult second = mem_.tlb_access(a.range());
  EXPECT_EQ(second.hits, 3u);
}

class MemoryCapacityTest : public ::testing::Test {
 protected:
  static apu::Machine small_machine() {
    apu::Machine::Config config;
    config.topology.hbm_bytes = 16ULL << 21;  // 16 huge pages per socket
    return apu::Machine{std::move(config)};
  }

  apu::Machine machine_ = small_machine();
  MemorySystem mem_{machine_};
  std::uint64_t page_ = machine_.page_bytes();
};

TEST_F(MemoryCapacityTest, HbmChargedOnMaterializationNotReservation) {
  Allocation& a = mem_.os_alloc(8 * page_, "buf");
  EXPECT_EQ(mem_.hbm_used(0), 0u);  // virtual reservation is free
  (void)mem_.host_touch(AddrRange{a.base(), 3 * page_});
  EXPECT_EQ(mem_.hbm_used(0), 3 * page_);
  (void)mem_.host_touch(AddrRange{a.base(), 3 * page_});  // idempotent
  EXPECT_EQ(mem_.hbm_used(0), 3 * page_);
  // GPU demand fault-in materializes the remaining five pages.
  (void)mem_.gpu_fault_in(a.range());
  EXPECT_EQ(mem_.hbm_used(0), 8 * page_);
  mem_.os_free(a.base());
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

TEST_F(MemoryCapacityTest, PrefaultChargesOnlyMaterializedPages) {
  Allocation& a = mem_.os_alloc(4 * page_, "buf");
  (void)mem_.host_touch(AddrRange{a.base(), page_});
  EXPECT_EQ(mem_.hbm_used(0), page_);
  (void)mem_.prefault(a.range());  // 1 resident insert + 3 materializations
  EXPECT_EQ(mem_.hbm_used(0), 4 * page_);
}

TEST_F(MemoryCapacityTest, PoolAllocChargesFootprintAndFreeCredits) {
  Allocation& a = mem_.pool_alloc(4 * page_, "dev");
  EXPECT_EQ(mem_.hbm_used(0), 4 * page_);
  mem_.pool_free(a.base());
  EXPECT_EQ(mem_.hbm_used(0), 0u);
}

TEST_F(MemoryCapacityTest, PoolAllocationIsRefusedBeyondCapacity) {
  EXPECT_TRUE(mem_.pool_fits(16 * page_));
  EXPECT_FALSE(mem_.pool_fits(17 * page_));
  EXPECT_EQ(mem_.try_pool_alloc(17 * page_, "big"), nullptr);
  Allocation* a = mem_.try_pool_alloc(12 * page_, "a");
  ASSERT_NE(a, nullptr);
  // 4 pages left: 5 no longer fit, and the throwing wrapper agrees.
  EXPECT_FALSE(mem_.pool_fits(5 * page_));
  EXPECT_EQ(mem_.try_pool_alloc(5 * page_, "b"), nullptr);
  EXPECT_THROW(mem_.pool_alloc(5 * page_, "c"), std::runtime_error);
  EXPECT_TRUE(mem_.pool_fits(4 * page_));
}

TEST_F(MemoryCapacityTest, HostMaterializationCompetesWithPoolForHbm) {
  // The paper's premise: one physical store. CPU-resident pages shrink
  // what the ROCr pool can hand out.
  Allocation& a = mem_.os_alloc(10 * page_, "host");
  (void)mem_.host_touch(a.range());
  EXPECT_FALSE(mem_.pool_fits(7 * page_));
  EXPECT_TRUE(mem_.pool_fits(6 * page_));
}

TEST(MemoryCapacityDiscrete, DiscretePoolChargesDeviceMemoryOnly) {
  apu::Machine::Config config;
  config.kind = apu::MachineKind::DiscreteGpu;
  config.topology.hbm_bytes = 8ULL << 21;
  apu::Machine machine{std::move(config)};
  MemorySystem mem{machine};
  const std::uint64_t page = machine.page_bytes();
  // Host-side materialization does not consume device memory on a
  // discrete node...
  Allocation& host = mem.os_alloc(8 * page, "host");
  (void)mem.host_touch(host.range());
  EXPECT_EQ(mem.hbm_used(0), 0u);
  // ...but pool allocations charge their full footprint against it.
  Allocation& dev = mem.pool_alloc(6 * page, "dev");
  EXPECT_EQ(mem.hbm_used(0), 6 * page);
  EXPECT_FALSE(mem.pool_fits(3 * page));
  mem.pool_free(dev.base());
  EXPECT_EQ(mem.hbm_used(0), 0u);
}

TEST_F(MemorySystemTest, ThpOffMultipliesPageCounts) {
  apu::RunEnvironment env;
  env.transparent_huge_pages = false;
  apu::Machine machine = apu::Machine::mi300a(env);
  MemorySystem mem{machine};
  Allocation& a = mem.os_alloc(2ULL << 20, "buf");  // 2 MB
  EXPECT_EQ(mem.gpu_fault_in(a.range()).faulted, 512u);  // 4 KB pages
}

}  // namespace
}  // namespace zc::mem
