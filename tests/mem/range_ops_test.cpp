// Edge cases of the shared range-arithmetic vocabulary
// (`mem::ranges_overlap` / `range_covers` / `range_relation`) — ONE
// definition consumed by both the runtime `PresentTable` and the
// `zc::check` static overlap pass, so the two can never disagree about
// what counts as an aliasing map. The edge cases that historically bite:
// zero-byte ranges, exact adjacency, and partial overlaps that differ per
// device.

#include <gtest/gtest.h>

#include "zc/core/mapping.hpp"
#include "zc/mem/address.hpp"

namespace zc::mem {
namespace {

constexpr AddrRange r(std::uint64_t base, std::uint64_t bytes) {
  return AddrRange{VirtAddr{base}, bytes};
}

TEST(RangeOps, EmptyRangesOverlapNothing) {
  EXPECT_FALSE(ranges_overlap(r(100, 0), r(100, 0)));
  EXPECT_FALSE(ranges_overlap(r(100, 0), r(0, 1000)));
  EXPECT_FALSE(ranges_overlap(r(0, 1000), r(100, 0)));
  // ...even when the empty base sits strictly inside the other range.
  EXPECT_EQ(range_relation(r(100, 0), r(0, 1000)), RangeRelation::Disjoint);
}

TEST(RangeOps, EmptyInnerIsCoveredByAnything) {
  EXPECT_TRUE(range_covers(r(0, 100), r(50, 0)));
  EXPECT_TRUE(range_covers(r(0, 0), r(123, 0)));
  EXPECT_FALSE(range_covers(r(50, 0), r(0, 100)));
}

TEST(RangeOps, AdjacentRangesAreDisjoint) {
  // Sharing an endpoint is NOT overlap: adjacent map clauses are legal.
  EXPECT_FALSE(ranges_overlap(r(0, 100), r(100, 100)));
  EXPECT_FALSE(ranges_overlap(r(100, 100), r(0, 100)));
  EXPECT_EQ(range_relation(r(0, 100), r(100, 100)),
            RangeRelation::Disjoint);
  // One byte of overlap is enough to flip the verdict.
  EXPECT_TRUE(ranges_overlap(r(0, 101), r(100, 100)));
  EXPECT_EQ(range_relation(r(0, 101), r(100, 100)),
            RangeRelation::Partial);
}

TEST(RangeOps, RelationClassification) {
  EXPECT_EQ(range_relation(r(0, 100), r(0, 100)), RangeRelation::Equal);
  EXPECT_EQ(range_relation(r(0, 100), r(10, 20)), RangeRelation::Contains);
  EXPECT_EQ(range_relation(r(10, 20), r(0, 100)), RangeRelation::Within);
  EXPECT_EQ(range_relation(r(0, 100), r(50, 100)), RangeRelation::Partial);
  EXPECT_EQ(range_relation(r(50, 100), r(0, 100)), RangeRelation::Partial);
  EXPECT_EQ(range_relation(r(0, 100), r(200, 100)),
            RangeRelation::Disjoint);
  // Same base, different length: the longer one contains the shorter.
  EXPECT_EQ(range_relation(r(0, 100), r(0, 50)), RangeRelation::Contains);
  EXPECT_EQ(range_relation(r(0, 50), r(0, 100)), RangeRelation::Within);
}

TEST(RangeOps, PresentTableAcceptsAdjacentRejectsPartial) {
  omp::PresentTable table;
  table.insert(r(0x1000, 0x1000), VirtAddr{0x100000});
  // Adjacent insert: legal (disjoint byte sets).
  table.insert(r(0x2000, 0x1000), VirtAddr{0x200000});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.lookup(VirtAddr{0x1fff})->device_base.value, 0x100000u);
  EXPECT_EQ(table.lookup(VirtAddr{0x2000})->device_base.value, 0x200000u);
  // Partial overlap with a live entry: rejected, table unchanged.
  EXPECT_THROW(table.insert(r(0x1800, 0x1000), VirtAddr{0x300000}),
               std::invalid_argument);
  // Zero-byte map: rejected outright rather than silently dropped.
  EXPECT_THROW(table.insert(r(0x5000, 0), VirtAddr{0x400000}),
               std::invalid_argument);
  EXPECT_EQ(table.size(), 2u);
}

TEST(RangeOps, PresentTableLookupRangeStraddleIsAnError) {
  omp::PresentTable table;
  table.insert(r(0x1000, 0x1000), VirtAddr{0x100000});
  table.insert(r(0x2000, 0x1000), VirtAddr{0x200000});
  // Fully inside one entry: fine.
  EXPECT_NE(table.lookup_range(r(0x1800, 0x800)), nullptr);
  // Straddling two adjacent entries: one map clause may not span two
  // distinct mappings even when their host ranges touch.
  EXPECT_THROW((void)table.lookup_range(r(0x1800, 0x1000)),
               std::invalid_argument);
  // Absent is a nullptr, not an error.
  EXPECT_EQ(table.lookup_range(r(0x9000, 0x100)), nullptr);
}

TEST(RangeOps, PerDeviceTablesJudgeOverlapIndependently) {
  // The same host range can be mapped on two devices; partial overlap is
  // judged per device table, mirroring the per-device abstract state of
  // the static analyzer.
  omp::PresentTable dev0;
  omp::PresentTable dev1;
  dev0.insert(r(0x1000, 0x1000), VirtAddr{0x100000});
  dev1.insert(r(0x1800, 0x1000), VirtAddr{0x500000});
  // dev1's entry would partial-overlap dev0's — but they are different
  // address spaces, so both inserts are legal...
  EXPECT_EQ(dev0.size(), 1u);
  EXPECT_EQ(dev1.size(), 1u);
  // ...while within one device the same insert is rejected.
  EXPECT_THROW(dev0.insert(r(0x1800, 0x1000), VirtAddr{0x500000}),
               std::invalid_argument);
}

TEST(RangeOps, PageRounding) {
  constexpr std::uint64_t page = 4096;
  EXPECT_EQ(r(0, page).first_page(page), 0u);
  EXPECT_EQ(r(0, page).end_page(page), 1u);
  EXPECT_EQ(r(0, page).page_count(page), 1u);
  // A one-byte straddle claims both pages.
  EXPECT_EQ(r(page - 1, 2).page_count(page), 2u);
  // Zero-byte ranges span zero pages.
  EXPECT_EQ(r(123, 0).page_count(page), 0u);
}

}  // namespace
}  // namespace zc::mem
