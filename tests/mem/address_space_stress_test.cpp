// Randomized stress of the address space against a reference interval map:
// allocate/free churn with lookups must stay consistent.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "zc/mem/address_space.hpp"
#include "zc/sim/rng.hpp"

namespace zc::mem {
namespace {

constexpr std::uint64_t kPage = 4096;

class AddressSpaceStress : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, AddressSpaceStress,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST_P(AddressSpaceStress, AgreesWithReferenceIntervalMap) {
  sim::Rng rng{GetParam()};
  AddressSpace as{kPage};
  struct Ref {
    VirtAddr base;
    std::uint64_t bytes;
  };
  std::map<std::uint64_t, Ref> live;  // by base
  std::uint64_t total = 0;

  for (int op = 0; op < 800; ++op) {
    if (live.empty() || rng.bernoulli(0.6)) {
      const std::uint64_t bytes = 1 + rng.uniform_index(64 * kPage);
      Allocation& a = as.allocate(bytes, MemKind::HostOs, "s");
      // No overlap with any live allocation.
      for (const auto& [base, ref] : live) {
        const bool disjoint = a.base().value >= base + ref.bytes ||
                              base >= a.base().value + bytes;
        ASSERT_TRUE(disjoint);
      }
      live.emplace(a.base().value, Ref{a.base(), bytes});
      total += bytes;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(live.size())));
      as.free(it->second.base);
      live.erase(it);
    }

    // Random lookups agree with the reference.
    for (int probe = 0; probe < 5; ++probe) {
      if (live.empty()) {
        break;
      }
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(live.size())));
      const std::uint64_t off = rng.uniform_index(it->second.bytes);
      Allocation* found = as.find(it->second.base + off);
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(found->base(), it->second.base);
      // One past the end is not part of the allocation.
      Allocation* past = as.find(it->second.base + it->second.bytes);
      if (past != nullptr) {
        ASSERT_NE(past->base(), it->second.base);
      }
    }
    ASSERT_EQ(as.live_allocations(), live.size());
  }
  EXPECT_EQ(as.total_allocated_bytes(), total);
}

TEST(AddressSpaceStress2, ThousandsOfAllocationsRemainAddressable) {
  AddressSpace as{kPage};
  std::vector<VirtAddr> bases;
  for (int i = 0; i < 4000; ++i) {
    bases.push_back(as.allocate(128, MemKind::HostOs, "x").base());
  }
  for (std::size_t i = 0; i < bases.size(); i += 7) {
    Allocation* a = as.find(bases[i] + 100);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->base(), bases[i]);
  }
  for (const VirtAddr b : bases) {
    as.free(b);
  }
  EXPECT_EQ(as.live_allocations(), 0u);
}

}  // namespace
}  // namespace zc::mem
