#include "zc/mem/address_space.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

namespace zc::mem {
namespace {

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(AddrRange, PageArithmetic) {
  const AddrRange r{VirtAddr{kPage}, kPage + 1};
  EXPECT_EQ(r.first_page(kPage), 1u);
  EXPECT_EQ(r.end_page(kPage), 3u);  // crosses into a second page by one byte
  EXPECT_EQ(r.page_count(kPage), 2u);
  EXPECT_TRUE(r.contains(VirtAddr{kPage}));
  EXPECT_FALSE(r.contains(r.end()));
}

TEST(AddrRange, EmptyRangeHasNoPages) {
  const AddrRange r{VirtAddr{kPage}, 0};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.page_count(kPage), 0u);
}

TEST(AddressSpace, AllocationsDoNotOverlapAndSkipNull) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(100, MemKind::HostOs, "a");
  Allocation& b = as.allocate(kPage * 3, MemKind::DevicePool, "b");
  EXPECT_FALSE(a.base().is_null());
  EXPECT_GE(b.base() - a.base(), kPage);
  EXPECT_GE(b.base().value, a.range().end().value);
}

TEST(AddressSpace, BackingIsZeroInitializedAndWritable) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(64, MemKind::HostOs, "buf");
  for (std::byte byte : a.data()) {
    EXPECT_EQ(byte, std::byte{0});
  }
  a.data()[3] = std::byte{7};
  EXPECT_EQ(a.data()[3], std::byte{7});
}

TEST(AddressSpace, FindAndTranslate) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(1000, MemKind::HostOs, "x");
  EXPECT_EQ(as.find(a.base()), &a);
  EXPECT_EQ(as.find(a.base() + 999), &a);
  EXPECT_EQ(as.find(a.base() + 1000), nullptr);
  std::byte* p = as.translate(a.base() + 10);
  EXPECT_EQ(p, a.data().data() + 10);
}

TEST(AddressSpace, TranslateAsTyped) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(sizeof(double) * 4, MemKind::HostOs, "d");
  double* d = as.translate_as<double>(a.base());
  d[2] = 2.5;
  double out = 0;
  std::memcpy(&out, a.data().data() + 2 * sizeof(double), sizeof out);
  EXPECT_DOUBLE_EQ(out, 2.5);
}

TEST(AddressSpace, TranslateUnmappedThrows) {
  AddressSpace as{kPage};
  EXPECT_THROW((void)as.translate(VirtAddr{12345}), std::out_of_range);
  EXPECT_THROW((void)as.translate(VirtAddr::null()), std::out_of_range);
}

TEST(AddressSpace, FreeRemovesAndNeverReusesAddresses) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(100, MemKind::HostOs, "a");
  const VirtAddr base = a.base();
  as.free(base);
  EXPECT_EQ(as.find(base), nullptr);
  Allocation& b = as.allocate(100, MemKind::HostOs, "b");
  EXPECT_GT(b.base().value, base.value);  // bump allocator: fresh addresses
}

TEST(AddressSpace, FreeUnknownBaseThrows) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(100, MemKind::HostOs, "a");
  EXPECT_THROW(as.free(a.base() + 1), std::invalid_argument);
  EXPECT_THROW(as.free(VirtAddr::null()), std::invalid_argument);
}

TEST(AddressSpace, AccountingTracksLiveAndTotal) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(100, MemKind::HostOs, "a");
  (void)as.allocate(200, MemKind::HostOs, "b");
  EXPECT_EQ(as.live_allocations(), 2u);
  EXPECT_EQ(as.live_bytes(), 300u);
  EXPECT_EQ(as.total_allocated_bytes(), 300u);
  as.free(a.base());
  EXPECT_EQ(as.live_allocations(), 1u);
  EXPECT_EQ(as.live_bytes(), 200u);
  EXPECT_EQ(as.total_allocated_bytes(), 300u);
}

TEST(AddressSpace, ZeroByteAllocationRejected) {
  AddressSpace as{kPage};
  EXPECT_THROW((void)as.allocate(0, MemKind::HostOs, "z"), std::invalid_argument);
}

TEST(AddressSpace, NonPowerOfTwoPageRejected) {
  EXPECT_THROW(AddressSpace{3000}, std::invalid_argument);
  EXPECT_THROW(AddressSpace{0}, std::invalid_argument);
}

TEST(Allocation, TranslateOutsideRangeThrows) {
  AddressSpace as{kPage};
  Allocation& a = as.allocate(100, MemKind::HostOs, "a");
  EXPECT_THROW((void)a.translate(a.base() + 100), std::out_of_range);
}

}  // namespace
}  // namespace zc::mem
