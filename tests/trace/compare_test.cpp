#include "zc/trace/compare.hpp"

#include <gtest/gtest.h>

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

TEST(CompareCalls, BuildsRowsInRequestedOrder) {
  CallStats copy;
  CallStats zc;
  copy.record(HsaCall::MemoryAsyncCopy, 100_us);
  copy.record(HsaCall::MemoryAsyncCopy, 100_us);
  zc.record(HsaCall::MemoryAsyncCopy, 2_us);
  copy.record(HsaCall::SignalWaitScacquire, 30_us);
  zc.record(HsaCall::SignalWaitScacquire, 10_us);

  const auto rows = compare_calls(copy, zc,
                                  {HsaCall::SignalWaitScacquire,
                                   HsaCall::MemoryAsyncCopy});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].call, HsaCall::SignalWaitScacquire);
  EXPECT_EQ(rows[0].baseline_calls, 1u);
  EXPECT_EQ(rows[0].other_calls, 1u);
  EXPECT_DOUBLE_EQ(rows[0].latency_ratio(), 3.0);
  EXPECT_EQ(rows[1].baseline_calls, 2u);
  EXPECT_DOUBLE_EQ(rows[1].latency_ratio(), 100.0);
}

TEST(CompareCalls, UndefinedRatioWhenOtherNeverCalled) {
  CallStats copy;
  CallStats zc;
  copy.record(HsaCall::SignalAsyncHandler, 10_us);
  const auto rows =
      compare_calls(copy, zc, {HsaCall::SignalAsyncHandler});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ratio_defined());
  EXPECT_LT(rows[0].latency_ratio(), 0.0);
}

TEST(CompareCalls, TableOneCallsMatchPaperOrder) {
  const auto calls = table_one_calls();
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[0], HsaCall::SignalWaitScacquire);
  EXPECT_EQ(calls[1], HsaCall::MemoryPoolAllocate);
  EXPECT_EQ(calls[2], HsaCall::MemoryAsyncCopy);
  EXPECT_EQ(calls[3], HsaCall::SignalAsyncHandler);
}

}  // namespace
}  // namespace zc::trace
