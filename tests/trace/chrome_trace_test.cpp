#include "zc/trace/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

sim::TimePoint at(std::int64_t us) {
  return sim::TimePoint::zero() + sim::Duration::microseconds(us);
}

TEST(ChromeTrace, EmptyDocumentIsValidJsonShell) {
  ChromeTraceWriter w;
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"traceEvents\":[]"), 0u);
  EXPECT_NE(out.find("apuzc simulator"), std::string::npos);
  EXPECT_EQ(w.event_count(), 0u);
}

TEST(ChromeTrace, CallEventsCarryThreadAndTiming) {
  CallTrace calls;
  calls.enable();
  calls.record(HsaCall::QueueDispatch, 3, at(10), 2_us);
  ChromeTraceWriter w;
  w.add(calls);
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"hsa_queue_dispatch\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":2"), std::string::npos);
  EXPECT_EQ(w.event_count(), 1u);
}

TEST(ChromeTrace, KernelEventsIncludeFaultArguments) {
  KernelRecord k;
  k.name = "nio_drift";
  k.host_thread = 2;
  k.start = at(100);
  k.end = at(150);
  k.fault_stall = 30_us;
  k.page_faults = 4;
  ChromeTraceWriter w;
  w.add(std::vector<KernelRecord>{k});
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"nio_drift\""), std::string::npos);
  EXPECT_NE(out.find("\"page_faults\":4"), std::string::npos);
  EXPECT_NE(out.find("\"fault_stall_us\":30"), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"kernel\""), std::string::npos);
}

TEST(ChromeTrace, EndToEndFromARealRun) {
  omp::OffloadStack stack{
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::LegacyCopy),
      omp::OffloadStack::program_for(omp::RuntimeConfig::LegacyCopy, {})};
  stack.hsa().call_trace().enable();
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    omp::HostArray<double> x{rt, 4096, "x"};
    rt.target(omp::TargetRegion{.name = "traced",
                                .maps = {x.tofrom()},
                                .compute = 25_us,
                                .body = {}});
    x.release();
  });
  ChromeTraceWriter w;
  w.add(stack.hsa().call_trace());
  w.add(stack.hsa().kernel_trace().records());
  EXPECT_GT(w.event_count(), 10u);  // image load + maps + kernel + waits

  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  // Braces and brackets balance (cheap JSON sanity).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
  EXPECT_NE(out.find("\"name\":\"traced\""), std::string::npos);
}

}  // namespace
}  // namespace zc::trace
