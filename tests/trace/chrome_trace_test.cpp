#include "zc/trace/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

sim::TimePoint at(std::int64_t us) {
  return sim::TimePoint::zero() + sim::Duration::microseconds(us);
}

TEST(ChromeTrace, EmptyDocumentIsValidJsonShell) {
  ChromeTraceWriter w;
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"traceEvents\":[]"), 0u);
  EXPECT_NE(out.find("apuzc simulator"), std::string::npos);
  EXPECT_EQ(w.event_count(), 0u);
}

TEST(ChromeTrace, CallEventsCarryThreadAndTiming) {
  CallTrace calls;
  calls.enable();
  calls.record(HsaCall::QueueDispatch, 3, at(10), 2_us);
  ChromeTraceWriter w;
  w.add(calls);
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"hsa_queue_dispatch\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":2"), std::string::npos);
  EXPECT_EQ(w.event_count(), 1u);
}

TEST(ChromeTrace, KernelEventsIncludeFaultArguments) {
  KernelRecord k;
  k.name = "nio_drift";
  k.host_thread = 2;
  k.start = at(100);
  k.end = at(150);
  k.fault_stall = 30_us;
  k.page_faults = 4;
  ChromeTraceWriter w;
  w.add(std::vector<KernelRecord>{k});
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"nio_drift\""), std::string::npos);
  EXPECT_NE(out.find("\"page_faults\":4"), std::string::npos);
  EXPECT_NE(out.find("\"fault_stall_us\":30"), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"kernel\""), std::string::npos);
}

TEST(ChromeTrace, MultiDeviceEventsLandOnSeparateLanes) {
  // Kernels on devices 0 and 2, a cross-socket copy carried by device 1's
  // SDMA engine, and a fault on device 3 must each land on their own
  // (pid, tid) track — never interleaved on one timeline.
  KernelRecord k0;
  k0.name = "shard0";
  k0.device = 0;
  k0.start = at(10);
  k0.end = at(20);
  KernelRecord k2;
  k2.name = "shard2";
  k2.device = 2;
  k2.start = at(10);
  k2.end = at(22);
  k2.remote_bytes = 4096;

  CopyRecord c;
  c.device = 1;
  c.src_socket = 1;
  c.dst_socket = 3;
  c.submit = at(1);
  c.start = at(5);
  c.end = at(9);
  c.bytes = 4096;

  FaultTrace faults;
  FaultRecord f;
  f.device = 3;
  f.time = at(7);
  faults.record(f);

  ChromeTraceWriter w;
  w.add(std::vector<KernelRecord>{k0, k2});
  w.add(std::vector<CopyRecord>{c});
  w.add(faults);
  EXPECT_EQ(w.event_count(), 4u);

  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  // GPU lane (pid 2): one thread per device.
  EXPECT_NE(out.find("\"pid\":2,\"tid\":0"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":2,\"tid\":2"), std::string::npos);
  EXPECT_NE(out.find("\"remote_bytes\":4096"), std::string::npos);
  // SDMA lane (pid 3) keyed by the engine's device, with both endpoints
  // in the arguments.
  EXPECT_NE(out.find("\"pid\":3,\"tid\":1"), std::string::npos);
  EXPECT_NE(out.find("\"src_socket\":1"), std::string::npos);
  EXPECT_NE(out.find("\"dst_socket\":3"), std::string::npos);
  EXPECT_NE(out.find("\"cross_socket\":true"), std::string::npos);
  // Fault lane (pid 4).
  EXPECT_NE(out.find("\"pid\":4,\"tid\":3"), std::string::npos);
  // Process-name metadata labels every lane.
  for (const char* lane : {"\"name\":\"host\"", "\"name\":\"gpu\"",
                           "\"name\":\"sdma\"", "\"name\":\"faults\""}) {
    EXPECT_NE(out.find(lane), std::string::npos) << lane;
  }
  // No kernel ever appears on another device's track.
  EXPECT_EQ(out.find("\"pid\":2,\"tid\":1"), std::string::npos);
  EXPECT_EQ(out.find("\"pid\":2,\"tid\":3"), std::string::npos);
}

TEST(ChromeTrace, DecisionEventsCarryPolicyArguments) {
  DecisionTrace decisions;
  DecisionRecord d;
  d.decision = adapt::Decision::EagerPrefault;
  d.host_thread = 4;
  d.device = 1;
  d.time = at(42);
  d.host_base = 0x1000;
  d.bytes = 8192;
  d.pages = 2;
  d.cpu_resident_pages = 1;
  d.gpu_absent_pages = 2;
  d.predicted_copy_us = 120.5;
  d.predicted_zero_copy_us = 910.0;
  d.predicted_eager_us = 58.25;
  d.revised = true;
  decisions.record(d);

  ChromeTraceWriter w;
  w.add(decisions);
  EXPECT_EQ(w.event_count(), 1u);
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"adapt:eager-prefault\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"adapt\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\":4"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":42"), std::string::npos);
  EXPECT_NE(out.find("\"device\":1"), std::string::npos);
  EXPECT_NE(out.find("\"pages\":2"), std::string::npos);
  EXPECT_NE(out.find("\"revised\":true"), std::string::npos);
  // Braces and brackets balance with the instant event present.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(ChromeTrace, DecisionEventsFromAnAdaptiveRun) {
  omp::OffloadStack stack{
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::AdaptiveMaps),
      omp::OffloadStack::program_for(omp::RuntimeConfig::AdaptiveMaps, {})};
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    omp::HostArray<double> x{rt, 4096, "x"};
    rt.target(omp::TargetRegion{.name = "adaptive_traced",
                                .maps = {x.tofrom()},
                                .compute = 25_us,
                                .body = {}});
    x.release();
  });
  ChromeTraceWriter w;
  w.add(stack.omp().decision_trace());
  EXPECT_GE(w.event_count(), 1u);
  std::ostringstream os;
  w.write(os);
  EXPECT_NE(os.str().find("\"cat\":\"adapt\""), std::string::npos);
}

TEST(ChromeTrace, EndToEndFromARealRun) {
  omp::OffloadStack stack{
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::LegacyCopy),
      omp::OffloadStack::program_for(omp::RuntimeConfig::LegacyCopy, {})};
  stack.hsa().call_trace().enable();
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    omp::HostArray<double> x{rt, 4096, "x"};
    rt.target(omp::TargetRegion{.name = "traced",
                                .maps = {x.tofrom()},
                                .compute = 25_us,
                                .body = {}});
    x.release();
  });
  ChromeTraceWriter w;
  w.add(stack.hsa().call_trace());
  w.add(stack.hsa().kernel_trace().records());
  EXPECT_GT(w.event_count(), 10u);  // image load + maps + kernel + waits

  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  // Braces and brackets balance (cheap JSON sanity).
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
  EXPECT_NE(out.find("\"name\":\"traced\""), std::string::npos);
}

TEST(ChromeTrace, ServiceJobsRenderOnTenantTracks) {
  ServiceJobRecord done;
  done.tenant = 2;
  done.job = 7;
  done.device = 1;
  done.pages = 16;
  done.arrival = at(100);
  done.start = at(120);
  done.end = at(180);
  done.outcome = ServiceJobOutcome::Completed;
  ServiceJobRecord shed;
  shed.tenant = 3;
  shed.job = 9;
  shed.pages = 4;
  shed.arrival = at(200);
  shed.start = at(200);
  shed.end = at(200);
  shed.outcome = ServiceJobOutcome::Shed;
  ChromeTraceWriter w;
  w.add(std::vector<ServiceJobRecord>{done, shed});
  std::ostringstream os;
  w.write(os);
  const std::string out = os.str();
  // Completed job: a span on the service pid, tid = tenant, with the
  // queue-wait and outcome in args.
  EXPECT_NE(out.find("\"name\":\"job\",\"ph\":\"X\",\"pid\":5,\"tid\":2"),
            std::string::npos);
  EXPECT_NE(out.find("\"queue_wait_us\":20"), std::string::npos);
  EXPECT_NE(out.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(out.find("\"dur\":80"), std::string::npos);
  // Shed job: an instant, never a span.
  EXPECT_NE(out.find("\"name\":\"job-shed\",\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"tid\":3"), std::string::npos);
  EXPECT_EQ(w.event_count(), 2u);
}

}  // namespace
}  // namespace zc::trace
