#include "zc/trace/call_stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

TEST(CallStats, StartsEmpty) {
  CallStats s;
  EXPECT_EQ(s.total_calls(), 0u);
  EXPECT_EQ(s.count(HsaCall::MemoryAsyncCopy), 0u);
  EXPECT_EQ(s.total_time(), sim::Duration::zero());
}

TEST(CallStats, RecordAccumulatesCountAndLatency) {
  CallStats s;
  s.record(HsaCall::SignalWaitScacquire, 5_us);
  s.record(HsaCall::SignalWaitScacquire, 7_us);
  s.record(HsaCall::MemoryPoolAllocate, 30_us);
  EXPECT_EQ(s.count(HsaCall::SignalWaitScacquire), 2u);
  EXPECT_EQ(s.total_latency(HsaCall::SignalWaitScacquire), 12_us);
  EXPECT_EQ(s.count(HsaCall::MemoryPoolAllocate), 1u);
  EXPECT_EQ(s.total_calls(), 3u);
  EXPECT_EQ(s.total_time(), 42_us);
}

TEST(CallStats, ResetClears) {
  CallStats s;
  s.record(HsaCall::QueueDispatch, 1_us);
  s.reset();
  EXPECT_EQ(s.total_calls(), 0u);
}

TEST(CallStats, MergeAddsBothStreams) {
  CallStats a;
  CallStats b;
  a.record(HsaCall::MemoryAsyncCopy, 10_us);
  b.record(HsaCall::MemoryAsyncCopy, 5_us);
  b.record(HsaCall::SvmAttributesSet, 2_us);
  a.merge(b);
  EXPECT_EQ(a.count(HsaCall::MemoryAsyncCopy), 2u);
  EXPECT_EQ(a.total_latency(HsaCall::MemoryAsyncCopy), 15_us);
  EXPECT_EQ(a.count(HsaCall::SvmAttributesSet), 1u);
}

TEST(CallStats, NamesMatchRocrSpelling) {
  EXPECT_STREQ(to_string(HsaCall::MemoryAsyncCopy), "hsa_amd_memory_async_copy");
  EXPECT_STREQ(to_string(HsaCall::SignalWaitScacquire),
               "hsa_signal_wait_scacquire");
  EXPECT_STREQ(to_string(HsaCall::SvmAttributesSet),
               "hsa_amd_svm_attributes_set");
}

TEST(CallStats, CsvListsOnlyNonzeroCalls) {
  CallStats s;
  s.record(HsaCall::MemoryAsyncCopy, 10_us);
  std::ostringstream os;
  s.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("hsa_amd_memory_async_copy,1,10"), std::string::npos);
  EXPECT_EQ(out.find("hsa_queue_dispatch"), std::string::npos);
}

}  // namespace
}  // namespace zc::trace
