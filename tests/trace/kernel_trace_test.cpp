#include "zc/trace/kernel_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

KernelRecord make_record(std::int64_t start_us, std::int64_t dur_us,
                         std::uint64_t faults = 0) {
  KernelRecord r;
  r.name = "k";
  r.start = sim::TimePoint::zero() + sim::Duration::microseconds(start_us);
  r.end = r.start + sim::Duration::microseconds(dur_us);
  r.compute = sim::Duration::microseconds(dur_us);
  r.page_faults = faults;
  if (faults > 0) {
    r.fault_stall = sim::Duration::microseconds(static_cast<std::int64_t>(faults));
  }
  return r;
}

TEST(KernelTrace, SummaryAccumulates) {
  KernelTrace t;
  t.record(make_record(0, 10));
  t.record(make_record(20, 30, 5));
  const KernelTraceSummary& s = t.summary();
  EXPECT_EQ(s.launches, 2u);
  EXPECT_EQ(s.total_time, 40_us);
  EXPECT_EQ(s.total_page_faults, 5u);
  EXPECT_EQ(s.total_fault_stall, 5_us);
}

TEST(KernelTrace, RecordsKeptByDefault) {
  KernelTrace t;
  t.record(make_record(0, 10));
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].duration(), 10_us);
}

TEST(KernelTrace, RecordsCanBeDisabledSummariesRemain) {
  KernelTrace t;
  t.set_keep_records(false);
  t.record(make_record(0, 10));
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.summary().launches, 1u);
}

TEST(KernelTrace, SummarizeFirstWindow) {
  KernelTrace t;
  for (int i = 0; i < 10; ++i) {
    t.record(make_record(i * 10, 5, i < 3 ? 2 : 0));
  }
  const KernelTraceSummary first3 = t.summarize_first(3);
  EXPECT_EQ(first3.launches, 3u);
  EXPECT_EQ(first3.total_page_faults, 6u);
  const KernelTraceSummary all = t.summarize_first(100);
  EXPECT_EQ(all.launches, 10u);
}

TEST(KernelTrace, ResetClearsEverything) {
  KernelTrace t;
  t.record(make_record(0, 10));
  t.reset();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.summary().launches, 0u);
}

TEST(KernelTrace, DumpContainsNameAndFaults) {
  KernelTrace t;
  t.record(make_record(0, 10, 4));
  std::ostringstream os;
  t.dump(os);
  EXPECT_NE(os.str().find("faults=4"), std::string::npos);
}

}  // namespace
}  // namespace zc::trace
