#include "zc/trace/call_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "zc/hsa/runtime.hpp"

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

sim::TimePoint at(std::int64_t us) {
  return sim::TimePoint::zero() + sim::Duration::microseconds(us);
}

TEST(CallTrace, DisabledByDefault) {
  CallTrace t;
  t.record(HsaCall::QueueDispatch, 0, at(1), 2_us);
  EXPECT_TRUE(t.records().empty());
}

TEST(CallTrace, RecordsWhenEnabled) {
  CallTrace t;
  t.enable();
  t.record(HsaCall::QueueDispatch, 3, at(1), 2_us);
  t.record(HsaCall::MemoryAsyncCopy, 0, at(5), 7_us);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].host_thread, 3);
  EXPECT_EQ(t.records()[1].end(), at(12));
}

TEST(CallTrace, ByCallFilters) {
  CallTrace t;
  t.enable();
  t.record(HsaCall::QueueDispatch, 0, at(1), 1_us);
  t.record(HsaCall::MemoryAsyncCopy, 0, at(2), 1_us);
  t.record(HsaCall::QueueDispatch, 0, at(3), 1_us);
  EXPECT_EQ(t.by_call(HsaCall::QueueDispatch).size(), 2u);
  EXPECT_EQ(t.by_call(HsaCall::SignalCreate).size(), 0u);
}

TEST(CallTrace, WindowedLatency) {
  CallTrace t;
  t.enable();
  t.record(HsaCall::QueueDispatch, 0, at(1), 10_us);
  t.record(HsaCall::QueueDispatch, 0, at(5), 20_us);
  t.record(HsaCall::QueueDispatch, 0, at(9), 40_us);
  EXPECT_EQ(t.latency_in_window(at(0), at(6)), 30_us);
  EXPECT_EQ(t.latency_in_window(at(5), at(10)), 60_us);
  EXPECT_EQ(t.latency_in_window(at(100), at(200)), sim::Duration::zero());
}

TEST(CallTrace, CsvOutput) {
  CallTrace t;
  t.enable();
  t.record(HsaCall::SvmAttributesSet, 1, at(2), 3_us);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("hsa_amd_svm_attributes_set,1,3"), std::string::npos);
}

TEST(CallTrace, IntegratesWithHsaRuntime) {
  apu::Machine machine = apu::Machine::mi300a();
  mem::MemorySystem memory{machine};
  hsa::Runtime rt{machine, memory};
  rt.call_trace().enable();
  machine.sched().run_single([&] {
    const mem::VirtAddr dev = rt.memory_pool_allocate(1 << 20, "b");
    rt.memory_pool_free(dev);
  });
  const auto& recs = rt.call_trace().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].call, HsaCall::MemoryPoolAllocate);
  EXPECT_EQ(recs[1].call, HsaCall::MemoryPoolFree);
  EXPECT_GE(recs[1].start, recs[0].end());
  // The trace agrees with the aggregate stats.
  EXPECT_EQ(recs[0].latency,
            rt.stats().total_latency(HsaCall::MemoryPoolAllocate));
}

}  // namespace
}  // namespace zc::trace
