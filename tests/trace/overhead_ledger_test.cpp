#include "zc/trace/overhead_ledger.hpp"

#include <gtest/gtest.h>

namespace zc::trace {
namespace {

using namespace zc::sim::literals;

TEST(OverheadLedger, BucketsAccumulateSeparately) {
  OverheadLedger l;
  l.add_alloc(10_us);
  l.add_copy(20_us);
  l.add_prefault(5_us);
  l.add_first_touch(100_us, 3);
  EXPECT_EQ(l.mm(), 35_us);
  EXPECT_EQ(l.mm_alloc(), 10_us);
  EXPECT_EQ(l.mm_copy(), 20_us);
  EXPECT_EQ(l.mm_prefault(), 5_us);
  EXPECT_EQ(l.mi(), 100_us);
  EXPECT_EQ(l.page_faults(), 3u);
  EXPECT_EQ(l.prefault_calls(), 1u);
}

TEST(OverheadLedger, PrefaultCountsIntoMmLikeTableIII) {
  // Table III reports Eager Maps' prefault cost under MM.
  OverheadLedger l;
  l.add_prefault(7_us);
  EXPECT_EQ(l.mm(), 7_us);
  EXPECT_EQ(l.mi(), sim::Duration::zero());
}

TEST(OverheadLedger, ResetZeroes) {
  OverheadLedger l;
  l.add_copy(20_us);
  l.add_first_touch(1_us, 1);
  l.reset();
  EXPECT_EQ(l.mm(), sim::Duration::zero());
  EXPECT_EQ(l.mi(), sim::Duration::zero());
  EXPECT_EQ(l.page_faults(), 0u);
}

TEST(OrderOfMagnitude, MatchesTableIIINotation) {
  EXPECT_STREQ(order_of_magnitude_us(sim::Duration::zero()), "O(0)");
  EXPECT_STREQ(order_of_magnitude_us(sim::Duration::from_us(0.5)), "O(0)");
  EXPECT_STREQ(order_of_magnitude_us(1_us), "O(10^0)");
  EXPECT_STREQ(order_of_magnitude_us(42_us), "O(10^1)");
  EXPECT_STREQ(order_of_magnitude_us(999_us), "O(10^2)");
  EXPECT_STREQ(order_of_magnitude_us(sim::Duration::milliseconds(400)),
               "O(10^5)");
  EXPECT_STREQ(order_of_magnitude_us(3_s), "O(10^6)");
}

}  // namespace
}  // namespace zc::trace
