#include "zc/workloads/qmcpack.hpp"

#include <gtest/gtest.h>

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;
using trace::HsaCall;

QmcpackParams tiny(int threads = 2) {
  QmcpackParams p;
  p.size = 2;
  p.threads = threads;
  p.walkers_per_thread = 2;
  p.steps = 3;
  return p;
}

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::EagerMaps,
};

TEST(Qmcpack, ChecksumIdenticalAcrossConfigurations) {
  const Program program = make_qmcpack(tiny());
  const double reference =
      run_program(program, {.config = RuntimeConfig::LegacyCopy}).checksum;
  EXPECT_NE(reference, 0.0);
  for (const RuntimeConfig cfg : kAllConfigs) {
    const RunResult r = run_program(program, {.config = cfg});
    EXPECT_DOUBLE_EQ(r.checksum, reference) << to_string(cfg);
  }
}

TEST(Qmcpack, DeterministicAcrossRepeatedRuns) {
  const Program program = make_qmcpack(tiny());
  const RunOptions opts{.config = RuntimeConfig::ImplicitZeroCopy, .seed = 7};
  const RunResult a = run_program(program, opts);
  const RunResult b = run_program(program, opts);
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(Qmcpack, CopyConfigPerformsPerStepAllocationsAndCopies) {
  const Program program = make_qmcpack(tiny());
  const RunResult copy =
      run_program(program, {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc =
      run_program(program, {.config = RuntimeConfig::ImplicitZeroCopy});

  // Zero-copy performs only image-load/thread-init allocations and the
  // image-upload copies.
  const auto init_allocs = static_cast<std::uint64_t>(
      omp::OffloadRuntime::kImageLoadAllocs +
      2 * omp::OffloadRuntime::kThreadInitAllocs);
  EXPECT_EQ(zc.stats.count(HsaCall::MemoryPoolAllocate), init_allocs);
  EXPECT_EQ(zc.stats.count(HsaCall::MemoryAsyncCopy),
            static_cast<std::uint64_t>(omp::OffloadRuntime::kImageLoadCopies));

  // Legacy Copy adds the spline + persistent arrays + one scratch per
  // walker-step, and orders of magnitude more copies.
  EXPECT_GT(copy.stats.count(HsaCall::MemoryPoolAllocate), init_allocs + 10);
  EXPECT_GT(copy.stats.count(HsaCall::MemoryAsyncCopy), 100u);
  EXPECT_GT(copy.stats.count(HsaCall::SignalWaitScacquire),
            zc.stats.count(HsaCall::SignalWaitScacquire));
}

TEST(Qmcpack, ZeroCopyIsFasterThanCopy) {
  const Program program = make_qmcpack(tiny());
  const RunResult copy =
      run_program(program, {.config = RuntimeConfig::LegacyCopy});
  for (const RuntimeConfig cfg :
       {RuntimeConfig::UnifiedSharedMemory, RuntimeConfig::ImplicitZeroCopy,
        RuntimeConfig::EagerMaps}) {
    const RunResult r = run_program(program, {.config = cfg});
    EXPECT_GT(copy.wall_time, r.wall_time) << to_string(cfg);
  }
}

TEST(Qmcpack, EagerMapsIssuesPrefaultsPerMap) {
  const Program program = make_qmcpack(tiny());
  const RunResult eager =
      run_program(program, {.config = RuntimeConfig::EagerMaps});
  const RunResult zc =
      run_program(program, {.config = RuntimeConfig::ImplicitZeroCopy});
  // Spline map + persistent maps + per-step maps, per thread.
  EXPECT_GT(eager.stats.count(HsaCall::SvmAttributesSet), 50u);
  EXPECT_EQ(zc.stats.count(HsaCall::SvmAttributesSet), 0u);
  // Eager Maps kernels never page-fault; Implicit Z-C faults on first GPU
  // touch of the spline windows.
  EXPECT_EQ(eager.kernels.total_page_faults, 0u);
  EXPECT_GT(zc.kernels.total_page_faults, 0u);
}

TEST(Qmcpack, MoreThreadsMoreTotalWork) {
  const RunResult one =
      run_program(make_qmcpack(tiny(1)), {.config = RuntimeConfig::LegacyCopy});
  const RunResult four =
      run_program(make_qmcpack(tiny(4)), {.config = RuntimeConfig::LegacyCopy});
  EXPECT_GT(four.kernels.launches, one.kernels.launches * 3);
  // Contention means wall time grows, but far less than 4x (work overlaps).
  EXPECT_GT(four.wall_time, one.wall_time);
}

TEST(Qmcpack, UsmAndImplicitZcIdenticalWithoutGlobals) {
  // QMCPack uses no declare-target globals, so the two configurations only
  // differ in name (the paper's §V-A.2 observation).
  const Program program = make_qmcpack(tiny());
  const RunResult usm =
      run_program(program, {.config = RuntimeConfig::UnifiedSharedMemory});
  const RunResult zc =
      run_program(program, {.config = RuntimeConfig::ImplicitZeroCopy});
  EXPECT_EQ(usm.wall_time, zc.wall_time);
  EXPECT_EQ(usm.stats.total_calls(), zc.stats.total_calls());
}

TEST(Qmcpack, ParamDerivations) {
  QmcpackParams p;
  p.size = 4;
  EXPECT_EQ(p.spline_bytes(), 96ULL * 4 * (1ULL << 20));
  EXPECT_EQ(p.walker_buf_bytes(), 4096u * 4);  // linear in size
  EXPECT_EQ(p.kernel_compute(), sim::Duration::from_us(50.0));
  EXPECT_EQ(qmcpack_paper_sizes().size(), 8u);
}

TEST(Qmcpack, MultiSocketAffinityRelievesDriverContention) {
  // §III-A: spreading 8 host threads over two sockets halves the pressure
  // on each socket's driver lock. Eager Maps is the driver-bound
  // configuration (a prefault syscall per map), so it shows the benefit;
  // under Legacy Copy the shared runtime lock remains the bottleneck and
  // the duplicated per-device spline transfer can even make two sockets
  // slightly slower at tiny scale.
  QmcpackParams p = tiny(8);
  p.walkers_per_thread = 4;
  p.steps = 30;
  apu::Topology two_sockets;
  two_sockets.sockets = 2;

  QmcpackParams spread = p;
  spread.sockets = 2;

  RunOptions opts{.config = RuntimeConfig::EagerMaps};
  opts.topology = two_sockets;
  const RunResult one_socket = run_program(make_qmcpack(p), opts);
  const RunResult two_socket = run_program(make_qmcpack(spread), opts);
  EXPECT_DOUBLE_EQ(one_socket.checksum, two_socket.checksum);
  EXPECT_LT(two_socket.wall_time, one_socket.wall_time);
}

TEST(Qmcpack, MultiSocketNeedsMatchingTopology) {
  QmcpackParams p = tiny(2);
  p.sockets = 2;  // but the default machine has one socket
  EXPECT_THROW((void)run_program(make_qmcpack(p),
                                 {.config = RuntimeConfig::LegacyCopy}),
               omp::MappingError);
}

}  // namespace
}  // namespace zc::workloads
