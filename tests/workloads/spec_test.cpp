#include "zc/workloads/spec.hpp"

#include <gtest/gtest.h>

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;
using trace::HsaCall;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::EagerMaps,
};

// Scaled-down parameter sets so tests run in milliseconds.
StencilParams tiny_stencil() {
  return {.grid_bytes = 64ULL << 20,
          .iterations = 6,
          .per_iter_compute = sim::Duration::from_us(500)};
}
LbmParams tiny_lbm() {
  return {.lattice_bytes = 32ULL << 20,
          .iterations = 6,
          .per_iter_compute = sim::Duration::from_us(300)};
}
EpParams tiny_ep() {
  return {.arena_bytes = 128ULL << 20,
          .batches = 4,
          .per_batch_compute = sim::Duration::from_us(2000)};
}
SpcParams tiny_spc() {
  return {.array_bytes = 64ULL << 20,
          .cycles = 6,
          .kernels_per_cycle = 13,
          .per_kernel_compute = sim::Duration::from_us(50)};
}
BtParams tiny_bt() {
  return {.array_bytes = 48ULL << 20,
          .cycles = 3,
          .kernels_per_cycle = 10,
          .per_kernel_compute = sim::Duration::from_us(300),
          .big_kernel_compute = sim::Duration::from_us(2000)};
}

TEST(SpecSuite, HasPaperBenchmarksInOrder) {
  const auto suite = make_spec_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "stencil");
  EXPECT_EQ(suite[1].name, "lbm");
  EXPECT_EQ(suite[2].name, "ep");
  EXPECT_EQ(suite[3].name, "spC");
  EXPECT_EQ(suite[4].name, "bt");
}

TEST(SpecStencil, ChecksumIdenticalAcrossConfigs) {
  const Program p = make_stencil(tiny_stencil());
  const double ref = run_program(p, {.config = RuntimeConfig::LegacyCopy}).checksum;
  EXPECT_DOUBLE_EQ(ref, 3.0);  // 6 iterations x 0.5
  for (const RuntimeConfig cfg : kAllConfigs) {
    EXPECT_DOUBLE_EQ(run_program(p, {.config = cfg}).checksum, ref)
        << to_string(cfg);
  }
}

TEST(SpecStencil, OverheadDecompositionMatchesTableIII) {
  const Program p = make_stencil(tiny_stencil());
  const RunResult copy = run_program(p, {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  const RunResult eager = run_program(p, {.config = RuntimeConfig::EagerMaps});

  // Copy: MM from allocations + the two big copies, no first-touch MI.
  EXPECT_GT(copy.ledger.mm_copy(), sim::Duration::zero());
  EXPECT_GT(copy.ledger.mm_alloc(), sim::Duration::zero());
  EXPECT_EQ(copy.ledger.mi(), sim::Duration::zero());
  // Implicit Z-C: no MM, large MI (GPU-first-touched output grid).
  EXPECT_EQ(zc.ledger.mm(), sim::Duration::zero());
  EXPECT_GT(zc.ledger.mi(), sim::Duration::zero());
  // Eager: prefault-only MM, no MI.
  EXPECT_GT(eager.ledger.mm_prefault(), sim::Duration::zero());
  EXPECT_EQ(eager.ledger.mm_copy(), sim::Duration::zero());
  EXPECT_EQ(eager.ledger.mi(), sim::Duration::zero());
  EXPECT_EQ(eager.kernels.total_page_faults, 0u);
}

TEST(SpecStencil, OutputGridFirstTouchDominatesZcMi) {
  // The never-host-touched output grid must fault with materialization,
  // making zc MI much larger than the resident input faults alone.
  const Program p = make_stencil(tiny_stencil());
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  const std::uint64_t grid_pages = (64ULL << 20) / (2ULL << 20);
  // Both grids fault once, plus the one page of the residual scalar.
  EXPECT_EQ(zc.kernels.total_page_faults, 2 * grid_pages + 1);
}

TEST(SpecLbm, ZeroCopySlightlyFasterCopyOfLatticeSkipped) {
  const Program p = make_lbm(tiny_lbm());
  const RunResult copy = run_program(p, {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  EXPECT_GT(copy.wall_time, zc.wall_time);
  EXPECT_GT(copy.ledger.mm_copy(), sim::Duration::zero());
  EXPECT_EQ(zc.ledger.mm_copy(), sim::Duration::zero());
}

TEST(SpecLbm, EagerPaysPerIterationPrefaults) {
  const LbmParams params = tiny_lbm();
  const Program p = make_lbm(params);
  const RunResult eager = run_program(p, {.config = RuntimeConfig::EagerMaps});
  // Two lattice maps + one scalar map per iteration, plus the two initial
  // data-region maps.
  EXPECT_GE(eager.stats.count(HsaCall::SvmAttributesSet),
            static_cast<std::uint64_t>(3 * params.iterations));
}

TEST(SpecEp, FirstTouchPenaltyMakesZeroCopySlower) {
  const Program p = make_ep(tiny_ep());
  const RunResult copy = run_program(p, {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  const RunResult eager = run_program(p, {.config = RuntimeConfig::EagerMaps});
  // The paper's 0.89 ratio: zero-copy slower than Copy on ep.
  EXPECT_GT(zc.wall_time, copy.wall_time);
  // Eager Maps recovers almost all of it.
  EXPECT_LT(eager.wall_time, zc.wall_time);
  // Copy performs no memory copies on ep beyond the scalar reductions.
  EXPECT_LT(copy.ledger.mm_copy(), sim::Duration::milliseconds(1));
  EXPECT_GT(copy.ledger.mm_alloc(), copy.ledger.mm_copy());
  // MI: only the zero-copy config pays GPU first-touch.
  EXPECT_GT(zc.ledger.mi(), sim::Duration::zero());
  EXPECT_EQ(copy.ledger.mi(), sim::Duration::zero());
  EXPECT_EQ(eager.ledger.mi(), sim::Duration::zero());
}

TEST(SpecEp, ArenaFaultsAreNonResident) {
  const EpParams params = tiny_ep();
  const Program p = make_ep(params);
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  // The arena faults page by page, plus the one page of the counts array.
  EXPECT_EQ(zc.kernels.total_page_faults,
            params.arena_bytes / (2ULL << 20) + 1);
}

TEST(SpecSpc, CopyMuchSlowerThanZeroCopy) {
  const Program p = make_spc(tiny_spc());
  const RunResult copy = run_program(p, {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  const RunResult eager = run_program(p, {.config = RuntimeConfig::EagerMaps});
  EXPECT_GT(copy.wall_time / zc.wall_time, 2.0);
  // Eager Maps is the best configuration on spC (paper: 8.10 vs 7.80).
  EXPECT_LT(eager.wall_time, zc.wall_time);
}

TEST(SpecSpc, FreshStackAddressesFaultEveryCycle) {
  const SpcParams params = tiny_spc();
  const Program p = make_spc(params);
  const RunResult zc =
      run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy});
  // Both arrays plus the fresh norm scalar fault anew on every cycle.
  const std::uint64_t pages_per_cycle =
      2 * params.array_bytes / (2ULL << 20) + 1;
  EXPECT_EQ(zc.kernels.total_page_faults,
            pages_per_cycle * static_cast<std::uint64_t>(params.cycles));
}

TEST(SpecBt, RatiosSmallerThanSpcButStillLarge) {
  const RunResult copy_spc =
      run_program(make_spc(tiny_spc()), {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc_spc = run_program(
      make_spc(tiny_spc()), {.config = RuntimeConfig::ImplicitZeroCopy});
  const RunResult copy_bt =
      run_program(make_bt(tiny_bt()), {.config = RuntimeConfig::LegacyCopy});
  const RunResult zc_bt = run_program(
      make_bt(tiny_bt()), {.config = RuntimeConfig::ImplicitZeroCopy});
  const double spc_ratio = copy_spc.wall_time / zc_spc.wall_time;
  const double bt_ratio = copy_bt.wall_time / zc_bt.wall_time;
  EXPECT_GT(bt_ratio, 1.5);
  EXPECT_GT(spc_ratio, bt_ratio);  // bt has more kernel time per cycle
}

TEST(SpecAll, ChecksumsIdenticalAcrossConfigsEverywhere) {
  struct Case {
    const char* name;
    Program program;
  };
  std::vector<Case> cases;
  cases.push_back({"stencil", make_stencil(tiny_stencil())});
  cases.push_back({"lbm", make_lbm(tiny_lbm())});
  cases.push_back({"ep", make_ep(tiny_ep())});
  cases.push_back({"spc", make_spc(tiny_spc())});
  cases.push_back({"bt", make_bt(tiny_bt())});
  for (auto& c : cases) {
    const double ref =
        run_program(c.program, {.config = RuntimeConfig::LegacyCopy}).checksum;
    for (const RuntimeConfig cfg : kAllConfigs) {
      EXPECT_DOUBLE_EQ(run_program(c.program, {.config = cfg}).checksum, ref)
          << c.name << " / " << to_string(cfg);
    }
  }
}

TEST(SpecPartitioned, FourWayShardingKeepsChecksumsAndUsesAllDevices) {
  // devices=4 splits every array into per-device shards with 1/4 the work
  // each. Every shard runs the full iteration count, so the summed checksum
  // is exactly `devices` times the single-device value — and each socket
  // must actually run kernels, all on local memory.
  struct Case {
    const char* name;
    Program whole;
    Program sharded;
  };
  StencilParams st = tiny_stencil();
  LbmParams lbm = tiny_lbm();
  EpParams ep = tiny_ep();
  std::vector<Case> cases;
  {
    StencilParams p4 = st;
    p4.devices = 4;
    cases.push_back({"stencil", make_stencil(st), make_stencil(p4)});
  }
  {
    LbmParams p4 = lbm;
    p4.devices = 4;
    cases.push_back({"lbm", make_lbm(lbm), make_lbm(p4)});
  }
  {
    EpParams p4 = ep;
    p4.devices = 4;
    cases.push_back({"ep", make_ep(ep), make_ep(p4)});
  }
  for (auto& c : cases) {
    const double ref =
        run_program(c.whole, {.config = RuntimeConfig::ImplicitZeroCopy})
            .checksum;
    const RunResult part =
        run_program(c.sharded, {.config = RuntimeConfig::ImplicitZeroCopy,
                                .sockets = 4,
                                .fabric_spec = "xgmi"});
    EXPECT_DOUBLE_EQ(part.checksum, 4.0 * ref) << c.name;
    ASSERT_EQ(part.devices.size(), 4u) << c.name;
    for (int d = 0; d < 4; ++d) {
      EXPECT_GT(part.devices[static_cast<std::size_t>(d)].counters.kernels, 0u)
          << c.name << " device " << d;
      // Local placement: shard kernels never reach across the fabric.
      EXPECT_EQ(part.devices[static_cast<std::size_t>(d)]
                    .counters.remote_kernels,
                0u)
          << c.name << " device " << d;
    }
  }
}

TEST(SpecPartitioned, ShardingPreservesSingleDeviceSchedule) {
  // devices=1 must replay the unsharded program bit-for-bit.
  StencilParams one = tiny_stencil();
  one.devices = 1;
  const RunResult a =
      run_program(make_stencil(tiny_stencil()),
                  {.config = RuntimeConfig::ImplicitZeroCopy});
  const RunResult b = run_program(
      make_stencil(one), {.config = RuntimeConfig::ImplicitZeroCopy});
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.kernels.launches, b.kernels.launches);
}

}  // namespace
}  // namespace zc::workloads
