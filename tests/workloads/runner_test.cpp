#include "zc/workloads/runner.hpp"

#include <gtest/gtest.h>

#include "zc/core/host_array.hpp"

namespace zc::workloads {
namespace {

using namespace zc::sim::literals;
using omp::RuntimeConfig;

Program trivial_program() {
  Program p;
  p.binary.name = "trivial";
  p.setup_threads = [](omp::OffloadStack& stack) {
    stack.sched().spawn("main", [&stack] {
      omp::OffloadRuntime& rt = stack.omp();
      omp::HostArray<double> x{rt, 64, "x"};
      rt.target(omp::TargetRegion{.name = "noop",
                                  .maps = {x.tofrom()},
                                  .compute = 10_us,
                                  .body = {}});
      x.release();
    });
  };
  p.finalize = [](omp::OffloadStack&) { return 42.0; };
  return p;
}

TEST(Runner, RunsAndCollectsTelemetry) {
  const RunResult r =
      run_program(trivial_program(), {.config = RuntimeConfig::LegacyCopy});
  EXPECT_EQ(r.config, RuntimeConfig::LegacyCopy);
  EXPECT_GT(r.wall_time, sim::Duration::zero());
  EXPECT_EQ(r.kernels.launches, 1u);
  EXPECT_GT(r.stats.total_calls(), 0u);
  EXPECT_DOUBLE_EQ(r.checksum, 42.0);
}

TEST(Runner, MissingSetupThrows) {
  Program p;
  EXPECT_THROW((void)run_program(p, {}), std::invalid_argument);
}

TEST(Runner, JitterMakesRunsVaryAndSeedsReproduce) {
  const Program p = trivial_program();
  RunOptions a{.config = RuntimeConfig::ImplicitZeroCopy,
               .jitter = {.sigma = 0.1},
               .seed = 5};
  const RunResult r1 = run_program(p, a);
  const RunResult r2 = run_program(p, a);
  EXPECT_EQ(r1.wall_time, r2.wall_time);  // same seed
  a.seed = 6;
  const RunResult r3 = run_program(p, a);
  EXPECT_NE(r1.wall_time, r3.wall_time);  // different seed
}

TEST(Runner, RepeatProgramUsesDistinctSeeds) {
  const Program p = trivial_program();
  const stats::RepeatedRuns runs = repeat_program(
      p,
      {.config = RuntimeConfig::ImplicitZeroCopy, .jitter = {.sigma = 0.05}},
      4);
  ASSERT_EQ(runs.times.size(), 4u);
  EXPECT_GT(runs.cov(), 0.0);
  EXPECT_GT(runs.median_time(), sim::Duration::zero());
}

TEST(Runner, KernelRecordsOptIn) {
  const Program p = trivial_program();
  omp::OffloadStack probe{
      omp::OffloadStack::machine_config_for(RuntimeConfig::ImplicitZeroCopy),
      omp::OffloadStack::program_for(RuntimeConfig::ImplicitZeroCopy, {})};
  // Default run keeps summaries only; records flag is honored.
  EXPECT_TRUE(probe.hsa().kernel_trace().keep_records());
  const RunResult off = run_program(p, {.keep_kernel_records = false});
  EXPECT_EQ(off.kernels.launches, 1u);
}

TEST(Runner, SingleApuRunsReportOneDevice) {
  const RunResult r = run_program(trivial_program(), {});
  ASSERT_EQ(r.devices.size(), 1u);
  EXPECT_EQ(r.devices[0].counters.kernels, 1u);
}

TEST(Runner, PerDeviceStatsOnAMultiApuNode) {
  Program p;
  p.binary.name = "four-way";
  p.setup_threads = [](omp::OffloadStack& stack) {
    for (int d = 0; d < 4; ++d) {
      stack.sched().spawn("omp-host-" + std::to_string(d), [&stack, d] {
        omp::OffloadRuntime& rt = stack.omp();
        const std::uint64_t bytes = 4 * stack.machine().page_bytes();
        const mem::VirtAddr buf = rt.host_alloc(
            bytes, "buf-" + std::to_string(d), /*home_socket=*/d);
        rt.host_first_touch(mem::AddrRange{buf, bytes});
        for (int i = 0; i < 3; ++i) {
          rt.target(omp::TargetRegion{
              .name = "work",
              .maps = {omp::MapEntry::tofrom(buf, bytes)},
              .compute = sim::Duration::microseconds(100 + 10 * d),
              .body = {},
              .device = d,
          });
        }
        // One deliberately misplaced launch: device (d+1)%4 reaches this
        // shard's memory over the fabric.
        rt.target(omp::TargetRegion{
            .name = "remote",
            .maps = {omp::MapEntry::tofrom(buf, bytes)},
            .compute = 100_us,
            .body = {},
            .device = (d + 1) % 4,
        });
        rt.host_free(buf);
      });
    }
  };
  p.finalize = [](omp::OffloadStack&) { return 1.0; };

  const RunResult r = run_program(p, {.config = RuntimeConfig::ImplicitZeroCopy,
                                      .keep_kernel_records = true,
                                      .sockets = 4,
                                      .fabric_spec = "xgmi"});
  ASSERT_EQ(r.devices.size(), 4u);
  for (int d = 0; d < 4; ++d) {
    const DeviceStats& ds = r.devices[static_cast<std::size_t>(d)];
    EXPECT_EQ(ds.counters.kernels, 4u) << "device " << d;  // 3 local + 1 remote
    EXPECT_EQ(ds.counters.remote_kernels, 1u) << "device " << d;
    EXPECT_GT(ds.counters.page_faults, 0u) << "device " << d;
    // Every launch on this device took at least its compute floor, and the
    // tail is no shorter than the median.
    EXPECT_GE(ds.kernel_p50_us, 100.0) << "device " << d;
    EXPECT_GE(ds.kernel_p95_us, ds.kernel_p50_us) << "device " << d;
  }
  // Buffers were freed, so final HBM occupancy is back to the image/globals
  // footprint — but the kernel records kept per-device identities.
  std::uint64_t per_device[4] = {0, 0, 0, 0};
  for (const trace::KernelRecord& k : r.kernel_records) {
    ASSERT_GE(k.device, 0);
    ASSERT_LT(k.device, 4);
    ++per_device[k.device];
  }
  for (std::uint64_t n : per_device) {
    EXPECT_EQ(n, 4u);
  }
}

TEST(Runner, KernelPercentilesNeedRecords) {
  Program p = trivial_program();
  const RunResult off = run_program(p, {.sockets = 2});
  ASSERT_EQ(off.devices.size(), 2u);
  EXPECT_EQ(off.devices[0].kernel_p50_us, 0.0);  // records not kept
  const RunResult on = run_program(p, {.keep_kernel_records = true});
  ASSERT_EQ(on.devices.size(), 1u);
  EXPECT_GE(on.devices[0].kernel_p50_us, 10.0);  // the 10us noop kernel
}

}  // namespace
}  // namespace zc::workloads
