#include "zc/workloads/runner.hpp"

#include <gtest/gtest.h>

#include "zc/core/host_array.hpp"

namespace zc::workloads {
namespace {

using namespace zc::sim::literals;
using omp::RuntimeConfig;

Program trivial_program() {
  Program p;
  p.binary.name = "trivial";
  p.setup_threads = [](omp::OffloadStack& stack) {
    stack.sched().spawn("main", [&stack] {
      omp::OffloadRuntime& rt = stack.omp();
      omp::HostArray<double> x{rt, 64, "x"};
      rt.target(omp::TargetRegion{.name = "noop",
                                  .maps = {x.tofrom()},
                                  .compute = 10_us,
                                  .body = {}});
      x.release();
    });
  };
  p.finalize = [](omp::OffloadStack&) { return 42.0; };
  return p;
}

TEST(Runner, RunsAndCollectsTelemetry) {
  const RunResult r =
      run_program(trivial_program(), {.config = RuntimeConfig::LegacyCopy});
  EXPECT_EQ(r.config, RuntimeConfig::LegacyCopy);
  EXPECT_GT(r.wall_time, sim::Duration::zero());
  EXPECT_EQ(r.kernels.launches, 1u);
  EXPECT_GT(r.stats.total_calls(), 0u);
  EXPECT_DOUBLE_EQ(r.checksum, 42.0);
}

TEST(Runner, MissingSetupThrows) {
  Program p;
  EXPECT_THROW((void)run_program(p, {}), std::invalid_argument);
}

TEST(Runner, JitterMakesRunsVaryAndSeedsReproduce) {
  const Program p = trivial_program();
  RunOptions a{.config = RuntimeConfig::ImplicitZeroCopy,
               .jitter = {.sigma = 0.1},
               .seed = 5};
  const RunResult r1 = run_program(p, a);
  const RunResult r2 = run_program(p, a);
  EXPECT_EQ(r1.wall_time, r2.wall_time);  // same seed
  a.seed = 6;
  const RunResult r3 = run_program(p, a);
  EXPECT_NE(r1.wall_time, r3.wall_time);  // different seed
}

TEST(Runner, RepeatProgramUsesDistinctSeeds) {
  const Program p = trivial_program();
  const stats::RepeatedRuns runs = repeat_program(
      p,
      {.config = RuntimeConfig::ImplicitZeroCopy, .jitter = {.sigma = 0.05}},
      4);
  ASSERT_EQ(runs.times.size(), 4u);
  EXPECT_GT(runs.cov(), 0.0);
  EXPECT_GT(runs.median_time(), sim::Duration::zero());
}

TEST(Runner, KernelRecordsOptIn) {
  const Program p = trivial_program();
  omp::OffloadStack probe{
      omp::OffloadStack::machine_config_for(RuntimeConfig::ImplicitZeroCopy),
      omp::OffloadStack::program_for(RuntimeConfig::ImplicitZeroCopy, {})};
  // Default run keeps summaries only; records flag is honored.
  EXPECT_TRUE(probe.hsa().kernel_trace().keep_records());
  const RunResult off = run_program(p, {.keep_kernel_records = false});
  EXPECT_EQ(off.kernels.launches, 1u);
}

}  // namespace
}  // namespace zc::workloads
