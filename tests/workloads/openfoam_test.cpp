#include "zc/workloads/openfoam.hpp"

#include <gtest/gtest.h>

#include "zc/core/offload_stack.hpp"

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;
using trace::HsaCall;

OpenfoamParams tiny() {
  OpenfoamParams p;
  p.cells = 1 << 14;
  p.time_steps = 2;
  p.pcg_iterations = 3;
  return p;
}

TEST(Openfoam, RunsAsUsmRegardlessOfRequestedConfig) {
  // The binary carries `requires unified_shared_memory`; in an
  // XNACK-enabled environment it always resolves to USM — it cannot be
  // "switched back" to Implicit Z-C or Eager Maps (§IV-B).
  for (const RuntimeConfig requested :
       {RuntimeConfig::UnifiedSharedMemory, RuntimeConfig::ImplicitZeroCopy,
        RuntimeConfig::EagerMaps}) {
    omp::OffloadStack stack{
        omp::OffloadStack::machine_config_for(requested),
        omp::OffloadStack::program_for(requested, make_openfoam(tiny()).binary)};
    EXPECT_EQ(stack.omp().config(), RuntimeConfig::UnifiedSharedMemory)
        << to_string(requested);
  }
}

TEST(Openfoam, NotDeployableWithoutUnifiedMemory) {
  // Legacy Copy environment = XNACK disabled: the USM binary cannot run.
  EXPECT_THROW(
      (omp::OffloadStack{
          omp::OffloadStack::machine_config_for(RuntimeConfig::LegacyCopy),
          make_openfoam(tiny()).binary}),
      omp::ConfigError);
}

TEST(Openfoam, NoMappingTrafficAtAll) {
  const RunResult r = run_program(
      make_openfoam(tiny()), {.config = RuntimeConfig::UnifiedSharedMemory});
  // Only image-load allocations/copies; zero map-driven traffic.
  EXPECT_EQ(r.stats.count(HsaCall::MemoryPoolAllocate),
            static_cast<std::uint64_t>(omp::OffloadRuntime::kImageLoadAllocs +
                                       omp::OffloadRuntime::kThreadInitAllocs));
  EXPECT_EQ(r.stats.count(HsaCall::MemoryAsyncCopy),
            static_cast<std::uint64_t>(omp::OffloadRuntime::kImageLoadCopies));
  EXPECT_EQ(r.ledger.mm(), sim::Duration::zero());
}

TEST(Openfoam, GlobalsUseIndirectionNoDeviceCopies) {
  const RunResult r = run_program(
      make_openfoam(tiny()), {.config = RuntimeConfig::UnifiedSharedMemory});
  // The relax global never triggers a DMA transfer (double indirection);
  // the host updates it between time steps and kernels see it — the run
  // completing with a nonzero checksum proves the data flow.
  EXPECT_NE(r.checksum, 0.0);
}

TEST(Openfoam, KernelsFaultOnFirstTouchOnly) {
  const RunResult r = run_program(
      make_openfoam(tiny()), {.config = RuntimeConfig::UnifiedSharedMemory});
  // Matrix + fields fault once; steady state is fault-free. With tiny()
  // everything fits in a handful of pages.
  EXPECT_GT(r.kernels.total_page_faults, 0u);
  EXPECT_LT(r.kernels.total_page_faults, 64u);
  const std::uint64_t kernels = static_cast<std::uint64_t>(
      tiny().time_steps * tiny().pcg_iterations * 3);
  EXPECT_EQ(r.kernels.launches, kernels);
}

TEST(Openfoam, DeterministicChecksum) {
  const Program p = make_openfoam(tiny());
  const RunResult a =
      run_program(p, {.config = RuntimeConfig::UnifiedSharedMemory});
  const RunResult b =
      run_program(p, {.config = RuntimeConfig::UnifiedSharedMemory});
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.wall_time, b.wall_time);
}

}  // namespace
}  // namespace zc::workloads
