// The service job flavors are the unit of work the multi-tenant service
// dispatches: each must reproduce its closed-form checksum bit-for-bit
// under every runtime configuration (the retire-path verification the
// service's zero-divergence acceptance bar rests on).
#include "zc/workloads/service_jobs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

constexpr JobFlavor kFlavors[] = {JobFlavor::Compute, JobFlavor::Stream,
                                  JobFlavor::Staged};

ServiceJobSpec spec_for(JobFlavor flavor) {
  ServiceJobSpec s;
  s.tenant = 1;
  s.id = 3;
  s.flavor = flavor;
  s.pages = 4;
  s.kernels = 3;
  return s;
}

double run_one(RuntimeConfig config, const ServiceJobSpec& spec) {
  Program program;
  program.binary.name = std::string{"svc-job-"} + to_string(spec.flavor);
  auto out = std::make_shared<double>(0.0);
  program.setup_threads = [spec, out](omp::OffloadStack& stack) {
    stack.sched().spawn("job", [&stack, spec, out] {
      *out = run_service_job(stack, spec);
    });
  };
  program.finalize = [out](omp::OffloadStack&) { return *out; };
  RunOptions opts;
  opts.config = config;
  return run_program(program, opts).checksum;
}

TEST(ServiceJobsTest, EveryFlavorMatchesClosedFormUnderEveryConfig) {
  constexpr std::uint64_t kPage = 2ULL << 20;  // THP default
  for (const JobFlavor flavor : kFlavors) {
    const ServiceJobSpec spec = spec_for(flavor);
    const double expected = service_job_checksum(spec, kPage);
    EXPECT_NE(expected, 0.0) << to_string(flavor);
    for (const RuntimeConfig config : kAllConfigs) {
      EXPECT_EQ(run_one(config, spec), expected)
          << to_string(flavor) << " under config " << static_cast<int>(config);
    }
  }
}

TEST(ServiceJobsTest, ChecksumDependsOnTenantIdAndFlavor) {
  constexpr std::uint64_t kPage = 2ULL << 20;
  const ServiceJobSpec base = spec_for(JobFlavor::Compute);
  ServiceJobSpec other = base;
  other.tenant = 2;
  EXPECT_NE(service_job_checksum(base, kPage),
            service_job_checksum(other, kPage));
  other = base;
  other.id = 4;
  EXPECT_NE(service_job_checksum(base, kPage),
            service_job_checksum(other, kPage));
  other = base;
  other.flavor = JobFlavor::Stream;
  EXPECT_NE(service_job_checksum(base, kPage),
            service_job_checksum(other, kPage));
}

TEST(ServiceJobsTest, FootprintIsWorstCaseBound) {
  constexpr std::uint64_t kPage = 2ULL << 20;
  ServiceJobSpec s = spec_for(JobFlavor::Compute);
  s.pages = 4;
  // Both sides of the single HBM are charged: host arrays + device pool
  // copies (or the Staged staging buffer). Compute and Staged carry a
  // one-page output/result array on top.
  EXPECT_EQ(job_footprint_bytes(s, kPage), 2 * 5 * kPage);
  s.flavor = JobFlavor::Staged;
  EXPECT_EQ(job_footprint_bytes(s, kPage), 2 * 5 * kPage);
  s.flavor = JobFlavor::Stream;
  EXPECT_EQ(job_footprint_bytes(s, kPage), 2 * 4 * kPage);
}

}  // namespace
}  // namespace zc::workloads
