#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "zc/hsa/runtime.hpp"

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using trace::FaultEvent;
using trace::HsaCall;

/// Stack with a fault schedule (and optionally a tiny HBM) wired in.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void make(const std::string& faults,
            std::uint64_t hbm_bytes = 128ULL << 30) {
    apu::Machine::Config config;
    config.env.ompx_apu_faults = faults;
    config.topology.hbm_bytes = hbm_bytes;
    machine_ = std::make_unique<apu::Machine>(std::move(config));
    mem_ = std::make_unique<mem::MemorySystem>(*machine_);
    rt_ = std::make_unique<Runtime>(*machine_, *mem_);
  }

  void run(std::function<void()> body) {
    machine_->sched().run_single(std::move(body));
  }

  std::unique_ptr<apu::Machine> machine_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<Runtime> rt_;
};

TEST_F(FaultInjectionTest, InjectedOomFailsExactlyTheScheduledCall) {
  make("oom@call=1");
  run([&] {
    const PoolAllocResult failed =
        rt_->try_memory_pool_allocate(machine_->page_bytes(), "a");
    EXPECT_EQ(failed.status, Status::OutOfMemory);
    EXPECT_FALSE(failed.ok());
    // The next call is outside the schedule and must succeed.
    const PoolAllocResult ok =
        rt_->try_memory_pool_allocate(machine_->page_bytes(), "b");
    EXPECT_TRUE(ok.ok());
  });
  // The failed driver round trip is still a recorded, costed call.
  EXPECT_EQ(rt_->stats().count(HsaCall::MemoryPoolAllocate), 2u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::OomInjected), 1u);
  EXPECT_FALSE(rt_->fault_trace().any(FaultEvent::HbmExhausted));
  const trace::FaultRecord& r = rt_->fault_trace().records()[0];
  EXPECT_EQ(r.bytes, machine_->page_bytes());
}

TEST_F(FaultInjectionTest, ThrowingWrapperRaisesHsaErrorOnInjectedOom) {
  make("oom@call=1");
  EXPECT_THROW(
      run([&] { (void)rt_->memory_pool_allocate(machine_->page_bytes(), "a"); }),
      HsaError);
}

TEST_F(FaultInjectionTest, OrganicCapacityOomAndRecoveryViaFree) {
  const std::uint64_t page = 2ULL << 20;
  make("", /*hbm_bytes=*/32 * page);
  run([&] {
    EXPECT_EQ(mem_->hbm_capacity(), 32 * page);
    // Over capacity: fails, charges nothing.
    EXPECT_FALSE(rt_->try_memory_pool_allocate(48 * page, "big").ok());
    EXPECT_EQ(mem_->hbm_used(0), 0u);
    // Half of it fits.
    const PoolAllocResult a = rt_->try_memory_pool_allocate(16 * page, "a");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(mem_->hbm_used(0), 16 * page);
    // Another 24 pages no longer fit...
    EXPECT_FALSE(rt_->try_memory_pool_allocate(24 * page, "b").ok());
    // ...until the first allocation is freed.
    rt_->memory_pool_free(a.addr);
    EXPECT_EQ(mem_->hbm_used(0), 0u);
    EXPECT_TRUE(rt_->try_memory_pool_allocate(24 * page, "b2").ok());
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::HbmExhausted), 2u);
  EXPECT_FALSE(rt_->fault_trace().any(FaultEvent::OomInjected));
}

TEST_F(FaultInjectionTest, EintrLeavesPageTablesUntouched) {
  make("eintr@call=1");
  run([&] {
    mem::Allocation& a = mem_->os_alloc(4 * machine_->page_bytes(), "buf");
    const mem::AddrRange range{a.base(), a.bytes()};
    const PrefaultResult failed = rt_->try_svm_attributes_set_prefault(range);
    EXPECT_EQ(failed.status, Status::Interrupted);
    // EINTR semantics: no partial page-table mutation.
    EXPECT_EQ(mem_->gpu_absent_pages(range), 4u);
    // The retry succeeds and inserts everything.
    const PrefaultResult ok = rt_->try_svm_attributes_set_prefault(range);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.outcome.inserted, 4u);
    EXPECT_EQ(mem_->gpu_absent_pages(range), 0u);
    EXPECT_EQ(rt_->fault_trace().count(FaultEvent::EintrInjected), 1u);
    EXPECT_EQ(rt_->fault_trace().records()[0].host_base, a.base().value);
  });
  // Both the failed and successful syscalls are recorded calls.
  EXPECT_EQ(rt_->stats().count(HsaCall::SvmAttributesSet), 2u);
}

TEST_F(FaultInjectionTest, EbusyIsDistinctFromEintr) {
  make("ebusy@call=1");
  run([&] {
    mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
    const PrefaultResult failed =
        rt_->try_svm_attributes_set_prefault({a.base(), a.bytes()});
    EXPECT_EQ(failed.status, Status::Busy);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::EbusyInjected), 1u);
}

TEST_F(FaultInjectionTest, PrefaultMisuseStillThrowsUnderFaultSchedule) {
  make("eintr@p=1.0");
  EXPECT_THROW(run([&] {
                 (void)rt_->try_svm_attributes_set_prefault(
                     {mem::VirtAddr{0xdead000}, 4096});
               }),
               std::invalid_argument);
}

TEST_F(FaultInjectionTest, SdmaErrorSuppressesTransferUntilResubmission) {
  make("sdma@call=1");
  run([&] {
    mem::Allocation& src = mem_->os_alloc(256, "src");
    mem::Allocation& dst = mem_->os_alloc(256, "dst");
    auto* s = mem_->space().translate_as<std::uint8_t>(src.base());
    auto* d = mem_->space().translate_as<std::uint8_t>(dst.base());
    for (int i = 0; i < 256; ++i) {
      s[i] = static_cast<std::uint8_t>(i);
      d[i] = 0;
    }
    Signal sig = rt_->memory_async_copy(dst.base(), src.base(), 256);
    rt_->signal_wait_scacquire(sig);
    EXPECT_TRUE(sig.errored());
    EXPECT_EQ(d[0], 0);  // no bytes delivered
    EXPECT_EQ(d[255], 0);
    Signal again = rt_->memory_async_copy(dst.base(), src.base(), 256);
    rt_->signal_wait_scacquire(again);
    EXPECT_FALSE(again.errored());
    EXPECT_EQ(d[0], 0);
    EXPECT_EQ(d[1], 1);
    EXPECT_EQ(d[255], 255);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::SdmaErrorInjected), 1u);
}

TEST_F(FaultInjectionTest, ReplayStormInflatesFaultStall) {
  // Two identical machines, one with a storm on the first kernel's replay
  // servicing: the faulting kernel must take measurably longer.
  const auto faulting_kernel_duration = [&](const std::string& spec) {
    make(spec);
    Duration d;
    run([&] {
      mem::Allocation& a = mem_->os_alloc(8 * machine_->page_bytes(), "buf");
      KernelLaunch k{.name = "touch",
                     .buffers = {{a.base(), a.bytes(), Access::Write}},
                     .compute = 10_us,
                     .body = {}};
      rt_->run_kernel(k);
      d = rt_->kernel_trace().records()[0].duration();
    });
    return d;
  };
  const Duration stormy = faulting_kernel_duration("xnack@call=1:x8");
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::ReplayStormInjected), 1u);
  EXPECT_DOUBLE_EQ(rt_->fault_trace().records()[0].factor, 8.0);
  const Duration calm = faulting_kernel_duration("");
  EXPECT_TRUE(rt_->fault_trace().empty());
  EXPECT_GT(stormy, calm * 4.0);
}

TEST_F(FaultInjectionTest, FaultFreeScheduleRecordsNothing) {
  make("");
  run([&] {
    (void)rt_->memory_pool_allocate(machine_->page_bytes(), "a");
    mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
    (void)rt_->svm_attributes_set_prefault({a.base(), a.bytes()});
  });
  EXPECT_TRUE(rt_->fault_trace().empty());
  EXPECT_FALSE(machine_->faults().enabled());
}

}  // namespace
}  // namespace zc::hsa
