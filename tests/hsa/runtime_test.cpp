#include "zc/hsa/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::TimePoint;
using trace::HsaCall;

class HsaRuntimeTest : public ::testing::Test {
 protected:
  HsaRuntimeTest() : machine_{apu::Machine::mi300a()}, mem_{machine_}, rt_{machine_, mem_} {}

  /// Run `body` on a single virtual host thread.
  void run(std::function<void()> body) {
    machine_.sched().run_single(std::move(body));
  }

  apu::Machine machine_;
  mem::MemorySystem mem_;
  Runtime rt_;
};

TEST_F(HsaRuntimeTest, SignalCreateIsCountedAndCheap) {
  run([&] {
    (void)rt_.signal_create();
    (void)rt_.signal_create();
  });
  EXPECT_EQ(rt_.stats().count(HsaCall::SignalCreate), 2u);
  EXPECT_LT(rt_.stats().total_latency(HsaCall::SignalCreate), 1_us);
}

TEST_F(HsaRuntimeTest, PoolAllocateCostScalesWithPages) {
  Duration small;
  Duration large;
  run([&] {
    const TimePoint t0 = machine_.sched().now();
    (void)rt_.memory_pool_allocate(machine_.page_bytes(), "small");
    small = machine_.sched().now() - t0;
    const TimePoint t1 = machine_.sched().now();
    (void)rt_.memory_pool_allocate(machine_.page_bytes() * 1024, "large");
    large = machine_.sched().now() - t1;
  });
  EXPECT_GT(large, small);
  // 1024 pages at 0.35us/page dominates the 25us base.
  EXPECT_GT(large, 300_us);
  EXPECT_EQ(rt_.stats().count(HsaCall::MemoryPoolAllocate), 2u);
  EXPECT_EQ(rt_.ledger().mm_alloc(), rt_.stats().total_latency(HsaCall::MemoryPoolAllocate));
}

TEST_F(HsaRuntimeTest, PoolMemoryNeedsNoKernelFaults) {
  run([&] {
    const mem::VirtAddr dev =
        rt_.memory_pool_allocate(4 * machine_.page_bytes(), "dev");
    KernelLaunch k{.name = "touch",
                   .buffers = {{dev, 4 * machine_.page_bytes(), Access::ReadWrite}},
                   .compute = 10_us,
                   .body = {}};
    rt_.run_kernel(k);
  });
  EXPECT_EQ(rt_.kernel_trace().summary().total_page_faults, 0u);
  EXPECT_EQ(rt_.ledger().mi(), Duration::zero());
}

TEST_F(HsaRuntimeTest, OsMemoryFaultsOnceUnderXnack) {
  run([&] {
    mem::Allocation& a = mem_.os_alloc(8 * machine_.page_bytes(), "buf");
    KernelLaunch k{.name = "init",
                   .buffers = {{a.base(), a.bytes(), Access::Write}},
                   .compute = 10_us,
                   .body = {}};
    rt_.run_kernel(k);
    rt_.run_kernel(k);  // second launch: pages already resident
  });
  const auto& recs = rt_.kernel_trace().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].page_faults, 8u);
  EXPECT_EQ(recs[1].page_faults, 0u);
  EXPECT_GT(recs[0].fault_stall, recs[1].fault_stall);
  EXPECT_GT(recs[0].duration(), recs[1].duration());
  EXPECT_GT(rt_.ledger().mi(), Duration::zero());
}

TEST_F(HsaRuntimeTest, FaultStallMatchesPerPageServiceCost) {
  run([&] {
    // Two pages CPU-resident, two untouched: the stall must mix the two
    // service costs.
    mem::Allocation& a = mem_.os_alloc(4 * machine_.page_bytes(), "buf");
    (void)mem_.host_touch(mem::AddrRange{a.base(), 2 * machine_.page_bytes()});
    KernelLaunch k{.name = "t",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = Duration::zero(),
                   .body = {}};
    rt_.run_kernel(k);
  });
  const Duration expect = machine_.fault_service_duration(true) * 2.0 +
                          machine_.fault_service_duration(false) * 2.0;
  EXPECT_EQ(rt_.kernel_trace().records()[0].fault_stall, expect);
}

TEST_F(HsaRuntimeTest, XnackDisabledThrowsOnUnmappedTouch) {
  apu::RunEnvironment env;
  env.hsa_xnack = false;
  apu::Machine machine = apu::Machine::mi300a(env);
  mem::MemorySystem mem{machine};
  Runtime rt{machine, mem};
  EXPECT_THROW(machine.sched().run_single([&] {
    mem::Allocation& a = mem.os_alloc(machine.page_bytes(), "buf");
    KernelLaunch k{.name = "bad",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = 1_us,
                   .body = {}};
    rt.run_kernel(k);
  }),
               GpuMemoryFault);
}

TEST_F(HsaRuntimeTest, XnackDisabledOkAfterPrefault) {
  apu::RunEnvironment env;
  env.hsa_xnack = false;
  apu::Machine machine = apu::Machine::mi300a(env);
  mem::MemorySystem mem{machine};
  Runtime rt{machine, mem};
  machine.sched().run_single([&] {
    mem::Allocation& a = mem.os_alloc(machine.page_bytes(), "buf");
    (void)rt.svm_attributes_set_prefault(a.range());
    KernelLaunch k{.name = "ok",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = 1_us,
                   .body = {}};
    rt.run_kernel(k);
  });
  EXPECT_EQ(rt.kernel_trace().summary().total_page_faults, 0u);
}

TEST_F(HsaRuntimeTest, PrefaultFirstExpensiveThenCheap) {
  Duration first;
  Duration second;
  run([&] {
    mem::Allocation& a = mem_.os_alloc(64 * machine_.page_bytes(), "buf");
    const TimePoint t0 = machine_.sched().now();
    const auto out1 = rt_.svm_attributes_set_prefault(a.range());
    first = machine_.sched().now() - t0;
    const TimePoint t1 = machine_.sched().now();
    const auto out2 = rt_.svm_attributes_set_prefault(a.range());
    second = machine_.sched().now() - t1;
    EXPECT_EQ(out1.inserted, 64u);
    EXPECT_EQ(out2.inserted, 0u);
    EXPECT_EQ(out2.present, 64u);
  });
  EXPECT_GT(first, second);
  // Second call is still a syscall: at least the base cost.
  EXPECT_GE(second, machine_.costs().prefault_syscall_base);
  EXPECT_EQ(rt_.stats().count(HsaCall::SvmAttributesSet), 2u);
  EXPECT_EQ(rt_.ledger().prefault_calls(), 2u);
  EXPECT_GT(rt_.ledger().mm_prefault(), Duration::zero());
}

TEST_F(HsaRuntimeTest, AsyncCopyMovesBytesFunctionally) {
  run([&] {
    mem::Allocation& src = mem_.os_alloc(256, "src");
    mem::Allocation& dst = mem_.os_alloc(256, "dst");
    auto* s = mem_.space().translate_as<std::uint8_t>(src.base());
    for (int i = 0; i < 256; ++i) {
      s[i] = static_cast<std::uint8_t>(i);
    }
    Signal sig = rt_.memory_async_copy(dst.base(), src.base(), 256);
    rt_.signal_wait_scacquire(sig);
    auto* d = mem_.space().translate_as<std::uint8_t>(dst.base());
    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(d[i], static_cast<std::uint8_t>(i));
    }
  });
  EXPECT_EQ(rt_.stats().count(HsaCall::MemoryAsyncCopy), 1u);
  EXPECT_GT(rt_.ledger().mm_copy(), Duration::zero());
}

TEST_F(HsaRuntimeTest, CopyHandlerRecordedOnlyWhenRequested) {
  run([&] {
    mem::Allocation& a = mem_.os_alloc(64, "a");
    mem::Allocation& b = mem_.os_alloc(64, "b");
    rt_.signal_wait_scacquire(rt_.memory_async_copy(b.base(), a.base(), 64, true));
    rt_.signal_wait_scacquire(rt_.memory_async_copy(b.base(), a.base(), 64, false));
  });
  EXPECT_EQ(rt_.stats().count(HsaCall::SignalAsyncHandler), 1u);
}

TEST_F(HsaRuntimeTest, LargeCopyDurationTracksBandwidth) {
  const std::uint64_t bytes = 1ULL << 30;
  TimePoint done;
  run([&] {
    mem::Allocation& src = mem_.os_alloc(bytes, "src");
    mem::Allocation& dst = mem_.os_alloc(bytes, "dst");
    Signal sig = rt_.memory_async_copy(dst.base(), src.base(), bytes);
    rt_.signal_wait_scacquire(sig);
    done = machine_.sched().now();
  });
  const double expect_s =
      static_cast<double>(bytes) / machine_.costs().copy_bandwidth_bytes_per_s;
  EXPECT_NEAR(done.since_start().sec(), expect_s, expect_s * 0.05);
}

TEST_F(HsaRuntimeTest, ZeroByteCopyRejected) {
  EXPECT_THROW(run([&] {
                 mem::Allocation& a = mem_.os_alloc(64, "a");
                 (void)rt_.memory_async_copy(a.base(), a.base(), 0);
               }),
               std::invalid_argument);
}

TEST_F(HsaRuntimeTest, KernelBodyExecutes) {
  double result = 0.0;
  run([&] {
    mem::Allocation& a = mem_.os_alloc(sizeof(double) * 8, "v");
    const mem::VirtAddr va = a.base();
    KernelLaunch init{.name = "init",
                      .buffers = {{va, a.bytes(), Access::Write}},
                      .compute = 1_us,
                      .body = [va](KernelContext& ctx) {
                        double* v = ctx.ptr<double>(va);
                        for (int i = 0; i < 8; ++i) {
                          v[i] = i + 1.0;
                        }
                      }};
    rt_.run_kernel(init);
    KernelLaunch sum{.name = "sum",
                     .buffers = {{va, a.bytes(), Access::Read}},
                     .compute = 1_us,
                     .body = [va, &result](KernelContext& ctx) {
                       const double* v = ctx.ptr<double>(va);
                       for (int i = 0; i < 8; ++i) {
                         result += v[i];
                       }
                     }};
    rt_.run_kernel(sum);
  });
  EXPECT_DOUBLE_EQ(result, 36.0);
}

TEST_F(HsaRuntimeTest, WaitLatencyAttributedToSignalWait) {
  run([&] {
    mem::Allocation& a = mem_.os_alloc(machine_.page_bytes(), "a");
    (void)mem_.prefault(a.range());  // avoid fault noise
    KernelLaunch k{.name = "long",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = 500_us,
                   .body = {}};
    rt_.run_kernel(k);
  });
  // The wait call was blocked roughly for the kernel duration.
  EXPECT_GT(rt_.stats().total_latency(HsaCall::SignalWaitScacquire), 450_us);
  EXPECT_EQ(rt_.stats().count(HsaCall::SignalWaitScacquire), 1u);
}

TEST_F(HsaRuntimeTest, TlbMissesReportedInTrace) {
  run([&] {
    const mem::VirtAddr dev =
        rt_.memory_pool_allocate(8 * machine_.page_bytes(), "dev");
    KernelLaunch k{.name = "scan",
                   .buffers = {{dev, 8 * machine_.page_bytes(), Access::Read}},
                   .compute = 1_us,
                   .body = {}};
    rt_.run_kernel(k);
    rt_.run_kernel(k);
  });
  const auto& recs = rt_.kernel_trace().records();
  EXPECT_EQ(recs[0].tlb_misses, 8u);  // cold TLB
  EXPECT_EQ(recs[1].tlb_misses, 0u);  // warm TLB (fits in capacity)
}

TEST_F(HsaRuntimeTest, CopyOverlapsKernelAcrossThreads) {
  // Thread A runs a long kernel; thread B issues a copy meanwhile. The copy
  // must ride the SDMA engine concurrently with the kernel: B's completion
  // time is far earlier than it would be if serialized after the kernel.
  const std::uint64_t bytes = 64ULL << 20;
  TimePoint kernel_done;
  TimePoint copy_done;
  auto& sched = machine_.sched();
  sched.spawn("A", [&] {
    mem::Allocation& a = mem_.os_alloc(machine_.page_bytes(), "a");
    (void)mem_.prefault(a.range());
    KernelLaunch k{.name = "long",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = Duration::milliseconds(50),
                   .body = {}};
    rt_.run_kernel(k, 0);
    kernel_done = sched.now();
  });
  sched.spawn("B", [&] {
    mem::Allocation& src = mem_.os_alloc(bytes, "src");
    mem::Allocation& dst = mem_.os_alloc(bytes, "dst");
    Signal sig = rt_.memory_async_copy(dst.base(), src.base(), bytes);
    rt_.signal_wait_scacquire(sig);
    copy_done = sched.now();
  });
  sched.run();
  EXPECT_LT(copy_done, kernel_done);  // overlapped, not serialized
}

TEST_F(HsaRuntimeTest, KernelsQueueWhenSlotsExhausted) {
  const int slots = machine_.topology().gpu_kernel_slots;
  const int kernels = slots * 2;
  std::vector<Signal> sigs;
  run([&] {
    mem::Allocation& a = mem_.os_alloc(machine_.page_bytes(), "a");
    (void)mem_.prefault(a.range());
    for (int i = 0; i < kernels; ++i) {
      KernelLaunch k{.name = "k" + std::to_string(i),
                     .buffers = {{a.base(), a.bytes(), Access::Read}},
                     .compute = Duration::milliseconds(10),
                     .body = {}};
      sigs.push_back(rt_.dispatch_kernel(k));
    }
    for (Signal& s : sigs) {
      rt_.signal_wait_scacquire(s);
    }
  });
  // Two waves of `slots` kernels each: makespan >= 2 * 10ms.
  EXPECT_GE(machine_.sched().horizon().since_start(),
            Duration::milliseconds(20));
}

TEST_F(HsaRuntimeTest, DriverContentionDelaysConcurrentPrefaults) {
  // Two threads prefault large disjoint ranges at the same time: the
  // single driver lock serializes them, so the second finishes after
  // roughly the sum of both durations.
  TimePoint done_a;
  TimePoint done_b;
  auto& sched = machine_.sched();
  const std::uint64_t bytes = 512 * machine_.page_bytes();
  sched.spawn("A", [&] {
    mem::Allocation& a = mem_.os_alloc(bytes, "a");
    (void)rt_.svm_attributes_set_prefault(a.range());
    done_a = sched.now();
  });
  sched.spawn("B", [&] {
    mem::Allocation& b = mem_.os_alloc(bytes, "b");
    (void)rt_.svm_attributes_set_prefault(b.range());
    done_b = sched.now();
  });
  sched.run();
  const Duration one = machine_.costs().prefault_syscall_base +
                       machine_.costs().prefault_insert_per_page * 512.0;
  const TimePoint later = max(done_a, done_b);
  EXPECT_GE(later.since_start(), one * 1.9);
}

TEST_F(HsaRuntimeTest, PoolFreeOfUnknownBaseThrows) {
  EXPECT_THROW(run([&] { rt_.memory_pool_free(mem::VirtAddr{0xdead0000}); }),
               std::invalid_argument);
}

TEST_F(HsaRuntimeTest, PrefaultOutsideAnyAllocationThrows) {
  EXPECT_THROW(
      run([&] {
        (void)rt_.svm_attributes_set_prefault(
            mem::AddrRange{mem::VirtAddr{0xdead0000}, 4096});
      }),
      std::invalid_argument);
}

TEST_F(HsaRuntimeTest, PrefaultStraddlingAllocationEndThrows) {
  EXPECT_THROW(run([&] {
                 mem::Allocation& a = mem_.os_alloc(4096, "small");
                 (void)rt_.svm_attributes_set_prefault(
                     mem::AddrRange{a.base(), 2 * machine_.page_bytes()});
               }),
               std::invalid_argument);
}

TEST_F(HsaRuntimeTest, CopyBetweenPoolAndHostMemoryWorksBothWays) {
  run([&] {
    mem::Allocation& host = mem_.os_alloc(256, "h");
    const mem::VirtAddr dev = rt_.memory_pool_allocate(256, "d");
    auto* h = mem_.space().translate_as<std::uint8_t>(host.base());
    for (int i = 0; i < 256; ++i) {
      h[i] = static_cast<std::uint8_t>(255 - i);
    }
    rt_.signal_wait_scacquire(rt_.memory_async_copy(dev, host.base(), 256));
    std::memset(h, 0, 256);
    rt_.signal_wait_scacquire(rt_.memory_async_copy(host.base(), dev, 256));
    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(h[i], static_cast<std::uint8_t>(255 - i));
    }
  });
}

TEST_F(HsaRuntimeTest, JitteredRunsDifferButStayDeterministicPerSeed) {
  auto wall = [](std::uint64_t seed) {
    apu::Machine machine =
        apu::Machine::mi300a({}, {.sigma = 0.05}, seed);
    mem::MemorySystem mem{machine};
    Runtime rt{machine, mem};
    machine.sched().run_single([&] {
      mem::Allocation& a = mem.os_alloc(machine.page_bytes(), "a");
      (void)mem.prefault(a.range());
      for (int i = 0; i < 32; ++i) {
        KernelLaunch k{.name = "k",
                       .buffers = {{a.base(), a.bytes(), Access::Read}},
                       .compute = Duration::from_us(20),
                       .body = {}};
        rt.run_kernel(k);
      }
    });
    return machine.sched().horizon();
  };
  EXPECT_EQ(wall(3), wall(3));
  EXPECT_NE(wall(3), wall(4));
}

TEST_F(HsaRuntimeTest, KernelBodyExceptionPropagates) {
  EXPECT_THROW(run([&] {
                 mem::Allocation& a = mem_.os_alloc(64, "a");
                 KernelLaunch k{
                     .name = "boom",
                     .buffers = {{a.base(), a.bytes(), Access::Read}},
                     .compute = 1_us,
                     .body = [](KernelContext&) {
                       throw std::runtime_error("kernel assertion");
                     }};
                 rt_.run_kernel(k);
               }),
               std::runtime_error);
}

TEST_F(HsaRuntimeTest, MachineEventLogRecordsPoolAllocations) {
  machine_.log().enable();
  run([&] { (void)rt_.memory_pool_allocate(1 << 20, "logged"); });
  const auto events = machine_.log().by_category("hsa");
  ASSERT_FALSE(events.empty());
  EXPECT_NE(events.front().text.find("pool_allocate"), std::string::npos);
}

}  // namespace
}  // namespace zc::hsa
