#include "zc/hsa/signal.hpp"

#include <gtest/gtest.h>

#include "zc/sim/scheduler.hpp"

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::Scheduler;
using sim::TimePoint;

TEST(Signal, WaitOnCompletedSignalAdvancesToCompletionTime) {
  Scheduler s;
  s.run_single([&] {
    Signal sig;
    sig.complete(s, TimePoint::zero() + 40_us);
    const Duration blocked = sig.wait(s);
    EXPECT_EQ(s.now(), TimePoint::zero() + 40_us);
    EXPECT_EQ(blocked, 40_us);
  });
}

TEST(Signal, WaitOnPastCompletionIsFree) {
  Scheduler s;
  s.run_single([&] {
    Signal sig;
    sig.complete(s, TimePoint::zero() + 5_us);
    s.advance(20_us);
    const Duration blocked = sig.wait(s);
    EXPECT_EQ(blocked, Duration::zero());
    EXPECT_EQ(s.now(), TimePoint::zero() + 20_us);
  });
}

TEST(Signal, CrossThreadWaitBeforePost) {
  // A thread can wait on a signal no operation has been bound to yet; it
  // blocks until another thread completes it.
  Scheduler s;
  Signal sig;
  TimePoint woke;
  s.spawn("waiter", [&] {
    const Duration blocked = sig.wait(s);
    woke = s.now();
    EXPECT_EQ(blocked, 70_us);
  });
  s.spawn("poster", [&] {
    s.advance(70_us);
    sig.complete(s, s.now());
  });
  s.run();
  EXPECT_EQ(woke, TimePoint::zero() + 70_us);
}

TEST(Signal, HandlesAreSharedReferences) {
  Scheduler s;
  s.run_single([&] {
    Signal a;
    Signal b = a;  // same underlying state
    a.complete(s, TimePoint::zero() + 9_us);
    EXPECT_TRUE(b.is_complete());
    EXPECT_EQ(b.complete_at(), TimePoint::zero() + 9_us);
  });
}

TEST(Signal, MultipleWaitersAllReleased) {
  Scheduler s;
  Signal sig;
  int released = 0;
  for (int t = 0; t < 4; ++t) {
    s.spawn("w" + std::to_string(t), [&] {
      (void)sig.wait(s);
      ++released;
      EXPECT_GE(s.now(), TimePoint::zero() + 15_us);
    });
  }
  s.spawn("poster", [&] {
    s.advance(15_us);
    sig.complete(s, s.now());
  });
  s.run();
  EXPECT_EQ(released, 4);
}

TEST(Signal, UnpostedSignalDeadlocksLoudly) {
  Scheduler s;
  Signal sig;
  s.spawn("stuck", [&] { (void)sig.wait(s); });
  EXPECT_THROW(s.run(), sim::SimError);
}

}  // namespace
}  // namespace zc::hsa
