#include "zc/hsa/signal.hpp"

#include <gtest/gtest.h>

#include "zc/sim/scheduler.hpp"

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::Scheduler;
using sim::TimePoint;

TEST(Signal, WaitOnCompletedSignalAdvancesToCompletionTime) {
  Scheduler s;
  s.run_single([&] {
    Signal sig;
    sig.complete(s, TimePoint::zero() + 40_us);
    const Duration blocked = sig.wait(s);
    EXPECT_EQ(s.now(), TimePoint::zero() + 40_us);
    EXPECT_EQ(blocked, 40_us);
  });
}

TEST(Signal, WaitOnPastCompletionIsFree) {
  Scheduler s;
  s.run_single([&] {
    Signal sig;
    sig.complete(s, TimePoint::zero() + 5_us);
    s.advance(20_us);
    const Duration blocked = sig.wait(s);
    EXPECT_EQ(blocked, Duration::zero());
    EXPECT_EQ(s.now(), TimePoint::zero() + 20_us);
  });
}

TEST(Signal, CrossThreadWaitBeforePost) {
  // A thread can wait on a signal no operation has been bound to yet; it
  // blocks until another thread completes it.
  Scheduler s;
  Signal sig;
  TimePoint woke;
  s.spawn("waiter", [&] {
    const Duration blocked = sig.wait(s);
    woke = s.now();
    EXPECT_EQ(blocked, 70_us);
  });
  s.spawn("poster", [&] {
    s.advance(70_us);
    sig.complete(s, s.now());
  });
  s.run();
  EXPECT_EQ(woke, TimePoint::zero() + 70_us);
}

TEST(Signal, HandlesAreSharedReferences) {
  Scheduler s;
  s.run_single([&] {
    Signal a;
    Signal b = a;  // same underlying state
    a.complete(s, TimePoint::zero() + 9_us);
    EXPECT_TRUE(b.is_complete());
    EXPECT_EQ(b.complete_at(), TimePoint::zero() + 9_us);
  });
}

TEST(Signal, MultipleWaitersAllReleased) {
  Scheduler s;
  Signal sig;
  int released = 0;
  for (int t = 0; t < 4; ++t) {
    s.spawn("w" + std::to_string(t), [&] {
      (void)sig.wait(s);
      ++released;
      EXPECT_GE(s.now(), TimePoint::zero() + 15_us);
    });
  }
  s.spawn("poster", [&] {
    s.advance(15_us);
    sig.complete(s, s.now());
  });
  s.run();
  EXPECT_EQ(released, 4);
}

TEST(Signal, UnpostedSignalDeadlocksLoudly) {
  Scheduler s;
  Signal sig;
  s.spawn("stuck", [&] { (void)sig.wait(s); });
  EXPECT_THROW(s.run(), sim::SimError);
}

TEST(Signal, DeadlockDiagnosticNamesTheStuckSignal) {
  Scheduler s;
  Signal sig;
  sig.set_name("kernel:vmc");
  s.spawn("stuck", [&] { (void)sig.wait(s); });
  try {
    s.run();
    FAIL() << "expected deadlock";
  } catch (const sim::SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'stuck' on Signal(kernel:vmc)"), std::string::npos)
        << what;
  }
}

TEST(Signal, ErrorPayloadReachesAPreBlockedWaiter) {
  // The awaited-before-bound cross-thread path: a waiter blocks on an
  // unbound signal, then the operation completes *with an error payload* —
  // the waiter must wake at the completion time and observe errored().
  Scheduler s;
  Signal sig;
  bool saw_error = false;
  TimePoint woke;
  s.spawn("waiter", [&] {
    const Duration blocked = sig.wait(s);
    saw_error = sig.errored();
    woke = s.now();
    EXPECT_EQ(blocked, 35_us);
  });
  s.spawn("poster", [&] {
    s.advance(35_us);
    EXPECT_FALSE(sig.is_complete());  // the waiter got there first
    sig.complete_error(s, s.now());
  });
  s.run();
  EXPECT_TRUE(saw_error);
  EXPECT_FALSE(sig.aborted());
  EXPECT_EQ(woke, TimePoint::zero() + 35_us);
}

TEST(Signal, AbortReachesAPreBlockedWaiter) {
  // Same path for a watchdog abort: the pre-blocked waiter wakes and must
  // observe aborted() (and not errored()) so it can decide to replay.
  Scheduler s;
  Signal sig;
  bool saw_abort = false;
  bool saw_error = true;
  s.spawn("waiter", [&] {
    (void)sig.wait(s);
    saw_abort = sig.aborted();
    saw_error = sig.errored();
  });
  s.spawn("watchdog", [&] {
    s.advance(200_us);
    sig.complete_abort(s, s.now());
  });
  s.run();
  EXPECT_TRUE(saw_abort);
  EXPECT_FALSE(saw_error);
}

TEST(Signal, ErrorPayloadSharedAcrossMultiplePreBlockedWaiters) {
  Scheduler s;
  Signal sig;
  int saw = 0;
  for (int t = 0; t < 3; ++t) {
    s.spawn("w" + std::to_string(t), [&] {
      (void)sig.wait(s);
      if (sig.errored()) {
        ++saw;
      }
    });
  }
  s.spawn("poster", [&] {
    s.advance(5_us);
    sig.complete_error(s, s.now());
  });
  s.run();
  EXPECT_EQ(saw, 3);
}

TEST(Signal, WaitForOnUnboundSignalTimesOut) {
  Scheduler s;
  Signal sig;
  sig.set_name("stuck-op");
  s.spawn("waiter", [&] {
    EXPECT_FALSE(sig.wait_for(s, 50_us));
    EXPECT_EQ(s.now(), TimePoint::zero() + 50_us);
    EXPECT_FALSE(sig.is_complete());
  });
  s.run();
}

TEST(Signal, WaitForOnUnboundSignalCompletedInTime) {
  Scheduler s;
  Signal sig;
  s.spawn("waiter", [&] {
    EXPECT_TRUE(sig.wait_for(s, 50_us));
    EXPECT_EQ(s.now(), TimePoint::zero() + 20_us);
  });
  s.spawn("poster", [&] {
    s.advance(20_us);
    sig.complete(s, s.now());
  });
  s.run();
}

TEST(Signal, WaitForOnBoundSignalRespectsTheDeadline) {
  Scheduler s;
  s.run_single([&] {
    Signal late;
    late.complete(s, TimePoint::zero() + 100_us);
    EXPECT_FALSE(late.wait_for(s, 30_us));  // bound past the deadline
    EXPECT_EQ(s.now(), TimePoint::zero() + 30_us);

    Signal exact;
    exact.complete(s, TimePoint::zero() + 60_us);
    EXPECT_TRUE(exact.wait_for(s, 30_us));  // completion exactly at deadline
    EXPECT_EQ(s.now(), TimePoint::zero() + 60_us);
  });
}

}  // namespace
}  // namespace zc::hsa
