// The per-device watchdog: hang injections leave completion signals
// forever unbound, the watchdog fiber detects them past the
// OMPX_APU_WATCHDOG budget, tears the queue down, and completes the signal
// aborted so waiters can replay. Without a watchdog, a hang is a loud
// simulation deadlock naming the stuck signal.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "zc/hsa/runtime.hpp"

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::TimePoint;
using trace::FaultEvent;

/// Stack with a fault schedule and a watchdog budget wired in.
class WatchdogTest : public ::testing::Test {
 protected:
  void make(const std::string& faults, const std::string& watchdog) {
    apu::Machine::Config config;
    config.env.ompx_apu_faults = faults;
    if (!watchdog.empty()) {
      config.env.watchdog = apu::parse_watchdog(watchdog);
    }
    machine_ = std::make_unique<apu::Machine>(std::move(config));
    mem_ = std::make_unique<mem::MemorySystem>(*machine_);
    rt_ = std::make_unique<Runtime>(*machine_, *mem_);
  }

  void run(std::function<void()> body) {
    machine_->sched().run_single(std::move(body));
  }

  std::unique_ptr<apu::Machine> machine_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<Runtime> rt_;
};

TEST_F(WatchdogTest, KernelHangIsAbortedAtTheBudget) {
  make("kernel_hang@call=1", "200us");
  run([&] {
    mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
    KernelLaunch k{.name = "vmc",
                   .buffers = {{a.base(), a.bytes(), Access::Write}},
                   .compute = 10_us,
                   .body = {}};
    const TimePoint submitted = machine_->sched().now();
    Signal sig = rt_->dispatch_kernel(k);
    EXPECT_FALSE(sig.is_complete());
    rt_->signal_wait_scacquire(sig);
    EXPECT_TRUE(sig.aborted());
    EXPECT_FALSE(sig.errored());
    // The abort cannot land before the deadline; teardown+rebuild are
    // charged on the device's driver timeline on top of it.
    EXPECT_GE(machine_->sched().now(), submitted + 200_us);
  });
  EXPECT_EQ(rt_->watchdog().trips(), 1u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::KernelHangInjected), 1u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::WatchdogTrip), 1u);
}

TEST_F(WatchdogTest, SdmaStallSuppressesBytesUntilResubmission) {
  make("sdma_stall@call=1", "100us");
  run([&] {
    mem::Allocation& src = mem_->os_alloc(256, "src");
    mem::Allocation& dst = mem_->os_alloc(256, "dst");
    auto* s = mem_->space().translate_as<std::uint8_t>(src.base());
    auto* d = mem_->space().translate_as<std::uint8_t>(dst.base());
    for (int i = 0; i < 256; ++i) {
      s[i] = static_cast<std::uint8_t>(i);
      d[i] = 0;
    }
    Signal sig = rt_->memory_async_copy(dst.base(), src.base(), 256);
    rt_->signal_wait_scacquire(sig);
    EXPECT_TRUE(sig.aborted());
    EXPECT_EQ(d[255], 0);  // the stalled copy delivered nothing
    Signal again = rt_->memory_async_copy(dst.base(), src.base(), 256);
    rt_->signal_wait_scacquire(again);
    EXPECT_FALSE(again.aborted());
    EXPECT_EQ(d[1], 1);
    EXPECT_EQ(d[255], 255);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::SdmaStallInjected), 1u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::WatchdogTrip), 1u);
}

TEST_F(WatchdogTest, PrefaultHangSurfacesAsTimedOut) {
  make("prefault_hang@call=1", "150us");
  run([&] {
    mem::Allocation& a = mem_->os_alloc(4 * machine_->page_bytes(), "buf");
    const mem::AddrRange range{a.base(), a.bytes()};
    const PrefaultResult hung = rt_->try_svm_attributes_set_prefault(range);
    EXPECT_EQ(hung.status, Status::TimedOut);
    // EINTR-like semantics: the aborted syscall mutated no page tables.
    EXPECT_EQ(mem_->gpu_absent_pages(range), 4u);
    const PrefaultResult ok = rt_->try_svm_attributes_set_prefault(range);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.outcome.inserted, 4u);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::PrefaultHangInjected), 1u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::WatchdogTrip), 1u);
}

TEST_F(WatchdogTest, XnackLivelockIsAbortedLikeAHungKernel) {
  make("xnack_livelock@call=1", "300us");
  run([&] {
    mem::Allocation& a = mem_->os_alloc(2 * machine_->page_bytes(), "buf");
    KernelLaunch k{.name = "touch",
                   .buffers = {{a.base(), a.bytes(), Access::Write}},
                   .compute = 5_us,
                   .body = {}};
    Signal sig = rt_->dispatch_kernel(k);
    rt_->signal_wait_scacquire(sig);
    EXPECT_TRUE(sig.aborted());
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::XnackLivelockInjected), 1u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::WatchdogTrip), 1u);
}

TEST_F(WatchdogTest, TripListenerSeesDeviceAndTime) {
  make("kernel_hang@call=1", "50us");
  int devices_seen = 0;
  TimePoint tripped_at;
  rt_->watchdog().set_trip_listener([&](int device, TimePoint now) {
    ++devices_seen;
    EXPECT_EQ(device, 0);
    tripped_at = now;
  });
  run([&] {
    mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
    KernelLaunch k{.name = "vmc",
                   .buffers = {{a.base(), a.bytes(), Access::Read}},
                   .compute = 1_us,
                   .body = {}};
    Signal sig = rt_->dispatch_kernel(k);
    rt_->signal_wait_scacquire(sig);
  });
  EXPECT_EQ(devices_seen, 1);
  EXPECT_GE(tripped_at, TimePoint::zero() + 50_us);
}

TEST_F(WatchdogTest, NoWatchdogHangDeadlocksNamingTheStuckSignal) {
  make("kernel_hang@call=1", "");
  try {
    run([&] {
      mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
      KernelLaunch k{.name = "vmc",
                     .buffers = {{a.base(), a.bytes(), Access::Read}},
                     .compute = 1_us,
                     .body = {}};
      Signal sig = rt_->dispatch_kernel(k);
      rt_->signal_wait_scacquire(sig);
    });
    FAIL() << "expected deadlock";
  } catch (const sim::SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Signal(kernel:vmc)"), std::string::npos) << what;
  }
  // The hang was still injected and recorded; nothing tripped.
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::KernelHangInjected), 1u);
  EXPECT_EQ(rt_->watchdog().trips(), 0u);
}

TEST_F(WatchdogTest, FaultFreeRunNeverSpawnsTheWatchdogFiber) {
  // Healthy async work binds its completion time at submit, so nothing
  // registers with the watchdog: a watchdog-enabled fault-free run must
  // finish at exactly the same virtual time as a watchdog-free one.
  const auto horizon = [&](const std::string& watchdog) {
    make("", watchdog);
    run([&] {
      mem::Allocation& src = mem_->os_alloc(4096, "src");
      mem::Allocation& dst = mem_->os_alloc(4096, "dst");
      Signal sig = rt_->memory_async_copy(dst.base(), src.base(), 4096);
      rt_->signal_wait_scacquire(sig);
      mem::Allocation& a = mem_->os_alloc(machine_->page_bytes(), "buf");
      KernelLaunch k{.name = "touch",
                     .buffers = {{a.base(), a.bytes(), Access::Write}},
                     .compute = 10_us,
                     .body = {}};
      rt_->run_kernel(k);
    });
    EXPECT_TRUE(rt_->fault_trace().empty());
    return machine_->sched().horizon();
  };
  const TimePoint with = horizon("100us");
  const TimePoint without = horizon("");
  EXPECT_EQ(with, without);
}

TEST_F(WatchdogTest, TwoConcurrentHangsBothTrip) {
  // Two stalled copies from two host threads: the watchdog fiber must
  // service both deadlines, not exit after the first.
  make("sdma_stall@call=1..2", "80us");
  sim::Scheduler& s = machine_->sched();
  int aborted = 0;
  for (int t = 0; t < 2; ++t) {
    s.spawn("host" + std::to_string(t), [&, t] {
      mem::Allocation& src = mem_->os_alloc(512, "src" + std::to_string(t));
      mem::Allocation& dst = mem_->os_alloc(512, "dst" + std::to_string(t));
      Signal sig = rt_->memory_async_copy(dst.base(), src.base(), 512);
      rt_->signal_wait_scacquire(sig);
      if (sig.aborted()) {
        ++aborted;
      }
    });
  }
  s.run();
  EXPECT_EQ(aborted, 2);
  EXPECT_EQ(rt_->watchdog().trips(), 2u);
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::WatchdogTrip), 2u);
}

}  // namespace
}  // namespace zc::hsa
