// HSA-level behavior of the memory-pressure subsystem: watermark reclaim
// on the pool-allocation and dispatch paths, access-counter auto-migration,
// and end-to-end injection of the four pressure fault tokens.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "zc/hsa/runtime.hpp"

namespace zc::hsa {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using trace::FaultEvent;
using trace::HsaCall;

constexpr std::uint64_t kPage = 2ULL << 20;

/// Stack with pressure handling, a small HBM, and an optional fault
/// schedule wired in.
class PressureHsaTest : public ::testing::Test {
 protected:
  void make(const std::string& faults, std::uint64_t hbm_pages = 32,
            apu::PressureMode pressure = apu::PressureMode::Watermarks,
            bool automigrate = false,
            apu::ThpMode thp = apu::ThpMode::On) {
    apu::Machine::Config config;
    config.env.ompx_apu_faults = faults;
    config.env.ompx_apu_pressure = pressure;
    config.env.ompx_apu_automigrate.enabled = automigrate;
    config.env.thp = thp;
    config.topology.sockets = 2;
    config.topology.hbm_bytes = hbm_pages * kPage;
    machine_ = std::make_unique<apu::Machine>(std::move(config));
    mem_ = std::make_unique<mem::MemorySystem>(*machine_);
    mem_->set_debug_invariants(true);
    rt_ = std::make_unique<Runtime>(*machine_, *mem_);
  }

  void run(std::function<void()> body) {
    machine_->sched().run_single(std::move(body));
  }

  /// A minimal zero-copy kernel over `a`.
  void launch(mem::Allocation& a, const char* name = "k") {
    KernelLaunch k{.name = name,
                   .buffers = {{a.base(), a.bytes(), Access::ReadWrite}},
                   .compute = 10_us,
                   .body = {}};
    rt_->run_kernel(k);
  }

  std::unique_ptr<apu::Machine> machine_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::unique_ptr<Runtime> rt_;
};

TEST_F(PressureHsaTest, PoolAllocationReclaimsColdPagesInsteadOfFailing) {
  make("", /*hbm_pages=*/32);
  run([&] {
    // 16 zero-copy pages become HBM-resident on socket 0...
    mem::Allocation& zc = mem_->os_alloc(16 * kPage, "zc", /*home_socket=*/0);
    mem_->host_touch(zc.range());
    ASSERT_EQ(mem_->hbm_used(0), 16 * kPage);
    // ...so a 24-page pool request exceeds capacity. Under watermarks the
    // driver spills cold zero-copy pages to DDR and the allocation lands.
    const PoolAllocResult r = rt_->try_memory_pool_allocate(24 * kPage, "pool");
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r.reclaimed, 8u);
    EXPECT_GE(mem_->ddr_used(), 8 * kPage);
    EXPECT_LE(mem_->hbm_used(0), 32 * kPage);
    EXPECT_NO_THROW(mem_->check_accounting());
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::PoolReclaimed), 1u);
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::PagesEvicted));
  EXPECT_FALSE(rt_->fault_trace().any(FaultEvent::HbmExhausted));
  EXPECT_GE(rt_->device_counters()[0].evicted_pages, 8u);
}

TEST_F(PressureHsaTest, PoolAllocationStillFailsHardWithPressureOff) {
  make("", /*hbm_pages=*/32, apu::PressureMode::Off);
  run([&] {
    mem::Allocation& zc = mem_->os_alloc(16 * kPage, "zc", 0);
    mem_->host_touch(zc.range());
    const PoolAllocResult r = rt_->try_memory_pool_allocate(24 * kPage, "pool");
    EXPECT_EQ(r.status, Status::OutOfMemory);
    EXPECT_EQ(r.reclaimed, 0u);
    EXPECT_EQ(mem_->ddr_used(), 0u);
  });
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::HbmExhausted));
  EXPECT_FALSE(rt_->fault_trace().any(FaultEvent::PoolReclaimed));
}

TEST_F(PressureHsaTest, ReclaimingAllocationCostsMoreThanACleanOne) {
  make("", /*hbm_pages=*/64);
  Duration clean;
  Duration reclaiming;
  run([&] {
    const sim::TimePoint t0 = machine_->sched().now();
    const PoolAllocResult a = rt_->try_memory_pool_allocate(24 * kPage, "a");
    clean = machine_->sched().now() - t0;
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(a.reclaimed, 0u);
    mem::Allocation& zc = mem_->os_alloc(32 * kPage, "zc", 0);
    mem_->host_touch(zc.range());
    const sim::TimePoint t1 = machine_->sched().now();
    const PoolAllocResult b = rt_->try_memory_pool_allocate(24 * kPage, "b");
    reclaiming = machine_->sched().now() - t1;
    ASSERT_TRUE(b.ok());
    ASSERT_GT(b.reclaimed, 0u);
  });
  // The spill (per-page eviction + SDMA writeback) is billed to the caller
  // that triggered it, on top of the identical base allocation cost.
  EXPECT_GT(reclaiming, clean);
}

TEST_F(PressureHsaTest, DispatchWatermarkReclaimDrainsOccupancy) {
  make("", /*hbm_pages=*/32);
  run([&] {
    // Fill HBM to ~94% with CPU-resident zero-copy pages, then dispatch.
    mem::Allocation& cold = mem_->os_alloc(28 * kPage, "cold", 0);
    mem_->host_touch(cold.range());
    mem::Allocation& hot = mem_->os_alloc(2 * kPage, "hot", 0);
    mem_->host_touch(hot.range());
    ASSERT_GT(mem_->hbm_used(0), (32 * kPage * 9) / 10);
    launch(hot);
    // The post-fault watermark check reclaims down toward the low water
    // mark (80% of capacity), batch-bounded.
    EXPECT_LE(mem_->hbm_used(0), (32 * kPage * 9) / 10);
    EXPECT_GT(mem_->ddr_used(), 0u);
    EXPECT_NO_THROW(mem_->check_accounting());
  });
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::PagesEvicted));
  EXPECT_GT(rt_->device_counters()[0].evicted_pages, 0u);
}

TEST_F(PressureHsaTest, GpuFaultPromotesSpilledPagesWithAnEvent) {
  make("", /*hbm_pages=*/32);
  run([&] {
    mem::Allocation& zc = mem_->os_alloc(16 * kPage, "zc", 0);
    mem_->host_touch(zc.range());
    const PoolAllocResult pool =
        rt_->try_memory_pool_allocate(24 * kPage, "pool");
    ASSERT_TRUE(pool.ok());
    ASSERT_GT(mem_->ddr_used(), 0u);
    // Free the pool so the promotion has somewhere to land, then fault the
    // spilled buffer back in from the GPU.
    rt_->memory_pool_free(pool.addr);
    launch(zc);
    EXPECT_EQ(mem_->ddr_used(), 0u);
    EXPECT_NO_THROW(mem_->check_accounting());
  });
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::PagesPromoted));
  EXPECT_GT(rt_->device_counters()[0].promoted_pages, 0u);
}

TEST_F(PressureHsaTest, AccessCountersMigrateARemotelyHammeredPage) {
  make("", /*hbm_pages=*/1024, apu::PressureMode::Watermarks,
       /*automigrate=*/true);
  run([&] {
    mem::Allocation& a = mem_->os_alloc(kPage, "hammered", /*home_socket=*/0);
    mem_->host_touch(a.range(), 0);
    ASSERT_EQ(mem_->hbm_used(0), kPage);
    // Four remote touches from socket 1 reach the default threshold.
    for (int i = 0; i < 4; ++i) {
      mem_->host_touch(a.range(), 1);
    }
    // The next dispatch samples the counters and retires the candidate.
    mem::Allocation& other = mem_->os_alloc(kPage, "other", 0);
    launch(other);
    EXPECT_EQ(mem_->hbm_used(1), kPage);
    EXPECT_EQ(mem_->hbm_used(0), kPage);  // only `other` remains
    EXPECT_NO_THROW(mem_->check_accounting());
  });
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::AutoMigrated));
  EXPECT_EQ(rt_->device_counters()[1].migrated_pages, 1u);
}

TEST_F(PressureHsaTest, InjectedCounterLossForgetsThePendingCandidate) {
  make("counter_loss@call=1", /*hbm_pages=*/1024,
       apu::PressureMode::Watermarks, /*automigrate=*/true);
  run([&] {
    mem::Allocation& a = mem_->os_alloc(kPage, "hammered", 0);
    mem_->host_touch(a.range(), 0);
    for (int i = 0; i < 4; ++i) {
      mem_->host_touch(a.range(), 1);
    }
    mem::Allocation& other = mem_->os_alloc(kPage, "other", 0);
    launch(other);
    // The loss hit before the candidate was consumed: no migration.
    EXPECT_EQ(mem_->hbm_used(1), 0u);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::CounterLossInjected), 1u);
  EXPECT_FALSE(rt_->fault_trace().any(FaultEvent::AutoMigrated));
  EXPECT_EQ(rt_->device_counters()[1].migrated_pages, 0u);
}

TEST_F(PressureHsaTest, InjectedMigrationStallStillMigratesButSlower) {
  make("migration_stall@call=1:x10", /*hbm_pages=*/1024,
       apu::PressureMode::Watermarks, /*automigrate=*/true);
  run([&] {
    mem::Allocation& a = mem_->os_alloc(kPage, "hammered", 0);
    mem_->host_touch(a.range(), 0);
    for (int i = 0; i < 4; ++i) {
      mem_->host_touch(a.range(), 1);
    }
    mem::Allocation& other = mem_->os_alloc(kPage, "other", 0);
    launch(other);
    EXPECT_EQ(mem_->hbm_used(1), kPage);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::MigrationStallInjected), 1u);
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::AutoMigrated));
}

TEST_F(PressureHsaTest, InjectedEvictStormInflatesTheReclaimCost) {
  make("evict_storm@call=1:x5", /*hbm_pages=*/32);
  run([&] {
    mem::Allocation& zc = mem_->os_alloc(16 * kPage, "zc", 0);
    mem_->host_touch(zc.range());
    const PoolAllocResult r = rt_->try_memory_pool_allocate(24 * kPage, "pool");
    // The storm slows the reclaim down; it does not break it.
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.reclaimed, 0u);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::EvictStormInjected), 1u);
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::PoolReclaimed));
}

TEST_F(PressureHsaTest, InjectedThpSplitStormShattersTheLaunchBuffers) {
  make("thp_split_storm@call=1", /*hbm_pages=*/1024,
       apu::PressureMode::Watermarks, /*automigrate=*/false,
       apu::ThpMode::Dynamic);
  run([&] {
    mem::Allocation& a = mem_->os_alloc(8 * kPage, "buf", 0);
    mem_->host_touch(a.range());
    ASSERT_EQ(mem_->split_spans(a.range()), 0u);
    launch(a);
    EXPECT_EQ(mem_->split_spans(a.range()), 8u);
    // A second dispatch is outside the schedule and splits nothing more.
    launch(a, "k2");
    EXPECT_EQ(mem_->split_spans(a.range()), 8u);
  });
  EXPECT_EQ(rt_->fault_trace().count(FaultEvent::ThpSplitStormInjected), 1u);
  EXPECT_TRUE(rt_->fault_trace().any(FaultEvent::ThpSplit));
}

TEST_F(PressureHsaTest, SplitSpansRaiseTlbAndFaultPricingOnLaterLaunches) {
  make("", /*hbm_pages=*/1024, apu::PressureMode::Watermarks,
       /*automigrate=*/false, apu::ThpMode::Dynamic);
  Duration intact;
  Duration shattered;
  run([&] {
    mem::Allocation& a = mem_->os_alloc(8 * kPage, "a", 0);
    mem_->host_touch(a.range());
    launch(a, "warm");  // fault in once; spans intact
    const sim::TimePoint t0 = machine_->sched().now();
    launch(a, "intact");
    intact = machine_->sched().now() - t0;
    // Shatter the spans and evict nothing: the only delta is TLB pricing.
    mem_->thp_split_range(a.range());
    ASSERT_EQ(mem_->split_spans(a.range()), 8u);
    const sim::TimePoint t1 = machine_->sched().now();
    launch(a, "shattered");
    shattered = machine_->sched().now() - t1;
  });
  EXPECT_GT(shattered, intact);
}

}  // namespace
}  // namespace zc::hsa
