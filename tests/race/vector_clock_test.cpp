// The vector-clock algebra the detector's happens-before relation is built
// on: join/tick/leq/covers and the FastTrack epoch compression invariants.

#include "zc/race/vector_clock.hpp"

#include <gtest/gtest.h>

namespace zc::race {
namespace {

TEST(VectorClock, AbsentComponentsReadAsZero) {
  VectorClock c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.of(0), 0u);
  EXPECT_EQ(c.of(42), 0u);
}

TEST(VectorClock, SetKeepsTheMaximum) {
  VectorClock c;
  c.set(1, 5);
  c.set(1, 3);  // components never decrease
  EXPECT_EQ(c.of(1), 5u);
  c.set(1, 9);
  EXPECT_EQ(c.of(1), 9u);
}

TEST(VectorClock, TickIncrementsOneComponent) {
  VectorClock c;
  c.tick(2);
  c.tick(2);
  EXPECT_EQ(c.of(2), 2u);
  EXPECT_EQ(c.of(0), 0u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(VectorClock, JoinIsComponentwiseMax) {
  VectorClock a;
  a.set(0, 3);
  a.set(1, 1);
  VectorClock b;
  b.set(1, 4);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.of(0), 3u);
  EXPECT_EQ(a.of(1), 4u);
  EXPECT_EQ(a.of(2), 2u);
}

TEST(VectorClock, LeqDefinesHappensBefore) {
  VectorClock a;
  a.set(0, 2);
  VectorClock b;
  b.set(0, 3);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  // Incomparable frontiers: concurrent.
  VectorClock c;
  c.set(1, 5);
  EXPECT_FALSE(b.leq(c));
  EXPECT_FALSE(c.leq(b));
}

TEST(VectorClock, CoversComparesOneEpochInConstantTime) {
  VectorClock c;
  c.set(3, 7);
  EXPECT_TRUE(c.covers(Epoch{3, 7}));
  EXPECT_TRUE(c.covers(Epoch{3, 1}));
  EXPECT_FALSE(c.covers(Epoch{3, 8}));
  EXPECT_FALSE(c.covers(Epoch{4, 1}));  // unseen slot is at zero
}

TEST(VectorClock, InvalidEpochIsNeverCovered) {
  VectorClock c;
  c.set(0, 1);
  EXPECT_FALSE(c.covers(Epoch{}));
  EXPECT_FALSE(Epoch{}.valid());
  EXPECT_TRUE((Epoch{0, 0}).valid());
}

TEST(VectorClock, RenderIsDeterministicAndSorted) {
  VectorClock c;
  c.set(2, 7);
  c.set(0, 3);
  EXPECT_EQ(c.render(), "{0:3, 2:7}");
  EXPECT_EQ(VectorClock{}.render(), "{}");
}

TEST(VectorClock, ForkJoinRoundTripOrdersChildAfterParentPrefix) {
  // The spawn protocol: child = parent's frontier + {child:1}, parent
  // ticks. Work the parent does after the fork is NOT covered by the
  // child; everything before is.
  VectorClock parent;
  parent.set(0, 4);
  VectorClock child = parent;
  child.set(1, 1);
  parent.tick(0);  // post-fork parent work at epoch {0:5}
  EXPECT_TRUE(child.covers(Epoch{0, 4}));
  EXPECT_FALSE(child.covers(Epoch{0, 5}));
  // Join (thread join / signal wait) restores coverage.
  child.join(parent);
  EXPECT_TRUE(child.covers(Epoch{0, 5}));
}

}  // namespace
}  // namespace zc::race
