// Regression harness for the PR-1 PresentTable bug: a faithful replica of
// the pre-fix runtime logic (lookup-then-insert and refcount updates with
// no lock) annotated with race::on_read/on_write. The detector must flag it
// under every stress seed — the racy interleaving does not need to manifest
// — and the mutex-guarded fixed version must be clean under the same seeds.

#include <gtest/gtest.h>

#include <string>

#include "zc/core/mapping.hpp"
#include "zc/race/api.hpp"
#include "zc/race/detector.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::race {
namespace {

using sim::Duration;
using sim::Scheduler;

constexpr std::uint64_t kPage = 2ULL << 20;

/// The pre-PR-1 target_data_begin/end sequence: presence lookup, insert on
/// miss, refcount bump — straight onto the shared table, optionally under a
/// lock. Accesses are annotated at the same grain the real runtime uses
/// (the table as one logical variable).
class PresentTableShim {
 public:
  PresentTableShim(Scheduler& sched, bool locked)
      : sched_(sched), locked_(locked) {}

  void map_enter(mem::AddrRange host) {
    if (locked_) {
      sim::LockGuard lock{mutex_, sched_};
      enter_unlocked(host);
    } else {
      enter_unlocked(host);
    }
  }

  void map_exit(mem::AddrRange host) {
    if (locked_) {
      sim::LockGuard lock{mutex_, sched_};
      exit_unlocked(host);
    } else {
      exit_unlocked(host);
    }
  }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  void enter_unlocked(mem::AddrRange host) {
    race::on_read(sched_, &table_, sizeof(table_), "PresentTable(shim)/lookup");
    omp::PresentEntry* e = table_.lookup(host.base);
    if (e == nullptr) {
      race::on_write(sched_, &table_, sizeof(table_),
                     "PresentTable(shim)/insert");
      e = &table_.insert(host, host.base);
    }
    race::on_write(sched_, &table_, sizeof(table_),
                   "PresentTable(shim)/refcount++");
    ++e->refcount;
  }

  void exit_unlocked(mem::AddrRange host) {
    race::on_read(sched_, &table_, sizeof(table_), "PresentTable(shim)/lookup");
    omp::PresentEntry* e = table_.lookup(host.base);
    ASSERT_NE(e, nullptr);
    race::on_write(sched_, &table_, sizeof(table_),
                   "PresentTable(shim)/refcount--");
    if (--e->refcount == 0) {
      race::on_write(sched_, &table_, sizeof(table_),
                     "PresentTable(shim)/erase");
      table_.erase(host.base);
    }
  }

  Scheduler& sched_;
  bool locked_;
  sim::Mutex mutex_{"present-table-shim"};
  omp::PresentTable table_;
};

void run_mappers(Scheduler& s, PresentTableShim& shim) {
  // Two host threads map the same buffer, overlap, and unmap — the exact
  // shape of concurrent `target data` regions over a shared table.
  const mem::AddrRange buf{mem::VirtAddr{4 * kPage}, kPage};
  for (int t = 0; t < 2; ++t) {
    s.spawn("mapper" + std::to_string(t), [&s, &shim, buf, t] {
      s.advance(Duration::microseconds(3 * t));
      shim.map_enter(buf);
      s.advance(Duration::microseconds(10));
      shim.map_exit(buf);
    });
  }
  s.run();
}

TEST(PresentTableRace, UnlockedShimIsFlaggedUnderEveryStressSeed) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Scheduler s;
    s.enable_stress(seed);
    Detector d{Detector::Mode::Report, kPage};
    d.attach(s);
    PresentTableShim shim{s, /*locked=*/false};
    run_mappers(s, shim);
    EXPECT_GE(d.trace().count(trace::RaceKind::Field), 1u) << "seed " << seed;
    const trace::RaceReport& r = d.trace().records().front();
    EXPECT_NE(r.what.find("PresentTable(shim)"), std::string::npos);
  }
}

TEST(PresentTableRace, LockedShimIsCleanUnderTheSameSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Scheduler s;
    s.enable_stress(seed);
    Detector d{Detector::Mode::Report, kPage};
    d.attach(s);
    PresentTableShim shim{s, /*locked=*/true};
    run_mappers(s, shim);
    EXPECT_TRUE(d.trace().empty()) << "seed " << seed;
    EXPECT_EQ(shim.size(), 0u);  // refcounts balanced, table drained
  }
}

TEST(PresentTableRace, UnlockedShimIsAlsoFlaggedWithoutStress) {
  // Happens-before detection does not depend on stress yields at all.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  PresentTableShim shim{s, /*locked=*/false};
  run_mappers(s, shim);
  EXPECT_GE(d.trace().count(trace::RaceKind::Field), 1u);
}

}  // namespace
}  // namespace zc::race
