// Page-granularity host/GPU race checking at the hook level: a device task
// forks from its dispatcher, its page accesses are concurrent with the
// dispatching thread's subsequent host touches until someone acquires the
// task's completion signal, and in-queue dependence edges order task chains
// that the host never waits on.

#include <gtest/gtest.h>

#include <string>

#include "zc/hsa/signal.hpp"
#include "zc/race/detector.hpp"
#include "zc/sim/hooks.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::race {
namespace {

using sim::Duration;
using sim::Scheduler;

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(PageRace, HostWriteDuringInFlightKernelRaces) {
  // The canonical zero-copy bug: dispatch a kernel that writes pages 0..3,
  // then touch page 1 from the host without waiting for completion.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    ASSERT_NE(h, nullptr);
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:axpy", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/true, "kernel:axpy(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    // No wait on sig: the host touch is unordered with the kernel's write.
    h->on_host_pages(1, 1, /*is_write=*/true, "host_touch('x')");
  });
  ASSERT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  EXPECT_EQ(r.what, "page@" + std::to_string(kPage) + "[" +
                        std::to_string(kPage) + "]");
  EXPECT_NE(r.first.actor.find("kernel:axpy@dev0"), std::string::npos);
  EXPECT_EQ(r.second.site, "host_touch('x')");
}

TEST(PageRace, SignalWaitOrdersKernelBeforeHostTouch) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:axpy", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/true, "kernel:axpy(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    sig.wait(s);  // completion edge: task happens-before everything after
    h->on_host_pages(0, 4, /*is_write=*/true, "host_touch('x')");
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, HostWriteBeforeDispatchIsOrderedByTheFork) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    h->on_host_pages(0, 4, /*is_write=*/true, "host-init('x')");
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:reads-x", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/false, "kernel:reads-x(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    sig.wait(s);
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, ConcurrentKernelReadsDoNotRace) {
  // Two kernels from two host threads reading the same pages: read-read.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  for (int t = 0; t < 2; ++t) {
    s.spawn("host" + std::to_string(t), [&s, t] {
      sim::ConcurrencyHooks* h = s.hooks();
      hsa::Signal sig;
      const int task = h->on_task_begin("kernel:r" + std::to_string(t), 0);
      h->on_task_pages(task, 0, 8, /*is_write=*/false, "kernel(r)");
      h->on_task_end(task, sig.id());
      sig.complete(s, s.now());
      sig.wait(s);
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, KernelsFromDifferentThreadsWritingSamePageRace) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  for (int t = 0; t < 2; ++t) {
    s.spawn("host" + std::to_string(t), [&s, t] {
      sim::ConcurrencyHooks* h = s.hooks();
      hsa::Signal sig;
      const int task = h->on_task_begin("kernel:w" + std::to_string(t), 0);
      h->on_task_pages(task, 5, 1, /*is_write=*/true, "kernel(w)");
      h->on_task_end(task, sig.id());
      sig.complete(s, s.now());
      sig.wait(s);  // each thread waits on its own kernel only
    });
  }
  s.run();
  EXPECT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
}

TEST(PageRace, InQueueDependenceEdgeOrdersChainedKernels) {
  // target_nowait chains kernels by timestamp without a host-side wait;
  // the dependence signal handed to dispatch gives the consumer task a
  // happens-before edge from the producer task.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal produced;
    const int producer = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(producer, 0, 2, /*is_write=*/true, "produce(buf)");
    h->on_task_end(producer, produced.id());
    produced.complete(s, s.now());
    // Consumer dispatched with `produced` as an in-queue dependence; the
    // host never waits on `produced` itself.
    hsa::Signal consumed;
    const int consumer = h->on_task_begin("kernel:consume", 0);
    h->on_task_acquire(consumer, produced.id());
    h->on_task_pages(consumer, 0, 2, /*is_write=*/false, "consume(buf)");
    h->on_task_end(consumer, consumed.id());
    consumed.complete(s, s.now());
    consumed.wait(s);
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, MissingDependenceEdgeIsARace) {
  // The same chain without the dependence edge: producer write and
  // consumer read are unordered. One page -> exactly one report (pages are
  // poisoned individually).
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal produced;
    const int producer = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(producer, 0, 1, /*is_write=*/true, "produce(buf)");
    h->on_task_end(producer, produced.id());
    produced.complete(s, s.now());
    hsa::Signal consumed;
    const int consumer = h->on_task_begin("kernel:consume", 0);
    h->on_task_pages(consumer, 0, 1, /*is_write=*/false, "consume(buf)");
    h->on_task_end(consumer, consumed.id());
    consumed.complete(s, s.now());
    consumed.wait(s);
  });
  EXPECT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
}

}  // namespace
}  // namespace zc::race
