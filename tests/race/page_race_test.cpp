// Page-granularity host/GPU race checking at the hook level: a device task
// forks from its dispatcher, its page accesses are concurrent with the
// dispatching thread's subsequent host touches until someone acquires the
// task's completion signal, and in-queue dependence edges order task chains
// that the host never waits on.

#include <gtest/gtest.h>

#include <string>

#include "zc/hsa/signal.hpp"
#include "zc/race/detector.hpp"
#include "zc/sim/hooks.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::race {
namespace {

using sim::Duration;
using sim::Scheduler;

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(PageRace, HostWriteDuringInFlightKernelRaces) {
  // The canonical zero-copy bug: dispatch a kernel that writes pages 0..3,
  // then touch page 1 from the host without waiting for completion.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    ASSERT_NE(h, nullptr);
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:axpy", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/true, "kernel:axpy(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    // No wait on sig: the host touch is unordered with the kernel's write.
    h->on_host_pages(1, 1, /*is_write=*/true, "host_touch('x')");
  });
  ASSERT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  EXPECT_EQ(r.what, "page@" + std::to_string(kPage) + "[" +
                        std::to_string(kPage) + "]");
  EXPECT_NE(r.first.actor.find("kernel:axpy@dev0"), std::string::npos);
  EXPECT_EQ(r.second.site, "host_touch('x')");
}

TEST(PageRace, SignalWaitOrdersKernelBeforeHostTouch) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:axpy", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/true, "kernel:axpy(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    sig.wait(s);  // completion edge: task happens-before everything after
    h->on_host_pages(0, 4, /*is_write=*/true, "host_touch('x')");
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, HostWriteBeforeDispatchIsOrderedByTheFork) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    h->on_host_pages(0, 4, /*is_write=*/true, "host-init('x')");
    hsa::Signal sig;
    const int task = h->on_task_begin("kernel:reads-x", 0);
    h->on_task_pages(task, 0, 4, /*is_write=*/false, "kernel:reads-x(x)");
    h->on_task_end(task, sig.id());
    sig.complete(s, s.now());
    sig.wait(s);
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, ConcurrentKernelReadsDoNotRace) {
  // Two kernels from two host threads reading the same pages: read-read.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  for (int t = 0; t < 2; ++t) {
    s.spawn("host" + std::to_string(t), [&s, t] {
      sim::ConcurrencyHooks* h = s.hooks();
      hsa::Signal sig;
      const int task = h->on_task_begin("kernel:r" + std::to_string(t), 0);
      h->on_task_pages(task, 0, 8, /*is_write=*/false, "kernel(r)");
      h->on_task_end(task, sig.id());
      sig.complete(s, s.now());
      sig.wait(s);
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, KernelsFromDifferentThreadsWritingSamePageRace) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  for (int t = 0; t < 2; ++t) {
    s.spawn("host" + std::to_string(t), [&s, t] {
      sim::ConcurrencyHooks* h = s.hooks();
      hsa::Signal sig;
      const int task = h->on_task_begin("kernel:w" + std::to_string(t), 0);
      h->on_task_pages(task, 5, 1, /*is_write=*/true, "kernel(w)");
      h->on_task_end(task, sig.id());
      sig.complete(s, s.now());
      sig.wait(s);  // each thread waits on its own kernel only
    });
  }
  s.run();
  EXPECT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
}

TEST(PageRace, InQueueDependenceEdgeOrdersChainedKernels) {
  // target_nowait chains kernels by timestamp without a host-side wait;
  // the dependence signal handed to dispatch gives the consumer task a
  // happens-before edge from the producer task.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal produced;
    const int producer = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(producer, 0, 2, /*is_write=*/true, "produce(buf)");
    h->on_task_end(producer, produced.id());
    produced.complete(s, s.now());
    // Consumer dispatched with `produced` as an in-queue dependence; the
    // host never waits on `produced` itself.
    hsa::Signal consumed;
    const int consumer = h->on_task_begin("kernel:consume", 0);
    h->on_task_acquire(consumer, produced.id());
    h->on_task_pages(consumer, 0, 2, /*is_write=*/false, "consume(buf)");
    h->on_task_end(consumer, consumed.id());
    consumed.complete(s, s.now());
    consumed.wait(s);
  });
  EXPECT_TRUE(d.trace().empty());
}

TEST(PageRace, MissingDependenceEdgeIsARace) {
  // The same chain without the dependence edge: producer write and
  // consumer read are unordered. One page -> exactly one report (pages are
  // poisoned individually).
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  s.run_single([&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal produced;
    const int producer = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(producer, 0, 1, /*is_write=*/true, "produce(buf)");
    h->on_task_end(producer, produced.id());
    produced.complete(s, s.now());
    hsa::Signal consumed;
    const int consumer = h->on_task_begin("kernel:consume", 0);
    h->on_task_pages(consumer, 0, 1, /*is_write=*/false, "consume(buf)");
    h->on_task_end(consumer, consumed.id());
    consumed.complete(s, s.now());
    consumed.wait(s);
  });
  EXPECT_EQ(d.trace().count(trace::RaceKind::Page), 1u);
}

TEST(PageRace, InterApuCopyWithoutCompletionEdgeRaces) {
  // Multi-APU pipeline, missing edge: device 0 produces src pages, one host
  // thread copies them to a buffer homed on device 1, and a second host
  // thread dispatches a consumer kernel on device 1 without acquiring the
  // copy's completion signal. The consumer's reads are unordered with the
  // copy's destination writes.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  hsa::Signal copied;
  s.spawn("producer", [&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal done;
    const int k = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(k, 0, 4, /*is_write=*/true, "produce(src)");
    h->on_task_end(k, done.id());
    done.complete(s, s.now());
    done.wait(s);  // copy reads src only after the producer finished
    h->on_host_pages(0, 4, /*is_write=*/false, "dma-copy-read('src')");
    h->on_host_pages(8, 4, /*is_write=*/true, "dma-copy-write('dst')");
    copied.complete(s, s.now());
  });
  s.spawn("consumer", [&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal done;
    const int k = h->on_task_begin("kernel:consume", 1);
    h->on_task_pages(k, 8, 4, /*is_write=*/false, "consume(dst)");
    h->on_task_end(k, done.id());
    done.complete(s, s.now());
    done.wait(s);
  });
  s.run();
  EXPECT_GE(d.trace().count(trace::RaceKind::Page), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  // One side is the copy's destination write, the other device 1's kernel.
  const bool copy_involved =
      r.first.site.find("dma-copy-write") != std::string::npos ||
      r.second.site.find("dma-copy-write") != std::string::npos;
  const bool dev1_involved =
      r.first.actor.find("@dev1") != std::string::npos ||
      r.second.actor.find("@dev1") != std::string::npos;
  EXPECT_TRUE(copy_involved);
  EXPECT_TRUE(dev1_involved);
}

TEST(PageRace, InterApuCopyCompletionSignalOrdersDevices) {
  // Same pipeline with the edge: the consumer task acquires the inter-APU
  // copy's completion signal (an in-queue dependence), so the copy's
  // destination writes happen-before device 1's reads — across devices.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  hsa::Signal copied;
  s.spawn("producer", [&] {
    sim::ConcurrencyHooks* h = s.hooks();
    hsa::Signal done;
    const int k = h->on_task_begin("kernel:produce", 0);
    h->on_task_pages(k, 0, 4, /*is_write=*/true, "produce(src)");
    h->on_task_end(k, done.id());
    done.complete(s, s.now());
    done.wait(s);
    h->on_host_pages(0, 4, /*is_write=*/false, "dma-copy-read('src')");
    h->on_host_pages(8, 4, /*is_write=*/true, "dma-copy-write('dst')");
    copied.complete(s, s.now());
  });
  s.spawn("consumer", [&] {
    sim::ConcurrencyHooks* h = s.hooks();
    copied.wait(s);  // block until the inter-APU copy completed
    hsa::Signal done;
    const int k = h->on_task_begin("kernel:consume", 1);
    h->on_task_acquire(k, copied.id());
    h->on_task_pages(k, 8, 4, /*is_write=*/false, "consume(dst)");
    h->on_task_end(k, done.id());
    done.complete(s, s.now());
    done.wait(s);
  });
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

}  // namespace
}  // namespace zc::race
