// Lock-order-cycle analysis: the detector builds a held->acquired edge
// graph across the whole run and reports a cycle the moment the closing
// edge appears — including on schedules where the ABBA pair never actually
// deadlocks because the two threads held the locks at different times.

#include <gtest/gtest.h>

#include <string>

#include "zc/race/detector.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::race {
namespace {

using sim::Duration;
using sim::Scheduler;

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(LockOrder, AbbaCycleIsReportedOnANonDeadlockingSchedule) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Mutex a{"lock-a"};
  sim::Mutex b{"lock-b"};
  s.spawn("t0", [&] {
    // Acquires a -> b and releases both long before t1 starts: no
    // deadlock ever manifests on this schedule.
    sim::LockGuard la{a, s};
    sim::LockGuard lb{b, s};
    s.advance(Duration::microseconds(1));
  });
  s.spawn("t1", [&] {
    s.advance(Duration::microseconds(100));
    sim::LockGuard lb{b, s};
    sim::LockGuard la{a, s};
  });
  s.run();
  ASSERT_EQ(d.trace().count(trace::RaceKind::LockOrder), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  EXPECT_NE(r.message.find("potential deadlock"), std::string::npos);
  EXPECT_NE(r.message.find("lock-a"), std::string::npos);
  EXPECT_NE(r.message.find("lock-b"), std::string::npos);
  // Both edges are named: the closing acquisition and the counterexample
  // that ran in the opposite order earlier.
  EXPECT_NE(r.second.site.find("t1"), std::string::npos);
  EXPECT_NE(r.first.site.find("t0"), std::string::npos);
}

TEST(LockOrder, ConsistentNestingIsClean) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Mutex a{"outer"};
  sim::Mutex b{"inner"};
  for (int t = 0; t < 3; ++t) {
    s.spawn("t" + std::to_string(t), [&] {
      sim::LockGuard la{a, s};
      sim::LockGuard lb{b, s};
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(LockOrder, ThreeLockRotationFormsOneCycle) {
  // a->b, b->c, c->a: the third thread's nested acquisition closes a
  // three-party cycle, reported once with all participants named.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Mutex a{"rot-a"};
  sim::Mutex b{"rot-b"};
  sim::Mutex c{"rot-c"};
  struct Pair {
    sim::Mutex* outer;
    sim::Mutex* inner;
  };
  const Pair pairs[] = {{&a, &b}, {&b, &c}, {&c, &a}};
  int idx = 0;
  for (const Pair& p : pairs) {
    s.spawn("rot" + std::to_string(idx), [&s, p, idx] {
      s.advance(Duration::microseconds(10 * idx));
      sim::LockGuard outer{*p.outer, s};
      sim::LockGuard inner{*p.inner, s};
    });
    ++idx;
  }
  s.run();
  ASSERT_EQ(d.trace().count(trace::RaceKind::LockOrder), 1u);
  const std::string& msg = d.trace().records().front().message;
  EXPECT_NE(msg.find("rot-a"), std::string::npos);
  EXPECT_NE(msg.find("rot-b"), std::string::npos);
  EXPECT_NE(msg.find("rot-c"), std::string::npos);
}

TEST(LockOrder, DuplicateCyclesAreReportedOnce) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Mutex a{"dup-a"};
  sim::Mutex b{"dup-b"};
  for (int round = 0; round < 3; ++round) {
    s.spawn("fwd" + std::to_string(round), [&s, &a, &b, round] {
      s.advance(Duration::microseconds(20 * round));
      sim::LockGuard la{a, s};
      sim::LockGuard lb{b, s};
    });
    s.spawn("rev" + std::to_string(round), [&s, &a, &b, round] {
      s.advance(Duration::microseconds(10 + 20 * round));
      sim::LockGuard lb{b, s};
      sim::LockGuard la{a, s};
    });
  }
  s.run();
  EXPECT_EQ(d.trace().count(trace::RaceKind::LockOrder), 1u);
}

}  // namespace
}  // namespace zc::race
