// The FastTrack-style happens-before detector: unsynchronized conflicting
// accesses race regardless of the schedule that actually ran; every sync
// primitive's release/acquire edge restores order; reports are
// deterministic, and a poisoned variable yields exactly one report per run.

#include "zc/race/detector.hpp"

#include <gtest/gtest.h>

#include <string>

#include "zc/race/api.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"

namespace zc::race {
namespace {

using sim::Duration;
using sim::Scheduler;

constexpr std::uint64_t kPage = 2ULL << 20;

TEST(Detector, UnsynchronizedWritesRaceOnEverySchedule) {
  // No interleaving needs to manifest the bug: two writes with no
  // happens-before path are a race even when the cooperative schedule ran
  // them back to back.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int shared = 0;
  for (int t = 0; t < 2; ++t) {
    s.spawn("writer" + std::to_string(t), [&] {
      race::on_write(s, &shared, sizeof(shared), "shared-counter");
      ++shared;
    });
  }
  s.run();
  ASSERT_EQ(d.trace().count(trace::RaceKind::Field), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  EXPECT_EQ(r.what, "shared-counter");
  EXPECT_TRUE(r.first.is_write);
  EXPECT_TRUE(r.second.is_write);
  EXPECT_NE(r.first.actor, r.second.actor);
  EXPECT_NE(r.message.find("unordered"), std::string::npos);
}

TEST(Detector, PoisoningYieldsExactlyOneReportPerVariable) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int shared = 0;
  for (int t = 0; t < 4; ++t) {
    s.spawn("w" + std::to_string(t), [&] {
      for (int i = 0; i < 8; ++i) {
        race::on_write(s, &shared, sizeof(shared), "hot-field");
      }
    });
  }
  s.run();
  EXPECT_EQ(d.trace().size(), 1u);
}

TEST(Detector, MutexOrdersCriticalSections) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Mutex m{"guard"};
  int shared = 0;
  for (int t = 0; t < 3; ++t) {
    s.spawn("locked" + std::to_string(t), [&] {
      sim::LockGuard lock{m, s};
      race::on_write(s, &shared, sizeof(shared), "guarded-field");
      ++shared;
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
  EXPECT_EQ(shared, 3);
}

TEST(Detector, ReadReadIsNeverARace) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  const int shared = 7;
  for (int t = 0; t < 3; ++t) {
    s.spawn("reader" + std::to_string(t), [&] {
      race::on_read(s, &shared, sizeof(shared), "shared-input");
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, UnorderedReadVsWriteRaces) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int shared = 0;
  s.spawn("reader", [&] {
    race::on_read(s, &shared, sizeof(shared), "field/read-site");
  });
  s.spawn("writer", [&] {
    s.advance(Duration::microseconds(1));
    race::on_write(s, &shared, sizeof(shared), "field/write-site");
  });
  s.run();
  ASSERT_EQ(d.trace().size(), 1u);
  const trace::RaceReport& r = d.trace().records().front();
  EXPECT_NE(r.first.is_write, r.second.is_write);
}

TEST(Detector, LatchReleaseAcquireOrdersProducerConsumer) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Latch ready;
  int payload = 0;
  s.spawn("producer", [&] {
    race::on_write(s, &payload, sizeof(payload), "payload");
    payload = 42;
    ready.set(s);
  });
  s.spawn("consumer", [&] {
    ready.wait(s);
    race::on_read(s, &payload, sizeof(payload), "payload");
    EXPECT_EQ(payload, 42);
  });
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, SpawnEdgeOrdersParentBeforeChildButNotSiblings) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int parent_field = 0;
  int sibling_field = 0;
  s.spawn("parent", [&] {
    race::on_write(s, &parent_field, sizeof(int), "parent-field");
    // Child sees the parent's pre-fork write: ordered.
    s.spawn("child", [&] {
      race::on_read(s, &parent_field, sizeof(int), "parent-field");
      race::on_write(s, &sibling_field, sizeof(int), "sibling-field");
    });
    // Siblings are concurrent with each other.
    s.spawn("sibling", [&] {
      race::on_write(s, &sibling_field, sizeof(int), "sibling-field");
    });
  });
  s.run();
  EXPECT_EQ(d.trace().count(trace::RaceKind::Field), 1u);
  EXPECT_EQ(d.trace().records().front().what, "sibling-field");
}

TEST(Detector, BarrierOrdersPhases) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  sim::Barrier bar{2};
  int phase1 = 0;
  s.spawn("a", [&] {
    race::on_write(s, &phase1, sizeof(int), "phase1-field");
    bar.arrive_and_wait(s);
  });
  s.spawn("b", [&] {
    bar.arrive_and_wait(s);
    race::on_write(s, &phase1, sizeof(int), "phase1-field");
  });
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, MonitorBracketsOrderLikeALock) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int counter = 0;
  for (int t = 0; t < 3; ++t) {
    s.spawn("mm" + std::to_string(t), [&] {
      race::MonitorGuard mm{s, &counter};
      race::on_write(s, &counter, sizeof(int), "monitored-counter");
      ++counter;
    });
  }
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, AtomicStoreLoadPublishes) {
  // The classic message-passing pattern: data write, release-store flag,
  // acquire-load flag, data read. The data accesses are ordered through
  // the atomic even though the flag itself is never access-checked.
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  int data = 0;
  int flag = 0;
  s.spawn("publisher", [&] {
    race::on_write(s, &data, sizeof(int), "published-data");
    data = 1;
    race::atomic_store(s, &flag);
  });
  s.spawn("subscriber", [&] {
    s.advance(Duration::microseconds(5));
    race::atomic_load(s, &flag);
    race::on_read(s, &data, sizeof(int), "published-data");
  });
  s.run();
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, RaceTrackedWrapperReportsItsSite) {
  Scheduler s;
  Detector d{Detector::Mode::Report, kPage};
  d.attach(s);
  RaceTracked<int> tracked{"tracked-state", 0};
  for (int t = 0; t < 2; ++t) {
    s.spawn("t" + std::to_string(t), [&] { ++tracked.write(s); });
  }
  s.run();
  ASSERT_EQ(d.trace().size(), 1u);
  EXPECT_EQ(d.trace().records().front().what, "tracked-state");
  EXPECT_EQ(tracked.unchecked(), 2);
}

TEST(Detector, AbortModeThrowsRaceErrorByDefault) {
  Scheduler s;
  Detector d{Detector::Mode::Abort, kPage};
  d.attach(s);
  int shared = 0;
  for (int t = 0; t < 2; ++t) {
    s.spawn("t" + std::to_string(t), [&] {
      race::on_write(s, &shared, sizeof(int), "aborting-field");
    });
  }
  EXPECT_THROW(s.run(), RaceError);
  EXPECT_EQ(d.trace().size(), 1u);
}

TEST(Detector, AbortHandlerReplacesTheThrow) {
  Scheduler s;
  Detector d{Detector::Mode::Abort, kPage};
  d.attach(s);
  std::string seen;
  d.set_abort_handler(
      [&seen](const trace::RaceReport& r) { seen = r.message; });
  int shared = 0;
  for (int t = 0; t < 2; ++t) {
    s.spawn("t" + std::to_string(t), [&] {
      race::on_write(s, &shared, sizeof(int), "handled-field");
    });
  }
  s.run();
  EXPECT_NE(seen.find("handled-field"), std::string::npos);
}

TEST(Detector, ReportsAreIdenticalAcrossStressSeeds) {
  // The detector is schedule-independent for this program: every seed
  // produces the same single report text (modulo nothing).
  std::string first_message;
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Scheduler s;
    s.enable_stress(seed);
    Detector d{Detector::Mode::Report, kPage};
    d.attach(s);
    int shared = 0;
    for (int t = 0; t < 2; ++t) {
      s.spawn("w" + std::to_string(t), [&] {
        race::on_write(s, &shared, sizeof(int), "seeded-field");
      });
    }
    s.run();
    ASSERT_EQ(d.trace().size(), 1u) << "seed " << seed;
    if (first_message.empty()) {
      first_message = d.trace().records().front().message;
    } else {
      EXPECT_EQ(d.trace().records().front().message, first_message)
          << "seed " << seed;
    }
  }
}

TEST(Detector, QuiescentAccessesOutsideThreadsAreIgnored) {
  Scheduler s;
  Detector d{Detector::Mode::Abort, kPage};
  d.attach(s);
  int shared = 0;
  // Pre-run configuration and post-run snapshots happen outside any
  // virtual thread; the detector must not see (or abort on) them.
  race::on_write(s, &shared, sizeof(int), "quiescent");
  s.run_single([&] { race::on_write(s, &shared, sizeof(int), "quiescent"); });
  race::on_read(s, &shared, sizeof(int), "quiescent");
  EXPECT_TRUE(d.trace().empty());
}

TEST(Detector, GuardedByAccessesStayCleanUnderStress) {
  // GuardedBy::get asserts the lock (throwing deterministically on an
  // unguarded access) and is exempt from detector stamping: the mutex's
  // own release/acquire edges already order every critical section, so
  // the detector sees the lock traffic but no spurious access events —
  // a correctly guarded field stays clean under any seed.
  for (const std::uint64_t seed : {1ULL, 7ULL}) {
    Scheduler s;
    s.enable_stress(seed);
    Detector d{Detector::Mode::Abort, kPage};
    d.attach(s);
    sim::Mutex m{"state-mutex"};
    sim::GuardedBy<int> state{m, "guarded-state"};
    for (int t = 0; t < 3; ++t) {
      s.spawn("t" + std::to_string(t), [&] {
        sim::LockGuard lock{m, s};
        ++state.get(s);
      });
    }
    s.run();
    EXPECT_TRUE(d.trace().empty());
  }
}

}  // namespace
}  // namespace zc::race
