// Unit tests of the timing-free dataflow passes over hand-built offload
// IR: every finding kind has a positive and a negative case, and both the
// findings and the race partition are deterministic functions of the IR
// (canonically ordered, address-free).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "zc/check/analyzer.hpp"

namespace zc::check {
namespace {

constexpr std::uint64_t kPage = 4096;

/// Hand-built IR in the same canonical shape `Recorder::build` produces:
/// threads sorted by name, buffers sorted by base, ordinals assigned in
/// per-thread program order.
struct IrBuilder {
  OffloadIR ir;

  IrBuilder() { ir.page_bytes = kPage; }

  mem::AddrRange buffer(const std::string& name, std::uint64_t base,
                        std::uint64_t bytes,
                        const std::string& thread = "t0",
                        BufKind kind = BufKind::Host) {
    IrBuffer b;
    b.name = name;
    b.label = name;
    b.range = mem::AddrRange{mem::VirtAddr{base}, bytes};
    b.kind = kind;
    b.thread = thread;
    ir.buffers.push_back(std::move(b));
    return mem::AddrRange{mem::VirtAddr{base}, bytes};
  }

  void op(const std::string& thread, IrOp o) {
    auto it = std::find_if(ir.threads.begin(), ir.threads.end(),
                           [&](const ThreadStream& t) {
                             return t.thread == thread;
                           });
    if (it == ir.threads.end()) {
      ir.threads.push_back(ThreadStream{thread, {}});
      it = ir.threads.end() - 1;
    }
    o.ordinal = it->ops.size();
    it->ops.push_back(std::move(o));
  }

  [[nodiscard]] Analysis run(
      omp::RuntimeConfig config = omp::RuntimeConfig::ImplicitZeroCopy) {
    std::sort(ir.buffers.begin(), ir.buffers.end(),
              [](const IrBuffer& a, const IrBuffer& b) {
                return a.range.base.value < b.range.base.value;
              });
    std::sort(ir.threads.begin(), ir.threads.end(),
              [](const ThreadStream& a, const ThreadStream& b) {
                return a.thread < b.thread;
              });
    return analyze(ir, config);
  }
};

IrOp map_op(OpKind kind, mem::AddrRange r, omp::MapType type, int device = 0,
            bool always = false) {
  IrOp o;
  o.kind = kind;
  o.device = device;
  o.maps.push_back(IrMap{r, type, always});
  return o;
}

IrOp kernel_op(const std::string& name, std::vector<IrMap> maps,
               std::vector<IrUse> uses, int device = 0, bool nowait = false) {
  IrOp o;
  o.kind = OpKind::Kernel;
  o.name = name;
  o.device = device;
  o.nowait = nowait;
  o.maps = std::move(maps);
  o.uses = std::move(uses);
  return o;
}

IrOp host_op(OpKind kind, mem::AddrRange r) {
  IrOp o;
  o.kind = kind;
  o.range = r;
  return o;
}

std::vector<CheckKind> kinds(const Analysis& a) {
  std::vector<CheckKind> out;
  out.reserve(a.trace.findings.size());
  for (const CheckFinding& f : a.trace.findings) {
    out.push_back(f.kind);
  }
  return out;
}

TEST(Analyzer, WellFormedSingleThreadProgramIsClean) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", host_op(OpKind::HostTouch, x));
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::To));
  b.op("t0", kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}));
  b.op("t0", map_op(OpKind::ExitData, x, omp::MapType::Release));
  b.op("t0", host_op(OpKind::HostRead, x));
  b.op("t0", host_op(OpKind::HostFree, x));
  const Analysis a = b.run();
  EXPECT_TRUE(a.trace.clean()) << a.trace.to_string();
  EXPECT_EQ(a.trace.ops_analyzed, 6u);
  EXPECT_EQ(a.trace.buffers_analyzed, 1u);
}

TEST(Analyzer, ZeroByteMapIsInvalid) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData,
                    mem::AddrRange{x.base, 0}, omp::MapType::To));
  EXPECT_EQ(kinds(b.run()), std::vector{CheckKind::InvalidMap});
}

TEST(Analyzer, ExitOnlyClauseOnEntryConstructIsInvalid) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::Delete));
  EXPECT_EQ(kinds(b.run()), std::vector{CheckKind::InvalidMap});
}

TEST(Analyzer, UnknownAddressIsInvalid) {
  IrBuilder b;
  (void)b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData,
                    mem::AddrRange{mem::VirtAddr{0x999000}, 64},
                    omp::MapType::To));
  const Analysis a = b.run();
  ASSERT_FALSE(a.trace.findings.empty());
  EXPECT_EQ(a.trace.findings.front().kind, CheckKind::InvalidMap);
  EXPECT_EQ(a.trace.findings.front().buffer, "<unknown:64B>");
}

TEST(Analyzer, PartialOverlapWithLiveMappingIsFlagged) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 8192);
  const mem::AddrRange lo{x.base, 4096};
  const mem::AddrRange shifted{x.base + 2048, 4096};
  b.op("t0", map_op(OpKind::EnterData, lo, omp::MapType::To));
  b.op("t0", map_op(OpKind::EnterData, shifted, omp::MapType::To));
  const Analysis a = b.run();
  ASSERT_EQ(a.trace.findings.size(), 1u) << a.trace.to_string();
  EXPECT_EQ(a.trace.findings.front().kind, CheckKind::OverlapMap);
  EXPECT_EQ(a.trace.findings.front().buffer, "x+2048:4096B");
}

TEST(Analyzer, SubsetRemapOfLiveMappingIsClean) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 8192);
  const mem::AddrRange inner{x.base + 1024, 2048};
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::To));
  b.op("t0", map_op(OpKind::EnterData, inner, omp::MapType::To));
  b.op("t0", map_op(OpKind::ExitData, inner, omp::MapType::Release));
  b.op("t0", map_op(OpKind::ExitData, x, omp::MapType::Release));
  EXPECT_TRUE(b.run().trace.clean());
}

TEST(Analyzer, KernelUseOnWrongDeviceIsDeviceMismatch) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::To, /*device=*/0));
  IrOp k = kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}, /*device=*/1);
  b.op("t0", k);
  const Analysis a = b.run();
  EXPECT_EQ(kinds(a), std::vector{CheckKind::DeviceMismatch});
  EXPECT_EQ(a.trace.findings.front().device, 1);
}

TEST(Analyzer, StaleHostReadAfterKernelWriteWithoutCopyBack) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::To));
  b.op("t0", kernel_op("k", {}, {IrUse{x, hsa::Access::Write}}));
  b.op("t0", map_op(OpKind::ExitData, x, omp::MapType::Delete));
  b.op("t0", host_op(OpKind::HostRead, x));
  EXPECT_EQ(kinds(b.run()), std::vector{CheckKind::StaleHostRead});
}

TEST(Analyzer, UpdateFromClearsStaleness) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", map_op(OpKind::EnterData, x, omp::MapType::To));
  b.op("t0", kernel_op("k", {}, {IrUse{x, hsa::Access::Write}}));
  b.op("t0", map_op(OpKind::UpdateFrom, x, omp::MapType::From));
  b.op("t0", map_op(OpKind::ExitData, x, omp::MapType::Delete));
  b.op("t0", host_op(OpKind::HostRead, x));
  EXPECT_TRUE(b.run().trace.clean());
}

TEST(Analyzer, CopyBackOnTofromExitClearsStaleness) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0",
       kernel_op("k", {IrMap{x, omp::MapType::ToFrom, false}}, {}));
  b.op("t0", host_op(OpKind::HostRead, x));
  EXPECT_TRUE(b.run().trace.clean());
}

TEST(Analyzer, TierADoubleReleaseAcrossThreads) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096, "a");
  b.op("a", map_op(OpKind::EnterData, x, omp::MapType::To));
  b.op("a", map_op(OpKind::ExitData, x, omp::MapType::Release));
  b.op("b", map_op(OpKind::ExitData, x, omp::MapType::Release));
  const Analysis a = b.run();
  ASSERT_EQ(a.trace.findings.size(), 1u) << a.trace.to_string();
  const CheckFinding& f = a.trace.findings.front();
  EXPECT_EQ(f.kind, CheckKind::DoubleRelease);
  // Anchored deterministically at the first exit in (thread, ordinal)
  // order — cross-thread op order is not recorded.
  EXPECT_EQ(f.thread, "a");
}

TEST(Analyzer, TierAUseBeforeMapAcrossThreads) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096, "a");
  b.op("a", host_op(OpKind::HostTouch, x));
  b.op("a", kernel_op("k1", {}, {IrUse{x, hsa::Access::Read}}));
  b.op("b", kernel_op("k2", {}, {IrUse{x, hsa::Access::Read}}));
  const Analysis a = b.run();
  ASSERT_EQ(a.trace.findings.size(), 2u) << a.trace.to_string();
  EXPECT_EQ(a.trace.findings[0].kind, CheckKind::UseBeforeMap);
  EXPECT_EQ(a.trace.findings[1].kind, CheckKind::UseBeforeMap);
  EXPECT_EQ(a.trace.findings[0].thread, "a");  // canonical order
  EXPECT_EQ(a.trace.findings[1].thread, "b");
}

TEST(Analyzer, DevicePoolAndGlobalsAreAlwaysPresent) {
  IrBuilder b;
  const auto pool =
      b.buffer("pool", 0x10000, 4096, "t0", BufKind::DevicePool);
  const auto g = b.buffer("global:g", 0x20000, 64, "", BufKind::Global);
  b.op("t0", kernel_op("k", {},
                       {IrUse{pool, hsa::Access::ReadWrite},
                        IrUse{g, hsa::Access::Read}}));
  EXPECT_TRUE(b.run().trace.clean());
}

TEST(Analyzer, FindingsAreSortedAndDeduplicated) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  const auto y = b.buffer("y", 0x20000, 4096);
  // Two distinct bugs, inserted in "wrong" order relative to the canonical
  // (kind, thread, op_index, buffer, message) sort.
  b.op("t0", host_op(OpKind::HostTouch, y));
  b.op("t0", kernel_op("k", {}, {IrUse{y, hsa::Access::Read}}));
  b.op("t0", map_op(OpKind::ExitData, x, omp::MapType::ToFrom));
  const Analysis first = b.run();
  const Analysis second = b.run();
  ASSERT_EQ(first.trace.findings.size(), 2u) << first.trace.to_string();
  EXPECT_TRUE(std::is_sorted(first.trace.findings.begin(),
                             first.trace.findings.end()));
  EXPECT_EQ(first.trace.findings, second.trace.findings);
}

// --- race partition -------------------------------------------------------

TEST(Analyzer, PartitionProvesSingleThreadSynchronousBuffersSafe) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", host_op(OpKind::HostTouch, x));
  b.op("t0",
       kernel_op("k", {IrMap{x, omp::MapType::ToFrom, false}}, {}));
  const Analysis a = b.run();
  EXPECT_EQ(a.partition.safe_buffers, std::vector<std::string>{"x"});
  EXPECT_TRUE(a.partition.must_check_buffers.empty());
  EXPECT_EQ(a.partition.safe_pages, 1u);
  EXPECT_EQ(a.partition.total_pages, 1u);
}

TEST(Analyzer, PartitionKeepsNowaitBuffersInMustCheck) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096);
  b.op("t0", host_op(OpKind::HostTouch, x));
  b.op("t0", kernel_op("k", {IrMap{x, omp::MapType::ToFrom, false}}, {},
                       /*device=*/0, /*nowait=*/true));
  const Analysis a = b.run();
  EXPECT_TRUE(a.partition.safe_buffers.empty());
  EXPECT_EQ(a.partition.must_check_buffers, std::vector<std::string>{"x"});
}

TEST(Analyzer, PartitionProvesInitThenPublishReadOnlySharingSafe) {
  // Thread a writes, then publishes via its first map; b and c only read
  // through kernels. No device-side write ever touches the buffer.
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096, "a");
  b.op("a", host_op(OpKind::HostTouch, x));
  b.op("a", map_op(OpKind::DataBegin, x, omp::MapType::To));
  b.op("b", map_op(OpKind::DataBegin, x, omp::MapType::To));
  b.op("b", kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}));
  b.op("c", kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}));
  b.op("a", map_op(OpKind::DataEnd, x, omp::MapType::Release));
  b.op("b", map_op(OpKind::DataEnd, x, omp::MapType::Release));
  const Analysis a = b.run();
  EXPECT_EQ(a.partition.safe_buffers, std::vector<std::string>{"x"});
}

TEST(Analyzer, PartitionRejectsHostWriteAfterPublish) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096, "a");
  b.op("a", map_op(OpKind::DataBegin, x, omp::MapType::To));
  b.op("a", host_op(OpKind::HostTouch, x));  // write AFTER first publish
  b.op("b", kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}));
  const Analysis a = b.run();
  EXPECT_EQ(a.partition.must_check_buffers, std::vector<std::string>{"x"});
}

TEST(Analyzer, PartitionRejectsDeviceWritesOnSharedBuffers) {
  IrBuilder b;
  const auto x = b.buffer("x", 0x10000, 4096, "a");
  b.op("a", host_op(OpKind::HostTouch, x));
  b.op("a", kernel_op("k", {}, {IrUse{x, hsa::Access::Read}}));
  b.op("b", kernel_op("k", {}, {IrUse{x, hsa::Access::Write}}));
  const Analysis a = b.run();
  EXPECT_EQ(a.partition.must_check_buffers, std::vector<std::string>{"x"});
}

TEST(Analyzer, PartitionCountsInnerPagesOnly) {
  // A buffer that straddles page boundaries: only the fully-covered pages
  // count as prunable (the filter rounds inward, so partial pages stay
  // instrumented and shared-page conflicts stay visible).
  IrBuilder b;
  const auto x =
      b.buffer("x", 0x10000 + kPage / 2, 2 * kPage);  // covers 1 full page
  b.op("t0", host_op(OpKind::HostTouch, x));
  const Analysis a = b.run();
  EXPECT_EQ(a.partition.safe_buffers, std::vector<std::string>{"x"});
  EXPECT_EQ(a.partition.safe_pages, 1u);
  EXPECT_EQ(a.partition.total_pages, 3u);  // outward span
}

}  // namespace
}  // namespace zc::check
