// `OMPX_APU_RACE_CHECK=report:pruned` — the contract that matters: pruning
// must never lose a dynamic race report. The static partition only removes
// instrumentation from ranges it PROVED free of unordered concurrent
// access, so a planted racy program reports identically with and without
// pruning, while a clean program's detector run skips most of its page
// stamps.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "zc/core/offload_error.hpp"
#include "zc/race/prune.hpp"
#include "zc/workloads/buggy.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

RunResult run_raced(const Program& program, const std::string& spec) {
  RunOptions options;
  options.config = omp::RuntimeConfig::ImplicitZeroCopy;
  options.race_check_spec = spec;
  return run_program(program, options);
}

TEST(RacePrune, FilterSpansSafeRangesOutwardToWholePages) {
  const std::uint64_t page = 4096;
  // [page/2, 3.5 pages) with nothing in the must-check set: every page the
  // safe range touches is covered — stamps only arise from accesses to
  // recorded buffers, so nothing else can land on pages 0..3.
  const race::PruneFilter f = race::PruneFilter::from_partition(
      {mem::AddrRange{mem::VirtAddr{page / 2}, 3 * page}}, {}, page);
  EXPECT_TRUE(f.covers(0));
  EXPECT_TRUE(f.covers(1));
  EXPECT_TRUE(f.covers(2));
  EXPECT_TRUE(f.covers(3));
  EXPECT_FALSE(f.covers(4));
  EXPECT_EQ(f.page_count(), 4u);
}

TEST(RacePrune, FilterKeepsPagesSharedWithMustCheckRanges) {
  const std::uint64_t page = 4096;
  // Safe [0, 2 pages) and a sub-page safe buffer on page 10; a must-check
  // range straddles pages 1 and 2, so page 1 — though it also holds safe
  // bytes — stays instrumented.
  const race::PruneFilter f = race::PruneFilter::from_partition(
      {mem::AddrRange{mem::VirtAddr{0}, 2 * page},
       mem::AddrRange{mem::VirtAddr{10 * page + 64}, page / 2}},
      {mem::AddrRange{mem::VirtAddr{page + page / 2}, page}}, page);
  EXPECT_TRUE(f.covers(0));
  EXPECT_FALSE(f.covers(1));  // shared with the must-check range
  EXPECT_FALSE(f.covers(2));
  EXPECT_TRUE(f.covers(10));  // sub-page safe buffer alone on its page
  EXPECT_EQ(f.page_count(), 2u);
}

TEST(RacePrune, PlantedNowaitRaceSurvivesPruning) {
  const Program program = make_buggy_nowait_race();
  const RunResult plain = run_raced(program, "report");
  const RunResult pruned = run_raced(program, "report:pruned");
  ASSERT_EQ(plain.races.size(), 1u)
      << (plain.races.empty() ? "" : plain.races.records().front().message);
  // Zero reports lost: the racy buffer is in the must-check set, so the
  // pruned run still instruments it and reports the identical race.
  ASSERT_EQ(pruned.races.size(), 1u) << pruned.race_partition.to_string();
  EXPECT_EQ(pruned.races.records().front().what,
            plain.races.records().front().what);
  EXPECT_EQ(pruned.race_partition.must_check_buffers,
            std::vector<std::string>{"x"});
  EXPECT_EQ(pruned.checksum, plain.checksum);
}

TEST(RacePrune, CleanWorkloadPrunesStampsAndStaysClean) {
  QmcpackParams p;
  p.size = 2;
  p.threads = 2;
  p.steps = 10;
  const Program program = make_qmcpack(p);
  const RunResult plain = run_raced(program, "report");
  const RunResult pruned = run_raced(program, "report:pruned");
  EXPECT_TRUE(plain.races.empty());
  EXPECT_TRUE(pruned.races.empty());
  // Functional results are untouched by pruning (the filter only skips
  // shadow-state bookkeeping, never synchronization edges).
  EXPECT_EQ(pruned.checksum, plain.checksum);
  EXPECT_EQ(pruned.wall_time, plain.wall_time);
  // The point of the exercise: a large share of page stamps is skipped.
  EXPECT_GT(pruned.race_pruned_stamps, 0u);
  EXPECT_GT(pruned.race_partition.safe_pages, 0u);
  EXPECT_LT(pruned.race_checked_stamps,
            plain.race_checked_stamps + plain.race_pruned_stamps);
  // And the record-only phase actually ran (its cost is accounted).
  EXPECT_GT(pruned.check_phase_ms, 0.0);
}

TEST(RacePrune, PrunedAbortStillAbortsOnARealRace) {
  RunOptions options;
  options.config = omp::RuntimeConfig::ImplicitZeroCopy;
  options.race_check_spec = "abort:pruned";
  try {
    (void)run_program(make_buggy_nowait_race(), options);
    FAIL() << "expected OffloadError(DataRace)";
  } catch (const omp::OffloadError& e) {
    EXPECT_EQ(e.code(), omp::ErrorCode::DataRace);
  }
}

}  // namespace
}  // namespace zc::workloads
