// Recorder / OffloadIR structure tests: the record-only observer attached
// to a real OffloadRuntime must capture one op per user-visible construct
// (composite constructs suppress their internal data-begin/data-end
// halves), pair nowait dispatches with their waits, and assign buffers
// deterministic symbolic labels that never depend on raw addresses.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "zc/check/ir.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/sim/scheduler.hpp"

namespace zc::check {
namespace {

using omp::HostArray;
using omp::MapEntry;
using omp::OffloadRuntime;
using omp::OffloadStack;
using omp::TargetRegion;
using sim::literals::operator""_us;

std::unique_ptr<OffloadStack> make_stack(
    omp::RuntimeConfig cfg = omp::RuntimeConfig::ImplicitZeroCopy,
    omp::ProgramBinary prog = {}) {
  return std::make_unique<OffloadStack>(
      OffloadStack::machine_config_for(cfg), std::move(prog));
}

TEST(CheckIr, OneOpPerConstructInProgramOrder) {
  auto stack = make_stack();
  Recorder rec{stack->machine().page_bytes()};
  stack->omp().set_recorder(&rec);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 512, "x"};
    x.first_touch();
    const MapEntry map = x.tofrom();
    rt.target_data_begin({&map, 1});
    rt.target(TargetRegion{.name = "k",
                           .maps = {},
                           .uses = {omp::BufferUse{x.addr(), x.bytes(),
                                                   hsa::Access::ReadWrite}},
                           .compute = 5_us,
                           .body = {}});
    rt.target_data_end({&map, 1});
    const MapEntry upd = x.to();
    rt.target_update_to(upd);
    rt.host_read(x.range());
    x.release();
  });

  const OffloadIR ir = rec.build();
  ASSERT_EQ(ir.threads.size(), 1u);
  const ThreadStream& t = ir.threads.front();
  EXPECT_EQ(t.thread, "main");
  ASSERT_EQ(t.ops.size(), 7u);
  const OpKind expected[] = {OpKind::HostTouch, OpKind::DataBegin,
                             OpKind::Kernel,    OpKind::DataEnd,
                             OpKind::UpdateTo,  OpKind::HostRead,
                             OpKind::HostFree};
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    EXPECT_EQ(t.ops[i].kind, expected[i]) << "op " << i;
    EXPECT_EQ(t.ops[i].ordinal, i);
  }
  // The composite `target` is ONE op: its internal data-begin/data-end
  // halves were suppressed, and the kernel's enclosing-environment use
  // rides on the Kernel op itself.
  EXPECT_EQ(t.ops[2].name, "k");
  ASSERT_EQ(t.ops[2].uses.size(), 1u);
  EXPECT_EQ(t.ops[2].uses.front().access, hsa::Access::ReadWrite);
  EXPECT_EQ(ir.op_count(), 7u);
  ASSERT_EQ(ir.buffers.size(), 1u);
  EXPECT_EQ(ir.buffers.front().label, "x");
  EXPECT_EQ(ir.buffers.front().kind, BufKind::Host);
}

TEST(CheckIr, NowaitDispatchAndWaitSharePairingToken) {
  auto stack = make_stack();
  Recorder rec{stack->machine().page_bytes()};
  stack->omp().set_recorder(&rec);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 512, "x"};
    x.first_touch();
    omp::TargetTask task = rt.target_nowait(TargetRegion{
        .name = "async", .maps = {x.tofrom()}, .compute = 5_us, .body = {}});
    rt.target_wait(task);
    x.release();
  });

  const OffloadIR ir = rec.build();
  ASSERT_EQ(ir.threads.size(), 1u);
  const ThreadStream& t = ir.threads.front();
  ASSERT_EQ(t.ops.size(), 4u);  // touch, dispatch, wait, free
  const IrOp& dispatch = t.ops[1];
  const IrOp& wait = t.ops[2];
  EXPECT_EQ(dispatch.kind, OpKind::Kernel);
  EXPECT_TRUE(dispatch.nowait);
  EXPECT_EQ(wait.kind, OpKind::KernelWait);
  EXPECT_EQ(wait.name, "async");
  EXPECT_NE(dispatch.token, 0u);
  EXPECT_EQ(dispatch.token, wait.token);
  // The wait op carries a copy of the dispatch's map clauses, so a
  // per-thread walk can replay the data-end half at the wait point.
  ASSERT_EQ(wait.maps.size(), 1u);
  EXPECT_EQ(wait.maps.front().type, omp::MapType::ToFrom);
  EXPECT_EQ(wait.maps.front().range.bytes, 512 * sizeof(double));
}

TEST(CheckIr, DuplicateNamesGetThreadQualifiedLabels) {
  auto stack = make_stack();
  Recorder rec{stack->machine().page_bytes()};
  stack->omp().set_recorder(&rec);
  auto worker = [&stack](const char* unique_name) {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> a{rt, 64, "buf"};
    HostArray<double> b{rt, 64, "buf"};
    HostArray<double> c{rt, 64, unique_name};
    a.first_touch();
    b.first_touch();
    c.first_touch();
    a.release();
    b.release();
    c.release();
  };
  stack->sched().spawn("alice", [&] { worker("alice-only"); });
  stack->sched().spawn("bob", [&] { worker("bob-only"); });
  stack->sched().run();

  const OffloadIR ir = rec.build();
  ASSERT_EQ(ir.threads.size(), 2u);
  EXPECT_EQ(ir.threads[0].thread, "alice");  // sorted by name
  EXPECT_EQ(ir.threads[1].thread, "bob");
  ASSERT_EQ(ir.buffers.size(), 6u);
  std::set<std::string> labels;
  for (const IrBuffer& b : ir.buffers) {
    labels.insert(b.label);
  }
  // Run-wide-unique names keep their bare label; duplicates are qualified
  // by allocating thread and per-thread occurrence index.
  const std::set<std::string> expected{"buf@alice#0", "buf@alice#1",
                                       "buf@bob#0",   "buf@bob#1",
                                       "alice-only",  "bob-only"};
  EXPECT_EQ(labels, expected);
}

TEST(CheckIr, DescribeRendersSubrangesWithoutAddresses) {
  auto stack = make_stack();
  Recorder rec{stack->machine().page_bytes()};
  stack->omp().set_recorder(&rec);
  mem::AddrRange range{};
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 512, "x"};
    x.first_touch();
    range = x.range();
    x.release();
  });
  const OffloadIR ir = rec.build();
  EXPECT_EQ(ir.describe(range), "x");
  EXPECT_EQ(ir.describe(mem::AddrRange{range.base + 16, 32}), "x+16:32B");
  EXPECT_EQ(ir.describe(mem::AddrRange{mem::VirtAddr{1}, 8}), "<unknown:8B>");
  EXPECT_EQ(ir.find(mem::VirtAddr{1}), nullptr);
}

TEST(CheckIr, DeclareTargetGlobalsRegisterAsGlobalBuffers) {
  omp::ProgramBinary prog;
  prog.globals.push_back(omp::GlobalVar{"alpha", sizeof(double)});
  auto stack = make_stack(omp::RuntimeConfig::ImplicitZeroCopy, prog);
  Recorder rec{stack->machine().page_bytes()};
  stack->omp().set_recorder(&rec);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 64, "x"};
    x.first_touch();
    rt.target(TargetRegion{.name = "k",
                           .maps = {x.tofrom()},
                           .compute = 1_us,
                           .body = {}});
    x.release();
  });
  const OffloadIR ir = rec.build();
  bool found = false;
  for (const IrBuffer& b : ir.buffers) {
    if (b.name == "global:alpha") {
      found = true;
      EXPECT_EQ(b.kind, BufKind::Global);
      EXPECT_TRUE(b.thread.empty());
      EXPECT_EQ(b.range.bytes, sizeof(double));
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckIr, RecordingIsInertWhenNoRecorderInstalled) {
  // Guard against accidental coupling: a stack without a recorder runs
  // the same program without touching any recording state.
  auto stack = make_stack();
  EXPECT_EQ(stack->omp().recorder(), nullptr);
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    HostArray<double> x{rt, 64, "x"};
    x.first_touch();
    rt.target(TargetRegion{.name = "k",
                           .maps = {x.tofrom()},
                           .compute = 1_us,
                           .body = {}});
    x.release();
  });
}

}  // namespace
}  // namespace zc::check
