// The seeded buggy-workload corpus, validated both ways:
//
//  * statically — `OMPX_APU_CHECK=report` flags each planted bug with the
//    advertised finding kind, an op index, and a symbolic buffer label
//    (never a raw address, which varies across seeds);
//  * dynamically — each bug is confirmed for real: a typed error under
//    Legacy Copy, or a checksum divergence between Legacy Copy and the
//    zero-copy configurations.
//
// The static verdicts must also be identical no matter which configuration
// the recording ran under — the checker analyzes the portable program
// shape, not the configuration that happened to execute it.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "zc/check/report.hpp"
#include "zc/core/offload_error.hpp"
#include "zc/workloads/buggy.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

RunResult run_checked(const Program& program, omp::RuntimeConfig config) {
  RunOptions options;
  options.config = config;
  options.check_spec = "report";
  return run_program(program, options);
}

/// The corpus contract: exactly one finding, of `kind`, naming `buffer`.
void expect_single_finding(const RunResult& result, check::CheckKind kind,
                           const std::string& buffer) {
  ASSERT_EQ(result.check.findings.size(), 1u) << result.check.to_string();
  const check::CheckFinding& f = result.check.findings.front();
  EXPECT_EQ(f.kind, kind) << f.to_string();
  EXPECT_EQ(f.buffer, buffer) << f.to_string();
  EXPECT_EQ(f.thread, "buggy-main");
  EXPECT_FALSE(f.message.empty());
  // Diagnostics carry the op index into the thread's recorded stream and
  // never leak raw simulated addresses.
  EXPECT_EQ(f.to_string().find("0x"), std::string::npos) << f.to_string();
}

TEST(BuggyCorpus, MissingMapFlaggedStatically) {
  const RunResult r = run_checked(make_buggy_missing_map(),
                                  omp::RuntimeConfig::ImplicitZeroCopy);
  expect_single_finding(r, check::CheckKind::UseBeforeMap, "orphan");
}

TEST(BuggyCorpus, MissingMapFaultsUnderLegacyCopy) {
  RunOptions options;
  options.config = omp::RuntimeConfig::LegacyCopy;
  EXPECT_THROW((void)run_program(make_buggy_missing_map(), options),
               std::invalid_argument);
}

TEST(BuggyCorpus, StaleDataFlaggedStatically) {
  const RunResult r = run_checked(make_buggy_stale_data(),
                                  omp::RuntimeConfig::ImplicitZeroCopy);
  expect_single_finding(r, check::CheckKind::StaleHostRead, "x");
}

TEST(BuggyCorpus, StaleDataDivergesUnderLegacyCopy) {
  RunOptions zc_options;
  zc_options.config = omp::RuntimeConfig::ImplicitZeroCopy;
  RunOptions copy_options;
  copy_options.config = omp::RuntimeConfig::LegacyCopy;
  const Program program = make_buggy_stale_data();
  const double zc = run_program(program, zc_options).checksum;
  const double copy = run_program(program, copy_options).checksum;
  // Zero-copy sees the kernel's doubling; Legacy Copy reads the stale
  // host values — exactly half.
  EXPECT_EQ(copy * 2.0, zc);
}

TEST(BuggyCorpus, DoubleDeleteFlaggedStatically) {
  const RunResult r = run_checked(make_buggy_double_delete(),
                                  omp::RuntimeConfig::ImplicitZeroCopy);
  expect_single_finding(r, check::CheckKind::DoubleRelease, "x");
}

TEST(BuggyCorpus, DoubleDeleteRaisesMappingViolationUnderLegacyCopy) {
  RunOptions options;
  options.config = omp::RuntimeConfig::LegacyCopy;
  try {
    (void)run_program(make_buggy_double_delete(), options);
    FAIL() << "expected OffloadError(MappingViolation)";
  } catch (const omp::OffloadError& e) {
    EXPECT_EQ(e.code(), omp::ErrorCode::MappingViolation);
  }
}

TEST(BuggyCorpus, CoherenceFlaggedStatically) {
  const RunResult r = run_checked(make_buggy_coherence(),
                                  omp::RuntimeConfig::ImplicitZeroCopy);
  expect_single_finding(r, check::CheckKind::ConfigDivergence, "x");
}

TEST(BuggyCorpus, CoherenceDivergesUnderLegacyCopy) {
  RunOptions zc_options;
  zc_options.config = omp::RuntimeConfig::UnifiedSharedMemory;
  RunOptions copy_options;
  copy_options.config = omp::RuntimeConfig::LegacyCopy;
  const Program program = make_buggy_coherence();
  const double zc = run_program(program, zc_options).checksum;
  const double copy = run_program(program, copy_options).checksum;
  EXPECT_NE(zc, copy);
}

TEST(BuggyCorpus, StaticVerdictsIndependentOfRecordingConfig) {
  // The analyzer reasons about the program's portable shape: recording
  // under any configuration yields the same findings.
  const Program program = make_buggy_stale_data();
  const RunResult usm =
      run_checked(program, omp::RuntimeConfig::UnifiedSharedMemory);
  const RunResult eager = run_checked(program, omp::RuntimeConfig::EagerMaps);
  ASSERT_EQ(usm.check.findings.size(), 1u);
  ASSERT_EQ(eager.check.findings.size(), 1u);
  EXPECT_EQ(usm.check.findings.front().kind, eager.check.findings.front().kind);
  EXPECT_EQ(usm.check.findings.front().op_index,
            eager.check.findings.front().op_index);
  EXPECT_EQ(usm.check.findings.front().buffer,
            eager.check.findings.front().buffer);
}

TEST(BuggyCorpus, AbortModePromotesFindingsToTypedErrors) {
  RunOptions options;
  options.config = omp::RuntimeConfig::ImplicitZeroCopy;
  options.check_spec = "abort";
  try {
    (void)run_program(make_buggy_missing_map(), options);
    FAIL() << "expected OffloadError(CheckViolation)";
  } catch (const omp::OffloadError& e) {
    EXPECT_EQ(e.code(), omp::ErrorCode::CheckViolation);
    EXPECT_NE(std::string{e.what()}.find("use-before-map"),
              std::string::npos);
  }
}

TEST(BuggyCorpus, NowaitRaceBufferLandsInMustCheckSet) {
  const RunResult r = run_checked(make_buggy_nowait_race(),
                                  omp::RuntimeConfig::ImplicitZeroCopy);
  ASSERT_EQ(r.race_partition.must_check_buffers.size(), 1u)
      << r.race_partition.to_string();
  EXPECT_EQ(r.race_partition.must_check_buffers.front(), "x");
}

}  // namespace
}  // namespace zc::workloads
