// The modeled Infinity Fabric: hypercube wide/narrow topology, per-link
// bandwidth/latency pricing, FIFO contention accounting, and the disabled
// (legacy) mode where every operation is a free no-op.

#include "zc/fabric/fabric.hpp"

#include <gtest/gtest.h>

namespace zc::fabric {
namespace {

using namespace zc::sim::literals;
using sim::Duration;
using sim::TimePoint;

FabricConfig xgmi() {
  FabricConfig c;
  c.mode = FabricMode::Xgmi;
  return c;
}

TEST(Fabric, WideLinksAreOneBitApart) {
  const Fabric f{4, xgmi()};
  // Hypercube rule on a 4-socket node: 0-1, 0-2, 1-3, 2-3 wide; the
  // diagonals 0-3 and 1-2 narrow.
  EXPECT_TRUE(f.wide_link(0, 1));
  EXPECT_TRUE(f.wide_link(0, 2));
  EXPECT_TRUE(f.wide_link(1, 3));
  EXPECT_TRUE(f.wide_link(2, 3));
  EXPECT_FALSE(f.wide_link(0, 3));
  EXPECT_FALSE(f.wide_link(1, 2));
  // Symmetric.
  EXPECT_TRUE(f.wide_link(1, 0));
  EXPECT_FALSE(f.wide_link(3, 0));
}

TEST(Fabric, UniformModeMakesEveryPairWide) {
  FabricConfig c;
  c.mode = FabricMode::Uniform;
  const Fabric f{4, c};
  EXPECT_TRUE(f.wide_link(0, 3));
  EXPECT_TRUE(f.wide_link(1, 2));
}

TEST(Fabric, LinkParametersFollowWidth) {
  const Fabric f{4, xgmi()};
  const FabricConfig& c = f.config();
  EXPECT_DOUBLE_EQ(f.link(0, 1).bandwidth_bytes_per_s,
                   c.wide_bandwidth_bytes_per_s);
  EXPECT_DOUBLE_EQ(f.link(0, 3).bandwidth_bytes_per_s,
                   c.narrow_bandwidth_bytes_per_s);
  EXPECT_EQ(f.link(0, 1).latency, c.link_latency);
  // Local "links" have no parameters.
  EXPECT_DOUBLE_EQ(f.link(2, 2).bandwidth_bytes_per_s, 0.0);
}

TEST(Fabric, TransferDurationIsLatencyPlusSerialization) {
  const Fabric f{4, xgmi()};
  const std::uint64_t bytes = 132ULL << 20;  // ~10.5 ms at 13.2 GB/s
  const Duration wide = f.transfer_duration(0, 1, bytes);
  const Duration narrow = f.transfer_duration(0, 3, bytes);
  const double wide_s =
      static_cast<double>(bytes) / f.config().wide_bandwidth_bytes_per_s;
  EXPECT_NEAR(wide.us(), f.config().link_latency.us() + wide_s * 1e6, 1.0);
  // The diagonal is slower than the wide bundle for the same payload.
  EXPECT_GT(narrow, wide);
  // Local transfers are free.
  EXPECT_TRUE(f.transfer_duration(1, 1, bytes).is_zero());
}

TEST(Fabric, ReserveQueuesFifoPerDirectedLink) {
  Fabric f{4, xgmi()};
  const Duration dur = 100_us;
  const sim::Interval first =
      f.reserve_transfer(0, 1, TimePoint::zero(), dur, 1024);
  const sim::Interval second =
      f.reserve_transfer(0, 1, TimePoint::zero(), dur, 1024);
  EXPECT_EQ(first.start, TimePoint::zero());
  EXPECT_EQ(second.start, first.end);  // queued behind the first transfer
  // The opposite direction and other links are independent.
  EXPECT_EQ(f.reserve_transfer(1, 0, TimePoint::zero(), dur, 1024).start,
            TimePoint::zero());
  EXPECT_EQ(f.reserve_transfer(2, 3, TimePoint::zero(), dur, 1024).start,
            TimePoint::zero());
}

TEST(Fabric, StatsAccumulatePerLink) {
  Fabric f{4, xgmi()};
  (void)f.reserve_transfer(0, 1, TimePoint::zero(), 100_us, 4096);
  (void)f.reserve_transfer(0, 1, TimePoint::zero(), 100_us, 4096);
  const LinkStats s = f.stats(0, 1);
  EXPECT_EQ(s.transfers, 2u);
  EXPECT_EQ(s.bytes, 8192u);
  EXPECT_EQ(s.busy, 200_us);
  EXPECT_EQ(s.queued, 100_us);  // the second waited a full slot
  EXPECT_EQ(f.stats(1, 0).transfers, 0u);
  EXPECT_EQ(f.total_transfers(), 2u);
  f.reset();
  EXPECT_EQ(f.total_transfers(), 0u);
  EXPECT_EQ(f.stats(0, 1).bytes, 0u);
}

TEST(Fabric, DisabledFabricIsFree) {
  Fabric f{4, FabricConfig{}};  // mode = Off
  EXPECT_FALSE(f.enabled());
  EXPECT_TRUE(f.transfer_duration(0, 3, 1ULL << 30).is_zero());
  const sim::Interval iv =
      f.reserve_transfer(0, 3, TimePoint::zero() + 5_us, 100_us, 1024);
  EXPECT_EQ(iv.start, TimePoint::zero() + 5_us);
  EXPECT_EQ(iv.end, iv.start);
  EXPECT_EQ(f.total_transfers(), 0u);
}

TEST(Fabric, SingleSocketNodeIsNeverEnabled) {
  const Fabric f{1, xgmi()};
  EXPECT_FALSE(f.enabled());
}

TEST(Fabric, OutOfRangeSocketsRejected) {
  Fabric f{4, xgmi()};
  EXPECT_THROW((void)f.link(0, 4), std::out_of_range);
  EXPECT_THROW((void)f.link(-1, 0), std::out_of_range);
  EXPECT_THROW(
      (void)f.reserve_transfer(4, 0, TimePoint::zero(), 1_us, 1),
      std::out_of_range);
}

}  // namespace
}  // namespace zc::fabric
