#include "zc/fault/spec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace zc::fault {
namespace {

using namespace zc::sim::literals;

TEST(FaultSpec, EmptySpecIsFaultFree) {
  EXPECT_TRUE(parse_spec("").empty());
}

TEST(FaultSpec, SingleCallTrigger) {
  const Schedule s = parse_spec("oom@call=3");
  ASSERT_EQ(s.clauses.size(), 1u);
  const Clause& c = s.clauses[0];
  EXPECT_EQ(c.site, Site::PoolAlloc);
  EXPECT_EQ(c.kind, Kind::Oom);
  EXPECT_EQ(c.trigger.mode, Trigger::Mode::CallRange);
  EXPECT_EQ(c.trigger.call_from, 3u);
  EXPECT_EQ(c.trigger.call_to, 3u);
}

TEST(FaultSpec, CallWindowTrigger) {
  const Schedule s = parse_spec("eintr@call=1..4");
  ASSERT_EQ(s.clauses.size(), 1u);
  EXPECT_EQ(s.clauses[0].site, Site::SvmPrefault);
  EXPECT_EQ(s.clauses[0].kind, Kind::Eintr);
  EXPECT_EQ(s.clauses[0].trigger.call_from, 1u);
  EXPECT_EQ(s.clauses[0].trigger.call_to, 4u);
}

TEST(FaultSpec, TimeWindowTrigger) {
  const Schedule s = parse_spec("sdma@t=100us..200us");
  ASSERT_EQ(s.clauses.size(), 1u);
  EXPECT_EQ(s.clauses[0].site, Site::AsyncCopy);
  EXPECT_EQ(s.clauses[0].kind, Kind::CopyError);
  EXPECT_EQ(s.clauses[0].trigger.mode, Trigger::Mode::TimeWindow);
  EXPECT_EQ(s.clauses[0].trigger.t_from.since_start(), 100_us);
  EXPECT_EQ(s.clauses[0].trigger.t_to.since_start(), 200_us);
}

TEST(FaultSpec, OpenTimeWindowExtendsToRunEnd) {
  const Schedule s = parse_spec("ebusy@t=50us");
  ASSERT_EQ(s.clauses.size(), 1u);
  EXPECT_EQ(s.clauses[0].kind, Kind::Ebusy);
  EXPECT_EQ(s.clauses[0].trigger.t_from.since_start(), 50_us);
  EXPECT_EQ(s.clauses[0].trigger.t_to, sim::TimePoint::max());
}

TEST(FaultSpec, ProbabilityTrigger) {
  const Schedule s = parse_spec("oom@p=0.25");
  ASSERT_EQ(s.clauses.size(), 1u);
  EXPECT_EQ(s.clauses[0].trigger.mode, Trigger::Mode::Probability);
  EXPECT_DOUBLE_EQ(s.clauses[0].trigger.probability, 0.25);
}

TEST(FaultSpec, ReplayStormFactorOption) {
  const Schedule s = parse_spec("xnack@call=1:x16");
  ASSERT_EQ(s.clauses.size(), 1u);
  EXPECT_EQ(s.clauses[0].site, Site::XnackReplay);
  EXPECT_EQ(s.clauses[0].kind, Kind::ReplayStorm);
  EXPECT_DOUBLE_EQ(s.clauses[0].factor, 16.0);
}

TEST(FaultSpec, MultipleClauses) {
  const Schedule s = parse_spec("oom@call=2;eintr@call=1..3;sdma@p=0.1");
  ASSERT_EQ(s.clauses.size(), 3u);
  EXPECT_EQ(s.clauses[0].site, Site::PoolAlloc);
  EXPECT_EQ(s.clauses[1].site, Site::SvmPrefault);
  EXPECT_EQ(s.clauses[2].site, Site::AsyncCopy);
}

TEST(FaultSpec, ToStringRoundTrips) {
  for (const char* spec :
       {"oom@call=3", "eintr@call=1..4", "sdma@p=0.5", "xnack@call=1:x16",
        "oom@call=2;eintr@call=1..3"}) {
    const Schedule s = parse_spec(spec);
    const Schedule again = parse_spec(to_string(s));
    ASSERT_EQ(again.clauses.size(), s.clauses.size()) << spec;
    for (std::size_t i = 0; i < s.clauses.size(); ++i) {
      EXPECT_EQ(again.clauses[i].site, s.clauses[i].site) << spec;
      EXPECT_EQ(again.clauses[i].kind, s.clauses[i].kind) << spec;
      EXPECT_EQ(again.clauses[i].trigger.mode, s.clauses[i].trigger.mode)
          << spec;
    }
  }
}

TEST(FaultSpec, HangFamilyTokensMapToSitesAndKinds) {
  const struct {
    const char* token;
    Site site;
    Kind kind;
  } cases[] = {
      {"kernel_hang", Site::KernelLaunch, Kind::KernelHang},
      {"sdma_stall", Site::AsyncCopy, Kind::SdmaStall},
      {"prefault_hang", Site::SvmPrefault, Kind::PrefaultHang},
      {"xnack_livelock", Site::XnackReplay, Kind::XnackLivelock},
  };
  for (const auto& c : cases) {
    const Schedule s = parse_spec(std::string{c.token} + "@call=3");
    ASSERT_EQ(s.clauses.size(), 1u) << c.token;
    EXPECT_EQ(s.clauses[0].site, c.site) << c.token;
    EXPECT_EQ(s.clauses[0].kind, c.kind) << c.token;
    EXPECT_TRUE(is_hang(s.clauses[0].kind)) << c.token;
    // site_token round-trips through the renderer.
    const Schedule again = parse_spec(to_string(s));
    EXPECT_EQ(again.clauses[0].kind, c.kind) << c.token;
  }
}

TEST(FaultSpec, PressureFamilyTokensMapToSitesAndKinds) {
  const struct {
    const char* token;
    Site site;
    Kind kind;
  } cases[] = {
      {"evict_storm", Site::Eviction, Kind::EvictStorm},
      {"migration_stall", Site::AutoMigrate, Kind::MigrationStall},
      {"thp_split_storm", Site::ThpSplit, Kind::ThpSplitStorm},
      {"counter_loss", Site::AccessCounter, Kind::CounterLoss},
  };
  for (const auto& c : cases) {
    const Schedule s = parse_spec(std::string{c.token} + "@call=2");
    ASSERT_EQ(s.clauses.size(), 1u) << c.token;
    EXPECT_EQ(s.clauses[0].site, c.site) << c.token;
    EXPECT_EQ(s.clauses[0].kind, c.kind) << c.token;
    EXPECT_FALSE(is_hang(s.clauses[0].kind)) << c.token;
    // The renderer round-trips every new token.
    const Schedule again = parse_spec(to_string(s));
    EXPECT_EQ(again.clauses[0].site, c.site) << c.token;
    EXPECT_EQ(again.clauses[0].kind, c.kind) << c.token;
  }
}

TEST(FaultSpec, PressureTokensAcceptStormFactors) {
  const Schedule s = parse_spec("evict_storm@call=1:x8;migration_stall@p=0.5:x3");
  ASSERT_EQ(s.clauses.size(), 2u);
  EXPECT_DOUBLE_EQ(s.clauses[0].factor, 8.0);
  EXPECT_DOUBLE_EQ(s.clauses[1].factor, 3.0);
  // ":xF" survives the to_string round trip.
  const Schedule again = parse_spec(to_string(s));
  EXPECT_DOUBLE_EQ(again.clauses[0].factor, 8.0);
  EXPECT_DOUBLE_EQ(again.clauses[1].factor, 3.0);
}

TEST(FaultSpec, UnknownSiteErrorListsThePressureTokens) {
  try {
    (void)parse_spec("bogus@call=1");
    FAIL() << "expected FaultSpecError";
  } catch (const FaultSpecError& e) {
    const std::string what{e.what()};
    EXPECT_NE(what.find("evict_storm"), std::string::npos);
    EXPECT_NE(what.find("migration_stall"), std::string::npos);
    EXPECT_NE(what.find("thp_split_storm"), std::string::npos);
    EXPECT_NE(what.find("counter_loss"), std::string::npos);
  }
}

TEST(FaultSpec, NonHangKindsAreNotHangs) {
  for (Kind k : {Kind::None, Kind::Oom, Kind::Eintr, Kind::Ebusy,
                 Kind::CopyError, Kind::ReplayStorm}) {
    EXPECT_FALSE(is_hang(k));
  }
}

TEST(FaultSpec, KernelLaunchSiteHasAName) {
  EXPECT_STREQ(to_string(Site::KernelLaunch), "kernel-launch");
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  for (const char* bad : {
           "bogus@call=1",    // unknown site
           "oom",             // missing trigger
           "oom@",            // empty trigger
           "oom@call=0",      // call counts are 1-based
           "oom@call=5..2",   // empty window
           "oom@t=9us..3us",  // empty time window
           "oom@p=1.5",       // probability out of range
           "oom@p=-0.1",      // probability out of range
           "oom@call=x",      // not a number
           "xnack@call=1:y2", // unknown option
           "xnack@call=1:x0", // factor must be positive
           "oom@call=1;;",    // empty clause
           ";",               // empty clause
       }) {
    EXPECT_THROW((void)parse_spec(bad), FaultSpecError) << bad;
  }
}

TEST(FaultSpec, ServiceFamilyTokensMapToSitesAndKinds) {
  const struct {
    const char* token;
    Site site;
    Kind kind;
  } cases[] = {
      {"tenant_burst", Site::TenantBurst, Kind::TenantBurst},
      {"admission_flap", Site::AdmissionFlap, Kind::AdmissionFlap},
  };
  for (const auto& c : cases) {
    const Schedule s = parse_spec(std::string{c.token} + "@p=0.5:x8");
    ASSERT_EQ(s.clauses.size(), 1u) << c.token;
    EXPECT_EQ(s.clauses[0].site, c.site) << c.token;
    EXPECT_EQ(s.clauses[0].kind, c.kind) << c.token;
    EXPECT_FALSE(is_hang(s.clauses[0].kind)) << c.token;
    const Schedule again = parse_spec(to_string(s));
    EXPECT_EQ(again.clauses[0].site, c.site) << c.token;
    EXPECT_EQ(again.clauses[0].kind, c.kind) << c.token;
  }
}

}  // namespace
}  // namespace zc::fault
