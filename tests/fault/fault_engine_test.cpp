#include "zc/fault/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace zc::fault {
namespace {

using namespace zc::sim::literals;

sim::TimePoint at(sim::Duration d) { return sim::TimePoint::zero() + d; }

TEST(FaultEngine, DefaultEngineIsDisabledAndNeverFires) {
  FaultEngine e;
  EXPECT_FALSE(e.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(e.consult(Site::PoolAlloc, at(0_us)).fired());
  }
  EXPECT_EQ(e.calls(Site::PoolAlloc), 100u);
  EXPECT_EQ(e.injected_total(), 0u);
}

TEST(FaultEngine, CallWindowFiresExactly) {
  FaultEngine e{parse_spec("eintr@call=2..4"), 1};
  EXPECT_TRUE(e.enabled());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(e.consult(Site::SvmPrefault, at(0_us)).fired());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false, false}));
  EXPECT_EQ(e.calls(Site::SvmPrefault), 6u);
  EXPECT_EQ(e.injected(Site::SvmPrefault), 3u);
  EXPECT_EQ(e.injected_total(), 3u);
}

TEST(FaultEngine, CallCountersArePerSite) {
  FaultEngine e{parse_spec("oom@call=1"), 1};
  // Consultations at other sites must not advance the pool-alloc counter.
  EXPECT_FALSE(e.consult(Site::SvmPrefault, at(0_us)).fired());
  EXPECT_FALSE(e.consult(Site::AsyncCopy, at(0_us)).fired());
  const Injection inj = e.consult(Site::PoolAlloc, at(0_us));
  EXPECT_EQ(inj.kind, Kind::Oom);
  EXPECT_EQ(e.calls(Site::PoolAlloc), 1u);
  EXPECT_EQ(e.injected(Site::SvmPrefault), 0u);
}

TEST(FaultEngine, TimeWindowFiresInsideOnly) {
  FaultEngine e{parse_spec("sdma@t=100us..200us"), 1};
  EXPECT_FALSE(e.consult(Site::AsyncCopy, at(99_us)).fired());
  EXPECT_TRUE(e.consult(Site::AsyncCopy, at(100_us)).fired());
  EXPECT_TRUE(e.consult(Site::AsyncCopy, at(150_us)).fired());
  EXPECT_TRUE(e.consult(Site::AsyncCopy, at(200_us)).fired());
  EXPECT_FALSE(e.consult(Site::AsyncCopy, at(201_us)).fired());
}

TEST(FaultEngine, OpenTimeWindowFiresForever) {
  FaultEngine e{parse_spec("ebusy@t=50us"), 1};
  EXPECT_FALSE(e.consult(Site::SvmPrefault, at(0_us)).fired());
  EXPECT_TRUE(e.consult(Site::SvmPrefault, at(50_us)).fired());
  EXPECT_TRUE(e.consult(Site::SvmPrefault, at(1000000_us)).fired());
  EXPECT_EQ(e.consult(Site::SvmPrefault, at(60_us)).kind, Kind::Ebusy);
}

TEST(FaultEngine, ReplayStormCarriesFactor) {
  FaultEngine e{parse_spec("xnack@call=1:x16"), 1};
  const Injection inj = e.consult(Site::XnackReplay, at(0_us));
  EXPECT_EQ(inj.kind, Kind::ReplayStorm);
  EXPECT_DOUBLE_EQ(inj.factor, 16.0);
}

TEST(FaultEngine, FirstMatchingClauseWins) {
  // Both clauses target the prefault site; call 1 must fire the first
  // (eintr), not the second, even though both windows contain it.
  FaultEngine e{parse_spec("eintr@call=1;ebusy@call=1..2"), 1};
  EXPECT_EQ(e.consult(Site::SvmPrefault, at(0_us)).kind, Kind::Eintr);
  EXPECT_EQ(e.consult(Site::SvmPrefault, at(0_us)).kind, Kind::Ebusy);
  EXPECT_FALSE(e.consult(Site::SvmPrefault, at(0_us)).fired());
}

TEST(FaultEngine, ProbabilityZeroAndOneAreDegenerate) {
  FaultEngine never{parse_spec("oom@p=0"), 7};
  FaultEngine always{parse_spec("oom@p=1"), 7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.consult(Site::PoolAlloc, at(0_us)).fired());
    EXPECT_TRUE(always.consult(Site::PoolAlloc, at(0_us)).fired());
  }
}

TEST(FaultEngine, ProbabilityStreamIsDeterministicPerSeed) {
  const Schedule s = parse_spec("sdma@p=0.5");
  FaultEngine a{s, 42};
  FaultEngine b{s, 42};
  FaultEngine c{s, 43};
  std::vector<bool> fa, fb, fc;
  for (int i = 0; i < 256; ++i) {
    fa.push_back(a.consult(Site::AsyncCopy, at(0_us)).fired());
    fb.push_back(b.consult(Site::AsyncCopy, at(0_us)).fired());
    fc.push_back(c.consult(Site::AsyncCopy, at(0_us)).fired());
  }
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);
  // p=0.5 over 256 draws: both firing and not firing must occur.
  EXPECT_GT(a.injected(Site::AsyncCopy), 0u);
  EXPECT_LT(a.injected(Site::AsyncCopy), 256u);
}

TEST(FaultEngine, ProbabilityDrawSkippedWhenEarlierClauseFires) {
  // The probabilistic clause's RNG stream must be a pure function of the
  // consults that actually reach it: two engines whose deterministic first
  // clause differs in width still agree on the downstream draw sequence.
  FaultEngine a{parse_spec("eintr@call=1;ebusy@p=0.5"), 9};
  FaultEngine b{parse_spec("eintr@call=1..3;ebusy@p=0.5"), 9};
  // Drain the deterministic prefix of each.
  (void)a.consult(Site::SvmPrefault, at(0_us));
  for (int i = 0; i < 3; ++i) {
    (void)b.consult(Site::SvmPrefault, at(0_us));
  }
  std::vector<bool> fa, fb;
  for (int i = 0; i < 64; ++i) {
    fa.push_back(a.consult(Site::SvmPrefault, at(0_us)).fired());
    fb.push_back(b.consult(Site::SvmPrefault, at(0_us)).fired());
  }
  EXPECT_EQ(fa, fb);
}

}  // namespace
}  // namespace zc::fault
