#include "zc/sim/time.hpp"

#include <gtest/gtest.h>

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::microseconds(1).ns(), 1000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::microseconds(3), 3_us);
  EXPECT_EQ(Duration::seconds(2), 2_s);
}

TEST(Duration, FractionalFactoriesRound) {
  EXPECT_EQ(Duration::from_us(1.5).ns(), 1500);
  EXPECT_EQ(Duration::from_us(0.0004).ns(), 0);  // rounds to nearest ns
  EXPECT_EQ(Duration::from_seconds(2.5).ns(), 2'500'000'000LL);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((3_us + 2_us).ns(), 5000);
  EXPECT_EQ((3_us - 5_us).ns(), -2000);
  EXPECT_TRUE((3_us - 5_us).is_negative());
  EXPECT_EQ((4_us * 3).ns(), 12'000);
  EXPECT_EQ((3 * 4_us).ns(), 12'000);
  EXPECT_EQ((10_us / 4).ns(), 2500);
  EXPECT_DOUBLE_EQ(10_us / 4_us, 2.5);
}

TEST(Duration, ScalingByDoubleRounds) {
  EXPECT_EQ((10_us * 0.33333).ns(), 3333);
  EXPECT_EQ((0.5 * 3_ns).ns(), 2);  // llround(1.5) == 2
}

TEST(Duration, ConversionsAndPredicates) {
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
  EXPECT_DOUBLE_EQ((2_ms).ms(), 2.0);
  EXPECT_DOUBLE_EQ((3_s).sec(), 3.0);
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE((1_ns).is_zero());
}

TEST(Duration, Ordering) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_EQ(max(3_us, 5_us), 5_us);
  EXPECT_EQ(min(3_us, 5_us), 3_us);
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ((17_ns).to_string(), "17ns");
  EXPECT_NE((1500_ns).to_string().find("us"), std::string::npos);
  EXPECT_NE((2_ms).to_string().find("ms"), std::string::npos);
  EXPECT_NE((3_s).to_string().find('s'), std::string::npos);
}

TEST(TimePoint, ZeroAndArithmetic) {
  const TimePoint t0 = TimePoint::zero();
  EXPECT_EQ(t0.ns(), 0);
  const TimePoint t1 = t0 + 5_us;
  EXPECT_EQ(t1.ns(), 5000);
  EXPECT_EQ((t1 - t0), 5_us);
  EXPECT_EQ((t1 - 2_us).ns(), 3000);
  EXPECT_EQ(t1.since_start(), 5_us);
}

TEST(TimePoint, CompoundAssignAndOrdering) {
  TimePoint t;
  t += 3_us;
  EXPECT_EQ(t.ns(), 3000);
  EXPECT_LT(TimePoint::zero(), t);
  EXPECT_EQ(max(t, TimePoint::zero()), t);
  EXPECT_EQ(min(t, TimePoint::zero()), TimePoint::zero());
}

TEST(TimePoint, MaxIsSaturatingSentinel) {
  EXPECT_GT(TimePoint::max(), TimePoint::from_ns(1) + Duration::seconds(100));
}

}  // namespace
}  // namespace zc::sim
