#include "zc/sim/jitter.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TEST(JitterModel, DefaultIsIdentity) {
  JitterModel j;
  EXPECT_EQ(j.apply(10_us), 10_us);
  EXPECT_EQ(j.apply(Duration::zero()), Duration::zero());
}

TEST(JitterModel, ZeroDurationNeverPerturbed) {
  JitterModel j{{.sigma = 0.5, .outlier_prob = 0.5, .outlier_factor = 100.0}, 1};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(j.apply(Duration::zero()), Duration::zero());
  }
}

TEST(JitterModel, UnitMeanOverManySamples) {
  JitterModel j{{.sigma = 0.1}, 99};
  const Duration base = 100_us;
  double sum_ratio = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum_ratio += j.apply(base) / base;
  }
  EXPECT_NEAR(sum_ratio / n, 1.0, 0.01);
}

TEST(JitterModel, OutliersAppearAtExpectedRate) {
  JitterModel j{{.sigma = 0.0, .outlier_prob = 0.01, .outlier_factor = 50.0}, 7};
  int outliers = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (j.apply(1_us) > 10_us) {
      ++outliers;
    }
  }
  EXPECT_NEAR(static_cast<double>(outliers) / n, 0.01, 0.002);
}

TEST(JitterModel, DeterministicForSeed) {
  JitterModel a{{.sigma = 0.2}, 5};
  JitterModel b{{.sigma = 0.2}, 5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.apply(10_us), b.apply(10_us));
  }
}

TEST(JitterModel, SeedsProduceDifferentStreams) {
  JitterModel a{{.sigma = 0.2}, 5};
  JitterModel b{{.sigma = 0.2}, 6};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.apply(10_us) == b.apply(10_us)) ? 1 : 0;
  }
  EXPECT_LT(same, 10);
}

}  // namespace
}  // namespace zc::sim
