// Differential equivalence harness for the scheduler ready-structure
// refactor (DESIGN.md §12).
//
// Two layers of defense:
//
//  1. Golden schedules: the traces below were recorded from the original
//     O(n)-scan scheduler (linear pick_next / fire_due_timers, after the
//     reschedule-rotation fix) and must be reproduced bit-for-bit by the
//     indexed ready-heap — in deterministic mode and under stress seeds
//     1/7/42. Any tie-break or timer-ordering drift fails loudly here.
//
//  2. Online policy cross-check: `Scheduler::enable_policy_check()` makes
//     every scheduling decision re-derive the winner with the reference
//     O(n) scan over all threads and throw on disagreement with the heap.
//     This validates the structure on *live* state — including scenarios
//     (contended mutexes with wake-one handoff) whose wakeup order
//     legitimately differs from the pre-refactor scheduler and therefore
//     cannot be covered by recorded goldens.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "equiv_scenarios.hpp"
#include "zc/sim/scheduler.hpp"

namespace zc::sim {
namespace {

struct Golden {
  const char* scenario;
  std::uint64_t seed;  // 0 = deterministic (stress off)
  const char* trace;
};

// Captured from the pre-refactor linear-scan scheduler. Do not regenerate
// from the heap scheduler: that would turn the differential test into a
// self-comparison.
const Golden kGoldens[] = {
    {"ties_rotation", 0,
     "a@0;b@0;c@0;a@0;b@0;c@0;a@0;b@0;c@0;a@0;b@0;c@0;a@0;b@0;c@0;a@0;b@0;"
     "c@0"},
    {"ties_rotation", 1,
     "c@0;b@0;b@0;b@0;c@0;a@0;a@0;b@0;c@0;b@0;c@0;c@0;c@0;b@0;a@0;a@0;a@0;"
     "a@0"},
    {"ties_rotation", 7,
     "c@0;a@0;c@0;c@0;c@0;c@0;a@0;a@0;b@0;a@0;b@0;c@0;b@0;a@0;b@0;a@0;b@0;"
     "b@0"},
    {"ties_rotation", 42,
     "a@0;b@0;c@0;c@0;c@0;c@0;c@0;c@0;b@0;b@0;a@0;b@0;a@0;b@0;b@0;a@0;a@0;"
     "a@0"},
    {"mixed_advance_sleep", 0,
     "t0@50;t4@62;t1@63;t5@75;t2@76;t3@89;t0@107;t4@131;t1@133;t3@145;t5@157;"
     "t2@159;t0@171;t0@201;t4@207;t3@208;t2@209;t1@210;t3@246;t5@246;t1@251;"
     "t4@256;t2@261;t0@272;t5@281;t3@316;t2@318;t1@335;t5@337;t4@339;t0@350;"
     "t2@382;t1@386;t4@389;t3@393;t5@400;t0@435;t1@444;t4@446;t2@453;t0@465;"
     "t5@470;t3@477;t1@485;t4@495;t2@505;t5@505;t3@515;t0@517;t1@550;t4@559;"
     "t3@566;t0@576;t5@582;t2@583;t1@622;t3@624;t4@630;t0@642;t5@666;t2@668;"
     "t0@672;t3@689;t1@701;t4@708;t5@717;t2@720;t3@727;t1@742;t0@745;t5@752;"
     "t4@757;t2@772;t3@799;t5@810;t0@825;t1@828;t2@831;t4@842;t5@875;t3@878;"
     "t1@881;t4@894;t2@897;t0@912;t1@941;t0@942;t5@947;t4@953;t3@964;t2@970;"
     "t1@982;t5@982;t3@1002;t4@1002;t2@1022"},
    {"mixed_advance_sleep", 1,
     "t0@50;t4@62;t1@63;t5@75;t2@76;t3@89;t0@107;t4@131;t1@133;t3@145;t5@157;"
     "t2@159;t0@171;t0@201;t4@207;t3@208;t2@209;t1@210;t3@246;t5@246;t1@251;"
     "t4@256;t2@261;t0@272;t5@281;t3@316;t2@318;t1@335;t5@337;t4@339;t0@350;"
     "t2@382;t1@386;t4@389;t3@393;t5@400;t0@435;t1@444;t4@446;t2@453;t0@465;"
     "t5@470;t3@477;t1@485;t4@495;t5@505;t2@505;t3@515;t0@517;t1@550;t4@559;"
     "t3@566;t0@576;t5@582;t2@583;t1@622;t3@624;t4@630;t0@642;t5@666;t2@668;"
     "t0@672;t3@689;t1@701;t4@708;t5@717;t2@720;t3@727;t1@742;t0@745;t5@752;"
     "t4@757;t2@772;t3@799;t5@810;t0@825;t1@828;t2@831;t4@842;t5@875;t3@878;"
     "t1@881;t4@894;t2@897;t0@912;t1@941;t0@942;t5@947;t4@953;t3@964;t2@970;"
     "t1@982;t5@982;t3@1002;t4@1002;t2@1022"},
    {"mixed_advance_sleep", 7,
     "t0@50;t4@62;t1@63;t5@75;t2@76;t3@89;t0@107;t4@131;t1@133;t3@145;t5@157;"
     "t2@159;t0@171;t0@201;t4@207;t3@208;t2@209;t1@210;t3@246;t5@246;t1@251;"
     "t4@256;t2@261;t0@272;t5@281;t3@316;t2@318;t1@335;t5@337;t4@339;t0@350;"
     "t2@382;t1@386;t4@389;t3@393;t5@400;t0@435;t1@444;t4@446;t2@453;t0@465;"
     "t5@470;t3@477;t1@485;t4@495;t2@505;t5@505;t3@515;t0@517;t1@550;t4@559;"
     "t3@566;t0@576;t5@582;t2@583;t1@622;t3@624;t4@630;t0@642;t5@666;t2@668;"
     "t0@672;t3@689;t1@701;t4@708;t5@717;t2@720;t3@727;t1@742;t0@745;t5@752;"
     "t4@757;t2@772;t3@799;t5@810;t0@825;t1@828;t2@831;t4@842;t5@875;t3@878;"
     "t1@881;t4@894;t2@897;t0@912;t1@941;t0@942;t5@947;t4@953;t3@964;t2@970;"
     "t1@982;t5@982;t3@1002;t4@1002;t2@1022"},
    {"mixed_advance_sleep", 42,
     "t0@50;t4@62;t1@63;t5@75;t2@76;t3@89;t0@107;t4@131;t1@133;t3@145;t5@157;"
     "t2@159;t0@171;t0@201;t4@207;t3@208;t2@209;t1@210;t3@246;t5@246;t1@251;"
     "t4@256;t2@261;t0@272;t5@281;t3@316;t2@318;t1@335;t5@337;t4@339;t0@350;"
     "t2@382;t1@386;t4@389;t3@393;t5@400;t0@435;t1@444;t4@446;t2@453;t0@465;"
     "t5@470;t3@477;t1@485;t4@495;t5@505;t2@505;t3@515;t0@517;t1@550;t4@559;"
     "t3@566;t0@576;t5@582;t2@583;t1@622;t3@624;t4@630;t0@642;t5@666;t2@668;"
     "t0@672;t3@689;t1@701;t4@708;t5@717;t2@720;t3@727;t1@742;t0@745;t5@752;"
     "t4@757;t2@772;t3@799;t5@810;t0@825;t1@828;t2@831;t4@842;t5@875;t3@878;"
     "t1@881;t4@894;t2@897;t0@912;t1@941;t0@942;t5@947;t4@953;t3@964;t2@970;"
     "t1@982;t5@982;t4@1002;t3@1002;t2@1022"},
    {"timer_at_min_clock", 0,
     "sleeper@0;sleeper@100;runner@100;sleeper@110;late@150;runner@200"},
    {"timer_at_min_clock", 1,
     "sleeper@0;sleeper@100;runner@100;sleeper@110;late@150;runner@200"},
    {"timer_at_min_clock", 7,
     "sleeper@0;runner@100;sleeper@100;sleeper@110;late@150;runner@200"},
    {"timer_at_min_clock", 42,
     "sleeper@0;runner@100;sleeper@100;sleeper@110;late@150;runner@200"},
    {"latch_barrier_fan", 0,
     "producer@75;w0@75;w1@75;w2@75;w3@75;producer@75;w0@95;w2@99;w1@112;"
     "w3@116;w0@116;w1@116;w2@116;w3@116;w0@141;w2@145;w1@158;w3@162;w0@162;"
     "w1@162;w2@162;w3@162;w3@183;w0@192;w2@196;w1@209;w0@209;w1@209;w2@209;"
     "w3@209"},
    {"latch_barrier_fan", 1,
     "producer@75;w2@75;w1@75;producer@75;w3@75;w0@75;w0@95;w2@99;w1@112;"
     "w3@116;w3@116;w2@116;w0@116;w1@116;w0@141;w2@145;w1@158;w3@162;w3@162;"
     "w1@162;w2@162;w0@162;w3@183;w0@192;w2@196;w1@209;w3@209;w0@209;w1@209;"
     "w2@209"},
    {"latch_barrier_fan", 7,
     "producer@75;w0@75;w3@75;w2@75;w1@75;producer@75;w0@95;w2@99;w1@112;"
     "w3@116;w2@116;w3@116;w1@116;w0@116;w0@141;w2@145;w1@158;w3@162;w3@162;"
     "w0@162;w1@162;w2@162;w3@183;w0@192;w2@196;w1@209;w2@209;w0@209;w1@209;"
     "w3@209"},
    {"latch_barrier_fan", 42,
     "producer@75;producer@75;w3@75;w1@75;w0@75;w2@75;w0@95;w2@99;w1@112;"
     "w3@116;w3@116;w2@116;w1@116;w0@116;w0@141;w2@145;w1@158;w3@162;w3@162;"
     "w2@162;w1@162;w0@162;w3@183;w0@192;w2@196;w1@209;w1@209;w2@209;w0@209;"
     "w3@209"},
    {"timeout_vs_notify", 0,
     "w0@60;w0@69;w1@100;producer@100;w2@100;producer@100;w2@105;w1@109"},
    {"timeout_vs_notify", 1,
     "w0@60;w0@69;producer@100;producer@100;w1@100;w2@100;w2@105;w1@109"},
    {"timeout_vs_notify", 7,
     "w0@60;w0@69;w1@100;producer@100;w2@100;producer@100;w2@105;w1@109"},
    {"timeout_vs_notify", 42,
     "w0@60;w0@69;producer@100;producer@100;w2@100;w1@100;w2@105;w1@109"},
};

const equiv::Scenario& find_scenario(const std::string& name) {
  for (const auto& sc : equiv::scenarios()) {
    if (name == sc.name) {
      return sc;
    }
  }
  throw std::logic_error("unknown scenario " + name);
}

class GoldenSchedule : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenSchedule, HeapSchedulerReproducesLinearScanTrace) {
  const Golden& g = GetParam();
  Scheduler s;
  if (g.seed != 0) {
    s.enable_stress(g.seed);
  }
  const std::string trace = find_scenario(g.scenario).run(s);
  EXPECT_EQ(trace, g.trace) << g.scenario << " seed=" << g.seed;
}

TEST_P(GoldenSchedule, PolicyCheckedRunMatchesGoldenToo) {
  // Same run with the online O(n) reference cross-check enabled: the heap
  // must not merely produce the right trace, every individual pick must
  // agree with the reference policy.
  const Golden& g = GetParam();
  Scheduler s;
  if (g.seed != 0) {
    s.enable_stress(g.seed);
  }
  s.enable_policy_check();
  const std::string trace = find_scenario(g.scenario).run(s);
  EXPECT_EQ(trace, g.trace) << g.scenario << " seed=" << g.seed;
}

std::string param_name(const ::testing::TestParamInfo<Golden>& info) {
  return std::string{info.param.scenario} + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds147And42, GoldenSchedule,
                         ::testing::ValuesIn(kGoldens), param_name);

// Contended-mutex traffic cannot be golden-checked against the pre-refactor
// scheduler (wake-one handoff intentionally changed wakeup order), so it is
// covered by the online cross-check instead: every pick during a heavily
// contended run must match the reference scan, under the deterministic
// policy and all three stress seeds.
TEST(SchedulerPolicyCheck, ContendedMutexRunSatisfiesReferencePolicy) {
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1},
                                   std::uint64_t{7}, std::uint64_t{42}}) {
    Scheduler s;
    if (seed != 0) {
      s.enable_stress(seed);
    }
    s.enable_policy_check();
    Mutex mutexes[3] = {Mutex{"m0"}, Mutex{"m1"}, Mutex{"m2"}};
    int done = 0;
    for (int t = 0; t < 8; ++t) {
      s.spawn("t" + std::to_string(t), [&s, &mutexes, &done, t] {
        for (int i = 0; i < 50; ++i) {
          s.advance(Duration::nanoseconds(10 + (t * 5 + i) % 9));
          LockGuard lock{mutexes[(t + i) % 3], s};
          s.advance(Duration::nanoseconds(7));
          if (i % 8 == 3) {
            s.reschedule();
          }
        }
        ++done;
      });
    }
    s.run();  // throws SimError on any heap-vs-reference divergence
    EXPECT_EQ(done, 8) << "seed=" << seed;
  }
}

TEST(SchedulerPolicyCheck, TimedWaitsSatisfyReferencePolicy) {
  // try_lock_for timeouts racing handoffs, checked against the reference
  // policy at every decision.
  for (const std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{7}}) {
    Scheduler s;
    if (seed != 0) {
      s.enable_stress(seed);
    }
    s.enable_policy_check();
    Mutex m{"contended"};
    int acquired = 0;
    int timed_out = 0;
    for (int t = 0; t < 6; ++t) {
      s.spawn("t" + std::to_string(t), [&s, &m, &acquired, &timed_out, t] {
        for (int i = 0; i < 12; ++i) {
          s.advance(Duration::nanoseconds(5 + t));
          if (m.try_lock_for(s, Duration::nanoseconds(40 + 10 * (t % 3)))) {
            s.advance(Duration::nanoseconds(25));
            m.unlock(s);
            ++acquired;
          } else {
            ++timed_out;
          }
        }
      });
    }
    s.run();
    EXPECT_EQ(acquired + timed_out, 72) << "seed=" << seed;
    EXPECT_GT(acquired, 0) << "seed=" << seed;
  }
}

// Regression for the deprioritized-flag lifecycle (ISSUE 6 satellite):
// three equal-clock threads calling reschedule() in rotation must hand the
// CPU around fairly — A,B,C,A,B,C — not let spawn order re-pick A forever
// once every thread carries the flag.
TEST(SchedulerReschedule, EqualClockRotationIsFair) {
  Scheduler s;
  std::string order;
  for (int t = 0; t < 3; ++t) {
    s.spawn(std::string(1, static_cast<char>('A' + t)), [&s, &order] {
      for (int i = 0; i < 4; ++i) {
        order += s.current().name();
        s.reschedule();
      }
    });
  }
  s.run();
  EXPECT_EQ(order, "ABCABCABCABC");
}

TEST(SchedulerReschedule, FlagClearsOnlyWhenScheduled) {
  // B reschedules once while C (spawned later) is a clean tie: C must pass
  // B exactly once, after which B is back to spawn-order priority.
  Scheduler s;
  std::string order;
  s.spawn("A", [&s, &order] {
    order += 'A';
    s.reschedule();  // demote A: B and C get the CPU first
    order += 'A';
  });
  s.spawn("B", [&s, &order] {
    order += 'B';
    s.reschedule();  // demote B behind C, but older demotion beats A's
    order += 'B';
  });
  s.spawn("C", [&s, &order] {
    order += 'C';
    order += 'C';
  });
  s.run();
  EXPECT_EQ(order, "ABCCAB");
}

}  // namespace
}  // namespace zc::sim
