// Property tests for the deterministic scheduler: randomized thread
// programs must produce identical interleavings on every run, clocks must
// be monotone per thread, and the min-clock policy must hold at every
// scheduling decision.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "zc/sim/rng.hpp"
#include "zc/sim/scheduler.hpp"

namespace zc::sim {
namespace {

struct Step {
  int thread;
  TimePoint at;
};

std::vector<Step> run_random_program(std::uint64_t seed, int threads) {
  Scheduler s;
  std::vector<Step> steps;
  // Each thread owns a pre-generated list of advance amounts so the RNG is
  // consumed deterministically regardless of interleaving.
  Rng rng{seed};
  std::vector<std::vector<Duration>> plans(static_cast<std::size_t>(threads));
  for (auto& plan : plans) {
    const int n = 5 + static_cast<int>(rng.uniform_index(20));
    for (int i = 0; i < n; ++i) {
      plan.push_back(Duration::nanoseconds(
          static_cast<std::int64_t>(rng.uniform_index(5000))));
    }
  }
  for (int t = 0; t < threads; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &steps, &plans, t] {
      for (const Duration d : plans[static_cast<std::size_t>(t)]) {
        s.advance(d);
        steps.push_back({t, s.now()});
      }
    });
  }
  s.run();
  return steps;
}

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST_P(SchedulerProperty, InterleavingIsReproducible) {
  const auto a = run_random_program(GetParam(), 6);
  const auto b = run_random_program(GetParam(), 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].thread, b[i].thread);
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

TEST_P(SchedulerProperty, PerThreadClocksAreMonotone) {
  const auto steps = run_random_program(GetParam(), 6);
  std::vector<TimePoint> last(6, TimePoint::zero());
  for (const Step& step : steps) {
    ASSERT_GE(step.at, last[static_cast<std::size_t>(step.thread)]);
    last[static_cast<std::size_t>(step.thread)] = step.at;
  }
}

TEST_P(SchedulerProperty, RecordOrderFollowsMinClockPolicy) {
  // A thread only resumes (and records its step) when its clock is minimal
  // among runnable threads, so the recorded completion times are globally
  // nondecreasing — the event-ordering guarantee the DES rests on.
  const auto steps = run_random_program(GetParam(), 4);
  TimePoint last;
  for (const Step& step : steps) {
    EXPECT_GE(step.at, last);
    last = step.at;
  }
}

TEST_P(SchedulerProperty, HorizonIsMaxStep) {
  Scheduler s;
  Rng rng{GetParam()};
  std::vector<Duration> totals(4);
  for (int t = 0; t < 4; ++t) {
    const int n = 3 + static_cast<int>(rng.uniform_index(10));
    std::vector<Duration> plan;
    for (int i = 0; i < n; ++i) {
      plan.push_back(Duration::nanoseconds(
          static_cast<std::int64_t>(rng.uniform_index(1000))));
      totals[static_cast<std::size_t>(t)] += plan.back();
    }
    s.spawn("t" + std::to_string(t), [&s, plan] {
      for (const Duration d : plan) {
        s.advance(d);
      }
    });
  }
  s.run();
  const Duration expected =
      *std::max_element(totals.begin(), totals.end());
  EXPECT_EQ(s.horizon().since_start(), expected);
}

// --- interleaving stress mode -------------------------------------------
//
// The stress scheduler perturbs ready-thread order at equal-clock ties and
// at lock/wait points. Two properties must survive any perturbation: the
// schedule stays a valid min-clock interleaving, and a given stress seed
// reproduces the exact same schedule.

std::vector<Step> run_stressed_program(std::uint64_t plan_seed,
                                       std::uint64_t stress_seed,
                                       int threads) {
  Scheduler s;
  s.enable_stress(stress_seed);
  std::vector<Step> steps;
  Mutex mutex;  // lock/unlock exercises stress_point + notify paths
  Rng rng{plan_seed};
  std::vector<std::vector<Duration>> plans(static_cast<std::size_t>(threads));
  for (auto& plan : plans) {
    const int n = 5 + static_cast<int>(rng.uniform_index(20));
    for (int i = 0; i < n; ++i) {
      plan.push_back(Duration::nanoseconds(
          static_cast<std::int64_t>(rng.uniform_index(5000))));
    }
  }
  for (int t = 0; t < threads; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &steps, &plans, &mutex, t] {
      for (const Duration d : plans[static_cast<std::size_t>(t)]) {
        s.advance(d);
        LockGuard lock{mutex, s};
        steps.push_back({t, s.now()});
      }
    });
  }
  s.run();
  return steps;
}

TEST_P(SchedulerProperty, StressedScheduleIsReproduciblePerSeed) {
  const auto a = run_stressed_program(7, GetParam(), 6);
  const auto b = run_stressed_program(7, GetParam(), 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].thread, b[i].thread);
    EXPECT_EQ(a[i].at, b[i].at);
  }
}

TEST_P(SchedulerProperty, StressedScheduleIsAValidInterleaving) {
  // Stress only permutes equal-clock threads, so per-thread monotonicity
  // and the globally nondecreasing record order both still hold. Any
  // violation here would mean a stressed schedule the timing model could
  // never produce.
  const auto steps = run_stressed_program(GetParam(), GetParam() * 31 + 1, 6);
  std::vector<TimePoint> last_per_thread(6, TimePoint::zero());
  TimePoint last;
  for (const Step& step : steps) {
    ASSERT_GE(step.at, last_per_thread[static_cast<std::size_t>(step.thread)]);
    last_per_thread[static_cast<std::size_t>(step.thread)] = step.at;
    EXPECT_GE(step.at, last);
    last = step.at;
  }
}

TEST(SchedulerStressMode, StepMultisetMatchesUnstressedRun) {
  // Perturbation changes the order among ties, never the work: each thread
  // performs (and records) exactly the same number of steps as in the
  // deterministic run.
  for (std::uint64_t stress_seed = 1; stress_seed <= 8; ++stress_seed) {
    auto base = run_random_program(11, 5);
    auto stressed = run_stressed_program(11, stress_seed, 5);
    // The stressed variant adds a mutex, which can delay a recording to the
    // unlocker's clock — so compare per-thread step counts, which perturbation
    // must preserve exactly.
    std::vector<int> base_counts(5, 0);
    std::vector<int> stressed_counts(5, 0);
    for (const Step& s : base) {
      ++base_counts[static_cast<std::size_t>(s.thread)];
    }
    for (const Step& s : stressed) {
      ++stressed_counts[static_cast<std::size_t>(s.thread)];
    }
    EXPECT_EQ(base_counts, stressed_counts) << "stress_seed=" << stress_seed;
  }
}

TEST(SchedulerStressMode, DistinctSeedsExploreDistinctInterleavings) {
  // Not a hard guarantee per pair of seeds, but across 8 seeds the RNG must
  // produce at least two different schedules — otherwise stress mode is
  // doing nothing.
  std::vector<std::vector<Step>> logs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    logs.push_back(run_stressed_program(3, seed, 6));
  }
  bool any_difference = false;
  for (std::size_t i = 1; i < logs.size() && !any_difference; ++i) {
    if (logs[i].size() != logs[0].size()) {
      any_difference = true;
      break;
    }
    for (std::size_t j = 0; j < logs[i].size(); ++j) {
      if (logs[i][j].thread != logs[0][j].thread ||
          logs[i][j].at != logs[0][j].at) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SchedulerStressMode, StressedTiesStillRespectMinClockPolicy) {
  // Three threads that only ever advance by the same amount are perpetually
  // tied; stress mode shuffles who goes first but may never run a thread
  // whose clock exceeds another runnable thread's.
  Scheduler s;
  s.enable_stress(42);
  TimePoint last;
  int records = 0;
  for (int t = 0; t < 3; ++t) {
    s.spawn("t" + std::to_string(t), [&] {
      for (int i = 0; i < 50; ++i) {
        s.advance(Duration::nanoseconds(100));
        EXPECT_GE(s.now(), last);
        last = s.now();
        ++records;
      }
    });
  }
  s.run();
  EXPECT_EQ(records, 150);
}

TEST(SchedulerStress, ManyFibersManySwitches) {
  Scheduler s;
  constexpr int kThreads = 64;
  constexpr int kSteps = 200;
  long completed = 0;
  for (int t = 0; t < kThreads; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &completed, t] {
      for (int i = 0; i < kSteps; ++i) {
        s.advance(Duration::nanoseconds(1 + (t + i) % 7));
      }
      ++completed;
    });
  }
  s.run();
  EXPECT_EQ(completed, kThreads);
}

TEST(SchedulerStress, SpawnCascade) {
  // Threads spawning threads spawning threads — clocks inherited correctly.
  Scheduler s;
  int leaves = 0;
  std::function<void(int)> spawn_tree = [&](int depth) {
    s.advance(Duration::microseconds(1));
    if (depth == 0) {
      ++leaves;
      EXPECT_GE(s.now().since_start(), Duration::microseconds(1));
      return;
    }
    for (int c = 0; c < 2; ++c) {
      s.spawn("d" + std::to_string(depth) + "c" + std::to_string(c),
              [&spawn_tree, depth] { spawn_tree(depth - 1); });
    }
  };
  s.spawn("root", [&] { spawn_tree(4); });
  s.run();
  EXPECT_EQ(leaves, 16);
}

}  // namespace
}  // namespace zc::sim
