#pragma once

// Deterministic scheduler scenarios shared by the golden-equivalence test
// (tests/sim/scheduler_equiv_test.cpp). Each scenario drives a Scheduler
// through a fixed multi-thread program and returns the interleaving as a
// compact trace string ("name@ns;name@ns;...") recording every step a
// thread takes, with its virtual clock.
//
// The golden strings embedded in the test were captured from the original
// O(n)-scan scheduler (linear pick_next / fire_due_timers) *before* the
// indexed ready-heap landed; the test asserts the heap scheduler reproduces
// them bit-for-bit, in deterministic mode and under stress seeds 1/7/42.
// The scenarios deliberately avoid contended Mutex acquisition: the
// wake-one direct-handoff unlock intentionally changed contended-lock
// wakeup order (see DESIGN.md §12), while everything exercised here —
// min-clock selection, spawn-order and deprioritized tie-breaks, the timer
// wheel, timed waits, latch/barrier broadcast — is required to be
// schedule-identical across the two implementations.

#include <string>
#include <vector>

#include "zc/sim/scheduler.hpp"

namespace zc::sim::equiv {

class TraceLog {
 public:
  void record(Scheduler& s) {
    if (!trace_.empty()) {
      trace_ += ';';
    }
    trace_ += s.current().name();
    trace_ += '@';
    trace_ += std::to_string(s.now().since_start().ns());
  }

  [[nodiscard]] const std::string& str() const { return trace_; }

 private:
  std::string trace_;
};

/// Three equal-clock threads calling reschedule() in rotation: the
/// deprioritized_ one-shot flag must rotate the CPU fairly (A,B,C,A,B,C...)
/// instead of letting the flag stick and starve/churn a thread.
inline std::string ties_rotation(Scheduler& s) {
  TraceLog log;
  for (int t = 0; t < 3; ++t) {
    s.spawn(std::string(1, static_cast<char>('a' + t)), [&s, &log] {
      for (int i = 0; i < 6; ++i) {
        log.record(s);
        s.reschedule();
      }
    });
  }
  s.run();
  return log.str();
}

/// Mixed advance/sleep/reschedule traffic over six threads with staggered
/// per-thread step sizes — the general-purpose churn scenario exercising
/// ready-structure ordering, timer arming, and deprioritized ties together.
inline std::string mixed_advance_sleep(Scheduler& s) {
  TraceLog log;
  for (int t = 0; t < 6; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &log, t] {
      for (int i = 0; i < 12; ++i) {
        s.advance(Duration::nanoseconds(50 + (t * 13 + i * 7) % 40));
        log.record(s);
        if (i % 3 == 2) {
          s.sleep_for(Duration::nanoseconds(30 + (t * 11) % 25));
          log.record(s);
        }
        if (i % 5 == 4) {
          s.reschedule();
        }
      }
    });
  }
  s.run();
  return log.str();
}

/// Timer-edge scenario: a sleeper's deadline lands *exactly* on the minimum
/// runnable clock. fire_due_timers may fire it (no runnable clock is
/// strictly smaller), and the woken sleeper then competes in the same tie
/// bucket as the runnable thread.
inline std::string timer_at_min_clock(Scheduler& s) {
  TraceLog log;
  s.spawn("sleeper", [&s, &log] {
    log.record(s);
    s.sleep_for(Duration::nanoseconds(100));  // due exactly at runner's 100
    log.record(s);
    s.advance(Duration::nanoseconds(10));
    log.record(s);
  });
  s.spawn("runner", [&s, &log] {
    s.advance(Duration::nanoseconds(100));
    log.record(s);
    s.advance(Duration::nanoseconds(100));
    log.record(s);
  });
  s.spawn("late", [&s, &log] {
    s.advance(Duration::nanoseconds(150));
    log.record(s);
  });
  s.run();
  return log.str();
}

/// Latch broadcast plus barrier rounds: WaitList::notify_all wakes several
/// blocked threads at once; the ready structure must order the woken set
/// exactly as the linear scan did.
inline std::string latch_barrier_fan(Scheduler& s) {
  TraceLog log;
  auto latch = std::make_shared<Latch>();
  auto barrier = std::make_shared<Barrier>(4);
  for (int t = 0; t < 4; ++t) {
    s.spawn("w" + std::to_string(t), [&s, &log, latch, barrier, t] {
      latch->wait(s);
      log.record(s);
      for (int round = 0; round < 3; ++round) {
        s.advance(Duration::nanoseconds(20 + (t * 17 + round * 5) % 30));
        log.record(s);
        barrier->arrive_and_wait(s);
        log.record(s);
      }
    });
  }
  s.spawn("producer", [&s, &log, latch] {
    s.advance(Duration::nanoseconds(75));
    log.record(s);
    latch->set(s);
    log.record(s);
  });
  s.run();
  return log.str();
}

/// Timeout racing a notify: waiters arm wait_for deadlines before, exactly
/// at, and after the producer's set time. The "exactly at" waiter probes
/// the wake-vs-timeout tie; whichever side the policy picks must be picked
/// identically by both scheduler implementations.
inline std::string timeout_vs_notify(Scheduler& s) {
  TraceLog log;
  auto latch = std::make_shared<Latch>();
  const Duration deadlines[] = {Duration::nanoseconds(60),
                                Duration::nanoseconds(100),
                                Duration::nanoseconds(140)};
  for (int t = 0; t < 3; ++t) {
    s.spawn("w" + std::to_string(t), [&s, &log, latch, &deadlines, t] {
      const bool notified = latch->wait_for(s, deadlines[t]);
      log.record(s);
      s.advance(Duration::nanoseconds(notified ? 5 : 9));
      log.record(s);
    });
  }
  s.spawn("producer", [&s, &log, latch] {
    s.advance(Duration::nanoseconds(100));  // ties w1's deadline exactly
    log.record(s);
    latch->set(s);
    log.record(s);
  });
  s.run();
  return log.str();
}

struct Scenario {
  const char* name;
  std::string (*run)(Scheduler&);
};

inline const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = {
      {"ties_rotation", &ties_rotation},
      {"mixed_advance_sleep", &mixed_advance_sleep},
      {"timer_at_min_clock", &timer_at_min_clock},
      {"latch_barrier_fan", &latch_barrier_fan},
      {"timeout_vs_notify", &timeout_vs_notify},
  };
  return all;
}

}  // namespace zc::sim::equiv
