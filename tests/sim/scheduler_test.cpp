#include "zc/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TEST(Scheduler, SingleThreadAdvances) {
  Scheduler s;
  TimePoint end;
  s.run_single([&] {
    s.advance(5_us);
    s.advance(3_us);
    end = s.now();
  });
  EXPECT_EQ(end, TimePoint::zero() + 8_us);
  EXPECT_EQ(s.horizon(), TimePoint::zero() + 8_us);
}

TEST(Scheduler, MinClockFirstInterleaving) {
  Scheduler s;
  std::vector<std::string> order;
  s.spawn("a", [&] {
    order.push_back("a0");
    s.advance(10_us);
    order.push_back("a1");
  });
  s.spawn("b", [&] {
    order.push_back("b0");
    s.advance(4_us);
    order.push_back("b1");
    s.advance(4_us);
    order.push_back("b2");
  });
  s.run();
  // a starts (tie at t=0, lower id), advances to 10 -> b runs at 0, 4, 8,
  // then a resumes at 10.
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "b1", "b2", "a1"}));
}

TEST(Scheduler, TieBrokenBySpawnOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    s.spawn("t" + std::to_string(i), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, AdvanceToOnlyMovesForward) {
  Scheduler s;
  s.run_single([&] {
    s.advance(10_us);
    s.advance_to(TimePoint::zero() + 5_us);  // no-op, in the past
    EXPECT_EQ(s.now(), TimePoint::zero() + 10_us);
    s.advance_to(TimePoint::zero() + 15_us);
    EXPECT_EQ(s.now(), TimePoint::zero() + 15_us);
  });
}

TEST(Scheduler, NegativeAdvanceThrows) {
  Scheduler s;
  EXPECT_THROW(s.run_single([&] { s.advance(Duration::zero() - 1_ns); }), SimError);
}

TEST(Scheduler, OpsOutsideThreadThrow) {
  Scheduler s;
  EXPECT_THROW((void)s.now(), SimError);
  EXPECT_THROW(s.advance(1_us), SimError);
  EXPECT_THROW((void)s.current(), SimError);
  EXPECT_FALSE(s.in_thread());
}

TEST(Scheduler, ExceptionInThreadPropagates) {
  Scheduler s;
  s.spawn("bad", [] { throw std::runtime_error("kaput"); });
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Scheduler, WaitListBlocksUntilNotified) {
  Scheduler s;
  WaitList wl;
  std::vector<std::string> order;
  s.spawn("waiter", [&] {
    order.push_back("w:wait");
    wl.wait(s);
    order.push_back("w:woke@" + std::to_string(s.now().ns()));
  });
  s.spawn("poster", [&] {
    s.advance(7_us);
    order.push_back("p:notify");
    wl.notify_all(s, s.now() + 2_us);
  });
  s.run();
  EXPECT_EQ(order, (std::vector<std::string>{"w:wait", "p:notify", "w:woke@9000"}));
}

TEST(Scheduler, WaitListWakesAllWaiters) {
  Scheduler s;
  WaitList wl;
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    s.spawn("w" + std::to_string(i), [&] {
      wl.wait(s);
      ++woke;
      EXPECT_GE(s.now(), TimePoint::zero() + 5_us);
    });
  }
  s.spawn("poster", [&] {
    s.advance(5_us);
    wl.notify_all(s, s.now());
  });
  s.run();
  EXPECT_EQ(woke, 3);
}

TEST(Scheduler, WakeNeverMovesClockBackwards) {
  Scheduler s;
  WaitList wl;
  TimePoint woke_at;
  s.spawn("waiter", [&] {
    s.advance(20_us);
    wl.wait(s);
    woke_at = s.now();
  });
  s.spawn("poster", [&] {
    s.advance(30_us);
    wl.notify_all(s, TimePoint::zero() + 1_us);  // earlier than waiter clock
  });
  s.run();
  EXPECT_EQ(woke_at, TimePoint::zero() + 20_us);
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler s;
  WaitList wl;
  s.spawn("stuck", [&] { wl.wait(s); });
  EXPECT_THROW(s.run(), SimError);
}

TEST(Scheduler, SpawnFromInsideThreadInheritsClock) {
  Scheduler s;
  TimePoint child_start;
  s.spawn("parent", [&] {
    s.advance(12_us);
    s.spawn("child", [&] { child_start = s.now(); });
  });
  s.run();
  EXPECT_EQ(child_start, TimePoint::zero() + 12_us);
}

TEST(Scheduler, ManyThreadsContendDeterministically) {
  auto run_once = [] {
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      s.spawn("t" + std::to_string(i), [&s, &order, i] {
        for (int k = 0; k < 5; ++k) {
          s.advance(Duration::microseconds(1 + (i * 7 + k) % 3));
          order.push_back(i);
        }
      });
    }
    s.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, HorizonIsMaxOverThreads) {
  Scheduler s;
  s.spawn("short", [&] { s.advance(1_us); });
  s.spawn("long", [&] { s.advance(50_us); });
  s.run();
  EXPECT_EQ(s.horizon(), TimePoint::zero() + 50_us);
}

TEST(Scheduler, RescheduleYieldsToEqualClockPeers) {
  Scheduler s;
  std::vector<std::string> order;
  s.spawn("a", [&] {
    order.push_back("a0");
    s.reschedule();
    order.push_back("a1");
  });
  s.spawn("b", [&] { order.push_back("b0"); });
  s.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1"}));
}

}  // namespace
}  // namespace zc::sim
