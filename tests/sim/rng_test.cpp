#include "zc/sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace zc::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng r{9};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.uniform_index(8);
    ASSERT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasRoughlyUnitVariance) {
  Rng r{13};
  const int n = 50'000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    sum += z;
    sumsq += z * z;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, LognormalUnitMean) {
  Rng r{17};
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += r.lognormal_unit_mean(0.2);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, LognormalSigmaZeroIsIdentity) {
  Rng r{19};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(r.lognormal_unit_mean(0.0), 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{23};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += r.bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  // The child stream must differ from the parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace zc::sim
