#include "zc/sim/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TimePoint at(std::int64_t us) { return TimePoint::zero() + Duration::microseconds(us); }

TEST(EventLog, DisabledByDefault) {
  EventLog log;
  log.add(at(1), "x", "ignored");
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, RecordsWhenEnabled) {
  EventLog log;
  log.enable();
  log.add(at(1), "cat", "hello");
  log.add(at(2), "dog", "world");
  ASSERT_EQ(log.size(), 2u);
  const auto events = log.snapshot();
  EXPECT_EQ(events[0].text, "hello");
  EXPECT_EQ(events[1].category, "dog");
}

TEST(EventLog, RingDropsOldest) {
  EventLog log{3};
  log.enable();
  for (int i = 0; i < 5; ++i) {
    log.add(at(i), "c", std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].text, "2");
  EXPECT_EQ(events[2].text, "4");
}

TEST(EventLog, ByCategoryFilters) {
  EventLog log;
  log.enable();
  log.add(at(1), "a", "1");
  log.add(at(2), "b", "2");
  log.add(at(3), "a", "3");
  const auto as = log.by_category("a");
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[1].text, "3");
}

TEST(EventLog, ClearResets) {
  EventLog log{2};
  log.enable();
  log.add(at(1), "a", "1");
  log.add(at(2), "a", "2");
  log.add(at(3), "a", "3");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  log.add(at(4), "a", "4");
  EXPECT_EQ(log.snapshot().front().text, "4");
}

TEST(EventLog, DumpFormatsLines) {
  EventLog log;
  log.enable();
  log.add(at(1), "cat", "hello");
  std::ostringstream os;
  log.dump(os);
  EXPECT_NE(os.str().find("[cat] hello"), std::string::npos);
}

}  // namespace
}  // namespace zc::sim
