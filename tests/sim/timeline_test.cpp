#include "zc/sim/timeline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TimePoint at(std::int64_t us) { return TimePoint::zero() + Duration::microseconds(us); }

TEST(ResourceTimeline, SingleServerSerializes) {
  ResourceTimeline r{"gpu", 1};
  const Interval a = r.reserve(at(0), 10_us);
  EXPECT_EQ(a.start, at(0));
  EXPECT_EQ(a.end, at(10));
  // Second request ready at t=2 must queue behind the first.
  const Interval b = r.reserve(at(2), 5_us);
  EXPECT_EQ(b.start, at(10));
  EXPECT_EQ(b.end, at(15));
}

TEST(ResourceTimeline, IdleGapIsNotBackfilled) {
  ResourceTimeline r{"gpu", 1};
  (void)r.reserve(at(0), 2_us);
  const Interval late = r.reserve(at(10), 1_us);
  EXPECT_EQ(late.start, at(10));  // starts at ready time, resource was idle
}

TEST(ResourceTimeline, TwoServersOverlap) {
  ResourceTimeline r{"sdma", 2};
  const Interval a = r.reserve(at(0), 10_us);
  const Interval b = r.reserve(at(1), 10_us);
  EXPECT_EQ(a.start, at(0));
  EXPECT_EQ(b.start, at(1));  // second engine picks it up immediately
  const Interval c = r.reserve(at(2), 3_us);
  EXPECT_EQ(c.start, at(10));  // queues behind the earliest-free engine
}

TEST(ResourceTimeline, AvailableAndDrained) {
  ResourceTimeline r{"q", 2};
  (void)r.reserve(at(0), 4_us);
  (void)r.reserve(at(0), 9_us);
  EXPECT_EQ(r.available_at(), at(4));
  EXPECT_EQ(r.drained_at(), at(9));
  EXPECT_TRUE(r.idle_at(at(4)));
  EXPECT_FALSE(r.idle_at(at(3)));
}

TEST(ResourceTimeline, StatisticsAccumulate) {
  ResourceTimeline r{"q", 1};
  (void)r.reserve(at(0), 5_us);
  (void)r.reserve(at(1), 5_us);  // queues 4us
  EXPECT_EQ(r.reservations(), 2u);
  EXPECT_EQ(r.busy_time(), 10_us);
  EXPECT_EQ(r.queue_time(), 4_us);
}

TEST(ResourceTimeline, ZeroDurationReservationIsAllowed) {
  ResourceTimeline r{"q", 1};
  const Interval i = r.reserve(at(3), Duration::zero());
  EXPECT_EQ(i.start, i.end);
  EXPECT_EQ(i.start, at(3));
}

TEST(ResourceTimeline, ResetForgetsEverything) {
  ResourceTimeline r{"q", 1};
  (void)r.reserve(at(0), 5_us);
  r.reset();
  EXPECT_EQ(r.reservations(), 0u);
  EXPECT_EQ(r.busy_time(), Duration::zero());
  const Interval i = r.reserve(at(0), 1_us);
  EXPECT_EQ(i.start, at(0));
}

TEST(ResourceTimeline, RejectsBadArguments) {
  EXPECT_THROW(ResourceTimeline("bad", 0), std::invalid_argument);
  EXPECT_THROW(ResourceTimeline("bad", -1), std::invalid_argument);
  ResourceTimeline r{"q", 1};
  EXPECT_THROW((void)r.reserve(at(0), 1_us - 2_us), std::invalid_argument);
}

TEST(ResourceTimeline, FifoFairnessAcrossManyRequests) {
  ResourceTimeline r{"q", 1};
  TimePoint prev_end = TimePoint::zero();
  for (int i = 0; i < 100; ++i) {
    const Interval iv = r.reserve(at(i), 2_us);
    EXPECT_GE(iv.start, prev_end);
    prev_end = iv.end;
  }
  EXPECT_EQ(r.busy_time(), 200_us);
}

}  // namespace
}  // namespace zc::sim
