// The scheduler's virtual-time timer wheel: sleep_for, timed waits on the
// synchronization primitives (WaitList, Latch, Mutex), timeout-vs-signaled
// results, determinism under stress mode, and the deadlock diagnostic that
// names which primitive each blocked thread is stuck on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "zc/sim/scheduler.hpp"

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TEST(Timer, SleepForAdvancesExactlyTheRequestedDuration) {
  Scheduler s;
  s.run_single([&] {
    s.sleep_for(25_us);
    EXPECT_EQ(s.now(), TimePoint::zero() + 25_us);
    s.sleep_for(Duration::zero());  // zero sleep is just a yield point
    EXPECT_EQ(s.now(), TimePoint::zero() + 25_us);
  });
}

TEST(Timer, NegativeSleepThrows) {
  Scheduler s;
  EXPECT_THROW(s.run_single([&] { s.sleep_for(-1_us); }), SimError);
}

TEST(Timer, SleepersInterleaveWithRunnersInTimeOrder) {
  // A sleeping thread must not block a runnable one, and must wake exactly
  // when virtual time reaches its deadline — interleaved in global time
  // order with other threads' work.
  Scheduler s;
  std::vector<std::string> order;
  s.spawn("sleeper", [&] {
    s.sleep_for(30_us);
    order.push_back("sleeper@" + std::to_string(s.now().since_start().ns()));
  });
  s.spawn("worker", [&] {
    s.advance(10_us);
    order.push_back("worker@" + std::to_string(s.now().since_start().ns()));
    s.advance(40_us);
    order.push_back("worker@" + std::to_string(s.now().since_start().ns()));
  });
  s.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "worker@10000");
  EXPECT_EQ(order[1], "sleeper@30000");
  EXPECT_EQ(order[2], "worker@50000");
}

TEST(Timer, PureSleepersAdvanceVirtualTimeWithNoRunnableThread) {
  // With every thread asleep, the timer wheel itself must move the clock.
  Scheduler s;
  TimePoint a_woke, b_woke;
  s.spawn("a", [&] {
    s.sleep_for(100_us);
    a_woke = s.now();
  });
  s.spawn("b", [&] {
    s.sleep_for(60_us);
    b_woke = s.now();
  });
  s.run();
  EXPECT_EQ(a_woke, TimePoint::zero() + 100_us);
  EXPECT_EQ(b_woke, TimePoint::zero() + 60_us);
}

TEST(Timer, WaitListWaitForTimesOutAtTheDeadline) {
  Scheduler s;
  WaitList wl;
  s.run_single([&] {
    EXPECT_FALSE(wl.wait_for(s, 15_us, "test-wl"));
    EXPECT_EQ(s.now(), TimePoint::zero() + 15_us);
  });
}

TEST(Timer, WaitListWaitForZeroTimeoutFailsImmediately) {
  Scheduler s;
  WaitList wl;
  s.run_single([&] {
    EXPECT_FALSE(wl.wait_for(s, Duration::zero(), "test-wl"));
    EXPECT_EQ(s.now(), TimePoint::zero());
  });
}

TEST(Timer, WaitListWaitForSignaledBeforeDeadlineReturnsTrue) {
  Scheduler s;
  WaitList wl;
  bool signaled = false;
  s.spawn("waiter", [&] {
    signaled = wl.wait_for(s, 100_us, "test-wl");
    EXPECT_EQ(s.now(), TimePoint::zero() + 20_us);
  });
  s.spawn("poster", [&] {
    s.advance(20_us);
    wl.notify_all(s, s.now());
  });
  s.run();
  EXPECT_TRUE(signaled);
}

TEST(Timer, TimedOutWaiterIsRemovedFromTheList) {
  // After a timeout the thread must no longer be on the wait list: a later
  // notify_all must not touch it (it would corrupt scheduler state).
  Scheduler s;
  WaitList wl;
  int wakes = 0;
  s.spawn("timed", [&] {
    EXPECT_FALSE(wl.wait_for(s, 10_us, "test-wl"));
    ++wakes;
    s.advance(100_us);  // stay alive past the notify below
  });
  s.spawn("poster", [&] {
    s.advance(50_us);
    wl.notify_all(s, s.now());  // list must be empty by now
  });
  s.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Timer, LatchWaitForBothOutcomes) {
  Scheduler s;
  Latch never;
  Latch posted;
  s.spawn("timeout", [&] {
    EXPECT_FALSE(never.wait_for(s, 12_us));
    EXPECT_EQ(s.now(), TimePoint::zero() + 12_us);
  });
  s.spawn("signaled", [&] {
    EXPECT_TRUE(posted.wait_for(s, 1000_us));
    EXPECT_EQ(s.now(), TimePoint::zero() + 30_us);
  });
  s.spawn("poster", [&] {
    s.advance(30_us);
    posted.set(s);
  });
  s.run();
}

TEST(Timer, LatchWaitForAlreadySetIsImmediate) {
  Scheduler s;
  s.run_single([&] {
    Latch l;
    l.set(s);
    EXPECT_TRUE(l.wait_for(s, 5_us));
    EXPECT_EQ(s.now(), TimePoint::zero());
  });
}

TEST(Timer, MutexTryLockForAcquiresFreeLockImmediately) {
  Scheduler s;
  Mutex m{"free"};
  s.run_single([&] {
    EXPECT_TRUE(m.try_lock_for(s, 10_us));
    EXPECT_EQ(s.now(), TimePoint::zero());
    m.unlock(s);
  });
}

TEST(Timer, MutexTryLockForTimesOutUnderContention) {
  Scheduler s;
  Mutex m{"held"};
  bool got = true;
  s.spawn("holder", [&] {
    m.lock(s);
    s.advance(100_us);  // hold well past the deadline below
    m.unlock(s);
  });
  s.spawn("contender", [&] {
    s.advance(1_us);  // let the holder win the lock first
    got = m.try_lock_for(s, 20_us);
    EXPECT_EQ(s.now(), TimePoint::zero() + 21_us);
  });
  s.run();
  EXPECT_FALSE(got);
}

TEST(Timer, MutexTryLockForSucceedsWhenReleasedInTime) {
  Scheduler s;
  Mutex m{"handoff"};
  bool got = false;
  s.spawn("holder", [&] {
    m.lock(s);
    s.advance(8_us);
    m.unlock(s);
  });
  s.spawn("contender", [&] {
    s.advance(1_us);
    got = m.try_lock_for(s, 50_us);
    if (got) {
      EXPECT_EQ(s.now(), TimePoint::zero() + 8_us);
      m.unlock(s);
    }
  });
  s.run();
  EXPECT_TRUE(got);
}

TEST(Timer, MutexTryLockForRecursiveStillThrows) {
  Scheduler s;
  Mutex m{"rec"};
  EXPECT_THROW(s.run_single([&] {
                 m.lock(s);
                 (void)m.try_lock_for(s, 5_us);
               }),
               LockDisciplineError);
}

TEST(Timer, DeadlockDiagnosticNamesThreadsAndPrimitives) {
  // Satellite: when the simulation deadlocks, the error must say which
  // thread waits on which primitive — here both the mutex (by name) and
  // the bare wait list label.
  Scheduler s;
  Mutex m{"present-table"};
  WaitList wl;
  s.spawn("holder", [&] {
    m.lock(s);
    wl.wait(s, "Signal(kernel:vmc)");  // never notified
  });
  s.spawn("blocked", [&] {
    s.advance(1_us);
    m.lock(s);  // owner never unlocks
  });
  try {
    s.run();
    FAIL() << "expected deadlock";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'holder' on Signal(kernel:vmc)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("'blocked' on Mutex(present-table)"),
              std::string::npos)
        << what;
  }
}

TEST(Timer, SleepDeadlinesAreDeterministicUnderStress) {
  // Timer firings must not depend on stress-mode tie-breaks: wake times
  // and final clocks are identical across seeds.
  auto run_once = [](std::uint64_t seed) {
    Scheduler s;
    s.enable_stress(seed);
    std::vector<std::int64_t> wakes;
    Latch l;
    Barrier b{2};
    for (int t = 0; t < 3; ++t) {
      s.spawn("sleeper" + std::to_string(t), [&s, &wakes, t] {
        s.sleep_for(Duration::nanoseconds(1000 * (t + 1)));
        wakes.push_back(s.now().since_start().ns());
      });
    }
    // Stress points inside Latch::wait and Barrier::arrive_and_wait
    // (satellite: both are schedule-divergence points) must not perturb
    // virtual time either.
    s.spawn("latch-waiter", [&] { l.wait(s); });
    s.spawn("latch-setter", [&] {
      s.advance(2_us);
      l.set(s);
    });
    s.spawn("barrier-a", [&] { b.arrive_and_wait(s); });
    s.spawn("barrier-b", [&] {
      s.advance(5_us);
      b.arrive_and_wait(s);
    });
    s.run();
    return wakes;
  };
  const std::vector<std::int64_t> a = run_once(1);
  const std::vector<std::int64_t> b = run_once(42);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 1000);
  EXPECT_EQ(a[1], 2000);
  EXPECT_EQ(a[2], 3000);
}

TEST(Timer, WaitForResultsAreDeterministicUnderStress) {
  auto run_once = [](std::uint64_t seed) {
    Scheduler s;
    s.enable_stress(seed);
    WaitList wl;
    std::vector<bool> results;
    s.spawn("short", [&] { results.push_back(wl.wait_for(s, 5_us, "wl")); });
    s.spawn("long", [&] { results.push_back(wl.wait_for(s, 50_us, "wl")); });
    s.spawn("poster", [&] {
      s.advance(20_us);
      wl.notify_all(s, s.now());
    });
    s.run();
    return results;
  };
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const std::vector<bool> r = run_once(seed);
    ASSERT_EQ(r.size(), 2u) << seed;
    EXPECT_FALSE(r[0]) << seed;  // 5us deadline < 20us post: timeout
    EXPECT_TRUE(r[1]) << seed;   // 50us deadline > 20us post: signaled
  }
}

}  // namespace
}  // namespace zc::sim
