#include "zc/sim/fiber.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace zc::sim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int calls = 0;
  Fiber f{[&] { ++calls; }};
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(calls, 1);
}

TEST(Fiber, YieldAlternatesWithResumer) {
  std::vector<std::string> log;
  Fiber f{[&] {
    log.push_back("a");
    Fiber::yield();
    log.push_back("b");
    Fiber::yield();
    log.push_back("c");
  }};
  f.resume();
  log.push_back("1");
  f.resume();
  log.push_back("2");
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(log, (std::vector<std::string>{"a", "1", "b", "2", "c"}));
}

TEST(Fiber, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f{[&] { seen = Fiber::current(); }};
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesToResume) {
  Fiber f{[] { throw std::runtime_error("boom"); }};
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionAfterYieldPropagatesFromLaterResume) {
  Fiber f{[] {
    Fiber::yield();
    throw std::runtime_error("later");
  }};
  EXPECT_NO_THROW(f.resume());
  EXPECT_THROW(f.resume(), std::runtime_error);
}

TEST(Fiber, ResumeFinishedFiberThrows) {
  Fiber f{[] {}};
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, YieldOutsideFiberThrows) { EXPECT_THROW(Fiber::yield(), std::logic_error); }

TEST(Fiber, EmptyBodyRejected) {
  EXPECT_THROW(Fiber(std::function<void()>{}), std::invalid_argument);
}

TEST(Fiber, InterleavesTwoFibers) {
  std::vector<int> order;
  Fiber a{[&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
  }};
  Fiber b{[&] {
    order.push_back(2);
    Fiber::yield();
    order.push_back(4);
  }};
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Fiber, DeepStackUsage) {
  // Exercise a non-trivial amount of stack below a yield point.
  Fiber f{[] {
    volatile char buf[16 * 1024];
    buf[0] = 1;
    buf[sizeof(buf) - 1] = 2;
    Fiber::yield();
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(buf[sizeof(buf) - 1], 2);
  }};
  f.resume();
  f.resume();
  EXPECT_TRUE(f.finished());
}

}  // namespace
}  // namespace zc::sim
