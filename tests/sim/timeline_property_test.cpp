// Property tests for ResourceTimeline: randomized reservation streams must
// satisfy the k-server invariants for every server count.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "zc/sim/rng.hpp"
#include "zc/sim/timeline.hpp"

namespace zc::sim {
namespace {

struct Reservation {
  TimePoint ready;
  Duration dur;
  Interval placed;
};

class TimelineProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(ServersAndSeeds, TimelineProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1u, 2u, 3u)));

TEST_P(TimelineProperty, InvariantsHoldOnRandomStreams) {
  const auto [servers, seed] = GetParam();
  Rng rng{seed};
  ResourceTimeline tl{"t", servers};

  std::vector<Reservation> done;
  TimePoint ready;
  Duration total_busy;
  for (int i = 0; i < 400; ++i) {
    ready += Duration::nanoseconds(
        static_cast<std::int64_t>(rng.uniform_index(3000)));
    const Duration dur = Duration::nanoseconds(
        static_cast<std::int64_t>(rng.uniform_index(5000)));
    const Interval placed = tl.reserve(ready, dur);
    // Start is never before the requester was ready.
    ASSERT_GE(placed.start, ready);
    ASSERT_EQ(placed.end - placed.start, dur);
    done.push_back({ready, dur, placed});
    total_busy += dur;
  }

  // Aggregate accounting.
  EXPECT_EQ(tl.reservations(), 400u);
  EXPECT_EQ(tl.busy_time(), total_busy);

  // At no point are more than `servers` reservations simultaneously active:
  // sweep over interval starts and count overlaps.
  for (const Reservation& probe : done) {
    if (probe.dur.is_zero()) {
      continue;
    }
    int active = 0;
    for (const Reservation& other : done) {
      if (other.placed.start <= probe.placed.start &&
          probe.placed.start < other.placed.end) {
        ++active;
      }
    }
    ASSERT_LE(active, servers);
  }

  // Work conservation: makespan is at least total_busy / servers.
  const TimePoint drained = tl.drained_at();
  EXPECT_GE(drained.since_start().ns() * servers, total_busy.ns());
}

TEST_P(TimelineProperty, DeterministicForSameStream) {
  const auto [servers, seed] = GetParam();
  auto run = [servers = servers, seed = seed] {
    Rng rng{seed};
    ResourceTimeline tl{"t", servers};
    TimePoint ready;
    std::vector<Interval> placed;
    for (int i = 0; i < 100; ++i) {
      ready += Duration::nanoseconds(
          static_cast<std::int64_t>(rng.uniform_index(1000)));
      placed.push_back(tl.reserve(
          ready, Duration::nanoseconds(
                     static_cast<std::int64_t>(rng.uniform_index(2000)))));
    }
    return placed;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

}  // namespace
}  // namespace zc::sim
