// The sim-level lock-discipline checker: per-thread held-lock sets,
// assert_held, GuardedBy accessors, and the Mutex misuse diagnostics
// (recursive lock, foreign unlock, finishing while holding). These are the
// invariants the offload runtime's PresentTable/trace-mutex discipline
// rests on, so they get direct unit coverage here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "zc/sim/scheduler.hpp"

namespace zc::sim {
namespace {

TEST(LockDiscipline, HeldLockSetTracksAcquisitionOrder) {
  Scheduler s;
  Mutex a;
  Mutex b;
  s.run_single([&] {
    EXPECT_TRUE(s.current().held_locks().empty());
    a.lock(s);
    b.lock(s);
    const auto& held = s.current().held_locks();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_EQ(held[0], &a);
    EXPECT_EQ(held[1], &b);
    EXPECT_TRUE(s.current().holds(a));
    EXPECT_TRUE(s.current().holds(b));
    b.unlock(s);
    EXPECT_TRUE(s.current().holds(a));
    EXPECT_FALSE(s.current().holds(b));
    a.unlock(s);
    EXPECT_TRUE(s.current().held_locks().empty());
  });
}

TEST(LockDiscipline, AssertHeldPassesUnderLockAndThrowsWithout) {
  Scheduler s;
  Mutex m;
  s.run_single([&] {
    EXPECT_THROW(assert_held(m, s, "state"), LockDisciplineError);
    LockGuard lock{m, s};
    EXPECT_NO_THROW(assert_held(m, s, "state"));
  });
}

TEST(LockDiscipline, AssertHeldIsInactiveOutsideVirtualThreads) {
  // Post-run introspection has no concurrency; the checker must not fire.
  Scheduler s;
  Mutex m;
  EXPECT_NO_THROW(assert_held(m, s, "state"));
}

TEST(LockDiscipline, AssertHeldThrowsWhenAnotherThreadOwnsTheLock) {
  // Holding "a" lock is not enough — it must be *the* guard.
  Scheduler s;
  Mutex m;
  Mutex other;
  s.run_single([&] {
    LockGuard lock{other, s};
    EXPECT_THROW(assert_held(m, s, "state"), LockDisciplineError);
  });
}

TEST(LockDiscipline, GuardedByAccessorEnforcesTheGuard) {
  Scheduler s;
  Mutex m;
  GuardedBy<std::vector<int>> state{m, "test-state"};
  s.run_single([&] {
    EXPECT_THROW((void)state.get(s), LockDisciplineError);
    {
      LockGuard lock{m, s};
      state.get(s).push_back(7);
    }
    EXPECT_THROW((void)state.get(s), LockDisciplineError);
  });
  // Outside threads: quiescent reads pass.
  EXPECT_EQ(state.get(s).size(), 1u);
  EXPECT_EQ(state.unguarded()[0], 7);
}

TEST(LockDiscipline, RecursiveLockThrows) {
  Scheduler s;
  Mutex m;
  s.run_single([&] {
    LockGuard lock{m, s};
    EXPECT_THROW(m.lock(s), LockDisciplineError);
  });
}

TEST(LockDiscipline, UnlockByNonOwnerThrows) {
  Scheduler s;
  Mutex m;
  s.spawn("owner", [&] {
    m.lock(s);
    s.advance(Duration::microseconds(10));  // hold across a time advance
    m.unlock(s);
  });
  s.spawn("thief", [&] {
    s.advance(Duration::microseconds(1));  // let "owner" acquire first
    EXPECT_TRUE(m.held());
    EXPECT_FALSE(m.held_by(s.current()));
    EXPECT_THROW(m.unlock(s), LockDisciplineError);
  });
  s.run();
}

TEST(LockDiscipline, ThreadFinishingWhileHoldingALockFailsTheRun) {
  Scheduler s;
  Mutex m;
  s.spawn("leaker", [&] { m.lock(s); });
  EXPECT_THROW(s.run(), LockDisciplineError);
}

TEST(LockDiscipline, MutexOwnerIsExposedForDiagnostics) {
  Scheduler s;
  Mutex m;
  EXPECT_EQ(m.owner(), nullptr);
  s.run_single([&] {
    LockGuard lock{m, s};
    ASSERT_NE(m.owner(), nullptr);
    EXPECT_EQ(m.owner()->name(), "main");
  });
  EXPECT_EQ(m.owner(), nullptr);
}

TEST(LockDiscipline, ContendedMutexSerializesAndWakesAtUnlockTime) {
  // The pre-existing blocking semantics must survive the ownership
  // tracking: a waiter resumes no earlier than the unlocker's clock.
  Scheduler s;
  Mutex m;
  TimePoint t1_acquired;
  s.spawn("t0", [&] {
    m.lock(s);
    s.advance(Duration::microseconds(50));
    m.unlock(s);
  });
  s.spawn("t1", [&] {
    s.advance(Duration::microseconds(1));
    m.lock(s);
    t1_acquired = s.now();
    m.unlock(s);
  });
  s.run();
  EXPECT_GE(t1_acquired.since_start(), Duration::microseconds(50));
}

TEST(LockDiscipline, GuardedByAssertsUnderStressModeToo) {
  // The checker and the stress scheduler compose: violations stay
  // deterministic errors no matter the interleaving seed.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Scheduler s;
    s.enable_stress(seed);
    Mutex m;
    GuardedBy<int> counter{m, "counter"};
    int violations = 0;
    for (int t = 0; t < 3; ++t) {
      s.spawn("t" + std::to_string(t), [&] {
        try {
          ++counter.get(s);
        } catch (const LockDisciplineError&) {
          ++violations;
        }
        LockGuard lock{m, s};
        ++counter.get(s);
      });
    }
    s.run();
    EXPECT_EQ(violations, 3);
    EXPECT_EQ(counter.get(s), 3);
  }
}

}  // namespace
}  // namespace zc::sim
