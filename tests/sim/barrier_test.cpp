#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "zc/sim/scheduler.hpp"

namespace zc::sim {
namespace {

using namespace zc::sim::literals;

TEST(Latch, WaitAfterSetSynchronizesClock) {
  Scheduler s;
  Latch latch;
  TimePoint waiter_after;
  s.spawn("setter", [&] {
    s.advance(10_us);
    latch.set(s);
  });
  s.spawn("late", [&] {
    s.advance(50_us);
    latch.wait(s);  // already set: no blocking, clock unchanged
    waiter_after = s.now();
  });
  s.run();
  EXPECT_EQ(waiter_after, TimePoint::zero() + 50_us);
  EXPECT_TRUE(latch.is_set());
}

TEST(Latch, WaitBeforeSetBlocksUntilSetTime) {
  Scheduler s;
  Latch latch;
  TimePoint woke;
  s.spawn("early", [&] {
    latch.wait(s);
    woke = s.now();
  });
  s.spawn("setter", [&] {
    s.advance(25_us);
    latch.set(s);
  });
  s.run();
  EXPECT_EQ(woke, TimePoint::zero() + 25_us);
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Scheduler s;
  Barrier barrier{3};
  std::vector<TimePoint> released(3);
  for (int t = 0; t < 3; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &barrier, &released, t] {
      s.advance(Duration::microseconds(10 * (t + 1)));  // 10, 20, 30 us
      barrier.arrive_and_wait(s);
      released[static_cast<std::size_t>(t)] = s.now();
    });
  }
  s.run();
  for (const TimePoint r : released) {
    EXPECT_EQ(r, TimePoint::zero() + 30_us);  // last arrival's time
  }
}

TEST(Barrier, ReusableAcrossRounds) {
  Scheduler s;
  Barrier barrier{2};
  std::vector<TimePoint> a_times;
  s.spawn("a", [&] {
    for (int round = 0; round < 3; ++round) {
      s.advance(5_us);
      barrier.arrive_and_wait(s);
      a_times.push_back(s.now());
    }
  });
  s.spawn("b", [&] {
    for (int round = 0; round < 3; ++round) {
      s.advance(8_us);
      barrier.arrive_and_wait(s);
    }
  });
  s.run();
  ASSERT_EQ(a_times.size(), 3u);
  // Every round releases at b's (slower) arrival time: 8, 16, 24 us.
  EXPECT_EQ(a_times[0], TimePoint::zero() + 8_us);
  EXPECT_EQ(a_times[1], TimePoint::zero() + 16_us);
  EXPECT_EQ(a_times[2], TimePoint::zero() + 24_us);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Scheduler s;
  Barrier barrier{1};
  s.run_single([&] {
    s.advance(3_us);
    barrier.arrive_and_wait(s);
    EXPECT_EQ(s.now(), TimePoint::zero() + 3_us);
  });
}

TEST(Barrier, RejectsNonPositiveParties) {
  EXPECT_THROW(Barrier{0}, SimError);
  EXPECT_THROW(Barrier{-2}, SimError);
}

TEST(Barrier, MissingPartyDeadlocks) {
  Scheduler s;
  Barrier barrier{2};
  s.spawn("alone", [&] { barrier.arrive_and_wait(s); });
  EXPECT_THROW(s.run(), SimError);
}

TEST(Mutex, MutualExclusionAcrossYields) {
  Scheduler s;
  Mutex m;
  int inside = 0;
  int max_inside = 0;
  for (int t = 0; t < 4; ++t) {
    s.spawn("t" + std::to_string(t), [&s, &m, &inside, &max_inside] {
      for (int i = 0; i < 5; ++i) {
        LockGuard lock{m, s};
        ++inside;
        max_inside = std::max(max_inside, inside);
        s.advance(3_us);  // yields while holding the lock
        --inside;
      }
    });
  }
  s.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(inside, 0);
}

TEST(Mutex, UncontendedLockIsFree) {
  Scheduler s;
  Mutex m;
  s.run_single([&] {
    const TimePoint before = s.now();
    LockGuard lock{m, s};
    EXPECT_EQ(s.now(), before);  // no time passes acquiring a free lock
  });
}

TEST(Mutex, UnlockWithoutLockThrows) {
  Scheduler s;
  Mutex m;
  EXPECT_THROW(s.run_single([&] { m.unlock(s); }), SimError);
}

TEST(Mutex, WaitersResumeAtReleaseTime) {
  Scheduler s;
  Mutex m;
  TimePoint resumed;
  s.spawn("holder", [&] {
    m.lock(s);
    s.advance(40_us);
    m.unlock(s);
  });
  s.spawn("waiter", [&] {
    s.advance(1_us);
    m.lock(s);
    resumed = s.now();
    m.unlock(s);
  });
  s.run();
  EXPECT_EQ(resumed, TimePoint::zero() + 40_us);
}

}  // namespace
}  // namespace zc::sim
