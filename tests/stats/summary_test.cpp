#include "zc/stats/summary.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "zc/sim/rng.hpp"

namespace zc::stats {
namespace {

using namespace zc::sim::literals;

TEST(Median, OddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7.0}), 7.0);
}

TEST(Median, EmptyThrows) {
  EXPECT_THROW((void)median(std::vector<double>{}), std::invalid_argument);
}

TEST(Median, DurationOverload) {
  const std::vector<sim::Duration> ds{30_us, 10_us, 20_us};
  EXPECT_EQ(median(ds), 20_us);
}

TEST(Summarize, BasicStatistics) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);  // sample stddev
  EXPECT_NEAR(s.cov(), 0.4276, 0.001);
}

TEST(Summarize, SingleSampleHasZeroSpread) {
  const Summary s = summarize(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(Summarize, CovZeroForZeroMean) {
  const Summary s = summarize({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);  // guarded division
}

TEST(Summarize, DurationOverloadUsesSeconds) {
  const Summary s = summarize(std::vector<sim::Duration>{1_s, 3_s});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Summarize, LargeUniformSampleMatchesTheory) {
  // Uniform[0,1): mean 0.5, stddev sqrt(1/12) ~ 0.2887.
  sim::Rng rng{123};
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    xs.push_back(rng.uniform());
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.005);
  EXPECT_NEAR(s.stddev, 0.28868, 0.005);
  EXPECT_NEAR(s.median, 0.5, 0.01);
  EXPECT_NEAR(s.cov(), 0.57735, 0.01);
}

TEST(Median, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(median({9.0, 1.0, 5.0, 3.0, 7.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({2.0, 2.0, 2.0}), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 17.5);
}

TEST(Percentile, MatchesMedian) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), median(xs));
}

TEST(Percentile, RejectsBadArguments) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace zc::stats
