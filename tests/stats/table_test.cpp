#include "zc/stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace zc::stats {
namespace {

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t{{"Benchmark", "Ratio"}};
  t.add_row({"stencil", "0.99"});
  t.add_row({"spC", "7.80"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Benchmark | Ratio |"), std::string::npos);
  EXPECT_NE(out.find("| stencil   | 0.99  |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(7.7961, 2), "7.80");
  EXPECT_EQ(TextTable::num(1.0, 3), "1.000");
}

TEST(TextTable, CountInsertsThousandsSeparators) {
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(999), "999");
  EXPECT_EQ(TextTable::count(1000), "1,000");
  EXPECT_EQ(TextTable::count(1124258), "1,124,258");
  EXPECT_EQ(TextTable::count(307607), "307,607");
}

}  // namespace
}  // namespace zc::stats
