#include "zc/stats/repetition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "zc/stats/ascii_chart.hpp"

#include <sstream>

namespace zc::stats {
namespace {

using namespace zc::sim::literals;

TEST(Repeat, RunsRequestedTimesWithDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  const RepeatedRuns runs = repeat(4, 100, [&](std::uint64_t seed) {
    seeds.insert(seed);
    return sim::Duration::microseconds(static_cast<std::int64_t>(seed));
  });
  EXPECT_EQ(runs.times.size(), 4u);
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_TRUE(seeds.contains(101));
  EXPECT_TRUE(seeds.contains(104));
}

TEST(Repeat, RejectsNonPositiveReps) {
  EXPECT_THROW((void)repeat(0, 1, [](std::uint64_t) { return 1_us; }),
               std::invalid_argument);
}

TEST(Repeat, SummaryAndCov) {
  const RepeatedRuns runs = repeat(3, 0, [&](std::uint64_t seed) {
    return sim::Duration::microseconds(static_cast<std::int64_t>(10 * seed));
  });
  EXPECT_EQ(runs.median_time(), 20_us);
  EXPECT_GT(runs.cov(), 0.0);
}

TEST(RatioOfMedians, CopyOverConfig) {
  RepeatedRuns copy{{100_us, 110_us, 90_us}};
  RepeatedRuns zc{{50_us, 55_us, 45_us}};
  EXPECT_DOUBLE_EQ(ratio_of_medians(copy, zc), 2.0);
}

TEST(AsciiChart, RendersSeriesMarkersAndLegend) {
  AsciiChart chart{"ratios", {"S2", "S4", "S8"}};
  chart.add_series("Implicit Z-C", {1.0, 1.5, 2.0});
  chart.add_series("Eager Maps", {0.9, 1.2, 1.4});
  std::ostringstream os;
  chart.print(os, 8);
  const std::string out = os.str();
  EXPECT_NE(out.find("ratios"), std::string::npos);
  EXPECT_NE(out.find("[0] Implicit Z-C"), std::string::npos);
  EXPECT_NE(out.find("[1] Eager Maps"), std::string::npos);
  EXPECT_NE(out.find('0'), std::string::npos);
  EXPECT_NE(out.find("S2"), std::string::npos);
}

TEST(AsciiChart, ArityMismatchThrows) {
  AsciiChart chart{"x", {"a", "b"}};
  EXPECT_THROW(chart.add_series("bad", {1.0}), std::invalid_argument);
}

TEST(AsciiChart, FlatSeriesStillRenders) {
  AsciiChart chart{"flat", {"a", "b"}};
  chart.add_series("s", {1.0, 1.0});
  std::ostringstream os;
  EXPECT_NO_THROW(chart.print(os, 4));
}

}  // namespace
}  // namespace zc::stats
