// The streaming quantile sketch backs the per-tenant service stats: it
// must track SortedSamples within its documented relative-error bound,
// stay exact on count/min/max/sum, merge losslessly, and reject the
// samples the service can never produce (negative / non-finite latencies).
#include "zc/stats/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "zc/sim/rng.hpp"
#include "zc/stats/summary.hpp"

namespace zc::stats {
namespace {

TEST(QuantileSketchTest, EmptySketchThrows) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW((void)s.quantile(0.5), std::invalid_argument);
  EXPECT_THROW((void)s.min(), std::invalid_argument);
  EXPECT_THROW((void)s.max(), std::invalid_argument);
  EXPECT_THROW((void)s.mean(), std::invalid_argument);
}

TEST(QuantileSketchTest, RejectsNegativeAndNonFinite) {
  QuantileSketch s;
  EXPECT_THROW(s.record(-1.0), std::invalid_argument);
  EXPECT_THROW(s.record(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(s.record(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_EQ(s.count(), 0u);
  s.record(0.0);  // zero is a legal latency
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, QuantileBoundsRejected) {
  QuantileSketch s;
  s.record(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(QuantileSketchTest, SingleSampleIsExactEverywhere) {
  QuantileSketch s;
  s.record(42.5);
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.quantile(p), 42.5);
  }
  EXPECT_EQ(s.min(), 42.5);
  EXPECT_EQ(s.max(), 42.5);
  EXPECT_EQ(s.mean(), 42.5);
}

// At integral ranks of a 0..100 ladder every order statistic is a round
// value; the sketch's representative must land within the documented
// relative error of the exact SortedSamples answer.
TEST(QuantileSketchTest, MatchesSortedSamplesOnIntegerLadder) {
  QuantileSketch s;
  std::vector<double> raw;
  for (int i = 0; i <= 100; ++i) {
    s.record(static_cast<double>(i));
    raw.push_back(static_cast<double>(i));
  }
  SortedSamples exact{raw};
  for (double p : {0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    const double want = exact.quantile(p);
    const double got = s.quantile(p);
    EXPECT_NEAR(got, want,
                QuantileSketch::kRelativeError * std::max(want, 1.0))
        << "p=" << p;
  }
}

// Heavy-tailed stream across many binary exponents: the sketch's relative
// error must hold at every probed quantile against the exact selection.
TEST(QuantileSketchTest, RelativeErrorBoundOnLogUniformStream) {
  sim::Rng rng{7};
  QuantileSketch s;
  std::vector<double> raw;
  for (int i = 0; i < 20000; ++i) {
    // log-uniform over ~[1e-3, 1e6): exercises ~30 exponent buckets
    const double v = std::pow(10.0, rng.uniform(-3.0, 6.0));
    s.record(v);
    raw.push_back(v);
  }
  SortedSamples exact{raw};
  for (double p : {0.01, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    const double want = exact.quantile(p);
    const double got = s.quantile(p);
    EXPECT_LE(std::abs(got - want), 2.0 * QuantileSketch::kRelativeError * want)
        << "p=" << p << " want=" << want << " got=" << got;
  }
  EXPECT_EQ(s.count(), raw.size());
  EXPECT_EQ(s.min(), exact.min());
  EXPECT_EQ(s.max(), exact.max());
}

TEST(QuantileSketchTest, SumAndMeanAreExact) {
  QuantileSketch s;
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    s.record(0.5 * i);
    sum += 0.5 * i;
  }
  EXPECT_DOUBLE_EQ(s.sum(), sum);
  EXPECT_DOUBLE_EQ(s.mean(), sum / 1000.0);
}

// Merging two sketches must equal one sketch that saw both streams —
// bit-identical bins, so every quantile answer matches exactly.
TEST(QuantileSketchTest, MergeEqualsCombinedStream) {
  sim::Rng rng{11};
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch both;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(0.0, 1e4);
    (i % 2 == 0 ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  // The running sum is the one non-associative piece: merge adds the two
  // partial sums, the combined stream interleaves — same value up to
  // last-ulp rounding, not bit-identical.
  EXPECT_NEAR(a.sum(), both.sum(), 1e-9 * both.sum());
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(p), both.quantile(p)) << "p=" << p;
  }
}

TEST(QuantileSketchTest, MergeEmptyIsIdentity) {
  QuantileSketch a;
  a.record(3.0);
  a.record(9.0);
  QuantileSketch empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 3.0);
  EXPECT_EQ(a.max(), 9.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.max(), 9.0);
}

// Determinism: the same stream recorded twice gives bit-identical answers
// (the service's same-seed rerun contract leans on this).
TEST(QuantileSketchTest, DeterministicAcrossReruns) {
  auto build = [] {
    sim::Rng rng{23};
    QuantileSketch s;
    for (int i = 0; i < 3000; ++i) {
      s.record(rng.uniform(0.0, 5e5));
    }
    return s;
  };
  const QuantileSketch s1 = build();
  const QuantileSketch s2 = build();
  for (double p : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(s1.quantile(p), s2.quantile(p));
  }
}

}  // namespace
}  // namespace zc::stats
