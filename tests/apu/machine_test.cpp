#include "zc/apu/machine.hpp"

#include <gtest/gtest.h>

namespace zc::apu {
namespace {

using namespace zc::sim::literals;

TEST(Machine, Mi300aDefaults) {
  Machine m = Machine::mi300a();
  EXPECT_TRUE(m.is_apu());
  EXPECT_EQ(m.kind(), MachineKind::ApuMi300a);
  EXPECT_EQ(m.page_bytes(), 2ULL << 20);
  EXPECT_EQ(m.gpu().servers(), m.topology().gpu_kernel_slots);
  EXPECT_EQ(m.sdma().servers(), m.topology().sdma_engines);
  EXPECT_EQ(m.driver().servers(), 1);
}

TEST(Machine, DiscreteGpuCopiesCrossTheLink) {
  Machine apu = Machine::mi300a();
  Machine dgpu = Machine::discrete_gpu();
  EXPECT_FALSE(dgpu.is_apu());
  const std::uint64_t bytes = 1ULL << 30;
  // The same transfer must be slower over the PCIe-style link than within
  // one HBM storage.
  EXPECT_GT(dgpu.copy_duration(bytes), apu.copy_duration(bytes));
}

TEST(Machine, CopyDurationHasFloor) {
  Machine m = Machine::mi300a();
  EXPECT_EQ(m.copy_duration(1), m.costs().copy_min);
  EXPECT_GT(m.copy_duration(8ULL << 30), m.costs().copy_min);
}

TEST(Machine, CopyDurationScalesLinearly) {
  Machine m = Machine::mi300a();
  const auto one = m.copy_duration(1ULL << 30);
  const auto four = m.copy_duration(4ULL << 30);
  EXPECT_NEAR(four / one, 4.0, 0.01);
}

TEST(Machine, FaultServiceDependsOnResidency) {
  Machine m = Machine::mi300a();
  const auto resident = m.fault_service_duration(true);
  const auto untouched = m.fault_service_duration(false);
  EXPECT_EQ(resident, m.costs().xnack_fault_resident);
  EXPECT_EQ(untouched,
            m.costs().xnack_fault_resident + m.costs().page_materialize);
  EXPECT_GT(untouched, resident * 5.0);  // materialization dominates
}

TEST(Machine, JitterIdentityByDefault) {
  Machine m = Machine::mi300a();
  EXPECT_EQ(m.jittered(10_us), 10_us);
}

TEST(Machine, JitterPerturbsWhenConfigured) {
  Machine m = Machine::mi300a({}, {.sigma = 0.3}, 42);
  bool perturbed = false;
  for (int i = 0; i < 16; ++i) {
    if (m.jittered(10_us) != 10_us) {
      perturbed = true;
    }
  }
  EXPECT_TRUE(perturbed);
}

TEST(Machine, EnvThpControlsPageSize) {
  RunEnvironment env;
  env.transparent_huge_pages = false;
  Machine m = Machine::mi300a(env);
  EXPECT_EQ(m.page_bytes(), 4096u);
}

}  // namespace
}  // namespace zc::apu
