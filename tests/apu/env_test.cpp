#include "zc/apu/env.hpp"

#include <gtest/gtest.h>

namespace zc::apu {
namespace {

TEST(RunEnvironment, Defaults) {
  const RunEnvironment env;
  EXPECT_TRUE(env.hsa_xnack);
  EXPECT_FALSE(env.ompx_apu_maps);
  EXPECT_FALSE(env.ompx_eager_maps);
  EXPECT_TRUE(env.transparent_huge_pages);
  EXPECT_EQ(env.page_bytes(), 2ULL << 20);
}

TEST(RunEnvironment, ThpOffMeansSmallPages) {
  RunEnvironment env;
  env.transparent_huge_pages = false;
  EXPECT_EQ(env.page_bytes(), 4096u);
}

TEST(RunEnvironment, FromEnvParsesTruthyForms) {
  const auto env = RunEnvironment::from_env({{"HSA_XNACK", "0"},
                                             {"OMPX_APU_MAPS", "TRUE"},
                                             {"OMPX_EAGER_ZERO_COPY_MAPS", "on"},
                                             {"THP", "no"}});
  EXPECT_FALSE(env.hsa_xnack);
  EXPECT_TRUE(env.ompx_apu_maps);
  EXPECT_TRUE(env.ompx_eager_maps);
  EXPECT_FALSE(env.transparent_huge_pages);
}

TEST(RunEnvironment, FromEnvIgnoresUnknownKeysAndKeepsDefaults) {
  const auto env = RunEnvironment::from_env({{"PATH", "/bin"}});
  EXPECT_TRUE(env.hsa_xnack);
  EXPECT_TRUE(env.transparent_huge_pages);
}

TEST(RunEnvironment, ToStringRoundTripsFlags) {
  RunEnvironment env;
  env.hsa_xnack = false;
  env.ompx_eager_maps = true;
  const std::string s = env.to_string();
  EXPECT_NE(s.find("HSA_XNACK=0"), std::string::npos);
  EXPECT_NE(s.find("OMPX_EAGER_ZERO_COPY_MAPS=1"), std::string::npos);
  EXPECT_NE(s.find("THP=1"), std::string::npos);
}

}  // namespace
}  // namespace zc::apu
