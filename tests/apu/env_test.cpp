#include "zc/apu/env.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

namespace zc::apu {
namespace {

TEST(RunEnvironment, Defaults) {
  const RunEnvironment env;
  EXPECT_TRUE(env.hsa_xnack);
  EXPECT_EQ(env.ompx_apu_maps, ApuMapsMode::Off);
  EXPECT_FALSE(env.ompx_eager_maps);
  EXPECT_TRUE(env.transparent_huge_pages);
  EXPECT_EQ(env.page_bytes(), 2ULL << 20);
}

TEST(RunEnvironment, ThpOffMeansSmallPages) {
  RunEnvironment env;
  env.transparent_huge_pages = false;
  EXPECT_EQ(env.page_bytes(), 4096u);
}

TEST(RunEnvironment, FromEnvParsesTruthyForms) {
  const auto env = RunEnvironment::from_env({{"HSA_XNACK", "0"},
                                             {"OMPX_APU_MAPS", "TRUE"},
                                             {"OMPX_EAGER_ZERO_COPY_MAPS", "on"},
                                             {"THP", "no"}});
  EXPECT_FALSE(env.hsa_xnack);
  EXPECT_EQ(env.ompx_apu_maps, ApuMapsMode::On);
  EXPECT_TRUE(env.ompx_eager_maps);
  EXPECT_FALSE(env.transparent_huge_pages);
}

TEST(RunEnvironment, FromEnvIgnoresUnknownKeysAndKeepsDefaults) {
  const auto env = RunEnvironment::from_env({{"PATH", "/bin"}});
  EXPECT_TRUE(env.hsa_xnack);
  EXPECT_TRUE(env.transparent_huge_pages);
}

TEST(RunEnvironment, ToStringRoundTripsFlags) {
  RunEnvironment env;
  env.hsa_xnack = false;
  env.ompx_eager_maps = true;
  const std::string s = env.to_string();
  EXPECT_NE(s.find("HSA_XNACK=0"), std::string::npos);
  EXPECT_NE(s.find("OMPX_APU_MAPS=0"), std::string::npos);
  EXPECT_NE(s.find("OMPX_EAGER_ZERO_COPY_MAPS=1"), std::string::npos);
  EXPECT_NE(s.find("THP=1"), std::string::npos);
}

TEST(RunEnvironment, ToStringRendersAdaptiveMode) {
  RunEnvironment env;
  env.ompx_apu_maps = ApuMapsMode::Adaptive;
  EXPECT_NE(env.to_string().find("OMPX_APU_MAPS=adaptive"),
            std::string::npos);
}

// --- OMPX_APU_MAPS value matrix --------------------------------------------
// The auto-detection variable now has three states; cover every accepted
// spelling (including the case-insensitive ones) alongside the boolean
// forms the other variables share.

using ApuMapsCase = std::tuple<const char* /*value*/, ApuMapsMode>;

class ApuMapsValues : public ::testing::TestWithParam<ApuMapsCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllAcceptedSpellings, ApuMapsValues,
    ::testing::Values(ApuMapsCase{"0", ApuMapsMode::Off},
                      ApuMapsCase{"false", ApuMapsMode::Off},
                      ApuMapsCase{"OFF", ApuMapsMode::Off},
                      ApuMapsCase{"no", ApuMapsMode::Off},
                      ApuMapsCase{"1", ApuMapsMode::On},
                      ApuMapsCase{"true", ApuMapsMode::On},
                      ApuMapsCase{"On", ApuMapsMode::On},
                      ApuMapsCase{"YES", ApuMapsMode::On},
                      ApuMapsCase{"adaptive", ApuMapsMode::Adaptive},
                      ApuMapsCase{"Adaptive", ApuMapsMode::Adaptive},
                      ApuMapsCase{"ADAPTIVE", ApuMapsMode::Adaptive}));

TEST_P(ApuMapsValues, ParsesToExpectedMode) {
  const auto [value, expected] = GetParam();
  const auto env = RunEnvironment::from_env({{"OMPX_APU_MAPS", value}});
  EXPECT_EQ(env.ompx_apu_maps, expected) << "OMPX_APU_MAPS=" << value;
}

// --- negative paths ---------------------------------------------------------
// A recognized variable set to an unintelligible value must throw, not be
// silently coerced to "off": configuration experiments depend on running
// the configuration they name.

class InvalidEnvValues : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(RecognizedKeys, InvalidEnvValues,
                         ::testing::Values("HSA_XNACK", "OMPX_APU_MAPS",
                                           "OMPX_EAGER_ZERO_COPY_MAPS",
                                           "THP"));

TEST_P(InvalidEnvValues, GarbageValueThrows) {
  const std::string key = GetParam();
  EXPECT_THROW((void)RunEnvironment::from_env({{key, "bogus"}}), EnvError);
  EXPECT_THROW((void)RunEnvironment::from_env({{key, "2"}}), EnvError);
  EXPECT_THROW((void)RunEnvironment::from_env({{key, ""}}), EnvError);
}

TEST(RunEnvironment, AdaptiveIsOnlyValidForApuMaps) {
  // `adaptive` names a mapping policy; it is not a boolean spelling.
  EXPECT_THROW((void)RunEnvironment::from_env({{"HSA_XNACK", "adaptive"}}),
               EnvError);
  EXPECT_THROW(
      (void)RunEnvironment::from_env({{"OMPX_EAGER_ZERO_COPY_MAPS",
                                       "adaptive"}}),
      EnvError);
  EXPECT_THROW((void)RunEnvironment::from_env({{"THP", "adaptive"}}),
               EnvError);
}

// --- OMPX_APU_FAULTS --------------------------------------------------------

TEST(RunEnvironment, FaultScheduleDefaultsToEmpty) {
  const RunEnvironment env;
  EXPECT_TRUE(env.ompx_apu_faults.empty());
}

TEST(RunEnvironment, FromEnvStoresValidFaultSchedule) {
  const auto env = RunEnvironment::from_env(
      {{"OMPX_APU_FAULTS", "oom@call=1;eintr@call=2..4"}});
  EXPECT_EQ(env.ompx_apu_faults, "oom@call=1;eintr@call=2..4");
}

TEST(RunEnvironment, FromEnvValidatesFaultScheduleGrammar) {
  EXPECT_THROW(
      (void)RunEnvironment::from_env({{"OMPX_APU_FAULTS", "oom@call=0"}}),
      EnvError);
  EXPECT_THROW(
      (void)RunEnvironment::from_env({{"OMPX_APU_FAULTS", "nonsense"}}),
      EnvError);
}

TEST(RunEnvironment, FaultScheduleErrorNamesVariableAndReason) {
  try {
    (void)RunEnvironment::from_env({{"OMPX_APU_FAULTS", "blorp@call=1"}});
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OMPX_APU_FAULTS"), std::string::npos);
    EXPECT_NE(what.find("blorp"), std::string::npos);
  }
}

TEST(RunEnvironment, ToStringRendersFaultSchedule) {
  RunEnvironment env;
  env.ompx_apu_faults = "sdma@call=2";
  EXPECT_NE(env.to_string().find("OMPX_APU_FAULTS=sdma@call=2"),
            std::string::npos);
}

// --- OMPX_APU_WATCHDOG ------------------------------------------------------

TEST(ParseWatchdog, DefaultsToNanosecondsAndRecover) {
  const WatchdogConfig w = parse_watchdog("5000");
  EXPECT_EQ(w.budget, sim::Duration::nanoseconds(5000));
  EXPECT_TRUE(w.recover);
  EXPECT_TRUE(w.enabled());
}

TEST(ParseWatchdog, UnitSuffixes) {
  EXPECT_EQ(parse_watchdog("7ns").budget, sim::Duration::nanoseconds(7));
  EXPECT_EQ(parse_watchdog("200us").budget, sim::Duration::from_us(200.0));
  EXPECT_EQ(parse_watchdog("3ms").budget, sim::Duration::milliseconds(3));
}

TEST(ParseWatchdog, ModeSelectsAbortOrRecover) {
  EXPECT_FALSE(parse_watchdog("1ms:abort").recover);
  EXPECT_TRUE(parse_watchdog("1ms:recover").recover);
}

TEST(ParseWatchdog, ZeroBudgetDisables) {
  const WatchdogConfig w = parse_watchdog("0");
  EXPECT_FALSE(w.enabled());
}

TEST(ParseWatchdog, RejectsGarbage) {
  EXPECT_THROW((void)parse_watchdog(""), EnvError);
  EXPECT_THROW((void)parse_watchdog("fast"), EnvError);
  EXPECT_THROW((void)parse_watchdog("10s"), EnvError);    // unknown unit
  EXPECT_THROW((void)parse_watchdog("-5us"), EnvError);   // negative
  EXPECT_THROW((void)parse_watchdog("1ms:maybe"), EnvError);
}

TEST(ParseWatchdog, ErrorNamesTheVariableAndValue) {
  try {
    (void)parse_watchdog("1ms:maybe");
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OMPX_APU_WATCHDOG=1ms:maybe"), std::string::npos);
  }
}

TEST(RunEnvironment, WatchdogDefaultsToDisabled) {
  const RunEnvironment env;
  EXPECT_FALSE(env.watchdog.enabled());
}

TEST(RunEnvironment, FromEnvParsesWatchdog) {
  const auto env =
      RunEnvironment::from_env({{"OMPX_APU_WATCHDOG", "250us:abort"}});
  EXPECT_EQ(env.watchdog.budget, sim::Duration::from_us(250.0));
  EXPECT_FALSE(env.watchdog.recover);
  EXPECT_THROW(
      (void)RunEnvironment::from_env({{"OMPX_APU_WATCHDOG", "soon"}}),
      EnvError);
}

TEST(RunEnvironment, ToStringRendersWatchdogOnlyWhenEnabled) {
  RunEnvironment env;
  EXPECT_EQ(env.to_string().find("OMPX_APU_WATCHDOG"), std::string::npos);
  env.watchdog = parse_watchdog("200us:recover");
  EXPECT_NE(env.to_string().find("OMPX_APU_WATCHDOG=200000:recover"),
            std::string::npos);
}

// --- OMPX_APU_RACE_CHECK ----------------------------------------------------

TEST(RunEnvironment, RaceCheckDefaultsToOff) {
  const RunEnvironment env;
  EXPECT_EQ(env.race_check, RaceCheckMode::Off);
}

TEST(RunEnvironment, FromEnvParsesRaceCheckModes) {
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", "off"}})
                .race_check,
            RaceCheckMode::Off);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", "report"}})
                .race_check,
            RaceCheckMode::Report);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", "abort"}})
                .race_check,
            RaceCheckMode::Abort);
  // Spellings are case-insensitive like the other variables.
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", "REPORT"}})
                .race_check,
            RaceCheckMode::Report);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", "Abort"}})
                .race_check,
            RaceCheckMode::Abort);
}

TEST(RunEnvironment, RaceCheckRejectsGarbageNamingTheVariable) {
  // Not a boolean: "1"/"on" must throw, not silently enable a mode.
  for (const char* bad : {"", "1", "on", "true", "warn", "bogus"}) {
    try {
      (void)RunEnvironment::from_env({{"OMPX_APU_RACE_CHECK", bad}});
      FAIL() << "expected EnvError for OMPX_APU_RACE_CHECK=" << bad;
    } catch (const EnvError& e) {
      EXPECT_NE(std::string{e.what()}.find("OMPX_APU_RACE_CHECK"),
                std::string::npos);
    }
  }
}

TEST(RunEnvironment, ToStringRendersRaceCheckOnlyWhenEnabled) {
  RunEnvironment env;
  EXPECT_EQ(env.to_string().find("OMPX_APU_RACE_CHECK"), std::string::npos);
  env.race_check = RaceCheckMode::Report;
  EXPECT_NE(env.to_string().find("OMPX_APU_RACE_CHECK=report"),
            std::string::npos);
  env.race_check = RaceCheckMode::Abort;
  EXPECT_NE(env.to_string().find("OMPX_APU_RACE_CHECK=abort"),
            std::string::npos);
}

// --- OMPX_APU_SOCKETS / OMPX_APU_FABRIC -------------------------------------

TEST(RunEnvironment, SocketsDefaultToTopologyCount) {
  const RunEnvironment env;
  EXPECT_EQ(env.ompx_apu_sockets, 0);  // 0 = keep the topology's count
  EXPECT_EQ(env.ompx_apu_fabric, fabric::FabricMode::Off);
}

TEST(RunEnvironment, FromEnvParsesSocketCount) {
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_SOCKETS", "4"}})
                .ompx_apu_sockets,
            4);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_SOCKETS", "1"}})
                .ompx_apu_sockets,
            1);
}

TEST(RunEnvironment, SocketCountRejectsGarbageNamingTheVariable) {
  for (const char* bad : {"", "0", "-2", "four", "2.5", "4x"}) {
    try {
      (void)RunEnvironment::from_env({{"OMPX_APU_SOCKETS", bad}});
      FAIL() << "expected EnvError for OMPX_APU_SOCKETS=" << bad;
    } catch (const EnvError& e) {
      EXPECT_NE(std::string{e.what()}.find("OMPX_APU_SOCKETS"),
                std::string::npos);
    }
  }
}

TEST(RunEnvironment, FromEnvParsesFabricModes) {
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_FABRIC", "off"}})
                .ompx_apu_fabric,
            fabric::FabricMode::Off);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_FABRIC", "xgmi"}})
                .ompx_apu_fabric,
            fabric::FabricMode::Xgmi);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_FABRIC", "uniform"}})
                .ompx_apu_fabric,
            fabric::FabricMode::Uniform);
  // Spellings are case-insensitive like the other variables.
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_FABRIC", "XGMI"}})
                .ompx_apu_fabric,
            fabric::FabricMode::Xgmi);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_FABRIC", "Uniform"}})
                .ompx_apu_fabric,
            fabric::FabricMode::Uniform);
}

TEST(RunEnvironment, FabricModeRejectsGarbageNamingTheVariable) {
  // Not a boolean: "1"/"on" must throw, not silently pick a topology.
  for (const char* bad : {"", "1", "on", "true", "mesh", "bogus"}) {
    try {
      (void)RunEnvironment::from_env({{"OMPX_APU_FABRIC", bad}});
      FAIL() << "expected EnvError for OMPX_APU_FABRIC=" << bad;
    } catch (const EnvError& e) {
      EXPECT_NE(std::string{e.what()}.find("OMPX_APU_FABRIC"),
                std::string::npos);
    }
  }
}

TEST(RunEnvironment, ToStringRendersSocketsAndFabricOnlyWhenSet) {
  RunEnvironment env;
  EXPECT_EQ(env.to_string().find("OMPX_APU_SOCKETS"), std::string::npos);
  EXPECT_EQ(env.to_string().find("OMPX_APU_FABRIC"), std::string::npos);
  env.ompx_apu_sockets = 4;
  env.ompx_apu_fabric = fabric::FabricMode::Xgmi;
  EXPECT_NE(env.to_string().find("OMPX_APU_SOCKETS=4"), std::string::npos);
  EXPECT_NE(env.to_string().find("OMPX_APU_FABRIC=xgmi"), std::string::npos);
}

TEST(RunEnvironment, PressureModeParsesOffAndWatermarks) {
  EXPECT_EQ(RunEnvironment{}.ompx_apu_pressure, PressureMode::Off);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_PRESSURE", "off"}})
                .ompx_apu_pressure,
            PressureMode::Off);
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_PRESSURE", "watermarks"}})
                .ompx_apu_pressure,
            PressureMode::Watermarks);
  // Case-insensitive like every other knob.
  EXPECT_EQ(RunEnvironment::from_env({{"OMPX_APU_PRESSURE", "Watermarks"}})
                .ompx_apu_pressure,
            PressureMode::Watermarks);
}

TEST(RunEnvironment, PressureModeRejectsGarbageNamingTheVariable) {
  // Not a boolean: "1"/"on" must throw, not silently enable reclaim.
  for (const char* bad : {"", "1", "on", "true", "high", "lru"}) {
    try {
      (void)RunEnvironment::from_env({{"OMPX_APU_PRESSURE", bad}});
      FAIL() << "expected EnvError for OMPX_APU_PRESSURE=" << bad;
    } catch (const EnvError& e) {
      EXPECT_NE(std::string{e.what()}.find("OMPX_APU_PRESSURE"),
                std::string::npos);
    }
  }
}

TEST(RunEnvironment, AutomigrateParsesBooleanAndThresholdForms) {
  EXPECT_FALSE(RunEnvironment{}.ompx_apu_automigrate.enabled);
  const RunEnvironment on =
      RunEnvironment::from_env({{"OMPX_APU_AUTOMIGRATE", "1"}});
  EXPECT_TRUE(on.ompx_apu_automigrate.enabled);
  EXPECT_EQ(on.ompx_apu_automigrate.threshold, 4);  // default threshold
  const RunEnvironment tuned =
      RunEnvironment::from_env({{"OMPX_APU_AUTOMIGRATE", "8"}});
  EXPECT_TRUE(tuned.ompx_apu_automigrate.enabled);
  EXPECT_EQ(tuned.ompx_apu_automigrate.threshold, 8);
  for (const char* off : {"0", "off", "false"}) {
    EXPECT_FALSE(RunEnvironment::from_env({{"OMPX_APU_AUTOMIGRATE", off}})
                     .ompx_apu_automigrate.enabled)
        << off;
  }
}

TEST(RunEnvironment, AutomigrateRejectsNegativesAndGarbage) {
  for (const char* bad : {"", "-3", "maybe", "4.5", "threshold"}) {
    try {
      (void)RunEnvironment::from_env({{"OMPX_APU_AUTOMIGRATE", bad}});
      FAIL() << "expected EnvError for OMPX_APU_AUTOMIGRATE=" << bad;
    } catch (const EnvError& e) {
      EXPECT_NE(std::string{e.what()}.find("OMPX_APU_AUTOMIGRATE"),
                std::string::npos);
    }
  }
}

TEST(RunEnvironment, ThpDynamicModeParsesAndKeepsHugePages) {
  const RunEnvironment env = RunEnvironment::from_env({{"THP", "dynamic"}});
  EXPECT_EQ(env.thp, ThpMode::Dynamic);
  // Dynamic still starts on 2 MB mappings; the split machinery only
  // changes what happens under eviction and partial migration.
  EXPECT_TRUE(env.transparent_huge_pages);
  EXPECT_EQ(RunEnvironment::from_env({{"THP", "1"}}).thp, ThpMode::On);
  const RunEnvironment off = RunEnvironment::from_env({{"THP", "off"}});
  EXPECT_EQ(off.thp, ThpMode::Off);
  EXPECT_FALSE(off.transparent_huge_pages);
}

TEST(RunEnvironment, ToStringRendersPressureKnobsOnlyWhenSet) {
  RunEnvironment env;
  EXPECT_EQ(env.to_string().find("OMPX_APU_PRESSURE"), std::string::npos);
  EXPECT_EQ(env.to_string().find("OMPX_APU_AUTOMIGRATE"), std::string::npos);
  env.ompx_apu_pressure = PressureMode::Watermarks;
  env.ompx_apu_automigrate = {true, 6};
  env.thp = ThpMode::Dynamic;
  EXPECT_NE(env.to_string().find("OMPX_APU_PRESSURE=watermarks"),
            std::string::npos);
  EXPECT_NE(env.to_string().find("OMPX_APU_AUTOMIGRATE=6"), std::string::npos);
  EXPECT_NE(env.to_string().find("THP=dynamic"), std::string::npos);
}

TEST(RunEnvironment, ErrorMessageNamesTheOffendingVariable) {
  try {
    (void)RunEnvironment::from_env({{"OMPX_APU_MAPS", "maybe"}});
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    EXPECT_NE(std::string{e.what()}.find("OMPX_APU_MAPS"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("maybe"), std::string::npos);
  }
}

TEST(RunEnvironment, ServiceGrammarParsesTenantsAndPolicy) {
  const ServiceConfig c = parse_service("4:full");
  EXPECT_EQ(c.tenants, 4);
  EXPECT_EQ(c.policy, ServicePolicy::Full);
  EXPECT_TRUE(c.enabled());
  EXPECT_EQ(parse_service("2:OFF").policy, ServicePolicy::Off);
  EXPECT_EQ(parse_service("8:Admit").policy, ServicePolicy::Admit);
  EXPECT_EQ(parse_service("3:fair").policy, ServicePolicy::Fair);
  const RunEnvironment env =
      RunEnvironment::from_env({{"OMPX_APU_SERVICE", "4:full"}});
  EXPECT_EQ(env.ompx_apu_service.tenants, 4);
  EXPECT_NE(env.to_string().find("OMPX_APU_SERVICE=4:full"),
            std::string::npos);
  // Unset keeps the service disabled and out of the rendering.
  RunEnvironment off;
  EXPECT_FALSE(off.ompx_apu_service.enabled());
  EXPECT_EQ(off.to_string().find("OMPX_APU_SERVICE"), std::string::npos);
}

TEST(RunEnvironment, ServiceGrammarRejectsMalformedValues) {
  // Zero / negative / non-numeric tenants, bogus policy, missing policy.
  for (const char* bad : {"0:full", "-1:full", "x:full", ":full", "4:bogus",
                          "4", "4:", ""}) {
    EXPECT_THROW((void)parse_service(bad), EnvError) << bad;
  }
  try {
    (void)parse_service("4:bogus");
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    EXPECT_NE(std::string{e.what()}.find("OMPX_APU_SERVICE"),
              std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace zc::apu
