// The paper's qualitative claims, encoded as assertions at reduced scale.
// These are the statements EXPERIMENTS.md reports at full scale; here they
// gate regressions cheaply on every test run.

#include <gtest/gtest.h>

#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/spec.hpp"

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;

double ratio(const Program& program, RuntimeConfig cfg) {
  const sim::Duration copy =
      run_program(program, {.config = RuntimeConfig::LegacyCopy}).wall_time;
  const sim::Duration other = run_program(program, {.config = cfg}).wall_time;
  return copy / other;
}

StencilParams small_stencil() {
  return {.grid_bytes = 256ULL << 20,
          .iterations = 100,
          .per_iter_compute = sim::Duration::from_us(40000)};
}
LbmParams small_lbm() {
  return {.lattice_bytes = 224ULL << 20,
          .iterations = 150,
          .per_iter_compute = sim::Duration::from_us(2500)};
}
EpParams small_ep() {
  return {.arena_bytes = 2ULL << 30,
          .batches = 14,
          .per_batch_compute = sim::Duration::from_us(500000)};
}
SpcParams small_spc() {
  return {.array_bytes = 224ULL << 20,
          .cycles = 8,
          .kernels_per_cycle = 13,
          .per_kernel_compute = sim::Duration::from_us(250)};
}
BtParams small_bt() {
  return {.array_bytes = 288ULL << 20,
          .cycles = 8,
          .kernels_per_cycle = 10,
          .per_kernel_compute = sim::Duration::from_us(650),
          .big_kernel_compute = sim::Duration::from_us(3700)};
}

TEST(PaperClaims, TableTwoOrderingHolds) {
  // spC > bt >> 1 (alloc+copy folding); lbm slightly > 1; stencil and ep
  // below 1 (XNACK-mode kernels / first-touch).
  const double spc = ratio(make_spc(small_spc()), RuntimeConfig::ImplicitZeroCopy);
  const double bt = ratio(make_bt(small_bt()), RuntimeConfig::ImplicitZeroCopy);
  const double lbm = ratio(make_lbm(small_lbm()), RuntimeConfig::ImplicitZeroCopy);
  const double stencil =
      ratio(make_stencil(small_stencil()), RuntimeConfig::ImplicitZeroCopy);
  const double ep = ratio(make_ep(small_ep()), RuntimeConfig::ImplicitZeroCopy);

  EXPECT_GT(spc, bt);
  EXPECT_GT(bt, 2.0);
  EXPECT_GT(lbm, 1.0);
  EXPECT_LT(lbm, 1.3);
  EXPECT_LT(stencil, 1.0);
  EXPECT_GT(stencil, 0.9);
  EXPECT_LT(ep, stencil);  // ep is the worst case for zero-copy
  EXPECT_GT(ep, 0.75);
}

TEST(PaperClaims, EagerMapsFixesEpButNotMuchElse) {
  const Program ep = make_ep(small_ep());
  const double zc = ratio(ep, RuntimeConfig::ImplicitZeroCopy);
  const double eager = ratio(ep, RuntimeConfig::EagerMaps);
  EXPECT_GT(eager, zc);          // eager recovers the first-touch loss
  EXPECT_GT(eager, 0.95);        // ... to near parity with Copy
  EXPECT_LT(eager, 1.05);
}

TEST(PaperClaims, EagerMapsBestOnFreshAllocationCycles) {
  // 457.spC / 470.bt: prefaulting beats page-by-page faulting on the fresh
  // stack buffers of every cycle (paper: 8.10 vs 7.80, 5.10 vs 4.88).
  const Program spc = make_spc(small_spc());
  EXPECT_GT(ratio(spc, RuntimeConfig::EagerMaps),
            ratio(spc, RuntimeConfig::ImplicitZeroCopy));
}

TEST(PaperClaims, UsmEqualsImplicitZeroCopyWithoutGlobals) {
  const Program lbm = make_lbm(small_lbm());
  EXPECT_DOUBLE_EQ(ratio(lbm, RuntimeConfig::UnifiedSharedMemory),
                   ratio(lbm, RuntimeConfig::ImplicitZeroCopy));
}

TEST(PaperClaims, AbstractConclusionBandsHold) {
  // "zero-copy is faster than the legacy copy implementation by a ratio of
  // 1.2X-2.3X for a production-ready application" — QMCPack proxy at the
  // two extremes of the sweep (reduced fidelity).
  QmcpackParams small;
  small.size = 2;
  small.threads = 8;
  small.walkers_per_thread = 4;
  small.steps = 100;
  QmcpackParams large = small;
  large.size = 64;

  const double peak =
      ratio(make_qmcpack(small), RuntimeConfig::ImplicitZeroCopy);
  const double floor =
      ratio(make_qmcpack(large), RuntimeConfig::ImplicitZeroCopy);
  EXPECT_GT(peak, 1.8);
  EXPECT_LT(peak, 3.0);
  EXPECT_GT(floor, 1.1);
  EXPECT_LT(floor, peak);
}

}  // namespace
}  // namespace zc::workloads
