// End-to-end validation of the cost model: drive the public API with
// stream-benchmark-style workloads and check that the *achieved* rates and
// latencies land on the configured machine parameters — guarding against
// regressions where layered overheads silently distort the calibration.

#include <gtest/gtest.h>

#include <memory>

#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

std::unique_ptr<OffloadStack> make_stack(RuntimeConfig cfg) {
  return std::make_unique<OffloadStack>(OffloadStack::machine_config_for(cfg),
                                        OffloadStack::program_for(cfg, {}));
}

TEST(ModelValidation, AchievedCopyBandwidthMatchesConfiguration) {
  auto stack = make_stack(RuntimeConfig::LegacyCopy);
  const std::uint64_t bytes = 4ULL << 30;
  sim::Duration elapsed;
  stack->sched().run_single([&] {
    hsa::Runtime& hsa = stack->hsa();
    mem::MemorySystem& mm = stack->memory();
    mem::Allocation& src = mm.os_alloc(bytes, "src");
    mem::Allocation& dst = mm.os_alloc(bytes, "dst");
    const sim::TimePoint t0 = stack->sched().now();
    hsa.signal_wait_scacquire(hsa.memory_async_copy(dst.base(), src.base(), bytes));
    elapsed = stack->sched().now() - t0;
  });
  const double achieved = static_cast<double>(bytes) / elapsed.sec();
  const double configured = stack->machine().costs().copy_bandwidth_bytes_per_s;
  EXPECT_NEAR(achieved / configured, 1.0, 0.02);  // setup cost is tiny at 4 GB
}

TEST(ModelValidation, StreamTriadKernelRateMatchesGpuBandwidth) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  const std::uint64_t n = 64ULL << 20;  // doubles
  const std::uint64_t streamed = 3 * n * sizeof(double);  // a = b + s*c
  sim::Duration kernel_time;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr a = rt.host_alloc(n * sizeof(double), "a");
    const mem::VirtAddr b = rt.host_alloc(n * sizeof(double), "b");
    const mem::VirtAddr c = rt.host_alloc(n * sizeof(double), "c");
    for (const mem::VirtAddr v : {a, b, c}) {
      rt.host_first_touch(mem::AddrRange{v, n * sizeof(double)});
    }
    const std::vector<MapEntry> maps{MapEntry::tofrom(a, n * sizeof(double)),
                                     MapEntry::to(b, n * sizeof(double)),
                                     MapEntry::to(c, n * sizeof(double))};
    rt.target_data_begin(maps);
    // Warm-up sweep absorbs the one-off faults; measure the second.
    auto triad = TargetRegion{
        .name = "triad",
        .uses = {BufferUse{a, n * sizeof(double), hsa::Access::Write},
                 BufferUse{b, n * sizeof(double), hsa::Access::Read},
                 BufferUse{c, n * sizeof(double), hsa::Access::Read}},
        .compute = stream_kernel_cost(stack->machine(), streamed),
        .body = {},
    };
    rt.target(triad);
    const auto before = stack->hsa().kernel_trace().summary().total_time;
    rt.target(triad);
    kernel_time = stack->hsa().kernel_trace().summary().total_time - before;
    rt.target_data_end(maps);
  });
  const double achieved = static_cast<double>(streamed) / kernel_time.sec();
  const double configured =
      stack->machine().costs().gpu_stream_bandwidth_bytes_per_s;
  // XNACK slowdown (2%) and launch latency shave a few percent.
  EXPECT_NEAR(achieved / configured, 1.0, 0.05);
}

TEST(ModelValidation, FirstTouchSweepCostsFaultServicePerPage) {
  auto stack = make_stack(RuntimeConfig::ImplicitZeroCopy);
  const std::uint64_t page = stack->machine().page_bytes();
  const std::uint64_t pages = 512;
  sim::Duration stall;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    const mem::VirtAddr buf = rt.host_alloc(pages * page, "arena");
    rt.target(TargetRegion{
        .name = "init",
        .uses = {BufferUse{buf, pages * page, hsa::Access::Write}},
        .compute = 1_us,
        .body = {},
    });
    stall = stack->hsa().kernel_trace().summary().total_fault_stall;
  });
  const sim::Duration expected =
      stack->machine().fault_service_duration(false) *
      static_cast<double>(pages);
  EXPECT_EQ(stall, expected);  // uncontended: no queueing delay
}

TEST(ModelValidation, PrefaultThroughputMatchesBulkPopulateRate) {
  auto stack = make_stack(RuntimeConfig::EagerMaps);
  const std::uint64_t page = stack->machine().page_bytes();
  const std::uint64_t pages = 1024;
  sim::Duration elapsed;
  stack->sched().run_single([&] {
    OffloadRuntime& rt = stack->omp();
    rt.target_data_begin({});  // init
    const mem::VirtAddr buf = rt.host_alloc(pages * page, "arena");
    const MapEntry entry = MapEntry::alloc(buf, pages * page);
    const sim::TimePoint t0 = stack->sched().now();
    rt.target_data_begin({&entry, 1});
    elapsed = stack->sched().now() - t0;
    rt.target_data_end({&entry, 1});
  });
  const apu::CostParams& c = stack->machine().costs();
  const sim::Duration expected =
      c.prefault_syscall_base +
      (c.prefault_insert_per_page + c.prefault_populate_per_page) *
          static_cast<double>(pages) +
      c.map_bookkeeping;
  EXPECT_NEAR(elapsed / expected, 1.0, 0.01);
}

TEST(ShapeIntegration, ThreadScalingAndSizeDecay) {
  // Micro-scale re-derivation of the Fig. 3 / Fig. 4 shapes from the public
  // API: the Copy/zero-copy ratio grows with host threads and shrinks with
  // problem size; Eager Maps trails Implicit Z-C at small sizes.
  auto measure = [](RuntimeConfig cfg, int size, int threads) {
    zc::workloads::QmcpackParams p;
    p.size = size;
    p.threads = threads;
    p.walkers_per_thread = 4;
    p.steps = 120;
    return zc::workloads::run_program(zc::workloads::make_qmcpack(p),
                                      {.config = cfg})
        .wall_time;
  };
  const double r_1t =
      measure(RuntimeConfig::LegacyCopy, 2, 1) /
      measure(RuntimeConfig::ImplicitZeroCopy, 2, 1);
  const double r_8t =
      measure(RuntimeConfig::LegacyCopy, 2, 8) /
      measure(RuntimeConfig::ImplicitZeroCopy, 2, 8);
  EXPECT_GT(r_8t, r_1t);  // Fig. 3: ratio rises with threads
  EXPECT_GT(r_1t, 1.0);

  const double big =
      measure(RuntimeConfig::LegacyCopy, 64, 8) /
      measure(RuntimeConfig::ImplicitZeroCopy, 64, 8);
  EXPECT_LT(big, r_8t);  // Fig. 4: advantage shrinks with size
  EXPECT_GT(big, 1.0);   // but zero-copy still wins

  const double eager_8t =
      measure(RuntimeConfig::LegacyCopy, 2, 8) /
      measure(RuntimeConfig::EagerMaps, 2, 8);
  EXPECT_LT(eager_8t, r_8t);  // Eager Maps trails at small sizes
}

}  // namespace
}  // namespace zc::omp
