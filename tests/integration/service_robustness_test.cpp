// The multi-tenant service robustness suite — the PR's acceptance bar:
// under 2x-overload open-loop arrival with injected faults, the full
// policy must (a) never exhaust HBM, (b) never retire a wrong answer,
// (c) shed only with typed retry-after errors, (d) bound admitted p99
// versus the policy-off collapse baseline, (e) isolate a hang-faulted
// tenant behind its own circuit breaker while clean tenants keep
// bit-identical checksums, and (f) reproduce every per-tenant stat
// bit-for-bit on a same-seed rerun.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "zc/service/service.hpp"

namespace zc::service {
namespace {

using apu::ServicePolicy;
using omp::ErrorCode;
using omp::RuntimeConfig;
using trace::FaultEvent;
using workloads::JobFlavor;
using workloads::TenantServiceStats;

/// 512 MB sockets (the pinned runtime image takes ~a quarter): small
/// enough that un-gated concurrent Copy-config jobs can collide with
/// capacity, which is exactly what admission control must prevent.
apu::Topology capped_topology(int sockets = 1) {
  apu::Topology t;
  t.sockets = sockets;
  t.hbm_bytes = 512ULL << 20;
  return t;
}

/// ~6x the service rate: two workers, ~200 us of kernel time per job,
/// arrivals every 25 us. Queues overflow, the full policy must shed.
ServiceParams overload_params(ServicePolicy policy, std::uint64_t seed = 1) {
  ServiceParams p;
  p.config.tenants = 4;
  p.config.policy = policy;
  p.workers = 2;
  p.arrival.tenants = 4;
  p.arrival.jobs = 240;
  p.arrival.base_interarrival = sim::Duration::microseconds(25);
  p.arrival.kernel_compute = sim::Duration::microseconds(50);
  p.arrival.seed = seed;
  // Tight queues are the degradation mechanism under overload: admitted
  // sojourn is bounded by ~queue_limit * tenants jobs of backlog, the
  // rest sheds with retry hints.
  p.queue_limit = 6;
  p.base.config = RuntimeConfig::LegacyCopy;  // pool allocs make HBM real
  p.base.topology = capped_topology();
  p.base.seed = seed;
  return p;
}

std::uint64_t total(const std::vector<TenantServiceStats>& tenants,
                    std::uint64_t TenantServiceStats::*field) {
  std::uint64_t n = 0;
  for (const auto& t : tenants) {
    n += t.*field;
  }
  return n;
}

double worst_p99(const std::vector<TenantServiceStats>& tenants) {
  double worst = 0.0;
  for (const auto& t : tenants) {
    worst = std::max(worst, t.p99_us);
  }
  return worst;
}

void expect_conservation(const ServiceResult& r) {
  for (const auto& t : r.run.service_tenants) {
    EXPECT_EQ(t.offered, t.completed + t.failed + t.shed)
        << "tenant " << t.tenant;
  }
  EXPECT_EQ(r.sheds.size(), total(r.run.service_tenants,
                                  &TenantServiceStats::shed));
}

// (a) + (b) + (c): overload under the full policy degrades gracefully —
// no HBM exhaustion, no wrong answers, every shed typed with a positive
// retry hint.
TEST(ServiceRobustness, OverloadShedsTypedAndNeverExhaustsHbm) {
  const ServiceResult r = run_service(overload_params(ServicePolicy::Full));
  expect_conservation(r);
  EXPECT_EQ(r.run.faults.count(FaultEvent::HbmExhausted), 0u);
  EXPECT_EQ(r.checksum_divergences, 0u);
  EXPECT_EQ(total(r.run.service_tenants, &TenantServiceStats::failed), 0u);
  // 6x overload with bounded queues must shed a lot.
  EXPECT_GT(r.sheds.size(), 50u);
  for (const auto& shed : r.sheds) {
    EXPECT_EQ(shed.error.code(), ErrorCode::JobShed);
    EXPECT_GT(shed.retry_after.ns(), 0);
    EXPECT_NE(std::string{shed.error.what()}.find("retry after"),
              std::string::npos);
  }
  // The shed ledger mirrors the fault trace's JobShed events.
  EXPECT_EQ(r.run.faults.count(FaultEvent::JobShed), r.sheds.size());
  // Something still completes for every tenant (overload != outage).
  for (const auto& t : r.run.service_tenants) {
    EXPECT_GT(t.completed, 0u) << "tenant " << t.tenant;
  }
}

// (d): admitted p99 under the full policy stays bounded, while the
// unbounded-FIFO baseline's p99 balloons with the backlog.
TEST(ServiceRobustness, FullPolicyBoundsP99VersusOffBaseline) {
  const ServiceResult off = run_service(overload_params(ServicePolicy::Off));
  const ServiceResult full =
      run_service(overload_params(ServicePolicy::Full));
  const double p99_off = worst_p99(off.run.service_tenants);
  const double p99_full = worst_p99(full.run.service_tenants);
  ASSERT_GT(p99_off, 0.0);
  ASSERT_GT(p99_full, 0.0);
  // Off admits everything into an ever-growing queue; full keeps the
  // admitted population small. The gap is an order of magnitude, assert
  // a conservative 2x.
  EXPECT_LT(p99_full * 2.0, p99_off);
  // The off baseline sheds nothing — collapse, not degradation.
  EXPECT_EQ(off.sheds.size(), 0u);
}

// (f): the whole stats block reproduces bit-for-bit on a same-seed rerun,
// under overload and shedding.
TEST(ServiceRobustness, OverloadRunsAreBitIdenticalAcrossReruns) {
  const ServiceResult a = run_service(overload_params(ServicePolicy::Full));
  const ServiceResult b = run_service(overload_params(ServicePolicy::Full));
  ASSERT_EQ(a.run.service_tenants.size(), b.run.service_tenants.size());
  for (std::size_t i = 0; i < a.run.service_tenants.size(); ++i) {
    const auto& x = a.run.service_tenants[i];
    const auto& y = b.run.service_tenants[i];
    EXPECT_EQ(x.offered, y.offered);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.p50_us, y.p50_us);
    EXPECT_EQ(x.p99_us, y.p99_us);
    EXPECT_EQ(x.p999_us, y.p999_us);
    EXPECT_EQ(x.goodput_jps, y.goodput_jps);
    EXPECT_EQ(x.checksum, y.checksum);
  }
  ASSERT_EQ(a.sheds.size(), b.sheds.size());
  for (std::size_t i = 0; i < a.sheds.size(); ++i) {
    EXPECT_EQ(a.sheds[i].tenant, b.sheds[i].tenant);
    EXPECT_EQ(a.sheds[i].job, b.sheds[i].job);
    EXPECT_EQ(a.sheds[i].at.since_start().ns(),
              b.sheds[i].at.since_start().ns());
    EXPECT_EQ(a.sheds[i].retry_after.ns(), b.sheds[i].retry_after.ns());
  }
  EXPECT_EQ(a.run.wall_time.ns(), b.run.wall_time.ns());
}

/// Breaker-isolation fixture: tenant 0 runs Staged jobs (the only flavor
/// crossing the SDMA engines under Implicit Zero-Copy), tenant 1 runs
/// Compute. An sdma_stall schedule from call 4 on (calls 1..3 are the
/// image load) hangs every Staged staging copy; the watchdog aborts them.
ServiceParams isolation_params(std::uint64_t machine_seed) {
  ServiceParams p;
  p.config.tenants = 2;
  p.config.policy = ServicePolicy::Full;
  p.workers = 2;
  p.arrival.tenants = 2;
  p.arrival.jobs = 60;
  p.arrival.base_interarrival = sim::Duration::microseconds(400);  // benign
  p.arrival.tenant_flavors = {JobFlavor::Staged, JobFlavor::Compute};
  p.arrival.seed = 11;
  p.base.config = RuntimeConfig::ImplicitZeroCopy;
  p.base.seed = machine_seed;
  p.base.fault_spec = "sdma_stall@call=4..1000000:x50";
  p.base.watchdog_spec = "400us:abort";
  return p;
}

// (e): the faulted tenant trips its own breaker; the clean tenant never
// fails, never sheds, never opens a breaker, and reproduces the checksum
// of a fault-free run — across machine seeds 1, 7, 42.
TEST(ServiceRobustness, BreakerIsolatesFaultedTenantAcrossSeeds) {
  // Fault-free baseline fixes the clean tenant's expected checksum.
  ServiceParams clean = isolation_params(1);
  clean.base.fault_spec.clear();
  clean.base.watchdog_spec.clear();
  const ServiceResult baseline = run_service(clean);
  ASSERT_EQ(baseline.run.service_tenants.size(), 2u);
  const double clean_checksum = baseline.run.service_tenants[1].checksum;
  const std::uint64_t clean_offered =
      baseline.run.service_tenants[1].offered;
  ASSERT_GT(clean_offered, 0u);
  EXPECT_EQ(baseline.run.service_tenants[1].completed, clean_offered);

  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const ServiceResult r = run_service(isolation_params(seed));
    ASSERT_EQ(r.run.service_tenants.size(), 2u);
    const TenantServiceStats& victim = r.run.service_tenants[0];
    const TenantServiceStats& bystander = r.run.service_tenants[1];
    // The victim visibly degrades: failures trip the breaker open.
    EXPECT_GT(victim.failed, 0u) << "seed " << seed;
    EXPECT_GE(victim.breaker_opens, 1u) << "seed " << seed;
    EXPECT_GT(r.run.faults.count(FaultEvent::TenantBreakerOpened), 0u)
        << "seed " << seed;
    // The bystander never notices: same offered set as the fault-free
    // baseline (arrival seed is fixed), all of it completed, checksum
    // bit-identical, no breaker activity.
    EXPECT_EQ(bystander.offered, clean_offered) << "seed " << seed;
    EXPECT_EQ(bystander.completed, clean_offered) << "seed " << seed;
    EXPECT_EQ(bystander.failed, 0u) << "seed " << seed;
    EXPECT_EQ(bystander.shed, 0u) << "seed " << seed;
    EXPECT_EQ(bystander.breaker_opens, 0u) << "seed " << seed;
    EXPECT_EQ(bystander.checksum, clean_checksum) << "seed " << seed;
    EXPECT_EQ(r.checksum_divergences, 0u) << "seed " << seed;
    // Breaker-open arrivals shed with the open-breaker retry hint.
    if (victim.shed > 0) {
      bool saw_breaker_shed = false;
      for (const auto& shed : r.sheds) {
        if (shed.tenant == 0) {
          EXPECT_EQ(shed.error.code(), ErrorCode::JobShed);
          EXPECT_GT(shed.retry_after.ns(), 0);
          saw_breaker_shed = true;
        }
      }
      EXPECT_TRUE(saw_breaker_shed);
    }
  }
}

// Memory-pressure de-admission: a capped socket under Copy-config load
// crosses the (lowered) watermark; the full policy pauses low-priority
// tenants, records the events, and still drains everything it admitted.
TEST(ServiceRobustness, PressureDeAdmitsLowPriorityTenants) {
  ServiceParams p = overload_params(ServicePolicy::Full);
  p.arrival.jobs = 120;
  p.arrival.min_pages = 8;  // bigger jobs keep occupancy high
  p.deadmit_high = 0.50;    // ~27% pinned image + in-flight jobs cross it
  p.deadmit_low = 0.45;
  const ServiceResult r = run_service(p);
  expect_conservation(r);
  EXPECT_EQ(r.run.faults.count(FaultEvent::HbmExhausted), 0u);
  EXPECT_EQ(r.checksum_divergences, 0u);
  EXPECT_GT(total(r.run.service_tenants, &TenantServiceStats::deadmissions),
            0u);
  EXPECT_GT(r.run.faults.count(FaultEvent::JobDeAdmitted), 0u);
  // Paused tenants resume (drain or low watermark): every de-admission
  // eventually has a resume.
  EXPECT_GE(r.run.faults.count(FaultEvent::JobResumed),
            r.run.faults.count(FaultEvent::JobDeAdmitted));
  // Tenant 0 (highest priority) is never de-admitted.
  EXPECT_EQ(r.run.service_tenants[0].deadmissions, 0u);
}

// Chaos: service-side fault injection (arrival bursts + admission flaps)
// on top of pressure faults, across seeds — conservation, typed sheds,
// no exhaustion, no divergence, and a bit-identical same-seed rerun.
TEST(ServiceRobustness, ChaosSeedsStayConservativeAndDeterministic) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    ServiceParams p = overload_params(ServicePolicy::Full, seed);
    p.arrival.jobs = 160;
    p.base.fault_spec =
        "tenant_burst@p=0.05:x6;admission_flap@p=0.1;evict_storm@p=0.2:x4";
    p.base.pressure_spec = "watermarks";
    const ServiceResult r = run_service(p);
    expect_conservation(r);
    EXPECT_EQ(r.run.faults.count(FaultEvent::HbmExhausted), 0u)
        << "seed " << seed;
    EXPECT_EQ(r.checksum_divergences, 0u) << "seed " << seed;
    // The injected service faults actually fired and were recorded.
    EXPECT_GT(r.run.faults.count(FaultEvent::TenantBurstInjected), 0u)
        << "seed " << seed;
    EXPECT_GT(r.run.faults.count(FaultEvent::AdmissionFlapInjected), 0u)
        << "seed " << seed;
    for (const auto& shed : r.sheds) {
      EXPECT_EQ(shed.error.code(), ErrorCode::JobShed);
      EXPECT_GT(shed.retry_after.ns(), 0);
    }
    // Same seed, same chaos: bit-identical rerun.
    const ServiceResult again = run_service(p);
    for (std::size_t i = 0; i < r.run.service_tenants.size(); ++i) {
      EXPECT_EQ(r.run.service_tenants[i].completed,
                again.run.service_tenants[i].completed)
          << "seed " << seed;
      EXPECT_EQ(r.run.service_tenants[i].checksum,
                again.run.service_tenants[i].checksum)
          << "seed " << seed;
      EXPECT_EQ(r.run.service_tenants[i].p99_us,
                again.run.service_tenants[i].p99_us)
          << "seed " << seed;
    }
    EXPECT_EQ(r.run.wall_time.ns(), again.run.wall_time.ns())
        << "seed " << seed;
  }
}

// The race detector in report mode stays silent across a full-policy
// overload run: the service's locking is clean, not lucky.
TEST(ServiceRobustness, RaceDetectorSilentUnderOverload) {
  ServiceParams p = overload_params(ServicePolicy::Full);
  p.arrival.jobs = 120;
  p.base.race_check_spec = "report";
  const ServiceResult r = run_service(p);
  EXPECT_TRUE(r.run.races.empty());
  expect_conservation(r);
}

}  // namespace
}  // namespace zc::service
