// The check-matrix: `OMPX_APU_CHECK=report` over every bundled workload.
// Two acceptance claims ride here:
//
//  1. Every correctly-written bundled workload analyzes CLEAN under every
//     runtime configuration — the verifier's false-positive budget is
//     zero on real programs (openfoam is excluded by design: its USM
//     idiom is deliberately mapless, the exact anti-pattern the corpus'
//     missing-map case plants).
//  2. The check report — findings, counts, and the race partition — is
//     BIT-IDENTICAL across interleaving stress seeds: the analysis reads
//     only per-thread program order and order-free cross-thread sets, so
//     scheduling perturbation cannot change a verdict.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "zc/service/service.hpp"
#include "zc/workloads/oversubscribe.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/spec.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

struct NamedProgram {
  std::string name;
  Program program;
};

QmcpackParams small_qmcpack() {
  QmcpackParams p;
  p.size = 2;
  p.threads = 3;
  p.steps = 10;
  return p;
}

std::vector<NamedProgram> bundled_workloads() {
  std::vector<NamedProgram> out;
  out.push_back({"qmcpack", make_qmcpack(small_qmcpack())});
  out.push_back({"stencil",
                 make_stencil({.grid_bytes = 64ULL << 20,
                               .iterations = 4,
                               .per_iter_compute = sim::Duration::from_us(500)})});
  out.push_back({"lbm",
                 make_lbm({.lattice_bytes = 32ULL << 20,
                           .iterations = 4,
                           .per_iter_compute = sim::Duration::from_us(300)})});
  out.push_back({"ep",
                 make_ep({.arena_bytes = 128ULL << 20,
                          .batches = 3,
                          .per_batch_compute = sim::Duration::from_us(2000)})});
  out.push_back({"spC",
                 make_spc({.array_bytes = 64ULL << 20,
                           .cycles = 3,
                           .kernels_per_cycle = 6,
                           .per_kernel_compute = sim::Duration::from_us(50)})});
  out.push_back({"bt",
                 make_bt({.array_bytes = 48ULL << 20,
                          .cycles = 2,
                          .kernels_per_cycle = 5,
                          .per_kernel_compute = sim::Duration::from_us(300),
                          .big_kernel_compute = sim::Duration::from_us(2000)})});
  return out;
}

RunOptions checked_options(RuntimeConfig config) {
  RunOptions options;
  options.config = config;
  options.check_spec = "report";
  return options;
}

TEST(CheckMatrix, EveryBundledWorkloadAnalyzesCleanUnderEveryConfig) {
  for (const NamedProgram& w : bundled_workloads()) {
    for (const RuntimeConfig config : kAllConfigs) {
      const RunResult r = run_program(w.program, checked_options(config));
      EXPECT_TRUE(r.check.clean())
          << w.name << " under " << omp::to_string(config) << ":\n"
          << r.check.to_string();
      EXPECT_GT(r.check.ops_analyzed, 0u) << w.name;
      EXPECT_GT(r.check.buffers_analyzed, 0u) << w.name;
    }
  }
}

TEST(CheckMatrix, OversubscribedWorkloadAnalyzesClean) {
  OversubscribeParams p;
  p.hbm_bytes = 384ULL << 20;
  p.working_set_ratio = 1.5;
  p.sweeps = 1;
  RunOptions options = checked_options(RuntimeConfig::ImplicitZeroCopy);
  options.topology = oversubscribed_topology(p);
  options.pressure_spec = "watermarks";
  const RunResult r = run_program(make_oversubscribe(p), options);
  EXPECT_TRUE(r.check.clean()) << r.check.to_string();
}

TEST(CheckMatrix, ServiceMixAnalyzesClean) {
  service::ServiceParams p;
  p.config.tenants = 2;
  p.config.policy = apu::ServicePolicy::Full;
  p.workers = 2;
  p.arrival.tenants = 2;
  p.arrival.sockets = 1;
  p.arrival.jobs = 24;
  p.arrival.seed = 5;
  p.base.check_spec = "report";
  const service::ServiceResult r = service::run_service(p);
  EXPECT_TRUE(r.run.check.clean()) << r.run.check.to_string();
  EXPECT_GT(r.run.check.ops_analyzed, 0u);
}

TEST(CheckMatrix, ReportsBitIdenticalAcrossStressSeeds) {
  // The qmcpack proxy is the most concurrent bundled workload (several
  // host threads contending on shared tables): if any analysis read
  // cross-thread order, stress seeds would perturb it.
  const Program program = make_qmcpack(small_qmcpack());
  std::optional<std::string> reference;
  std::optional<std::string> reference_partition;
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    RunOptions options = checked_options(RuntimeConfig::ImplicitZeroCopy);
    options.stress_seed = seed;
    const RunResult r = run_program(program, options);
    EXPECT_TRUE(r.check.clean()) << "seed " << seed << ":\n"
                                 << r.check.to_string();
    const std::string rendered = r.check.to_string();
    const std::string partition = r.race_partition.to_string();
    if (!reference) {
      reference = rendered;
      reference_partition = partition;
    } else {
      EXPECT_EQ(rendered, *reference) << "seed " << seed;
      EXPECT_EQ(partition, *reference_partition) << "seed " << seed;
    }
  }
}

TEST(CheckMatrix, PartitionProvesRealWorkloadPagesSafe) {
  // The paper's qmcpack pattern — a big read-only spline table plus
  // per-thread walker arrays used synchronously — is exactly what the
  // static may-race pass exists to prune.
  const RunResult r = run_program(make_qmcpack(small_qmcpack()),
                                  checked_options(RuntimeConfig::ImplicitZeroCopy));
  EXPECT_GT(r.race_partition.safe_pages, 0u)
      << r.race_partition.to_string();
  EXPECT_GT(r.race_partition.safe_buffers.size(),
            r.race_partition.must_check_buffers.size())
      << r.race_partition.to_string();
}

}  // namespace
}  // namespace zc::workloads
