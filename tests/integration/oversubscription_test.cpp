// The oversubscription robustness suite: working sets of 1.25x/2x/4x the
// socket's HBM drive the watermark-reclaim, DDR-spill, promotion, and THP
// machinery under every runtime configuration. Completion is not enough —
// every run must reproduce the bit-identical checksum of its in-capacity
// sibling, with and without injected pressure faults, across seeds, and
// with the race detector in report mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "zc/workloads/oversubscribe.hpp"

namespace zc::workloads {
namespace {

using omp::RuntimeConfig;
using trace::FaultEvent;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

constexpr double kRatios[] = {1.25, 2.0, 4.0};

/// Survivable pressure-fault schedule: an inflated eviction batch, stalled
/// auto-migrations, one huge-page split storm, and lossy access counters.
const char kPressureFaults[] =
    "evict_storm@p=0.25:x4;migration_stall@p=0.5:x6;"
    "thp_split_storm@call=5;counter_loss@p=0.2";

OversubscribeParams params_for(double ratio) {
  OversubscribeParams p;
  p.working_set_ratio = ratio;
  return p;
}

RunOptions pressured_opts(RuntimeConfig cfg, const OversubscribeParams& p,
                          std::uint64_t seed) {
  RunOptions o{.config = cfg, .seed = seed};
  o.topology = oversubscribed_topology(p);
  o.pressure_spec = "watermarks";
  o.automigrate_spec = "4";
  o.thp_spec = "dynamic";
  return o;
}

TEST(Oversubscription, AllConfigsAgreeAtEveryRatio) {
  for (const double ratio : kRatios) {
    const OversubscribeParams p = params_for(ratio);
    const Program prog = make_oversubscribe(p);
    double expected = 0.0;
    bool have_expected = false;
    for (const RuntimeConfig cfg : kAllConfigs) {
      const RunResult r = run_program(prog, pressured_opts(cfg, p, 1));
      EXPECT_FALSE(r.faults.any(FaultEvent::RegionFailed))
          << omp::to_string(cfg) << " @" << ratio;
      if (!have_expected) {
        expected = r.checksum;
        have_expected = true;
      }
      EXPECT_EQ(r.checksum, expected) << omp::to_string(cfg) << " @" << ratio;
    }
  }
}

TEST(Oversubscription, InjectedPressureFaultsNeverChangeTheChecksum) {
  const OversubscribeParams p = params_for(2.0);
  const Program prog = make_oversubscribe(p);
  for (const RuntimeConfig cfg : kAllConfigs) {
    const RunResult clean = run_program(prog, pressured_opts(cfg, p, 1));
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      RunOptions opts = pressured_opts(cfg, p, seed);
      opts.fault_spec = kPressureFaults;
      const RunResult faulted = run_program(prog, opts);
      EXPECT_EQ(faulted.checksum, clean.checksum)
          << omp::to_string(cfg) << " seed " << seed;
      EXPECT_FALSE(faulted.faults.any(FaultEvent::RegionFailed))
          << omp::to_string(cfg) << " seed " << seed;
    }
  }
}

TEST(Oversubscription, RaceReportModeStaysSilentUnderPressure) {
  const OversubscribeParams p = params_for(2.0);
  const Program prog = make_oversubscribe(p);
  for (const RuntimeConfig cfg : kAllConfigs) {
    RunOptions opts = pressured_opts(cfg, p, 7);
    opts.fault_spec = kPressureFaults;
    opts.race_check_spec = "report";
    const RunResult r = run_program(prog, opts);
    EXPECT_TRUE(r.races.empty()) << omp::to_string(cfg);
    EXPECT_FALSE(r.faults.any(FaultEvent::RegionFailed)) << omp::to_string(cfg);
  }
}

TEST(Oversubscription, WatermarksTurnPoolOomIntoReclaim) {
  const OversubscribeParams p = params_for(4.0);
  const Program prog = make_oversubscribe(p);

  // Pressure off: the per-phase pool copies never fit next to the ballast
  // — the historical graded path is the OOM fallback ladder.
  RunOptions off{.config = RuntimeConfig::LegacyCopy, .seed = 1};
  off.topology = oversubscribed_topology(p);
  const RunResult hard = run_program(prog, off);
  EXPECT_GT(hard.faults.count(FaultEvent::HbmExhausted), 0u);
  EXPECT_GT(hard.faults.count(FaultEvent::OomFallbackZeroCopy), 0u);

  // Watermarks: cold ballast spills to DDR and every pool copy lands; the
  // fallback ladder is never entered.
  const RunResult graded =
      run_program(prog, pressured_opts(RuntimeConfig::LegacyCopy, p, 1));
  EXPECT_EQ(graded.faults.count(FaultEvent::HbmExhausted), 0u);
  EXPECT_EQ(graded.faults.count(FaultEvent::OomFallbackZeroCopy), 0u);
  EXPECT_GT(graded.faults.count(FaultEvent::PoolReclaimed), 0u);
  EXPECT_GT(graded.faults.count(FaultEvent::PagesEvicted), 0u);

  EXPECT_EQ(graded.checksum, hard.checksum);
}

TEST(Oversubscription, ZeroCopySweepsChurnTheSpillTier) {
  const OversubscribeParams p = params_for(4.0);
  const Program prog = make_oversubscribe(p);

  RunOptions off{.config = RuntimeConfig::ImplicitZeroCopy, .seed = 1};
  off.topology = oversubscribed_topology(p);
  const RunResult baseline = run_program(prog, off);

  const RunResult pressured =
      run_program(prog, pressured_opts(RuntimeConfig::ImplicitZeroCopy, p, 1));
  // The second sweep revisits evicted chunks: pages spill on the watermark
  // and promote back on the GPU fault, repeatedly.
  EXPECT_GT(pressured.faults.count(FaultEvent::PagesEvicted), 0u);
  EXPECT_GT(pressured.faults.count(FaultEvent::PagesPromoted), 0u);
  ASSERT_FALSE(pressured.devices.empty());
  EXPECT_GT(pressured.devices[0].counters.evicted_pages, 0u);
  EXPECT_GT(pressured.devices[0].counters.promoted_pages, 0u);
  // Reclaim costs virtual time; it must never cost correctness.
  EXPECT_GT(pressured.wall_time, baseline.wall_time);
  EXPECT_EQ(pressured.checksum, baseline.checksum);
}

}  // namespace
}  // namespace zc::workloads
