// End-to-end race-detector runs over the full stack. Three claims:
//
//  1. Report-mode, fault-free runs of all five runtime configurations are
//     clean — zero reports — and bit-identical to the same run with the
//     detector off (the detector observes, it never perturbs).
//  2. A synthetic zero-copy bug (host touch of a mapped buffer while the
//     kernel is still in flight) yields exactly one page-race report in
//     report mode, and exactly one OffloadError(DataRace) in abort mode.
//  3. Clean runs stay clean under interleaving stress seeds: detection is
//     a property of the synchronization, not of the schedule that ran.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/race/detector.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/race_trace.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

using sim::literals::operator""_us;

constexpr omp::RuntimeConfig kAllConfigs[] = {
    omp::RuntimeConfig::LegacyCopy,
    omp::RuntimeConfig::UnifiedSharedMemory,
    omp::RuntimeConfig::ImplicitZeroCopy,
    omp::RuntimeConfig::EagerMaps,
    omp::RuntimeConfig::AdaptiveMaps,
};

QmcpackParams small_params() {
  QmcpackParams p;
  p.size = 2;
  p.threads = 3;  // multiple host threads contending on the shared tables
  p.steps = 25;
  return p;
}

RunResult run_once(omp::RuntimeConfig config, const std::string& race_check,
                   std::optional<std::uint64_t> stress_seed = std::nullopt) {
  RunOptions options;
  options.config = config;
  options.race_check_spec = race_check;
  options.stress_seed = stress_seed;
  return run_program(make_qmcpack(small_params()), options);
}

TEST(RaceClean, AllConfigsReportFreeAndBitIdenticalToDetectorOff) {
  for (omp::RuntimeConfig config : kAllConfigs) {
    const RunResult off = run_once(config, "");
    const RunResult report = run_once(config, "report");
    EXPECT_TRUE(off.races.empty());
    EXPECT_TRUE(report.races.empty())
        << to_string(config) << ": "
        << (report.races.empty() ? ""
                                 : report.races.records().front().message);
    EXPECT_EQ(report.checksum, off.checksum) << to_string(config);
    EXPECT_EQ(report.wall_time, off.wall_time) << to_string(config);
  }
}

TEST(RaceClean, ReportModeStaysCleanUnderStressSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const RunResult r =
        run_once(omp::RuntimeConfig::ImplicitZeroCopy, "report", seed);
    EXPECT_TRUE(r.races.empty())
        << "seed " << seed << ": "
        << (r.races.empty() ? "" : r.races.records().front().message);
  }
}

TEST(RaceClean, AbortModeIsInertOnACleanRun) {
  const RunResult r = run_once(omp::RuntimeConfig::AdaptiveMaps, "abort");
  EXPECT_TRUE(r.races.empty());
  EXPECT_EQ(r.checksum, run_once(omp::RuntimeConfig::AdaptiveMaps, "").checksum);
}

/// The synthetic bug: dispatch a nowait kernel over a zero-copy-mapped
/// buffer, then touch the buffer's pages from the host before waiting.
void run_host_write_during_kernel(omp::OffloadStack& stack) {
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    omp::HostArray<double> x{rt, 4096, "x"};
    x.first_touch();
    omp::TargetRegion region{.name = "inflight",
                             .maps = {x.tofrom()},
                             .compute = 50_us,
                             .body = {}};
    omp::TargetTask task = rt.target_nowait(region);
    // The kernel is still in flight: this touch has no happens-before
    // path from the kernel's page accesses.
    rt.host_first_touch(x.range());
    rt.target_wait(task);
    x.release();
  });
}

TEST(RaceClean, HostWriteDuringKernelYieldsExactlyOnePageRaceReport) {
  apu::Machine::Config mc =
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::ImplicitZeroCopy);
  mc.env.race_check = apu::RaceCheckMode::Report;
  omp::OffloadStack stack{std::move(mc), {}};
  run_host_write_during_kernel(stack);
  ASSERT_NE(stack.race_detector(), nullptr);
  const trace::RaceTrace& races = stack.race_detector()->trace();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races.count(trace::RaceKind::Page), 1u);
  const trace::RaceReport& r = races.records().front();
  EXPECT_NE(r.first.actor.find("kernel:inflight"), std::string::npos);
  EXPECT_NE(r.second.site.find("host_touch('x')"), std::string::npos);
}

TEST(RaceClean, HostWriteDuringKernelAbortsWithDataRaceError) {
  apu::Machine::Config mc =
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::ImplicitZeroCopy);
  mc.env.race_check = apu::RaceCheckMode::Abort;
  omp::OffloadStack stack{std::move(mc), {}};
  try {
    run_host_write_during_kernel(stack);
    FAIL() << "expected OffloadError(DataRace)";
  } catch (const omp::OffloadError& e) {
    EXPECT_EQ(e.code(), omp::ErrorCode::DataRace);
  }
  // Exactly one report was recorded before the abort fired.
  ASSERT_NE(stack.race_detector(), nullptr);
  EXPECT_EQ(stack.race_detector()->trace().size(), 1u);
}

TEST(RaceClean, WaitingBeforeTheTouchIsClean) {
  // The fixed version of the same program: target_wait interposes the
  // kernel-completion edge before the host touch.
  apu::Machine::Config mc =
      omp::OffloadStack::machine_config_for(omp::RuntimeConfig::ImplicitZeroCopy);
  mc.env.race_check = apu::RaceCheckMode::Abort;
  omp::OffloadStack stack{std::move(mc), {}};
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    omp::HostArray<double> x{rt, 4096, "x"};
    x.first_touch();
    omp::TargetRegion region{.name = "inflight",
                             .maps = {x.tofrom()},
                             .compute = 50_us,
                             .body = {}};
    omp::TargetTask task = rt.target_nowait(region);
    rt.target_wait(task);
    rt.host_first_touch(x.range());
    x.release();
  });
  ASSERT_NE(stack.race_detector(), nullptr);
  EXPECT_TRUE(stack.race_detector()->trace().empty());
}

}  // namespace
}  // namespace zc::workloads
