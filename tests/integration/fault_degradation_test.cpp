// End-to-end fault injection on the QMCPack proxy: under a survivable
// fault schedule every runtime configuration must reach the exact
// checksum of its fault-free run through degraded paths; an unsurvivable
// schedule must fail with a single structured OffloadError (no abort, no
// hang, no corrupted result).
#include <gtest/gtest.h>

#include <string>

#include "zc/core/offload_error.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::workloads {
namespace {

using omp::ErrorCode;
using omp::OffloadError;
using omp::RuntimeConfig;
using trace::FaultEvent;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

QmcpackParams tiny_qmcpack() {
  QmcpackParams p;
  p.size = 2;  // 192 MB spline table
  p.threads = 1;
  p.walkers_per_thread = 2;
  p.steps = 10;
  return p;
}

/// Runtime initialization occupies ~278 MB and the host-touched spline
/// another 192 MB, so a 512 MB socket leaves the ROCr pool unable to hand
/// out the 192 MB device copy of the spline — an organic capacity OOM on
/// the run's first Copy-managed map — while every smaller per-walker
/// allocation still fits.
apu::Topology capped_topology() {
  apu::Topology t;
  t.hbm_bytes = 512ULL << 20;
  return t;
}

/// EINTR on the first three prefault syscalls (recovered by the backoff
/// ladder) plus one errored SDMA copy mid-batch (recovered by
/// resubmission). Calls 1..3 of the AsyncCopy site are the image upload.
const char kSurvivable[] = "eintr@call=1..3;sdma@call=5";

TEST(FaultDegradation, AllConfigsMatchFaultFreeChecksums) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  for (RuntimeConfig cfg : kAllConfigs) {
    const RunResult clean = run_program(prog, {.config = cfg});
    EXPECT_TRUE(clean.faults.empty()) << omp::to_string(cfg);
    RunOptions faulted_opts{.config = cfg};
    faulted_opts.topology = capped_topology();
    faulted_opts.fault_spec = kSurvivable;
    const RunResult faulted = run_program(prog, faulted_opts);
    // Bit-identical: degradation may change timing, never data.
    EXPECT_EQ(faulted.checksum, clean.checksum) << omp::to_string(cfg);
    EXPECT_FALSE(faulted.faults.any(FaultEvent::RegionFailed))
        << omp::to_string(cfg);
  }
}

TEST(FaultDegradation, LegacyCopyClimbsTheWholeDegradationLadder) {
  // One capped Legacy Copy run exercises all three rungs: the spline map
  // OOMs and degrades to zero-copy, the degraded mapping's prefault (XNACK
  // is off) eats the EINTR burst and recovers via backoff, and the errored
  // SDMA copy in the persistent-buffer batch is resubmitted.
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::LegacyCopy};
  opts.topology = capped_topology();
  opts.fault_spec = kSurvivable;
  const RunResult r = run_program(prog, opts);
  EXPECT_GE(r.faults.count(FaultEvent::HbmExhausted), 1u);
  EXPECT_GE(r.faults.count(FaultEvent::OomFallbackZeroCopy), 1u);
  EXPECT_EQ(r.faults.count(FaultEvent::EintrInjected), 3u);
  EXPECT_EQ(r.faults.count(FaultEvent::PrefaultRetry), 3u);
  EXPECT_EQ(r.faults.count(FaultEvent::PrefaultRetrySucceeded), 1u);
  EXPECT_EQ(r.faults.count(FaultEvent::SdmaErrorInjected), 1u);
  EXPECT_EQ(r.faults.count(FaultEvent::CopyRetry), 1u);
  EXPECT_EQ(r.faults.count(FaultEvent::CopyRetrySucceeded), 1u);
  EXPECT_FALSE(r.faults.any(FaultEvent::RegionFailed));

  const RunResult clean =
      run_program(prog, {.config = RuntimeConfig::LegacyCopy});
  EXPECT_EQ(r.checksum, clean.checksum);
}

TEST(FaultDegradation, EagerMapsRecoversAPrefaultBurst) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::EagerMaps};
  opts.fault_spec = "eintr@call=1..3";
  const RunResult r = run_program(prog, opts);
  EXPECT_EQ(r.faults.count(FaultEvent::EintrInjected), 3u);
  EXPECT_EQ(r.faults.count(FaultEvent::PrefaultRetrySucceeded), 1u);
  EXPECT_FALSE(r.faults.any(FaultEvent::PrefaultFallbackXnack));
  const RunResult clean =
      run_program(prog, {.config = RuntimeConfig::EagerMaps});
  EXPECT_EQ(r.checksum, clean.checksum);
}

TEST(FaultDegradation, DegradedRunsCostTimeNotCorrectness) {
  // The backoff ladder and the copy resubmission both advance virtual
  // time, so the faulted run is strictly slower — that overhead is the
  // quantity bench/abl_fault_inject reports.
  const Program prog = make_qmcpack(tiny_qmcpack());
  const RunResult clean =
      run_program(prog, {.config = RuntimeConfig::EagerMaps});
  RunOptions opts{.config = RuntimeConfig::EagerMaps};
  opts.fault_spec = "eintr@call=1..3";
  const RunResult faulted = run_program(prog, opts);
  EXPECT_GT(faulted.wall_time, clean.wall_time);
  EXPECT_EQ(faulted.checksum, clean.checksum);
}

TEST(FaultDegradation, UnsurvivableScheduleFailsWithOneStructuredError) {
  // Every SDMA copy errors and every resubmission errors again: the image
  // upload cannot complete, and the failure must surface as a single
  // typed OffloadError — not an abort, a hang, or a wrong answer.
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::LegacyCopy};
  opts.fault_spec = "sdma@p=1.0";
  try {
    (void)run_program(prog, opts);
    FAIL() << "expected OffloadError(CopyFailed)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::CopyFailed);
    EXPECT_EQ(e.device(), 0);
    EXPECT_NE(std::string{e.what()}.find("copy-failed"), std::string::npos);
  }
}

TEST(FaultDegradation, SeededSchedulesAreReproducible) {
  // A probabilistic schedule is still deterministic per seed: two runs
  // with the same seed inject the same faults at the same sites and land
  // on the same checksum and makespan.
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::EagerMaps};
  opts.fault_spec = "eintr@p=0.2";
  opts.seed = 7;
  const RunResult a = run_program(prog, opts);
  const RunResult b = run_program(prog, opts);
  EXPECT_EQ(a.faults.records().size(), b.faults.records().size());
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.wall_time, b.wall_time);
}

}  // namespace
}  // namespace zc::workloads
