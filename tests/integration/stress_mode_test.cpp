// Interleaving stress mode, end to end: run a multi-threaded workload
// through the full runtime stack (OpenMP runtime -> HSA -> memory system)
// under the seeded stress scheduler and assert that workload *results* are
// bit-identical across stress seeds and across all five runtime
// configurations. The stress scheduler perturbs ready-thread order at every
// lock/wait point, so this is the differential check that the runtime's
// locking (PresentTable mutex, trace mutex) — and not a lucky schedule — is
// what keeps the configurations semantically equivalent.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::workloads {
namespace {

constexpr omp::RuntimeConfig kAllConfigs[] = {
    omp::RuntimeConfig::LegacyCopy,
    omp::RuntimeConfig::UnifiedSharedMemory,
    omp::RuntimeConfig::ImplicitZeroCopy,
    omp::RuntimeConfig::EagerMaps,
    omp::RuntimeConfig::AdaptiveMaps,
};

QmcpackParams small_params() {
  QmcpackParams p;
  p.size = 2;
  p.threads = 4;  // several host threads contending on the shared tables
  p.steps = 40;
  return p;
}

double run_once(omp::RuntimeConfig config,
                std::optional<std::uint64_t> stress_seed) {
  RunOptions options;
  options.config = config;
  options.stress_seed = stress_seed;
  return run_program(make_qmcpack(small_params()), options).checksum;
}

TEST(StressMode, ChecksumsBitIdenticalAcrossSeedsAndConfigs) {
  // The acceptance bar from the concurrency work: >= 8 distinct stress
  // seeds, all five configurations, bit-identical workload results.
  for (omp::RuntimeConfig config : kAllConfigs) {
    const double reference = run_once(config, std::nullopt);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const double stressed = run_once(config, seed);
      EXPECT_EQ(stressed, reference)
          << to_string(config) << " stress_seed=" << seed;
    }
  }
}

TEST(StressMode, ConfigsAgreeUnderStress) {
  // Cross-configuration equivalence (the paper's semantics claim) must
  // survive perturbed interleavings too.
  const double reference =
      run_once(omp::RuntimeConfig::LegacyCopy, /*stress_seed=*/3);
  for (omp::RuntimeConfig config : kAllConfigs) {
    EXPECT_EQ(run_once(config, /*stress_seed=*/3), reference)
        << to_string(config);
  }
}

TEST(StressMode, StressRunStaysDeterministicPerSeed) {
  // Same seed, same schedule: not just the checksum but the simulated
  // makespan must reproduce exactly.
  RunOptions options;
  options.config = omp::RuntimeConfig::ImplicitZeroCopy;
  options.stress_seed = 5;
  const Program program = make_qmcpack(small_params());
  const RunResult a = run_program(program, options);
  const RunResult b = run_program(program, options);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.wall_time, b.wall_time);
  EXPECT_EQ(a.stats.total_calls(), b.stats.total_calls());
}

}  // namespace
}  // namespace zc::workloads
