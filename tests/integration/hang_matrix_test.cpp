// The tentpole invariant end-to-end: a survivable hang schedule — one
// injection per hang site, bounded by the watchdog in recover mode — must
// leave every runtime configuration's QMCPack checksum bit-identical to
// its fault-free run, with the trip and recovery visible in the fault
// trace. In abort mode the same schedule fails with exactly one structured
// OffloadError naming the hung operation; with no watchdog at all it is a
// loud simulation deadlock naming the stuck signal.
#include <gtest/gtest.h>

#include <string>

#include "zc/core/offload_error.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/workloads/qmcpack.hpp"

namespace zc::workloads {
namespace {

using omp::ErrorCode;
using omp::OffloadError;
using omp::RuntimeConfig;
using trace::FaultEvent;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,       RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

QmcpackParams tiny_qmcpack() {
  QmcpackParams p;
  p.size = 2;
  p.threads = 1;
  p.walkers_per_thread = 2;
  p.steps = 10;
  return p;
}

/// One hang per injection site. Not every site fires in every
/// configuration (Eager Maps issues no async copies on the mapped data;
/// USM issues no prefaults), so the matrix test asserts recovery when a
/// trip happened and plain checksum equality otherwise.
const char* kHangSchedules[] = {
    "kernel_hang@call=3",
    "sdma_stall@call=2",
    "prefault_hang@call=1",
    "xnack_livelock@call=1",
};

TEST(HangMatrix, AllConfigsMatchFaultFreeChecksumsUnderRecovery) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  for (RuntimeConfig cfg : kAllConfigs) {
    const RunResult clean = run_program(prog, {.config = cfg});
    for (const char* schedule : kHangSchedules) {
      RunOptions opts{.config = cfg};
      opts.fault_spec = schedule;
      opts.watchdog_spec = "500us:recover";
      const RunResult hung = run_program(prog, opts);
      EXPECT_EQ(hung.checksum, clean.checksum)
          << omp::to_string(cfg) << " under " << schedule;
      EXPECT_FALSE(hung.faults.any(FaultEvent::RegionFailed))
          << omp::to_string(cfg) << " under " << schedule;
      // Where the site fired, the watchdog must have tripped and the
      // runtime recovered — a hang is never survived by accident.
      if (!hung.faults.empty()) {
        EXPECT_GE(hung.faults.count(FaultEvent::WatchdogTrip), 1u)
            << omp::to_string(cfg) << " under " << schedule;
        EXPECT_GE(hung.faults.count(FaultEvent::WatchdogRecovered), 1u)
            << omp::to_string(cfg) << " under " << schedule;
      }
    }
  }
}

TEST(HangMatrix, EverySiteFiresSomewhereInTheMatrix) {
  // Guard against the schedules above silently missing their sites: each
  // hang kind must be injected by at least one configuration.
  const Program prog = make_qmcpack(tiny_qmcpack());
  const struct {
    const char* schedule;
    FaultEvent injected;
  } sites[] = {
      {"kernel_hang@call=3", FaultEvent::KernelHangInjected},
      {"sdma_stall@call=2", FaultEvent::SdmaStallInjected},
      {"prefault_hang@call=1", FaultEvent::PrefaultHangInjected},
      {"xnack_livelock@call=1", FaultEvent::XnackLivelockInjected},
  };
  for (const auto& site : sites) {
    bool fired = false;
    for (RuntimeConfig cfg : kAllConfigs) {
      RunOptions opts{.config = cfg};
      opts.fault_spec = site.schedule;
      opts.watchdog_spec = "500us:recover";
      fired |= run_program(prog, opts).faults.any(site.injected);
    }
    EXPECT_TRUE(fired) << site.schedule;
  }
}

TEST(HangMatrix, AbortModeRaisesExactlyOneErrorNamingTheKernel) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::ImplicitZeroCopy};
  opts.fault_spec = "kernel_hang@call=3";
  opts.watchdog_spec = "500us:abort";
  try {
    (void)run_program(prog, opts);
    FAIL() << "expected OffloadError(OperationHung)";
  } catch (const OffloadError& e) {
    EXPECT_EQ(e.code(), ErrorCode::OperationHung);
    EXPECT_EQ(e.device(), 0);
    EXPECT_NE(std::string{e.what()}.find("kernel"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string{e.what()}.find("hung"), std::string::npos)
        << e.what();
  }
}

TEST(HangMatrix, NoWatchdogMeansALoudDeadlockNamingTheSignal) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  RunOptions opts{.config = RuntimeConfig::ImplicitZeroCopy};
  opts.fault_spec = "kernel_hang@call=3";
  try {
    (void)run_program(prog, opts);
    FAIL() << "expected simulation deadlock";
  } catch (const sim::SimError& e) {
    EXPECT_NE(std::string{e.what()}.find("Signal(kernel:"),
              std::string::npos)
        << e.what();
  }
}

TEST(HangMatrix, RecoveryCostsTimeNotCorrectness) {
  const Program prog = make_qmcpack(tiny_qmcpack());
  const RunResult clean =
      run_program(prog, {.config = RuntimeConfig::ImplicitZeroCopy});
  RunOptions opts{.config = RuntimeConfig::ImplicitZeroCopy};
  opts.fault_spec = "kernel_hang@call=3";
  opts.watchdog_spec = "500us:recover";
  const RunResult hung = run_program(prog, opts);
  EXPECT_GT(hung.wall_time, clean.wall_time);
  EXPECT_EQ(hung.checksum, clean.checksum);
}

}  // namespace
}  // namespace zc::workloads
