// Differential semantics fuzzing: generate random *conforming* OpenMP
// offload programs (structured/unstructured data regions, nested maps,
// updates, synchronous and nowait targets) and assert that all five runtime
// configurations compute bit-identical results — the paper's claim that the
// configurations are equivalent "from an OpenMP semantics viewpoint".
// Adaptive Maps belongs in this set precisely because its per-region
// decisions (copy vs zero-copy vs prefault) change performance, never
// semantics, for conforming programs.
//
// Conformance rules enforced by the generator (so results are defined):
//  * the host only writes a buffer while it is unmapped;
//  * kernels only write buffers whose outermost mapping is `tofrom`
//    (guaranteeing copy-back on final release) or in-region `tofrom` maps;
//  * data regions nest LIFO and reuse the same entries for begin/end.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/sim/rng.hpp"

namespace zc::omp {
namespace {

using namespace zc::sim::literals;

constexpr RuntimeConfig kAllConfigs[] = {
    RuntimeConfig::LegacyCopy,
    RuntimeConfig::UnifiedSharedMemory,
    RuntimeConfig::ImplicitZeroCopy,
    RuntimeConfig::EagerMaps,
    RuntimeConfig::AdaptiveMaps,
};

constexpr std::size_t kBuffers = 5;
constexpr std::size_t kDoubles = 256;

struct OpenRegion {
  std::vector<MapEntry> entries;
  std::vector<std::size_t> buffers;
};

double run_random_program(RuntimeConfig config, std::uint64_t seed,
                          std::uint64_t stress_seed = 0) {
  auto stack = std::make_unique<OffloadStack>(
      OffloadStack::machine_config_for(config),
      OffloadStack::program_for(config, {}));
  if (stress_seed != 0) {
    stack->sched().enable_stress(stress_seed);
  }
  double checksum = 0.0;

  stack->sched().run_single([&] {
    sim::Rng rng{seed};
    OffloadRuntime& rt = stack->omp();

    std::vector<HostArray<double>> bufs;
    bufs.reserve(kBuffers);
    std::vector<int> refcount(kBuffers, 0);
    std::vector<bool> outer_tofrom(kBuffers, false);
    // Whether the outermost mapping copied host data to the device: a
    // buffer whose outer map is `alloc` has undefined device contents under
    // Copy (and the host's under shared storage), so conforming programs do
    // not read or update it before writing it.
    std::vector<bool> outer_synced(kBuffers, false);
    // Device copy written by a kernel and not yet synced to the host: an
    // `update to` now would have implementation-defined results (Copy
    // overwrites the device data, shared storage does not) — a conforming
    // program would not do it, so neither does the generator.
    std::vector<bool> device_dirty(kBuffers, false);
    for (std::size_t b = 0; b < kBuffers; ++b) {
      bufs.emplace_back(rt, kDoubles, "fuzz-" + std::to_string(b));
      for (std::size_t i = 0; i < kDoubles; ++i) {
        bufs[b][i] = static_cast<double>(b * 1000 + i);
      }
      bufs[b].first_touch();
    }
    std::vector<OpenRegion> open;

    auto map_for = [&](std::size_t b, bool want_write) {
      if (want_write) {
        return bufs[b].tofrom();
      }
      switch (rng.uniform_index(3)) {
        case 0:
          return bufs[b].to();
        case 1:
          return bufs[b].tofrom();
        default:
          return bufs[b].alloc();
      }
    };

    const int ops = 40 + static_cast<int>(rng.uniform_index(40));
    for (int op = 0; op < ops; ++op) {
      switch (rng.uniform_index(6)) {
        case 0: {  // host write to an unmapped buffer
          const std::size_t b = rng.uniform_index(kBuffers);
          if (refcount[b] == 0) {
            const std::size_t i = rng.uniform_index(kDoubles);
            bufs[b][i] += 1.0 + static_cast<double>(op);
          }
          break;
        }
        case 1: {  // open a data region over 1-2 distinct buffers (OpenMP
                   // forbids the same list item twice on one construct)
          OpenRegion region;
          const std::size_t count = 1 + rng.uniform_index(2);
          const std::size_t first = rng.uniform_index(kBuffers);
          for (std::size_t k = 0; k < count; ++k) {
            const std::size_t b = (first + k) % kBuffers;
            const bool fresh = refcount[b] == 0;
            const bool tofrom = rng.bernoulli(0.5);
            const MapEntry entry =
                tofrom ? bufs[b].tofrom() : map_for(b, false);
            region.entries.push_back(entry);
            region.buffers.push_back(b);
            if (fresh) {
              outer_tofrom[b] = entry.type == MapType::ToFrom;
              outer_synced[b] = copies_to_device(entry.type);
            }
            ++refcount[b];
          }
          rt.target_data_begin(region.entries);
          open.push_back(std::move(region));
          break;
        }
        case 2: {  // close the innermost region (LIFO)
          if (!open.empty()) {
            OpenRegion region = std::move(open.back());
            open.pop_back();
            rt.target_data_end(region.entries);
            for (const std::size_t b : region.buffers) {
              if (--refcount[b] == 0) {
                device_dirty[b] = false;  // final release copied back
              }
            }
          }
          break;
        }
        case 3: {  // synchronous target: write one buffer, read another
          const std::size_t w = rng.uniform_index(kBuffers);
          const std::size_t r = rng.uniform_index(kBuffers);
          TargetRegion region;
          region.name = "fuzz_kernel";
          region.compute = sim::Duration::microseconds(
              1 + static_cast<std::int64_t>(rng.uniform_index(20)));
          // Writable: map tofrom in-region if unmapped, else require the
          // outermost mapping to copy back.
          if (refcount[w] == 0) {
            region.maps.push_back(bufs[w].tofrom());
          } else if (outer_tofrom[w]) {
            region.maps.push_back(bufs[w].alloc());
            device_dirty[w] = true;
          } else {
            break;  // skip: writing would not be copied back under Copy
          }
          const bool use_read = r != w && refcount[r] > 0 && outer_synced[r];
          if (use_read) {
            region.uses.push_back(
                BufferUse{bufs[r].addr(), bufs[r].bytes(), hsa::Access::Read});
          }
          const mem::VirtAddr wv = bufs[w].addr();
          const mem::VirtAddr rv = r != w ? bufs[r].addr() : mem::VirtAddr{};
          const std::uint64_t salt = rng.next_u64() % 97;
          region.body = [wv, rv, use_read, salt](hsa::KernelContext& ctx,
                                                 const ArgTranslator& tr) {
            double* w_data = ctx.ptr<double>(tr.device(wv));
            for (std::size_t i = 0; i < kDoubles; ++i) {
              w_data[i] = w_data[i] * 1.0001 + static_cast<double>((salt + i) % 5);
            }
            if (use_read) {
              const double* r_data = ctx.ptr<double>(tr.device(rv));
              w_data[0] += r_data[kDoubles - 1];
            }
          };
          rt.target(region);
          break;
        }
        case 4: {  // target update on a mapped buffer
          const std::size_t b = rng.uniform_index(kBuffers);
          if (refcount[b] > 0 && outer_synced[b]) {
            if (device_dirty[b] || rng.bernoulli(0.5)) {
              rt.target_update_from(
                  MapEntry::from(bufs[b].addr(), bufs[b].bytes()));
              device_dirty[b] = false;
            } else {
              rt.target_update_to(MapEntry::to(bufs[b].addr(), bufs[b].bytes()));
            }
          }
          break;
        }
        case 5: {  // nowait target on an unmapped buffer, waited immediately
                   // after a second op
          const std::size_t w = rng.uniform_index(kBuffers);
          if (refcount[w] != 0) {
            break;
          }
          TargetRegion region;
          region.name = "fuzz_nowait";
          region.compute = 5_us;
          region.maps.push_back(bufs[w].tofrom());
          const mem::VirtAddr wv = bufs[w].addr();
          region.body = [wv](hsa::KernelContext& ctx, const ArgTranslator& tr) {
            double* w_data = ctx.ptr<double>(tr.device(wv));
            w_data[0] += 0.5;
          };
          TargetTask task = rt.target_nowait(region);
          rt.target_wait(task);
          break;
        }
      }
    }

    // Close everything still open (LIFO) and read back.
    while (!open.empty()) {
      OpenRegion region = std::move(open.back());
      open.pop_back();
      rt.target_data_end(region.entries);
      for (const std::size_t b : region.buffers) {
        --refcount[b];
      }
    }
    for (std::size_t b = 0; b < kBuffers; ++b) {
      for (std::size_t i = 0; i < kDoubles; ++i) {
        checksum += bufs[b][i] * static_cast<double>(b + 1);
      }
      bufs[b].release();
    }
    // Invariant: no mappings leaked (globals-free program).
    EXPECT_EQ(rt.present_table().size(), 0u);
  });
  return checksum;
}

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST_P(DifferentialFuzz, AllConfigurationsComputeIdenticalResults) {
  const std::uint64_t seed = GetParam();
  const double reference =
      run_random_program(RuntimeConfig::LegacyCopy, seed);
  for (const RuntimeConfig config : kAllConfigs) {
    EXPECT_DOUBLE_EQ(run_random_program(config, seed), reference)
        << "seed " << seed << ", " << to_string(config);
  }
}

TEST_P(DifferentialFuzz, RunsAreDeterministic) {
  const std::uint64_t seed = GetParam();
  EXPECT_DOUBLE_EQ(run_random_program(RuntimeConfig::ImplicitZeroCopy, seed),
                   run_random_program(RuntimeConfig::ImplicitZeroCopy, seed));
}

TEST_P(DifferentialFuzz, AllConfigurationsAgreeUnderStressSchedules) {
  // Re-run the same programs under the seeded stress scheduler, which
  // perturbs ready-thread order at every lock and wait point. Checksums
  // must stay bit-identical across all five configurations — including
  // Adaptive Maps, whose policy decisions ride inside the PresentTable
  // transaction and must not be schedule-sensitive.
  const std::uint64_t seed = GetParam();
  const double reference = run_random_program(RuntimeConfig::LegacyCopy, seed);
  for (const RuntimeConfig config : kAllConfigs) {
    for (std::uint64_t stress = 1; stress <= 2; ++stress) {
      EXPECT_DOUBLE_EQ(run_random_program(config, seed, stress), reference)
          << "seed " << seed << ", stress " << stress << ", "
          << to_string(config);
    }
  }
}

}  // namespace
}  // namespace zc::omp
