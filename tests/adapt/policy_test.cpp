// Unit tests for the Adaptive Maps policy engine: the cost model matches
// hand-computed figures, the classifier picks the argmin handling per
// feature profile, and the decision cache honours containment, hysteresis,
// active-map pinning, bounded size, and host-free invalidation.

#include "zc/adapt/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace zc::adapt {
namespace {

constexpr std::uint64_t kPage = 2ULL << 20;  // THP page, matches the machine

RegionFeatures features(std::uint64_t base, std::uint64_t pages,
                        std::uint64_t resident, std::uint64_t gpu_absent,
                        bool copies_in = false, bool copies_out = false) {
  RegionFeatures f;
  f.range = mem::AddrRange{mem::VirtAddr{base}, pages * kPage};
  f.pages = pages;
  f.cpu_resident_pages = resident;
  f.gpu_absent_pages = gpu_absent;
  f.copies_in = copies_in;
  f.copies_out = copies_out;
  return f;
}

PolicyEngine engine(bool xnack = true, apu::AdaptParams params = {},
                    apu::CostParams costs = apu::mi300a_costs()) {
  return PolicyEngine{costs, params, /*devices=*/1, kPage, xnack};
}

TEST(PolicyPredict, MatchesHandComputedCosts) {
  const PolicyEngine e = engine();
  // One untouched 2 MB page, mapped tofrom: every page is GPU-absent and
  // not CPU-resident.
  const PredictedCosts c =
      e.predict(features(0x1000000, 1, 0, 1, /*in=*/true, /*out=*/true));
  // Zero-copy: fault service + one-at-a-time materialization.
  EXPECT_NEAR(c.zero_copy_us, 10.0 + 900.0, 1e-9);
  // Eager: syscall + insert + bulk populate.
  EXPECT_NEAR(c.eager_us, 1.2 + 9.0 + 40.0, 1e-9);
  // Copy: pool alloc + bulk page populate + two transfers at 24 GB/s.
  const double xfer = 3.0 + (kPage / 24e9) * 1e6;
  EXPECT_NEAR(c.copy_us, 12.0 + 100.0 + 2 * xfer, 1e-6);
}

TEST(PolicyPredict, GpuResidentPagesCostNothingUnderZeroCopy) {
  const PolicyEngine e = engine();
  const PredictedCosts c = e.predict(features(0x1000000, 8, 8, 0));
  EXPECT_EQ(c.zero_copy_us, 0.0);
  // The prefault still pays a syscall plus per-page verification.
  EXPECT_NEAR(c.eager_us, 1.2 + 8 * 0.05, 1e-9);
}

TEST(PolicyDecide, UntouchedRegionPrefersEagerPrefault) {
  // The paper's 452.ep pattern: GPU first touch of OS-allocated memory is
  // catastrophic under demand faulting, cheap under bulk prefault.
  PolicyEngine e = engine();
  const Outcome o = e.decide(0, features(0x1000000, 16, 0, 16, true, true));
  EXPECT_EQ(o.decision, Decision::EagerPrefault);
  EXPECT_TRUE(o.fresh);
  EXPECT_FALSE(o.revised);
}

TEST(PolicyDecide, SingleResidentPagePrefersZeroCopy) {
  // One fault (10us) beats one prefault syscall + insert (10.2us).
  PolicyEngine e = engine();
  EXPECT_EQ(e.decide(0, features(0x1000000, 1, 1, 1)).decision,
            Decision::ZeroCopy);
}

TEST(PolicyDecide, GpuResidentRegionPrefersZeroCopy) {
  PolicyEngine e = engine();
  EXPECT_EQ(e.decide(0, features(0x1000000, 64, 64, 0)).decision,
            Decision::ZeroCopy);
}

TEST(PolicyDecide, XnackOffNeverChoosesZeroCopy) {
  PolicyEngine e = engine(/*xnack=*/false);
  const Outcome o = e.decide(0, features(0x1000000, 64, 64, 0));
  EXPECT_NE(o.decision, Decision::ZeroCopy);
  EXPECT_TRUE(std::isinf(o.costs.zero_copy_us));
}

TEST(PolicyDecide, DmaCopyWinsWhenPrefaultPathIsExpensive) {
  // With a driver whose prefault path is pathological, the classic pool
  // allocation + DMA transfer becomes the argmin — the engine must be able
  // to reach all three verdicts.
  apu::CostParams costs = apu::mi300a_costs();
  costs.prefault_insert_per_page = sim::Duration::from_us(5000.0);
  costs.prefault_populate_per_page = sim::Duration::from_us(5000.0);
  PolicyEngine e = engine(true, {}, costs);
  EXPECT_EQ(e.decide(0, features(0x1000000, 4, 0, 4, true, true)).decision,
            Decision::DmaCopy);
}

TEST(PolicyDecide, MemoryPressurePricesDmaCopyOut) {
  // Same pathological-prefault profile as above, but the device pool has
  // already failed an allocation this run: DmaCopy would likely fail and
  // degrade anyway, so the predictor prices it at infinity and the engine
  // picks the best non-copy handling.
  apu::CostParams costs = apu::mi300a_costs();
  costs.prefault_insert_per_page = sim::Duration::from_us(5000.0);
  costs.prefault_populate_per_page = sim::Duration::from_us(5000.0);
  PolicyEngine e = engine(true, {}, costs);
  RegionFeatures f = features(0x1000000, 4, 0, 4, true, true);
  f.memory_pressure = true;
  const Outcome o = e.decide(0, f);
  EXPECT_NE(o.decision, Decision::DmaCopy);
  EXPECT_TRUE(std::isinf(o.costs.copy_us));
  // Without pressure the same profile still picks DmaCopy (see above).
  EXPECT_FALSE(std::isinf(o.costs.zero_copy_us));
}

TEST(PolicyCache, RepeatAndSubRangeHitWithoutReEvaluation) {
  PolicyEngine e = engine();
  const auto full = features(0x1000000, 16, 16, 16);
  EXPECT_TRUE(e.decide(0, full).fresh);
  e.release(0, full.range);

  // Same range again: cache hit inside the hysteresis window.
  EXPECT_FALSE(e.decide(0, full).fresh);
  e.release(0, full.range);

  // A nested sub-range resolves to the same entry via containment.
  const auto sub = features(0x1000000 + 2 * kPage, 4, 4, 0);
  EXPECT_FALSE(e.decide(0, sub).fresh);
  e.release(0, sub.range);

  EXPECT_EQ(e.evaluations(), 1u);
  EXPECT_EQ(e.cache_hits(), 2u);
  EXPECT_EQ(e.cache_size(0), 1u);
}

TEST(PolicyCache, ActiveMappingPinsTheDecision) {
  apu::AdaptParams params;
  params.hysteresis_maps = 0;  // re-evaluate as eagerly as allowed
  PolicyEngine e = engine(true, params);
  const auto f = features(0x1000000, 16, 0, 16, true, true);
  ASSERT_EQ(e.decide(0, f).decision, Decision::EagerPrefault);
  // Nested maps while the first is still open: never re-evaluated, even
  // with a zero hysteresis window and features that now favour zero-copy.
  const auto now_resident = features(0x1000000, 16, 16, 0);
  for (int i = 0; i < 10; ++i) {
    const Outcome o = e.decide(0, now_resident);
    EXPECT_FALSE(o.fresh);
    EXPECT_EQ(o.decision, Decision::EagerPrefault);
  }
  EXPECT_EQ(e.evaluations(), 1u);
}

TEST(PolicyCache, HysteresisThenDecisiveRevision) {
  apu::AdaptParams params;
  params.hysteresis_maps = 4;
  PolicyEngine e = engine(true, params);
  const auto untouched = features(0x1000000, 16, 0, 16, true, true);
  ASSERT_EQ(e.decide(0, untouched).decision, Decision::EagerPrefault);
  e.release(0, untouched.range);

  // After the first lifetime the pages are resident everywhere: zero-copy
  // now costs 0, eager still pays its syscall. Within the hysteresis
  // window the cached decision holds; afterwards it is decisively revised.
  const auto resident = features(0x1000000, 16, 16, 0);
  for (std::uint32_t i = 0; i < params.hysteresis_maps; ++i) {
    const Outcome o = e.decide(0, resident);
    EXPECT_FALSE(o.fresh) << "map " << i;
    EXPECT_EQ(o.decision, Decision::EagerPrefault);
    e.release(0, resident.range);
  }
  const Outcome o = e.decide(0, resident);
  EXPECT_TRUE(o.fresh);
  EXPECT_TRUE(o.revised);
  EXPECT_EQ(o.decision, Decision::ZeroCopy);
  e.release(0, resident.range);
  EXPECT_EQ(e.revisions(), 1u);

  // And the revised decision is itself sticky from now on.
  EXPECT_FALSE(e.decide(0, resident).fresh);
  EXPECT_EQ(e.decide(0, resident).decision, Decision::ZeroCopy);
}

TEST(PolicyCache, MarginPreventsFlipFlopping) {
  apu::AdaptParams params;
  params.hysteresis_maps = 0;
  params.switch_margin = 1.25;
  PolicyEngine e = engine(true, params);
  // GPU-resident 16-page region: zero-copy is free, cache it.
  const auto resident = features(0x1000000, 16, 16, 0);
  ASSERT_EQ(e.decide(0, resident).decision, Decision::ZeroCopy);
  e.release(0, resident.range);
  // Faulted-out again: eager (145.2us) now beats zero-copy (160us), but
  // only by ~10% — inside the switch margin, so the decision must hold.
  const auto faulted = features(0x1000000, 16, 16, 16);
  for (int i = 0; i < 5; ++i) {
    const Outcome o = e.decide(0, faulted);
    EXPECT_EQ(o.decision, Decision::ZeroCopy) << "map " << i;
    EXPECT_FALSE(o.revised);
    e.release(0, faulted.range);
  }
  EXPECT_EQ(e.revisions(), 0u);
}

TEST(PolicyCache, EvictionIsBoundedAndSparesActiveEntries) {
  apu::AdaptParams params;
  params.max_cache_entries = 2;
  PolicyEngine e = engine(true, params);
  const auto a = features(0x1000000, 1, 1, 1);
  const auto b = features(0x2000000, 1, 1, 1);
  const auto c = features(0x3000000, 1, 1, 1);
  (void)e.decide(0, a);
  e.release(0, a.range);
  (void)e.decide(0, b);  // b stays active (pinned)
  (void)e.decide(0, c);  // over capacity: evicts a, the stale inactive one
  EXPECT_EQ(e.cache_size(0), 2u);
  EXPECT_EQ(e.evictions(), 1u);
  EXPECT_TRUE(e.decide(0, a).fresh);  // a was truly forgotten
}

TEST(PolicyCache, ForgetDropsOverlappingEntriesOnHostFree) {
  PolicyEngine e = engine();
  const auto a = features(0x1000000, 4, 4, 4);
  const auto b = features(0x9000000, 4, 4, 4);
  (void)e.decide(0, a);
  e.release(0, a.range);
  (void)e.decide(0, b);
  e.release(0, b.range);
  ASSERT_EQ(e.cache_size(0), 2u);
  // Free an allocation that starts below `a` and covers it.
  e.forget(mem::AddrRange{mem::VirtAddr{0x1000000 - kPage}, 8 * kPage});
  EXPECT_EQ(e.cache_size(0), 1u);
  EXPECT_TRUE(e.decide(0, a).fresh);   // evaluated anew
  EXPECT_FALSE(e.decide(0, b).fresh);  // untouched by the free
}

TEST(PolicyCache, DevicesKeepIndependentCaches) {
  PolicyEngine e{apu::mi300a_costs(), {}, /*devices=*/2, kPage, true};
  const auto f = features(0x1000000, 4, 4, 4);
  EXPECT_TRUE(e.decide(0, f).fresh);
  EXPECT_TRUE(e.decide(1, f).fresh);  // device 1 has its own cold cache
  EXPECT_EQ(e.cache_size(0), 1u);
  EXPECT_EQ(e.cache_size(1), 1u);
}

}  // namespace
}  // namespace zc::adapt
