// Unit tests of the open-loop arrival process: seeded determinism, bounded
// Pareto sizes, per-tenant id sequencing, flavor pinning, burst injection
// that keeps the downstream draw sequence aligned, and parameter
// validation.
#include "zc/service/arrival.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

namespace zc::service {
namespace {

using workloads::JobFlavor;

ArrivalParams small_params() {
  ArrivalParams p;
  p.tenants = 3;
  p.sockets = 2;
  p.jobs = 64;
  p.seed = 9;
  return p;
}

TEST(ArrivalProcessTest, CtorValidates) {
  auto bad = [](auto mutate) {
    ArrivalParams p = small_params();
    mutate(p);
    EXPECT_THROW(ArrivalProcess{p}, std::invalid_argument);
  };
  bad([](ArrivalParams& p) { p.tenants = 0; });
  bad([](ArrivalParams& p) { p.sockets = 0; });
  bad([](ArrivalParams& p) { p.min_pages = 0; });
  bad([](ArrivalParams& p) { p.max_pages = p.min_pages - 1; });
  bad([](ArrivalParams& p) { p.min_kernels = 0; });
  bad([](ArrivalParams& p) { p.max_kernels = p.min_kernels - 1; });
  bad([](ArrivalParams& p) { p.pareto_alpha = 0.0; });
}

TEST(ArrivalProcessTest, GeneratesExactlyJobsArrivals) {
  ArrivalProcess a{small_params()};
  std::uint64_t n = 0;
  while (!a.done()) {
    (void)a.next();
    ++n;
  }
  EXPECT_EQ(n, small_params().jobs);
  EXPECT_EQ(a.issued(), n);
  EXPECT_THROW((void)a.next(), std::logic_error);
}

TEST(ArrivalProcessTest, SameSeedSameSequence) {
  ArrivalProcess a{small_params()};
  ArrivalProcess b{small_params()};
  while (!a.done()) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.gap.ns(), y.gap.ns());
    EXPECT_EQ(x.spec.tenant, y.spec.tenant);
    EXPECT_EQ(x.spec.id, y.spec.id);
    EXPECT_EQ(x.spec.pages, y.spec.pages);
    EXPECT_EQ(x.spec.kernels, y.spec.kernels);
    EXPECT_EQ(x.spec.flavor, y.spec.flavor);
    EXPECT_EQ(x.spec.device, y.spec.device);
  }
}

TEST(ArrivalProcessTest, DifferentSeedsDiverge) {
  ArrivalParams p2 = small_params();
  p2.seed = 10;
  ArrivalProcess a{small_params()};
  ArrivalProcess b{p2};
  bool diverged = false;
  while (!a.done()) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    diverged = diverged || x.gap.ns() != y.gap.ns() ||
               x.spec.tenant != y.spec.tenant || x.spec.pages != y.spec.pages;
  }
  EXPECT_TRUE(diverged);
}

TEST(ArrivalProcessTest, DrawsStayWithinBounds) {
  ArrivalParams p = small_params();
  p.jobs = 500;
  p.min_pages = 2;
  p.max_pages = 32;
  p.min_kernels = 2;
  p.max_kernels = 6;
  ArrivalProcess a{p};
  std::set<int> tenants_seen;
  while (!a.done()) {
    const Arrival x = a.next();
    EXPECT_GE(x.spec.pages, p.min_pages);
    EXPECT_LE(x.spec.pages, p.max_pages);
    EXPECT_GE(x.spec.kernels, p.min_kernels);
    EXPECT_LE(x.spec.kernels, p.max_kernels);
    EXPECT_GE(x.spec.tenant, 0);
    EXPECT_LT(x.spec.tenant, p.tenants);
    EXPECT_EQ(x.spec.device, x.spec.tenant % p.sockets);
    EXPECT_GE(x.gap.ns(), 0);
    tenants_seen.insert(x.spec.tenant);
  }
  EXPECT_EQ(tenants_seen.size(), static_cast<std::size_t>(p.tenants));
}

TEST(ArrivalProcessTest, PerTenantIdsAreSequential) {
  ArrivalParams p = small_params();
  p.jobs = 300;
  ArrivalProcess a{p};
  std::vector<std::uint64_t> next(static_cast<std::size_t>(p.tenants), 0);
  while (!a.done()) {
    const Arrival x = a.next();
    EXPECT_EQ(x.spec.id, next[static_cast<std::size_t>(x.spec.tenant)]++);
  }
}

TEST(ArrivalProcessTest, TenantFlavorsPinFlavorPerTenant) {
  ArrivalParams p = small_params();
  p.tenants = 2;
  p.tenant_flavors = {JobFlavor::Staged, JobFlavor::Compute};
  ArrivalProcess a{p};
  while (!a.done()) {
    const Arrival x = a.next();
    EXPECT_EQ(x.spec.flavor, x.spec.tenant == 0 ? JobFlavor::Staged
                                                : JobFlavor::Compute);
  }
}

// Heavy-tailed sizes: with alpha=1.5 over [2, 32] most jobs are small but
// the cap is reached (the truncated tail exists).
TEST(ArrivalProcessTest, ParetoSizesAreHeavyTailed) {
  ArrivalParams p = small_params();
  p.jobs = 2000;
  ArrivalProcess a{p};
  std::uint64_t small = 0;
  std::uint64_t capped = 0;
  while (!a.done()) {
    const Arrival x = a.next();
    small += x.spec.pages <= 4 ? 1 : 0;
    capped += x.spec.pages == p.max_pages ? 1 : 0;
  }
  EXPECT_GT(small, p.jobs / 2);  // bulk of the mass at the small end
  EXPECT_GT(capped, 0u);        // tail truncation engaged at least once
}

// A burst zeroes the gaps of the next N arrivals without disturbing any
// other draw: the post-burst sub-sequence matches the unfaulted run.
TEST(ArrivalProcessTest, BurstZeroesGapsButPreservesDraws) {
  ArrivalProcess plain{small_params()};
  ArrivalProcess burst{small_params()};
  std::vector<Arrival> a;
  std::vector<Arrival> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(plain.next());
  }
  for (int i = 0; i < 10; ++i) {
    if (i == 3) {
      burst.inject_burst(4);  // arrivals 3..6 become back-to-back
    }
    b.push_back(burst.next());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)].spec.tenant,
              b[static_cast<std::size_t>(i)].spec.tenant);
    EXPECT_EQ(a[static_cast<std::size_t>(i)].spec.pages,
              b[static_cast<std::size_t>(i)].spec.pages);
    EXPECT_EQ(a[static_cast<std::size_t>(i)].spec.kernels,
              b[static_cast<std::size_t>(i)].spec.kernels);
    if (i >= 3 && i < 7) {
      EXPECT_TRUE(b[static_cast<std::size_t>(i)].gap.is_zero());
    } else {
      EXPECT_EQ(a[static_cast<std::size_t>(i)].gap.ns(),
                b[static_cast<std::size_t>(i)].gap.ns());
    }
  }
}

}  // namespace
}  // namespace zc::service
