// Unit tests of the DRR fair-queueing stage: weighted page-share ratios,
// the starvation watchdog, the FIFO collapse baseline, bounded queues, and
// the blocked-tenant mask — all driven directly with synthetic clocks (no
// scheduler, pure state).
#include "zc/service/queues.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace zc::service {
namespace {

using sim::Duration;
using sim::TimePoint;

QueuedJob job(int tenant, std::uint64_t id, std::uint64_t pages,
              TimePoint arrival = TimePoint{}) {
  QueuedJob q;
  q.spec.tenant = tenant;
  q.spec.id = id;
  q.spec.pages = pages;
  q.arrival = arrival;
  return q;
}

TEST(DrrSchedulerTest, CtorRejectsBadParams) {
  EXPECT_THROW(DrrScheduler{DrrParams{}}, std::invalid_argument);  // no weights
  DrrParams zero_weight;
  zero_weight.weights = {2, 0};
  EXPECT_THROW(DrrScheduler{zero_weight}, std::invalid_argument);
  DrrParams zero_quantum;
  zero_quantum.weights = {1};
  zero_quantum.quantum_pages = 0;
  EXPECT_THROW(DrrScheduler{zero_quantum}, std::invalid_argument);
  DrrParams zero_limit;
  zero_limit.weights = {1};
  zero_limit.queue_limit = 0;
  EXPECT_THROW(DrrScheduler{zero_limit}, std::invalid_argument);
}

TEST(DrrSchedulerTest, PushRefusesBeyondLimit) {
  DrrParams p;
  p.weights = {1, 1};
  p.queue_limit = 2;
  DrrScheduler s{p};
  EXPECT_TRUE(s.push(job(0, 0, 1)));
  EXPECT_TRUE(s.push(job(0, 1, 1)));
  EXPECT_FALSE(s.push(job(0, 2, 1)));  // tenant 0 full
  EXPECT_TRUE(s.push(job(1, 0, 1)));   // tenant 1 unaffected
  EXPECT_EQ(s.queue_len(0), 2u);
  EXPECT_EQ(s.total_queued(), 3u);
}

TEST(DrrSchedulerTest, PopEmptyReturnsNullopt) {
  DrrParams p;
  p.weights = {1, 1};
  DrrScheduler s{p};
  EXPECT_FALSE(s.pop(TimePoint{}, {0, 0}).has_value());
  EXPECT_TRUE(s.empty());
}

TEST(DrrSchedulerTest, PopValidatesBlockedMaskSize) {
  DrrParams p;
  p.weights = {1, 1};
  DrrScheduler s{p};
  EXPECT_THROW((void)s.pop(TimePoint{}, {0}), std::invalid_argument);
}

TEST(DrrSchedulerTest, BlockedTenantIsSkipped) {
  DrrParams p;
  p.weights = {8, 1};
  DrrScheduler s{p};
  ASSERT_TRUE(s.push(job(0, 0, 1)));
  ASSERT_TRUE(s.push(job(1, 0, 1)));
  auto pick = s.pop(TimePoint{}, {1, 0});  // tenant 0 blocked despite weight
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->job.spec.tenant, 1);
}

// Two always-backlogged tenants with 3:1 weights must be served pages in
// ~3:1 proportion over a long horizon.
TEST(DrrSchedulerTest, WeightedShareConvergesToWeights) {
  DrrParams p;
  p.weights = {3, 1};
  p.quantum_pages = 4;
  p.queue_limit = 100000;
  DrrScheduler s{p};
  std::uint64_t id0 = 0;
  std::uint64_t id1 = 0;
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(s.push(job(0, id0++, 4)));
    ASSERT_TRUE(s.push(job(1, id1++, 4)));
  }
  std::map<int, std::uint64_t> pages_served;
  const std::vector<char> none{0, 0};
  for (int i = 0; i < 400; ++i) {
    auto pick = s.pop(TimePoint{}, none);
    ASSERT_TRUE(pick.has_value());
    EXPECT_FALSE(pick->starvation_boost);  // fresh jobs, budget never hit
    pages_served[pick->job.spec.tenant] += pick->job.spec.pages;
  }
  const double ratio = static_cast<double>(pages_served[0]) /
                       static_cast<double>(pages_served[1]);
  EXPECT_NEAR(ratio, 3.0, 0.25);
}

// Mixed job sizes: fairness is by pages, not job count — a tenant sending
// 8-page jobs gets ~half the *jobs* of an equal-weight tenant sending
// 4-page jobs.
TEST(DrrSchedulerTest, FairnessIsByPagesNotJobs) {
  DrrParams p;
  p.weights = {1, 1};
  p.quantum_pages = 8;
  p.queue_limit = 100000;
  DrrScheduler s{p};
  for (std::uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(s.push(job(0, i, 8)));
    ASSERT_TRUE(s.push(job(1, i, 4)));
  }
  std::map<int, std::uint64_t> jobs_served;
  std::map<int, std::uint64_t> pages_served;
  const std::vector<char> none{0, 0};
  for (int i = 0; i < 300; ++i) {
    auto pick = s.pop(TimePoint{}, none);
    ASSERT_TRUE(pick.has_value());
    jobs_served[pick->job.spec.tenant] += 1;
    pages_served[pick->job.spec.tenant] += pick->job.spec.pages;
  }
  const double page_ratio = static_cast<double>(pages_served[0]) /
                            static_cast<double>(pages_served[1]);
  EXPECT_NEAR(page_ratio, 1.0, 0.15);
  const double job_ratio = static_cast<double>(jobs_served[0]) /
                           static_cast<double>(jobs_served[1]);
  EXPECT_NEAR(job_ratio, 0.5, 0.1);
}

// A head older than the starvation budget is served immediately even when
// its tenant has no deficit standing, and the pick is flagged.
TEST(DrrSchedulerTest, StarvationWatchdogForceServes) {
  DrrParams p;
  p.weights = {16, 1};  // tenant 1 would normally wait many rounds
  p.quantum_pages = 1;
  p.queue_limit = 100000;
  p.starvation_budget = Duration::milliseconds(5);
  DrrScheduler s{p};
  const TimePoint t0;
  ASSERT_TRUE(s.push(job(1, 0, 32, t0)));  // big job, tiny weight
  // Tenant 0's backlog arrives 3 ms later: at the probe instants below its
  // heads are always younger than the budget, only tenant 1's head ages
  // past it.
  const TimePoint t1 = t0 + Duration::milliseconds(3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(s.push(job(0, i, 1, t1)));
  }
  const std::vector<char> none{0, 0};
  // Before the budget elapses, DRR order holds: tenant 0 dominates.
  auto early = s.pop(t0 + Duration::milliseconds(4), none);
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->job.spec.tenant, 0);
  EXPECT_FALSE(early->starvation_boost);
  // Past the budget the watchdog fires for tenant 1's stale head.
  auto late = s.pop(t0 + Duration::milliseconds(6), none);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->job.spec.tenant, 1);
  EXPECT_TRUE(late->starvation_boost);
}

// The watchdog never serves a blocked tenant (breaker-open tenants stay
// isolated even when starved).
TEST(DrrSchedulerTest, StarvationRespectsBlockedMask) {
  DrrParams p;
  p.weights = {1, 1};
  p.starvation_budget = Duration::milliseconds(1);
  DrrScheduler s{p};
  const TimePoint t0;
  ASSERT_TRUE(s.push(job(0, 0, 1, t0)));
  ASSERT_TRUE(s.push(job(1, 0, 1, t0)));
  auto pick = s.pop(t0 + Duration::milliseconds(10), {0, 1});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->job.spec.tenant, 0);
}

// FIFO collapse mode ignores weights entirely: global arrival order wins.
TEST(DrrSchedulerTest, FifoModeServesGloballyOldest) {
  DrrParams p;
  p.weights = {8, 1};
  p.fifo = true;
  DrrScheduler s{p};
  const TimePoint t0;
  ASSERT_TRUE(s.push(job(1, 0, 1, t0 + Duration::microseconds(1))));
  ASSERT_TRUE(s.push(job(0, 0, 1, t0 + Duration::microseconds(2))));
  ASSERT_TRUE(s.push(job(1, 1, 1, t0 + Duration::microseconds(3))));
  const std::vector<char> none{0, 0};
  auto a = s.pop(t0 + Duration::microseconds(4), none);
  auto b = s.pop(t0 + Duration::microseconds(4), none);
  auto c = s.pop(t0 + Duration::microseconds(4), none);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->job.spec.tenant, 1);
  EXPECT_EQ(a->job.spec.id, 0u);
  EXPECT_EQ(b->job.spec.tenant, 0);
  EXPECT_EQ(c->job.spec.tenant, 1);
  EXPECT_EQ(c->job.spec.id, 1u);
}

// push_front restores both position and age: the re-queued head is the
// next thing served for its tenant.
TEST(DrrSchedulerTest, PushFrontRestoresHead) {
  DrrParams p;
  p.weights = {1};
  p.quantum_pages = 64;
  DrrScheduler s{p};
  const TimePoint t0;
  ASSERT_TRUE(s.push(job(0, 0, 1, t0)));
  ASSERT_TRUE(s.push(job(0, 1, 1, t0 + Duration::microseconds(1))));
  const std::vector<char> none{0};
  auto first = s.pop(t0, none);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job.spec.id, 0u);
  s.push_front(first->job);  // memory-blocked: put it back
  auto again = s.pop(t0, none);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->job.spec.id, 0u);
}

// A job bigger than one round's replenishment is still served after enough
// rounds (multi-pass replenishment, no livelock).
TEST(DrrSchedulerTest, OversizedJobEventuallyServed) {
  DrrParams p;
  p.weights = {1};
  p.quantum_pages = 2;
  DrrScheduler s{p};
  ASSERT_TRUE(s.push(job(0, 0, 63)));  // needs ~32 replenishments
  auto pick = s.pop(TimePoint{}, {0});
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->job.spec.pages, 63u);
}

}  // namespace
}  // namespace zc::service
