// Functional tests of the multi-tenant service loop itself: conservation
// of jobs (offered = completed + failed + shed), checksum verification on
// every completed job, same-seed bit-identical stats, parameter
// validation, and the policy ladder's observable differences at benign
// load.
#include "zc/service/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace zc::service {
namespace {

using apu::ServicePolicy;

ServiceParams small_params(ServicePolicy policy, std::uint64_t jobs = 60) {
  ServiceParams p;
  p.config.tenants = 3;
  p.config.policy = policy;
  p.workers = 3;
  p.arrival.tenants = 3;
  p.arrival.sockets = 1;
  p.arrival.jobs = jobs;
  p.arrival.seed = 5;
  return p;
}

void expect_conservation(const ServiceResult& r) {
  std::uint64_t jobs_total = 0;
  for (const auto& t : r.run.service_tenants) {
    EXPECT_EQ(t.offered, t.completed + t.failed + t.shed)
        << "tenant " << t.tenant;
    EXPECT_EQ(t.admitted, t.completed + t.failed) << "tenant " << t.tenant;
    jobs_total += t.offered;
  }
  EXPECT_EQ(r.jobs.size(), jobs_total);  // one lifecycle record per job
  std::uint64_t shed_total = 0;
  for (const auto& t : r.run.service_tenants) {
    shed_total += t.shed;
  }
  EXPECT_EQ(r.sheds.size(), shed_total);
}

TEST(ServiceTest, BenignLoadCompletesEverythingUnderFullPolicy) {
  const ServiceResult r = run_service(small_params(ServicePolicy::Full));
  ASSERT_EQ(r.run.service_tenants.size(), 3u);
  expect_conservation(r);
  EXPECT_EQ(r.checksum_divergences, 0u);
  std::uint64_t completed = 0;
  for (const auto& t : r.run.service_tenants) {
    EXPECT_EQ(t.failed, 0u) << "tenant " << t.tenant;
    EXPECT_EQ(t.shed, 0u) << "tenant " << t.tenant;
    EXPECT_EQ(t.breaker_opens, 0u) << "tenant " << t.tenant;
    completed += t.completed;
    if (t.completed > 0) {
      EXPECT_GT(t.p50_us, 0.0);
      EXPECT_GE(t.p99_us, t.p50_us);
      EXPECT_GE(t.p999_us, t.p99_us);
      EXPECT_GT(t.goodput_jps, 0.0);
      EXPECT_NE(t.checksum, 0.0);
    }
  }
  EXPECT_EQ(completed, 60u);
  // The run checksum is the sum of the per-tenant id-ordered sums.
  double sum = 0.0;
  for (const auto& t : r.run.service_tenants) {
    sum += t.checksum;
  }
  EXPECT_EQ(r.run.checksum, sum);
}

TEST(ServiceTest, EveryPolicyRungRunsCleanAtBenignLoad) {
  for (const ServicePolicy policy :
       {ServicePolicy::Off, ServicePolicy::Admit, ServicePolicy::Fair,
        ServicePolicy::Full}) {
    const ServiceResult r = run_service(small_params(policy, 40));
    expect_conservation(r);
    EXPECT_EQ(r.checksum_divergences, 0u)
        << apu::to_string(policy);
    std::uint64_t completed = 0;
    for (const auto& t : r.run.service_tenants) {
      completed += t.completed;
    }
    EXPECT_EQ(completed, 40u) << apu::to_string(policy);
  }
}

// Same seed, same params: the whole per-tenant stats block must be
// bit-identical across reruns (the acceptance bar's determinism clause).
TEST(ServiceTest, SameSeedRerunsAreBitIdentical) {
  const ServiceResult a = run_service(small_params(ServicePolicy::Full));
  const ServiceResult b = run_service(small_params(ServicePolicy::Full));
  ASSERT_EQ(a.run.service_tenants.size(), b.run.service_tenants.size());
  for (std::size_t i = 0; i < a.run.service_tenants.size(); ++i) {
    const auto& x = a.run.service_tenants[i];
    const auto& y = b.run.service_tenants[i];
    EXPECT_EQ(x.offered, y.offered);
    EXPECT_EQ(x.admitted, y.admitted);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.starvation_boosts, y.starvation_boosts);
    EXPECT_EQ(x.p50_us, y.p50_us);    // bit-identical, not approximate
    EXPECT_EQ(x.p99_us, y.p99_us);
    EXPECT_EQ(x.p999_us, y.p999_us);
    EXPECT_EQ(x.goodput_jps, y.goodput_jps);
    EXPECT_EQ(x.checksum, y.checksum);
    EXPECT_EQ(x.counters.kernels, y.counters.kernels);
    EXPECT_EQ(x.counters.copies, y.counters.copies);
  }
  EXPECT_EQ(a.run.wall_time.ns(), b.run.wall_time.ns());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].tenant, b.jobs[i].tenant);
    EXPECT_EQ(a.jobs[i].job, b.jobs[i].job);
    EXPECT_EQ(a.jobs[i].end.since_start().ns(),
              b.jobs[i].end.since_start().ns());
  }
}

TEST(ServiceTest, DifferentSeedsProduceDifferentSchedules) {
  ServiceParams p2 = small_params(ServicePolicy::Full);
  p2.arrival.seed = 6;
  const ServiceResult a = run_service(small_params(ServicePolicy::Full));
  const ServiceResult b = run_service(p2);
  EXPECT_NE(a.run.wall_time.ns(), b.run.wall_time.ns());
}

// Tenant counters attribute real device consumption: a run's kernels are
// split across tenants and sum to a positive total.
TEST(ServiceTest, TenantCountersAttributeKernels) {
  const ServiceResult r = run_service(small_params(ServicePolicy::Full));
  std::uint64_t kernels = 0;
  std::uint64_t tenants_with_kernels = 0;
  for (const auto& t : r.run.service_tenants) {
    kernels += t.counters.kernels;
    tenants_with_kernels += t.counters.kernels > 0 ? 1 : 0;
  }
  EXPECT_GT(kernels, 0u);
  EXPECT_EQ(tenants_with_kernels, 3u);  // every tenant ran something
}

TEST(ServiceTest, ValidatesParams) {
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.config.tenants = 0;  // disabled service
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.arrival.tenants = 2;  // mismatched with config.tenants
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.arrival.sockets = 2;  // run is single-socket
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.weights = {1, 2};  // must be one per tenant
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.workers = 0;
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.admit_fraction = 0.0;
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
  {
    ServiceParams p = small_params(ServicePolicy::Full);
    p.deadmit_low = p.deadmit_high;
    EXPECT_THROW((void)run_service(p), std::invalid_argument);
  }
}

// Multi-socket: tenants home to tenant % sockets and both devices see
// kernels.
TEST(ServiceTest, MultiSocketSpreadsTenantsAcrossDevices) {
  ServiceParams p = small_params(ServicePolicy::Full);
  p.config.tenants = 4;
  p.arrival.tenants = 4;
  p.arrival.sockets = 2;
  p.arrival.jobs = 40;
  p.base.sockets = 2;
  const ServiceResult r = run_service(p);
  expect_conservation(r);
  EXPECT_EQ(r.checksum_divergences, 0u);
  ASSERT_EQ(r.run.devices.size(), 2u);
  EXPECT_GT(r.run.devices[0].counters.kernels, 0u);
  EXPECT_GT(r.run.devices[1].counters.kernels, 0u);
  for (const auto& j : r.jobs) {
    EXPECT_EQ(j.device, j.tenant % 2);
  }
}

// The scheduler's interleaving stress mode must not change any tenant's
// completed-work checksum (locks, not luck).
TEST(ServiceTest, StressModePreservesChecksums) {
  const ServiceResult base = run_service(small_params(ServicePolicy::Full));
  ServiceParams p = small_params(ServicePolicy::Full);
  p.base.stress_seed = 1234;
  const ServiceResult stressed = run_service(p);
  ASSERT_EQ(stressed.run.service_tenants.size(),
            base.run.service_tenants.size());
  for (std::size_t i = 0; i < base.run.service_tenants.size(); ++i) {
    // Under a perturbed interleaving the *schedule* may differ (DRR order,
    // quantiles), but completed work and its checksums must not.
    EXPECT_EQ(stressed.run.service_tenants[i].completed,
              base.run.service_tenants[i].completed);
    EXPECT_EQ(stressed.run.service_tenants[i].checksum,
              base.run.service_tenants[i].checksum);
  }
  EXPECT_EQ(stressed.checksum_divergences, 0u);
}

}  // namespace
}  // namespace zc::service
