// The portability story of §IV-C: one binary, three deployments.
//
// An application optimized for discrete GPUs (careful maps, ahead-of-time
// transfer) is deployed, unchanged, on:
//   1. a discrete-GPU node                      -> Legacy Copy over PCIe
//   2. a discrete-GPU node with OMPX_APU_MAPS=1 -> Implicit Zero-Copy*
//   3. an MI300A APU (XNACK on)                 -> Implicit Zero-Copy,
//                                                  selected automatically
// (*) the opt-in of the paper's footnote 1, for unified-memory-capable
// discrete GPUs.
//
// The same OpenMP program — no source changes — gets the zero-copy fast
// path wherever the runtime detects it is safe.

#include <cstdio>

#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

using namespace zc;

namespace {

struct Deployment {
  const char* label;
  apu::MachineKind kind;
  bool xnack;
  bool apu_maps;
};

sim::Duration run_app(const Deployment& d) {
  apu::Machine::Config mc;
  mc.kind = d.kind;
  mc.costs = d.kind == apu::MachineKind::ApuMi300a ? apu::mi300a_costs()
                                                   : apu::discrete_gpu_costs();
  mc.env.hsa_xnack = d.xnack;
  mc.env.ompx_apu_maps =
      d.apu_maps ? apu::ApuMapsMode::On : apu::ApuMapsMode::Off;

  omp::OffloadStack stack{std::move(mc), omp::ProgramBinary{"portable-app"}};
  std::printf("  %-44s -> %s\n", d.label, to_string(stack.omp().config()));

  stack.sched().run_single([&stack] {
    omp::OffloadRuntime& rt = stack.omp();
    constexpr std::size_t n = 16u << 20;  // 128 MB working set
    omp::HostArray<double> field{rt, n, "field"};
    field.first_touch();

    // Ahead-of-time transfer (the discrete-GPU optimization), then a
    // compute phase with small per-step update maps.
    const std::vector<omp::MapEntry> data_region{field.tofrom()};
    rt.target_data_begin(data_region);
    omp::HostArray<double> update{rt, 1024, "update"};
    update.first_touch();
    for (int step = 0; step < 200; ++step) {
      rt.target(omp::TargetRegion{
          .name = "relax",
          .maps = {omp::MapEntry::always_to(update.addr(), update.bytes())},
          .uses = {omp::BufferUse{field.addr(), field.bytes(),
                                  hsa::Access::ReadWrite}},
          .compute =
              omp::stream_kernel_cost(stack.machine(), n * sizeof(double)),
          .body = {},
      });
    }
    rt.target_data_end(data_region);
    update.release();
    field.release();
  });
  return stack.sched().horizon().since_start();
}

}  // namespace

int main() {
  std::printf("One binary, three deployments (no source changes):\n\n");
  const Deployment deployments[] = {
      {"discrete GPU, XNACK off (classic)", apu::MachineKind::DiscreteGpu,
       false, false},
      {"discrete GPU, XNACK on + OMPX_APU_MAPS=1", apu::MachineKind::DiscreteGpu,
       true, true},
      {"MI300A APU, XNACK on (automatic)", apu::MachineKind::ApuMi300a, true,
       false},
  };
  sim::Duration walls[3];
  int i = 0;
  for (const Deployment& d : deployments) {
    walls[i++] = run_app(d);
  }
  std::printf("\n  %-44s %s\n", "discrete GPU (Copy over PCIe):",
              walls[0].to_string().c_str());
  std::printf("  %-44s %s\n", "discrete GPU (opt-in zero-copy):",
              walls[1].to_string().c_str());
  std::printf("  %-44s %s\n", "MI300A APU (automatic zero-copy):",
              walls[2].to_string().c_str());
  std::printf(
      "\nThe maps tuned for the discrete GPU cost nothing on the APU — the\n"
      "paper's conclusion: data-transfer optimizations do not have to be\n"
      "removed when porting to MI300A.\n");
  return 0;
}
