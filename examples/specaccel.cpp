// Run one SPECaccel 2023 proxy under a chosen configuration and print its
// breakdown — the per-benchmark view behind Tables II and III.
//
//   specaccel [--bench=stencil|lbm|ep|spC|bt] [--config=NAME] [--quick]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "zc/trace/overhead_ledger.hpp"
#include "zc/workloads/spec.hpp"

using namespace zc;
using omp::RuntimeConfig;

namespace {

RuntimeConfig parse_config(const std::string& name) {
  if (name == "copy") {
    return RuntimeConfig::LegacyCopy;
  }
  if (name == "usm") {
    return RuntimeConfig::UnifiedSharedMemory;
  }
  if (name == "zerocopy" || name == "zc") {
    return RuntimeConfig::ImplicitZeroCopy;
  }
  if (name == "eager") {
    return RuntimeConfig::EagerMaps;
  }
  std::cerr << "unknown config '" << name
            << "' (expected copy|usm|zerocopy|eager)\n";
  std::exit(2);
}

workloads::Program make_benchmark(const std::string& name, bool quick) {
  if (name == "stencil") {
    workloads::StencilParams p;
    if (quick) {
      p.grid_bytes /= 8;
      p.iterations /= 8;
    }
    return workloads::make_stencil(p);
  }
  if (name == "lbm") {
    workloads::LbmParams p;
    if (quick) {
      p.lattice_bytes /= 8;
      p.iterations /= 8;
    }
    return workloads::make_lbm(p);
  }
  if (name == "ep") {
    workloads::EpParams p;
    if (quick) {
      p.arena_bytes /= 8;
      p.batches /= 8;
    }
    return workloads::make_ep(p);
  }
  if (name == "spC") {
    workloads::SpcParams p;
    if (quick) {
      p.array_bytes /= 8;
      p.cycles /= 4;
    }
    return workloads::make_spc(p);
  }
  if (name == "bt") {
    workloads::BtParams p;
    if (quick) {
      p.array_bytes /= 8;
      p.cycles /= 4;
    }
    return workloads::make_bt(p);
  }
  std::cerr << "unknown benchmark '" << name
            << "' (expected stencil|lbm|ep|spC|bt)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bench = "stencil";
  RuntimeConfig config = RuntimeConfig::ImplicitZeroCopy;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--bench=", 0) == 0) {
      bench = a.substr(8);
    } else if (a.rfind("--config=", 0) == 0) {
      config = parse_config(a.substr(9));
    } else if (a == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: specaccel [--bench=stencil|lbm|ep|spC|bt] "
                   "[--config=copy|usm|zerocopy|eager] [--quick]\n";
      return 2;
    }
  }

  std::printf("SPECaccel proxy %s under %s%s\n\n", bench.c_str(),
              to_string(config), quick ? " (quick scale)" : "");
  const workloads::RunResult r = workloads::run_program(
      make_benchmark(bench, quick), {.config = config});

  std::printf("wall time   : %s\n", r.wall_time.to_string().c_str());
  std::printf("checksum    : %.3f\n", r.checksum);
  std::printf("kernels     : %llu launches, %s GPU time\n",
              static_cast<unsigned long long>(r.kernels.launches),
              r.kernels.total_time.to_string().c_str());
  std::printf("MM overhead : %s  -> Table III order %s\n",
              r.ledger.mm().to_string().c_str(),
              trace::order_of_magnitude_us(r.ledger.mm()));
  std::printf("MI overhead : %s  -> Table III order %s\n",
              r.ledger.mi().to_string().c_str(),
              trace::order_of_magnitude_us(r.ledger.mi()));
  std::printf("page faults : %llu\n",
              static_cast<unsigned long long>(r.kernels.total_page_faults));
  std::printf("prefaults   : %llu calls, %s\n",
              static_cast<unsigned long long>(r.ledger.prefault_calls()),
              r.ledger.mm_prefault().to_string().c_str());
  return 0;
}
