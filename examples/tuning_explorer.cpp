// Tuning explorer: which configuration wins for *your* application shape?
//
// The paper's lessons (§VI) reduce to two axes:
//   * how much data management the application does per unit of kernel time
//     (folding memory copies favours zero-copy), and
//   * whether mapped buffers are fresh each time or reused (fresh buffers
//     fault/prefault again and again; reused buffers fault once).
//
// This example sweeps a synthetic application over both axes and prints the
// winning configuration per cell — a practical map of the paper's findings.

#include <cstdio>

#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

using namespace zc;
using omp::RuntimeConfig;

namespace {

/// A synthetic app: per iteration, map `mapped_mb` of host data and run a
/// kernel of duration `kernel`. `fresh_buffers` selects whether every
/// iteration maps a newly allocated buffer (457.spC-style stack arrays) or
/// re-maps the same one (403.stencil-style persistent grid).
sim::Duration run_shape(RuntimeConfig config, int iterations, int mapped_mb,
                        sim::Duration kernel, bool fresh_buffers) {
  omp::OffloadStack stack{omp::OffloadStack::machine_config_for(config),
                          omp::OffloadStack::program_for(config, {})};
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();
    const std::uint64_t bytes = static_cast<std::uint64_t>(mapped_mb) << 20;
    mem::VirtAddr reused{};
    if (!fresh_buffers) {
      reused = rt.host_alloc(bytes, "shape-buf");
      rt.host_first_touch(mem::AddrRange{reused, bytes});
    }
    for (int it = 0; it < iterations; ++it) {
      mem::VirtAddr buf = reused;
      if (fresh_buffers) {
        buf = rt.host_alloc(bytes, "shape-buf");
        rt.host_first_touch(mem::AddrRange{buf, bytes});
      }
      rt.target(omp::TargetRegion{
          .name = "shape",
          .maps = {omp::MapEntry::tofrom(buf, bytes)},
          .compute = kernel,
          .body = {},
      });
      if (fresh_buffers) {
        rt.host_free(buf);
      }
    }
    if (!fresh_buffers) {
      rt.host_free(reused);
    }
  });
  return stack.sched().horizon().since_start();
}

}  // namespace

int main() {
  constexpr int iterations = 24;
  const RuntimeConfig configs[] = {
      RuntimeConfig::LegacyCopy,
      RuntimeConfig::ImplicitZeroCopy,
      RuntimeConfig::EagerMaps,
  };
  const char* short_names[] = {"Copy", "Z-C", "Eager"};

  for (const bool fresh : {true, false}) {
    std::printf("\n=== %s ===\n",
                fresh ? "fresh buffer mapped every iteration (spC/bt shape)"
                      : "one buffer re-mapped every iteration (stencil shape)");
    std::printf("%-14s", "kernel \\ MB");
    for (const int mb : {8, 64, 512, 2048}) {
      std::printf(" %8d", mb);
    }
    std::printf("\n");
    for (const int kernel_us : {100, 1000, 10000, 100000}) {
      std::printf("%-12dus", kernel_us);
      for (const int mb : {8, 64, 512, 2048}) {
        sim::Duration best;
        const char* winner = "?";
        for (std::size_t c = 0; c < 3; ++c) {
          const sim::Duration t =
              run_shape(configs[c], iterations, mb,
                        sim::Duration::from_us(kernel_us), fresh);
          if (winner[0] == '?' || t < best) {
            best = t;
            winner = short_names[c];
          }
        }
        std::printf(" %8s", winner);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nReading: fresh-buffer shapes are where Eager Maps shines (prefault\n"
      "beats both per-page demand faults and Copy's realloc+transfer);\n"
      "re-mapped persistent buffers fault once, so plain zero-copy wins —\n"
      "unless kernels dominate, where everything converges (Fig. 4).\n");
  return 0;
}
