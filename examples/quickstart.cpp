// Quickstart: the paper's Fig. 2 program — `a[i] += b[i] * alpha` with a
// declare-target global — run under all four runtime configurations.
//
// Demonstrates the core public API:
//   * OffloadStack / OffloadRuntime construction and configuration selection
//   * HostArray allocation and host initialization
//   * map clauses (tofrom/to/always,to) and declare-target globals
//   * a functional target-region body with argument translation
//   * per-configuration telemetry (wall time, HSA call counts, overheads)

#include <cstdio>

#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

using namespace zc;
using omp::RuntimeConfig;

namespace {

struct Outcome {
  sim::Duration wall;
  double a0 = 0.0;
  double checksum = 0.0;
  std::uint64_t copies = 0;
  std::uint64_t allocs = 0;
  std::uint64_t faults = 0;
};

Outcome run_fig2(RuntimeConfig config, std::size_t n) {
  // The "binary": built with `#pragma omp declare target(alpha)`; the
  // requires-USM flag is set when we ask for the USM configuration.
  omp::ProgramBinary binary;
  binary.name = "fig2-quickstart";
  binary.globals.push_back(omp::GlobalVar{"alpha", sizeof(double)});

  omp::OffloadStack stack{omp::OffloadStack::machine_config_for(config),
                          omp::OffloadStack::program_for(config, binary)};

  Outcome out;
  stack.sched().run_single([&] {
    omp::OffloadRuntime& rt = stack.omp();

    // double* a = new double[N]; double* b = new double[N];
    omp::HostArray<double> a{rt, n, "a"};
    omp::HostArray<double> b{rt, n, "b"};

    // FileInput(N, a, b, &alpha): host initialization.
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(i);
      b[i] = 1.0 / static_cast<double>(i + 1);
    }
    a.first_touch();
    b.first_touch();
    const mem::VirtAddr alpha = rt.global_host_addr("alpha");
    *stack.memory().space().translate_as<double>(alpha) = 2.0;

    // #pragma omp target teams loop map(tofrom: a[:N]) map(to: b[:N])
    //                              map(always, to: alpha)
    const mem::VirtAddr av = a.addr();
    const mem::VirtAddr bv = b.addr();
    omp::TargetRegion region{
        .name = "fig2_saxpy",
        .maps = {a.tofrom(), b.to(),
                 omp::MapEntry::always_to(alpha, sizeof(double))},
        .compute = omp::stream_kernel_cost(stack.machine(),
                                           3 * n * sizeof(double)),
        .body =
            [av, bv, alpha, n](hsa::KernelContext& ctx,
                               const omp::ArgTranslator& tr) {
              double* ad = ctx.ptr<double>(tr.device(av));
              const double* bd = ctx.ptr<double>(tr.device(bv));
              const double al = *ctx.ptr<double>(tr.device(alpha));
              for (std::size_t i = 0; i < n; ++i) {
                ad[i] += bd[i] * al;
              }
            },
    };
    rt.target(region);

    out.a0 = a[0];
    for (std::size_t i = 0; i < n; ++i) {
      out.checksum += a[i];
    }
    a.release();
    b.release();
  });

  out.wall = stack.sched().horizon().since_start();
  out.copies = stack.hsa().stats().count(trace::HsaCall::MemoryAsyncCopy);
  out.allocs = stack.hsa().stats().count(trace::HsaCall::MemoryPoolAllocate);
  out.faults = stack.hsa().kernel_trace().summary().total_page_faults;
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t n = 8u << 20;  // 8M doubles = 64 MB per array

  std::printf("Fig. 2 program (a[i] += b[i] * alpha, N = %zu) on MI300A\n\n", n);
  std::printf("%-22s %12s %14s %8s %8s %8s\n", "configuration", "wall",
              "checksum", "copies", "allocs", "faults");
  for (const RuntimeConfig config :
       {RuntimeConfig::LegacyCopy, RuntimeConfig::UnifiedSharedMemory,
        RuntimeConfig::ImplicitZeroCopy, RuntimeConfig::EagerMaps}) {
    const Outcome out = run_fig2(config, n);
    std::printf("%-22s %12s %14.2f %8llu %8llu %8llu\n", to_string(config),
                out.wall.to_string().c_str(), out.checksum,
                static_cast<unsigned long long>(out.copies),
                static_cast<unsigned long long>(out.allocs),
                static_cast<unsigned long long>(out.faults));
  }
  std::printf(
      "\nAll four configurations compute identical results (OpenMP data-\n"
      "environment semantics); they differ only in how maps are realized:\n"
      "Copy allocates and transfers, the zero-copy configurations share the\n"
      "one HBM storage (faulting or prefaulting the GPU page table).\n");
  return 0;
}
