// Multi-socket APU card (§III-A of the paper): the GPUs of a multi-socket
// card appear to OpenMP as multiple devices. The paper's guidance: select
// CPU and GPU thread affinity so each host thread offloads to the GPU on
// its own socket (or run one MPI rank per socket).
//
// This example runs the same 8-thread zero-copy workload on a two-socket
// card three ways and prints the makespans:
//   1. good affinity  — threads 0-3 -> socket 0, threads 4-7 -> socket 1,
//                       data first-touched on the matching socket;
//   2. wrong affinity — device matches, but every buffer is homed on
//                       socket 0 (half the kernels read remote memory);
//   3. no affinity    — every thread offloads to device 0 (one GPU does
//                       all the work, the other idles).

#include <cstdio>

#include "zc/core/host_array.hpp"
#include "zc/core/offload_stack.hpp"

using namespace zc;
using omp::RuntimeConfig;

namespace {

enum class Affinity { Good, WrongHome, AllOnSocket0 };

sim::Duration run_card(Affinity affinity) {
  apu::Machine::Config mc =
      omp::OffloadStack::machine_config_for(RuntimeConfig::ImplicitZeroCopy);
  mc.topology.sockets = 2;
  omp::OffloadStack stack{std::move(mc), omp::ProgramBinary{"multi-socket"}};

  auto& sched = stack.sched();
  for (int t = 0; t < 8; ++t) {
    const int device = affinity == Affinity::AllOnSocket0 ? 0 : t / 4;
    const int home = affinity == Affinity::Good ? device : 0;
    sched.spawn("omp-" + std::to_string(t), [&stack, t, device, home] {
      omp::OffloadRuntime& rt = stack.omp();
      // Four independent field partitions per thread, advanced with nowait
      // targets: up to 32 kernels are in flight across the card.
      constexpr int kPartitions = 4;
      const std::uint64_t bytes = 16u << 20;
      std::vector<mem::VirtAddr> parts;
      for (int part = 0; part < kPartitions; ++part) {
        parts.push_back(rt.host_alloc(
            bytes, "field-" + std::to_string(t) + "." + std::to_string(part),
            home));
        rt.host_first_touch(mem::AddrRange{parts.back(), bytes});
      }
      for (int step = 0; step < 60; ++step) {
        std::vector<omp::TargetTask> tasks;
        for (const mem::VirtAddr buf : parts) {
          tasks.push_back(rt.target_nowait(omp::TargetRegion{
              .name = "stencil_step",
              .maps = {omp::MapEntry::tofrom(buf, bytes)},
              .compute = sim::Duration::from_us(300),
              .body = {},
              .device = device,
          }));
        }
        for (omp::TargetTask& task : tasks) {
          rt.target_wait(task);
        }
      }
      for (const mem::VirtAddr buf : parts) {
        rt.host_free(buf);
      }
    });
  }
  sched.run();
  return sched.horizon().since_start();
}

}  // namespace

int main() {
  std::printf("Two-socket MI300A card, 8 OpenMP host threads, zero-copy:\n\n");
  const sim::Duration good = run_card(Affinity::Good);
  const sim::Duration wrong_home = run_card(Affinity::WrongHome);
  const sim::Duration one_socket = run_card(Affinity::AllOnSocket0);
  std::printf("  %-52s %s\n",
              "thread/device affinity + local first touch:",
              good.to_string().c_str());
  std::printf("  %-52s %s  (x%.2f)\n",
              "right device, but all data homed on socket 0:",
              wrong_home.to_string().c_str(), wrong_home / good);
  std::printf("  %-52s %s  (x%.2f)\n",
              "every thread offloads to device 0:",
              one_socket.to_string().c_str(), one_socket / good);
  std::printf(
      "\nThe paper's §III-A guidance quantified: pick the GPU on your own\n"
      "socket and first-touch your data there — or pay fabric crossings\n"
      "and leave half the card idle.\n");
  return 0;
}
