// Run the QMCPack NiO proxy once with chosen parameters and print a full
// breakdown: wall time, HSA call statistics, overhead ledger, kernel
// summary. The CLI mirrors how the paper's experiments were launched.
//
//   qmcpack_nio [--size=N] [--threads=N] [--steps=N] [--config=NAME]
//               [--ktrace=FILE]
//   config names: copy | usm | zerocopy | eager
//   --ktrace writes a LIBOMPTARGET_KERNEL_TRACE-style per-launch CSV

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "zc/stats/table.hpp"
#include "zc/workloads/qmcpack.hpp"

using namespace zc;
using omp::RuntimeConfig;

namespace {

RuntimeConfig parse_config(const std::string& name) {
  if (name == "copy") {
    return RuntimeConfig::LegacyCopy;
  }
  if (name == "usm") {
    return RuntimeConfig::UnifiedSharedMemory;
  }
  if (name == "zerocopy" || name == "zc") {
    return RuntimeConfig::ImplicitZeroCopy;
  }
  if (name == "eager") {
    return RuntimeConfig::EagerMaps;
  }
  std::cerr << "unknown config '" << name
            << "' (expected copy|usm|zerocopy|eager)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::QmcpackParams params;
  RuntimeConfig config = RuntimeConfig::ImplicitZeroCopy;
  std::string ktrace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--ktrace=", 0) == 0) {
      ktrace_path = a.substr(9);
    } else if (a.rfind("--size=", 0) == 0) {
      params.size = std::atoi(a.c_str() + 7);
    } else if (a.rfind("--threads=", 0) == 0) {
      params.threads = std::atoi(a.c_str() + 10);
    } else if (a.rfind("--steps=", 0) == 0) {
      params.steps = std::atoi(a.c_str() + 8);
    } else if (a.rfind("--config=", 0) == 0) {
      config = parse_config(a.substr(9));
    } else {
      std::cerr << "usage: qmcpack_nio [--size=N] [--threads=N] [--steps=N] "
                   "[--config=copy|usm|zerocopy|eager] [--ktrace=FILE]\n";
      return 2;
    }
  }

  std::printf("QMCPack NiO proxy: S%d, %d host thread(s), %d MC steps, %s\n\n",
              params.size, params.threads, params.steps, to_string(config));

  const workloads::RunResult r = workloads::run_program(
      workloads::make_qmcpack(params),
      {.config = config, .keep_kernel_records = !ktrace_path.empty()});

  std::printf("wall time      : %s\n", r.wall_time.to_string().c_str());
  std::printf("checksum       : %.6f\n", r.checksum);
  std::printf("kernel launches: %llu (GPU time %s, fault stalls %s)\n",
              static_cast<unsigned long long>(r.kernels.launches),
              r.kernels.total_time.to_string().c_str(),
              r.kernels.total_fault_stall.to_string().c_str());
  std::printf("page faults    : %llu\n",
              static_cast<unsigned long long>(r.kernels.total_page_faults));
  std::printf("MM overhead    : %s (alloc %s, copy %s, prefault %s)\n",
              r.ledger.mm().to_string().c_str(),
              r.ledger.mm_alloc().to_string().c_str(),
              r.ledger.mm_copy().to_string().c_str(),
              r.ledger.mm_prefault().to_string().c_str());
  std::printf("MI overhead    : %s\n\n", r.ledger.mi().to_string().c_str());

  std::printf("HSA call statistics (rocprof-style):\n");
  r.stats.write_csv(std::cout);

  if (!ktrace_path.empty()) {
    std::ofstream out{ktrace_path};
    out << "name,thread,start_us,dur_us,compute_us,fault_us,tlb_us,faults\n";
    for (const auto& rec : r.kernel_records) {
      out << rec.name << ',' << rec.host_thread << ','
          << rec.start.since_start().us() << ',' << rec.duration().us() << ','
          << rec.compute.us() << ',' << rec.fault_stall.us() << ','
          << rec.tlb_stall.us() << ',' << rec.page_faults << '\n';
    }
    std::printf("\nwrote kernel trace: %s (%zu launches)\n",
                ktrace_path.c_str(), r.kernel_records.size());
  }
  return 0;
}
