#pragma once

/// Convenience umbrella header: the full public API of the apuzc library —
/// the reproduction of "Performance Analysis of Runtime Handling of
/// Zero-Copy for OpenMP Programs on MI300A APUs" (Bertolli et al., SC'24).
///
/// Typical use:
///
///   zc::omp::OffloadStack stack{
///       zc::omp::OffloadStack::machine_config_for(
///           zc::omp::RuntimeConfig::ImplicitZeroCopy),
///       zc::omp::ProgramBinary{"my-app"}};
///   stack.sched().run_single([&] {
///     auto& rt = stack.omp();
///     zc::omp::HostArray<double> x{rt, n, "x"};
///     rt.target({.name = "kernel", .maps = {x.tofrom()}, .compute = ...});
///   });

#include "zc/apu/env.hpp"
#include "zc/apu/machine.hpp"
#include "zc/apu/params.hpp"
#include "zc/core/config.hpp"
#include "zc/core/cost.hpp"
#include "zc/core/host_array.hpp"
#include "zc/core/mapping.hpp"
#include "zc/core/offload_runtime.hpp"
#include "zc/core/offload_stack.hpp"
#include "zc/core/program.hpp"
#include "zc/core/target_region.hpp"
#include "zc/hsa/kernel.hpp"
#include "zc/hsa/runtime.hpp"
#include "zc/hsa/signal.hpp"
#include "zc/mem/address.hpp"
#include "zc/mem/address_space.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/mem/page_table.hpp"
#include "zc/mem/tlb.hpp"
#include "zc/sim/jitter.hpp"
#include "zc/sim/rng.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/sim/time.hpp"
#include "zc/sim/timeline.hpp"
#include "zc/stats/repetition.hpp"
#include "zc/stats/summary.hpp"
#include "zc/stats/table.hpp"
#include "zc/trace/call_stats.hpp"
#include "zc/trace/call_trace.hpp"
#include "zc/trace/kernel_trace.hpp"
#include "zc/trace/overhead_ledger.hpp"
#include "zc/workloads/openfoam.hpp"
#include "zc/workloads/qmcpack.hpp"
#include "zc/workloads/runner.hpp"
#include "zc/workloads/spec.hpp"
