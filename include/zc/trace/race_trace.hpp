#pragma once

#include <string>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// What class of concurrency defect a race report describes.
enum class RaceKind {
  Field,      ///< conflicting unordered accesses to instrumented shared state
  Page,       ///< host/GPU accesses to the same page with no interposed edge
  LockOrder,  ///< a cycle in the lock-order graph (potential deadlock)
};

[[nodiscard]] constexpr const char* to_string(RaceKind k) {
  switch (k) {
    case RaceKind::Field:
      return "field-race";
    case RaceKind::Page:
      return "page-race";
    case RaceKind::LockOrder:
      return "lock-order-cycle";
  }
  return "?";
}

/// One side of a reported conflict: who accessed, where in the code, and the
/// accessor's vector clock at the access.
struct RaceEndpoint {
  std::string actor;  ///< fiber or device-task name
  std::string site;   ///< instrumentation site / acquisition description
  std::string clock;  ///< rendered vector clock, e.g. "{0:3, 2:7}"
  bool is_write = false;
};

/// One deterministic, structured race report. `first` is the earlier access
/// (the one already recorded in the shadow state), `second` the one that
/// exposed the conflict. Lock-order cycles use `first`/`second` for the two
/// edges that close the cycle.
struct RaceReport {
  RaceKind kind = RaceKind::Field;
  std::string what;  ///< variable name, page range, or cycle description
  RaceEndpoint first;
  RaceEndpoint second;
  sim::TimePoint time;  ///< virtual time of the detecting access
  std::string message;  ///< fully rendered one-line report
};

/// Record of every race the detector reported in a run. Populated only when
/// `OMPX_APU_RACE_CHECK` is report/abort; clean runs stay empty.
class RaceTrace {
 public:
  void record(RaceReport r) { records_.push_back(std::move(r)); }

  [[nodiscard]] const std::vector<RaceReport>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count(RaceKind k) const {
    std::size_t n = 0;
    for (const RaceReport& r : records_) {
      if (r.kind == k) {
        ++n;
      }
    }
    return n;
  }
  [[nodiscard]] bool any(RaceKind k) const { return count(k) > 0; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  void clear() { records_.clear(); }

 private:
  std::vector<RaceReport> records_;
};

}  // namespace zc::trace
