#pragma once

#include <cstdint>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// The paper's Table III overhead decomposition.
///
/// * **MM** (memory management): GPU-specific memory allocation/free, CPU-GPU
///   memory copies, and — for Eager Maps — the host-issued prefault syscalls
///   performed while mapping.
/// * **MI** (memory initialization): time kernels spend stalled on GPU
///   first-touch page faults (the XNACK protocol executing page-by-page
///   while the kernel runs).
///
/// Concurrency discipline: like `CallStats`, the ledger is unsynchronized;
/// every `add_*` from a virtual host thread goes through `hsa::Runtime`'s
/// trace mutex (checker-enforced), readers see quiescent state.
class OverheadLedger {
 public:
  void add_alloc(sim::Duration d) {
    mm_ += d;
    mm_alloc_ += d;
  }
  void add_copy(sim::Duration d) {
    mm_ += d;
    mm_copy_ += d;
  }
  void add_prefault(sim::Duration d) {
    mm_ += d;
    mm_prefault_ += d;
    ++prefault_calls_;
  }
  void add_first_touch(sim::Duration d, std::uint64_t faults) {
    mi_ += d;
    faults_ += faults;
  }

  [[nodiscard]] sim::Duration mm() const { return mm_; }
  [[nodiscard]] sim::Duration mm_alloc() const { return mm_alloc_; }
  [[nodiscard]] sim::Duration mm_copy() const { return mm_copy_; }
  [[nodiscard]] sim::Duration mm_prefault() const { return mm_prefault_; }
  [[nodiscard]] sim::Duration mi() const { return mi_; }
  [[nodiscard]] std::uint64_t page_faults() const { return faults_; }
  [[nodiscard]] std::uint64_t prefault_calls() const { return prefault_calls_; }

  void reset() { *this = OverheadLedger{}; }

 private:
  sim::Duration mm_;
  sim::Duration mm_alloc_;
  sim::Duration mm_copy_;
  sim::Duration mm_prefault_;
  sim::Duration mi_;
  std::uint64_t faults_ = 0;
  std::uint64_t prefault_calls_ = 0;
};

/// Render a duration as a power-of-ten order of magnitude in microseconds,
/// as Table III does: "O(0)" for zero, otherwise "O(10^k)".
[[nodiscard]] const char* order_of_magnitude_us(sim::Duration d);

}  // namespace zc::trace
