#pragma once

#include <cstdint>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// How one service job left the system. `Shed` jobs carry no span (they
/// never dispatched); `Failed` jobs ran and raised a structured
/// `OffloadError`; `Completed` jobs ran to a verified checksum.
enum class ServiceJobOutcome {
  Completed,
  Failed,
  Shed,
};

[[nodiscard]] constexpr const char* to_string(ServiceJobOutcome o) {
  switch (o) {
    case ServiceJobOutcome::Completed:
      return "completed";
    case ServiceJobOutcome::Failed:
      return "failed";
    case ServiceJobOutcome::Shed:
      return "shed";
  }
  return "?";
}

/// One job's lifecycle through the multi-tenant service, for the
/// chrome-trace service lanes (one track per tenant). Like the other trace
/// records, it depends on nothing above `zc::sim`: the service layer fills
/// it in, the trace layer renders it.
struct ServiceJobRecord {
  int tenant = 0;
  std::uint64_t job = 0;       ///< arrival ordinal within the tenant
  int device = 0;
  std::uint64_t pages = 0;     ///< working-set footprint in pages
  sim::TimePoint arrival;      ///< when the arrival process offered the job
  sim::TimePoint start;        ///< dispatch (== arrival for shed jobs)
  sim::TimePoint end;          ///< retirement (== arrival for shed jobs)
  ServiceJobOutcome outcome = ServiceJobOutcome::Completed;

  [[nodiscard]] sim::Duration queue_wait() const { return start - arrival; }
  [[nodiscard]] sim::Duration sojourn() const { return end - arrival; }
};

}  // namespace zc::trace
