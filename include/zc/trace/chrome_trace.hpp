#pragma once

#include <iosfwd>
#include <vector>

#include "zc/trace/call_trace.hpp"
#include "zc/trace/copy_trace.hpp"
#include "zc/trace/decision_trace.hpp"
#include "zc/trace/fault_trace.hpp"
#include "zc/trace/kernel_trace.hpp"
#include "zc/trace/service_trace.hpp"

namespace zc::trace {

/// Export traces in the Chrome trace-event JSON format, viewable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Host-side API calls (CallTrace records) appear as complete events on
/// per-thread tracks (`pid` 1, `tid` = virtual host thread); kernel
/// executions (KernelRecord) appear on per-device GPU tracks (`pid` 2,
/// `tid` = device), with fault/TLB stalls attached as arguments; SDMA
/// transfers (CopyRecord) on per-device engine tracks (`pid` 3, `tid` =
/// device); fault events (FaultRecord) as instants on per-device tracks
/// (`pid` 4, `tid` = device); Adaptive Maps decisions (DecisionRecord)
/// as instant events on the host-thread track that took them, with the
/// policy features and predicted costs as arguments; service jobs
/// (ServiceJobRecord) as spans on per-tenant service tracks (`pid` 5,
/// `tid` = tenant) covering queue wait + execution, with the outcome and
/// footprint as arguments (shed jobs render as instants — they never
/// dispatched). Process-name metadata events label the lanes so a
/// multi-device run never interleaves kernels, copies, or faults from
/// different sockets on one track.
class ChromeTraceWriter {
 public:
  /// Add every record of a host-side call trace.
  void add(const CallTrace& calls);

  /// Add kernel launches (per-device GPU tracks).
  void add(const std::vector<KernelRecord>& kernels);

  /// Add SDMA transfers (per-device engine tracks).
  void add(const std::vector<CopyRecord>& copies);

  /// Add fault events (instants, per-device fault tracks).
  void add(const FaultTrace& faults);

  /// Add Adaptive Maps policy decisions (instant events, host tracks).
  void add(const DecisionTrace& decisions);

  /// Add service job lifecycles (per-tenant service tracks).
  void add(const std::vector<ServiceJobRecord>& jobs);

  /// Write the complete JSON document.
  void write(std::ostream& os) const;

  [[nodiscard]] std::size_t event_count() const {
    return call_events_.size() + kernel_events_.size() +
           copy_events_.size() + fault_events_.size() +
           decision_events_.size() + service_events_.size();
  }

 private:
  std::vector<CallRecord> call_events_;
  std::vector<KernelRecord> kernel_events_;
  std::vector<CopyRecord> copy_events_;
  std::vector<FaultRecord> fault_events_;
  std::vector<DecisionRecord> decision_events_;
  std::vector<ServiceJobRecord> service_events_;
};

}  // namespace zc::trace
