#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "zc/sim/time.hpp"
#include "zc/trace/call_stats.hpp"

namespace zc::trace {

/// One traced API call, as `rocprof --hsa-trace` would emit it.
struct CallRecord {
  HsaCall call;
  int host_thread = 0;
  sim::TimePoint start;
  sim::Duration latency;

  [[nodiscard]] sim::TimePoint end() const { return start + latency; }
};

/// Optional per-call trace (off by default — full-fidelity runs make
/// millions of calls; aggregate `CallStats` are always collected).
///
/// Enables timeline analyses the aggregate counters cannot answer: call
/// interleavings across host threads, warm-up vs steady-state phases, gaps
/// between dependent calls.
class CallTrace {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(HsaCall call, int host_thread, sim::TimePoint start,
              sim::Duration latency) {
    if (enabled_) {
      records_.push_back(CallRecord{call, host_thread, start, latency});
    }
  }

  [[nodiscard]] const std::vector<CallRecord>& records() const {
    return records_;
  }

  /// Records of one API in insertion order.
  [[nodiscard]] std::vector<CallRecord> by_call(HsaCall call) const;

  /// Total latency of calls that *started* within [from, to).
  [[nodiscard]] sim::Duration latency_in_window(sim::TimePoint from,
                                                sim::TimePoint to) const;

  void clear() { records_.clear(); }

  /// "start_us,call,thread,latency_us" CSV rows.
  void write_csv(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<CallRecord> records_;
};

}  // namespace zc::trace
