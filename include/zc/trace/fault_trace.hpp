#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// What happened at a fault-handling point: injections (the fault engine or
/// the capacity model made an operation fail) and the runtime's degraded-
/// mode reactions to them. Raw address values for the same reason as
/// `DecisionRecord`: the trace layer depends on nothing above `zc::sim`.
enum class FaultEvent {
  // -- injected / organic failures ---------------------------------------
  OomInjected,         ///< fault engine failed a pool allocation
  HbmExhausted,        ///< capacity accounting failed a pool allocation
  EintrInjected,       ///< fault engine EINTR'd a prefault syscall
  EbusyInjected,       ///< fault engine EBUSY'd a prefault syscall
  SdmaErrorInjected,   ///< fault engine errored an async copy's signal
  ReplayStormInjected, ///< fault engine inflated XNACK fault servicing
  KernelHangInjected,  ///< fault engine hung a kernel's completion signal
  SdmaStallInjected,   ///< fault engine stalled an async copy's signal
  PrefaultHangInjected,///< fault engine hung a prefault syscall
  XnackLivelockInjected,///< fault engine livelocked XNACK fault servicing
  // -- degraded-mode reactions -------------------------------------------
  OomFallbackZeroCopy,   ///< Copy map degraded to a zero-copy mapping
  PrefaultRetry,         ///< prefault retried after a transient error
  PrefaultRetrySucceeded,///< a retried prefault eventually succeeded
  PrefaultFallbackXnack, ///< retries exhausted; relying on XNACK replay
  CopyRetry,             ///< errored async copy was resubmitted
  CopyRetrySucceeded,    ///< the resubmitted copy completed cleanly
  RegionFailed,          ///< degradation exhausted; OffloadError raised
  // -- watchdog / circuit breaker -----------------------------------------
  WatchdogTrip,          ///< watchdog aborted a hung op via queue teardown
  WatchdogReplay,        ///< runtime replayed the aborted operation
  WatchdogRecovered,     ///< a replayed operation completed cleanly
  BreakerOpened,         ///< device breaker opened (trips over threshold)
  BreakerHalfOpened,     ///< breaker probing again after the cooldown
  BreakerClosed,         ///< breaker closed after a quiet period
  BreakerPinnedMap,      ///< open breaker pinned a map to eager zero-copy
  // -- memory pressure / UPM dynamics --------------------------------------
  EvictStormInjected,    ///< fault engine inflated a reclaim batch
  MigrationStallInjected,///< fault engine stalled an auto-migration
  ThpSplitStormInjected, ///< fault engine split huge spans under an op
  CounterLossInjected,   ///< fault engine dropped the access-counter state
  PagesEvicted,          ///< watermark reclaim spilled HBM pages to DDR
  PagesPromoted,         ///< GPU fault promoted DDR-spilled pages to HBM
  AutoMigrated,          ///< access counters migrated a page's home
  ThpSplit,              ///< a 2 MB span split to 4 KB pricing
  ThpCollapsed,          ///< a split span re-homogenized and collapsed
  PoolReclaimed,         ///< pool allocation succeeded only after reclaim
  // -- multi-tenant service (`zc::service`) --------------------------------
  TenantBurstInjected,   ///< fault engine collapsed a tenant's interarrivals
  AdmissionFlapInjected, ///< fault engine made admission read "full"
  JobShed,               ///< service shed a job (typed OffloadError + hint)
  JobDeAdmitted,         ///< memory pressure paused a low-priority tenant
  JobResumed,            ///< a de-admitted tenant resumed dispatching
  TenantBreakerOpened,   ///< a tenant's circuit breaker opened
  TenantBreakerClosed,   ///< a tenant's circuit breaker closed again
  StarvationBoost,       ///< the DRR starvation watchdog force-served a tenant
};

[[nodiscard]] constexpr const char* to_string(FaultEvent e) {
  switch (e) {
    case FaultEvent::OomInjected:
      return "oom-injected";
    case FaultEvent::HbmExhausted:
      return "hbm-exhausted";
    case FaultEvent::EintrInjected:
      return "eintr-injected";
    case FaultEvent::EbusyInjected:
      return "ebusy-injected";
    case FaultEvent::SdmaErrorInjected:
      return "sdma-error-injected";
    case FaultEvent::ReplayStormInjected:
      return "replay-storm-injected";
    case FaultEvent::OomFallbackZeroCopy:
      return "oom-fallback-zero-copy";
    case FaultEvent::PrefaultRetry:
      return "prefault-retry";
    case FaultEvent::PrefaultRetrySucceeded:
      return "prefault-retry-succeeded";
    case FaultEvent::PrefaultFallbackXnack:
      return "prefault-fallback-xnack";
    case FaultEvent::CopyRetry:
      return "copy-retry";
    case FaultEvent::CopyRetrySucceeded:
      return "copy-retry-succeeded";
    case FaultEvent::RegionFailed:
      return "region-failed";
    case FaultEvent::KernelHangInjected:
      return "kernel-hang-injected";
    case FaultEvent::SdmaStallInjected:
      return "sdma-stall-injected";
    case FaultEvent::PrefaultHangInjected:
      return "prefault-hang-injected";
    case FaultEvent::XnackLivelockInjected:
      return "xnack-livelock-injected";
    case FaultEvent::WatchdogTrip:
      return "watchdog-trip";
    case FaultEvent::WatchdogReplay:
      return "watchdog-replay";
    case FaultEvent::WatchdogRecovered:
      return "watchdog-recovered";
    case FaultEvent::BreakerOpened:
      return "breaker-opened";
    case FaultEvent::BreakerHalfOpened:
      return "breaker-half-opened";
    case FaultEvent::BreakerClosed:
      return "breaker-closed";
    case FaultEvent::BreakerPinnedMap:
      return "breaker-pinned-map";
    case FaultEvent::EvictStormInjected:
      return "evict-storm-injected";
    case FaultEvent::MigrationStallInjected:
      return "migration-stall-injected";
    case FaultEvent::ThpSplitStormInjected:
      return "thp-split-storm-injected";
    case FaultEvent::CounterLossInjected:
      return "counter-loss-injected";
    case FaultEvent::PagesEvicted:
      return "pages-evicted";
    case FaultEvent::PagesPromoted:
      return "pages-promoted";
    case FaultEvent::AutoMigrated:
      return "auto-migrated";
    case FaultEvent::ThpSplit:
      return "thp-split";
    case FaultEvent::ThpCollapsed:
      return "thp-collapsed";
    case FaultEvent::PoolReclaimed:
      return "pool-reclaimed";
    case FaultEvent::TenantBurstInjected:
      return "tenant-burst-injected";
    case FaultEvent::AdmissionFlapInjected:
      return "admission-flap-injected";
    case FaultEvent::JobShed:
      return "job-shed";
    case FaultEvent::JobDeAdmitted:
      return "job-de-admitted";
    case FaultEvent::JobResumed:
      return "job-resumed";
    case FaultEvent::TenantBreakerOpened:
      return "tenant-breaker-opened";
    case FaultEvent::TenantBreakerClosed:
      return "tenant-breaker-closed";
    case FaultEvent::StarvationBoost:
      return "starvation-boost";
  }
  return "?";
}

/// One fault-handling event.
struct FaultRecord {
  FaultEvent event = FaultEvent::OomInjected;
  int device = 0;
  sim::TimePoint time;
  std::uint64_t host_base = 0;  ///< affected host range (0 when n/a)
  std::uint64_t bytes = 0;
  int attempt = 0;       ///< retry ordinal (retries/successes)
  double factor = 1.0;   ///< replay-storm latency multiplier
  int tenant = -1;       ///< owning service tenant (-1 outside the service)
};

/// Record of every injected fault and degraded-mode reaction in a run.
/// Always on: faults are rare by construction (fault-free runs record
/// nothing), so the trace stays small even on full-fidelity runs.
class FaultTrace {
 public:
  void record(const FaultRecord& r) { records_.push_back(r); }

  [[nodiscard]] const std::vector<FaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t count(FaultEvent e) const {
    std::uint64_t n = 0;
    for (const FaultRecord& r : records_) {
      if (r.event == e) {
        ++n;
      }
    }
    return n;
  }
  [[nodiscard]] bool any(FaultEvent e) const { return count(e) > 0; }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  void clear() { records_.clear(); }

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace zc::trace
