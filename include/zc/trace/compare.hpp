#pragma once

#include <string>
#include <vector>

#include "zc/trace/call_stats.hpp"

namespace zc::trace {

/// One row of a Table-I-style comparison between two configurations.
struct CallComparison {
  HsaCall call;
  std::uint64_t baseline_calls = 0;
  std::uint64_t other_calls = 0;
  sim::Duration baseline_latency;
  sim::Duration other_latency;

  /// baseline/other total-latency ratio; NaN-free: negative when the other
  /// configuration never issued the call (the paper prints "N/A").
  [[nodiscard]] double latency_ratio() const {
    if (other_latency.is_zero()) {
      return -1.0;
    }
    return baseline_latency / other_latency;
  }
  [[nodiscard]] bool ratio_defined() const {
    return !other_latency.is_zero();
  }
};

/// Build the paper's Table I comparison: call counts and latency ratios of
/// `baseline` (Copy) against `other` (a zero-copy configuration), for the
/// given calls in order.
[[nodiscard]] std::vector<CallComparison> compare_calls(
    const CallStats& baseline, const CallStats& other,
    const std::vector<HsaCall>& calls);

/// The four calls Table I reports, in the paper's order.
[[nodiscard]] std::vector<HsaCall> table_one_calls();

}  // namespace zc::trace
