#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// One kernel launch, as `LIBOMPTARGET_KERNEL_TRACE`-style tracing sees it.
struct KernelRecord {
  std::string name;
  int host_thread = 0;
  int device = 0;             ///< socket GPU the kernel ran on
  sim::TimePoint dispatch;    ///< CPU submitted the packet
  sim::TimePoint start;       ///< GPU began execution
  sim::TimePoint end;         ///< completion signal fired
  sim::Duration compute;      ///< modeled compute portion
  sim::Duration fault_stall;  ///< XNACK fault-service portion
  sim::Duration tlb_stall;    ///< page-table walk portion
  std::uint64_t page_faults = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t remote_bytes = 0;  ///< buffer bytes homed on other sockets

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Aggregates over a trace window.
struct KernelTraceSummary {
  std::uint64_t launches = 0;
  sim::Duration total_time;
  sim::Duration total_compute;
  sim::Duration total_fault_stall;
  sim::Duration total_tlb_stall;
  std::uint64_t total_page_faults = 0;
};

/// In-memory kernel trace. Recording individual launches can be switched
/// off (summaries are always kept), which matters for full-fidelity QMCPack
/// runs with hundreds of thousands of launches.
class KernelTrace {
 public:
  void set_keep_records(bool keep) { keep_records_ = keep; }
  [[nodiscard]] bool keep_records() const { return keep_records_; }

  void record(KernelRecord rec);

  [[nodiscard]] const std::vector<KernelRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const KernelTraceSummary& summary() const { return summary_; }

  /// Summary restricted to the first `n` launches (used for the paper's
  /// "first hundred kernel launches" analysis). Requires kept records.
  [[nodiscard]] KernelTraceSummary summarize_first(std::uint64_t n) const;

  void reset();

  /// One line per record: name, thread, times, faults.
  void dump(std::ostream& os) const;

  /// "name,thread,start_us,dur_us,compute_us,fault_us,tlb_us,faults" rows.
  void write_csv(std::ostream& os) const;

 private:
  bool keep_records_ = true;
  std::vector<KernelRecord> records_;
  KernelTraceSummary summary_;
};

}  // namespace zc::trace
