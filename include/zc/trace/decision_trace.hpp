#pragma once

#include <cstdint>
#include <vector>

#include "zc/adapt/decision.hpp"
#include "zc/sim/time.hpp"

namespace zc::trace {

/// One fresh Adaptive Maps policy evaluation: the decision, the feature
/// inputs it saw, and the predicted cost of each handling — enough to
/// explain *why* a region was classified the way it was. Addresses are
/// raw simulated-address values (`VirtAddr::value`) so the trace layer
/// needs no dependency on `zc::mem`.
struct DecisionRecord {
  adapt::Decision decision = adapt::Decision::ZeroCopy;
  int host_thread = 0;
  int device = 0;
  sim::TimePoint time;
  std::uint64_t host_base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t pages = 0;
  std::uint64_t cpu_resident_pages = 0;
  std::uint64_t gpu_absent_pages = 0;
  double predicted_copy_us = 0.0;
  double predicted_zero_copy_us = 0.0;
  double predicted_eager_us = 0.0;
  /// True when a hysteresis re-evaluation changed an earlier decision.
  bool revised = false;
  /// True when the device was under memory pressure (a pool allocation had
  /// failed) at evaluation time — DmaCopy was priced out.
  bool memory_pressure = false;
  /// True when the device's circuit breaker was open at evaluation time —
  /// only eager prefault was priced finite.
  bool breaker_open = false;
};

/// Record of every *fresh* policy evaluation (cache misses and hysteresis
/// re-evaluations). Cache hits — the vast majority on steady-state
/// workloads — only bump an aggregate counter, so the trace stays small
/// even on full-fidelity runs. Always on: fresh evaluations are rare by
/// construction.
class DecisionTrace {
 public:
  void record(const DecisionRecord& r) { records_.push_back(r); }
  void note_cache_hit() { ++cache_hits_; }

  [[nodiscard]] const std::vector<DecisionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

  void clear() {
    records_.clear();
    cache_hits_ = 0;
  }

 private:
  std::vector<DecisionRecord> records_;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace zc::trace
