#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// One SDMA transfer, as the async-copy path sees it.
struct CopyRecord {
  int device = 0;       ///< socket whose SDMA engine carried the copy
  int src_socket = 0;   ///< home of the source allocation
  int dst_socket = 0;   ///< home of the destination allocation
  sim::TimePoint submit;  ///< CPU issued the copy
  sim::TimePoint start;   ///< engine began the transfer
  sim::TimePoint end;     ///< completion signal fired
  std::uint64_t bytes = 0;

  [[nodiscard]] bool cross_socket() const { return src_socket != dst_socket; }
  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

/// Aggregates over a copy-trace window.
struct CopyTraceSummary {
  std::uint64_t copies = 0;
  std::uint64_t cross_socket_copies = 0;
  std::uint64_t total_bytes = 0;
  sim::Duration total_time;
};

/// In-memory SDMA copy trace, symmetric with `KernelTrace`: summaries are
/// always kept, individual records are opt-in (Copy-configuration runs
/// issue one transfer per mapped buffer per region).
class CopyTrace {
 public:
  void set_keep_records(bool keep) { keep_records_ = keep; }
  [[nodiscard]] bool keep_records() const { return keep_records_; }

  void record(CopyRecord rec) {
    ++summary_.copies;
    if (rec.cross_socket()) {
      ++summary_.cross_socket_copies;
    }
    summary_.total_bytes += rec.bytes;
    summary_.total_time += rec.duration();
    if (keep_records_) {
      records_.push_back(rec);
    }
  }

  [[nodiscard]] const std::vector<CopyRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const CopyTraceSummary& summary() const { return summary_; }

  void reset() {
    records_.clear();
    summary_ = CopyTraceSummary{};
  }

 private:
  bool keep_records_ = true;
  std::vector<CopyRecord> records_;
  CopyTraceSummary summary_;
};

}  // namespace zc::trace
