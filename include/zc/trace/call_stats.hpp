#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "zc/sim/time.hpp"

namespace zc::trace {

/// The ROCr/HSA API calls the instrumentation distinguishes — the ones the
/// paper's Table I reports, plus the dispatch and prefault entry points.
enum class HsaCall : int {
  SignalCreate = 0,
  SignalWaitScacquire,   ///< kernel/copy completion waits
  SignalAsyncHandler,    ///< async-copy completion callbacks
  MemoryPoolAllocate,    ///< "device" memory allocation
  MemoryPoolFree,
  MemoryAsyncCopy,       ///< DMA copy submission
  QueueDispatch,         ///< kernel dispatch packet submission
  SvmAttributesSet,      ///< GPU page-table prefault syscall
  kCount,
};

[[nodiscard]] const char* to_string(HsaCall c);

/// Per-API call counters: number of calls and total attributed latency.
///
/// This is the simulator's equivalent of `rocprof --hsa-trace` output, from
/// which the paper derives Table I (call counts and Copy/zero-copy latency
/// ratios). Latency attribution follows the tracer's view: a wait call is
/// charged the time the caller was blocked, a copy is charged its engine
/// time, an allocation its driver round trip.
///
/// Concurrency discipline: the class itself is not synchronized. All
/// accumulation from virtual host threads happens inside `hsa::Runtime`
/// under its trace mutex (checker-enforced via `sim::GuardedBy`); `reset`,
/// `merge`, and the readers run on quiescent instances or snapshots.
class CallStats {
 public:
  void record(HsaCall call, sim::Duration latency);

  [[nodiscard]] std::uint64_t count(HsaCall call) const {
    return entries_[index(call)].count;
  }
  [[nodiscard]] sim::Duration total_latency(HsaCall call) const {
    return entries_[index(call)].latency;
  }
  [[nodiscard]] std::uint64_t total_calls() const;
  [[nodiscard]] sim::Duration total_time() const;

  void reset();

  /// Merge another run's counters into this one.
  void merge(const CallStats& other);

  /// "call,count,total_us" CSV rows (one per nonzero call).
  void write_csv(std::ostream& os) const;

 private:
  struct Entry {
    std::uint64_t count = 0;
    sim::Duration latency;
  };

  [[nodiscard]] static std::size_t index(HsaCall call) {
    return static_cast<std::size_t>(call);
  }

  std::array<Entry, static_cast<std::size_t>(HsaCall::kCount)> entries_{};
};

}  // namespace zc::trace
