#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::fault {

/// Raised by `parse_spec` on a malformed `OMPX_APU_FAULTS` value. Like
/// `apu::EnvError`, the simulator refuses typos instead of silently running
/// a fault-free experiment that claims to be a fault experiment.
class FaultSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runtime call sites the engine can inject faults into.
enum class Site {
  PoolAlloc,      ///< hsa memory_pool_allocate: HBM out-of-memory
  SvmPrefault,    ///< hsa svm_attributes_set: transient EINTR/EBUSY or hang
  AsyncCopy,      ///< hsa memory_async_copy: SDMA engine error or stall
  XnackReplay,    ///< kernel fault servicing: replay storm or livelock
  KernelLaunch,   ///< hsa queue dispatch: kernel completion signal hangs
  Eviction,       ///< watermark reclaim: eviction storm (batch slowdown)
  AutoMigrate,    ///< access-counter migration: driver migration stall
  ThpSplit,       ///< THP state machine: spurious huge-page split storm
  AccessCounter,  ///< access-counter sampling: counter overflow/loss
  TenantBurst,    ///< service arrival process: one tenant's burst of jobs
  AdmissionFlap,  ///< service admission check: transient capacity misread
};
inline constexpr std::size_t kSiteCount = 11;

[[nodiscard]] constexpr const char* to_string(Site s) {
  switch (s) {
    case Site::PoolAlloc:
      return "pool-alloc";
    case Site::SvmPrefault:
      return "svm-prefault";
    case Site::AsyncCopy:
      return "async-copy";
    case Site::XnackReplay:
      return "xnack-replay";
    case Site::KernelLaunch:
      return "kernel-launch";
    case Site::Eviction:
      return "eviction";
    case Site::AutoMigrate:
      return "auto-migrate";
    case Site::ThpSplit:
      return "thp-split";
    case Site::AccessCounter:
      return "access-counter";
    case Site::TenantBurst:
      return "tenant-burst";
    case Site::AdmissionFlap:
      return "admission-flap";
  }
  return "?";
}

/// What an injection does at its site.
enum class Kind {
  None,           ///< no fault
  Oom,            ///< pool allocation fails with out-of-memory
  Eintr,          ///< prefault syscall returns EINTR (retryable)
  Ebusy,          ///< prefault syscall returns EBUSY (retryable)
  CopyError,      ///< async copy's signal completes with an error payload
  ReplayStorm,    ///< XNACK fault servicing slowed by a latency factor
  KernelHang,     ///< kernel completion signal never completes
  SdmaStall,      ///< async copy's signal never completes
  PrefaultHang,   ///< prefault syscall never returns
  XnackLivelock,  ///< fault servicing replays forever; kernel never signals
  EvictStorm,     ///< watermark reclaim slowed by a latency factor
  MigrationStall, ///< access-counter migration slowed by a latency factor
  ThpSplitStorm,  ///< huge-page spans under the op split spuriously
  CounterLoss,    ///< access-counter state lost (heat resets to cold)
  TenantBurst,    ///< the next `factor` arrivals of one tenant collapse
                  ///< into a zero-interarrival burst
  AdmissionFlap,  ///< the admission capacity check transiently reads "full"
};

[[nodiscard]] constexpr const char* to_string(Kind k) {
  switch (k) {
    case Kind::None:
      return "none";
    case Kind::Oom:
      return "oom";
    case Kind::Eintr:
      return "eintr";
    case Kind::Ebusy:
      return "ebusy";
    case Kind::CopyError:
      return "sdma";
    case Kind::ReplayStorm:
      return "xnack";
    case Kind::KernelHang:
      return "kernel_hang";
    case Kind::SdmaStall:
      return "sdma_stall";
    case Kind::PrefaultHang:
      return "prefault_hang";
    case Kind::XnackLivelock:
      return "xnack_livelock";
    case Kind::EvictStorm:
      return "evict_storm";
    case Kind::MigrationStall:
      return "migration_stall";
    case Kind::ThpSplitStorm:
      return "thp_split_storm";
    case Kind::CounterLoss:
      return "counter_loss";
    case Kind::TenantBurst:
      return "tenant_burst";
    case Kind::AdmissionFlap:
      return "admission_flap";
  }
  return "?";
}

/// True for the kinds that make an operation's completion signal never
/// complete (the hang family a watchdog must bound).
[[nodiscard]] constexpr bool is_hang(Kind k) {
  return k == Kind::KernelHang || k == Kind::SdmaStall ||
         k == Kind::PrefaultHang || k == Kind::XnackLivelock;
}

/// When a clause fires: an inclusive 1-based call-count window at its site,
/// a virtual-time window, or an independent per-call probability.
struct Trigger {
  enum class Mode { CallRange, TimeWindow, Probability };
  Mode mode = Mode::CallRange;
  std::uint64_t call_from = 0;  ///< CallRange: first firing call (1-based)
  std::uint64_t call_to = 0;    ///< CallRange: last firing call (inclusive)
  sim::TimePoint t_from;        ///< TimeWindow: window start
  sim::TimePoint t_to;          ///< TimeWindow: window end (inclusive)
  double probability = 0.0;     ///< Probability: per-call Bernoulli p
};

/// One `site@trigger[:xF]` clause of a fault spec.
struct Clause {
  Site site = Site::PoolAlloc;
  Kind kind = Kind::Oom;
  Trigger trigger;
  double factor = 8.0;  ///< replay-storm latency multiplier (xnack only)
};

/// A parsed fault schedule; empty means fault-free.
struct Schedule {
  std::vector<Clause> clauses;
  [[nodiscard]] bool empty() const { return clauses.empty(); }
};

/// Parse an `OMPX_APU_FAULTS` spec. Grammar (whitespace-free):
///
///   spec    := clause (';' clause)*          | ""  (fault-free)
///   clause  := site '@' trigger (':' option)*
///   site    := 'oom' | 'eintr' | 'ebusy' | 'sdma' | 'xnack'
///            | 'kernel_hang' | 'sdma_stall' | 'prefault_hang'
///            | 'xnack_livelock' | 'evict_storm' | 'migration_stall'
///            | 'thp_split_storm' | 'counter_loss' | 'tenant_burst'
///            | 'admission_flap'
///   trigger := 'call=' N | 'call=' N '..' M   (1-based inclusive window)
///            | 't=' A 'us' ('..' B 'us')?     (virtual-time window)
///            | 'p=' F                         (per-call probability)
///   option  := 'x' F                          (replay latency factor)
///
/// Each site token fixes the fault kind: oom -> pool allocation OOM,
/// eintr/ebusy -> transient prefault syscall errors, sdma -> async-copy
/// error signal, xnack -> replay-storm latency spike. The hang family
/// (kernel_hang, sdma_stall, prefault_hang, xnack_livelock) makes the
/// operation's completion signal never complete — survivable only when a
/// watchdog (`OMPX_APU_WATCHDOG`) bounds the wait. The pressure family:
/// evict_storm -> watermark reclaim batch slowed by the latency factor,
/// migration_stall -> access-counter migration slowed by the factor,
/// thp_split_storm -> huge-page spans split spuriously under the op,
/// counter_loss -> the driver drops its access-counter state (pages read
/// as cold again). The service family (`zc::service` arrival/admission
/// paths): tenant_burst -> the next `factor` arrivals of the tenant the
/// firing call belongs to collapse into a zero-interarrival burst,
/// admission_flap -> the admission capacity check transiently reports the
/// socket full so an admissible job is queued (or shed) as if memory were
/// exhausted. A `t=A us` window without an end extends to the end of the
/// run. Throws `FaultSpecError` on anything it cannot parse.
[[nodiscard]] Schedule parse_spec(const std::string& spec);

/// Render a schedule back to spec syntax (logs, error messages).
[[nodiscard]] std::string to_string(const Schedule& schedule);

}  // namespace zc::fault
