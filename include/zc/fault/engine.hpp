#pragma once

#include <array>
#include <cstdint>

#include "zc/fault/spec.hpp"
#include "zc/sim/rng.hpp"
#include "zc/sim/time.hpp"

namespace zc::fault {

/// What `consult` decided for one call.
struct Injection {
  Kind kind = Kind::None;
  double factor = 1.0;  ///< replay-storm latency multiplier

  [[nodiscard]] bool fired() const { return kind != Kind::None; }
};

/// Deterministic fault-injection engine: a parsed schedule plus per-site
/// call counters and a seeded RNG for probabilistic clauses.
///
/// The HSA layer calls `consult(site, now)` once per instrumented call,
/// *before* performing the operation; the first matching clause fires.
/// Determinism: call-count triggers depend only on program order at the
/// site, time triggers on virtual time, and probability triggers on a
/// seeded generator drawn in consultation order — the same seed and
/// schedule always fault the same calls.
///
/// The engine is consulted from virtual threads but needs no lock: under
/// cooperative scheduling a `consult` never yields.
class FaultEngine {
 public:
  FaultEngine() = default;
  FaultEngine(Schedule schedule, std::uint64_t seed)
      : schedule_{std::move(schedule)}, rng_{seed} {}

  [[nodiscard]] bool enabled() const { return !schedule_.empty(); }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

  /// Count this call at `site` and decide whether a fault fires.
  Injection consult(Site site, sim::TimePoint now);

  /// Calls consulted / faults fired so far at one site.
  [[nodiscard]] std::uint64_t calls(Site site) const {
    return calls_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t injected(Site site) const {
    return injected_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t injected_total() const;

 private:
  Schedule schedule_;
  sim::Rng rng_{0};
  std::array<std::uint64_t, kSiteCount> calls_{};
  std::array<std::uint64_t, kSiteCount> injected_{};
};

}  // namespace zc::fault
