#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "zc/sim/scheduler.hpp"
#include "zc/sim/time.hpp"

namespace zc::hsa {

/// Completion signal for asynchronous device operations.
///
/// In the simulator an async operation's completion time is computed
/// analytically when it is submitted, so a signal usually just carries that
/// timestamp; waiting advances the waiter's clock. A signal can also be
/// awaited before any operation has been bound to it (cross-thread
/// synchronization), in which case the waiter blocks until `complete()` is
/// called. A hung operation (fault injection) simply never binds a
/// completion time; the watchdog may then `complete_abort` the signal to
/// unblock its waiters.
///
/// Handles are cheap shared references; copying a `Signal` shares state.
class Signal {
 public:
  Signal() : state_{std::make_shared<State>()} {}

  /// Label the signal with the operation it tracks (e.g. "kernel:vmc").
  /// Used by deadlock diagnostics and watchdog trip reports.
  void set_name(std::string name) { state_->name = std::move(name); }
  [[nodiscard]] const std::string& name() const { return state_->name; }

  /// Stable identity of the shared signal state: the object release/acquire
  /// edges are keyed on (`complete*` releases into it, successful waits
  /// acquire from it, and a device task's clock is released into it at
  /// `on_task_end`).
  [[nodiscard]] const void* id() const { return state_.get(); }

  /// Mark complete at virtual time `t` and wake blocked waiters.
  void complete(sim::Scheduler& sched, sim::TimePoint t) {
    state_->complete_at = t;
    if (sim::ConcurrencyHooks* h = sched.hooks()) {
      if (sched.in_thread()) {
        h->on_release(state_.get(), sim::SyncKind::Signal);
      }
    }
    state_->waiters.notify_all(sched, t);
  }

  /// Mark complete *with an error payload* at virtual time `t` (HSA signals
  /// carry a negative value when the async operation failed — e.g. an SDMA
  /// engine error). Waiters wake normally; they must check `errored()`.
  void complete_error(sim::Scheduler& sched, sim::TimePoint t) {
    state_->errored = true;
    complete(sched, t);
  }

  /// Mark the tracked operation aborted at virtual time `t` (the watchdog
  /// tore down its queue). Waiters wake normally; they must check
  /// `aborted()` and decide whether to replay or raise.
  void complete_abort(sim::Scheduler& sched, sim::TimePoint t) {
    state_->aborted = true;
    complete(sched, t);
  }

  [[nodiscard]] bool errored() const { return state_->errored; }
  [[nodiscard]] bool aborted() const { return state_->aborted; }

  [[nodiscard]] bool is_complete() const {
    return state_->complete_at.has_value();
  }
  [[nodiscard]] sim::TimePoint complete_at() const {
    return state_->complete_at.value();
  }

  /// Block/advance the current thread until completion; returns the time
  /// the caller spent blocked.
  sim::Duration wait(sim::Scheduler& sched) {
    const sim::TimePoint before = sched.now();
    if (!state_->complete_at.has_value()) {
      state_->waiters.wait(sched, label());
    }
    sched.advance_to(*state_->complete_at);
    if (sim::ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(state_.get(), sim::SyncKind::Signal);
    }
    return sched.now() - before;
  }

  /// Block/advance like `wait`, but give up after `timeout` of virtual
  /// time. Returns true when the signal completed (caller's clock >= the
  /// completion time), false on timeout (caller's clock at the deadline).
  /// A signal already bound to a time at or before the deadline never
  /// times out; completion at exactly the deadline counts as completed.
  [[nodiscard]] bool wait_for(sim::Scheduler& sched, sim::Duration timeout) {
    if (!state_->complete_at.has_value()) {
      if (!state_->waiters.wait_for(sched, timeout, label())) {
        return false;
      }
    } else if (*state_->complete_at > sched.now() + timeout) {
      sched.advance(timeout);
      return false;
    }
    sched.advance_to(*state_->complete_at);
    if (sim::ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(state_.get(), sim::SyncKind::Signal);
    }
    return true;
  }

 private:
  struct State {
    std::optional<sim::TimePoint> complete_at;
    bool errored = false;
    bool aborted = false;
    std::string name;
    sim::WaitList waiters;
  };

  [[nodiscard]] std::string label() const {
    return "Signal(" + (state_->name.empty() ? "unnamed" : state_->name) +
           ")";
  }

  std::shared_ptr<State> state_;
};

}  // namespace zc::hsa
