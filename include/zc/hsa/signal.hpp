#pragma once

#include <memory>
#include <optional>

#include "zc/sim/scheduler.hpp"
#include "zc/sim/time.hpp"

namespace zc::hsa {

/// Completion signal for asynchronous device operations.
///
/// In the simulator an async operation's completion time is computed
/// analytically when it is submitted, so a signal usually just carries that
/// timestamp; waiting advances the waiter's clock. A signal can also be
/// awaited before any operation has been bound to it (cross-thread
/// synchronization), in which case the waiter blocks until `complete()` is
/// called.
///
/// Handles are cheap shared references; copying a `Signal` shares state.
class Signal {
 public:
  Signal() : state_{std::make_shared<State>()} {}

  /// Mark complete at virtual time `t` and wake blocked waiters.
  void complete(sim::Scheduler& sched, sim::TimePoint t) {
    state_->complete_at = t;
    state_->waiters.notify_all(sched, t);
  }

  /// Mark complete *with an error payload* at virtual time `t` (HSA signals
  /// carry a negative value when the async operation failed — e.g. an SDMA
  /// engine error). Waiters wake normally; they must check `errored()`.
  void complete_error(sim::Scheduler& sched, sim::TimePoint t) {
    state_->errored = true;
    complete(sched, t);
  }

  [[nodiscard]] bool errored() const { return state_->errored; }

  [[nodiscard]] bool is_complete() const {
    return state_->complete_at.has_value();
  }
  [[nodiscard]] sim::TimePoint complete_at() const {
    return state_->complete_at.value();
  }

  /// Block/advance the current thread until completion; returns the time
  /// the caller spent blocked.
  sim::Duration wait(sim::Scheduler& sched) {
    const sim::TimePoint before = sched.now();
    if (!state_->complete_at.has_value()) {
      state_->waiters.wait(sched);
    }
    sched.advance_to(*state_->complete_at);
    return sched.now() - before;
  }

 private:
  struct State {
    std::optional<sim::TimePoint> complete_at;
    bool errored = false;
    sim::WaitList waiters;
  };
  std::shared_ptr<State> state_;
};

}  // namespace zc::hsa
