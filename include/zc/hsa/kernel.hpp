#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "zc/mem/address_space.hpp"
#include "zc/sim/time.hpp"

namespace zc::hsa {

/// How a kernel uses one of its buffer arguments.
enum class Access {
  Read,
  Write,
  ReadWrite,
};

/// One buffer argument of a kernel: the (simulated) device-visible address
/// range the kernel streams through, used for fault and TLB accounting.
struct BufferAccess {
  mem::VirtAddr addr;
  std::uint64_t bytes = 0;
  Access access = Access::ReadWrite;

  [[nodiscard]] mem::AddrRange range() const {
    return mem::AddrRange{addr, bytes};
  }
};

/// Functional execution context handed to a kernel body: translates
/// simulated addresses to real backing pointers.
class KernelContext {
 public:
  explicit KernelContext(mem::AddressSpace& space) : space_{space} {}

  template <typename T>
  [[nodiscard]] T* ptr(mem::VirtAddr a) {
    return space_.translate_as<T>(a);
  }

  [[nodiscard]] mem::AddressSpace& space() { return space_; }

 private:
  mem::AddressSpace& space_;
};

/// A kernel dispatch request.
///
/// `compute` is the modeled GPU-resident compute time (what the kernel
/// would take with a warm TLB and no page faults); the runtime adds launch
/// latency, TLB walks, and XNACK fault stalls on top. `body`, when set, is
/// executed functionally so the simulation produces real numerical results.
struct KernelLaunch {
  std::string name;
  std::vector<BufferAccess> buffers;
  sim::Duration compute;
  std::function<void(KernelContext&)> body;
  /// Which socket's GPU executes the kernel (OpenMP device number).
  int device = 0;
};

}  // namespace zc::hsa
