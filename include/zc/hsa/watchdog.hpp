#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "zc/apu/machine.hpp"
#include "zc/fault/spec.hpp"
#include "zc/hsa/signal.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/sim/time.hpp"
#include "zc/trace/fault_trace.hpp"

namespace zc::hsa {

/// Hang detector for in-flight device operations.
///
/// The HSA layer registers every operation whose completion signal is not
/// yet bound to a time (in the simulator that is exactly the hung ones —
/// healthy async work gets its completion time at submit). A dedicated
/// watchdog fiber sleeps until the earliest registered deadline
/// (`submit + budget` from `OMPX_APU_WATCHDOG`); if the signal is still
/// incomplete when the deadline fires, the watchdog tears down and rebuilds
/// the operation's queue (charged on the device's driver timeline), records
/// a `WatchdogTrip`, notifies the trip listener (the core layer's circuit
/// breaker), and completes the signal *aborted* so its waiters can decide
/// to replay or raise.
///
/// The fiber is spawned lazily on the first registration and exits when the
/// registry drains, so a run without hangs — or without a watchdog
/// configured — schedules exactly as before.
class Watchdog {
 public:
  using RecordFault = std::function<void(trace::FaultRecord)>;
  using TripListener = std::function<void(int device, sim::TimePoint now)>;

  Watchdog(apu::Machine& machine, apu::WatchdogConfig config,
           RecordFault record)
      : machine_{machine}, config_{config}, record_{std::move(record)} {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  [[nodiscard]] const apu::WatchdogConfig& config() const { return config_; }

  /// Begin watching `signal` for the operation described by `site`/`what`.
  /// No-op when the watchdog is disabled or the signal is already bound to
  /// a completion time (healthy async work cannot hang in virtual time).
  void watch(Signal signal, fault::Site site, int device, std::string what);

  /// The core layer's circuit breaker subscribes here; called on every trip
  /// from the watchdog fiber.
  void set_trip_listener(TripListener listener) {
    listener_ = std::move(listener);
  }

  /// Total trips so far (aborted operations).
  [[nodiscard]] std::uint64_t trips() const { return trips_; }

 private:
  struct Watched {
    Signal signal;
    fault::Site site;
    int device = 0;
    std::string what;
    sim::TimePoint deadline;
  };

  void loop();
  void trip(const Watched& w);

  apu::Machine& machine_;
  apu::WatchdogConfig config_;
  RecordFault record_;
  TripListener listener_;
  std::vector<Watched> watched_;
  sim::WaitList wake_;  // re-arms the fiber when a new watch registers
  bool running_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace zc::hsa
