#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "zc/apu/machine.hpp"
#include "zc/fault/spec.hpp"
#include "zc/hsa/kernel.hpp"
#include "zc/hsa/signal.hpp"
#include "zc/hsa/watchdog.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/call_stats.hpp"
#include "zc/trace/call_trace.hpp"
#include "zc/trace/copy_trace.hpp"
#include "zc/trace/fault_trace.hpp"
#include "zc/trace/kernel_trace.hpp"
#include "zc/trace/overhead_ledger.hpp"

namespace zc::hsa {

/// Raised when the GPU touches memory it cannot translate and XNACK-replay
/// is disabled — on real hardware, a fatal memory violation.
class GpuMemoryFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised by the throwing convenience wrappers (`memory_pool_allocate`,
/// `svm_attributes_set_prefault`) when the underlying `try_` call fails.
/// Callers with a degradation path use the `try_` variants instead.
class HsaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// `hsa_status_t`-style result codes for the calls that can fail.
enum class Status {
  Ok,
  OutOfMemory,  ///< pool allocation: HBM exhausted (organic or injected)
  Interrupted,  ///< prefault syscall: transient EINTR
  Busy,         ///< prefault syscall: transient EBUSY
  TimedOut,     ///< prefault syscall hung; the watchdog aborted it
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::OutOfMemory:
      return "out-of-memory";
    case Status::Interrupted:
      return "interrupted";
    case Status::Busy:
      return "busy";
    case Status::TimedOut:
      return "timed-out";
  }
  return "?";
}

/// Result of `try_memory_pool_allocate`.
struct PoolAllocResult {
  Status status = Status::Ok;
  mem::VirtAddr addr;
  /// Pages the driver spilled to the DDR tier to make this allocation fit
  /// (`OMPX_APU_PRESSURE=watermarks` only). Non-zero signals the caller
  /// that the node is under memory pressure without the allocation having
  /// failed.
  std::uint64_t reclaimed = 0;
  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Result of `try_svm_attributes_set_prefault`.
struct PrefaultResult {
  Status status = Status::Ok;
  mem::PrefaultOutcome outcome;
  [[nodiscard]] bool ok() const { return status == Status::Ok; }
};

/// Per-device (per-socket) accumulators, maintained by every API call under
/// the trace mutex. They answer "what did each APU do" for multi-device
/// runs: kernels and their faults from the dispatch path, copies from the
/// SDMA path (attributed to the engine's device), migrations from
/// `migrate_pages`.
struct DeviceCounters {
  std::uint64_t kernels = 0;
  std::uint64_t remote_kernels = 0;  ///< launches touching remote-homed bytes
  std::uint64_t page_faults = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t copies = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t cross_socket_copies = 0;
  std::uint64_t migrated_pages = 0;  ///< pages migrated onto this device
  std::uint64_t evicted_pages = 0;   ///< pages spilled to DDR by reclaim here
  std::uint64_t promoted_pages = 0;  ///< DDR pages promoted back by this device
};

/// Per-tenant accumulators for the multi-tenant service (`zc::service`):
/// which tenant's jobs consumed the GPU queues and SDMA engines. Bumped at
/// the same dispatch/copy sites as `DeviceCounters`, attributed via the
/// calling fiber's tenant registration (`set_thread_tenant`). Runs without
/// a service registration attribute to no tenant (the vector stays empty
/// unless `configure_tenants` was called).
struct TenantCounters {
  std::uint64_t kernels = 0;
  std::uint64_t copies = 0;
  std::uint64_t copy_bytes = 0;
  std::uint64_t page_faults = 0;
};

/// The simulated ROCr/HSA runtime: the API surface the OpenMP offload
/// runtime is written against, instrumented like `rocprof --hsa-trace`.
///
/// Every public method is called from a virtual host thread, advances that
/// thread's clock by the CPU-side cost of the call, places device-side work
/// on the machine's resource timelines (GPU kernel slots, SDMA engines,
/// driver lock), and records its call count and attributed latency in
/// `CallStats`. The memory-state consequences (page tables, TLB) go through
/// `mem::MemorySystem`.
class Runtime {
 public:
  Runtime(apu::Machine& machine, mem::MemorySystem& mem);

  /// --- signals -----------------------------------------------------------
  [[nodiscard]] Signal signal_create();

  /// Block until `s` completes; charged the blocked time.
  void signal_wait_scacquire(Signal s);

  /// --- memory ------------------------------------------------------------
  /// Allocate "device" memory from the ROCr pool. On an APU the driver
  /// fulfills this from the single HBM storage and bulk-prefaults the GPU
  /// page table (XNACK-disabled semantics): the whole range is GPU-
  /// translatable on return. `count_in_ledger=false` exempts one-time
  /// image-load/init work from the Table III steady-state MM accounting
  /// (call statistics always record).
  ///
  /// Failure surface: returns `Status::OutOfMemory` when the fault engine
  /// injects an OOM or the socket's HBM capacity is exhausted; the failed
  /// driver round trip still costs `pool_alloc_base` and is recorded in
  /// the call stats, the fault trace, and the event log.
  [[nodiscard]] PoolAllocResult try_memory_pool_allocate(
      std::uint64_t bytes, std::string name, bool count_in_ledger = true,
      int device = 0);

  /// Throwing wrapper (HsaError on OOM) for callers with no degraded mode.
  mem::VirtAddr memory_pool_allocate(std::uint64_t bytes, std::string name,
                                     bool count_in_ledger = true,
                                     int device = 0);

  void memory_pool_free(mem::VirtAddr base);

  /// Submit an async DMA copy; the returned signal completes when the SDMA
  /// engine finishes. The byte transfer is performed functionally at submit
  /// time (program order on the issuing thread preserves dataflow).
  /// `with_handler` models registering a host completion callback
  /// (`signal_async_handler`), as the OpenMP Copy configuration does for
  /// device-to-host transfers.
  ///
  /// Failure surface: when the fault engine injects an SDMA error the
  /// functional transfer is suppressed (no bytes delivered) and the signal
  /// completes *with an error payload* at the same time a successful copy
  /// would have — callers must check `Signal::errored()` and resubmit. An
  /// injected `sdma_stall` also suppresses the transfer but leaves the
  /// signal forever incomplete (watched by the watchdog when configured);
  /// waiters unblocked by a watchdog abort must check `Signal::aborted()`
  /// and resubmit.
  Signal memory_async_copy(mem::VirtAddr dst, mem::VirtAddr src,
                           std::uint64_t bytes, bool with_handler = false,
                           bool count_in_ledger = true, int device = 0);

  /// Host-issued GPU page-table prefault (`svm_attributes_set`): a syscall
  /// serialized on the driver lock; newly inserted pages pay the insert
  /// cost, already-present pages only a verification.
  ///
  /// Failure surface: `Status::Interrupted`/`Status::Busy` when the fault
  /// engine injects a transient syscall error; no page-table mutation
  /// happens, the failed syscall costs its base latency on the driver
  /// lock, and the caller may retry (EINTR semantics). An injected
  /// `prefault_hang` blocks the calling thread inside the syscall until
  /// the watchdog aborts it (`Status::TimedOut`) — or forever when no
  /// watchdog is configured. Misuse — a range outside any live allocation
  /// — still throws std::invalid_argument.
  [[nodiscard]] PrefaultResult try_svm_attributes_set_prefault(
      mem::AddrRange range, int device = 0);

  /// Throwing wrapper (HsaError on a transient fault) for callers with no
  /// retry ladder.
  mem::PrefaultOutcome svm_attributes_set_prefault(mem::AddrRange range,
                                                   int device = 0);

  /// Migrate the allocation containing `range` onto `device`'s HBM
  /// (`hsa_amd_svm_prefetch` semantics; recorded as an SvmAttributesSet
  /// call). The per-page unmap/remap work serializes on both sockets'
  /// driver locks and the data crosses the fabric link (or moves at the
  /// legacy remote copy bandwidth with the fabric off). Returns the pages
  /// that physically moved; see `mem::MemorySystem::migrate_pages` for the
  /// state semantics (GPU translations torn down, placement collapses to
  /// the new fixed home).
  std::uint64_t migrate_pages(mem::AddrRange range, int device);

  /// --- kernels -----------------------------------------------------------
  /// Dispatch a kernel. Fault accounting depends on the run environment:
  /// with XNACK enabled, absent pages of OS-allocated buffers are faulted
  /// in page-by-page while the kernel runs (stall added to its duration and
  /// serialized on the driver); with XNACK disabled, touching an absent
  /// page throws GpuMemoryFault. `not_before` delays the GPU-side start
  /// (dependence on earlier asynchronous work) without blocking the host.
  ///
  /// Failure surface: an injected `kernel_hang` (queue error before the
  /// kernel executes) or `xnack_livelock` (fault servicing never converges)
  /// suppresses the kernel's functional execution and returns a signal that
  /// never completes; the watchdog, when configured, eventually aborts it
  /// and the caller replays the dispatch.
  ///
  /// `depends` lists the completion signals of earlier asynchronous work
  /// this kernel is ordered after *in-queue* (the `not_before` timestamp
  /// chain). The host never waits on them, so the race detector needs them
  /// spelled out to give the kernel's device task a happens-before edge
  /// from each dependence; a hung dependence is resolved by the caller
  /// before dispatch, so every entry is complete by the time it is read.
  Signal dispatch_kernel(const KernelLaunch& launch, int host_thread = 0,
                         sim::TimePoint not_before = sim::TimePoint::zero(),
                         std::span<const Signal> depends = {});

  /// Dispatch and immediately wait (synchronous kernel execution).
  void run_kernel(const KernelLaunch& launch, int host_thread = 0);

  /// --- state & instrumentation -------------------------------------------
  /// The accessors below hand out unguarded references by design: they
  /// serve read-only snapshots (tests, the run harness) and opt-in
  /// configuration before threads start. All *accumulation* — the writes
  /// performed concurrently by every API call — goes through
  /// `trace_mutex_` and is enforced by the sim lock-discipline checker.
  [[nodiscard]] apu::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemorySystem& memory() { return mem_; }
  [[nodiscard]] trace::CallStats& stats() {
    flush_pending_calls();
    return stats_.unguarded();
  }
  [[nodiscard]] const trace::CallStats& stats() const {
    // Reading drains the batched sink first so the aggregate is complete;
    // the drain only moves buffered records into the guarded accumulator.
    const_cast<Runtime*>(this)->flush_pending_calls();
    return stats_.unguarded();
  }
  [[nodiscard]] trace::KernelTrace& kernel_trace() {
    return ktrace_.unguarded();
  }
  [[nodiscard]] trace::CopyTrace& copy_trace() { return cptrace_.unguarded(); }
  /// Per-device accumulators, indexed by socket (post-run snapshots).
  [[nodiscard]] const std::vector<DeviceCounters>& device_counters() const {
    return devstats_.unguarded();
  }
  /// Size the per-tenant accumulators (idempotent; call before the service
  /// worker fibers start issuing work). Zero disables tenant accounting.
  void configure_tenants(int tenants);
  /// Register the calling fiber's jobs as belonging to `tenant` (-1 clears
  /// the registration). Takes `trace_mutex_`; the service worker calls this
  /// once per job it picks up.
  void set_thread_tenant(int tenant);
  /// Per-tenant accumulators, indexed by tenant (post-run snapshots; empty
  /// unless `configure_tenants` was called).
  [[nodiscard]] const std::vector<TenantCounters>& tenant_counters() const {
    return tenantstats_.unguarded();
  }
  /// Per-call timeline trace (opt-in; aggregate stats are always on).
  [[nodiscard]] trace::CallTrace& call_trace() { return ctrace_.unguarded(); }
  [[nodiscard]] trace::OverheadLedger& ledger() { return ledger_.unguarded(); }
  [[nodiscard]] const trace::FaultTrace& fault_trace() const {
    return ftrace_.unguarded();
  }
  /// The hang detector; configured from the environment's
  /// `OMPX_APU_WATCHDOG`. The core layer subscribes its circuit breaker to
  /// trips via `Watchdog::set_trip_listener`.
  [[nodiscard]] Watchdog& watchdog() { return watchdog_; }
  [[nodiscard]] const Watchdog& watchdog() const { return watchdog_; }

  /// Record a fault-handling event (takes the trace mutex internally; also
  /// mirrored to the event log when enabled). Public so the OpenMP layer
  /// can record its degraded-mode reactions into the same trace the
  /// injections land in.
  void record_fault(trace::FaultRecord r);

 private:
  [[nodiscard]] sim::Scheduler& sched() { return machine_.sched(); }

  /// Record into the aggregate stats and (when enabled) the call trace.
  /// Batched sink: with no concurrency observer installed and the per-call
  /// trace disabled, records accumulate in `pending_calls_` and are folded
  /// into the guarded stats in blocks (one `trace_mutex_` acquisition per
  /// `kCallFlushThreshold` records instead of one per call — the aggregate
  /// is order-insensitive, so the result is identical). With hooks active
  /// or the call trace on, every record takes the lock as before, so the
  /// race detector sees the exact same release/acquire edges.
  void record_call(trace::HsaCall call, sim::TimePoint start,
                   sim::Duration latency);

  /// Tenant the calling fiber registered via `set_thread_tenant`, or -1.
  /// Call with `trace_mutex_` held.
  [[nodiscard]] int current_tenant_locked();

  /// Drain `pending_calls_` into the guarded stats (under `trace_mutex_`
  /// when called from inside a virtual thread; directly during post-run
  /// introspection, when no concurrency exists).
  void flush_pending_calls();

  /// Build the forever-incomplete signal of a hang-injected operation:
  /// name it, record the injection, and register it with the watchdog.
  Signal hung_signal(std::string name, trace::FaultEvent event,
                     fault::Site site, int device, std::uint64_t host_base,
                     std::uint64_t bytes);

  /// One watermark-reclaim pass and its price. Spills cold pages homed on
  /// `device` until `hbm_used <= target_bytes` (at most `max_pages`),
  /// consults the eviction fault site (an injected `evict_storm` inflates
  /// the driver work), and returns the modeled cost: per-page driver
  /// unmapping plus the SDMA writeback of the spilled bytes. The *caller*
  /// spends the cost — on its own clock (pool allocation) or folded into a
  /// kernel's fault stall (dispatch) — because where the stall lands is
  /// what distinguishes the two reclaim paths.
  struct ReclaimCharge {
    std::uint64_t evicted = 0;
    sim::Duration cost;
  };
  ReclaimCharge reclaim_to(int device, std::uint64_t target_bytes,
                           std::uint64_t max_pages);

  apu::Machine& machine_;
  mem::MemorySystem& mem_;
  Watchdog watchdog_;
  /// Guards all instrumentation accumulators against concurrent host
  /// threads — the equivalent of libomptarget/rocprof keeping their stats
  /// behind a mutex (or atomics). Taking it costs no simulated time.
  sim::Mutex trace_mutex_;
  sim::GuardedBy<trace::CallStats> stats_;
  sim::GuardedBy<trace::CallTrace> ctrace_;
  sim::GuardedBy<trace::KernelTrace> ktrace_;
  sim::GuardedBy<trace::CopyTrace> cptrace_;
  sim::GuardedBy<trace::OverheadLedger> ledger_;
  sim::GuardedBy<trace::FaultTrace> ftrace_;
  sim::GuardedBy<std::vector<DeviceCounters>> devstats_;
  /// Per-tenant accumulators and the fiber-id -> tenant registration map
  /// behind them (see `set_thread_tenant`); both share `trace_mutex_` with
  /// the rest of the instrumentation.
  sim::GuardedBy<std::vector<TenantCounters>> tenantstats_;
  sim::GuardedBy<std::unordered_map<int, int>> thread_tenants_;

  /// Batched trace sink (see `record_call`). The simulator runs all fibers
  /// on one OS thread, so appends need no host-side synchronization; the
  /// sim-level mutex only matters for the modeled concurrency the race
  /// detector observes, and the fast path is taken only when no observer
  /// is installed.
  struct PendingCall {
    trace::HsaCall call;
    sim::TimePoint start;
    sim::Duration latency;
  };
  static constexpr std::size_t kCallFlushThreshold = 256;
  std::vector<PendingCall> pending_calls_;
};

}  // namespace zc::hsa
