#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "zc/apu/machine.hpp"
#include "zc/hsa/kernel.hpp"
#include "zc/hsa/signal.hpp"
#include "zc/mem/memory_system.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/trace/call_stats.hpp"
#include "zc/trace/call_trace.hpp"
#include "zc/trace/kernel_trace.hpp"
#include "zc/trace/overhead_ledger.hpp"

namespace zc::hsa {

/// Raised when the GPU touches memory it cannot translate and XNACK-replay
/// is disabled — on real hardware, a fatal memory violation.
class GpuMemoryFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The simulated ROCr/HSA runtime: the API surface the OpenMP offload
/// runtime is written against, instrumented like `rocprof --hsa-trace`.
///
/// Every public method is called from a virtual host thread, advances that
/// thread's clock by the CPU-side cost of the call, places device-side work
/// on the machine's resource timelines (GPU kernel slots, SDMA engines,
/// driver lock), and records its call count and attributed latency in
/// `CallStats`. The memory-state consequences (page tables, TLB) go through
/// `mem::MemorySystem`.
class Runtime {
 public:
  Runtime(apu::Machine& machine, mem::MemorySystem& mem);

  /// --- signals -----------------------------------------------------------
  [[nodiscard]] Signal signal_create();

  /// Block until `s` completes; charged the blocked time.
  void signal_wait_scacquire(Signal s);

  /// --- memory ------------------------------------------------------------
  /// Allocate "device" memory from the ROCr pool. On an APU the driver
  /// fulfills this from the single HBM storage and bulk-prefaults the GPU
  /// page table (XNACK-disabled semantics): the whole range is GPU-
  /// translatable on return. `count_in_ledger=false` exempts one-time
  /// image-load/init work from the Table III steady-state MM accounting
  /// (call statistics always record).
  mem::VirtAddr memory_pool_allocate(std::uint64_t bytes, std::string name,
                                     bool count_in_ledger = true,
                                     int device = 0);

  void memory_pool_free(mem::VirtAddr base);

  /// Submit an async DMA copy; the returned signal completes when the SDMA
  /// engine finishes. The byte transfer is performed functionally at submit
  /// time (program order on the issuing thread preserves dataflow).
  /// `with_handler` models registering a host completion callback
  /// (`signal_async_handler`), as the OpenMP Copy configuration does for
  /// device-to-host transfers.
  Signal memory_async_copy(mem::VirtAddr dst, mem::VirtAddr src,
                           std::uint64_t bytes, bool with_handler = false,
                           bool count_in_ledger = true, int device = 0);

  /// Host-issued GPU page-table prefault (`svm_attributes_set`): a syscall
  /// serialized on the driver lock; newly inserted pages pay the insert
  /// cost, already-present pages only a verification.
  mem::PrefaultOutcome svm_attributes_set_prefault(mem::AddrRange range,
                                                   int device = 0);

  /// --- kernels -----------------------------------------------------------
  /// Dispatch a kernel. Fault accounting depends on the run environment:
  /// with XNACK enabled, absent pages of OS-allocated buffers are faulted
  /// in page-by-page while the kernel runs (stall added to its duration and
  /// serialized on the driver); with XNACK disabled, touching an absent
  /// page throws GpuMemoryFault. `not_before` delays the GPU-side start
  /// (dependence on earlier asynchronous work) without blocking the host.
  Signal dispatch_kernel(const KernelLaunch& launch, int host_thread = 0,
                         sim::TimePoint not_before = sim::TimePoint::zero());

  /// Dispatch and immediately wait (synchronous kernel execution).
  void run_kernel(const KernelLaunch& launch, int host_thread = 0);

  /// --- state & instrumentation -------------------------------------------
  /// The accessors below hand out unguarded references by design: they
  /// serve read-only snapshots (tests, the run harness) and opt-in
  /// configuration before threads start. All *accumulation* — the writes
  /// performed concurrently by every API call — goes through
  /// `trace_mutex_` and is enforced by the sim lock-discipline checker.
  [[nodiscard]] apu::Machine& machine() { return machine_; }
  [[nodiscard]] mem::MemorySystem& memory() { return mem_; }
  [[nodiscard]] trace::CallStats& stats() { return stats_.unguarded(); }
  [[nodiscard]] const trace::CallStats& stats() const {
    return stats_.unguarded();
  }
  [[nodiscard]] trace::KernelTrace& kernel_trace() {
    return ktrace_.unguarded();
  }
  /// Per-call timeline trace (opt-in; aggregate stats are always on).
  [[nodiscard]] trace::CallTrace& call_trace() { return ctrace_.unguarded(); }
  [[nodiscard]] trace::OverheadLedger& ledger() { return ledger_.unguarded(); }

 private:
  [[nodiscard]] sim::Scheduler& sched() { return machine_.sched(); }

  /// Record into the aggregate stats and (when enabled) the call trace;
  /// takes `trace_mutex_` internally.
  void record_call(trace::HsaCall call, sim::TimePoint start,
                   sim::Duration latency);

  apu::Machine& machine_;
  mem::MemorySystem& mem_;
  /// Guards all instrumentation accumulators against concurrent host
  /// threads — the equivalent of libomptarget/rocprof keeping their stats
  /// behind a mutex (or atomics). Taking it costs no simulated time.
  sim::Mutex trace_mutex_;
  sim::GuardedBy<trace::CallStats> stats_;
  sim::GuardedBy<trace::CallTrace> ctrace_;
  sim::GuardedBy<trace::KernelTrace> ktrace_;
  sim::GuardedBy<trace::OverheadLedger> ledger_;
};

}  // namespace zc::hsa
