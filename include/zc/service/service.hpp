#pragma once

#include <cstdint>
#include <vector>

#include "zc/apu/env.hpp"
#include "zc/core/offload_error.hpp"
#include "zc/service/arrival.hpp"
#include "zc/service/queues.hpp"
#include "zc/trace/service_trace.hpp"
#include "zc/workloads/runner.hpp"

namespace zc::service {

/// Configuration of one multi-tenant service run. The policy ladder
/// (`apu::ServicePolicy`, i.e. the `OMPX_APU_SERVICE=<tenants>:<policy>`
/// grammar) gates the machinery cumulatively:
///
///   * `off`   — shared FIFO, unbounded queues, no admission control: the
///               collapse baseline every robustness claim is measured
///               against.
///   * `admit` — + HBM admission control (per-socket budget measured after
///               warmup; inadmissible heads wait, never allocate) and
///               bounded queues with typed-error shedding.
///   * `fair`  — + per-tenant DRR fair queueing with the starvation
///               watchdog.
///   * `full`  — + overload degradation: breaker-open shedding with
///               retry-after hints, per-tenant circuit breakers, and
///               memory-pressure de-admission of low-priority tenants.
///
/// Tenant 0 is the highest priority: DRR weights default to
/// `tenants - index`, and de-admission pauses from the highest index down.
struct ServiceParams {
  /// Tenant count + policy, usually from `apu::parse_service` (the
  /// `OMPX_APU_SERVICE` grammar). `config.tenants` must match
  /// `arrival.tenants`; `run_service` enforces it.
  apu::ServiceConfig config{.tenants = 4,
                            .policy = apu::ServicePolicy::Full};
  int workers = 4;  ///< dispatcher fibers (service-side concurrency)
  ArrivalParams arrival{};

  // --- fair queueing (policy >= fair) ------------------------------------
  /// DRR weights, highest priority first; empty derives `tenants - index`.
  std::vector<std::uint64_t> weights;
  std::uint64_t quantum_pages = 8;
  std::uint64_t queue_limit = 32;
  sim::Duration starvation_budget = sim::Duration::milliseconds(5);

  // --- admission control (policy >= admit) --------------------------------
  /// Fraction of the post-warmup free HBM each socket's admission budget
  /// gets. Below 1.0 so organic allocations (thread init, image growth)
  /// never race the budget into `HbmExhausted`.
  double admit_fraction = 0.7;

  // --- overload degradation (policy == full) ------------------------------
  /// HBM-occupancy watermarks for de-admission: crossing `deadmit_high`
  /// pauses the lowest-priority active tenant, falling under `deadmit_low`
  /// resumes the highest-priority paused one.
  double deadmit_high = 0.85;
  double deadmit_low = 0.75;
  /// Per-tenant circuit breaker (job failures in a sliding window).
  int breaker_threshold = 2;
  sim::Duration breaker_window = sim::Duration::milliseconds(50);
  sim::Duration breaker_cooldown = sim::Duration::milliseconds(20);

  /// Idle-dispatcher poll tick: bounds how long a worker sleeps before
  /// re-checking breaker cooldowns and de-admission watermarks. Virtual
  /// time, so it costs events, not wall clock.
  sim::Duration idle_tick = sim::Duration::microseconds(50);

  /// Stack plumbing passed through to `run_program`: runtime config,
  /// seed, sockets, topology, fault/watchdog/pressure/race specs, stress
  /// mode. `base.sockets` (or the topology) fixes the socket count;
  /// `arrival.sockets` must match; `run_service` enforces it.
  workloads::RunOptions base{};
};

/// One shed job: when, why, and the structured error + retry hint the
/// client was handed (acceptance: every shed is typed, never silent).
struct ShedRecord {
  int tenant = 0;
  std::uint64_t job = 0;
  sim::TimePoint at;
  sim::Duration retry_after;
  omp::OffloadError error;
};

/// Everything a service run produces: the usual `RunResult` (with
/// `service_tenants` filled in), the per-job lifecycle records for the
/// chrome-trace service lanes, and the shed ledger.
struct ServiceResult {
  workloads::RunResult run;
  std::vector<trace::ServiceJobRecord> jobs;
  std::vector<ShedRecord> sheds;
  /// Completed jobs whose functional checksum diverged from the closed
  /// form (always 0 — the robustness suite asserts it stays 0 under
  /// overload and fault injection; such jobs are demoted to Failed).
  std::uint64_t checksum_divergences = 0;
};

/// Run the multi-tenant offload service: an open-loop arrival fiber plus
/// `workers` dispatcher fibers over the shared `OffloadStack`, applying
/// the admission / fair-queueing / degradation ladder `params.config`
/// selects. Deterministic: the same params produce bit-identical
/// `ServiceResult` contents (the robustness suite reruns and compares).
[[nodiscard]] ServiceResult run_service(const ServiceParams& params);

}  // namespace zc::service
