#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "zc/sim/time.hpp"
#include "zc/workloads/service_jobs.hpp"

namespace zc::service {

/// One queued job plus the instant the arrival process offered it (queue
/// age drives the starvation watchdog and the sojourn stats).
struct QueuedJob {
  workloads::ServiceJobSpec spec;
  sim::TimePoint arrival;
};

/// Knobs of the per-tenant queueing stage.
struct DrrParams {
  /// Per-tenant DRR weights; size fixes the tenant count. Higher weight =
  /// proportionally more served pages per round.
  std::vector<std::uint64_t> weights;
  /// Deficit replenishment per round is `weight * quantum_pages` (job cost
  /// is its page footprint, so bandwidth-fairness is by pages, not jobs).
  std::uint64_t quantum_pages = 8;
  /// Per-tenant queue bound; `push` refuses beyond it (caller sheds).
  std::uint64_t queue_limit = 32;
  /// Head-of-line age beyond which the starvation watchdog force-serves a
  /// tenant regardless of its deficit.
  sim::Duration starvation_budget = sim::Duration::milliseconds(5);
  /// Degraded baseline (`OMPX_APU_SERVICE=<n>:off|admit`): ignore deficits
  /// and weights and serve the globally oldest head — the FIFO collapse
  /// the fair policies are measured against.
  bool fifo = false;
};

/// What `pop` chose.
struct Pick {
  QueuedJob job;
  /// True when the starvation watchdog, not the deficit round, selected
  /// this job (surfaced as a `StarvationBoost` fault event).
  bool starvation_boost = false;
};

/// Deficit-round-robin scheduler over per-tenant FIFO queues, with a
/// starvation watchdog. Pure state (no scheduler, no locks): the service
/// layer guards it with its mutex, and the unit tests drive it directly
/// with synthetic clocks.
class DrrScheduler {
 public:
  explicit DrrScheduler(DrrParams params);

  /// Enqueue; returns false (job not queued) when the tenant's queue is at
  /// `queue_limit` — the caller sheds the job with a typed error.
  [[nodiscard]] bool push(const QueuedJob& job);

  /// Return an inadmissible head to the front of its queue (memory-blocked
  /// dispatch puts the job back without losing its position or its age).
  void push_front(const QueuedJob& job);

  /// Choose the next job among tenants not marked in `blocked` (size =
  /// tenant count). Deficit round-robin by page cost, preceded by the
  /// starvation check; `std::nullopt` when every eligible queue is empty.
  [[nodiscard]] std::optional<Pick> pop(sim::TimePoint now,
                                        const std::vector<char>& blocked);

  [[nodiscard]] std::size_t queue_len(int tenant) const {
    return queues_[static_cast<std::size_t>(tenant)].size();
  }
  [[nodiscard]] std::size_t total_queued() const;
  [[nodiscard]] bool empty() const { return total_queued() == 0; }
  [[nodiscard]] int tenants() const {
    return static_cast<int>(queues_.size());
  }
  [[nodiscard]] const DrrParams& params() const { return params_; }

 private:
  [[nodiscard]] static std::uint64_t cost_of(const QueuedJob& job) {
    return job.spec.pages;
  }

  DrrParams params_;
  std::vector<std::deque<QueuedJob>> queues_;
  std::vector<std::uint64_t> deficits_;
  std::size_t cursor_ = 0;  ///< tenant whose DRR turn it currently is
  /// Whether the cursor tenant already received this round's quantum (a
  /// tenant is replenished once per arrival of the rotation, then spends
  /// the deficit across as many pops as it lasts).
  bool cursor_charged_ = false;
};

}  // namespace zc::service
