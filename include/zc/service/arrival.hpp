#pragma once

#include <cstdint>
#include <vector>

#include "zc/sim/rng.hpp"
#include "zc/sim/time.hpp"
#include "zc/workloads/service_jobs.hpp"

namespace zc::service {

/// Knobs of the open-loop arrival process: a Poisson stream (exponential
/// interarrivals at `base_interarrival` mean, aggregate across tenants)
/// whose job footprints follow a bounded Pareto — the heavy-tailed sizes
/// that make naive FIFO sharing collapse under overload.
struct ArrivalParams {
  int tenants = 4;
  int sockets = 1;
  std::uint64_t jobs = 200;  ///< total offered jobs across tenants
  /// Mean interarrival of the aggregate stream. Offered load scales as
  /// 1 / base_interarrival; halving it doubles the load.
  sim::Duration base_interarrival = sim::Duration::microseconds(200);
  std::uint64_t min_pages = 2;   ///< bounded-Pareto lower cutoff
  std::uint64_t max_pages = 32;  ///< bounded-Pareto upper cutoff
  double pareto_alpha = 1.5;     ///< tail index (smaller = heavier)
  int min_kernels = 2;
  int max_kernels = 6;
  sim::Duration kernel_compute = sim::Duration::microseconds(30);
  /// When non-empty, tenant `t` always submits flavor `t % size()` —
  /// the fault-isolation tests pin the victim tenant to `Staged` this
  /// way. Empty draws uniformly over all three flavors.
  std::vector<workloads::JobFlavor> tenant_flavors;
  std::uint64_t seed = 1;
};

/// One generated arrival: the fully-specified job plus the interarrival
/// gap that precedes it.
struct Arrival {
  workloads::ServiceJobSpec spec;
  sim::Duration gap;
};

/// Deterministic open-loop job generator. Pure (no scheduler): the arrival
/// fiber sleeps the returned gaps itself, and the unit tests drive the
/// generator directly. Every random draw happens inside `next()` on one
/// private RNG, in a fixed order per call, so a seed fully determines the
/// offered job sequence regardless of how the service end consumes it.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalParams& params);

  [[nodiscard]] bool done() const { return issued_ >= params_.jobs; }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }

  /// Generate the next arrival; call only while `!done()`.
  [[nodiscard]] Arrival next();

  /// Fault hook (`tenant_burst`): collapse the next `count` interarrival
  /// gaps to zero, modeling a tenant's clients stampeding at once.
  void inject_burst(std::uint64_t count) { burst_left_ += count; }

 private:
  ArrivalParams params_;
  sim::Rng rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t burst_left_ = 0;
  std::vector<std::uint64_t> next_id_;  ///< per-tenant arrival ordinals
};

}  // namespace zc::service
