#pragma once

#include <cstdint>
#include <unordered_set>

#include "zc/mem/address.hpp"

namespace zc::mem {

/// A page table as a presence set over page indices.
///
/// Used for both the CPU page table (which pages of an OS allocation have
/// been materialized) and the GPU page table (which pages the GPU can
/// translate without an XNACK fault). Only presence matters to the paper's
/// protocols; permissions and physical frames are out of scope.
class PageTable {
 public:
  explicit PageTable(std::uint64_t page_bytes);

  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }

  [[nodiscard]] bool present(std::uint64_t page_index) const {
    return pages_.contains(page_index);
  }
  [[nodiscard]] bool present_addr(VirtAddr a) const {
    return present(a.value / page_bytes_);
  }

  /// Insert one page; returns true if it was newly inserted.
  bool insert(std::uint64_t page_index) {
    return pages_.insert(page_index).second;
  }

  /// Insert every page of the range; returns how many were new.
  std::uint64_t insert_range(AddrRange range);

  /// Remove every page of the range; returns how many were present.
  std::uint64_t remove_range(AddrRange range);

  /// How many pages of the range are absent.
  [[nodiscard]] std::uint64_t count_absent(AddrRange range) const;

  /// How many pages of the range are present.
  [[nodiscard]] std::uint64_t count_present(AddrRange range) const {
    return range.page_count(page_bytes_) - count_absent(range);
  }

  [[nodiscard]] std::uint64_t size() const { return pages_.size(); }
  void clear() { pages_.clear(); }

 private:
  std::uint64_t page_bytes_;
  std::unordered_set<std::uint64_t> pages_;
};

}  // namespace zc::mem
