#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>

#include "zc/mem/address.hpp"

namespace zc::mem {

/// A page table as a presence set over page indices.
///
/// Used for both the CPU page table (which pages of an OS allocation have
/// been materialized) and the GPU page table (which pages the GPU can
/// translate without an XNACK fault). Only presence matters to the paper's
/// protocols; permissions and physical frames are out of scope.
class PageTable {
 public:
  explicit PageTable(std::uint64_t page_bytes);

  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }

  [[nodiscard]] bool present(std::uint64_t page_index) const {
    return pages_.contains(page_index);
  }
  [[nodiscard]] bool present_addr(VirtAddr a) const {
    return present(a.value / page_bytes_);
  }

  /// Insert one page; returns true if it was newly inserted.
  bool insert(std::uint64_t page_index) {
    return insert_pages(page_index, page_index + 1) == 1;
  }

  /// Insert every page of the range; returns how many were new.
  std::uint64_t insert_range(AddrRange range);

  /// Remove every page of the range; returns how many were present.
  std::uint64_t remove_range(AddrRange range);

  /// How many pages of the range are absent.
  [[nodiscard]] std::uint64_t count_absent(AddrRange range) const;

  /// How many pages of the range are present.
  [[nodiscard]] std::uint64_t count_present(AddrRange range) const {
    return range.page_count(page_bytes_) - count_absent(range);
  }

  /// Insert pages [first, end); returns how many were new.
  std::uint64_t insert_pages(std::uint64_t first, std::uint64_t end);

  /// Call `f(a, b)` for each maximal run of *absent* pages within
  /// [first, end), in ascending order. `f` must not mutate this table.
  template <typename F>
  void for_each_absent_run(std::uint64_t first, std::uint64_t end,
                           F&& f) const {
    std::uint64_t run_start = 0;
    bool in_run = false;
    for (std::uint64_t p = first; p < end; ++p) {
      if (!pages_.contains(p)) {
        if (!in_run) {
          run_start = p;
          in_run = true;
        }
      } else if (in_run) {
        f(run_start, p);
        in_run = false;
      }
    }
    if (in_run) {
      f(run_start, end);
    }
  }

  [[nodiscard]] std::uint64_t size() const { return pages_.size(); }
  void clear() {
    pages_.clear();
    qcache_used_ = 0;
  }

 private:
  /// Memoized `count_absent` answers. A kernel launch queries the same
  /// handful of buffer ranges on every dispatch while mutations touch
  /// *other* ranges (fresh scratch faulting in, freed scratch unmapping),
  /// so invalidating only the cached entries that overlap a mutation
  /// keeps the steady-state buffers answered in O(1) — exactly, since a
  /// disjoint mutation cannot change a range's absent count.
  struct CachedQuery {
    std::uint64_t first;
    std::uint64_t end;
    std::uint64_t absent;
  };
  static constexpr std::uint32_t kQueryCacheSlots = 16;

  void invalidate_queries(std::uint64_t first, std::uint64_t end) {
    for (std::uint32_t i = 0; i < qcache_used_;) {
      if (qcache_[i].first < end && first < qcache_[i].end) {
        qcache_[i] = qcache_[--qcache_used_];  // swap-remove
      } else {
        ++i;
      }
    }
  }

  [[nodiscard]] std::uint64_t count_absent_pages(std::uint64_t first,
                                                 std::uint64_t end) const;

  std::uint64_t page_bytes_;
  std::unordered_set<std::uint64_t> pages_;
  mutable std::array<CachedQuery, kQueryCacheSlots> qcache_{};
  mutable std::uint32_t qcache_used_ = 0;
  mutable std::uint32_t qcache_next_ = 0;  ///< ring replacement cursor
};

}  // namespace zc::mem
