#pragma once

#include <cstdint>
#include <vector>

#include "zc/mem/address.hpp"

namespace zc::mem {

/// Result of streaming an address range through the TLB.
struct TlbAccessResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// GPU translation lookaside buffer: an LRU cache over page translations.
///
/// The TLB sits in front of the GPU page table: a miss costs a page-table
/// walk (the page being present in the GPU page table is the concern of
/// XNACK/prefaulting, not of the TLB). Kernels stream their touched ranges
/// through `access_range`; working sets larger than the capacity thrash,
/// which is the mechanism the paper suspects behind the Eager Maps S128
/// variability.
///
/// Implementation: exact LRU over fixed-size slots. The recency order is a
/// doubly-linked list threaded through slot indices (no per-access node
/// allocation), and page -> slot lookup is an open-addressing hash table
/// with linear probing and backward-shift deletion. Both arrays are sized
/// once at construction; the hot `access` path allocates nothing. The
/// eviction policy is bit-identical to the std::list/unordered_map LRU it
/// replaced: every access sequence produces the same hit/miss counts and
/// the same resident set.
class Tlb {
 public:
  explicit Tlb(std::uint32_t capacity, std::uint64_t page_bytes);

  /// Touch one page; true on hit. Misses insert the translation (evicting
  /// the least recently used one if full).
  bool access(std::uint64_t page_index);

  /// Touch every page of a range in order.
  TlbAccessResult access_range(AddrRange range);

  /// Drop translations for the range (e.g. on free / unmap).
  void invalidate_range(AddrRange range);

  void invalidate_all();

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::uint64_t total_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t total_misses() const { return misses_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One cached translation plus its recency-list links (slot indices).
  struct Slot {
    std::uint64_t page;
    std::uint32_t prev;
    std::uint32_t next;
  };

  [[nodiscard]] std::uint32_t home(std::uint64_t page) const;
  /// Probe position of `page` in `table_`, or kNil.
  [[nodiscard]] std::uint32_t find_pos(std::uint64_t page) const;
  /// Backward-shift deletion at table position `pos`.
  void table_erase(std::uint32_t pos);
  /// Unlink `slot` from the recency list.
  void unlink(std::uint32_t slot);
  /// Link `slot` at the most-recent end.
  void link_front(std::uint32_t slot);
  /// Insert a not-present `page` as most recent, evicting LRU when full.
  void insert_new(std::uint64_t page);

  std::uint32_t capacity_;
  std::uint64_t page_bytes_;
  std::vector<Slot> slots_;           // capacity_ entries
  std::vector<std::uint32_t> table_;  // open addressing: slot index + 1, 0 = empty
  std::uint32_t mask_ = 0;            // table_.size() - 1 (power of two)
  std::uint32_t head_ = kNil;         // most recently used slot
  std::uint32_t tail_ = kNil;         // least recently used slot
  std::uint32_t free_ = kNil;         // freelist threaded through Slot::next
  std::uint32_t count_ = 0;           // live translations
  std::uint32_t used_slots_ = 0;      // high-water slot allocation mark
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace zc::mem
