#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "zc/mem/address.hpp"

namespace zc::mem {

/// Result of streaming an address range through the TLB.
struct TlbAccessResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// GPU translation lookaside buffer: an LRU cache over page translations.
///
/// The TLB sits in front of the GPU page table: a miss costs a page-table
/// walk (the page being present in the GPU page table is the concern of
/// XNACK/prefaulting, not of the TLB). Kernels stream their touched ranges
/// through `access_range`; working sets larger than the capacity thrash,
/// which is the mechanism the paper suspects behind the Eager Maps S128
/// variability.
class Tlb {
 public:
  explicit Tlb(std::uint32_t capacity, std::uint64_t page_bytes);

  /// Touch one page; true on hit. Misses insert the translation (evicting
  /// the least recently used one if full).
  bool access(std::uint64_t page_index);

  /// Touch every page of a range in order.
  TlbAccessResult access_range(AddrRange range);

  /// Drop translations for the range (e.g. on free / unmap).
  void invalidate_range(AddrRange range);

  void invalidate_all();

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::uint64_t total_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t total_misses() const { return misses_; }

 private:
  std::uint32_t capacity_;
  std::uint64_t page_bytes_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace zc::mem
