#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace zc::mem {

/// A simulated virtual address.
///
/// Every allocation in the simulation (host `malloc`/`mmap` memory as well
/// as ROCr "device" pool memory) receives a range of simulated virtual
/// addresses. Simulated addresses are what flows through the OpenMP mapping
/// tables and kernel arguments — exactly as real pointers do in the real
/// runtime — while each allocation also carries real backing storage so
/// kernels can execute functionally.
struct VirtAddr {
  std::uint64_t value = 0;

  [[nodiscard]] static constexpr VirtAddr null() { return VirtAddr{0}; }
  [[nodiscard]] constexpr bool is_null() const { return value == 0; }

  friend constexpr auto operator<=>(VirtAddr, VirtAddr) = default;

  [[nodiscard]] friend constexpr VirtAddr operator+(VirtAddr a,
                                                    std::uint64_t off) {
    return VirtAddr{a.value + off};
  }
  [[nodiscard]] friend constexpr std::uint64_t operator-(VirtAddr a,
                                                         VirtAddr b) {
    return a.value - b.value;
  }

  [[nodiscard]] std::string to_string() const;
};

/// What kind of storage an allocation models.
enum class MemKind {
  HostOs,      ///< OS allocator (malloc/mmap/stack); XNACK territory
  DevicePool,  ///< ROCr memory-pool allocation ("device" memory)
};

[[nodiscard]] constexpr const char* to_string(MemKind k) {
  switch (k) {
    case MemKind::HostOs:
      return "host-os";
    case MemKind::DevicePool:
      return "device-pool";
  }
  return "?";
}

/// A half-open byte range of simulated virtual addresses.
struct AddrRange {
  VirtAddr base;
  std::uint64_t bytes = 0;

  [[nodiscard]] constexpr VirtAddr end() const { return base + bytes; }
  [[nodiscard]] constexpr bool empty() const { return bytes == 0; }
  [[nodiscard]] constexpr bool contains(VirtAddr a) const {
    return a >= base && a < end();
  }

  /// Index of the first page overlapped by the range.
  [[nodiscard]] std::uint64_t first_page(std::uint64_t page_bytes) const {
    return base.value / page_bytes;
  }
  /// One past the index of the last page overlapped by the range.
  [[nodiscard]] std::uint64_t end_page(std::uint64_t page_bytes) const {
    if (bytes == 0) {
      return first_page(page_bytes);
    }
    return (base.value + bytes + page_bytes - 1) / page_bytes;
  }
  /// Number of pages the range overlaps.
  [[nodiscard]] std::uint64_t page_count(std::uint64_t page_bytes) const {
    return end_page(page_bytes) - first_page(page_bytes);
  }
};

/// How two address ranges relate — the single range-arithmetic vocabulary
/// shared by the runtime PresentTable (insert/lookup legality) and the
/// `zc::check` static overlap pass, so both agree byte-for-byte on what
/// counts as an aliasing map. Empty ranges are disjoint from everything
/// (a zero-byte map covers no bytes), and two ranges that merely share an
/// endpoint (`a.end() == b.base`) are `Disjoint`, not overlapping —
/// adjacency is legal in OpenMP map lists.
enum class RangeRelation {
  Disjoint,  ///< no byte in common (includes empty and adjacent ranges)
  Equal,     ///< same base and same byte count
  Contains,  ///< first range strictly covers the second
  Within,    ///< first range strictly inside the second
  Partial,   ///< some bytes shared, neither covers the other (aliasing)
};

[[nodiscard]] constexpr const char* to_string(RangeRelation r) {
  switch (r) {
    case RangeRelation::Disjoint:
      return "disjoint";
    case RangeRelation::Equal:
      return "equal";
    case RangeRelation::Contains:
      return "contains";
    case RangeRelation::Within:
      return "within";
    case RangeRelation::Partial:
      return "partial-overlap";
  }
  return "?";
}

/// True when the ranges share at least one byte. Empty ranges never
/// overlap anything, regardless of where their base points.
[[nodiscard]] constexpr bool ranges_overlap(AddrRange a, AddrRange b) {
  if (a.empty() || b.empty()) {
    return false;
  }
  return a.base < b.end() && b.base < a.end();
}

/// True when `outer` covers every byte of `inner`. An empty `inner` is
/// covered by anything (there is nothing to cover), matching the
/// PresentTable convention that a zero-byte lookup never straddles.
[[nodiscard]] constexpr bool range_covers(AddrRange outer, AddrRange inner) {
  if (inner.empty()) {
    return true;
  }
  return inner.base >= outer.base && inner.end() <= outer.end();
}

/// Full classification of `a` against `b` (see `RangeRelation`).
[[nodiscard]] constexpr RangeRelation range_relation(AddrRange a,
                                                     AddrRange b) {
  if (!ranges_overlap(a, b)) {
    return RangeRelation::Disjoint;
  }
  if (a.base == b.base && a.bytes == b.bytes) {
    return RangeRelation::Equal;
  }
  if (range_covers(a, b)) {
    return RangeRelation::Contains;
  }
  if (range_covers(b, a)) {
    return RangeRelation::Within;
  }
  return RangeRelation::Partial;
}

}  // namespace zc::mem
