#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace zc::mem {

/// A simulated virtual address.
///
/// Every allocation in the simulation (host `malloc`/`mmap` memory as well
/// as ROCr "device" pool memory) receives a range of simulated virtual
/// addresses. Simulated addresses are what flows through the OpenMP mapping
/// tables and kernel arguments — exactly as real pointers do in the real
/// runtime — while each allocation also carries real backing storage so
/// kernels can execute functionally.
struct VirtAddr {
  std::uint64_t value = 0;

  [[nodiscard]] static constexpr VirtAddr null() { return VirtAddr{0}; }
  [[nodiscard]] constexpr bool is_null() const { return value == 0; }

  friend constexpr auto operator<=>(VirtAddr, VirtAddr) = default;

  [[nodiscard]] friend constexpr VirtAddr operator+(VirtAddr a,
                                                    std::uint64_t off) {
    return VirtAddr{a.value + off};
  }
  [[nodiscard]] friend constexpr std::uint64_t operator-(VirtAddr a,
                                                         VirtAddr b) {
    return a.value - b.value;
  }

  [[nodiscard]] std::string to_string() const;
};

/// What kind of storage an allocation models.
enum class MemKind {
  HostOs,      ///< OS allocator (malloc/mmap/stack); XNACK territory
  DevicePool,  ///< ROCr memory-pool allocation ("device" memory)
};

[[nodiscard]] constexpr const char* to_string(MemKind k) {
  switch (k) {
    case MemKind::HostOs:
      return "host-os";
    case MemKind::DevicePool:
      return "device-pool";
  }
  return "?";
}

/// A half-open byte range of simulated virtual addresses.
struct AddrRange {
  VirtAddr base;
  std::uint64_t bytes = 0;

  [[nodiscard]] VirtAddr end() const { return base + bytes; }
  [[nodiscard]] bool empty() const { return bytes == 0; }
  [[nodiscard]] bool contains(VirtAddr a) const {
    return a >= base && a < end();
  }

  /// Index of the first page overlapped by the range.
  [[nodiscard]] std::uint64_t first_page(std::uint64_t page_bytes) const {
    return base.value / page_bytes;
  }
  /// One past the index of the last page overlapped by the range.
  [[nodiscard]] std::uint64_t end_page(std::uint64_t page_bytes) const {
    if (bytes == 0) {
      return first_page(page_bytes);
    }
    return (base.value + bytes + page_bytes - 1) / page_bytes;
  }
  /// Number of pages the range overlaps.
  [[nodiscard]] std::uint64_t page_count(std::uint64_t page_bytes) const {
    return end_page(page_bytes) - first_page(page_bytes);
  }
};

}  // namespace zc::mem
