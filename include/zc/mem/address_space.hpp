#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "zc/mem/address.hpp"

namespace zc::mem {

/// NUMA placement policy for an allocation's physical pages.
///
///  * `FixedHome`  — every page homed on one socket, chosen at allocation
///                   time (the pre-fabric behavior, and what pool
///                   allocations always use);
///  * `FirstTouch` — the home is undecided until the first materializing
///                   access (host touch, GPU fault, prefault) resolves it
///                   to the toucher's socket — Linux first-touch policy;
///  * `Interleaved` — page homes stripe round-robin across all sockets
///                   (numactl --interleave).
enum class Placement {
  FixedHome,
  FirstTouch,
  Interleaved,
};

[[nodiscard]] constexpr const char* to_string(Placement p) {
  switch (p) {
    case Placement::FixedHome:
      return "fixed";
    case Placement::FirstTouch:
      return "first-touch";
    case Placement::Interleaved:
      return "interleaved";
  }
  return "?";
}

/// One live allocation: simulated address range plus real backing bytes.
///
/// Backing storage is created lazily on first functional access, so
/// GB-scale simulated buffers that are only ever *timed* (never computed
/// on) cost no real memory. An unmaterialized allocation reads as all
/// zeros, which the copy machinery exploits (copying zeros onto zeros is
/// skipped).
class Allocation {
 public:
  Allocation(VirtAddr base, std::uint64_t bytes, MemKind kind, std::string name);

  [[nodiscard]] VirtAddr base() const { return base_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] AddrRange range() const { return AddrRange{base_, bytes_}; }
  [[nodiscard]] MemKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// NUMA home: which socket's HBM backs this allocation (the owning
  /// device for pool memory). For `Placement::Interleaved` this is only
  /// the stripe origin — use `page_home` for per-page homes; for a pending
  /// `FirstTouch` it is the provisional answer until `resolve_home`.
  [[nodiscard]] int home_socket() const { return home_socket_; }
  void set_home_socket(int socket) { home_socket_ = socket; }

  [[nodiscard]] Placement placement() const { return placement_; }
  /// Configure the placement policy (allocation time only). `sockets` is
  /// the stripe width for `Interleaved` and ignored otherwise.
  void set_placement(Placement p, int sockets) {
    placement_ = p;
    placement_sockets_ = sockets > 0 ? sockets : 1;
    home_resolved_ = p != Placement::FirstTouch;
  }
  /// True while a `FirstTouch` home is still undecided.
  [[nodiscard]] bool home_pending() const { return !home_resolved_; }
  /// First materializing access decides the home (first-touch semantics).
  void resolve_home(int socket) {
    home_socket_ = socket;
    home_resolved_ = true;
  }

  /// Home socket of the page containing `a`: a partial-migration override
  /// if one exists, else the per-page stripe for `Interleaved`, else the
  /// allocation home.
  [[nodiscard]] int page_home(VirtAddr a, std::uint64_t page_bytes) const {
    const std::uint64_t rel =
        a.value / page_bytes - base_.value / page_bytes;
    if (!home_overrides_.empty()) {
      if (auto it = home_overrides_.find(rel); it != home_overrides_.end()) {
        return it->second;
      }
    }
    if (placement_ != Placement::Interleaved) {
      return home_socket_;
    }
    return static_cast<int>(
        rel % static_cast<std::uint64_t>(placement_sockets_));
  }

  /// Home socket the placement policy alone would assign to relative page
  /// `rel` — what `page_home` answers when no override is installed.
  [[nodiscard]] int policy_home(std::uint64_t rel) const {
    if (placement_ != Placement::Interleaved) {
      return home_socket_;
    }
    return static_cast<int>(
        rel % static_cast<std::uint64_t>(placement_sockets_));
  }

  /// Partial-migration home overrides: relative page index -> socket.
  /// Installed by `MemorySystem::migrate_pages` on a subrange move and
  /// cleared when a whole-allocation migration collapses the placement.
  [[nodiscard]] const std::map<std::uint64_t, int>& home_overrides() const {
    return home_overrides_;
  }
  void set_home_override(std::uint64_t rel, int socket) {
    if (policy_home(rel) == socket) {
      home_overrides_.erase(rel);  // override became redundant
    } else {
      home_overrides_[rel] = socket;
    }
  }
  void clear_home_overrides() { home_overrides_.clear(); }

  /// Pages of `range` (clamped to this allocation) whose home is NOT
  /// `socket`. A pending first-touch counts as local everywhere — whoever
  /// touches first will home it.
  [[nodiscard]] std::uint64_t remote_pages(AddrRange range, int socket,
                                           std::uint64_t page_bytes) const;

  /// True once real backing storage exists.
  [[nodiscard]] bool materialized() const { return backing_ != nullptr; }

  /// Residency summary, maintained by MemorySystem: how many pages of
  /// this allocation socket `s`'s GPU cannot yet translate. Zero means
  /// fully mapped, which answers any subrange absence query O(1) — the
  /// steady state of every launch-loop buffer, including sliding-window
  /// accesses whose subrange changes each step. GPU translations are only
  /// removed when the allocation is freed or its pages migrate between
  /// sockets — the latter resets the summary via `gpu_absent_reset`, so a
  /// zero can never go stale. An uninitialized summary (empty vector)
  /// means "unknown" and falls back to the exact page-table count.
  [[nodiscard]] bool gpu_fully_mapped(int s) const {
    return s >= 0 && static_cast<std::size_t>(s) < gpu_absent_.size() &&
           gpu_absent_[static_cast<std::size_t>(s)] == 0;
  }
  /// First-use init: one counter per socket, all pages absent.
  void gpu_absent_init(std::size_t sockets, std::uint64_t pages) {
    if (gpu_absent_.empty()) {
      gpu_absent_.assign(sockets, pages);
    }
  }
  /// `n` pages of this allocation became GPU-mapped on socket `s`.
  void gpu_absent_sub(int s, std::uint64_t n) {
    if (s >= 0 && static_cast<std::size_t>(s) < gpu_absent_.size()) {
      std::uint64_t& a = gpu_absent_[static_cast<std::size_t>(s)];
      a -= n <= a ? n : a;
    }
  }
  /// Back to "unknown" after a migration tore down GPU translations.
  void gpu_absent_reset() { gpu_absent_.clear(); }

  /// Residency attribution, maintained by MemorySystem: how many of this
  /// allocation's materialized pages are charged to socket `s`'s HBM, and
  /// how many were spilled to the DDR tier by watermark eviction. Release
  /// credits exactly these counts back, so capacity accounting cannot
  /// drift from residency no matter how pages migrated in between.
  [[nodiscard]] std::uint64_t hbm_resident(int s) const {
    return s >= 0 && static_cast<std::size_t>(s) < hbm_resident_.size()
               ? hbm_resident_[static_cast<std::size_t>(s)]
               : 0;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& hbm_resident_all() const {
    return hbm_resident_;
  }
  void hbm_resident_add(int s, std::uint64_t n, std::size_t sockets) {
    if (hbm_resident_.size() < sockets) {
      hbm_resident_.resize(sockets, 0);
    }
    if (s >= 0 && static_cast<std::size_t>(s) < hbm_resident_.size()) {
      hbm_resident_[static_cast<std::size_t>(s)] += n;
    }
  }
  void hbm_resident_sub(int s, std::uint64_t n) {
    if (s >= 0 && static_cast<std::size_t>(s) < hbm_resident_.size()) {
      std::uint64_t& r = hbm_resident_[static_cast<std::size_t>(s)];
      r -= n <= r ? n : r;
    }
  }
  [[nodiscard]] std::uint64_t ddr_resident() const { return ddr_resident_; }
  void ddr_resident_add(std::uint64_t n) { ddr_resident_ += n; }
  void ddr_resident_sub(std::uint64_t n) {
    ddr_resident_ -= n <= ddr_resident_ ? n : ddr_resident_;
  }

  /// Real backing storage (zero-initialized; materializes on first use).
  [[nodiscard]] std::span<std::byte> data() {
    ensure_backing();
    return {backing_.get(), static_cast<std::size_t>(bytes_)};
  }

  /// Real pointer corresponding to simulated address `a` inside this range.
  [[nodiscard]] std::byte* translate(VirtAddr a);

 private:
  void ensure_backing();

  VirtAddr base_;
  std::uint64_t bytes_;
  MemKind kind_;
  std::string name_;
  int home_socket_ = 0;
  Placement placement_ = Placement::FixedHome;
  int placement_sockets_ = 1;  ///< stripe width for Interleaved
  bool home_resolved_ = true;  ///< false while FirstTouch is pending
  std::vector<std::uint64_t> gpu_absent_;  ///< per-socket absent pages
  std::map<std::uint64_t, int> home_overrides_;  ///< partial-migration homes
  std::vector<std::uint64_t> hbm_resident_;  ///< per-socket charged pages
  std::uint64_t ddr_resident_ = 0;           ///< pages spilled to DDR
  std::unique_ptr<std::byte[]> backing_;
};

/// The single simulated virtual address space of a node.
///
/// On an APU this mirrors reality: host and "device" allocations are ranges
/// of one address space over one physical storage. Addresses are handed out
/// by a page-aligned bump allocator and never reused, which both simplifies
/// reasoning and faithfully models the paper's spC/bt observation that
/// stack-allocated host buffers occupy fresh addresses on every function
/// invocation (and therefore fault anew on the GPU each time).
class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t page_bytes);

  /// Allocate `bytes` (rounded up to page alignment for the range, exact
  /// for the backing). Returns a stable reference owned by the space.
  Allocation& allocate(std::uint64_t bytes, MemKind kind, std::string name);

  /// Free by base address. Throws std::invalid_argument for unknown bases.
  void free(VirtAddr base);

  /// The allocation whose range contains `a`, or nullptr.
  [[nodiscard]] Allocation* find(VirtAddr a);
  [[nodiscard]] const Allocation* find(VirtAddr a) const;

  /// Real pointer for simulated address `a`; throws if unmapped.
  [[nodiscard]] std::byte* translate(VirtAddr a);

  /// Typed convenience over `translate`.
  template <typename T>
  [[nodiscard]] T* translate_as(VirtAddr a) {
    return reinterpret_cast<T*>(translate(a));
  }

  /// Visit every live allocation in address order (victim scans, debug
  /// invariant sweeps). The callback must not allocate or free.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [base, alloc] : allocs_) {
      fn(*alloc);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [base, alloc] : allocs_) {
      fn(*alloc);
    }
  }

  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] std::size_t live_allocations() const { return allocs_.size(); }
  [[nodiscard]] std::uint64_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::uint64_t total_allocated_bytes() const {
    return total_bytes_;
  }

 private:
  std::uint64_t page_bytes_;
  std::uint64_t next_ = 0;  // next base offset (page-aligned)
  std::map<std::uint64_t, std::unique_ptr<Allocation>> allocs_;  // by base
  /// Recently-found allocations: a kernel launch cycles through a handful
  /// of buffers (positions, psi, gradients, ...), so a few slots catch
  /// nearly every `find` before the O(log n) map walk. The range bounds
  /// are stored inline so a probe never dereferences the Allocation
  /// (pure cache-local scan); a hit transposes one slot toward the front
  /// so hot buffers drift to the first probes. Slots are invalidated on
  /// `free`.
  struct FindSlot {
    std::uint64_t base = 0;
    std::uint64_t end = 0;  // base == end: empty slot
    Allocation* alloc = nullptr;
  };
  static constexpr std::size_t kFindCacheSlots = 8;
  std::array<FindSlot, kFindCacheSlots> find_cache_{};
  std::uint64_t live_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace zc::mem
