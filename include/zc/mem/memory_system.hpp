#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "zc/apu/machine.hpp"
#include "zc/mem/address_space.hpp"
#include "zc/mem/page_table.hpp"
#include "zc/mem/tlb.hpp"

namespace zc::mem {

/// Counts returned by a host-issued prefault (`svm_attributes_set`).
struct PrefaultOutcome {
  std::uint64_t inserted = 0;      ///< pages newly added to the GPU page table
  std::uint64_t materialized = 0;  ///< of those, pages that were not yet
                                   ///< CPU-resident (bulk-created first)
  std::uint64_t present = 0;       ///< pages merely verified present
  std::uint64_t promoted = 0;      ///< DDR-spilled pages promoted back to HBM
  std::uint64_t collapsed = 0;     ///< split THP spans collapsed back to 2 MB

  [[nodiscard]] std::uint64_t inserted_resident() const {
    return inserted - materialized;
  }
};

/// Counts returned by GPU-side demand fault-in (XNACK-replay).
struct FaultOutcome {
  std::uint64_t faulted = 0;       ///< pages inserted into the GPU page table
  std::uint64_t non_resident = 0;  ///< of those, pages that also had to be
                                   ///< materialized (not yet CPU-resident)
  std::uint64_t promoted = 0;      ///< DDR-spilled pages promoted back to HBM
  std::uint64_t split_faulted = 0; ///< faulted pages inside split THP spans
  [[nodiscard]] std::uint64_t resident() const {
    return faulted - non_resident;
  }
};

/// Counts returned by one watermark reclaim pass.
struct ReclaimOutcome {
  std::uint64_t evicted = 0;  ///< pages spilled from HBM to the DDR tier
  std::uint64_t split = 0;    ///< THP spans the eviction split (dynamic mode)
};

/// One access-counter migration decision: move `page` to `to_socket`.
struct MigrationCandidate {
  std::uint64_t page = 0;  ///< absolute page index
  int to_socket = 0;
  bool valid = false;
};

/// The node's memory state: address space, CPU/GPU page tables, GPU TLB.
///
/// `MemorySystem` is deliberately *pure state*: it mutates tables and
/// reports page counts, but never advances virtual time or reserves
/// resource timelines — the HSA layer above owns timing and instrumentation
/// so that every modeled cost is attributable to an API call (which is how
/// the paper's Table I accounts for time). The protocol semantics live
/// here:
///
///  * OS allocations create no page-table entries; CPU pages materialize on
///    host touch, GPU pages via XNACK fault-in or host prefault.
///  * ROCr pool allocations create CPU and GPU entries in bulk at
///    allocation time (the paper's "XNACK-disabled" bulk prefault path);
///    on a discrete node pool memory is device-only (no CPU entries).
///  * Frees drop page-table entries and invalidate TLB translations, so
///    re-allocated addresses fault again — though the bump address space
///    never reuses addresses anyway, matching the paper's stack-buffer
///    observation for 457.spC / 470.bt.
///
/// The system also accounts *physical* HBM occupancy per socket — the
/// finite shared store that is the paper's whole premise. On an APU a page
/// consumes HBM when it materializes (host touch, GPU demand fault, bulk
/// population) and is credited back when its allocation is freed; on a
/// discrete node pool allocations charge their full footprint against the
/// device memory. Capacity is *enforced* only on the pool-allocation path
/// (`try_pool_alloc` returns nullptr): real drivers fail allocations
/// first, while host page overcommit OOM-kills the process — a failure
/// mode outside this model.
class MemorySystem {
 public:
  explicit MemorySystem(apu::Machine& machine);

  /// malloc/mmap-style host allocation. `home_socket` records the NUMA
  /// placement the first-touching thread would produce.
  Allocation& os_alloc(std::uint64_t bytes, std::string name,
                       int home_socket = 0);
  /// Placement-policy variant: `FirstTouch` defers the home decision to
  /// the first materializing access (host touch, GPU fault, prefault);
  /// `Interleaved` stripes page homes round-robin across all sockets;
  /// `FixedHome` behaves like plain `os_alloc(bytes, name, home_socket)`.
  Allocation& os_alloc_placed(std::uint64_t bytes, std::string name,
                              Placement placement, int home_socket = 0);
  void os_free(VirtAddr base);

  /// ROCr memory-pool ("device") allocation owned by one socket's GPU.
  /// Throws std::runtime_error when the socket's HBM capacity is exhausted.
  Allocation& pool_alloc(std::uint64_t bytes, std::string name,
                         int socket = 0);
  /// Error-carrying variant: nullptr when the socket's HBM cannot hold the
  /// page-rounded footprint (the caller decides how to degrade).
  [[nodiscard]] Allocation* try_pool_alloc(std::uint64_t bytes,
                                           std::string name, int socket = 0);
  /// Whether a pool allocation of `bytes` would fit right now.
  [[nodiscard]] bool pool_fits(std::uint64_t bytes, int socket = 0) const;
  void pool_free(VirtAddr base);

  /// CPU first touch: materialize CPU pages; returns newly created count.
  /// `toucher_socket` is the socket of the touching thread — it resolves a
  /// pending `Placement::FirstTouch` home.
  std::uint64_t host_touch(AddrRange range, int toucher_socket = 0);

  /// Pages of `range` the GPU of `socket` cannot currently translate.
  [[nodiscard]] std::uint64_t gpu_absent_pages(AddrRange range,
                                               int socket = 0) const;

  /// Same query with an allocation hint (the allocation containing
  /// `range`, as returned by `space().find`). Answers O(1) once the whole
  /// allocation is GPU-mapped — the steady state of every launch-loop
  /// buffer — via the allocation's residency summary, which this call
  /// also maintains. Exact: falls back to the page-table count whenever
  /// the summary cannot prove full residency.
  [[nodiscard]] std::uint64_t gpu_absent_pages(AddrRange range, int socket,
                                               Allocation* hint) const;

  /// Pages of `range` the CPU has materialized (host first touch or bulk
  /// population). Pure state read — feeds the Adaptive Maps policy.
  [[nodiscard]] std::uint64_t cpu_resident_pages(AddrRange range) const;

  /// Pages of `range` homed on a socket other than `device` — the pages a
  /// kernel on `device` reaches over the fabric. Page-granular for
  /// interleaved allocations; zero for addresses outside any allocation or
  /// for a still-pending first-touch home. Pure state read — feeds the
  /// Adaptive Maps policy and the kernel cost model.
  [[nodiscard]] std::uint64_t remote_pages(AddrRange range, int device) const;

  /// Migrate pages of `range` to `to_socket`. A range covering the whole
  /// allocation moves every CPU-resident page, collapses the placement to
  /// `FixedHome` on `to_socket`, clears partial-migration overrides, and
  /// tears down every socket's GPU translations of the allocation (they
  /// re-fault or re-prefault afterwards — a migration remaps physical
  /// pages). A subrange moves only the covered pages: per-page home
  /// overrides record the new homes, pages already homed on `to_socket`
  /// are skipped idempotently, DDR-spilled pages promote into the new
  /// home, and only the covered range's translations are torn down. Under
  /// `THP=dynamic` a partial move splits the moved spans. Returns the
  /// number of resident pages that physically moved; zero when everything
  /// was already homed there. Throws for unknown addresses or pool
  /// allocations (only SVM memory migrates). Pure state: the HSA layer
  /// prices the operation.
  std::uint64_t migrate_pages(AddrRange range, int to_socket);

  /// Cumulative pages migrated *onto* `socket` by `migrate_pages`.
  [[nodiscard]] std::uint64_t migrated_pages(int socket) const {
    return migrated_.at(static_cast<std::size_t>(socket));
  }

  /// GPU-side fault-in (XNACK-replay) of all absent pages in `range` on
  /// one socket's GPU; also materializes the CPU pages backing them,
  /// reporting how many needed materialization (they fault expensively).
  FaultOutcome gpu_fault_in(AddrRange range, int socket = 0);

  /// Host-side prefault (`svm_attributes_set` semantics) of `range` into
  /// one socket's GPU page table.
  PrefaultOutcome prefault(AddrRange range, int socket = 0);

  /// Stream `range` through one socket's GPU TLB.
  TlbAccessResult tlb_access(AddrRange range, int socket = 0);

  [[nodiscard]] AddressSpace& space() { return space_; }
  [[nodiscard]] const AddressSpace& space() const { return space_; }
  [[nodiscard]] PageTable& cpu_pt() { return cpu_pt_; }
  [[nodiscard]] PageTable& gpu_pt(int socket = 0) {
    return gpu_pt_.at(static_cast<std::size_t>(socket));
  }
  [[nodiscard]] Tlb& tlb(int socket = 0) {
    return tlb_.at(static_cast<std::size_t>(socket));
  }
  [[nodiscard]] int sockets() const { return static_cast<int>(gpu_pt_.size()); }
  [[nodiscard]] std::uint64_t page_bytes() const {
    return space_.page_bytes();
  }

  /// Physical HBM occupancy of one socket / the per-socket capacity.
  [[nodiscard]] std::uint64_t hbm_used(int socket = 0) const {
    return hbm_used_.at(static_cast<std::size_t>(socket));
  }
  [[nodiscard]] std::uint64_t hbm_capacity() const { return hbm_capacity_; }

  // -- memory pressure: DDR spill tier, access counters, THP dynamics ------

  /// Bytes currently spilled to the DDR tier (node-wide).
  [[nodiscard]] std::uint64_t ddr_used() const { return ddr_used_; }
  /// Spilled pages inside `range` (feeds Adaptive promotion pricing).
  [[nodiscard]] std::uint64_t ddr_pages(AddrRange range) const;
  /// Split THP spans inside `range` (feeds TLB and fault pricing).
  [[nodiscard]] std::uint64_t split_spans(AddrRange range) const;

  /// Watermark reclaim: spill the coldest eligible pages homed on `socket`
  /// (SVM, CPU-resident, not already spilled; pool pages are pinned) until
  /// `hbm_used(socket) <= target_bytes`, at most `max_pages` this pass.
  /// Victims order by (access-counter heat, recency, seeded tie-break);
  /// evicted pages lose their GPU translations everywhere but keep their
  /// CPU entries — the data is untouched, only slower to reach. Under
  /// `THP=dynamic` each evicted span splits. Pure state: the HSA layer
  /// prices driver work and SDMA writeback.
  ReclaimOutcome reclaim(int socket, std::uint64_t target_bytes,
                         std::uint64_t max_pages);

  /// Pop one page whose remote-touch counter crossed `threshold`, or an
  /// invalid candidate. The caller migrates it (`migrate_pages` on the
  /// page's range) and prices the move.
  [[nodiscard]] MigrationCandidate take_migration_candidate(int threshold);

  /// Fault injection: the driver lost its access-counter state — every
  /// page reads as cold again.
  void counter_loss() { heat_.clear(); }

  /// Fault injection: spuriously split every CPU-resident huge span in
  /// `range` (THP=dynamic only). Returns spans newly split.
  std::uint64_t thp_split_range(AddrRange range);

  /// Debug invariant: when enabled, every migrate/reclaim/free re-checks
  /// that per-allocation residency attribution sums to the per-socket
  /// capacity counters (`check_accounting`).
  void set_debug_invariants(bool on) { debug_invariants_ = on; }
  /// Throws std::logic_error when per-socket HBM occupancy or the DDR
  /// tier disagrees with the sum of per-allocation residency counters.
  void check_accounting() const;

 private:
  void release(VirtAddr base, MemKind expected);
  /// Debit the owning allocation's per-socket absent-page counter after
  /// `mapped_pages` of `range` entered socket `socket`'s GPU page table.
  void update_residency_summary(AddrRange range, int socket,
                                std::uint64_t mapped_pages);
  /// Home socket of the allocation containing `a` (HBM attribution).
  [[nodiscard]] int home_of(VirtAddr a) const;
  void charge(int socket, std::uint64_t bytes);
  void credit(int socket, std::uint64_t bytes);
  /// Charge `pages` to `socket` and record them in the allocation's
  /// residency vector — the one write path capacity accounting has, so
  /// release/migrate/evict can credit exactly what was charged.
  void charge_alloc(Allocation& a, int socket, std::uint64_t pages);
  /// Credit one page, preferring `socket` but falling back to wherever the
  /// allocation's charges actually landed (interleaved attribution is an
  /// even split, not per-page), so the global sum never drifts.
  void credit_page(Allocation& a, int socket);
  /// Credit the allocation's entire HBM residency vector (whole-allocation
  /// migrate and release).
  void credit_all(Allocation& a);
  /// Attribute `pages` newly created in the allocation containing `addr`:
  /// an even split across sockets for interleaved placements, the home
  /// socket otherwise.
  void charge_created(VirtAddr addr, std::uint64_t pages);
  /// DDR-tier counter writes under the mm-lock monitor.
  void ddr_charge(Allocation& a, std::uint64_t pages);
  void ddr_credit(Allocation& a, std::uint64_t pages);
  /// Promote the DDR-spilled pages of [first, end) back to HBM (GPU fault
  /// or prefault touched them); returns the promoted count.
  std::uint64_t promote_range(Allocation& a, std::uint64_t first,
                              std::uint64_t end);
  /// Access-counter sampling (no-op unless automigrate or pressure is on).
  void note_touch(AddrRange range, int socket);
  /// True when the THP split/collapse state machine is active.
  [[nodiscard]] bool thp_dynamic() const {
    return machine_.env().thp == apu::ThpMode::Dynamic;
  }
  void maybe_check_accounting() const {
    if (debug_invariants_) {
      check_accounting();
    }
  }

  apu::Machine& machine_;
  AddressSpace space_;
  PageTable cpu_pt_;
  std::vector<PageTable> gpu_pt_;
  std::vector<Tlb> tlb_;
  std::vector<std::uint64_t> hbm_used_;
  std::vector<std::uint64_t> migrated_;  ///< pages migrated onto each socket
  std::uint64_t hbm_capacity_ = 0;
  std::uint64_t ddr_used_ = 0;       ///< bytes spilled to the DDR tier
  std::set<std::uint64_t> ddr_pages_;     ///< spilled absolute page indices
  std::set<std::uint64_t> split_spans_;   ///< 4 KB-fragmented huge spans
  /// Per-page access-counter shadow: remote-touch streak and recency.
  struct Heat {
    int socket = 0;            ///< the remote socket doing the touching
    std::uint32_t count = 0;   ///< consecutive remote touches
    std::uint64_t epoch = 0;   ///< recency for victim selection
  };
  std::map<std::uint64_t, Heat> heat_;
  std::uint64_t heat_epoch_ = 0;
  bool sample_counters_ = false;  ///< automigrate or pressure enabled
  bool debug_invariants_ = false;
};

}  // namespace zc::mem
