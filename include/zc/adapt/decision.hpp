#pragma once

namespace zc::adapt {

/// How the Adaptive Maps policy engine decided to handle one mapped
/// region. Header-only (no link dependency) so layers below `zc_adapt`
/// in the build graph — notably `zc_trace`'s DecisionTrace — can name
/// decisions without a dependency cycle.
enum class Decision {
  /// Legacy Copy handling: device pool allocation + DMA transfers, with a
  /// PresentTable entry translating kernel arguments.
  DmaCopy,
  /// XNACK zero-copy: kernels receive the host pointer and demand-fault
  /// pages into the GPU page table.
  ZeroCopy,
  /// Zero-copy plus an eager host-side `svm_attributes_set` prefault of
  /// the region before the kernel runs (the Eager Maps treatment).
  EagerPrefault,
};

[[nodiscard]] constexpr const char* to_string(Decision d) {
  switch (d) {
    case Decision::DmaCopy:
      return "dma-copy";
    case Decision::ZeroCopy:
      return "zero-copy";
    case Decision::EagerPrefault:
      return "eager-prefault";
  }
  return "?";
}

}  // namespace zc::adapt
