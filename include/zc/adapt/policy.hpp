#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "zc/adapt/decision.hpp"
#include "zc/apu/params.hpp"
#include "zc/mem/address.hpp"

namespace zc::adapt {

/// Everything the policy engine knows about a region at decision time,
/// gathered by the runtime from the memory system's pure state (no clock
/// advances, no side effects).
struct RegionFeatures {
  mem::AddrRange range;
  std::uint64_t pages = 0;               ///< pages the range overlaps
  std::uint64_t cpu_resident_pages = 0;  ///< already created by host touch
  std::uint64_t gpu_absent_pages = 0;    ///< missing from the GPU page table
  /// Pages homed on a socket other than the mapping device — zero-copy and
  /// eager handling would stream them over the fabric on every kernel,
  /// while DmaCopy pays the link once and then reads locally.
  std::uint64_t remote_pages = 0;
  /// Pages of the range spilled to the DDR tier by watermark reclaim —
  /// any zero-copy-style first use must promote them back to HBM first
  /// (per-page driver work), a cost DmaCopy's fresh pool storage avoids.
  std::uint64_t ddr_pages = 0;
  bool copies_in = false;   ///< map type transfers host->device on entry
  bool copies_out = false;  ///< map type transfers device->host on exit
  /// The device's pool has failed an allocation this run (sticky flag set
  /// by the runtime's OOM fallback): DmaCopy would likely fail again and
  /// degrade anyway, so the predictor prices it out.
  bool memory_pressure = false;
  /// The device's circuit breaker is open (watchdog trips / degraded-mode
  /// events crossed the threshold): the predictor prices out both DmaCopy
  /// (the SDMA engines are suspect) and demand faulting (XNACK-replay
  /// storms are a hang site), leaving eager prefault — the device's safest
  /// handling — as the only finite choice.
  bool breaker_open = false;
  /// Multi-tenant service occupancy of the device's admission budget, in
  /// [0, 1]: 0 outside the service (or with admission control off), 1 when
  /// the admitted working sets fill the budget. High occupancy makes fresh
  /// pool allocations the costliest choice — they fence off HBM other
  /// tenants' zero-copy pages are competing for — so the predictor
  /// surcharges DmaCopy proportionally (`AdaptParams::
  /// tenant_pressure_surcharge`) before the hard pressure/breaker
  /// overrides apply.
  double tenant_pressure = 0.0;
};

/// Predicted first-use cost of each handling, in virtual microseconds.
/// Derived purely from `apu::CostParams` so the policy and the simulated
/// machine can never disagree about what an operation costs.
struct PredictedCosts {
  double copy_us = 0.0;
  double zero_copy_us = 0.0;
  double eager_us = 0.0;

  [[nodiscard]] double cost_of(Decision d) const {
    switch (d) {
      case Decision::DmaCopy:
        return copy_us;
      case Decision::ZeroCopy:
        return zero_copy_us;
      case Decision::EagerPrefault:
        return eager_us;
    }
    return copy_us;
  }

  /// Cheapest handling; ties break toward ZeroCopy (no setup work at all),
  /// then EagerPrefault, then DmaCopy.
  [[nodiscard]] Decision best() const {
    Decision d = Decision::ZeroCopy;
    double c = zero_copy_us;
    if (eager_us < c) {
      d = Decision::EagerPrefault;
      c = eager_us;
    }
    if (copy_us < c) {
      d = Decision::DmaCopy;
    }
    return d;
  }
};

/// What `decide` concluded for one map request.
struct Outcome {
  Decision decision = Decision::ZeroCopy;
  /// True when the engine freshly evaluated the cost model (cache miss or
  /// hysteresis-window re-evaluation); false on a plain cache hit.
  bool fresh = false;
  /// True when a re-evaluation changed an earlier cached decision.
  bool revised = false;
  /// Populated only when `fresh`.
  PredictedCosts costs;
};

/// The Adaptive Maps policy engine: per-device decision caches keyed by
/// each mapping's host range (containment lookups, like the present
/// table), a cost-model-driven classifier, and hysteresis that makes
/// flip-flopping impossible:
///
///  * a cached decision is never revisited while the range is actively
///    mapped (`active_maps > 0` — nested/overlapping data regions pin it);
///  * between evaluations at least `AdaptParams::hysteresis_maps` further
///    maps must pass, and the engine switches only when the cached choice
///    predicts worse than the best alternative by `switch_margin`.
///
/// The engine is deliberately passive — no scheduler, clock, or memory
/// system dependency. The runtime gathers `RegionFeatures`, calls `decide`
/// inside its present-table transaction, and charges
/// `AdaptParams::eval_cost`/`cache_hit_cost` itself. This keeps the hot
/// path directly drivable from a real-time microbenchmark.
class PolicyEngine {
 public:
  PolicyEngine(const apu::CostParams& costs, const apu::AdaptParams& params,
               int devices, std::uint64_t page_bytes, bool xnack_enabled);

  /// Classify one map request on `device`. Increments the range's
  /// active-map count; the runtime must pair every `decide` with exactly
  /// one `release` when the mapping lifetime it opened ends.
  [[nodiscard]] Outcome decide(int device, const RegionFeatures& features);

  /// A mapping lifetime opened by `decide` ended (structured end of the
  /// data region for engine-managed ranges, present-table erase for
  /// DmaCopy-classified ones).
  void release(int device, mem::AddrRange range);

  /// The host freed the backing allocation: drop every cached decision
  /// overlapping `range` on all devices (addresses can be recycled).
  void forget(mem::AddrRange range);

  /// Cost prediction alone, exposed for tests and calibration tooling.
  [[nodiscard]] PredictedCosts predict(const RegionFeatures& features) const;

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t revisions() const { return revisions_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t cache_size(int device) const {
    return caches_.at(static_cast<std::size_t>(device)).size();
  }

 private:
  struct CacheEntry {
    std::uint64_t bytes = 0;  ///< extent of the cached range
    Decision decision = Decision::ZeroCopy;
    std::uint32_t maps_since_eval = 0;
    std::uint32_t active_maps = 0;
    std::uint64_t last_used = 0;  ///< decision sequence number, for eviction
  };
  /// Keyed by range base address; containment lookups via lower_bound.
  using Cache = std::map<std::uint64_t, CacheEntry>;

  [[nodiscard]] Cache::iterator find_containing(Cache& cache,
                                                mem::AddrRange range);
  void evict_if_needed(Cache& cache);

  apu::CostParams costs_;
  apu::AdaptParams params_;
  std::uint64_t page_bytes_;
  bool xnack_enabled_;
  std::vector<Cache> caches_;
  std::uint64_t seqno_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t revisions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace zc::adapt
