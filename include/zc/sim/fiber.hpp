#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

#include <ucontext.h>

namespace zc::sim {

/// A cooperatively scheduled execution context (stackful coroutine).
///
/// Fibers let the simulator express virtual host threads as ordinary
/// blocking code: a workload calls into the OpenMP runtime, which calls into
/// HSA, which "waits" on a signal — and the wait suspends the whole call
/// stack back to the scheduler without any of those layers being written as
/// state machines.
///
/// A fiber alternates control with its resumer: `resume()` runs the fiber
/// until it calls `Fiber::yield()` or its body returns. Exceptions thrown by
/// the body are captured and rethrown from the `resume()` that observed the
/// fiber finish. Not thread-safe: all fibers of a simulation run on one OS
/// thread.
class Fiber {
 public:
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Must not be called from
  /// inside any fiber other than the resumer context that created it, and
  /// never on a finished fiber.
  void resume();

  /// Suspend the currently running fiber back to its resumer.
  /// Must be called from inside a fiber.
  static void yield();

  /// True once the body has returned (or thrown).
  [[nodiscard]] bool finished() const { return finished_; }

  /// The fiber currently executing on this OS thread, or nullptr.
  [[nodiscard]] static Fiber* current();

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t resumer_{};
  /// ThreadSanitizer fiber context for this stack and for the context that
  /// last resumed it; null (and unused) outside TSan builds.
  void* tsan_fiber_ = nullptr;
  void* tsan_resumer_ = nullptr;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace zc::sim
