#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include <setjmp.h>
#include <ucontext.h>

namespace zc::sim {

/// A cooperatively scheduled execution context (stackful coroutine).
///
/// Fibers let the simulator express virtual host threads as ordinary
/// blocking code: a workload calls into the OpenMP runtime, which calls into
/// HSA, which "waits" on a signal — and the wait suspends the whole call
/// stack back to the scheduler without any of those layers being written as
/// state machines.
///
/// A fiber alternates control with its resumer: `resume()` runs the fiber
/// until it calls `Fiber::yield()` or its body returns. Exceptions thrown by
/// the body are captured and rethrown from the `resume()` that observed the
/// fiber finish. Not thread-safe: all fibers of a simulation run on one OS
/// thread.
/// Recycles fixed-size fiber stacks. A simulation spawns and retires
/// thousands of short-lived virtual threads (one per modeled host thread
/// per run, plus helpers); without pooling every spawn pays a 256 KiB heap
/// allocation and first-touch page faults. The scheduler returns a stack to
/// its pool as soon as the owning fiber finishes — the stack is dead the
/// moment `resume()` observes `finished()`, long before the Fiber object
/// itself is destroyed. Not thread-safe (the simulator is single-threaded).
class FiberStackPool {
 public:
  /// Pop a recycled stack of exactly `bytes` bytes, or allocate fresh.
  [[nodiscard]] std::unique_ptr<char[]> acquire(std::size_t bytes);

  /// Return a stack for reuse. Stacks whose size differs from the pool's
  /// current block size are simply freed.
  void release(std::unique_ptr<char[]> stack, std::size_t bytes);

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }

 private:
  std::size_t block_bytes_ = 0;
  std::vector<std::unique_ptr<char[]>> free_;
};

class Fiber {
 public:
  /// `pool`, when given, supplies the stack and receives it back via
  /// `recycle_stack()`; it must outlive the fiber's stack use.
  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes,
                 FiberStackPool* pool = nullptr);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it yields or finishes. Must not be called from
  /// inside any fiber other than the resumer context that created it, and
  /// never on a finished fiber.
  void resume();

  /// Suspend the currently running fiber back to its resumer.
  /// Must be called from inside a fiber.
  static void yield();

  /// True once the body has returned (or thrown).
  [[nodiscard]] bool finished() const { return finished_; }

  /// Return the stack of a finished fiber to the pool it was drawn from
  /// (no-op for unfinished fibers, pool-less fibers free the stack). The
  /// context of a finished fiber is never resumed, so its stack is dead.
  void recycle_stack();

  /// The fiber currently executing on this OS thread, or nullptr.
  [[nodiscard]] static Fiber* current();

  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

 private:
  static void trampoline();

  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  FiberStackPool* pool_ = nullptr;
  std::size_t stack_bytes_ = 0;
  /// ucontext pair for a fiber's *first* entry only: makecontext is the one
  /// portable way to start executing on a fresh stack. Every subsequent
  /// switch uses the _setjmp/_longjmp pair below — glibc's swapcontext
  /// performs a sigprocmask syscall per switch (~470 ns round trip measured
  /// on the dev box vs ~12 ns for _setjmp/_longjmp), which dominated the
  /// whole DES event loop. Sanitizer builds stay on swapcontext throughout:
  /// ASan/TSan intercept it and model the stack switch, while a cross-stack
  /// longjmp would bypass their bookkeeping (see fiber.cpp).
  ucontext_t ctx_{};
  ucontext_t resumer_{};
  jmp_buf jmp_{};          // fiber's suspended point (valid once started)
  jmp_buf resumer_jmp_{};  // resumer's point to return to on yield/finish
  /// ThreadSanitizer fiber context for this stack and for the context that
  /// last resumed it; null (and unused) outside TSan builds.
  void* tsan_fiber_ = nullptr;
  void* tsan_resumer_ = nullptr;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr error_;
};

}  // namespace zc::sim
