#pragma once

#include <cstdint>

namespace zc::sim {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// The standard-library distributions are not guaranteed to produce the same
/// sequence across implementations, so the simulator carries its own small
/// generator and distribution kernels. All stochastic behaviour in a run is
/// derived from a single user-provided seed, making every experiment
/// bit-reproducible.
class Rng {
 public:
  /// Seeds the four words of state via SplitMix64, as recommended by the
  /// xoshiro authors. Any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic across platforms).
  [[nodiscard]] double normal();

  /// Log-normal multiplier with E[X] = 1:  exp(sigma*Z - sigma^2/2).
  [[nodiscard]] double lognormal_unit_mean(double sigma);

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Derive an independent child generator (e.g. one per virtual thread).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace zc::sim
