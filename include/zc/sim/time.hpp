#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace zc::sim {

/// A signed span of virtual time with nanosecond resolution.
///
/// All timing in the simulator is expressed in `Duration`/`TimePoint` rather
/// than raw integers so that unit mistakes (microseconds where nanoseconds
/// were meant) are type errors. The representation is a plain `int64_t`
/// nanosecond count; roughly +/-292 years of simulated time.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration nanoseconds(std::int64_t v) {
    return Duration{v};
  }
  [[nodiscard]] static constexpr Duration microseconds(std::int64_t v) {
    return Duration{v * 1000};
  }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t v) {
    return Duration{v * 1000 * 1000};
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) {
    return Duration{v * 1000 * 1000 * 1000};
  }
  /// Fractional microseconds, rounded to the nearest nanosecond.
  [[nodiscard]] static Duration from_us(double us);
  /// Fractional seconds, rounded to the nearest nanosecond.
  [[nodiscard]] static Duration from_seconds(double s);

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const {
    return static_cast<double>(ns_) / 1e3;
  }
  [[nodiscard]] constexpr double ms() const {
    return static_cast<double>(ns_) / 1e6;
  }
  [[nodiscard]] constexpr double sec() const {
    return static_cast<double>(ns_) / 1e9;
  }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  [[nodiscard]] friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  [[nodiscard]] friend constexpr Duration operator-(Duration a) {
    return Duration{-a.ns_};
  }
  /// Scaling by a real factor rounds to the nearest nanosecond. (Integer
  /// factors are exact: every int64 nanosecond count of practical size is
  /// representable, and products stay below 2^53 ns ~ 104 days.)
  friend Duration operator*(Duration a, double k);
  friend Duration operator*(double k, Duration a) { return a * k; }
  /// Ratio of two durations as a real number; b must be nonzero.
  [[nodiscard]] friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  [[nodiscard]] friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.ns_ / k};
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "12.4ms".
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

/// An absolute instant of virtual time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint from_ns(std::int64_t v) {
    TimePoint t;
    t.ns_ = v;
    return t;
  }
  [[nodiscard]] static constexpr TimePoint max() {
    return from_ns(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr Duration since_start() const {
    return Duration::nanoseconds(ns_);
  }

  constexpr TimePoint& operator+=(Duration d) {
    ns_ += d.ns();
    return *this;
  }
  [[nodiscard]] friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return from_ns(t.ns_ + d.ns());
  }
  [[nodiscard]] friend constexpr TimePoint operator+(Duration d, TimePoint t) {
    return t + d;
  }
  [[nodiscard]] friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return from_ns(t.ns_ - d.ns());
  }
  [[nodiscard]] friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanoseconds(a.ns_ - b.ns_);
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr TimePoint max(TimePoint a, TimePoint b) {
  return a < b ? b : a;
}
[[nodiscard]] constexpr TimePoint min(TimePoint a, TimePoint b) {
  return a < b ? a : b;
}
[[nodiscard]] constexpr Duration max(Duration a, Duration b) {
  return a < b ? b : a;
}
[[nodiscard]] constexpr Duration min(Duration a, Duration b) {
  return a < b ? a : b;
}

namespace literals {
[[nodiscard]] constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanoseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Duration operator""_us(unsigned long long v) {
  return Duration::microseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::milliseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace zc::sim
