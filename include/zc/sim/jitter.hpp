#pragma once

#include "zc/sim/rng.hpp"
#include "zc/sim/time.hpp"

namespace zc::sim {

/// Multiplicative noise applied to modeled operation costs.
///
/// Real measurements vary run to run; the paper reports Coefficient-of-
/// Variation (CoV) statistics and attributes two Eager-Maps outliers to OS
/// interference on the prefault syscall and to TLB thrashing. The jitter
/// model reproduces both mechanisms:
///
///  * baseline log-normal noise with unit mean and parameter `sigma`
///    (sigma = 0 disables noise entirely -> fully analytic runs);
///  * rare outliers: with probability `outlier_prob` a cost is multiplied
///    by `outlier_factor` (e.g. a syscall descheduled by the OS).
struct JitterParams {
  double sigma = 0.0;
  double outlier_prob = 0.0;
  double outlier_factor = 1.0;
};

class JitterModel {
 public:
  JitterModel() : JitterModel{JitterParams{}, 0} {}
  JitterModel(JitterParams params, std::uint64_t seed)
      : params_{params}, rng_{seed} {}

  /// Apply noise to a cost. Deterministic given construction seed and
  /// call sequence; identity when sigma == 0 and outlier_prob == 0.
  /// The disabled case consumes no RNG state, so taking it inline keeps
  /// the stream bit-identical with the out-of-line path.
  [[nodiscard]] Duration apply(Duration d) {
    if (d.is_zero() ||
        (params_.sigma <= 0.0 && params_.outlier_prob <= 0.0)) {
      return d;
    }
    return apply_noise(d);
  }

  [[nodiscard]] const JitterParams& params() const { return params_; }

 private:
  [[nodiscard]] Duration apply_noise(Duration d);

  JitterParams params_;
  Rng rng_;
};

}  // namespace zc::sim
