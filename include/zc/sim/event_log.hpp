#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::sim {

/// A timestamped diagnostic record.
struct Event {
  TimePoint time;
  std::string category;
  std::string text;
};

/// Bounded in-memory trace of simulation events.
///
/// Disabled by default so the hot path pays only a branch; enable it in
/// tests or when debugging a run. When the capacity is exceeded the oldest
/// events are dropped (a ring), and `dropped()` reports how many.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1 << 16) : capacity_{capacity} {}

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void add(TimePoint t, std::string category, std::string text);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Events in chronological insertion order.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Events of one category, in insertion order.
  [[nodiscard]] std::vector<Event> by_category(const std::string& cat) const;

  void clear();

  /// Write "time [category] text" lines.
  void dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest event when full
  std::size_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace zc::sim
