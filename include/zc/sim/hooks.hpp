#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace zc::sim {

class Mutex;

/// What kind of synchronization object emitted a release/acquire edge.
/// `Monitor` models serialization that exists in the real system but has no
/// first-class primitive in the simulator (the driver's memory-manager lock,
/// the allocator's internal lock); `Atomic` models a lock-free
/// release-store/acquire-load pair on a single word.
enum class SyncKind {
  Mutex,
  Latch,
  Barrier,
  WaitList,
  Signal,
  Monitor,
  Atomic,
};

[[nodiscard]] constexpr const char* to_string(SyncKind k) {
  switch (k) {
    case SyncKind::Mutex:
      return "mutex";
    case SyncKind::Latch:
      return "latch";
    case SyncKind::Barrier:
      return "barrier";
    case SyncKind::WaitList:
      return "waitlist";
    case SyncKind::Signal:
      return "signal";
    case SyncKind::Monitor:
      return "monitor";
    case SyncKind::Atomic:
      return "atomic";
  }
  return "?";
}

/// Observer interface for the scheduler's concurrency events: thread
/// lifecycle, the release/acquire edges every synchronization primitive
/// emits, nested lock acquisitions, and the instrumented accesses to shared
/// state. `zc::race::Detector` implements it to maintain per-fiber vector
/// clocks; a null hook pointer (the default) keeps every primitive on its
/// original fast path — one predicted branch per operation, no allocation.
///
/// Virtual-thread ids are the scheduler's (`VirtualThread::id()`); a parent
/// id of -1 means the thread was spawned from outside any virtual thread
/// (before `run()`). Logical device tasks — a kernel execution or a DMA
/// transfer whose effects the simulator applies at submit time but which
/// logically runs until its completion signal fires — get their own clock
/// via `on_task_begin`/`on_task_end`.
class ConcurrencyHooks {
 public:
  virtual ~ConcurrencyHooks() = default;

  /// --- thread lifecycle --------------------------------------------------
  virtual void on_spawn(int parent_id, int child_id) = 0;
  virtual void on_finish(int thread_id) = 0;

  /// --- release/acquire edges ---------------------------------------------
  /// `obj` identifies the synchronization object (its address, or the
  /// shared-state address for handle types like `hsa::Signal`).
  virtual void on_release(const void* obj, SyncKind kind) = 0;
  virtual void on_acquire(const void* obj, SyncKind kind) = 0;

  /// A mutex was just acquired by the current thread (its held-lock set
  /// already contains `m`). Feeds the lock-order graph.
  virtual void on_lock_acquired(const Mutex& m) = 0;

  /// --- instrumented field accesses ----------------------------------------
  /// A read or write of instrumented shared state by the current thread.
  /// `what` names the access site for reports; it is copied when retained.
  virtual void on_access(const void* addr, std::size_t bytes,
                         std::string_view what, bool is_write) = 0;

  /// --- logical device tasks and page-granularity accesses -----------------
  /// Begin a device task forked from the current thread's clock; returns a
  /// task handle (or -1 when ignored).
  virtual int on_task_begin(std::string_view what, int device) = 0;
  /// Pages `[first_page, first_page + pages)` accessed by a device task.
  virtual void on_task_pages(int task, std::uint64_t first_page,
                             std::uint64_t pages, bool is_write,
                             std::string_view what) = 0;
  /// Pages accessed by the current (host) thread.
  virtual void on_host_pages(std::uint64_t first_page, std::uint64_t pages,
                             bool is_write, std::string_view what) = 0;
  /// A device task ordered after a synchronization object's released clock
  /// (an in-queue dependence on earlier async work: the host never waits,
  /// but the device starts the task after the dependence completed).
  virtual void on_task_acquire(int task, const void* obj) = 0;
  /// End a device task, releasing its clock into `completion_obj` (the
  /// completion signal's identity) so waiters order after the task.
  virtual void on_task_end(int task, const void* completion_obj) = 0;
};

}  // namespace zc::sim
