#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "zc/sim/fiber.hpp"
#include "zc/sim/hooks.hpp"
#include "zc/sim/rng.hpp"
#include "zc/sim/time.hpp"

namespace zc::sim {

class Scheduler;
class Mutex;
class WaitList;

/// Error raised for simulation misuse (deadlock, op outside a thread, ...).
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Error raised by the lock-discipline checker: guarded state touched
/// without its mutex, recursive locking, unlocking from a non-owner thread,
/// or a thread finishing while still holding locks. Always a bug in the
/// modeled runtime, never a property of the workload.
class LockDisciplineError : public SimError {
 public:
  using SimError::SimError;
};

/// A simulated host thread: a fiber plus a private virtual clock.
class VirtualThread {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] TimePoint now() const { return clock_; }
  [[nodiscard]] bool finished() const { return fiber_ && fiber_->finished(); }

  /// Locks currently held by this thread, in acquisition order (the
  /// lock-discipline checker's per-thread held-lock set).
  [[nodiscard]] const std::vector<const Mutex*>& held_locks() const {
    return held_;
  }
  [[nodiscard]] bool holds(const Mutex& m) const;

  /// While blocked, a short label for the primitive this thread waits on
  /// (e.g. "Mutex(present-table)", "Signal(kernel:vmc)"); empty otherwise.
  /// Surfaced by the deadlock diagnostic in `Scheduler::run`.
  [[nodiscard]] const std::string& waiting_on() const { return wait_what_; }

 private:
  friend class Scheduler;
  friend class WaitList;
  friend class Mutex;

  enum class State { Runnable, Blocked, Finished };

  VirtualThread(std::string name, int id) : name_{std::move(name)}, id_{id} {}

  std::string name_;
  int id_;
  TimePoint clock_;
  State state_ = State::Runnable;
  /// Reschedule epoch: 0 while the thread has not called `reschedule()`
  /// since it was last scheduled; otherwise the global epoch at which it
  /// deprioritized itself. Equal-clock ties run never-rescheduled threads
  /// first (spawn order), then rescheduled threads oldest-epoch-first, so
  /// mutual `reschedule()` rotates the CPU fairly instead of letting spawn
  /// order re-pick the same thread. One-shot: reset to 0 when scheduled.
  std::uint64_t resched_seq_ = 0;
  /// Generation counter for this thread's entry in the scheduler's timer
  /// heap; bumping it lazily invalidates a stale heap entry (DESIGN.md §12).
  std::uint64_t timer_gen_ = 0;
  /// Index of this thread in waiting_in_->waiters_, kept current so a
  /// timeout removes the waiter with one O(1) swap instead of an O(n) scan.
  std::size_t wait_slot_ = 0;
  // --- timed-wait bookkeeping (the scheduler's timer wheel) ---
  std::optional<TimePoint> wake_at_;  // armed deadline while blocked
  bool timed_out_ = false;            // set when the deadline fired
  WaitList* waiting_in_ = nullptr;    // list to drop out of on timeout
  std::string wait_what_;             // diagnostic label while blocked
  std::vector<const Mutex*> held_;
  std::unique_ptr<Fiber> fiber_;
};

/// Deterministic discrete-event scheduler for virtual threads.
///
/// Policy: always execute the runnable thread with the smallest clock
/// (ties broken by spawn order). A running thread keeps executing as long
/// as its clock stays minimal; when `advance()` pushes it past another
/// runnable thread's clock it is suspended and the new minimum runs. The
/// result is a deterministic interleaving equivalent to time-ordered event
/// execution, while upper layers (HSA runtime, OpenMP runtime, workloads)
/// are written as ordinary blocking code.
///
/// All simulated work must run inside threads created with `spawn()`; the
/// scheduling operations (`advance`, `advance_to`, ...) throw `SimError`
/// when called from outside.
class Scheduler {
 public:
  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a virtual thread. May be called before `run()` or from inside a
  /// running thread (the child starts at the spawner's current clock).
  VirtualThread& spawn(std::string name, std::function<void()> body);

  /// Run until every thread has finished. Throws SimError on deadlock
  /// (all remaining threads blocked) and propagates the first exception
  /// escaping any thread body.
  void run();

  /// Convenience: spawn a single thread and run the simulation.
  void run_single(std::function<void()> body) {
    spawn("main", std::move(body));
    run();
  }

  /// --- operations available inside virtual threads ---

  /// The currently executing virtual thread (throws if none).
  [[nodiscard]] VirtualThread& current() {
    if (running_ == nullptr) {
      throw SimError("no virtual thread is running");
    }
    return *running_;
  }
  [[nodiscard]] const VirtualThread& current() const {
    if (running_ == nullptr) {
      throw SimError("no virtual thread is running");
    }
    return *running_;
  }
  [[nodiscard]] bool in_thread() const { return running_ != nullptr; }

  /// Clock of the current thread.
  [[nodiscard]] TimePoint now() const { return current().clock_; }

  /// Move the current thread's clock forward by `d` (>= 0).
  void advance(Duration d) {
    if (d.is_negative()) {
      throw SimError("Scheduler::advance: negative duration");
    }
    VirtualThread& self = current();
    self.clock_ += d;
    if (self.clock_ > horizon_) {
      horizon_ = self.clock_;
    }
    maybe_yield();
  }

  /// Move the current thread's clock to `t` if `t` is later.
  void advance_to(TimePoint t) {
    VirtualThread& self = current();
    if (t > self.clock_) {
      self.clock_ = t;
      if (self.clock_ > horizon_) {
        horizon_ = self.clock_;
      }
    }
    maybe_yield();
  }

  /// Block the current thread until virtual time `now() + d`; other threads
  /// run in the meantime. Equivalent to `advance(d)` for the caller's clock,
  /// but routed through the timer wheel, so it composes with timed waits
  /// and never starves lower-clock peers.
  void sleep_for(Duration d);

  /// Give other threads with equal clocks a chance to run.
  void reschedule();

  /// --- interleaving stress mode ---

  /// Perturb ready-thread order with a seeded RNG: scheduling ties (equal
  /// clocks) are broken uniformly at random instead of by spawn order, and
  /// lock/wait perturbation points (`stress_point`) may yield. The timing
  /// model is untouched — only the order among equal-clock threads changes,
  /// so every stressed schedule is a valid interleaving (min-clock policy
  /// holds) and a given seed reproduces the same schedule bit-for-bit.
  /// Call before `run()`.
  void enable_stress(std::uint64_t seed);
  [[nodiscard]] bool stress_enabled() const { return stress_; }

  /// Debug cross-check for the ready-heap refactor: every scheduling
  /// decision additionally runs the pre-refactor O(n) reference scan over
  /// all threads and throws SimError if the heap disagrees — the online
  /// half of the differential equivalence harness
  /// (tests/sim/scheduler_equiv_test.cpp). Call before `run()`; costs the
  /// old linear-scan time per switch, so never enable it in benchmarks.
  void enable_policy_check() { policy_check_ = true; }

  /// Under stress mode, randomly hand the CPU to an equal-clock peer.
  /// Called by `Mutex::lock` and `WaitList::wait` to widen interleaving
  /// coverage exactly where real thread schedules diverge; a no-op when
  /// stress mode is off or no thread is running.
  void stress_point();

  /// --- concurrency observation ---

  /// Install (or clear, with nullptr) the observer notified of thread
  /// lifecycle events, release/acquire edges, and instrumented accesses.
  /// The observer must outlive the scheduler's use of it. Null — the
  /// default — keeps every primitive on its uninstrumented fast path.
  void set_hooks(ConcurrencyHooks* hooks) { hooks_ = hooks; }
  [[nodiscard]] ConcurrencyHooks* hooks() const { return hooks_; }

  /// --- whole-simulation queries ---

  /// Max clock over all threads ever run (the simulation makespan so far).
  [[nodiscard]] TimePoint horizon() const { return horizon_; }

  /// Count of discrete scheduler events so far: every context switch (a
  /// fiber resume) and every timer firing. The `bench/micro_des` events/sec
  /// metric divides this by host wall-clock — it is the DES analogue of
  /// "committed instructions" and is schedule-deterministic, so identical
  /// runs report identical event counts.
  [[nodiscard]] std::uint64_t events() const { return events_; }

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  [[nodiscard]] const VirtualThread& thread(std::size_t i) const {
    return *threads_.at(i);
  }

 private:
  friend class WaitList;

  /// Entry in the lazy-deletion timer heap: `gen` snapshots the thread's
  /// timer generation at arm time; a disarm (signal before deadline) bumps
  /// the generation, turning this entry stale. Stale entries are skipped
  /// when they surface at the top — no O(n) removal ever happens.
  struct TimerEntry {
    TimePoint due;
    std::uint64_t gen;
    VirtualThread* thread;
  };

  void block_current();
  void wake(VirtualThread& t, TimePoint at_least);
  void maybe_yield();
  [[nodiscard]] VirtualThread* pick_next();
  /// Wake every timed-blocked thread whose deadline is due (no runnable
  /// thread has a strictly smaller clock). Returns true if any fired.
  bool fire_due_timers();

  /// Ready-heap entry. The ordering key (clock, resched_seq, id) — min
  /// clock first, ties prefer never-rescheduled threads in spawn order,
  /// then rescheduled threads oldest-epoch-first — is snapshotted at push
  /// time so sift compares touch contiguous memory instead of chasing
  /// thread pointers. The snapshot is exact, not approximate: all three
  /// fields are immutable while a thread sits in the heap (only the
  /// *running* thread mutates its own clock/seq, and it is never in the
  /// heap), so no re-sift or refresh is ever needed.
  struct ReadyEntry {
    TimePoint clock;
    std::uint64_t seq;
    int id;
    VirtualThread* thread;

    [[nodiscard]] bool before(const ReadyEntry& o) const {
      if (clock != o.clock) {
        return clock < o.clock;
      }
      if (seq != o.seq) {
        return seq < o.seq;
      }
      return id < o.id;
    }
  };

  [[nodiscard]] static bool ready_before(const VirtualThread* a,
                                         const VirtualThread* b) {
    if (a->clock_ != b->clock_) {
      return a->clock_ < b->clock_;
    }
    if (a->resched_seq_ != b->resched_seq_) {
      return a->resched_seq_ < b->resched_seq_;
    }
    return a->id_ < b->id_;
  }

  void push_ready(VirtualThread* t);
  VirtualThread* pop_ready();
  /// True when no thread is ready in either lane.
  [[nodiscard]] bool ready_empty() const {
    return ready_.empty() && fifo_head_ == fifo_tail_;
  }
  /// Smallest ready entry across both lanes. Precondition: !ready_empty().
  [[nodiscard]] const ReadyEntry& ready_top() const {
    if (fifo_head_ == fifo_tail_) {
      return ready_.front();
    }
    if (ready_.empty()) {
      return ready_fifo_[fifo_head_];
    }
    const ReadyEntry& f = ready_fifo_[fifo_head_];
    return f.before(ready_.front()) ? f : ready_.front();
  }
  /// Double the FIFO ring, preserving entry order.
  void grow_fifo();
  void push_timer(TimerEntry e);
  void pop_timer();
  /// Smallest live (non-stale) timer entry, or nullptr; pops stale entries.
  [[nodiscard]] const TimerEntry* timer_top();

  // --- policy-check reference implementations (pre-refactor O(n) scans) --
  [[nodiscard]] VirtualThread* reference_pick() const;
  void check_pick(VirtualThread* chosen) const;
  void check_stress_bucket(const std::vector<VirtualThread*>& bucket) const;
  void check_timer_decision(bool fired, TimePoint due) const;

  FiberStackPool stack_pool_;  // declared first: outlives the fibers
  std::vector<std::unique_ptr<VirtualThread>> threads_;
  // Two-lane ready structure. Cooperative schedules push in nearly
  // nondecreasing key order (a yielded thread re-enters at the clock the
  // run loop just advanced to), so most pushes append to a sorted FIFO
  // lane and pop from its head in O(1); a push whose key is smaller than
  // the FIFO's tail — a thread re-entering "from the past" — goes to the
  // binary-heap lane instead. The global minimum is the smaller of the
  // two lane heads (each lane is min-ordered), so the policy is exactly
  // the heap's (clock, resched_seq, id) order — the differential and
  // policy-check suites hold bit-for-bit.
  std::vector<ReadyEntry> ready_;  // heap lane: binary min-heap
  // FIFO lane: a power-of-two ring so steady-state churn (pop one thread,
  // re-push it) reuses the same few cache lines instead of streaming
  // through an ever-growing vector. head == tail means empty; one slot
  // stays free to distinguish full from empty.
  std::vector<ReadyEntry> ready_fifo_ = std::vector<ReadyEntry>(256);
  std::size_t fifo_head_ = 0;  // ring index of the smallest live entry
  std::size_t fifo_tail_ = 0;  // ring index one past the largest entry
  std::vector<TimerEntry> timer_heap_;     // binary min-heap by due time
  std::vector<VirtualThread*> tie_bucket_; // scratch for stress-mode picks
  VirtualThread* running_ = nullptr;
  TimePoint horizon_;
  std::uint64_t events_ = 0;
  bool in_run_ = false;
  bool policy_check_ = false;
  std::uint64_t resched_epoch_ = 0;  // ticks on every reschedule() call
  bool stress_ = false;
  Rng stress_rng_{0};
  ConcurrencyHooks* hooks_ = nullptr;
};

/// A list of threads blocked waiting for an event another thread will post.
///
/// Used for cross-thread dependencies whose completion time is not yet
/// known (e.g. an HSA signal that no operation has been bound to yet).
class WaitList {
 public:
  /// Block the current thread until `notify_all` is called.
  /// On wakeup the thread's clock is at least the notifier-supplied time.
  /// `what` labels the wait in deadlock diagnostics.
  void wait(Scheduler& sched, std::string_view what = "WaitList");

  /// Block like `wait`, but give up after `timeout` of virtual time.
  /// Returns true when notified, false when the deadline fired first (the
  /// caller's clock is then exactly at the deadline, and it no longer
  /// occupies a slot in the list). A non-positive timeout returns false
  /// immediately without blocking.
  [[nodiscard]] bool wait_for(Scheduler& sched, Duration timeout,
                              std::string_view what = "WaitList");

  /// Wake all waiters; each resumes with clock >= `at_least`.
  void notify_all(Scheduler& sched, TimePoint at_least);

  /// Wake exactly `target` (which must be a current waiter), or nobody when
  /// null. Emits the same release edge and runs the same post-notify
  /// `maybe_yield` as `notify_all`, so an empty notify is still a
  /// scheduling point. The wake-one half of the Mutex direct handoff.
  void notify_one(Scheduler& sched, VirtualThread* target, TimePoint at_least);

  /// Handoff policy: the waiter that would have won the pre-handoff barging
  /// race — minimum (wake clock, id), where the wake clock is
  /// max(waiter clock, `at`). Under stress mode a seeded uniform draw picks
  /// instead. Null when no one waits. Does not modify the list.
  [[nodiscard]] VirtualThread* pick_waiter(Scheduler& sched, TimePoint at);

  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size(); }

 private:
  friend class Scheduler;  // timeout path removes the waiter in-place

  /// O(1) removal: swap the last waiter into `t`'s slot (wait_slot_ keeps
  /// every waiter's index current).
  void remove_waiter(VirtualThread& t);

  std::vector<VirtualThread*> waiters_;
};

/// A one-shot latch: threads that `wait` before `set` block; waits after
/// `set` just synchronize the clock to the set time.
class Latch {
 public:
  /// Mark the event set at the caller's current time and wake waiters.
  void set(Scheduler& sched) {
    set_ = true;
    at_ = sched.now();
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::Latch);
    }
    waiters_.notify_all(sched, at_);
  }

  /// Block until set; on return the caller's clock is >= the set time.
  void wait(Scheduler& sched) {
    sched.stress_point();  // latch waits are schedule-divergence points too
    if (!set_) {
      waiters_.wait(sched, "Latch");
    }
    sched.advance_to(at_);
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::Latch);
    }
  }

  /// Block until set or until `timeout` elapses. Returns true when the
  /// latch was set (clock >= set time), false on timeout (clock exactly at
  /// the deadline).
  [[nodiscard]] bool wait_for(Scheduler& sched, Duration timeout) {
    sched.stress_point();
    if (!set_ && !waiters_.wait_for(sched, timeout, "Latch")) {
      return false;
    }
    sched.advance_to(at_);
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::Latch);
    }
    return true;
  }

  [[nodiscard]] bool is_set() const { return set_; }

 private:
  bool set_ = false;
  TimePoint at_;
  WaitList waiters_;
};

/// A fiber mutex: lock() blocks (cooperatively) while another virtual
/// thread holds it — including across that thread's time-advancing
/// operations. Used for critical sections that span multiple modeled
/// operations (e.g. a mapping-table transaction that performs a device
/// allocation in the middle).
///
/// The mutex tracks its owning thread and maintains each thread's held-lock
/// set, which makes lock-discipline violations (recursive locking, foreign
/// unlock, finishing while holding, touching guarded state without the
/// guard — see `assert_held` / `GuardedBy`) hard runtime errors.
class Mutex {
 public:
  /// `name` labels the mutex in deadlock diagnostics; it must outlive the
  /// mutex (string literals do).
  explicit Mutex(const char* name = "mutex")
      : name_{name}, label_{std::string{"Mutex("} + name + ")"} {}

  void lock(Scheduler& sched) {
    sched.stress_point();
    VirtualThread& self = sched.current();
    if (owner_ == &self) {
      throw LockDisciplineError("Mutex::lock: recursive lock by thread '" +
                                self.name() + "'");
    }
    if (owner_ != nullptr) {
      // Direct handoff: unlock() transfers ownership to the waiter it
      // wakes, so being woken means the lock is already ours — no re-check
      // race against barging peers (the pre-handoff thundering herd).
      do {
        waiters_.wait(sched, label());
      } while (owner_ != &self);
    } else {
      owner_ = &self;
    }
    self.held_.push_back(this);
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::Mutex);
      h->on_lock_acquired(*this);
    }
  }

  /// Try to acquire the lock, giving up after `timeout` of virtual time.
  /// Returns true with the lock held, or false with the caller's clock at
  /// the deadline and the lock not held. Recursive acquisition is still a
  /// lock-discipline error.
  [[nodiscard]] bool try_lock_for(Scheduler& sched, Duration timeout) {
    sched.stress_point();
    VirtualThread& self = sched.current();
    if (owner_ == &self) {
      throw LockDisciplineError(
          "Mutex::try_lock_for: recursive lock by thread '" + self.name() +
          "'");
    }
    if (owner_ != nullptr) {
      const TimePoint deadline = sched.now() + timeout;
      // A handoff can only reach us before our deadline fires (the timer
      // wheel wakes expired waiters out of the list first), so waking with
      // ownership and timing out are mutually exclusive; the loop guard is
      // belt-and-braces against a stray notify.
      do {
        const Duration left = deadline - sched.now();
        if (left <= Duration::zero() ||
            !waiters_.wait_for(sched, left, label())) {
          return false;
        }
      } while (owner_ != &self);
    } else {
      owner_ = &self;
    }
    self.held_.push_back(this);
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::Mutex);
      h->on_lock_acquired(*this);
    }
    return true;
  }

  void unlock(Scheduler& sched) {
    if (owner_ == nullptr) {
      throw SimError("Mutex::unlock: not locked");
    }
    VirtualThread& self = sched.current();
    if (owner_ != &self) {
      throw LockDisciplineError("Mutex::unlock: thread '" + self.name() +
                                "' is not the owner (held by '" +
                                owner_->name() + "')");
    }
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::Mutex);
    }
    std::erase(self.held_, this);
    // Wake-one direct handoff: ownership transfers to the chosen waiter
    // before it runs, so the herd of losers stays blocked instead of all
    // waking to re-contend (the O(waiters²) churn this replaces).
    VirtualThread* const next = waiters_.pick_waiter(sched, sched.now());
    owner_ = next;  // nullptr when nobody waits
    waiters_.notify_one(sched, next, sched.now());
  }

  [[nodiscard]] bool held() const { return owner_ != nullptr; }
  [[nodiscard]] bool held_by(const VirtualThread& t) const {
    return owner_ == &t;
  }
  /// Owning thread, or nullptr when unlocked.
  [[nodiscard]] const VirtualThread* owner() const { return owner_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  /// Built once at construction: contended lock() assigns this into the
  /// waiter's diagnostic label on every wait, and rebuilding the string
  /// per wait was a measurable allocation cost on the DES hot path.
  [[nodiscard]] const std::string& label() const { return label_; }

  const char* name_;
  std::string label_;
  VirtualThread* owner_ = nullptr;
  WaitList waiters_;
};

inline bool VirtualThread::holds(const Mutex& m) const {
  return m.held_by(*this);
}

/// Lock-discipline assertion: the calling virtual thread must hold `m`.
///
/// Outside any virtual thread (after `run()` drained, i.e. post-run
/// introspection of results) there is no concurrency and the check passes.
/// Inside a thread, accessing guarded state without the guard throws
/// `LockDisciplineError` — deterministically, on the first unguarded
/// access, regardless of whether the interleaving at hand would have
/// corrupted anything.
inline void assert_held(const Mutex& m, Scheduler& sched,
                        const char* what = nullptr) {
  if (!sched.in_thread()) {
    return;
  }
  const VirtualThread& self = sched.current();
  if (m.held_by(self)) {
    return;
  }
  throw LockDisciplineError(
      std::string{"lock discipline violation: "} +
      (what != nullptr ? what : "guarded state") + " accessed by thread '" +
      self.name() + "' without holding its mutex");
}

/// Shared state bound to the `Mutex` that guards it: every `get()` asserts
/// the calling thread holds the guard (see `assert_held`). The wrapper is
/// what turns the locking convention into a machine-checked invariant —
/// forgetting the `LockGuard` around an access fails loudly and
/// deterministically instead of silently racing.
template <typename T>
class GuardedBy {
 public:
  /// `what` names the state in violation messages; it must outlive the
  /// wrapper (string literals do).
  template <typename... Args>
  explicit GuardedBy(Mutex& m, const char* what, Args&&... args)
      : m_{&m}, what_{what}, value_{std::forward<Args>(args)...} {}

  GuardedBy(const GuardedBy&) = delete;
  GuardedBy& operator=(const GuardedBy&) = delete;

  // get() deliberately does NOT emit a ConcurrencyHooks::on_access event.
  // assert_held proves every access happens under the one mutex bound at
  // construction, and the mutex's release/acquire hooks order all critical
  // sections — so a happens-before race check on these accesses can never
  // fire and would only tax the detector's hot path. Racy access patterns
  // must use the raw race::on_read/on_write annotations instead; mixing
  // those with GuardedBy on the same address defeats this exemption.
  [[nodiscard]] T& get(Scheduler& sched) {
    assert_held(*m_, sched, what_);
    return value_;
  }
  [[nodiscard]] const T& get(Scheduler& sched) const {
    assert_held(*m_, sched, what_);
    return value_;
  }

  /// Escape hatch for accesses that are safe without the guard. Every call
  /// site must carry a comment saying why (e.g. read-only introspection
  /// with no concurrent mutator possible).
  [[nodiscard]] T& unguarded() { return value_; }
  [[nodiscard]] const T& unguarded() const { return value_; }

  [[nodiscard]] Mutex& mutex() { return *m_; }

 private:
  Mutex* m_;
  const char* what_;
  T value_;
};

/// RAII guard for Mutex.
class LockGuard {
 public:
  LockGuard(Mutex& m, Scheduler& sched) : m_{m}, sched_{sched} {
    m_.lock(sched_);
  }
  ~LockGuard() { m_.unlock(sched_); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
  Scheduler& sched_;
};

/// A reusable rendezvous for a fixed party of threads: each call to
/// `arrive_and_wait` blocks until all `parties` threads have arrived, then
/// releases everyone with their clocks advanced to the last arrival's time
/// (the OpenMP `barrier` semantics a multi-threaded workload needs between
/// phases). Reusable across rounds.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_{parties} {
    if (parties <= 0) {
      throw SimError("Barrier: parties must be positive");
    }
  }

  void arrive_and_wait(Scheduler& sched) {
    sched.stress_point();  // barrier arrivals are schedule-divergence points
    latest_ = max(latest_, sched.now());
    // Every arrival releases its clock into the barrier; every departure
    // acquires it, so all pre-barrier work happens-before all post-barrier
    // work (the all-to-all edge OpenMP `barrier` provides).
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_release(this, SyncKind::Barrier);
    }
    if (++arrived_ < parties_) {
      waiters_.wait(sched, "Barrier");
      if (ConcurrencyHooks* h = sched.hooks()) {
        h->on_acquire(this, SyncKind::Barrier);
      }
      return;
    }
    // Last arrival releases the round and resets for the next one.
    arrived_ = 0;
    const TimePoint release = latest_;
    latest_ = TimePoint::zero();
    waiters_.notify_all(sched, release);
    sched.advance_to(release);
    if (ConcurrencyHooks* h = sched.hooks()) {
      h->on_acquire(this, SyncKind::Barrier);
    }
  }

  [[nodiscard]] int parties() const { return parties_; }
  [[nodiscard]] int waiting() const { return arrived_; }

 private:
  int parties_;
  int arrived_ = 0;
  TimePoint latest_;
  WaitList waiters_;
};

}  // namespace zc::sim
