#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zc/sim/time.hpp"

namespace zc::sim {

/// A reserved busy interval on a resource.
struct Interval {
  TimePoint start;
  TimePoint end;

  [[nodiscard]] Duration duration() const { return end - start; }
};

/// FIFO k-server resource timeline.
///
/// Models a shared hardware or software resource with `servers` identical
/// units (e.g. two SDMA copy engines, four concurrent-kernel slots, or a
/// single driver/page-table lock). A reservation made with ready time `r`
/// and duration `d` is placed on the server that becomes free earliest:
///
///     start = max(r, earliest_server_available), end = start + d.
///
/// The scheduler's min-clock-first policy makes reservations arrive in
/// (almost) nondecreasing ready-time order, which keeps the greedy placement
/// FIFO-fair. Utilization statistics are kept for reporting.
class ResourceTimeline {
 public:
  ResourceTimeline(std::string name, int servers);

  /// Reserve `dur` on the earliest-free server, no earlier than `ready`.
  Interval reserve(TimePoint ready, Duration dur);

  /// Earliest time any server is free.
  [[nodiscard]] TimePoint available_at() const;

  /// Time at which every server is free (makespan of work issued so far).
  [[nodiscard]] TimePoint drained_at() const;

  /// True if a reservation with ready time `ready` would start immediately.
  [[nodiscard]] bool idle_at(TimePoint ready) const {
    return available_at() <= ready;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int servers() const { return static_cast<int>(free_at_.size()); }
  [[nodiscard]] std::uint64_t reservations() const { return reservations_; }
  /// Total busy time accumulated across all servers.
  [[nodiscard]] Duration busy_time() const { return busy_; }
  /// Total time reservations spent queued (start - ready).
  [[nodiscard]] Duration queue_time() const { return queued_; }

  /// Forget all reservations (statistics included).
  void reset();

 private:
  std::string name_;
  std::vector<TimePoint> free_at_;
  std::uint64_t reservations_ = 0;
  Duration busy_ = Duration::zero();
  Duration queued_ = Duration::zero();
  TimePoint last_ready_ = TimePoint::zero();
};

}  // namespace zc::sim
