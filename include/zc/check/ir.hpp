#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "zc/core/mapping.hpp"
#include "zc/core/target_region.hpp"
#include "zc/mem/address.hpp"

namespace zc::sim {
class Scheduler;
}

namespace zc::check {

/// One operation of the recorded offload stream. The IR deliberately keeps
/// only the *shape* of the program — which construct, which ranges, which
/// map types and access modes — and none of its timing, so the analyzer's
/// verdicts are independent of scheduling, jitter, and stress seeds.
enum class OpKind {
  HostFree,    ///< host_free(range)
  HostTouch,   ///< host_first_touch (a host-side write of the range)
  HostRead,    ///< host_read (a modeled host-side read of the range)
  DataBegin,   ///< target_data_begin(maps)
  DataEnd,     ///< target_data_end(maps)
  EnterData,   ///< target enter data(maps)
  ExitData,    ///< target exit data(maps)
  UpdateTo,    ///< target update to(map)
  UpdateFrom,  ///< target update from(map)
  Kernel,      ///< omp target (maps entered, kernel ran, maps exited) or,
               ///< with `nowait`, the dispatch half of omp target nowait
  KernelWait,  ///< target_wait: kernel completion + data-end of a nowait op
  DeviceAlloc, ///< omp_target_alloc
  DeviceFree,  ///< omp_target_free
  Memcpy,      ///< omp_target_memcpy (range = dst, src = src)
  Migrate,     ///< migrate_to_device
};

[[nodiscard]] constexpr const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::HostFree:
      return "host_free";
    case OpKind::HostTouch:
      return "host_touch";
    case OpKind::HostRead:
      return "host_read";
    case OpKind::DataBegin:
      return "target_data_begin";
    case OpKind::DataEnd:
      return "target_data_end";
    case OpKind::EnterData:
      return "target_enter_data";
    case OpKind::ExitData:
      return "target_exit_data";
    case OpKind::UpdateTo:
      return "target_update_to";
    case OpKind::UpdateFrom:
      return "target_update_from";
    case OpKind::Kernel:
      return "target";
    case OpKind::KernelWait:
      return "target_wait";
    case OpKind::DeviceAlloc:
      return "device_alloc";
    case OpKind::DeviceFree:
      return "device_free";
    case OpKind::Memcpy:
      return "target_memcpy";
    case OpKind::Migrate:
      return "migrate_to_device";
  }
  return "?";
}

/// One map clause of a recorded construct.
struct IrMap {
  mem::AddrRange range;
  omp::MapType type = omp::MapType::ToFrom;
  bool always = false;
};

/// One enclosing-data-environment buffer use of a recorded kernel.
struct IrUse {
  mem::AddrRange range;
  hsa::Access access = hsa::Access::ReadWrite;
};

/// One recorded operation. `ordinal` is the operation's index in its
/// thread's stream — the per-thread program order that is invariant under
/// interleaving perturbation, and therefore the only order the analyzer
/// (and its diagnostics) may rely on.
struct IrOp {
  OpKind kind = OpKind::HostTouch;
  std::uint64_t ordinal = 0;
  int device = 0;
  bool nowait = false;
  /// Pairs a nowait Kernel op with its KernelWait (recorder-issued;
  /// 0 = none). Opaque: only equality is meaningful.
  std::uint64_t token = 0;
  std::string name;  ///< kernel name (Kernel/KernelWait), else empty
  std::vector<IrMap> maps;
  std::vector<IrUse> uses;
  mem::AddrRange range{};  ///< HostFree/Touch/Read, DeviceAlloc/Free dst...
  mem::AddrRange src{};    ///< Memcpy source
};

/// What kind of storage a recorded buffer is — the analyzer treats
/// device-pool memory and declare-target globals as always-present.
enum class BufKind {
  Host,        ///< host_alloc / host_alloc_placed
  DevicePool,  ///< device_alloc (omp_target_alloc)
  Global,      ///< declare-target global
};

/// One allocation the recorded program made (or global the image declared).
/// `thread` and `nth` identify which thread allocated it and how many
/// buffers of the same name that thread had already allocated — the basis
/// of the deterministic symbolic label the reports use instead of raw
/// addresses (which vary across stress seeds).
struct IrBuffer {
  std::string name;
  mem::AddrRange range;
  BufKind kind = BufKind::Host;
  std::string thread;       ///< allocating thread ("" for globals)
  std::uint64_t nth = 0;    ///< per-(thread, name) occurrence index
  std::string label;        ///< unique symbolic label (filled by `seal`)
};

/// One thread's recorded operation stream, in program order.
struct ThreadStream {
  std::string thread;
  std::vector<IrOp> ops;
};

/// The recorded offload IR of one run: per-thread op streams plus the
/// buffer registry. Streams are keyed (and sorted) by thread name; the
/// *relative order of operations across threads is deliberately absent* —
/// it varies run to run, and every analysis over this IR must be a
/// per-thread walk combined with order-free cross-thread set algebra so
/// its output is bit-identical across stress seeds.
struct OffloadIR {
  std::vector<ThreadStream> threads;  ///< sorted by thread name
  std::vector<IrBuffer> buffers;      ///< sorted by (base address)
  std::uint64_t page_bytes = 2ULL << 20;

  /// Buffer containing `addr`, or nullptr. Buffers never overlap (the
  /// simulator's address space is a bump allocator with guard pages).
  [[nodiscard]] const IrBuffer* find(mem::VirtAddr addr) const;
  /// Deterministic "label[+offset:bytes]" rendering of a range.
  [[nodiscard]] std::string describe(mem::AddrRange range) const;

  [[nodiscard]] std::uint64_t op_count() const;
};

/// Record-only observer the `OffloadRuntime` feeds when `OMPX_APU_CHECK`
/// (or `OMPX_APU_RACE_CHECK=...:pruned`) is active. Purely passive: it
/// never advances virtual time, takes no locks (the simulator is
/// cooperatively scheduled on one OS thread), and never changes what the
/// runtime does — so a recorded run is bit-identical to an unrecorded one.
class Recorder {
 public:
  explicit Recorder(std::uint64_t page_bytes) : page_bytes_{page_bytes} {}

  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }

  /// Register an allocation or global. Globals pass an empty thread name.
  void add_buffer(sim::Scheduler& sched, mem::AddrRange range,
                  const std::string& name, BufKind kind);
  void add_global(mem::AddrRange range, const std::string& name);

  /// Append one op to the calling thread's stream (no-op while the calling
  /// thread is inside a composite construct, see `push_suppress`).
  void record(sim::Scheduler& sched, IrOp op);

  /// Composite constructs (`target`, `target enter/exit data`,
  /// `target_wait`) are recorded as one op and internally reuse the public
  /// data-begin/data-end entry points; the suppression depth keeps those
  /// nested records out of the stream. Per-thread: the runtime yields
  /// inside composite ops, and other threads' records must not be lost.
  void push_suppress(sim::Scheduler& sched);
  void pop_suppress(sim::Scheduler& sched);

  /// Next nowait-pairing token for the calling thread.
  [[nodiscard]] std::uint64_t issue_token(sim::Scheduler& sched);

  /// Seal the recording into an analyzable IR: sort streams by thread
  /// name, sort buffers by base, and assign each buffer its deterministic
  /// symbolic label (the plain name when unique run-wide, otherwise
  /// "name@thread#nth").
  [[nodiscard]] OffloadIR build() const;

 private:
  struct RawStream {
    std::string thread;
    std::vector<IrOp> ops;
    int suppress = 0;
    std::uint64_t tokens = 0;
  };
  RawStream& stream_for(sim::Scheduler& sched);

  std::uint64_t page_bytes_;
  std::unordered_map<int, std::size_t> by_thread_;  ///< thread id -> index
  std::vector<RawStream> streams_;
  std::vector<IrBuffer> buffers_;
};

/// RAII suppression scope used by the runtime's composite entry points.
class SuppressScope {
 public:
  SuppressScope(Recorder* rec, sim::Scheduler& sched)
      : rec_{rec}, sched_{&sched} {
    if (rec_ != nullptr) {
      rec_->push_suppress(*sched_);
    }
  }
  ~SuppressScope() {
    if (rec_ != nullptr) {
      rec_->pop_suppress(*sched_);
    }
  }
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  Recorder* rec_;
  sim::Scheduler* sched_;
};

}  // namespace zc::check
