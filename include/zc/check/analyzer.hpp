#pragma once

#include "zc/check/ir.hpp"
#include "zc/check/report.hpp"
#include "zc/core/config.hpp"

namespace zc::check {

/// Timing-free dataflow analysis of a recorded offload IR.
///
/// Two tiers keep verdicts bit-identical across stress seeds even though
/// the IR carries no cross-thread order:
///
/// * **Tier A (cross-thread, order-free set algebra)** — for buffers
///   referenced from more than one thread, only facts independent of
///   interleaving are derived: the union of ever-mapped ranges per device
///   (use-before-map / device-mismatch when a kernel use is never covered),
///   and total map-begin vs map-end counts (double-release when ends
///   exceed begins).
/// * **Tier B (single-owner, precise walk)** — for buffers whose every
///   referencing op comes from one thread, that thread's stream is walked
///   through an abstract PresentTable (presence, refcount, device-dirty,
///   host-dirty-since-transfer), yielding precise op-index diagnostics:
///   stale-host-read-after-kernel-write without `update from`,
///   config-divergent host writes under live `to` mappings, overlapping
///   map clauses, double delete.
///
/// `config` only tunes messages/severity of config-divergence findings
/// (the structural verdicts are config-independent by construction).
[[nodiscard]] Analysis analyze(const OffloadIR& ir, omp::RuntimeConfig config);

/// The may-race partition alone (also contained in `analyze`'s result).
///
/// A buffer is *proven safe* when either
///  * **S1**: every op that touches it is issued by one thread and none of
///    those ops is `nowait` (single-threaded, synchronous use), or
///  * **S2**: all kernel/DMA access to it is read-only (only `to`/`alloc`
///    map clauses and `Read` kernel uses) and at most one thread writes it
///    on the host, with all of that thread's host writes preceding that
///    thread's own first map/kernel op on the buffer (initialise-then-
///    publish; the cross-thread publication edge is assumed from the
///    program's construct structure — see DESIGN.md §16 for the caveat).
/// Any `nowait` involvement, host free, device-pool aliasing, or failure
/// of both rules leaves the buffer in the must-check set.
[[nodiscard]] RacePartition partition_races(const OffloadIR& ir);

}  // namespace zc::check
