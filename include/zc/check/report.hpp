#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "zc/mem/address.hpp"

namespace zc::check {

/// Finding categories of the static mapping verifier.
enum class CheckKind {
  InvalidMap,        ///< structurally bad clause (zero-byte map, ...)
  UseBeforeMap,      ///< kernel uses a buffer no map ever made present
  StaleHostRead,     ///< host reads data a kernel wrote, no `update from`
  DoubleRelease,     ///< more releases/deletes than map entries
  OverlapMap,        ///< two live map clauses share bytes on one device
  DeviceMismatch,    ///< buffer mapped on device A, kernel uses it on B
  ConfigDivergence,  ///< correct only because zero-copy is coherent
};

[[nodiscard]] constexpr const char* to_string(CheckKind k) {
  switch (k) {
    case CheckKind::InvalidMap:
      return "invalid-map";
    case CheckKind::UseBeforeMap:
      return "use-before-map";
    case CheckKind::StaleHostRead:
      return "stale-host-read";
    case CheckKind::DoubleRelease:
      return "double-release";
    case CheckKind::OverlapMap:
      return "overlap-map";
    case CheckKind::DeviceMismatch:
      return "device-mismatch";
    case CheckKind::ConfigDivergence:
      return "config-divergence";
  }
  return "?";
}

/// One static finding. Identified entirely by symbolic, seed-invariant
/// coordinates: thread name + per-thread op ordinal + buffer label — never
/// raw addresses, which differ across stress seeds.
struct CheckFinding {
  CheckKind kind = CheckKind::InvalidMap;
  std::string thread;        ///< thread whose op triggered the finding
  std::uint64_t op_index = 0;///< ordinal of that op in its thread's stream
  std::string buffer;        ///< symbolic buffer/range description
  int device = 0;
  std::string message;

  [[nodiscard]] std::string to_string() const;

  /// Canonical report order: (kind, thread, op_index, buffer, message).
  [[nodiscard]] bool operator<(const CheckFinding& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (thread != o.thread) return thread < o.thread;
    if (op_index != o.op_index) return op_index < o.op_index;
    if (buffer != o.buffer) return buffer < o.buffer;
    return message < o.message;
  }
  [[nodiscard]] bool operator==(const CheckFinding& o) const {
    return kind == o.kind && thread == o.thread && op_index == o.op_index &&
           buffer == o.buffer && device == o.device && message == o.message;
  }
};

/// All findings of one analysis, canonically ordered (so two analyses of
/// the same program — regardless of stress seed — compare bit-identical).
struct CheckTrace {
  std::vector<CheckFinding> findings;
  std::uint64_t ops_analyzed = 0;
  std::uint64_t buffers_analyzed = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Result of the static may-race pass: host-address ranges proven free of
/// unordered concurrent access, plus bookkeeping about how much of the
/// program that covers. The race detector skips page-stamp bookkeeping for
/// pages holding only `proven_safe` bytes ("report:pruned"); every page a
/// `must_check` range touches stays fully instrumented, so no dynamic
/// report inside the must-check set is lost.
struct RacePartition {
  std::vector<mem::AddrRange> proven_safe;  ///< sorted by base, disjoint
  std::vector<mem::AddrRange> must_check;   ///< sorted by base, disjoint
  std::vector<std::string> safe_buffers;       ///< labels, sorted
  std::vector<std::string> must_check_buffers; ///< labels, sorted
  std::uint64_t total_pages = 0;
  std::uint64_t safe_pages = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Output of `analyze`: the mapping findings plus the race partition.
struct Analysis {
  CheckTrace trace;
  RacePartition partition;
};

}  // namespace zc::check
