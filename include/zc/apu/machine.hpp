#pragma once

#include <memory>
#include <vector>

#include "zc/apu/env.hpp"
#include "zc/apu/params.hpp"
#include "zc/fabric/fabric.hpp"
#include "zc/fault/engine.hpp"
#include "zc/sim/event_log.hpp"
#include "zc/sim/jitter.hpp"
#include "zc/sim/scheduler.hpp"
#include "zc/sim/timeline.hpp"

namespace zc::apu {

/// One simulated node: scheduler, shared hardware resources, cost model,
/// jitter, and diagnostics.
///
/// `Machine` owns the pieces every layer above shares:
///  * the deterministic fiber scheduler hosting the virtual OpenMP threads;
///  * resource timelines for the GPU kernel slots, the SDMA copy engines,
///    and the single driver/page-table lock (prefault syscalls and fault
///    servicing serialize here — the contention the paper attributes the
///    Eager Maps multi-thread penalty to);
///  * the cost model and the per-run jitter model;
///  * an event log for tests and debugging.
class Machine {
 public:
  struct Config {
    MachineKind kind = MachineKind::ApuMi300a;
    Topology topology{};
    CostParams costs{};
    AdaptParams adapt{};
    DegradeParams degrade{};
    RunEnvironment env{};
    sim::JitterParams jitter{};
    std::uint64_t seed = 1;
  };

  /// `config.env` overrides are applied first: `OMPX_APU_SOCKETS` (when
  /// positive) replaces `topology.sockets`, and `OMPX_APU_FABRIC` selects
  /// the inter-socket pricing model (see `fabric::FabricMode`).
  explicit Machine(Config config);

  /// MI300A node with default topology/costs and the given environment.
  [[nodiscard]] static Machine mi300a(RunEnvironment env = {},
                                      sim::JitterParams jitter = {},
                                      std::uint64_t seed = 1);

  /// Discrete-GPU node (separate host/device storage, PCIe-style link).
  [[nodiscard]] static Machine discrete_gpu(RunEnvironment env = {},
                                            sim::JitterParams jitter = {},
                                            std::uint64_t seed = 1);

  [[nodiscard]] MachineKind kind() const { return config_.kind; }
  [[nodiscard]] bool is_apu() const {
    return config_.kind == MachineKind::ApuMi300a;
  }
  [[nodiscard]] const Topology& topology() const { return config_.topology; }
  [[nodiscard]] const CostParams& costs() const { return config_.costs; }
  [[nodiscard]] const AdaptParams& adapt_params() const {
    return config_.adapt;
  }
  [[nodiscard]] const DegradeParams& degrade_params() const {
    return config_.degrade;
  }
  [[nodiscard]] const RunEnvironment& env() const { return config_.env; }
  /// The machine seed (fault engine, jitter, reclaim victim tie-breaks).
  [[nodiscard]] std::uint64_t seed() const { return config_.seed; }
  [[nodiscard]] std::uint64_t page_bytes() const {
    return config_.env.page_bytes();
  }

  [[nodiscard]] sim::Scheduler& sched() { return sched_; }
  /// Unguarded log reference for quiescent phases only: enabling before
  /// threads start, snapshots/dumps after the scheduler drains. Concurrent
  /// appends go through `log_add`, which takes the log mutex.
  [[nodiscard]] sim::EventLog& log() { return log_.unguarded(); }

  /// Append a diagnostic event; safe from any virtual thread (serializes
  /// on the log mutex — the event log is shared by every layer). Callers
  /// keep the `log().enabled()` pre-check to skip string building.
  void log_add(sim::TimePoint t, std::string category, std::string text) {
    sim::LockGuard lock{log_mutex_, sched_};
    log_.get(sched_).add(t, std::move(category), std::move(text));
  }
  /// The deterministic fault-injection engine, built from the environment's
  /// `OMPX_APU_FAULTS` schedule and the machine seed. Consulted from the
  /// HSA layer; fault-free runs carry an empty (disabled) engine.
  [[nodiscard]] fault::FaultEngine& faults() { return faults_; }
  [[nodiscard]] const fault::FaultEngine& faults() const { return faults_; }

  /// Number of APU sockets (each socket's GPU is one OpenMP device).
  [[nodiscard]] int sockets() const { return config_.topology.sockets; }

  /// The node's modeled Infinity Fabric. Disabled (`!fabric().enabled()`)
  /// unless the environment selects `OMPX_APU_FABRIC=xgmi|uniform` on a
  /// multi-socket topology, in which case cross-socket SDMA and kernel
  /// traffic is routed (and queued) over its per-pair links.
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }
  [[nodiscard]] const fabric::Fabric& fabric() const { return fabric_; }

  /// GPU kernel execution slots of one socket.
  [[nodiscard]] sim::ResourceTimeline& gpu(int socket = 0) {
    return per_socket(gpu_, socket);
  }
  /// Asynchronous copy engines of one socket.
  [[nodiscard]] sim::ResourceTimeline& sdma(int socket = 0) {
    return per_socket(sdma_, socket);
  }
  /// Driver / GPU-page-table lock of one socket.
  [[nodiscard]] sim::ResourceTimeline& driver(int socket = 0) {
    return per_socket(driver_, socket);
  }
  /// CPU-side OpenMP/ROCr runtime lock: packet submission and copy
  /// submission serialize here. This is the shared "runtime stack" whose
  /// contention the paper credits for Copy scaling worse than zero-copy as
  /// host threads are added (§V-A.2). One per process, not per socket.
  [[nodiscard]] sim::ResourceTimeline& runtime_lock() { return runtime_lock_; }

  /// Apply run-to-run noise to a modeled cost (identity when jitter is
  /// off). Baseline operations carry only the log-normal term.
  [[nodiscard]] sim::Duration jittered(sim::Duration d) {
    return jitter_.apply(d);
  }
  /// Noise for syscall-path operations (`svm_attributes_set`): log-normal
  /// term plus the rare large outliers the paper attributes to OS
  /// interference on the prefaulting system call (§V-A.1).
  [[nodiscard]] sim::Duration jittered_syscall(sim::Duration d) {
    return syscall_jitter_.apply(d);
  }
  [[nodiscard]] const sim::JitterParams& jitter_params() const {
    return jitter_.params();
  }

  /// Time to DMA-copy `bytes` (engine-resident duration).
  [[nodiscard]] sim::Duration copy_duration(std::uint64_t bytes) const;

  /// Time to service one GPU page fault via XNACK-replay. A fault on a page
  /// that is already CPU-resident only walks and mirrors the translation; a
  /// fault on an untouched page additionally materializes (allocates and
  /// zeroes) it — the expensive GPU-side first-touch path.
  [[nodiscard]] sim::Duration fault_service_duration(bool cpu_resident) const;

 private:
  [[nodiscard]] sim::ResourceTimeline& per_socket(
      std::vector<sim::ResourceTimeline>& v, int socket);
  /// Apply the environment's topology/fabric overrides before any member
  /// that depends on the socket count is built.
  [[nodiscard]] static Config normalized(Config config);

  Config config_;
  sim::Scheduler sched_;
  /// Guards event-log appends from concurrent virtual threads (HSA calls,
  /// the watchdog fiber, degradation paths all log).
  sim::Mutex log_mutex_{"machine-log"};
  sim::GuardedBy<sim::EventLog> log_{log_mutex_, "EventLog"};
  fault::FaultEngine faults_;
  sim::JitterModel jitter_;
  sim::JitterModel syscall_jitter_;
  std::vector<sim::ResourceTimeline> gpu_;
  std::vector<sim::ResourceTimeline> sdma_;
  std::vector<sim::ResourceTimeline> driver_;
  sim::ResourceTimeline runtime_lock_;
  fabric::Fabric fabric_;
};

}  // namespace zc::apu
